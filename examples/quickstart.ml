(* Quickstart: build a small network through the public API, optimize
   it with the SBM flow and verify the result formally.

   Run with:  dune exec examples/quickstart.exe *)

module Aig = Sbm_aig.Aig

let () =
  (* A 6-input network with deliberate redundancy: a one-hot selector
     re-implemented three slightly different ways. *)
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  let d = Aig.add_input aig in
  let e = Aig.add_input aig in
  let f = Aig.add_input aig in
  (* out0 = majority(a,b,c) *)
  let maj =
    Aig.bor_list aig
      [ Aig.band aig a b; Aig.band aig a c; Aig.band aig b c ]
  in
  ignore (Aig.add_output aig maj);
  (* out1 = (a&b)|(~a&b&c)|(a&~b&c): collapses to b&? — let the
     optimizer find out. *)
  let t1 = Aig.band aig a b in
  let t2 = Aig.band_list aig [ Aig.lnot a; b; c ] in
  let t3 = Aig.band_list aig [ a; Aig.lnot b; c ] in
  ignore (Aig.add_output aig (Aig.bor_list aig [ t1; t2; t3 ]));
  (* out2 = full-adder carry chain over (a..f). *)
  let carry = ref Aig.const0 in
  List.iter
    (fun (x, y) ->
      let g = Aig.band aig x y in
      let p = Aig.bxor aig x y in
      carry := Aig.bor aig g (Aig.band aig p !carry))
    [ (a, b); (c, d); (e, f) ];
  ignore (Aig.add_output aig !carry);

  Fmt.pr "before: %a@." Aig.pp_stats aig;

  (* Optimize with the full SBM script (typed flow dispatch), tracing
     every pass into a telemetry span tree. *)
  let trace = Sbm_obs.create () in
  let obs = Sbm_obs.root ~size:(Aig.size aig) ~depth:(Aig.depth aig) trace "sbm" in
  let optimized = Sbm_core.Flow.run ~obs (Sbm_core.Flow.Sbm Sbm_core.Flow.Low) aig in
  Sbm_obs.close ~size:(Aig.size optimized) ~depth:(Aig.depth optimized) obs;
  Fmt.pr "after:  %a@." Aig.pp_stats optimized;
  Fmt.pr "@.pass telemetry:@.%a@." Sbm_obs.pp trace;

  (* Formal equivalence gate, like the paper's industrial flow. *)
  (match Sbm_cec.Cec.check aig optimized with
  | Sbm_cec.Cec.Equivalent -> Fmt.pr "equivalence: proven@."
  | Sbm_cec.Cec.Counterexample _ -> failwith "optimization broke the network!"
  | Sbm_cec.Cec.Unknown -> Fmt.pr "equivalence: inconclusive@.");

  (* Map to LUT-6, the EPFL competition metric. *)
  let mapping = Sbm_lutmap.Lut_map.map optimized in
  Fmt.pr "LUT-6:  %d luts, %d levels@." mapping.Sbm_lutmap.Lut_map.lut_count
    mapping.Sbm_lutmap.Lut_map.depth
