(* Reproduction of the paper's Figure 1 scenario: a function f over
   x1..x5 that contains a subfunction g, rewritten as f = (df/dg) ^ g
   by the Boolean-difference engine when the difference network is
   small.

   Run with:  dune exec examples/boolean_difference_demo.exe *)

module Aig = Sbm_aig.Aig
module Partition = Sbm_partition.Partition

let () =
  (* Fig. 1(a): a 5-input network computing f and g (g in gray in the
     paper). g = (x1|x2) & x3; f agrees with g except on a thin slice,
     so the difference f^g has a compact implementation. *)
  let aig = Aig.create () in
  let x1 = Aig.add_input aig in
  let x2 = Aig.add_input aig in
  let x3 = Aig.add_input aig in
  let x4 = Aig.add_input aig in
  let x5 = Aig.add_input aig in
  let g = Aig.band aig (Aig.bor aig x1 x2) x3 in
  (* f = g xor (x4 & x5), but implemented two-level from primary
     inputs with no structural sharing with g — the shape Alg. 2 is
     designed to untangle. *)
  let cube lits = Aig.band_list aig lits in
  let f =
    Aig.bor_list aig
      [
        cube [ x1; x3; Aig.lnot x4 ];
        cube [ x1; x3; Aig.lnot x5 ];
        cube [ x2; x3; Aig.lnot x4 ];
        cube [ x2; x3; Aig.lnot x5 ];
        cube [ Aig.lnot x1; Aig.lnot x2; x4; x5 ];
        cube [ Aig.lnot x3; x4; x5 ];
      ]
  in
  ignore (Aig.add_output aig f);
  ignore (Aig.add_output aig g);

  Fmt.pr "network (Fig. 1a): %a@." Aig.pp_stats aig;

  (* Show the Boolean-difference computation directly (Alg. 1). *)
  let part = Partition.whole aig in
  let ctx = Sbm_core.Bdd_bridge.build aig part in
  let fn = Aig.node_of f and gn = Aig.node_of g in
  (match
     Sbm_core.Boolean_difference.compute ctx
       Sbm_core.Boolean_difference.default_config ~f:fn ~g:gn
   with
  | Some candidate ->
    let gain = Aig.gain_of_replacement aig ~root:fn ~candidate in
    Fmt.pr "Alg.1 found a candidate: f = (df/dg) xor g, exact gain = %d nodes@." gain;
    Aig.delete_dangling aig (Aig.node_of candidate)
  | None -> Fmt.pr "Alg.1 filtered the pair@.");

  (* Now run the full resubstitution flow (Alg. 2). *)
  let before = Aig.size aig in
  let original = Aig.copy aig in
  let total = Sbm_core.Diff_resub.optimize aig in
  let aig, _ = Aig.compact aig in
  Fmt.pr "Alg.2 rewrote the network: %d -> %d nodes (gain %d)@." before
    (Aig.size aig) total;
  (match Sbm_cec.Cec.check original aig with
  | Sbm_cec.Cec.Equivalent -> Fmt.pr "equivalence: proven@."
  | _ -> failwith "Boolean difference broke the network!")
