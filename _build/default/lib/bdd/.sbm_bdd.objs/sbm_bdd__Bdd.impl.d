lib/bdd/bdd.ml: Array Hashtbl List Sbm_truthtable Stdlib
