lib/bdd/bdd.mli: Sbm_truthtable
