module Tt = Sbm_truthtable.Tt

(* Expansion cost of replacing leaf [v] by its fanins: the number of
   new leaves added. Negative or zero costs shrink or keep the cut
   width and are always good. *)
let expansion_cost aig leaf_set v =
  if not (Aig.is_and aig v) then max_int
  else begin
    let f0 = Aig.node_of (Aig.fanin0 aig v) in
    let f1 = Aig.node_of (Aig.fanin1 aig v) in
    let cost_of w = if Hashtbl.mem leaf_set w || w = 0 then 0 else 1 in
    let c = cost_of f0 + (if f1 <> f0 then cost_of f1 else 0) in
    c - 1
  end

let reconv_cut aig root ~max_leaves =
  let leaf_set : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Each node is expanded at most once: on reconvergent structures a
     removed leaf can reappear through another expansion, and without
     this rule the loop oscillates. *)
  let expanded : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let add v = if v <> 0 && not (Hashtbl.mem leaf_set v) then Hashtbl.add leaf_set v () in
  add (Aig.node_of (Aig.fanin0 aig root));
  add (Aig.node_of (Aig.fanin1 aig root));
  let continue_ = ref true in
  while !continue_ do
    (* Pick the expandable leaf of minimum cost. *)
    let best = ref None in
    Hashtbl.iter
      (fun v () ->
        if v <> root && Aig.is_and aig v && not (Hashtbl.mem expanded v) then begin
          let c = expansion_cost aig leaf_set v in
          if c < max_int then begin
            match !best with
            | Some (bc, _) when bc <= c -> ()
            | Some _ | None -> best := Some (c, v)
          end
        end)
      leaf_set;
    match !best with
    | Some (c, v) when Hashtbl.length leaf_set + c <= max_leaves ->
      Hashtbl.add expanded v ();
      Hashtbl.remove leaf_set v;
      add (Aig.node_of (Aig.fanin0 aig v));
      add (Aig.node_of (Aig.fanin1 aig v))
    | Some _ | None -> continue_ := false
  done;
  let leaves = Hashtbl.fold (fun v () acc -> v :: acc) leaf_set [] in
  Array.of_list (List.sort Stdlib.compare leaves)

let cone_tt aig root leaves =
  let n = Array.length leaves in
  if n > Tt.max_vars then invalid_arg "Refactor.cone_tt: too many leaves";
  let tts : (int, Tt.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri (fun i v -> Hashtbl.replace tts v (Tt.var n i)) leaves;
  Hashtbl.replace tts 0 (Tt.const0 n);
  let rec eval v =
    match Hashtbl.find_opt tts v with
    | Some tt -> tt
    | None ->
      if not (Aig.is_and aig v) then
        invalid_arg "Refactor.cone_tt: cone escapes the leaf set";
      let f0 = Aig.fanin0 aig v and f1 = Aig.fanin1 aig v in
      let t0 = eval (Aig.node_of f0) in
      let t1 = eval (Aig.node_of f1) in
      let t0 = if Aig.is_compl f0 then Tt.bnot t0 else t0 in
      let t1 = if Aig.is_compl f1 then Tt.bnot t1 else t1 in
      let tt = Tt.band t0 t1 in
      Hashtbl.replace tts v tt;
      tt
  in
  eval root

let refactor_node aig ~zero_gain ~max_leaves v =
  let leaves = reconv_cut aig v ~max_leaves in
  if Array.length leaves < 2 || Array.length leaves > Tt.max_vars then 0
  else begin
    let tt = cone_tt aig v leaves in
    let leaf_lits = Array.map (fun leaf -> Aig.lit_of leaf false) leaves in
    let candidate = Synth.of_tt aig tt leaf_lits in
    if Aig.node_of candidate = v then 0
    else if Aig.in_tfi aig ~node:v ~root:(Aig.node_of candidate) then begin
      (* Strashing rebuilt v inside the candidate: skip (cycle). *)
      Aig.delete_dangling aig (Aig.node_of candidate);
      0
    end
    else begin
      let gain = Aig.gain_of_replacement aig ~root:v ~candidate in
      if gain > 0 || (zero_gain && gain = 0) then begin
        Aig.replace aig v candidate;
        gain
      end
      else begin
        Aig.delete_dangling aig (Aig.node_of candidate);
        0
      end
    end
  end

let run ?(zero_gain = false) ?(max_leaves = 10) ?(min_mffc = 0) aig =
  let max_leaves = min max_leaves Tt.max_vars in
  let order = Aig.topo aig in
  let total = ref 0 in
  Array.iter
    (fun v ->
      if Aig.is_and aig v && (min_mffc <= 1 || Aig.mffc_size aig v >= min_mffc) then
        total := !total + refactor_node aig ~zero_gain ~max_leaves v)
    order;
  !total
