let write aig =
  let buf = Buffer.create 4096 in
  let order = Aig.topo aig in
  let ninputs = Aig.num_inputs aig in
  let nands = Aig.size aig in
  (* Renumber: input i gets variable i+1; ANDs follow topologically. *)
  let var_of = Array.make (Aig.num_nodes aig) (-1) in
  for i = 0 to ninputs - 1 do
    var_of.(Aig.node_of (Aig.input_lit aig i)) <- i + 1
  done;
  let next = ref (ninputs + 1) in
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        var_of.(v) <- !next;
        incr next
      end)
    order;
  let maxvar = !next - 1 in
  let lit_out l =
    let v = Aig.node_of l in
    let base = if v = 0 then 0 else 2 * var_of.(v) in
    base lor (l land 1)
  in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" maxvar ninputs (Aig.num_outputs aig) nands);
  for i = 0 to ninputs - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (2 * (i + 1)))
  done;
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit_out l)))
    (Aig.outputs aig);
  Array.iter
    (fun v ->
      if Aig.is_and aig v then
        Buffer.add_string buf
          (Printf.sprintf "%d %d %d\n" (2 * var_of.(v))
             (lit_out (Aig.fanin0 aig v))
             (lit_out (Aig.fanin1 aig v))))
    order;
  Buffer.contents buf

let write_file aig path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write aig))

let read s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  match lines with
  | [] -> failwith "Aiger.read: empty input"
  | header :: rest ->
    let maxvar, ninputs, nlatches, noutputs, nands =
      match String.split_on_char ' ' (String.trim header) with
      | [ "aag"; m; i; l; o; a ] ->
        (int_of_string m, int_of_string i, int_of_string l, int_of_string o, int_of_string a)
      | _ -> failwith "Aiger.read: bad header"
    in
    if nlatches <> 0 then failwith "Aiger.read: latches unsupported";
    let aig = Aig.create ~expected:(maxvar + 2) () in
    (* map from aiger variable to our literal *)
    let map = Array.make (maxvar + 1) (-1) in
    map.(0) <- Aig.const0;
    let lit_in l =
      let v = l / 2 in
      if v > maxvar || map.(v) < 0 then failwith "Aiger.read: undefined literal";
      map.(v) lxor (l land 1)
    in
    let rest = Array.of_list rest in
    if Array.length rest < ninputs + noutputs + nands then
      failwith "Aiger.read: truncated file";
    for i = 0 to ninputs - 1 do
      let l = int_of_string (String.trim rest.(i)) in
      if l mod 2 <> 0 then failwith "Aiger.read: complemented input";
      map.(l / 2) <- Aig.add_input aig
    done;
    (* AND definitions may reference later variables only in malformed
       files; process in order, as the format requires lhs > rhs. *)
    for i = 0 to nands - 1 do
      let line = String.trim rest.(ninputs + noutputs + i) in
      match String.split_on_char ' ' line with
      | [ lhs; rhs0; rhs1 ] ->
        let lhs = int_of_string lhs in
        if lhs mod 2 <> 0 then failwith "Aiger.read: complemented AND lhs";
        let f0 = lit_in (int_of_string rhs0) in
        let f1 = lit_in (int_of_string rhs1) in
        map.(lhs / 2) <- Aig.band aig f0 f1
      | _ -> failwith "Aiger.read: bad AND line"
    done;
    for i = 0 to noutputs - 1 do
      let l = int_of_string (String.trim rest.(ninputs + i)) in
      ignore (Aig.add_output aig (lit_in l))
    done;
    aig

(* Binary AIGER: the AND section stores, for each AND in variable
   order, the two differences (lhs - rhs0) and (rhs0 - rhs1) as
   LEB128-style 7-bit varints. *)

let write_varint buf x =
  let x = ref x in
  while !x >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!x land 0x7f)));
    x := !x lsr 7
  done;
  Buffer.add_char buf (Char.chr !x)

let write_binary aig =
  let buf = Buffer.create 4096 in
  let order = Aig.topo aig in
  let ninputs = Aig.num_inputs aig in
  let nands = Aig.size aig in
  let var_of = Array.make (Aig.num_nodes aig) (-1) in
  for i = 0 to ninputs - 1 do
    var_of.(Aig.node_of (Aig.input_lit aig i)) <- i + 1
  done;
  let next = ref (ninputs + 1) in
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        var_of.(v) <- !next;
        incr next
      end)
    order;
  let maxvar = !next - 1 in
  let lit_out l =
    let v = Aig.node_of l in
    let base = if v = 0 then 0 else 2 * var_of.(v) in
    base lor (l land 1)
  in
  Buffer.add_string buf
    (Printf.sprintf "aig %d %d 0 %d %d\n" maxvar ninputs (Aig.num_outputs aig) nands);
  (* In binary mode, input literals are implicit. *)
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit_out l)))
    (Aig.outputs aig);
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        let lhs = 2 * var_of.(v) in
        let r0 = lit_out (Aig.fanin0 aig v) in
        let r1 = lit_out (Aig.fanin1 aig v) in
        (* The format requires lhs > rhs0 >= rhs1. *)
        let r0, r1 = if r0 >= r1 then (r0, r1) else (r1, r0) in
        write_varint buf (lhs - r0);
        write_varint buf (r0 - r1)
      end)
    order;
  Buffer.contents buf

let read_binary s =
  let pos = ref 0 in
  let len = String.length s in
  let line () =
    let start = !pos in
    while !pos < len && s.[!pos] <> '\n' do
      incr pos
    done;
    let l = String.sub s start (!pos - start) in
    if !pos < len then incr pos;
    l
  in
  let header = line () in
  let maxvar, ninputs, nlatches, noutputs, nands =
    match String.split_on_char ' ' (String.trim header) with
    | [ "aig"; m; i; l; o; a ] ->
      (int_of_string m, int_of_string i, int_of_string l, int_of_string o, int_of_string a)
    | _ -> failwith "Aiger.read_binary: bad header"
  in
  if nlatches <> 0 then failwith "Aiger.read_binary: latches unsupported";
  let out_lits = Array.init noutputs (fun _ -> int_of_string (String.trim (line ()))) in
  let read_varint () =
    let x = ref 0 in
    let shift = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      if !pos >= len then failwith "Aiger.read_binary: truncated varint";
      let byte = Char.code s.[!pos] in
      incr pos;
      x := !x lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte < 0x80 then continue_ := false
    done;
    !x
  in
  let aig = Aig.create ~expected:(maxvar + 2) () in
  let map = Array.make (maxvar + 1) (-1) in
  map.(0) <- Aig.const0;
  for i = 1 to ninputs do
    map.(i) <- Aig.add_input aig
  done;
  let lit_in l =
    let v = l / 2 in
    if v > maxvar || map.(v) < 0 then failwith "Aiger.read_binary: undefined literal";
    map.(v) lxor (l land 1)
  in
  for i = 0 to nands - 1 do
    let lhs = 2 * (ninputs + 1 + i) in
    let d0 = read_varint () in
    let d1 = read_varint () in
    let r0 = lhs - d0 in
    let r1 = r0 - d1 in
    if r0 < 0 || r1 < 0 then failwith "Aiger.read_binary: bad deltas";
    map.(lhs / 2) <- Aig.band aig (lit_in r0) (lit_in r1)
  done;
  Array.iter (fun l -> ignore (Aig.add_output aig (lit_in l))) out_lits;
  aig

let read_file path =
  let content =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  in
  if String.length content >= 4 && String.sub content 0 4 = "aig " then
    read_binary content
  else read content
