(** ASCII AIGER (AAG) reading and writing.

    Combinational subset only (no latches): enough to exchange
    networks with ABC/mockturtle-style tools and to persist EPFL-style
    benchmarks. *)

(** [write aig] renders the network in [aag] format. Nodes are
    renumbered (inputs first, then ANDs topologically). *)
val write : Aig.t -> string

(** [write_file aig path] writes {!write}'s output to a file. *)
val write_file : Aig.t -> string -> unit

(** [read s] parses an [aag] string.
    @raise Failure on malformed input or latch sections. *)
val read : string -> Aig.t

(** [read_file path] parses the file at [path]; both [aag] (ASCII)
    and [aig] (binary) headers are accepted. *)
val read_file : string -> Aig.t

(** [write_binary aig] renders the network in the binary [aig] format
    (delta-encoded AND section), the format the EPFL suite
    distributes. *)
val write_binary : Aig.t -> string

(** [read_binary s] parses a binary [aig] string. *)
val read_binary : string -> Aig.t
