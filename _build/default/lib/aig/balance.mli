(** AND-tree balancing.

    Rebuilds the AIG bottom-up, decomposing maximal single-fanout AND
    trees into their leaves and recombining the leaves lowest-level
    first (Huffman style). Reduces depth without increasing size; the
    flow runs it to keep "a tight control on the number of levels"
    (paper, Section V-A). *)

(** [run aig] is a freshly built, balanced AIG with the same I/O
    signature and functionality. *)
val run : Aig.t -> Aig.t
