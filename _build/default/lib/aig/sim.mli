(** Bit-parallel simulation of AIGs.

    Simulation drives equivalence-candidate detection (SAT sweeping),
    switching-activity estimation (ASIC power proxy) and the
    test-suite's semantic checks. Each node carries a 64-bit word, so
    one pass evaluates 64 input patterns. *)

(** [simulate aig words] runs one 64-pattern pass; [words.(i)] is the
    pattern word of primary input [i]. The result maps node ids to
    values (dead nodes hold 0). *)
val simulate : Aig.t -> int64 array -> int64 array

(** [lit_value values l] reads a literal out of a node-value map. *)
val lit_value : int64 array -> Aig.lit -> int64

(** [output_values aig values] extracts output words. *)
val output_values : Aig.t -> int64 array -> int64 array

(** [random_inputs aig rng] draws one random pattern word per input. *)
val random_inputs : Aig.t -> Sbm_util.Rng.t -> int64 array

(** [eval aig bits] evaluates a single input assignment; [bits.(i)]
    is input [i]. Returns one boolean per output. *)
val eval : Aig.t -> bool array -> bool array

(** [toggle_rates aig ~rounds rng] estimates per-node switching
    activity in [0,1] from [rounds * 64] random patterns: the
    probability that consecutive random patterns differ (used by the
    ASIC power model). Dead nodes get 0. *)
val toggle_rates : Aig.t -> rounds:int -> Sbm_util.Rng.t -> float array
