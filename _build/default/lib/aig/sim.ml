let lit_value values l =
  let v = values.(Aig.node_of l) in
  if Aig.is_compl l then Int64.lognot v else v

let simulate aig words =
  if Array.length words <> Aig.num_inputs aig then invalid_arg "Sim.simulate";
  let values = Array.make (Aig.num_nodes aig) 0L in
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_input aig v then values.(v) <- words.(Aig.input_index aig v)
      else if Aig.is_and aig v then
        values.(v) <-
          Int64.logand
            (lit_value values (Aig.fanin0 aig v))
            (lit_value values (Aig.fanin1 aig v)))
    order;
  values

let output_values aig values =
  Array.map (fun l -> lit_value values l) (Aig.outputs aig)

let random_inputs aig rng =
  Array.init (Aig.num_inputs aig) (fun _ -> Sbm_util.Rng.next64 rng)

let eval aig bits =
  if Array.length bits <> Aig.num_inputs aig then invalid_arg "Sim.eval";
  let words = Array.map (fun b -> if b then -1L else 0L) bits in
  let values = simulate aig words in
  Array.map (fun l -> Int64.logand (lit_value values l) 1L = 1L) (Aig.outputs aig)

let popcount64 w =
  let rec go w acc = if w = 0L then acc else go (Int64.logand w (Int64.sub w 1L)) (acc + 1) in
  go w 0

let toggle_rates aig ~rounds rng =
  let n = Aig.num_nodes aig in
  let toggles = Array.make n 0 in
  let prev = Array.make n 0L in
  let total_bits = ref 0 in
  for round = 0 to rounds - 1 do
    let values = simulate aig (random_inputs aig rng) in
    if round > 0 then begin
      for v = 0 to n - 1 do
        (* Toggles between the last bit of the previous word and this
           word's bits, approximated by cross-word popcount. *)
        toggles.(v) <- toggles.(v) + popcount64 (Int64.logxor values.(v) prev.(v))
      done;
      total_bits := !total_bits + 64
    end;
    Array.blit values 0 prev 0 n
  done;
  if !total_bits = 0 then Array.make n 0.0
  else Array.map (fun t -> float_of_int t /. float_of_int !total_bits) toggles
