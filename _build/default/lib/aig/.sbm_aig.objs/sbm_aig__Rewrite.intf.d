lib/aig/rewrite.mli: Aig
