lib/aig/resub.mli: Aig
