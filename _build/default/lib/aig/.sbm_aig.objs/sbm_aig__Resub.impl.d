lib/aig/resub.ml: Aig Array Hashtbl List Printf Refactor Sbm_truthtable Sys
