lib/aig/rewrite.ml: Aig Array Cut List Synth
