lib/aig/aig.ml: Array Format Hashtbl List Printf Queue Sbm_util Seq Stdlib
