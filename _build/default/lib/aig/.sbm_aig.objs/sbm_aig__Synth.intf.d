lib/aig/synth.mli: Aig Sbm_truthtable
