lib/aig/cut.mli: Aig Sbm_truthtable
