lib/aig/sim.mli: Aig Sbm_util
