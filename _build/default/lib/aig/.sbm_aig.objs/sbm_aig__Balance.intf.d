lib/aig/balance.mli: Aig
