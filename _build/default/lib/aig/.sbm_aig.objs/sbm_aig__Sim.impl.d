lib/aig/sim.ml: Aig Array Int64 Sbm_util
