lib/aig/balance.ml: Aig Array Hashtbl List
