lib/aig/refactor.mli: Aig Sbm_truthtable
