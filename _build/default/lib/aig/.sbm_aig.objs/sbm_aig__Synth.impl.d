lib/aig/synth.ml: Aig Array Hashtbl List Sbm_truthtable
