lib/aig/cut.ml: Aig Array Hashtbl Int64 List Sbm_truthtable
