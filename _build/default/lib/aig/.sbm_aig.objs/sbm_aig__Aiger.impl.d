lib/aig/aiger.ml: Aig Array Buffer Char Fun List Printf String
