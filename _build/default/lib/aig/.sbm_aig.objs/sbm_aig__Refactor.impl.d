lib/aig/refactor.ml: Aig Array Hashtbl List Sbm_truthtable Stdlib Synth
