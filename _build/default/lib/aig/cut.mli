(** K-feasible cut enumeration with cut functions.

    A cut of node [n] is a set of nodes (leaves) such that every path
    from an input to [n] passes through a leaf. Cuts up to 6 leaves
    carry their local function as a single 64-bit truth table (low
    [2^|leaves|] bits significant, leaves sorted ascending = variable
    order). The enumeration keeps at most [max_cuts] cuts per node
    (priority cuts), always including the trivial cut [{n}]. *)

type cut = {
  leaves : int array; (** sorted node ids *)
  tt : int64; (** function of the node over the leaves *)
}

(** [enumerate aig ~k ~max_cuts] computes cut sets for all live nodes;
    index the result by node id. [k] must be between 2 and 6. Dead
    nodes have empty sets. *)
val enumerate : Aig.t -> k:int -> max_cuts:int -> cut list array

(** [local aig v ~k ~max_cuts ~depth] computes the cut set of a single
    node against the current graph, recursing at most [depth] levels
    below [v] (deeper nodes contribute only their trivial cut). Always
    consistent with the live structure, unlike a stale global
    enumeration, so optimization passes use it while mutating. *)
val local : Aig.t -> int -> k:int -> max_cuts:int -> depth:int -> cut list

(** [cut_tt_full c] is the cut function as a {!Sbm_truthtable.Tt.t} on
    [|leaves|] variables. *)
val cut_tt_full : cut -> Sbm_truthtable.Tt.t

(** [tt_var m j] is the single-word truth-table pattern of variable
    [j] over [m] variables (low [2^m] bits significant). *)
val tt_var : int -> int -> int64

(** [tt_mask m] masks the significant bits of an [m]-variable
    single-word table. *)
val tt_mask : int -> int64

(** [stretch tt leaves super] re-expresses [tt] (over [leaves]) on the
    superset leaf list [super]; both must be sorted. *)
val stretch : int64 -> int array -> int array -> int64
