(** DAG-aware AIG rewriting (cf. Mishchenko et al., DAC'06 — the
    paper's reference [12] and the "rewriting" move of the gradient
    engine).

    For every AND node, 4-input cuts are enumerated against the live
    structure, the cut function is resynthesized through {!Synth}, and
    the replacement is committed when the exact gain (MFFC saving
    minus fresh logic, sharing included) is positive — or zero when
    [zero_gain] is set, which reshapes the network to escape local
    minima (paper, Section III-D). *)

(** [run ?zero_gain aig] rewrites every node once, in topological
    order. Returns the total node-count gain (>= 0). *)
val run : ?zero_gain:bool -> Aig.t -> int
