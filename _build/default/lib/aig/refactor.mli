(** Refactoring: collapse-and-resynthesize of large cones.

    Implements the "collapse and Boolean decomposition, applied on
    reconvergent MFFC of the logic network" step of the paper's
    resynthesis script (Section V-A) and the "refactoring" move of the
    gradient engine. A reconvergence-driven cut of up to [max_leaves]
    inputs is computed for each node, the cone function is collapsed
    into a truth table, and {!Synth} rebuilds it from scratch; the
    change is kept on positive exact gain (zero gain if requested). *)

(** [run ?zero_gain ?max_leaves ?min_mffc aig] refactors every node
    once. [max_leaves] defaults to 10 (paper-scale windows); it is
    capped by {!Sbm_truthtable.Tt.max_vars}. [min_mffc] (default 0)
    skips nodes whose maximum fanout-free cone is smaller — they have
    little to reclaim, and the filter removes most of the pass's cost
    on share-heavy networks. Returns the total gain. *)
val run : ?zero_gain:bool -> ?max_leaves:int -> ?min_mffc:int -> Aig.t -> int

(** [reconv_cut aig v ~max_leaves] is the reconvergence-driven cut
    used by [run], exposed for the resubstitution window builder. *)
val reconv_cut : Aig.t -> int -> max_leaves:int -> int array

(** [cone_tt aig v leaves] collapses the cone of [v] over the leaf
    array into a truth table (variable [i] = [leaves.(i)]).
    @raise Invalid_argument if some path from [v] escapes the leaf
    set before reaching an input, or if there are too many leaves. *)
val cone_tt : Aig.t -> int -> int array -> Sbm_truthtable.Tt.t
