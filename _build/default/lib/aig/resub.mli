(** Windowed Boolean resubstitution.

    The classic "resub" move of the gradient engine: rewrite a node as
    a function of up to two divisor nodes already present in its
    window. Candidate divisors are nodes whose structural support lies
    inside the window leaves and which are not in the target's
    transitive fanout; their local functions are collapsed into truth
    tables and matched directly (0-resub) or through one fresh
    AND/OR/XOR gate (1-resub). Gains are exact. *)

(** [run ?zero_gain ?max_leaves ?max_divisors aig] resubstitutes every
    node once; returns the total gain. Defaults: [max_leaves = 8],
    [max_divisors = 40]. *)
val run : ?zero_gain:bool -> ?max_leaves:int -> ?max_divisors:int -> Aig.t -> int

(** [run_node ~zero_gain ~max_leaves ~max_divisors aig v] attempts one
    resubstitution of node [v]; returns the gain (diagnostic /
    fine-grained-driver hook). *)
val run_node :
  zero_gain:bool -> max_leaves:int -> max_divisors:int -> Aig.t -> int -> int
