(** Resynthesis of truth tables into AIG structure.

    The structural back-end of rewriting, refactoring and of the
    BDD-merging step of the Boolean-difference engine ("the node is
    implemented as an AIG obtained using structural hashing", paper
    Section III-C). The decomposition search is memoized and explores,
    per top variable, Shannon expansion, XOR factoring and the
    degenerate single-cofactor cases, keeping the cheapest. *)

(** [of_tt aig tt leaves] builds (or reuses, through the strash table)
    logic computing [tt] where variable [i] of [tt] is driven by
    literal [leaves.(i)]. Returns the root literal. The constructed
    cone is dangling: the caller either commits it with
    {!Aig.replace}/{!Aig.add_output} or discards it with
    {!Aig.delete_dangling}. *)
val of_tt : Aig.t -> Sbm_truthtable.Tt.t -> Aig.lit array -> Aig.lit

(** [cost_of_tt tt] is the number of AND nodes the decomposition would
    use, ignoring sharing with existing logic (an upper bound on the
    real cost). *)
val cost_of_tt : Sbm_truthtable.Tt.t -> int

(** [of_sop aig cubes ~nvars leaves] builds two-level logic for an SOP
    cover (used when an ISOP cover is already available). *)
val of_sop : Aig.t -> Sbm_truthtable.Tt.cube list -> nvars:int -> Aig.lit array -> Aig.lit
