(* Evaluate one candidate replacement for [v]: keep it (pinned) if it
   beats [best], otherwise release its dangling cone. The best
   candidate stays pinned so deleting a losing sibling that shares
   structure with it cannot collect it. *)
let consider aig v best candidate =
  if Aig.node_of candidate = v then best
  else begin
    let gain = Aig.gain_of_replacement aig ~root:v ~candidate in
    match best with
    | Some (bg, bc) when bg >= gain ->
      if Aig.node_of candidate <> Aig.node_of bc then
        Aig.delete_dangling aig (Aig.node_of candidate);
      best
    | Some (_, bc) ->
      Aig.pin aig candidate;
      Aig.unpin aig bc;
      Some (gain, candidate)
    | None ->
      Aig.pin aig candidate;
      Some (gain, candidate)
  end

let rewrite_node aig ~zero_gain v =
  let cuts = Cut.local aig v ~k:4 ~max_cuts:10 ~depth:8 in
  let best = ref None in
  List.iter
    (fun (c : Cut.cut) ->
      if Array.length c.leaves >= 2 then begin
        let tt = Cut.cut_tt_full c in
        let leaves = Array.map (fun leaf -> Aig.lit_of leaf false) c.leaves in
        let candidate = Synth.of_tt aig tt leaves in
        best := consider aig v !best candidate
      end)
    cuts;
  match !best with
  | None -> 0
  | Some (_, candidate) ->
    Aig.unpin ~collect:false aig candidate;
    if Aig.in_tfi aig ~node:v ~root:(Aig.node_of candidate) then begin
      (* Strashing rebuilt v inside the candidate: committing would
         close a cycle. *)
      Aig.delete_dangling aig (Aig.node_of candidate);
      0
    end
    else begin
      (* The gain recorded during scanning may have shifted as sibling
         candidates were released; recompute before committing. *)
      let gain = Aig.gain_of_replacement aig ~root:v ~candidate in
      if gain > 0 || (zero_gain && gain = 0) then begin
        Aig.replace aig v candidate;
        gain
      end
      else begin
        Aig.delete_dangling aig (Aig.node_of candidate);
        0
      end
    end

let run ?(zero_gain = false) aig =
  let order = Aig.topo aig in
  let total = ref 0 in
  Array.iter
    (fun v -> if Aig.is_and aig v then total := !total + rewrite_node aig ~zero_gain v)
    order;
  !total
