(** Truth-table MSPF (the paper's baseline, reference [1]).

    Section IV-C positions the BDD-based MSPF of {!Mspf} against "the
    truth table methods to approximate MSPF" of the prior Boolean
    resynthesis flow. This module implements that baseline: identical
    permissible-function optimization, but with bit-packed truth
    tables as the reasoning engine, which caps windows at
    [Tt.max_vars - 1] leaves (the extra variable models the node under
    analysis). The ablation bench compares reach and QoR of the two
    engines. *)

type config = {
  limits : Sbm_partition.Partition.limits;
      (** [max_leaves] is clamped to [Tt.max_vars - 1] *)
  max_candidates : int;
}

val default_config : config

(** [run ?config aig] applies TT-based MSPF optimization in place and
    returns the total size gain. *)
val run : ?config:config -> Sbm_aig.Aig.t -> int
