lib/core/flow.ml: Diff_resub Gradient Hetero_kernel Logs Mspf Sbm_aig Sbm_sat
