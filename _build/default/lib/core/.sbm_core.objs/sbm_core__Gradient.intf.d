lib/core/gradient.mli: Sbm_aig
