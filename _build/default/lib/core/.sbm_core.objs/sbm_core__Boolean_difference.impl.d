lib/core/boolean_difference.ml: Bdd_bridge Sbm_aig Sbm_bdd
