lib/core/flow.mli: Sbm_aig
