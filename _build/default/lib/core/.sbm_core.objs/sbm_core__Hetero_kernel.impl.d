lib/core/hetero_kernel.ml: Array Hashtbl List Option Sbm_aig Sbm_sop
