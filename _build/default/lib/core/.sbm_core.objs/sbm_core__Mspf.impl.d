lib/core/mspf.ml: Array Bdd_bridge Hashtbl List Option Sbm_aig Sbm_bdd Sbm_partition
