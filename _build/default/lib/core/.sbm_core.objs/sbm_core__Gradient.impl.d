lib/core/gradient.ml: Hashtbl Hetero_kernel List Mspf Option Queue Sbm_aig Sbm_partition
