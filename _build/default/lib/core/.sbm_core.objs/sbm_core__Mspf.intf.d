lib/core/mspf.mli: Sbm_aig Sbm_partition
