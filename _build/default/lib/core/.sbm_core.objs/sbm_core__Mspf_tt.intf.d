lib/core/mspf_tt.mli: Sbm_aig Sbm_partition
