lib/core/diff_resub.mli: Boolean_difference Sbm_aig Sbm_partition
