lib/core/diff_resub.ml: Array Bdd_bridge Boolean_difference Int64 List Sbm_aig Sbm_bdd Sbm_partition Sbm_util
