lib/core/mspf_tt.ml: Array Hashtbl List Option Sbm_aig Sbm_partition Sbm_truthtable Seq
