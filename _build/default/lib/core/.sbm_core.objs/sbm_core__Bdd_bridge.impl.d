lib/core/bdd_bridge.ml: Array Hashtbl List Option Sbm_aig Sbm_bdd Sbm_partition Seq
