lib/core/boolean_difference.mli: Bdd_bridge Sbm_aig
