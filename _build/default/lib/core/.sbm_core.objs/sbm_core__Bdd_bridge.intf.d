lib/core/bdd_bridge.mli: Sbm_aig Sbm_bdd Sbm_partition
