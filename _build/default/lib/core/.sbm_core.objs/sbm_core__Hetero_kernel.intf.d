lib/core/hetero_kernel.mli: Sbm_aig
