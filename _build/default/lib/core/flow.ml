module Aig = Sbm_aig.Aig

type effort = Low | High

let keep_better aig candidate =
  if Aig.size candidate <= Aig.size aig then candidate else aig

(* resyn2rs-like algebraic/AIG script. *)
let baseline aig0 =
  let aig = ref (fst (Aig.compact aig0)) in
  let step f = aig := f !aig in
  let in_place f = step (fun a -> ignore (f a); a) in
  step (fun a -> keep_better a (Sbm_aig.Balance.run a));
  in_place (fun a -> Sbm_aig.Rewrite.run a);
  in_place (fun a -> Sbm_aig.Refactor.run ~max_leaves:8 ~min_mffc:2 a);
  step (fun a -> keep_better a (Sbm_aig.Balance.run a));
  in_place (fun a -> Sbm_aig.Resub.run ~max_leaves:8 ~max_divisors:30 a);
  in_place (fun a -> Sbm_aig.Rewrite.run a);
  in_place (fun a -> Sbm_aig.Rewrite.run ~zero_gain:true a);
  step (fun a -> keep_better a (Sbm_aig.Balance.run a));
  in_place (fun a -> Sbm_aig.Resub.run ~max_leaves:10 ~max_divisors:40 a);
  in_place (fun a -> Sbm_aig.Refactor.run ~zero_gain:true ~max_leaves:10 ~min_mffc:2 a);
  in_place (fun a -> Sbm_aig.Rewrite.run ~zero_gain:true a);
  step (fun a -> keep_better a (Sbm_aig.Balance.run a));
  fst (Aig.compact !aig)

let sbm_iteration ~effort aig0 =
  let aig = ref aig0 in
  let checkpoint name =
    Logs.debug (fun m -> m "flow: %s -> size %d" name (Aig.size !aig))
  in
  (* 1. AIG optimization: state-of-the-art script + gradient engine. *)
  aig := baseline !aig;
  checkpoint "baseline";
  (* The paper's cost budget (100) counts partition-local moves; our
     moves sweep the whole network, so the flow uses a smaller global
     budget with the same semantics. *)
  let budget = match effort with Low -> 12 | High -> 30 in
  let optimized, _stats =
    Gradient.run ~config:{ Gradient.default_config with budget } !aig
  in
  aig := keep_better !aig optimized;
  checkpoint "gradient";
  (* 2. Heterogeneous elimination for kernel extraction on
     medium-large partitions. *)
  aig := keep_better !aig (Hetero_kernel.run !aig);
  checkpoint "hetero-kernel";
  (* 3. Enhanced MSPF computation on medium partitions with BDDs. *)
  ignore (Mspf.run !aig);
  aig := fst (Aig.compact !aig);
  checkpoint "mspf";
  (* 4. Collapse and Boolean decomposition on reconvergent MFFCs. *)
  ignore
    (Sbm_aig.Refactor.run
       ~max_leaves:(match effort with Low -> 10 | High -> 12)
       ~min_mffc:2 !aig);
  checkpoint "collapse-decompose";
  (* 5. Boolean-difference-based optimization, to unveil hard-to-find
     rewrites and escape local minima. *)
  let dconfig =
    { Diff_resub.default_config with accept_zero = (effort = High) }
  in
  ignore (Diff_resub.run ~config:dconfig !aig);
  aig := fst (Aig.compact !aig);
  checkpoint "boolean-difference";
  (* 6. SAT sweeping and redundancy removal. *)
  let swept, _ = Sbm_sat.Sweep.run !aig in
  aig := keep_better !aig swept;
  ignore (Sbm_sat.Redundancy.run ~max_candidates:(match effort with Low -> 50 | High -> 200) !aig);
  aig := fst (Aig.compact !aig);
  checkpoint "sat-sweep";
  !aig

let sbm_once ?(effort = High) aig0 =
  let aig, _ = Aig.compact aig0 in
  sbm_iteration ~effort aig

let sbm ?(effort = High) aig0 =
  (* The optimization flow is iterated twice, with different
     efforts (Section V-A). *)
  let aig, _ = Aig.compact aig0 in
  let aig = sbm_iteration ~effort:Low aig in
  let aig = sbm_iteration ~effort aig in
  aig
