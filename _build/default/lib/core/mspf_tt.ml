module Aig = Sbm_aig.Aig
module Tt = Sbm_truthtable.Tt
module Partition = Sbm_partition.Partition

type config = {
  limits : Partition.limits;
  max_candidates : int;
}

let default_config =
  {
    limits = { Partition.default_limits with max_nodes = 80; max_leaves = Tt.max_vars - 1 };
    max_candidates = 64;
  }

(* Per-partition truth-table context: member functions over the leaf
   variables. Members whose fanins leave the (leaves ∪ members) set
   are absent, like budget-overrun nodes in the BDD bridge. *)
type ctx = {
  aig : Aig.t;
  member_set : (int, unit) Hashtbl.t;
  mutable order : int array;
  mutable roots : int array;
  leaves : int array;
  nvars : int; (* leaves + 1 (the free variable for the node) *)
  tts : (int, Tt.t) Hashtbl.t;
}

let live_order ctx =
  let order = Aig.topo ctx.aig in
  Array.of_seq
    (Seq.filter
       (fun v -> Hashtbl.mem ctx.member_set v && Aig.is_and ctx.aig v)
       (Array.to_seq order))

let live_roots ctx =
  let aig = ctx.aig in
  Array.of_seq
    (Seq.filter
       (fun v ->
         let member_refs =
           List.fold_left
             (fun acc fo ->
               if Hashtbl.mem ctx.member_set fo then
                 acc
                 + (if Aig.node_of (Aig.fanin0 aig fo) = v then 1 else 0)
                 + (if Aig.node_of (Aig.fanin1 aig fo) = v then 1 else 0)
               else acc)
             0 (Aig.fanout_nodes aig v)
         in
         Aig.nref aig v > member_refs)
       (Array.to_seq ctx.order))

let compute_tts ctx =
  Hashtbl.reset ctx.tts;
  ctx.order <- live_order ctx;
  ctx.roots <- live_roots ctx;
  let aig = ctx.aig in
  Array.iteri
    (fun i v -> Hashtbl.replace ctx.tts v (Tt.var ctx.nvars i))
    ctx.leaves;
  Array.iter
    (fun v ->
      let fanin_tt f =
        let w = Aig.node_of f in
        let base =
          if w = 0 then Some (Tt.const0 ctx.nvars) else Hashtbl.find_opt ctx.tts w
        in
        Option.map (fun t -> if Aig.is_compl f then Tt.bnot t else t) base
      in
      match (fanin_tt (Aig.fanin0 aig v), fanin_tt (Aig.fanin1 aig v)) with
      | Some t0, Some t1 -> Hashtbl.replace ctx.tts v (Tt.band t0 t1)
      | _ -> ())
    ctx.order

let build aig part =
  let member_set = Hashtbl.create 128 in
  Array.iter (fun v -> Hashtbl.replace member_set v ()) part.Partition.nodes;
  let nvars = Array.length part.Partition.leaves + 1 in
  let ctx =
    {
      aig;
      member_set;
      order = part.Partition.nodes;
      roots = part.Partition.roots;
      leaves = part.Partition.leaves;
      nvars;
      tts = Hashtbl.create 128;
    }
  in
  compute_tts ctx;
  ctx

(* Members inside the cone of a leaf (non-convex partitions): skipped,
   as in the BDD engine. *)
let members_in_leaf_cones ctx =
  let aig = ctx.aig in
  let tainted = Hashtbl.create 64 in
  let visited = Hashtbl.create 256 in
  let stack = ref [] in
  Array.iter (fun leaf -> if Aig.is_and aig leaf then stack := leaf :: !stack) ctx.leaves;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.add visited v ();
        if Hashtbl.mem ctx.member_set v then Hashtbl.replace tainted v ();
        if Aig.is_and aig v then
          stack :=
            Aig.node_of (Aig.fanin0 aig v) :: Aig.node_of (Aig.fanin1 aig v) :: !stack
      end
  done;
  tainted

(* Root functions over leaves + the free variable modelling node [n]. *)
let cofactor_functions ctx n =
  let aig = ctx.aig in
  let vn = Tt.var ctx.nvars (ctx.nvars - 1) in
  let above : (int, Tt.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace above n vn;
  let lookup v =
    match Hashtbl.find_opt above v with
    | Some t -> Some t
    | None -> Hashtbl.find_opt ctx.tts v
  in
  let ok = ref true in
  Array.iter
    (fun v ->
      if !ok && v <> n && Aig.is_and aig v then begin
        let w0 = Aig.node_of (Aig.fanin0 aig v) in
        let w1 = Aig.node_of (Aig.fanin1 aig v) in
        if Hashtbl.mem above w0 || Hashtbl.mem above w1 then begin
          let fanin_tt f =
            let w = Aig.node_of f in
            let base = if w = 0 then Some (Tt.const0 ctx.nvars) else lookup w in
            Option.map (fun t -> if Aig.is_compl f then Tt.bnot t else t) base
          in
          match (fanin_tt (Aig.fanin0 aig v), fanin_tt (Aig.fanin1 aig v)) with
          | Some t0, Some t1 -> Hashtbl.replace above v (Tt.band t0 t1)
          | _ -> ok := false
        end
      end)
    ctx.order;
  if !ok then Some lookup else None

let compute_mspf ctx n =
  match cofactor_functions ctx n with
  | None -> None
  | Some lookup -> (
    let vn = ctx.nvars - 1 in
    let mspf = ref (Tt.const1 ctx.nvars) in
    let aig = ctx.aig in
    let ok = ref true in
    Array.iter
      (fun r ->
        if !ok && (not (Tt.is_const0 !mspf)) && not (Aig.is_dead aig r) then begin
          match lookup r with
          | None -> ok := false
          | Some fr ->
            let f0 = Tt.cofactor0 fr vn in
            let f1 = Tt.cofactor1 fr vn in
            mspf := Tt.band !mspf (Tt.bxnor f0 f1)
        end)
      ctx.roots;
    if !ok then Some !mspf else None)

let connectable ctx config n mspf =
  let aig = ctx.aig in
  match Hashtbl.find_opt ctx.tts n with
  | None -> []
  | Some tn ->
    let care = Tt.bnot mspf in
    let n_care = Tt.band tn care in
    let candidates = ref [] in
    let examined = ref 0 in
    let consider v =
      if
        !examined < config.max_candidates
        && v <> n
        && (not (Aig.is_dead aig v))
        && not (Aig.in_tfi aig ~node:n ~root:v)
      then begin
        match Hashtbl.find_opt ctx.tts v with
        | None -> ()
        | Some tv ->
          incr examined;
          if Tt.equal (Tt.band tv care) n_care then
            candidates := Aig.lit_of v false :: !candidates
          else if Tt.equal (Tt.band (Tt.bnot tv) care) n_care then
            candidates := Aig.lit_of v true :: !candidates
      end
    in
    Array.iter consider ctx.leaves;
    Array.iter consider ctx.order;
    if Tt.is_const0 n_care then candidates := Aig.const0 :: !candidates
    else if Tt.equal n_care care then candidates := Aig.const1 :: !candidates;
    !candidates

let run_partition aig config part total =
  let ctx = build aig part in
  let tainted = ref (members_in_leaf_cones ctx) in
  let by_saving =
    Array.to_list ctx.order
    |> List.filter (fun v -> Aig.is_and aig v)
    |> List.map (fun v -> (Aig.mffc_size aig v, v))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  List.iter
    (fun n ->
      if Aig.is_and aig n && (not (Aig.is_dead aig n)) && not (Hashtbl.mem !tainted n)
      then begin
        match compute_mspf ctx n with
        | None -> ()
        | Some mspf ->
          if not (Tt.is_const0 mspf) then begin
            let candidates = connectable ctx config n mspf in
            let best =
              List.fold_left
                (fun acc candidate ->
                  if Aig.node_of candidate = n then acc
                  else begin
                    let gain = Aig.gain_of_replacement aig ~root:n ~candidate in
                    match acc with
                    | Some (bg, _) when bg >= gain -> acc
                    | Some _ | None -> Some (gain, candidate)
                  end)
                None candidates
            in
            match best with
            | Some (gain, candidate) when gain > 0 ->
              Aig.replace aig n candidate;
              total := !total + gain;
              compute_tts ctx;
              tainted := members_in_leaf_cones ctx
            | Some _ | None -> ()
          end
      end)
    by_saving

let run ?(config = default_config) aig =
  let limits =
    { config.limits with Partition.max_leaves = min config.limits.Partition.max_leaves (Tt.max_vars - 1) }
  in
  let total = ref 0 in
  let parts = Partition.compute aig limits in
  List.iter (fun part -> run_partition aig config part total) parts;
  !total
