(** Synthesis flows (paper Section V-A).

    [baseline] is the conventional algebraic/AIG script standing in
    for "state-of-the-art methods [1]" (a resyn2rs-style sequence of
    balancing, rewriting, refactoring and resubstitution).

    [sbm] is the paper's Boolean resynthesis script: AIG optimization
    (baseline + the gradient engine), heterogeneous elimination for
    kernel extraction on partitioned networks, enhanced MSPF with
    BDDs, collapse & Boolean decomposition on reconvergent MFFCs
    (refactoring with wide cuts), Boolean-difference optimization to
    escape local minima, and SAT sweeping + redundancy removal — the
    whole sequence iterated twice with different efforts, every step
    returning to the AIG representation. *)

type effort = Low | High

(** [baseline aig] is the optimized network under the baseline
    script. The input is not modified. *)
val baseline : Sbm_aig.Aig.t -> Sbm_aig.Aig.t

(** [sbm ?effort aig] runs the full SBM script (default [High]).
    The input is not modified. *)
val sbm : ?effort:effort -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t

(** [sbm_once ?effort aig] is a single iteration of the script (the
    Low-effort half), for runtime-sensitive callers. *)
val sbm_once : ?effort:effort -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t
