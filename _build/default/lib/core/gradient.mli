(** Gradient-based AIG minimization (paper Section IV-A).

    Instead of a fixed script, the engine learns online which local
    moves pay off. Moves are primitive transformations with an
    associated cost (their runtime complexity class); most exist in
    low- and high-effort variants. Selection is waterfall: cheap moves
    are iterated while they gain; at a local minimum (gain 0) more
    expensive moves enter. Per-move success statistics reorder future
    attempts; a cost budget bounds the run and is automatically
    extended while the gain gradient over the last [k] iterations
    exceeds [min_gradient] (paper defaults: budget 100, k = 20,
    gradient 3%). *)

type selection = Waterfall | Parallel

type config = {
  budget : int;
  k : int;
  min_gradient : float;
  selection : selection;
      (** [Waterfall] applies the first gaining move (the paper's
          recommended tradeoff); [Parallel] evaluates all moves at the
          current tier and applies the best. *)
  zero_gain_moves : bool; (** allow network-reshaping zero-gain moves *)
}

val default_config : config

(** Statistics of one run (exposed for the ablation bench). *)
type stats = {
  moves_tried : int;
  moves_gained : int;
  total_gain : int;
  budget_extensions : int;
  move_log : (string * int) list; (** move name, gain — chronological *)
}

(** [run ?config aig] optimizes and returns the (possibly rebuilt)
    AIG together with run statistics. The result never has more nodes
    than the input. *)
val run : ?config:config -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t * stats
