(** Resubstitution flow based on Boolean difference (paper Alg. 2).

    Partitions the network (Section III-B), precomputes per-partition
    BDDs, scans candidate node pairs under structural and functional
    filters, and commits a Boolean-difference rewrite whenever it
    shrinks the network — or keeps it equal-size when [accept_zero]
    is set, "reshaping the network ... and helping escape local
    minima" (Section III-D). *)

type config = {
  diff : Boolean_difference.config;
  limits : Sbm_partition.Partition.limits;
  bdd_node_limit : int; (** manager budget — the paper's memory cap *)
  max_pairs : int; (** max pairs tried per node [f] (Section III-B) *)
  accept_zero : bool;
  monolithic : bool; (** single whole-network partition *)
  overlap : float;
      (** 0 = distinct partitions; > 0 extends each partition into its
          neighbor ("distinct or overlapping", Section III-D) *)
  signature_filter : bool;
      (** functional filtering "similar to [1]" (Section III-B):
          simulation signatures prune pairs whose difference toggles
          on most patterns and is therefore unlikely to have a small
          BDD *)
  objective : [ `Size | `Depth ];
      (** [`Size] is the paper's focus; [`Depth] implements the
          sketched extension ("depth reducing techniques could be
          developed in a similar manner", Section III-A): a rewrite is
          also required not to increase the node's level. *)
}

val default_config : config

(** [run ?config aig] applies the flow in place; returns the total
    size gain. *)
val run : ?config:config -> Sbm_aig.Aig.t -> int
