(** Boolean-difference computation and implementation (paper Alg. 1).

    The Boolean difference of nodes [f] and [g] is
    [∂f/∂g = f xor g]; any [f] can be rewritten as [(∂f/∂g) xor g]
    (Section III-A). Given a partition context with precomputed BDDs,
    {!compute} builds — or finds — a compact implementation of the
    difference and returns the candidate literal for
    [boolean_diff = bdiff_node xor g], applying the size and saving
    filters of Alg. 1. *)

type config = {
  xor_cost : int;
      (** AND nodes needed for a 2-input XOR; technology-dependent
          (Section III-C). *)
  size_limit : int;
      (** Cap on the BDD size of the difference (Alg. 1 line 8);
          the paper found 10 a good QoR/runtime tradeoff. *)
}

val default_config : config

(** [compute ctx config ~f ~g] returns the candidate literal
    implementing [∂f/∂g xor g], or [None] when a filter rejects the
    pair (missing BDD, size cap, saving filter, BDD budget overrun).
    On [Some lit], the candidate may be freshly built and dangling:
    the caller commits it with {!Sbm_aig.Aig.replace} or discards it
    with {!Sbm_aig.Aig.delete_dangling}. *)
val compute : Bdd_bridge.t -> config -> f:int -> g:int -> Sbm_aig.Aig.lit option
