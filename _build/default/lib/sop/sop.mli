(** Two-level sum-of-products algebra.

    Cubes are sorted arrays of integer literals ([2*var + 1] for the
    complemented phase); a cover is a list of cubes interpreted as
    their disjunction, [[]] being constant 0 and [[| |] :: _] (an
    empty cube) making the cover constant 1. Variables are opaque
    integers — the multi-level network uses node ids.

    This module carries the algebraic machinery behind kernel
    extraction and node elimination (paper, Section IV-B): weak
    division, kernels/co-kernels, cover complementation and literal
    bookkeeping. *)

type cube = int array
type cover = cube list

(** {1 Literals} *)

val lit_of : int -> bool -> int
val var_of : int -> int
val lit_compl : int -> int
val lit_is_compl : int -> bool

(** {1 Cubes} *)

(** [cube_of_list lits] sorts and validates a literal list.
    @raise Invalid_argument on duplicate or opposing literals. *)
val cube_of_list : int list -> cube

(** [cube_mul a b] is the conjunction, or [None] when [a] and [b]
    contain opposing literals. *)
val cube_mul : cube -> cube -> cube option

(** [cube_contains a b] is true when [b]'s literals all occur in [a]
    (so cube [a] implies cube [b]). *)
val cube_contains : cube -> cube -> bool

(** [cube_div a b] removes [b]'s literals from [a]; [None] if [b] is
    not contained in [a]. *)
val cube_div : cube -> cube -> cube option

(** [common_cube cover] is the largest cube dividing every cube of the
    cover (the empty cube when none). *)
val common_cube : cover -> cube

(** {1 Covers} *)

(** [normalize cover] sorts cubes, removes duplicates and
    single-cube-contained cubes (absorption). *)
val normalize : cover -> cover

val is_const0 : cover -> bool
val is_const1 : cover -> bool

(** [num_lits cover] is the total literal count, the area metric of
    the elimination / extraction engines. *)
val num_lits : cover -> int

(** [support cover] is the sorted list of variables appearing. *)
val support : cover -> int list

(** [lit_count cover l] counts the cubes containing literal [l]. *)
val lit_count : cover -> int -> int

(** [divide_by_cube cover c] is the quotient of algebraic division by
    a cube: all cubes containing [c], with [c] removed. *)
val divide_by_cube : cover -> cube -> cover

(** [divide cover d] is algebraic (weak) division by cover [d]:
    returns [(quotient, remainder)] with
    [cover = quotient * d + remainder] and quotient maximal. *)
val divide : cover -> cover -> cover * cover

(** [mul a b] is the algebraic product (inconsistent cubes dropped). *)
val mul : cover -> cover -> cover

(** [is_cube_free cover] is true when no non-trivial cube divides all
    cubes. *)
val is_cube_free : cover -> bool

(** [kernels cover] enumerates the kernels of the cover together with
    one co-kernel each. The cover itself is included (with the empty
    co-kernel) when cube-free. Level-0 kernels have no kernels other
    than themselves. *)
val kernels : cover -> (cover * cube) list

(** [kernels_bounded ~limit cover] stops after [limit] kernels. *)
val kernels_bounded : limit:int -> cover -> (cover * cube) list

(** [complement ~max_cubes cover] computes a cover of the Boolean
    complement by Shannon recursion, or [None] when the result would
    exceed [max_cubes] cubes. *)
val complement : max_cubes:int -> cover -> cover option

(** [cofactor cover l] is the cover with literal [l] set true: cubes
    with [lit_compl l] dropped, [l] removed elsewhere. *)
val cofactor : cover -> int -> cover

(** [eval cover assignment] evaluates the cover; [assignment v] gives
    the value of variable [v]. *)
val eval : cover -> (int -> bool) -> bool

(** [canonical cover] is a canonical form usable as a hash key (cubes
    sorted, deduplicated). *)
val canonical : cover -> cube list

(** {1 Two-level minimization}

    A compact Espresso-style loop: literal expansion against the
    cover, absorption, and irredundant-cover extraction. All steps are
    exact (tautology-based) and preserve the function. *)

(** [tautology cover] decides whether the cover is the constant-1
    function, by Shannon recursion with unate shortcuts. *)
val tautology : cover -> bool

(** [cube_covered cover c] is true when cube [c] is contained in the
    cover (i.e. [cover] cofactored by [c] is a tautology). *)
val cube_covered : cover -> cube -> bool

(** [expand cover] greedily removes literals from cubes while the
    enlarged cube stays inside the cover. *)
val expand : cover -> cover

(** [irredundant cover] drops cubes covered by the union of the
    others. *)
val irredundant : cover -> cover

(** [minimize cover] is [irredundant (normalize (expand cover))]. *)
val minimize : cover -> cover
