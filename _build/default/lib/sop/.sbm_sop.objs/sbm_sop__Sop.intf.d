lib/sop/sop.mli:
