lib/sop/network.mli: Sbm_aig Sop
