lib/sop/sop.ml: Array Hashtbl List Option Stdlib
