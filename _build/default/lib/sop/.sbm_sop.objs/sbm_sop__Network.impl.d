lib/sop/network.ml: Array Hashtbl List Option Sbm_aig Sop Stdlib
