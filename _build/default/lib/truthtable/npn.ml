type transform = { perm : int array; input_neg : int; output_neg : bool }

let max_exact_vars = 5

let apply tt t =
  let n = Tt.num_vars tt in
  (* Negate selected inputs, permute, then negate the output. *)
  let tt = ref tt in
  for i = 0 to n - 1 do
    if (t.input_neg lsr i) land 1 = 1 then tt := Tt.flip !tt i
  done;
  let tt = Tt.permute !tt t.perm in
  if t.output_neg then Tt.bnot tt else tt

let inverse t =
  let n = Array.length t.perm in
  let perm = Array.make n 0 in
  Array.iteri (fun i p -> perm.(p) <- i) t.perm;
  (* Input negations commute through the permutation: negating input i
     before permuting equals negating position t.perm.(i) after. *)
  let input_neg = ref 0 in
  for i = 0 to n - 1 do
    if (t.input_neg lsr i) land 1 = 1 then input_neg := !input_neg lor (1 lsl t.perm.(i))
  done;
  { perm; input_neg = !input_neg; output_neg = t.output_neg }

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let canonize tt =
  let n = Tt.num_vars tt in
  if n > max_exact_vars then invalid_arg "Npn.canonize: too many variables";
  let best = ref None in
  let perms = permutations (List.init n (fun i -> i)) in
  List.iter
    (fun perm_list ->
      let perm = Array.of_list perm_list in
      for input_neg = 0 to (1 lsl n) - 1 do
        List.iter
          (fun output_neg ->
            let t = { perm; input_neg; output_neg } in
            let candidate = apply tt t in
            match !best with
            | Some (b, _) when Tt.compare b candidate <= 0 -> ()
            | Some _ | None -> best := Some (candidate, t))
          [ false; true ]
      done)
    perms;
  match !best with
  | Some r -> r
  | None -> (tt, { perm = [||]; input_neg = 0; output_neg = false })

let equivalent a b =
  Tt.num_vars a = Tt.num_vars b
  && Tt.equal (fst (canonize a)) (fst (canonize b))
