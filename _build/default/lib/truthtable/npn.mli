(** NPN canonization of truth tables.

    Two functions are NPN-equivalent when one can be obtained from the
    other by Negating inputs, Permuting inputs and/or Negating the
    output. Rewriting engines key their resynthesis caches by NPN
    class: the 65536 4-input functions collapse into 222 classes, so
    structure computed once is reused across all equivalent cuts.

    [canonize] performs exact canonization (exhaustive over the
    transform group) for up to {!max_exact_vars} variables, which
    covers the 4-input cuts used by rewriting. *)

(** The transform that maps the original function to its canon:
    apply input negations (bit [i] of [input_neg]), then permutation
    ([perm.(i)] = canonical position of original variable [i]), then
    output negation. *)
type transform = {
  perm : int array;
  input_neg : int;
  output_neg : bool;
}

val max_exact_vars : int

(** [canonize tt] is the canonical representative and the transform
    that produced it.
    @raise Invalid_argument beyond {!max_exact_vars} variables. *)
val canonize : Tt.t -> Tt.t * transform

(** [apply tt t] applies a transform to a function. *)
val apply : Tt.t -> transform -> Tt.t

(** [inverse t] is the transform undoing [t]. *)
val inverse : transform -> transform

(** [equivalent a b] is true when the two functions are in the same
    NPN class. *)
val equivalent : Tt.t -> Tt.t -> bool
