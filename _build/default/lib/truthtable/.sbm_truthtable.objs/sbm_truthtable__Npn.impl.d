lib/truthtable/npn.ml: Array List Tt
