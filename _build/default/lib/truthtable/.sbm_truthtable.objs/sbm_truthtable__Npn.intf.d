lib/truthtable/npn.mli: Tt
