lib/truthtable/tt.ml: Array Buffer Int64 List Printf Sbm_util Stdlib
