lib/truthtable/tt.mli: Sbm_util
