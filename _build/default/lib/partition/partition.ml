module Aig = Sbm_aig.Aig

type t = { nodes : int array; leaves : int array; roots : int array }

type limits = { max_levels : int; max_nodes : int; max_leaves : int }

let default_limits = { max_levels = 16; max_nodes = 400; max_leaves = 32 }

let derive aig node_list =
  let members = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace members v ()) node_list;
  let leaves = Hashtbl.create 32 in
  List.iter
    (fun v ->
      List.iter
        (fun f ->
          let w = Aig.node_of f in
          if w <> 0 && not (Hashtbl.mem members w) then Hashtbl.replace leaves w ())
        [ Aig.fanin0 aig v; Aig.fanin1 aig v ])
    node_list;
  (* A member is a root when it has references from outside the
     partition: an external fanout node or a primary output. *)
  let roots =
    List.filter
      (fun v ->
        let member_refs =
          List.fold_left
            (fun acc fo ->
              if Hashtbl.mem members fo then
                acc
                + (if Aig.node_of (Aig.fanin0 aig fo) = v then 1 else 0)
                + (if Aig.node_of (Aig.fanin1 aig fo) = v then 1 else 0)
              else acc)
            0 (Aig.fanout_nodes aig v)
        in
        Aig.nref aig v > member_refs)
      node_list
  in
  let leaves = Hashtbl.fold (fun v () acc -> v :: acc) leaves [] in
  {
    nodes = Array.of_list node_list;
    leaves = Array.of_list (List.sort Stdlib.compare leaves);
    roots = Array.of_list roots;
  }

let of_nodes aig nodes =
  (* Keep the given nodes in topological order. *)
  let set = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace set v ()) nodes;
  let order = Aig.topo aig in
  let sorted =
    Array.to_list order |> List.filter (fun v -> Hashtbl.mem set v && Aig.is_and aig v)
  in
  derive aig sorted

let whole aig =
  let order = Aig.topo aig in
  let nodes = Array.to_list order |> List.filter (fun v -> Aig.is_and aig v) in
  derive aig nodes

(* Structural-support signature: the (min, max) primary-input index
   reachable in the TFI, computed bottom-up. *)
let support_signatures aig =
  let n = Aig.num_nodes aig in
  let smin = Array.make n max_int in
  let smax = Array.make n (-1) in
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_input aig v then begin
        let i = Aig.input_index aig v in
        smin.(v) <- i;
        smax.(v) <- i
      end
      else if Aig.is_and aig v then begin
        let m f =
          let w = Aig.node_of f in
          if w = 0 then (max_int, -1) else (smin.(w), smax.(w))
        in
        let a0, b0 = m (Aig.fanin0 aig v) in
        let a1, b1 = m (Aig.fanin1 aig v) in
        smin.(v) <- min a0 a1;
        smax.(v) <- max b0 b1
      end)
    order;
  (smin, smax)

let compute aig limits =
  let order = Aig.topo aig in
  let levels = Aig.levels aig in
  let smin, smax = support_signatures aig in
  let ands = Array.to_list order |> List.filter (fun v -> Aig.is_and aig v) in
  (* Sort by support similarity, stably w.r.t. topological position so
     partition members stay roughly causally grouped. *)
  let pos = Hashtbl.create 256 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) ands;
  let sorted =
    List.stable_sort
      (fun a b ->
        let c = compare (smin.(a), smax.(a)) (smin.(b), smax.(b)) in
        if c <> 0 then c else compare (Hashtbl.find pos a) (Hashtbl.find pos b))
      ands
  in
  let partitions = ref [] in
  let current = ref [] in
  let cur_count = ref 0 in
  let cur_lmin = ref max_int in
  let cur_lmax = ref (-1) in
  let cur_members = Hashtbl.create 64 in
  let cur_leaves = Hashtbl.create 64 in
  let flush () =
    if !current <> [] then begin
      partitions := of_nodes aig (List.rev !current) :: !partitions;
      current := [];
      cur_count := 0;
      cur_lmin := max_int;
      cur_lmax := -1;
      Hashtbl.reset cur_members;
      Hashtbl.reset cur_leaves
    end
  in
  List.iter
    (fun v ->
      let lv = levels.(v) in
      let lmin' = min !cur_lmin lv and lmax' = max !cur_lmax lv in
      (* Leaf-count estimate after adding v. *)
      let fanin_leaves =
        List.filter
          (fun f ->
            let w = Aig.node_of f in
            w <> 0 && (not (Hashtbl.mem cur_members w)) && not (Hashtbl.mem cur_leaves w))
          [ Aig.fanin0 aig v; Aig.fanin1 aig v ]
      in
      let leaves' =
        Hashtbl.length cur_leaves
        + List.length fanin_leaves
        - (if Hashtbl.mem cur_leaves v then 1 else 0)
      in
      if
        !cur_count > 0
        && (!cur_count + 1 > limits.max_nodes
           || lmax' - lmin' > limits.max_levels
           || leaves' > limits.max_leaves)
      then flush ();
      current := v :: !current;
      incr cur_count;
      cur_lmin := min !cur_lmin lv;
      cur_lmax := max !cur_lmax lv;
      Hashtbl.replace cur_members v ();
      Hashtbl.remove cur_leaves v;
      List.iter
        (fun f ->
          let w = Aig.node_of f in
          if w <> 0 && not (Hashtbl.mem cur_members w) then Hashtbl.replace cur_leaves w ())
        [ Aig.fanin0 aig v; Aig.fanin1 aig v ])
    sorted;
  flush ();
  List.rev !partitions

let compute_overlapping aig limits ~overlap =
  if overlap < 0.0 || overlap > 1.0 then invalid_arg "Partition.compute_overlapping";
  let base = compute aig limits in
  let rec extend = function
    | [] -> []
    | [ last ] -> [ last ]
    | p :: (q :: _ as rest) ->
      let take = int_of_float (overlap *. float_of_int (Array.length q.nodes)) in
      let extra = Array.sub q.nodes 0 (min take (Array.length q.nodes)) in
      let merged =
        of_nodes aig (Array.to_list p.nodes @ Array.to_list extra)
      in
      merged :: extend rest
  in
  extend base
