lib/partition/partition.ml: Array Hashtbl List Sbm_aig Stdlib
