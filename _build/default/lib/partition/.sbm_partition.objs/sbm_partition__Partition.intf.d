lib/partition/partition.mli: Sbm_aig
