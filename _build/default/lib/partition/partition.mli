(** Partitioning engine for window-based Boolean methods.

    Reproduces the scheme of paper Section III-B: nodes are collected
    in topological order, sorted by the similarity of their structural
    support, and grouped greedily under limits on the number of
    levels (the priority constraint, as it tracks reasoning-engine
    complexity), internal nodes and boundary inputs. Partitions are
    plain node sets: their leaves (boundary signals feeding them) act
    as free variables for the per-partition BDD / truth-table
    reasoning. *)

type t = {
  nodes : int array; (** AND node ids, topological order *)
  leaves : int array; (** boundary driver nodes (PIs or external ANDs) *)
  roots : int array; (** members with fanout outside the partition or POs *)
}

type limits = {
  max_levels : int; (** level span allowed inside one partition *)
  max_nodes : int;
  max_leaves : int;
}

(** Paper-scale defaults: levels 5-30, sizes <= 1000; we default to
    the middle of the recommended range. *)
val default_limits : limits

(** [compute aig limits] partitions all live AND nodes. Every node
    belongs to exactly one partition. *)
val compute : Sbm_aig.Aig.t -> limits -> t list

(** [compute_overlapping aig limits ~overlap] computes partitions as
    {!compute}, then extends each with the leading [overlap] fraction
    of its successor's nodes — "the partitions can be chosen to be
    distinct or overlapping to cover more optimization opportunities"
    (paper, Section III-D). Nodes near boundaries then appear in two
    partitions. *)
val compute_overlapping : Sbm_aig.Aig.t -> limits -> overlap:float -> t list

(** [of_nodes aig nodes] makes a partition from an explicit node set,
    deriving leaves and roots (used for monolithic runs, where the
    partition is the whole network). *)
val of_nodes : Sbm_aig.Aig.t -> int list -> t

(** [whole aig] is the single partition holding every live AND node
    (the "applied monolithically" mode of Section III-B). *)
val whole : Sbm_aig.Aig.t -> t
