(** Technology mapping: AIG to standard cells.

    Cut-based structural matching: 4-input cuts are matched (in both
    polarities) against all pin permutations of the library cells; a
    two-phase dynamic program selects the cheapest implementation per
    node, and derivation materializes each (node, phase) at most once,
    inserting inverters where phases disagree. Both the baseline and
    the SBM ASIC flows share this backend, so Table III deltas isolate
    the logic optimization. *)

(** [map aig] maps the network.
    @raise Failure on an AIG with constant outputs but no inputs. *)
val map : Sbm_aig.Aig.t -> Netlist.t
