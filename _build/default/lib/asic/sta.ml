type report = {
  arrival_max : float;
  wns : float;
  tns : float;
  slacks : float array;
}

(* Fanout-based wire-load model: grows slightly super-linearly, as
   higher-fanout nets route longer. *)
let wire_cap fanouts =
  let f = float_of_int fanouts in
  (0.35 *. f) +. (0.05 *. f *. f)

let output_pin_cap = 1.0

let net_loads netlist =
  let loads = Array.make netlist.Netlist.num_nets 0.0 in
  let fanouts = Netlist.fanout_counts netlist in
  Array.iter
    (fun g ->
      Array.iter
        (fun net -> loads.(net) <- loads.(net) +. g.Netlist.cell.Cell.input_cap)
        g.Netlist.fanins)
    netlist.Netlist.gates;
  Array.iter
    (fun net -> loads.(net) <- loads.(net) +. output_pin_cap)
    netlist.Netlist.outputs;
  Array.iteri (fun net l -> loads.(net) <- l +. wire_cap fanouts.(net)) loads;
  loads

let analyze ?clock netlist =
  let loads = net_loads netlist in
  let arrivals = Array.make netlist.Netlist.num_nets 0.0 in
  Array.iter
    (fun g ->
      let worst_in =
        Array.fold_left (fun acc net -> Float.max acc arrivals.(net)) 0.0 g.Netlist.fanins
      in
      let delay =
        g.Netlist.cell.Cell.intrinsic
        +. (g.Netlist.cell.Cell.drive *. loads.(g.Netlist.out) *. 0.1)
      in
      arrivals.(g.Netlist.out) <- worst_in +. delay)
    netlist.Netlist.gates;
  let arrival_max =
    Array.fold_left
      (fun acc net -> Float.max acc arrivals.(net))
      0.0 netlist.Netlist.outputs
  in
  let clock = match clock with Some c -> c | None -> arrival_max in
  let slacks = Array.map (fun net -> clock -. arrivals.(net)) netlist.Netlist.outputs in
  let wns = Array.fold_left Float.min infinity slacks in
  let wns = if wns = infinity then 0.0 else Float.min wns 0.0 in
  let tns = Array.fold_left (fun acc s -> acc +. Float.min s 0.0) 0.0 slacks in
  { arrival_max; wns; tns; slacks }
