module Aig = Sbm_aig.Aig
module Cut = Sbm_aig.Cut

(* Support compression of a single-word cut function: drop leaves the
   function does not depend on. Returns (tt', leaves'). *)
let compress tt (leaves : int array) =
  let m = Array.length leaves in
  let depends = Array.make m false in
  for j = 0 to m - 1 do
    let differs = ref false in
    for i = 0 to (1 lsl m) - 1 do
      if (i lsr j) land 1 = 0 then begin
        let b0 = Int64.logand (Int64.shift_right_logical tt i) 1L in
        let b1 = Int64.logand (Int64.shift_right_logical tt (i lor (1 lsl j))) 1L in
        if b0 <> b1 then differs := true
      end
    done;
    depends.(j) <- !differs
  done;
  let keep = Array.to_list leaves |> List.filteri (fun j _ -> depends.(j)) in
  let kept_pos = List.filteri (fun j _ -> depends.(j)) (List.init m (fun j -> j)) in
  let m' = List.length keep in
  let tt' = ref 0L in
  for i' = 0 to (1 lsl m') - 1 do
    (* expand compressed index to a full index (dropped vars at 0) *)
    let idx = ref 0 in
    List.iteri (fun j' j -> if (i' lsr j') land 1 = 1 then idx := !idx lor (1 lsl j)) kept_pos;
    if Int64.logand (Int64.shift_right_logical tt !idx) 1L = 1L then
      tt' := Int64.logor !tt' (Int64.shift_left 1L i')
  done;
  (!tt', Array.of_list keep)

let tt_mask m = Int64.sub (Int64.shift_left 1L (1 lsl m)) 1L

type choice = {
  cell : Cell.t;
  perm : int array;
  phases : int; (* bit p: cell pin p reads its leaf complemented *)
  leaves : int array;
  polarity : bool; (* true: the cell computes the complement *)
}

let inv_area = Cell.inverter.Cell.area

let map aig =
  let table = Cell.match_table () in
  let cuts = Cut.enumerate aig ~k:4 ~max_cuts:8 in
  let n = Aig.num_nodes aig in
  (* Two-phase DP: cost of producing the node's function (pos) or its
     complement (neg). *)
  let cost_pos = Array.make n infinity in
  let cost_neg = Array.make n infinity in
  let best : choice option array = Array.make n None in
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_input aig v then begin
        cost_pos.(v) <- 0.0;
        cost_neg.(v) <- inv_area
      end
      else if Aig.is_and aig v then begin
        let best_cost = ref infinity in
        let best_choice = ref None in
        List.iter
          (fun (c : Cut.cut) ->
            if Array.length c.Cut.leaves >= 1 && not (Array.exists (fun l -> l = v) c.Cut.leaves)
            then begin
              let tt, leaves = compress c.Cut.tt c.Cut.leaves in
              let m = Array.length leaves in
              if m >= 1 && m <= 4 then begin
                let try_polarity tt polarity =
                  match Hashtbl.find_opt table (m, tt) with
                  | None -> ()
                  | Some (cell, perm, phases) ->
                    let leaf_cost = ref 0.0 in
                    for p = 0 to cell.Cell.arity - 1 do
                      let leaf = leaves.(perm.(p)) in
                      leaf_cost :=
                        !leaf_cost
                        +. (if (phases lsr p) land 1 = 1 then cost_neg.(leaf)
                           else cost_pos.(leaf))
                    done;
                    let total = cell.Cell.area +. !leaf_cost in
                    if total < !best_cost then begin
                      best_cost := total;
                      best_choice := Some { cell; perm; phases; leaves; polarity }
                    end
                in
                try_polarity tt false;
                try_polarity (Int64.logand (Int64.lognot tt) (tt_mask m)) true
              end
            end)
          cuts.(v);
        match !best_choice with
        | None -> failwith "Mapper.map: unmatched node"
        | Some ch ->
          best.(v) <- Some ch;
          if ch.polarity then begin
            cost_neg.(v) <- !best_cost;
            cost_pos.(v) <- !best_cost +. inv_area
          end
          else begin
            cost_pos.(v) <- !best_cost;
            cost_neg.(v) <- !best_cost +. inv_area
          end
      end)
    order;
  (* Derivation: materialize nets. *)
  let gates = ref [] in
  let num_nets = ref (Aig.num_inputs aig) in
  let fresh_net () =
    let id = !num_nets in
    incr num_nets;
    id
  in
  let memo : (int * bool, int) Hashtbl.t = Hashtbl.create 256 in
  let emit cell fanins =
    let out = fresh_net () in
    gates := { Netlist.cell; fanins; out } :: !gates;
    out
  in
  let const_net = ref None in
  let rec net_of v phase =
    match Hashtbl.find_opt memo (v, phase) with
    | Some net -> net
    | None ->
      let net =
        if Aig.is_input aig v then begin
          let base = Aig.input_index aig v in
          if phase then emit Cell.inverter [| base |] else base
        end
        else begin
          match best.(v) with
          | None -> failwith "Mapper: deriving unmapped node"
          | Some ch ->
            if ch.polarity = phase then begin
              (* Cell pin p reads leaf perm.(p) in the recorded
                 phase. *)
              let fanins =
                Array.init ch.cell.Cell.arity (fun p ->
                    net_of ch.leaves.(ch.perm.(p)) ((ch.phases lsr p) land 1 = 1))
              in
              emit ch.cell fanins
            end
            else begin
              let other = net_of v ch.polarity in
              emit Cell.inverter [| other |]
            end
        end
      in
      Hashtbl.replace memo (v, phase) net;
      net
  in
  let constant_net phase =
    (* x & ~x = 0 via NOR2(x, INV x)? AND-style: use AOI-free approach:
       NOR2(a, INV a) = ~(a | ~a) = 0. *)
    let base =
      match !const_net with
      | Some net -> net
      | None ->
        if Aig.num_inputs aig = 0 then failwith "Mapper: constant output without inputs";
        let inv = emit Cell.inverter [| 0 |] in
        let nor2 = List.find (fun c -> c.Cell.name = "NOR2") Cell.library in
        let z = emit nor2 [| 0; inv |] in
        const_net := Some z;
        z
    in
    if phase then begin
      match Hashtbl.find_opt memo (-1, true) with
      | Some net -> net
      | None ->
        let net = emit Cell.inverter [| base |] in
        Hashtbl.replace memo (-1, true) net;
        net
    end
    else base
  in
  let outputs =
    Array.map
      (fun l ->
        let v = Aig.node_of l in
        if v = 0 then constant_net (Aig.is_compl l)
        else net_of v (Aig.is_compl l))
      (Aig.outputs aig)
  in
  {
    Netlist.num_inputs = Aig.num_inputs aig;
    num_nets = !num_nets;
    gates = Array.of_list (List.rev !gates);
    outputs;
  }
