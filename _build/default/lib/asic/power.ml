module Rng = Sbm_util.Rng

let popcount64 w =
  let rec go w acc = if w = 0L then acc else go (Int64.logand w (Int64.sub w 1L)) (acc + 1) in
  go w 0

(* 64-way parallel netlist simulation. *)
let simulate64 netlist words =
  let values = Array.make netlist.Netlist.num_nets 0L in
  Array.blit words 0 values 0 netlist.Netlist.num_inputs;
  Array.iter
    (fun g ->
      let m = Array.length g.Netlist.fanins in
      let out = ref 0L in
      (* Evaluate the cell truth table bit-parallel over minterms. *)
      for minterm = 0 to (1 lsl m) - 1 do
        if Int64.logand (Int64.shift_right_logical g.Netlist.cell.Cell.tt minterm) 1L = 1L
        then begin
          let conj = ref (-1L) in
          for p = 0 to m - 1 do
            let v = values.(g.Netlist.fanins.(p)) in
            let v = if (minterm lsr p) land 1 = 1 then v else Int64.lognot v in
            conj := Int64.logand !conj v
          done;
          out := Int64.logor !out !conj
        end
      done;
      values.(g.Netlist.out) <- !out)
    netlist.Netlist.gates;
  values

let dynamic ?(rounds = 8) ?(seed = 0x9a11) netlist =
  let rng = Rng.create seed in
  let loads = ref None in
  let get_loads () =
    match !loads with
    | Some l -> l
    | None ->
      let fanouts = Netlist.fanout_counts netlist in
      let l = Array.make netlist.Netlist.num_nets 0.0 in
      Array.iter
        (fun g ->
          Array.iter
            (fun net -> l.(net) <- l.(net) +. g.Netlist.cell.Cell.input_cap)
            g.Netlist.fanins)
        netlist.Netlist.gates;
      Array.iteri (fun net x -> l.(net) <- x +. Sta.wire_cap fanouts.(net)) l;
      loads := Some l;
      l
  in
  let l = get_loads () in
  let toggles = Array.make netlist.Netlist.num_nets 0 in
  let prev = Array.make netlist.Netlist.num_nets 0L in
  let bits = ref 0 in
  for round = 0 to rounds - 1 do
    let words =
      Array.init netlist.Netlist.num_inputs (fun _ -> Rng.next64 rng)
    in
    let values = simulate64 netlist words in
    if round > 0 then begin
      for net = 0 to netlist.Netlist.num_nets - 1 do
        toggles.(net) <- toggles.(net) + popcount64 (Int64.logxor values.(net) prev.(net))
      done;
      bits := !bits + 64
    end;
    Array.blit values 0 prev 0 netlist.Netlist.num_nets
  done;
  if !bits = 0 then 0.0
  else begin
    let total = ref 0.0 in
    for net = 0 to netlist.Netlist.num_nets - 1 do
      let rate = float_of_int toggles.(net) /. float_of_int !bits in
      total := !total +. (rate *. l.(net))
    done;
    !total
  end
