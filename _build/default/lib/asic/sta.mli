(** Static timing analysis with a wire-load model.

    Linear delay model: gate delay = intrinsic + drive x output load,
    where the load sums consumer pin capacitances and a fanout-based
    wire-load estimate (the "placement proxy" — the paper's numbers
    are post place & route, ours come from this model applied
    identically to both flows). *)

type report = {
  arrival_max : float; (** critical-path delay *)
  wns : float; (** worst negative slack (0 when timing met) *)
  tns : float; (** total negative slack over all outputs *)
  slacks : float array; (** per primary output *)
}

(** [analyze ?clock netlist] computes arrivals and slacks. When
    [clock] is omitted, it is set to the critical-path delay (zero
    slack everywhere). *)
val analyze : ?clock:float -> Netlist.t -> report

(** [wire_cap fanouts] is the wire-load capacitance estimate used by
    {!analyze} (exposed for tests and the power model). *)
val wire_cap : int -> float
