type t = {
  name : string;
  arity : int;
  tt : int64;
  area : float;
  input_cap : float;
  intrinsic : float;
  drive : float;
}

(* Truth-table helper over <= 4 variables, single word. *)
let tt_of_fun m f =
  let r = ref 0L in
  for i = 0 to (1 lsl m) - 1 do
    let bit j = (i lsr j) land 1 = 1 in
    if f bit then r := Int64.logor !r (Int64.shift_left 1L i)
  done;
  !r

let cell name arity f ~area ~cap ~intr ~drive =
  { name; arity; tt = tt_of_fun arity f; area; input_cap = cap; intrinsic = intr; drive }

let library =
  [
    cell "INV" 1 (fun b -> not (b 0)) ~area:1.0 ~cap:1.0 ~intr:0.3 ~drive:0.9;
    cell "BUF" 1 (fun b -> b 0) ~area:1.3 ~cap:1.0 ~intr:0.6 ~drive:0.6;
    cell "NAND2" 2 (fun b -> not (b 0 && b 1)) ~area:1.4 ~cap:1.1 ~intr:0.4 ~drive:1.0;
    cell "NOR2" 2 (fun b -> not (b 0 || b 1)) ~area:1.4 ~cap:1.2 ~intr:0.5 ~drive:1.2;
    cell "AND2" 2 (fun b -> b 0 && b 1) ~area:1.8 ~cap:1.0 ~intr:0.6 ~drive:0.8;
    cell "OR2" 2 (fun b -> b 0 || b 1) ~area:1.8 ~cap:1.0 ~intr:0.7 ~drive:0.9;
    cell "XOR2" 2 (fun b -> b 0 <> b 1) ~area:2.6 ~cap:1.6 ~intr:0.9 ~drive:1.1;
    cell "XNOR2" 2 (fun b -> b 0 = b 1) ~area:2.6 ~cap:1.6 ~intr:0.9 ~drive:1.1;
    cell "NAND3" 3 (fun b -> not (b 0 && b 1 && b 2)) ~area:2.0 ~cap:1.2 ~intr:0.5 ~drive:1.3;
    cell "NOR3" 3 (fun b -> not (b 0 || b 1 || b 2)) ~area:2.0 ~cap:1.3 ~intr:0.7 ~drive:1.6;
    cell "AOI21" 3 (fun b -> not ((b 0 && b 1) || b 2)) ~area:2.1 ~cap:1.2 ~intr:0.55 ~drive:1.3;
    cell "OAI21" 3 (fun b -> not ((b 0 || b 1) && b 2)) ~area:2.1 ~cap:1.2 ~intr:0.55 ~drive:1.3;
    cell "MUX2" 3 (fun b -> if b 2 then b 1 else b 0) ~area:2.9 ~cap:1.4 ~intr:0.8 ~drive:1.0;
    cell "AND4" 4 (fun b -> b 0 && b 1 && b 2 && b 3) ~area:2.7 ~cap:1.1 ~intr:0.9 ~drive:1.0;
    cell "AOI22" 4
      (fun b -> not ((b 0 && b 1) || (b 2 && b 3)))
      ~area:2.7 ~cap:1.3 ~intr:0.6 ~drive:1.4;
    cell "OAI22" 4
      (fun b -> not ((b 0 || b 1) && (b 2 || b 3)))
      ~area:2.7 ~cap:1.3 ~intr:0.6 ~drive:1.4;
  ]

let inverter = List.find (fun c -> c.name = "INV") library

(* Apply pin permutation and input phases: the variant reads pin [p]
   from leaf [perm.(p)], complemented when bit [p] of [phases] is
   set. *)
let permute_tt m tt perm phases =
  tt_of_fun m (fun bit ->
      let cell_bit p = bit perm.(p) <> ((phases lsr p) land 1 = 1) in
      let idx = ref 0 in
      for p = 0 to m - 1 do
        if cell_bit p then idx := !idx lor (1 lsl p)
      done;
      Int64.logand (Int64.shift_right_logical tt !idx) 1L = 1L)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let table : (int * int64, t * int array * int) Hashtbl.t option ref = ref None

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let match_table () =
  match !table with
  | Some t -> t
  | None ->
    let t = Hashtbl.create 2048 in
    List.iter
      (fun c ->
        let pins = List.init c.arity (fun i -> i) in
        List.iter
          (fun perm_list ->
            let perm = Array.of_list perm_list in
            for phases = 0 to (1 lsl c.arity) - 1 do
              let tt = permute_tt c.arity c.tt perm phases in
              let key = (c.arity, tt) in
              (* Prefer fewer inverted pins, then smaller area. *)
              let score = c.area +. (0.4 *. float_of_int (popcount phases)) in
              match Hashtbl.find_opt t key with
              | Some (e, _, ep) when e.area +. (0.4 *. float_of_int (popcount ep)) <= score
                -> ()
              | Some _ | None -> Hashtbl.replace t key (c, perm, phases)
            done)
          (permutations pins))
      library;
    table := Some t;
    t
