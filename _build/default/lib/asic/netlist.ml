type gate = { cell : Cell.t; fanins : int array; out : int }

type t = {
  num_inputs : int;
  num_nets : int;
  gates : gate array;
  outputs : int array;
}

let area t = Array.fold_left (fun acc g -> acc +. g.cell.Cell.area) 0.0 t.gates

let eval t bits =
  if Array.length bits <> t.num_inputs then invalid_arg "Netlist.eval";
  let values = Array.make t.num_nets false in
  Array.blit bits 0 values 0 t.num_inputs;
  Array.iter
    (fun g ->
      let idx = ref 0 in
      Array.iteri (fun p net -> if values.(net) then idx := !idx lor (1 lsl p)) g.fanins;
      values.(g.out) <-
        Int64.logand (Int64.shift_right_logical g.cell.Cell.tt !idx) 1L = 1L)
    t.gates;
  Array.map (fun net -> values.(net)) t.outputs

let fanout_counts t =
  let counts = Array.make t.num_nets 0 in
  Array.iter
    (fun g -> Array.iter (fun net -> counts.(net) <- counts.(net) + 1) g.fanins)
    t.gates;
  Array.iter (fun net -> counts.(net) <- counts.(net) + 1) t.outputs;
  counts

let check t =
  let defined = Array.make t.num_nets false in
  for i = 0 to t.num_inputs - 1 do
    defined.(i) <- true
  done;
  Array.iter
    (fun g ->
      Array.iter
        (fun net ->
          if net < 0 || net >= t.num_nets then failwith "Netlist.check: net range";
          if not defined.(net) then failwith "Netlist.check: use before def")
        g.fanins;
      if defined.(g.out) then failwith "Netlist.check: double definition";
      if Array.length g.fanins <> g.cell.Cell.arity then
        failwith "Netlist.check: arity mismatch";
      defined.(g.out) <- true)
    t.gates;
  Array.iter
    (fun net -> if not defined.(net) then failwith "Netlist.check: undefined output")
    t.outputs
