(** Mapped gate-level netlists.

    Nets are integers: net [i] for [i < num_inputs] is primary input
    [i]; the remaining nets are gate outputs. *)

type gate = {
  cell : Cell.t;
  fanins : int array; (** nets, in cell pin order *)
  out : int; (** output net *)
}

type t = {
  num_inputs : int;
  num_nets : int;
  gates : gate array; (** topological order *)
  outputs : int array; (** nets *)
}

(** [area t] is the total cell area. *)
val area : t -> float

(** [eval t bits] simulates one input assignment (test hook). *)
val eval : t -> bool array -> bool array

(** [fanout_counts t] is the number of gate/output pins driven by each
    net. *)
val fanout_counts : t -> int array

(** [check t] validates topological consistency; raises [Failure]. *)
val check : t -> unit
