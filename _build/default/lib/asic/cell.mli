(** Standard-cell library model.

    A small technology library with normalized area, pin capacitance
    and a linear delay model (intrinsic + drive resistance x load),
    in the spirit of a generic educational PDK. Cell functions are
    single-word truth tables over up to 4 inputs, leaves sorted; the
    mapper matches cut functions against all input permutations. *)

type t = {
  name : string;
  arity : int;
  tt : int64; (** function over [arity] vars, low [2^arity] bits *)
  area : float;
  input_cap : float; (** per input pin *)
  intrinsic : float; (** delay floor *)
  drive : float; (** delay slope per unit load *)
}

(** The library cells. Always contains an inverter and 2-input
    NAND/NOR (full coverage of any AIG). *)
val library : t list

(** [inverter] is the library's INV cell. *)
val inverter : t

(** [match_table ()] maps a (arity, truth-table) pair to the cheapest
    matching cell, the input permutation and the input phase mask:
    cell pin [p] reads cut leaf [perm.(p)], complemented when bit [p]
    of the mask is set (the mapper charges the inverter through the
    two-phase DP). Built once, memoized. *)
val match_table : unit -> (int * int64, t * int array * int) Hashtbl.t
