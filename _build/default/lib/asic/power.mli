(** Switching-activity-based dynamic power estimation.

    [dynamic] simulates random vectors through the mapped netlist,
    measures per-net toggle rates and weights them by the net's
    capacitive load — "dynamic power of the circuit without
    considering the clock" (Table III's metric), in normalized
    units. *)

(** [dynamic ?rounds ?seed netlist] estimates total dynamic power. *)
val dynamic : ?rounds:int -> ?seed:int -> Netlist.t -> float
