lib/asic/netlist.ml: Array Cell Int64
