lib/asic/sta.mli: Netlist
