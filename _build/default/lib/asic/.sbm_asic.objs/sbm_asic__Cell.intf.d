lib/asic/cell.mli: Hashtbl
