lib/asic/netlist.mli: Cell
