lib/asic/mapper.ml: Array Cell Hashtbl Int64 List Netlist Sbm_aig
