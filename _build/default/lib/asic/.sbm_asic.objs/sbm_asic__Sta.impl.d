lib/asic/sta.ml: Array Cell Float Netlist
