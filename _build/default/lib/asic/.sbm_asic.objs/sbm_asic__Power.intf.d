lib/asic/power.mli: Netlist
