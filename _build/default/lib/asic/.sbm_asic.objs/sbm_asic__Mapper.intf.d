lib/asic/mapper.mli: Netlist Sbm_aig
