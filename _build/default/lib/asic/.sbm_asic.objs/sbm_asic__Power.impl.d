lib/asic/power.ml: Array Cell Int64 Netlist Sbm_util Sta
