lib/asic/cell.ml: Array Hashtbl Int64 List
