(** Word-level circuit construction over AIGs.

    Little-endian literal vectors (index 0 = LSB) with the arithmetic
    and steering operators needed to generate the EPFL-style
    benchmark suite: ripple adders, subtractors, array multipliers,
    restoring dividers and square roots, comparators, barrel shifters,
    encoders and population counts. *)

type word = Sbm_aig.Aig.lit array

type aig = Sbm_aig.Aig.t

(** [inputs aig n] allocates [n] fresh primary inputs. *)
val inputs : aig -> int -> word

(** [const aig ~width v] is the constant [v] (non-negative). *)
val const : aig -> width:int -> int -> word

(** [zero_extend w n] pads with constant-0 literals to width [n]. *)
val zero_extend : word -> int -> word

(** [add aig a b] is the [w+1]-bit sum of two [w]-bit words. *)
val add : aig -> word -> word -> word

(** [sub aig a b] is [(a - b mod 2^w, borrow)]. *)
val sub : aig -> word -> word -> word * Sbm_aig.Aig.lit

(** [uge aig a b] is the literal of [a >= b] (unsigned). *)
val uge : aig -> word -> word -> Sbm_aig.Aig.lit

(** [equal aig a b] is bit-vector equality. *)
val equal : aig -> word -> word -> Sbm_aig.Aig.lit

(** [mux aig sel t e] selects [t] when [sel] is true. *)
val mux : aig -> Sbm_aig.Aig.lit -> word -> word -> word

(** [mul aig a b] is the [wa+wb]-bit product. *)
val mul : aig -> word -> word -> word

(** [square aig a] is [mul a a] with the trivial sharing. *)
val square : aig -> word -> word

(** [divmod aig a b] is restoring division: [(quotient, remainder)],
    both [w]-bit. Division by zero yields all-ones quotient. *)
val divmod : aig -> word -> word -> word * word

(** [isqrt aig x] is the [w/2]-bit integer square root of a [w]-bit
    word ([w] must be even). *)
val isqrt : aig -> word -> word

(** [shift_left aig w amount] / [shift_right aig w amount]: barrel
    shifter by a variable amount (log-stage muxes). *)
val shift_left : aig -> word -> word -> word
val shift_right : aig -> word -> word -> word

(** [popcount aig bits] counts set literals; result has
    [ceil(log2 (n+1))] bits. *)
val popcount : aig -> Sbm_aig.Aig.lit array -> word

(** [priority_encode aig bits] is [(index, valid)]: the index of the
    lowest set literal. *)
val priority_encode : aig -> Sbm_aig.Aig.lit array -> word * Sbm_aig.Aig.lit

(** [outputs aig w] registers every literal as a primary output. *)
val outputs : aig -> word -> unit
