lib/epfl/epfl.mli: Sbm_aig
