lib/epfl/word.mli: Sbm_aig
