lib/epfl/epfl.ml: Array Float Hashtbl List Sbm_aig Sbm_util Word
