lib/epfl/word.ml: Array Sbm_aig
