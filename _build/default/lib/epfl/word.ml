module Aig = Sbm_aig.Aig

type word = Aig.lit array
type aig = Aig.t

let inputs aig n = Array.init n (fun _ -> Aig.add_input aig)

let const _ ~width v =
  if v < 0 then invalid_arg "Word.const";
  Array.init width (fun i -> if (v lsr i) land 1 = 1 then Aig.const1 else Aig.const0)

let zero_extend w n =
  if n < Array.length w then invalid_arg "Word.zero_extend";
  Array.init n (fun i -> if i < Array.length w then w.(i) else Aig.const0)

let full_adder aig a b cin =
  let s1 = Aig.bxor aig a b in
  let sum = Aig.bxor aig s1 cin in
  let c1 = Aig.band aig a b in
  let c2 = Aig.band aig s1 cin in
  (sum, Aig.bor aig c1 c2)

let add aig a b =
  let w = Array.length a in
  if Array.length b <> w then invalid_arg "Word.add";
  let out = Array.make (w + 1) Aig.const0 in
  let carry = ref Aig.const0 in
  for i = 0 to w - 1 do
    let s, c = full_adder aig a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out.(w) <- !carry;
  out

let sub aig a b =
  let w = Array.length a in
  if Array.length b <> w then invalid_arg "Word.sub";
  (* a - b = a + ~b + 1 *)
  let out = Array.make w Aig.const0 in
  let carry = ref Aig.const1 in
  for i = 0 to w - 1 do
    let s, c = full_adder aig a.(i) (Aig.lnot b.(i)) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, Aig.lnot !carry)

let uge aig a b =
  let _, borrow = sub aig a b in
  Aig.lnot borrow

let equal aig a b =
  let w = Array.length a in
  if Array.length b <> w then invalid_arg "Word.equal";
  let bits = Array.to_list (Array.mapi (fun i x -> Aig.bxnor aig x b.(i)) a) in
  Aig.band_list aig bits

let mux aig sel t e =
  let w = Array.length t in
  if Array.length e <> w then invalid_arg "Word.mux";
  Array.init w (fun i -> Aig.bmux aig sel t.(i) e.(i))

let mul aig a b =
  let wa = Array.length a and wb = Array.length b in
  let acc = ref (const aig ~width:(wa + wb) 0) in
  for j = 0 to wb - 1 do
    let partial =
      Array.init (wa + wb) (fun i ->
          if i >= j && i - j < wa then Aig.band aig a.(i - j) b.(j) else Aig.const0)
    in
    let sum = add aig !acc partial in
    acc := Array.sub sum 0 (wa + wb)
  done;
  !acc

let square aig a = mul aig a a

let divmod aig a b =
  let w = Array.length a in
  if Array.length b <> w then invalid_arg "Word.divmod";
  let bx = zero_extend b (w + 1) in
  let quotient = Array.make w Aig.const0 in
  let rem = ref (const aig ~width:(w + 1) 0) in
  for i = w - 1 downto 0 do
    (* rem = (rem << 1) | a.(i) *)
    let shifted = Array.init (w + 1) (fun j -> if j = 0 then a.(i) else !rem.(j - 1)) in
    let diff, borrow = sub aig shifted bx in
    let fits = Aig.lnot borrow in
    quotient.(i) <- fits;
    rem := mux aig fits diff shifted
  done;
  (quotient, Array.sub !rem 0 w)

let isqrt aig x =
  let w = Array.length x in
  if w mod 2 <> 0 then invalid_arg "Word.isqrt: odd width";
  let k = w / 2 in
  (* Digit-by-digit method:
     num >= res + bit  ->  num -= res + bit; res = (res >> 1) + bit
     else res >>= 1; with bit sweeping the even powers of two. *)
  let num = ref (Array.copy x) in
  let res = ref (const aig ~width:w 0) in
  let onehot pos = Array.init w (fun j -> if j = pos then Aig.const1 else Aig.const0) in
  for i = k - 1 downto 0 do
    let bit = onehot (2 * i) in
    let t = Array.sub (add aig !res bit) 0 w in
    let diff, borrow = sub aig !num t in
    let ge = Aig.lnot borrow in
    num := mux aig ge diff !num;
    let half = Array.init w (fun j -> if j = w - 1 then Aig.const0 else !res.(j + 1)) in
    let half_plus = Array.sub (add aig half bit) 0 w in
    res := mux aig ge half_plus half
  done;
  Array.sub !res 0 k

let shift_gen aig ~left word amount =
  let w = Array.length word in
  let stages = Array.length amount in
  let cur = ref (Array.copy word) in
  for s = 0 to stages - 1 do
    let dist = 1 lsl s in
    let shifted =
      Array.init w (fun i ->
          let src = if left then i - dist else i + dist in
          if src < 0 || src >= w then Aig.const0 else !cur.(src))
    in
    cur := mux aig amount.(s) shifted !cur
  done;
  !cur

let shift_left aig word amount = shift_gen aig ~left:true word amount
let shift_right aig word amount = shift_gen aig ~left:false word amount

let rec popcount aig bits =
  match Array.length bits with
  | 0 -> [| Aig.const0 |]
  | 1 -> [| bits.(0) |]
  | 2 ->
    let s, c = (Aig.bxor aig bits.(0) bits.(1), Aig.band aig bits.(0) bits.(1)) in
    [| s; c |]
  | 3 ->
    let s, c = full_adder aig bits.(0) bits.(1) bits.(2) in
    [| s; c |]
  | n ->
    let half = n / 2 in
    let a = popcount aig (Array.sub bits 0 half) in
    let b = popcount aig (Array.sub bits half (n - half)) in
    let w = 1 + max (Array.length a) (Array.length b) in
    let a = zero_extend a (w - 1) and b = zero_extend b (w - 1) in
    add aig a b

let priority_encode aig bits =
  let n = Array.length bits in
  let idx_width =
    let rec go w = if 1 lsl w >= n then w else go (w + 1) in
    go 1
  in
  let index = ref (const aig ~width:idx_width 0) in
  let valid = ref Aig.const0 in
  (* Scan from the highest position down so the lowest set bit wins. *)
  for i = n - 1 downto 0 do
    index := mux aig bits.(i) (const aig ~width:idx_width i) !index;
    valid := Aig.bor aig !valid bits.(i)
  done;
  (!index, !valid)

let outputs aig w = Array.iter (fun l -> ignore (Aig.add_output aig l)) w
