(** Area-oriented LUT-K technology mapping.

    A priority-cuts mapper in the style of ABC's [if -K 6 -a], used to
    evaluate the EPFL area category (Table I): cuts up to [k] leaves
    are enumerated per node, each node selects the cut minimizing
    area flow (depth as tie-break), and iterated area-recovery passes
    re-select cuts against the fanout references induced by the
    current mapping. The result reports the LUT count and mapped
    depth — the two columns of the EPFL best-results tables. *)

type lut = { root : int; leaves : int array }

type mapping = {
  luts : lut list;
  lut_count : int;
  depth : int; (** LUT levels ("Level count" in Table I) *)
}

(** Mapping objective: [`Area] (the paper's "if -K 6 -a" mode, default)
    minimizes LUT count; [`Delay] selects depth-optimal cuts first and
    recovers area among depth ties. *)
type mode = [ `Area | `Delay ]

(** [map ?k ?max_cuts ?area_passes ?mode aig] maps the network.
    Defaults: [k = 6], [max_cuts = 8], [area_passes = 3],
    [mode = `Area]. *)
val map :
  ?k:int -> ?max_cuts:int -> ?area_passes:int -> ?mode:mode -> Sbm_aig.Aig.t -> mapping

(** [check aig mapping] verifies cover properties: every output node
    is mapped, and every LUT's leaves are mapped nodes, inputs or
    constants. Raises [Failure] on violation (test hook). *)
val check : Sbm_aig.Aig.t -> mapping -> unit
