module Aig = Sbm_aig.Aig
module Cut = Sbm_aig.Cut

type lut = { root : int; leaves : int array }

type mapping = { luts : lut list; lut_count : int; depth : int }

type mode = [ `Area | `Delay ]

(* One mapping-selection pass. [refs] estimates how many times each
   node is referenced by the current mapping (fanout count on the
   first pass); returns per-node best cut, area flow and depth. *)
let select ?(mode = `Area) aig cuts refs =
  let n = Aig.num_nodes aig in
  let best_cut = Array.make n None in
  let area_flow = Array.make n 0.0 in
  let depth = Array.make n 0 in
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_input aig v then begin
        area_flow.(v) <- 0.0;
        depth.(v) <- 0
      end
      else if Aig.is_and aig v then begin
        let evaluate (c : Cut.cut) =
          if Array.length c.Cut.leaves < 1 then None
          else if Array.exists (fun l -> l = v) c.Cut.leaves then None
          else begin
            let d = Array.fold_left (fun acc l -> max acc depth.(l)) 0 c.Cut.leaves in
            let af =
              Array.fold_left (fun acc l -> acc +. area_flow.(l)) 1.0 c.Cut.leaves
            in
            Some (c, af, 1 + d)
          end
        in
        let candidates = List.filter_map evaluate cuts.(v) in
        match candidates with
        | [] -> failwith "Lut_map.select: node without usable cut"
        | _ ->
          let better (af, d) (baf, bd) =
            match mode with
            | `Area -> af < baf -. 1e-9 || (Float.abs (af -. baf) <= 1e-9 && d < bd)
            | `Delay -> d < bd || (d = bd && af < baf -. 1e-9)
          in
          let c, af, d =
            List.fold_left
              (fun (bc, baf, bd) (c, af, d) ->
                if better (af, d) (baf, bd) then (c, af, d) else (bc, baf, bd))
              (List.hd candidates |> fun (c, af, d) -> (c, af, d))
              (List.tl candidates)
          in
          best_cut.(v) <- Some c;
          let r = float_of_int (max 1 refs.(v)) in
          area_flow.(v) <- af /. r;
          depth.(v) <- d
      end)
    order;
  (best_cut, depth)

(* Derive the cover: walk from the outputs, instantiate the chosen
   cut of every required node, requiring its leaves in turn. *)
let derive aig best_cut =
  let required = Hashtbl.create 256 in
  let luts = ref [] in
  let stack = ref [] in
  Array.iter
    (fun l ->
      let v = Aig.node_of l in
      if Aig.is_and aig v then stack := v :: !stack)
    (Aig.outputs aig);
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if not (Hashtbl.mem required v) then begin
        Hashtbl.add required v ();
        match best_cut.(v) with
        | None -> failwith "Lut_map.derive: unmapped required node"
        | Some (c : Cut.cut) ->
          luts := { root = v; leaves = Array.copy c.Cut.leaves } :: !luts;
          Array.iter
            (fun l -> if Aig.is_and aig l then stack := l :: !stack)
            c.Cut.leaves
      end
  done;
  !luts

let mapping_depth aig luts =
  let d = Hashtbl.create 256 in
  let lut_of = Hashtbl.create 256 in
  List.iter (fun lut -> Hashtbl.replace lut_of lut.root lut) luts;
  let rec depth_of v =
    if not (Aig.is_and aig v) then 0
    else
      match Hashtbl.find_opt d v with
      | Some x -> x
      | None -> (
        match Hashtbl.find_opt lut_of v with
        | None -> 0
        | Some lut ->
          let x =
            1 + Array.fold_left (fun acc l -> max acc (depth_of l)) 0 lut.leaves
          in
          Hashtbl.replace d v x;
          x)
  in
  Array.fold_left
    (fun acc l -> max acc (depth_of (Aig.node_of l)))
    0 (Aig.outputs aig)

(* Reference counts induced by a derived mapping: how many LUTs (or
   outputs) read each node. *)
let mapping_refs aig luts =
  let refs = Array.make (Aig.num_nodes aig) 0 in
  List.iter
    (fun lut ->
      Array.iter (fun l -> refs.(l) <- refs.(l) + 1) lut.leaves)
    luts;
  Array.iter
    (fun l -> refs.(Aig.node_of l) <- refs.(Aig.node_of l) + 1)
    (Aig.outputs aig);
  refs

let map ?(k = 6) ?(max_cuts = 8) ?(area_passes = 3) ?(mode = `Area) aig =
  let cuts = Cut.enumerate aig ~k ~max_cuts in
  (* First pass: structural fanout counts as reference estimates. *)
  let refs0 = Array.init (Aig.num_nodes aig) (fun v -> Aig.nref aig v) in
  let best_cut = ref (fst (select ~mode aig cuts refs0)) in
  let luts = ref (derive aig !best_cut) in
  for _ = 2 to area_passes do
    let refs = mapping_refs aig !luts in
    best_cut := fst (select ~mode aig cuts refs);
    let candidate = derive aig !best_cut in
    let keep =
      match mode with
      | `Area -> List.length candidate <= List.length !luts
      | `Delay ->
        (* Depth never degrades across passes in delay mode; keep the
           smaller cover. *)
        mapping_depth aig candidate <= mapping_depth aig !luts
        && List.length candidate <= List.length !luts
    in
    if keep then luts := candidate
  done;
  { luts = !luts; lut_count = List.length !luts; depth = mapping_depth aig !luts }

let check aig mapping =
  let mapped = Hashtbl.create 256 in
  List.iter (fun lut -> Hashtbl.replace mapped lut.root ()) mapping.luts;
  Array.iter
    (fun l ->
      let v = Aig.node_of l in
      if Aig.is_and aig v && not (Hashtbl.mem mapped v) then
        failwith "Lut_map.check: unmapped output")
    (Aig.outputs aig);
  List.iter
    (fun lut ->
      if Array.length lut.leaves = 0 then failwith "Lut_map.check: empty cut";
      Array.iter
        (fun l ->
          if Aig.is_and aig l && not (Hashtbl.mem mapped l) then
            failwith "Lut_map.check: leaf not mapped";
          if Aig.is_dead aig l then failwith "Lut_map.check: dead leaf")
        lut.leaves)
    mapping.luts
