lib/lutmap/lut_map.ml: Array Float Hashtbl List Sbm_aig
