lib/lutmap/lut_map.mli: Sbm_aig
