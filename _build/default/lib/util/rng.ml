type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* SplitMix64: Steele, Lea, Flood (2014). *)
let next64 g =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits g = Int64.to_int (Int64.shift_right_logical (next64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Rng.int";
  bits g mod n

let bool g = Int64.logand (next64 g) 1L = 1L

let float g =
  let x = Int64.to_int (Int64.shift_right_logical (next64 g) 11) in
  float_of_int x /. 9007199254740992.0 (* 2^53 *)

let split g = { state = next64 g }
