(** Growable integer vectors.

    A thin, allocation-conscious dynamic array specialised to [int].
    Used throughout the AIG, SOP and SAT substrates where boxed
    ['a array] growth would dominate. *)

type t

(** [create ?capacity ()] is an empty vector. *)
val create : ?capacity:int -> unit -> t

(** [make n x] is a vector of [n] elements all equal to [x]. *)
val make : int -> int -> t

(** [size v] is the number of elements currently stored. *)
val size : t -> int

(** [is_empty v] is [size v = 0]. *)
val is_empty : t -> bool

(** [get v i] is the [i]-th element. Bounds-checked. *)
val get : t -> int -> int

(** [set v i x] overwrites the [i]-th element. Bounds-checked. *)
val set : t -> int -> int -> unit

(** [push v x] appends [x], growing the backing store if needed. *)
val push : t -> int -> unit

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : t -> int

(** [last v] is the last element without removing it. *)
val last : t -> int

(** [clear v] resets the size to 0 without shrinking storage. *)
val clear : t -> unit

(** [shrink v n] truncates to the first [n] elements ([n <= size v]). *)
val shrink : t -> int -> unit

(** [iter f v] applies [f] to every element in index order. *)
val iter : (int -> unit) -> t -> unit

(** [iteri f v] applies [f i x] to every element in index order. *)
val iteri : (int -> int -> unit) -> t -> unit

(** [fold f acc v] folds left over the elements. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [exists p v] is true if some element satisfies [p]. *)
val exists : (int -> bool) -> t -> bool

(** [mem x v] is true if [x] occurs in [v] (linear scan). *)
val mem : int -> t -> bool

(** [to_list v] is the elements as a list, in index order. *)
val to_list : t -> int list

(** [to_array v] is a fresh array of the elements. *)
val to_array : t -> int array

(** [of_list xs] is a vector with the elements of [xs]. *)
val of_list : int list -> t

(** [of_array a] is a vector with the elements of [a]. *)
val of_array : int array -> t

(** [copy v] is an independent copy of [v]. *)
val copy : t -> t

(** [sort cmp v] sorts in place. *)
val sort : (int -> int -> int) -> t -> unit

(** [remove v x] removes the first occurrence of [x], if any,
    preserving the order of the remaining elements. *)
val remove : t -> int -> unit

(** [swap_remove v i] removes index [i] by swapping in the last
    element; O(1) but does not preserve order. *)
val swap_remove : t -> int -> unit
