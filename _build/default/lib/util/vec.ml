type t = { mutable data : int array; mutable size : int }

let create ?(capacity = 8) () =
  { data = Array.make (max capacity 1) 0; size = 0 }

let make n x = { data = Array.make (max n 1) x; size = n }
let size v = v.size
let is_empty v = v.size = 0

let check v i =
  if i < 0 || i >= v.size then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x

let grow v =
  let data = Array.make (2 * Array.length v.data) 0 in
  Array.blit v.data 0 data 0 v.size;
  v.data <- data

let push v x =
  if v.size = Array.length v.data then grow v;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then invalid_arg "Vec.pop: empty";
  v.size <- v.size - 1;
  v.data.(v.size)

let last v =
  if v.size = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.size - 1)

let clear v = v.size <- 0

let shrink v n =
  if n < 0 || n > v.size then invalid_arg "Vec.shrink";
  v.size <- n

let iter f v =
  for i = 0 to v.size - 1 do f v.data.(i) done

let iteri f v =
  for i = 0 to v.size - 1 do f i v.data.(i) done

let fold f acc v =
  let r = ref acc in
  for i = 0 to v.size - 1 do r := f !r v.data.(i) done;
  !r

let exists p v =
  let rec go i = i < v.size && (p v.data.(i) || go (i + 1)) in
  go 0

let mem x v = exists (fun y -> y = x) v

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.size - 1) []

let to_array v = Array.sub v.data 0 v.size
let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); size = Array.length a }
let of_list xs = of_array (Array.of_list xs)
let copy v = { data = Array.copy v.data; size = v.size }

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.size

let remove v x =
  let rec find i = if i >= v.size then -1 else if v.data.(i) = x then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    Array.blit v.data (i + 1) v.data i (v.size - i - 1);
    v.size <- v.size - 1
  end

let swap_remove v i =
  check v i;
  v.data.(i) <- v.data.(v.size - 1);
  v.size <- v.size - 1
