lib/util/rng.mli:
