lib/util/vec.mli:
