(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the framework (simulation patterns,
    benchmark generators, property tests' auxiliary data) draws from
    this generator so runs are reproducible from a seed. *)

type t

(** [create seed] is a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [next64 g] is the next raw 64-bit word (as an OCaml [int64]). *)
val next64 : t -> int64

(** [bits g] is the next 62-bit non-negative [int]. *)
val bits : t -> int

(** [int g n] is uniform in [0, n). Requires [n > 0]. *)
val int : t -> int -> int

(** [bool g] is a uniform boolean. *)
val bool : t -> bool

(** [float g] is uniform in [0, 1). *)
val float : t -> float

(** [split g] is a new generator seeded from [g]'s stream, useful to
    decorrelate substreams. *)
val split : t -> t
