(** Tseitin encoding of AIGs into CNF. *)

(** [encode solver aig] adds one SAT variable per live AIG node and
    the AND-gate clauses. Returns the variable map indexed by node id
    (0 for dead nodes; the constant node is constrained to false). *)
val encode : Solver.t -> Sbm_aig.Aig.t -> int array

(** [lit_dimacs vars l] translates an AIG literal into the solver's
    DIMACS convention using the map returned by {!encode}. *)
val lit_dimacs : int array -> Sbm_aig.Aig.lit -> int
