module Aig = Sbm_aig.Aig

let lit_dimacs vars l =
  let v = vars.(Aig.node_of l) in
  if v = 0 then invalid_arg "Tseitin.lit_dimacs: unencoded node";
  if Aig.is_compl l then -v else v

let encode solver aig =
  let vars = Array.make (Aig.num_nodes aig) 0 in
  (* Constant node: a variable forced to 0 keeps literal translation
     uniform. *)
  let cvar = Solver.new_var solver in
  vars.(0) <- cvar;
  ignore (Solver.add_clause solver [ -cvar ]);
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_input aig v then vars.(v) <- Solver.new_var solver
      else if Aig.is_and aig v then begin
        let x = Solver.new_var solver in
        vars.(v) <- x;
        let a = lit_dimacs vars (Aig.fanin0 aig v) in
        let b = lit_dimacs vars (Aig.fanin1 aig v) in
        (* x <-> a & b *)
        ignore (Solver.add_clause solver [ -x; a ]);
        ignore (Solver.add_clause solver [ -x; b ]);
        ignore (Solver.add_clause solver [ x; -a; -b ])
      end)
    order;
  vars
