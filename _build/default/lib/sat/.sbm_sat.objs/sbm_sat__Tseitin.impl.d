lib/sat/tseitin.ml: Array Sbm_aig Solver
