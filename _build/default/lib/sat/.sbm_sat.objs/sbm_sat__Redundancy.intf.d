lib/sat/redundancy.mli: Sbm_aig
