lib/sat/redundancy.ml: Array List Sbm_aig Solver Tseitin
