lib/sat/solver.ml: Array List Option Sbm_util Stdlib
