lib/sat/tseitin.mli: Sbm_aig Solver
