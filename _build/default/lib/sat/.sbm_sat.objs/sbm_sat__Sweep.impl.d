lib/sat/sweep.ml: Array Hashtbl Int64 List Option Sbm_aig Sbm_util Solver Tseitin
