lib/sat/sweep.mli: Sbm_aig
