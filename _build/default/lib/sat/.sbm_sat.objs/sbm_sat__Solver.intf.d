lib/sat/solver.mli:
