(** Combinational equivalence checking.

    The in-house stand-in for the "industrial formal equivalence
    checking flow" the paper verifies its benchmarks with: fast random
    simulation to hunt for counterexamples, then a SAT miter for the
    proof. Every optimization engine in this repository is gated by
    this check in the test-suite. *)

type result =
  | Equivalent
  | Counterexample of bool array (** an input assignment that differs *)
  | Unknown (** resource limit hit *)

(** [check ?sim_rounds ?conflict_limit a b] compares two networks with
    identical input and output counts.
    @raise Invalid_argument on I/O signature mismatch. *)
val check :
  ?sim_rounds:int -> ?conflict_limit:int -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t -> result

(** [equiv a b] is [check a b = Equivalent] with the defaults. *)
val equiv : Sbm_aig.Aig.t -> Sbm_aig.Aig.t -> bool
