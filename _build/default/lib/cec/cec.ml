module Aig = Sbm_aig.Aig
module Sim = Sbm_aig.Sim
module Solver = Sbm_sat.Solver
module Tseitin = Sbm_sat.Tseitin
module Rng = Sbm_util.Rng

type result = Equivalent | Counterexample of bool array | Unknown

let counterexample_of_words a words bit =
  Array.init (Aig.num_inputs a) (fun i ->
      Int64.logand (Int64.shift_right_logical words.(i) bit) 1L = 1L)

let simulate_differ a b rng =
  let words = Sim.random_inputs a rng in
  let va = Sim.simulate a words in
  let vb = Sim.simulate b words in
  let oa = Sim.output_values a va in
  let ob = Sim.output_values b vb in
  let diff = ref None in
  Array.iteri
    (fun i wa ->
      if !diff = None && wa <> ob.(i) then begin
        let x = Int64.logxor wa ob.(i) in
        (* Index of the lowest set bit. *)
        let rec low j = if Int64.logand (Int64.shift_right_logical x j) 1L = 1L then j else low (j + 1) in
        diff := Some (counterexample_of_words a words (low 0))
      end)
    oa;
  !diff

let check ?(sim_rounds = 16) ?(conflict_limit = 100_000) a b =
  if Aig.num_inputs a <> Aig.num_inputs b || Aig.num_outputs a <> Aig.num_outputs b
  then invalid_arg "Cec.check: I/O signature mismatch";
  let rng = Rng.create 0xcec in
  let rec sim r =
    if r = 0 then None
    else
      match simulate_differ a b rng with
      | Some cex -> Some cex
      | None -> sim (r - 1)
  in
  match sim sim_rounds with
  | Some cex -> Counterexample cex
  | None ->
    (* SAT miter: shared inputs, OR of output XORs asserted true. *)
    let solver = Solver.create () in
    let va = Tseitin.encode solver a in
    let vb = Tseitin.encode solver b in
    (* Tie the inputs together. *)
    for i = 0 to Aig.num_inputs a - 1 do
      let xa = Tseitin.lit_dimacs va (Aig.input_lit a i) in
      let xb = Tseitin.lit_dimacs vb (Aig.input_lit b i) in
      ignore (Solver.add_clause solver [ -xa; xb ]);
      ignore (Solver.add_clause solver [ xa; -xb ])
    done;
    let diffs =
      List.init (Aig.num_outputs a) (fun i ->
          let oa = Tseitin.lit_dimacs va (Aig.output_lit a i) in
          let ob = Tseitin.lit_dimacs vb (Aig.output_lit b i) in
          let d = Solver.new_var solver in
          ignore (Solver.add_clause solver [ -d; oa; ob ]);
          ignore (Solver.add_clause solver [ -d; -oa; -ob ]);
          d)
    in
    ignore (Solver.add_clause solver diffs);
    (match Solver.solve ~conflict_limit solver with
    | Solver.Unsat -> Equivalent
    | Solver.Unknown -> Unknown
    | Solver.Sat ->
      let cex =
        Array.init (Aig.num_inputs a) (fun i ->
            Solver.model_value solver (Tseitin.lit_dimacs va (Aig.input_lit a i)))
      in
      Counterexample cex)

let equiv a b = check a b = Equivalent
