lib/cec/cec.mli: Sbm_aig
