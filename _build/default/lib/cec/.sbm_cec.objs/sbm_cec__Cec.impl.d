lib/cec/cec.ml: Array Int64 List Sbm_aig Sbm_sat Sbm_util
