(* Shared test utilities: random network generation and equivalence
   gates used by every optimization-engine suite. *)

module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng

(* A random strashed AIG. The pool starts with the input literals and
   grows with every created node; fanins are drawn from the pool with
   random complementation, so the graph has realistic reconvergence
   and inverter distribution. *)
let random_aig ?(inputs = 8) ?(ands = 60) ?(outputs = 4) rng =
  let aig = Aig.create () in
  let pool = ref [] in
  for _ = 1 to inputs do
    pool := Aig.add_input aig :: !pool
  done;
  let pool = ref (Array.of_list !pool) in
  let pick () =
    let arr = !pool in
    let l = arr.(Rng.int rng (Array.length arr)) in
    if Rng.bool rng then Aig.lnot l else l
  in
  for _ = 1 to ands do
    let l = Aig.band aig (pick ()) (pick ()) in
    if Aig.node_of l <> 0 then
      pool := Array.append !pool [| Aig.lpos l |]
  done;
  for _ = 1 to outputs do
    ignore (Aig.add_output aig (pick ()))
  done;
  aig

(* A random AIG with XOR/MUX structure mixed in: harder for the
   optimizers, richer for the Boolean-difference engine. *)
let random_xor_aig ?(inputs = 8) ?(gates = 40) ?(outputs = 4) rng =
  let aig = Aig.create () in
  let pool = ref [] in
  for _ = 1 to inputs do
    pool := Aig.add_input aig :: !pool
  done;
  let pool = ref (Array.of_list !pool) in
  let pick () =
    let arr = !pool in
    let l = arr.(Rng.int rng (Array.length arr)) in
    if Rng.bool rng then Aig.lnot l else l
  in
  for _ = 1 to gates do
    let l =
      match Rng.int rng 4 with
      | 0 -> Aig.band aig (pick ()) (pick ())
      | 1 -> Aig.bor aig (pick ()) (pick ())
      | 2 -> Aig.bxor aig (pick ()) (pick ())
      | _ -> Aig.bmux aig (pick ()) (pick ()) (pick ())
    in
    if Aig.node_of l <> 0 then pool := Array.append !pool [| Aig.lpos l |]
  done;
  for _ = 1 to outputs do
    ignore (Aig.add_output aig (pick ()))
  done;
  aig

let assert_equiv ?(msg = "networks must stay equivalent") a b =
  match Sbm_cec.Cec.check a b with
  | Sbm_cec.Cec.Equivalent -> ()
  | Sbm_cec.Cec.Counterexample cex ->
    let bits = Array.to_list cex |> List.map (fun b -> if b then "1" else "0") in
    Alcotest.failf "%s (cex: %s)" msg (String.concat "" bits)
  | Sbm_cec.Cec.Unknown -> Alcotest.failf "%s (equivalence unknown)" msg

(* Exhaustive equivalence for small input counts: stronger than random
   simulation, independent of the SAT path. *)
let assert_equiv_exhaustive ?(msg = "exhaustive equivalence") a b =
  let n = Aig.num_inputs a in
  assert (n <= 12);
  for m = 0 to (1 lsl n) - 1 do
    let bits = Array.init n (fun i -> (m lsr i) land 1 = 1) in
    let oa = Sbm_aig.Sim.eval a bits in
    let ob = Sbm_aig.Sim.eval b bits in
    if oa <> ob then Alcotest.failf "%s: differ on minterm %d" msg m
  done

let qcheck_case ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
