(* SAT solver: brute-force cross-check on random CNFs, assumptions,
   conflict budget; sweeping and redundancy removal gates. *)

module Solver = Sbm_sat.Solver
module Rng = Sbm_util.Rng
module Aig = Sbm_aig.Aig

let random_cnf rng nvars nclauses max_len =
  List.init nclauses (fun _ ->
      let len = 1 + Rng.int rng max_len in
      List.init len (fun _ ->
          let v = 1 + Rng.int rng nvars in
          if Rng.bool rng then v else -v))

let brute_force nvars clauses =
  let rec try_assign m =
    if m >= 1 lsl nvars then None
    else begin
      let sat =
        List.for_all
          (List.exists (fun l ->
               let v = abs l in
               let value = (m lsr (v - 1)) land 1 = 1 in
               if l > 0 then value else not value))
          clauses
      in
      if sat then Some m else try_assign (m + 1)
    end
  in
  try_assign 0

let test_random_cnfs =
  Helpers.qcheck_case ~count:200 "solver agrees with brute force"
    QCheck2.Gen.(
      triple (int_range 1 8) (int_range 1 20) (int_bound 1_000_000))
    (fun (nvars, nclauses, seed) ->
      let rng = Rng.create seed in
      let clauses = random_cnf rng nvars nclauses 4 in
      let solver = Solver.create () in
      for _ = 1 to nvars do
        ignore (Solver.new_var solver)
      done;
      let ok = List.for_all (fun c -> Solver.add_clause solver c) clauses in
      let result = if ok then Solver.solve solver else Solver.Unsat in
      match (result, brute_force nvars clauses) with
      | Solver.Sat, Some _ ->
        (* Verify the reported model. *)
        List.for_all
          (List.exists (fun l ->
               let value = Solver.model_value solver (abs l) in
               if l > 0 then value else not value))
          clauses
      | Solver.Unsat, None -> true
      | Solver.Sat, None | Solver.Unsat, Some _ -> false
      | Solver.Unknown, _ -> false)

let test_assumptions () =
  let solver = Solver.create () in
  let a = Solver.new_var solver in
  let b = Solver.new_var solver in
  ignore (Solver.add_clause solver [ a; b ]);
  ignore (Solver.add_clause solver [ -a; b ]);
  Alcotest.(check bool) "sat under b" true (Solver.solve ~assumptions:[ b ] solver = Solver.Sat);
  Alcotest.(check bool) "unsat under -b,-a" true
    (Solver.solve ~assumptions:[ -b; -a ] solver = Solver.Unsat);
  (* Assumptions do not poison later solves. *)
  Alcotest.(check bool) "sat again" true (Solver.solve solver = Solver.Sat)

let test_unsat_pigeonhole () =
  (* 3 pigeons, 2 holes. *)
  let solver = Solver.create () in
  let v = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Solver.new_var solver)) in
  for p = 0 to 2 do
    ignore (Solver.add_clause solver [ v.(p).(0); v.(p).(1) ])
  done;
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        ignore (Solver.add_clause solver [ -v.(p1).(h); -v.(p2).(h) ])
      done
    done
  done;
  Alcotest.(check bool) "pigeonhole unsat" true (Solver.solve solver = Solver.Unsat)

let test_conflict_budget () =
  (* A hard instance with a 1-conflict budget returns Unknown. *)
  let solver = Solver.create () in
  let v = Array.init 5 (fun _ -> Array.init 4 (fun _ -> Solver.new_var solver)) in
  for p = 0 to 4 do
    ignore (Solver.add_clause solver (Array.to_list v.(p)))
  done;
  for h = 0 to 3 do
    for p1 = 0 to 4 do
      for p2 = p1 + 1 to 4 do
        ignore (Solver.add_clause solver [ -v.(p1).(h); -v.(p2).(h) ])
      done
    done
  done;
  match Solver.solve ~conflict_limit:1 solver with
  | Solver.Unknown -> ()
  | Solver.Sat -> Alcotest.fail "pigeonhole cannot be sat"
  | Solver.Unsat -> () (* solved fast — acceptable *)

let test_tseitin () =
  let rng = Rng.create 88 in
  for _ = 1 to 10 do
    let aig = Helpers.random_xor_aig ~inputs:6 ~gates:25 ~outputs:3 rng in
    let solver = Solver.create () in
    let vars = Sbm_sat.Tseitin.encode solver aig in
    (* For a random input assignment, assume the inputs and check the
       model matches simulation. *)
    let bits = Array.init (Aig.num_inputs aig) (fun _ -> Rng.bool rng) in
    let assumptions =
      List.init (Aig.num_inputs aig) (fun i ->
          let v = vars.(Aig.node_of (Aig.input_lit aig i)) in
          if bits.(i) then v else -v)
    in
    (match Solver.solve ~assumptions solver with
    | Solver.Sat ->
      let expected = Sbm_aig.Sim.eval aig bits in
      Array.iteri
        (fun i l ->
          let d = Sbm_sat.Tseitin.lit_dimacs vars l in
          let value = Solver.model_value solver (abs d) in
          let value = if d < 0 then not value else value in
          if value <> expected.(i) then Alcotest.failf "output %d mismatch" i)
        (Aig.outputs aig)
    | Solver.Unsat | Solver.Unknown -> Alcotest.fail "assumed inputs must be sat")
  done

let test_sweep () =
  let rng = Rng.create 89 in
  for _ = 1 to 8 do
    let aig = Helpers.random_xor_aig ~inputs:6 ~gates:30 ~outputs:4 rng in
    let original = Aig.copy aig in
    let swept, merged = Sbm_sat.Sweep.run aig in
    Aig.check swept;
    Helpers.assert_equiv_exhaustive ~msg:"sweep equivalence" original swept;
    Alcotest.(check bool) "merge count sane" true (merged >= 0);
    Alcotest.(check bool) "not larger" true (Aig.size swept <= Aig.size original)
  done

let test_sweep_merges_duplicates () =
  (* Functionally equal but structurally different cones must merge:
     f = a&(b&c), g = (a&b)&c. *)
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  ignore (Aig.add_output aig (Aig.band aig a (Aig.band aig b c)));
  ignore (Aig.add_output aig (Aig.band aig (Aig.band aig a b) c));
  let swept, merged = Sbm_sat.Sweep.run aig in
  Alcotest.(check bool) "merged at least one" true (merged >= 1);
  Alcotest.(check int) "two ANDs remain" 2 (Aig.size swept);
  Alcotest.(check int) "outputs identical" (Aig.output_lit swept 0) (Aig.output_lit swept 1)

let test_redundancy_removal () =
  (* y = a & (a | b): the (a|b) input is redundant; y == a. *)
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let y = Aig.band aig a (Aig.bor aig a b) in
  ignore (Aig.add_output aig y);
  let original = Aig.copy aig in
  let removed = Sbm_sat.Redundancy.run aig in
  Aig.check aig;
  Helpers.assert_equiv_exhaustive ~msg:"redundancy equivalence" original aig;
  Alcotest.(check bool) "found the redundancy" true (removed >= 1);
  Alcotest.(check int) "reduced to wire" 0 (Aig.size aig)

let test_redundancy_random () =
  let rng = Rng.create 90 in
  for _ = 1 to 6 do
    let aig = Helpers.random_xor_aig ~inputs:6 ~gates:25 ~outputs:3 rng in
    let original = Aig.copy aig in
    ignore (Sbm_sat.Redundancy.run ~max_candidates:40 aig);
    Aig.check aig;
    Helpers.assert_equiv_exhaustive ~msg:"redundancy random gate" original aig
  done

let suite =
  [
    test_random_cnfs;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "pigeonhole unsat" `Quick test_unsat_pigeonhole;
    Alcotest.test_case "conflict budget" `Quick test_conflict_budget;
    Alcotest.test_case "tseitin encoding" `Quick test_tseitin;
    Alcotest.test_case "sat sweeping gate" `Quick test_sweep;
    Alcotest.test_case "sweep merges duplicates" `Quick test_sweep_merges_duplicates;
    Alcotest.test_case "redundancy removal" `Quick test_redundancy_removal;
    Alcotest.test_case "redundancy random gate" `Quick test_redundancy_random;
  ]
