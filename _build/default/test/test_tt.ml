(* Truth-table engine: algebra laws, cofactors, support, ISOP —
   mostly property-based. *)

module Tt = Sbm_truthtable.Tt
module Rng = Sbm_util.Rng

let gen_nvars = QCheck2.Gen.int_range 0 9

let gen_tt =
  QCheck2.Gen.(
    pair gen_nvars (int_bound 1_000_000)
    |> map (fun (n, seed) -> Tt.random n (Rng.create seed)))

let gen_tt_pair =
  QCheck2.Gen.(
    triple gen_nvars (int_bound 1_000_000) (int_bound 1_000_000)
    |> map (fun (n, s1, s2) ->
           (Tt.random n (Rng.create s1), Tt.random n (Rng.create s2))))

let test_var_semantics () =
  for n = 1 to 8 do
    for i = 0 to n - 1 do
      let v = Tt.var n i in
      for m = 0 to min 255 ((1 lsl n) - 1) do
        Alcotest.(check bool)
          (Printf.sprintf "var %d of %d at %d" i n m)
          ((m lsr i) land 1 = 1)
          (Tt.get_bit v m)
      done
    done
  done

let test_cofactor_semantics () =
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let n = 1 + Rng.int rng 8 in
    let t = Tt.random n rng in
    let i = Rng.int rng n in
    let c0 = Tt.cofactor0 t i and c1 = Tt.cofactor1 t i in
    for m = 0 to (1 lsl n) - 1 do
      let m0 = m land lnot (1 lsl i) in
      let m1 = m lor (1 lsl i) in
      Alcotest.(check bool) "cof0" (Tt.get_bit t m0) (Tt.get_bit c0 m);
      Alcotest.(check bool) "cof1" (Tt.get_bit t m1) (Tt.get_bit c1 m)
    done
  done

let test_shannon_expansion =
  Helpers.qcheck_case "shannon expansion rebuilds the function"
    QCheck2.Gen.(pair gen_tt (int_bound 100))
    (fun (t, i) ->
      let n = Tt.num_vars t in
      QCheck2.assume (n > 0);
      let i = i mod n in
      let x = Tt.var n i in
      let rebuilt = Tt.ite x (Tt.cofactor1 t i) (Tt.cofactor0 t i) in
      Tt.equal t rebuilt)

let test_de_morgan =
  Helpers.qcheck_case "de morgan" gen_tt_pair (fun (a, b) ->
      Tt.equal (Tt.bnot (Tt.band a b)) (Tt.bor (Tt.bnot a) (Tt.bnot b)))

let test_xor_identities =
  Helpers.qcheck_case "xor identities" gen_tt_pair (fun (a, b) ->
      Tt.equal (Tt.bxor a b) (Tt.bxor b a)
      && Tt.is_const0 (Tt.bxor a a)
      && Tt.equal (Tt.bxor a (Tt.bxor a b)) b)

let test_double_negation =
  Helpers.qcheck_case "double negation" gen_tt (fun t -> Tt.equal t (Tt.bnot (Tt.bnot t)))

let test_support_only_real_vars =
  Helpers.qcheck_case "cofactored variables leave the support"
    QCheck2.Gen.(pair gen_tt (int_bound 100))
    (fun (t, i) ->
      let n = Tt.num_vars t in
      QCheck2.assume (n > 0);
      let i = i mod n in
      not (List.mem i (Tt.support (Tt.cofactor0 t i))))

let test_count_ones =
  Helpers.qcheck_case "count_ones matches get_bit" gen_tt (fun t ->
      let n = Tt.num_vars t in
      let count = ref 0 in
      for m = 0 to (1 lsl n) - 1 do
        if Tt.get_bit t m then incr count
      done;
      !count = Tt.count_ones t)

let test_isop_covers =
  Helpers.qcheck_case "isop covers onset exactly (no dc)" gen_tt (fun t ->
      let n = Tt.num_vars t in
      let cubes = Tt.isop t (Tt.const0 n) in
      Tt.equal (Tt.cover_tt n cubes) t)

let test_isop_with_dc =
  Helpers.qcheck_case "isop within bounds (with dc)" gen_tt_pair (fun (f, d) ->
      let n = Tt.num_vars f in
      let on = Tt.band f (Tt.bnot d) in
      let cubes = Tt.isop on d in
      let cover = Tt.cover_tt n cubes in
      Tt.is_const0 (Tt.band on (Tt.bnot cover))
      && Tt.is_const0 (Tt.band cover (Tt.bnot (Tt.bor on d))))

let test_permute_roundtrip =
  Helpers.qcheck_case "permute by inverse is identity"
    QCheck2.Gen.(pair gen_tt (int_bound 1_000_000))
    (fun (t, seed) ->
      let n = Tt.num_vars t in
      QCheck2.assume (n > 0);
      let rng = Rng.create seed in
      (* Random permutation by sorting random keys. *)
      let keyed = Array.init n (fun i -> (Rng.bits rng, i)) in
      Array.sort compare keyed;
      let perm = Array.map snd keyed in
      let inv = Array.make n 0 in
      Array.iteri (fun i p -> inv.(p) <- i) perm;
      Tt.equal t (Tt.permute (Tt.permute t perm) inv))

let test_compose_semantics =
  Helpers.qcheck_case "compose matches substitution"
    QCheck2.Gen.(triple gen_tt (int_bound 1_000_000) (int_bound 100))
    (fun (t, seed, iv) ->
      let n = Tt.num_vars t in
      QCheck2.assume (n > 0 && n <= 8);
      let i = iv mod n in
      let g = Tt.random n (Rng.create seed) in
      let composed = Tt.compose t i g in
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let gv = Tt.get_bit g m in
        let m' = if gv then m lor (1 lsl i) else m land lnot (1 lsl i) in
        if Tt.get_bit composed m <> Tt.get_bit t m' then ok := false
      done;
      !ok)

let test_expand =
  Helpers.qcheck_case "expand keeps low-variable semantics" gen_tt (fun t ->
      let n = Tt.num_vars t in
      QCheck2.assume (n <= 8);
      let t' = Tt.expand t (n + 2) in
      let ok = ref true in
      for m = 0 to (1 lsl (n + 2)) - 1 do
        if Tt.get_bit t' m <> Tt.get_bit t (m land ((1 lsl n) - 1)) then ok := false
      done;
      !ok)

let test_flip =
  Helpers.qcheck_case "flip twice is identity"
    QCheck2.Gen.(pair gen_tt (int_bound 100))
    (fun (t, iv) ->
      let n = Tt.num_vars t in
      QCheck2.assume (n > 0);
      let i = iv mod n in
      Tt.equal t (Tt.flip (Tt.flip t i) i))

let suite =
  [
    Alcotest.test_case "variable projections" `Quick test_var_semantics;
    Alcotest.test_case "cofactor semantics" `Quick test_cofactor_semantics;
    test_shannon_expansion;
    test_de_morgan;
    test_xor_identities;
    test_double_negation;
    test_support_only_real_vars;
    test_count_ones;
    test_isop_covers;
    test_isop_with_dc;
    test_permute_roundtrip;
    test_compose_semantics;
    test_expand;
    test_flip;
  ]
