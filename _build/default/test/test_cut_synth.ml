(* Cut enumeration and resynthesis: cut functions must match cone
   simulation; Synth must rebuild any truth table exactly. *)

module Aig = Sbm_aig.Aig
module Cut = Sbm_aig.Cut
module Tt = Sbm_truthtable.Tt
module Rng = Sbm_util.Rng

(* Evaluate the function of [node] over given leaf values by local
   recursion. *)
let cone_value aig node leaves leaf_values =
  let memo = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace memo l leaf_values.(i)) leaves;
  Hashtbl.replace memo 0 false;
  let rec eval v =
    match Hashtbl.find_opt memo v with
    | Some b -> b
    | None ->
      let f0 = Aig.fanin0 aig v and f1 = Aig.fanin1 aig v in
      let v0 = eval (Aig.node_of f0) in
      let v0 = if Aig.is_compl f0 then not v0 else v0 in
      let v1 = eval (Aig.node_of f1) in
      let v1 = if Aig.is_compl f1 then not v1 else v1 in
      let b = v0 && v1 in
      Hashtbl.replace memo v b;
      b
  in
  eval node

let check_cut_functions aig cuts_of v =
  List.iter
    (fun (c : Cut.cut) ->
      let m = Array.length c.Cut.leaves in
      if m >= 1 && not (Array.exists (fun l -> l = v) c.Cut.leaves) then
        for minterm = 0 to (1 lsl m) - 1 do
          let leaf_values = Array.init m (fun i -> (minterm lsr i) land 1 = 1) in
          let expected = cone_value aig v c.Cut.leaves leaf_values in
          let got =
            Int64.logand (Int64.shift_right_logical c.Cut.tt minterm) 1L = 1L
          in
          if expected <> got then
            Alcotest.failf "cut function of node %d differs on minterm %d" v minterm
        done)
    (cuts_of v)

let test_enumerate_functions () =
  let rng = Rng.create 401 in
  for _ = 1 to 5 do
    let aig = Helpers.random_xor_aig ~inputs:6 ~gates:25 ~outputs:3 rng in
    let cuts = Cut.enumerate aig ~k:4 ~max_cuts:8 in
    let order = Aig.topo aig in
    Array.iter
      (fun v -> if Aig.is_and aig v then check_cut_functions aig (fun v -> cuts.(v)) v)
      order
  done

let test_local_functions () =
  let rng = Rng.create 402 in
  for _ = 1 to 5 do
    let aig = Helpers.random_xor_aig ~inputs:6 ~gates:25 ~outputs:3 rng in
    let order = Aig.topo aig in
    Array.iter
      (fun v ->
        if Aig.is_and aig v then
          check_cut_functions aig
            (fun v -> Cut.local aig v ~k:4 ~max_cuts:8 ~depth:6)
            v)
      order
  done

let test_cut_width_respected () =
  let rng = Rng.create 403 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:50 ~outputs:4 rng in
  List.iter
    (fun k ->
      let cuts = Cut.enumerate aig ~k ~max_cuts:8 in
      Array.iteri
        (fun v cs ->
          if Aig.is_and aig v then
            List.iter
              (fun (c : Cut.cut) ->
                Alcotest.(check bool) "width" true (Array.length c.Cut.leaves <= k))
              cs)
        cuts)
    [ 2; 3; 4; 5; 6 ]

let test_stretch_roundtrip =
  Helpers.qcheck_case "stretch preserves function"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      (* leaves [2;5], super [1;2;5;9] *)
      let tt = Int64.of_int (Rng.int rng 16) in
      let leaves = [| 2; 5 |] in
      let super = [| 1; 2; 5; 9 |] in
      let stretched = Cut.stretch tt leaves super in
      let ok = ref true in
      for m = 0 to 15 do
        (* super minterm: bit0 = leaf 1, bit1 = leaf 2, bit2 = leaf 5,
           bit3 = leaf 9 *)
        let a = ((m lsr 1) land 1) lor (((m lsr 2) land 1) lsl 1) in
        let expected = Int64.logand (Int64.shift_right_logical tt a) 1L in
        let got = Int64.logand (Int64.shift_right_logical stretched m) 1L in
        if expected <> got then ok := false
      done;
      !ok)

(* --- Synth --- *)

let gen_tt =
  QCheck2.Gen.(
    pair (int_range 1 8) (int_bound 1_000_000)
    |> map (fun (n, seed) -> Tt.random n (Rng.create seed)))

let test_synth_exact =
  Helpers.qcheck_case ~count:100 "synth builds the exact function" gen_tt (fun tt ->
      let n = Tt.num_vars tt in
      let aig = Aig.create () in
      let leaves = Array.init n (fun _ -> Aig.add_input aig) in
      let root = Sbm_aig.Synth.of_tt aig tt leaves in
      ignore (Aig.add_output aig root);
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let bits = Array.init n (fun i -> (m lsr i) land 1 = 1) in
        if (Sbm_aig.Sim.eval aig bits).(0) <> Tt.get_bit tt m then ok := false
      done;
      !ok)

let test_synth_cost_bound =
  Helpers.qcheck_case "cost bounds real construction" gen_tt (fun tt ->
      let n = Tt.num_vars tt in
      let aig = Aig.create () in
      let leaves = Array.init n (fun _ -> Aig.add_input aig) in
      let cp = Aig.mark_created aig in
      let root = Sbm_aig.Synth.of_tt aig tt leaves in
      ignore (Aig.add_output aig root);
      Aig.fresh_since aig cp <= Sbm_aig.Synth.cost_of_tt tt)

let test_synth_of_sop =
  Helpers.qcheck_case "sop construction matches" gen_tt (fun tt ->
      let n = Tt.num_vars tt in
      let cubes = Tt.isop tt (Tt.const0 n) in
      let aig = Aig.create () in
      let leaves = Array.init n (fun _ -> Aig.add_input aig) in
      let root = Sbm_aig.Synth.of_sop aig cubes ~nvars:n leaves in
      ignore (Aig.add_output aig root);
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let bits = Array.init n (fun i -> (m lsr i) land 1 = 1) in
        if (Sbm_aig.Sim.eval aig bits).(0) <> Tt.get_bit tt m then ok := false
      done;
      !ok)

let test_synth_trivial () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let leaves = [| a; b |] in
  Alcotest.(check int) "const0" Aig.const0 (Sbm_aig.Synth.of_tt aig (Tt.const0 2) leaves);
  Alcotest.(check int) "const1" Aig.const1 (Sbm_aig.Synth.of_tt aig (Tt.const1 2) leaves);
  Alcotest.(check int) "projection" a (Sbm_aig.Synth.of_tt aig (Tt.var 2 0) leaves);
  Alcotest.(check int) "negated projection" (Aig.lnot b)
    (Sbm_aig.Synth.of_tt aig (Tt.bnot (Tt.var 2 1)) leaves)

let suite =
  [
    Alcotest.test_case "global cut functions" `Quick test_enumerate_functions;
    Alcotest.test_case "local cut functions" `Quick test_local_functions;
    Alcotest.test_case "cut width respected" `Quick test_cut_width_respected;
    test_stretch_roundtrip;
    test_synth_exact;
    test_synth_cost_bound;
    test_synth_of_sop;
    Alcotest.test_case "synth trivial cases" `Quick test_synth_trivial;
  ]
