(* Utility substrate: vectors and the deterministic RNG. *)

module Vec = Sbm_util.Vec
module Rng = Sbm_util.Rng

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Vec.size v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  for i = 99 downto 0 do
    Alcotest.(check int) "pop order" i (Vec.pop v)
  done;
  Alcotest.(check bool) "empty" true (Vec.is_empty v)

let test_vec_remove () =
  let v = Vec.of_list [ 1; 2; 3; 2; 4 ] in
  Vec.remove v 2;
  Alcotest.(check (list int)) "first occurrence removed" [ 1; 3; 2; 4 ] (Vec.to_list v);
  Vec.remove v 7;
  Alcotest.(check (list int)) "missing is no-op" [ 1; 3; 2; 4 ] (Vec.to_list v)

let test_vec_swap_remove () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Vec.swap_remove v 0;
  Alcotest.(check int) "size shrinks" 3 (Vec.size v);
  Alcotest.(check int) "last moved in" 4 (Vec.get v 0)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  (match Vec.get v 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds failure");
  match Vec.pop (Vec.create ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected empty pop failure"

let test_vec_grow_stress =
  Helpers.qcheck_case "vec mirrors list semantics"
    QCheck2.Gen.(list (int_bound 1000))
    (fun xs ->
      let v = Vec.create ~capacity:1 () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs && Vec.size v = List.length xs)

let test_vec_sort =
  Helpers.qcheck_case "sort agrees with List.sort"
    QCheck2.Gen.(list (int_bound 1000))
    (fun xs ->
      let v = Vec.of_list xs in
      Vec.sort compare v;
      Vec.to_list v = List.sort compare xs)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_int_range =
  Helpers.qcheck_case "int stays in range"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let x = Rng.int rng n in
      x >= 0 && x < n)

let test_rng_distribution () =
  (* Coarse uniformity: 10 buckets over 10k draws each within 3x of
     the expectation. *)
  let rng = Rng.create 123 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iter
    (fun b -> Alcotest.(check bool) "bucket sane" true (b > 300 && b < 3000))
    buckets

let test_rng_split_decorrelates () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.bits a) in
  let ys = List.init 20 (fun _ -> Rng.bits b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let suite =
  [
    Alcotest.test_case "vec push/pop" `Quick test_vec_push_pop;
    Alcotest.test_case "vec remove" `Quick test_vec_remove;
    Alcotest.test_case "vec swap_remove" `Quick test_vec_swap_remove;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    test_vec_grow_stress;
    test_vec_sort;
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    test_rng_int_range;
    Alcotest.test_case "rng distribution" `Quick test_rng_distribution;
    Alcotest.test_case "rng split" `Quick test_rng_split_decorrelates;
  ]
