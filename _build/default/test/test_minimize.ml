(* Two-level minimization: tautology, expansion, irredundancy. *)

module Sop = Sbm_sop.Sop
module Rng = Sbm_util.Rng

let eval_cover cover m = Sop.eval cover (fun v -> (m lsr v) land 1 = 1)

let semantically_equal nvars a b =
  let ok = ref true in
  for m = 0 to (1 lsl nvars) - 1 do
    if eval_cover a m <> eval_cover b m then ok := false
  done;
  !ok

let random_cover rng nvars ncubes max_lits =
  List.init ncubes (fun _ ->
      let nlits = 1 + Rng.int rng max_lits in
      let lits = ref [] in
      for _ = 1 to nlits do
        let v = Rng.int rng nvars in
        let l = Sop.lit_of v (Rng.bool rng) in
        if not (List.exists (fun x -> Sop.var_of x = v) !lits) then lits := l :: !lits
      done;
      Sop.cube_of_list !lits)

let gen_cover =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* nvars = int_range 2 6 in
    let* ncubes = int_range 1 7 in
    let rng = Rng.create seed in
    return (random_cover rng nvars ncubes 4, nvars))

let test_tautology_exact =
  Helpers.qcheck_case ~count:200 "tautology agrees with evaluation" gen_cover
    (fun (c, n) ->
      let brute = ref true in
      for m = 0 to (1 lsl n) - 1 do
        if not (eval_cover c m) then brute := false
      done;
      Sop.tautology c = !brute)

let test_tautology_known () =
  let a = Sop.lit_of 0 false and na = Sop.lit_of 0 true in
  Alcotest.(check bool) "x + x' = 1" true
    (Sop.tautology [ [| a |]; [| na |] ]);
  Alcotest.(check bool) "x alone" false (Sop.tautology [ [| a |] ]);
  Alcotest.(check bool) "empty cube" true (Sop.tautology [ [||] ]);
  Alcotest.(check bool) "empty cover" false (Sop.tautology []);
  let b = Sop.lit_of 1 false and nb = Sop.lit_of 1 true in
  (* xy + xy' + x'y + x'y' = 1 *)
  Alcotest.(check bool) "four minterms" true
    (Sop.tautology
       [
         Sop.cube_of_list [ a; b ];
         Sop.cube_of_list [ a; nb ];
         Sop.cube_of_list [ na; b ];
         Sop.cube_of_list [ na; nb ];
       ])

let test_expand_preserves =
  Helpers.qcheck_case "expand preserves semantics" gen_cover (fun (c, n) ->
      semantically_equal n c (Sop.expand c))

let test_expand_never_grows_lits =
  Helpers.qcheck_case "expand never adds literals" gen_cover (fun (c, _) ->
      Sop.num_lits (Sop.expand c) <= Sop.num_lits c)

let test_irredundant_preserves =
  Helpers.qcheck_case "irredundant preserves semantics" gen_cover (fun (c, n) ->
      semantically_equal n c (Sop.irredundant c))

let test_minimize_preserves =
  Helpers.qcheck_case ~count:200 "minimize preserves semantics" gen_cover
    (fun (c, n) -> semantically_equal n c (Sop.minimize c))

let test_minimize_consensus () =
  (* xy + x'z + yz: the consensus cube yz is redundant. *)
  let x = Sop.lit_of 0 false and nx = Sop.lit_of 0 true in
  let y = Sop.lit_of 1 false and z = Sop.lit_of 2 false in
  let cover =
    [ Sop.cube_of_list [ x; y ]; Sop.cube_of_list [ nx; z ]; Sop.cube_of_list [ y; z ] ]
  in
  let m = Sop.minimize cover in
  Alcotest.(check int) "consensus removed" 2 (List.length m);
  Alcotest.(check bool) "still equal" true (semantically_equal 3 cover m)

let test_minimize_expands_to_prime () =
  (* xy + xy' should fuse to x via expansion + absorption. *)
  let x = Sop.lit_of 0 false in
  let y = Sop.lit_of 1 false and ny = Sop.lit_of 1 true in
  let cover = [ Sop.cube_of_list [ x; y ]; Sop.cube_of_list [ x; ny ] ] in
  let m = Sop.minimize cover in
  Alcotest.(check bool) "still equal" true (semantically_equal 2 cover m);
  Alcotest.(check int) "single literal" 1 (Sop.num_lits m)

let test_cube_covered () =
  let x = Sop.lit_of 0 false in
  let y = Sop.lit_of 1 false and ny = Sop.lit_of 1 true in
  let cover = [ Sop.cube_of_list [ x; y ]; Sop.cube_of_list [ x; ny ] ] in
  Alcotest.(check bool) "x covered by xy + xy'" true
    (Sop.cube_covered cover (Sop.cube_of_list [ x ]));
  Alcotest.(check bool) "y not covered" false
    (Sop.cube_covered cover (Sop.cube_of_list [ y ]))

let suite =
  [
    test_tautology_exact;
    Alcotest.test_case "tautology known cases" `Quick test_tautology_known;
    test_expand_preserves;
    test_expand_never_grows_lits;
    test_irredundant_preserves;
    test_minimize_preserves;
    Alcotest.test_case "consensus redundancy" `Quick test_minimize_consensus;
    Alcotest.test_case "prime expansion" `Quick test_minimize_expands_to_prime;
    Alcotest.test_case "cube covered" `Quick test_cube_covered;
  ]
