(* Word-level construction library: arithmetic operators checked
   against OCaml integer semantics (property-based). *)

module Aig = Sbm_aig.Aig
module Word = Sbm_epfl.Word
module Rng = Sbm_util.Rng

let eval_word aig bits w_offsets =
  ignore w_offsets;
  Sbm_aig.Sim.eval aig bits

let run_binop build width a b =
  let aig = Aig.create () in
  let wa = Word.inputs aig width in
  let wb = Word.inputs aig width in
  build aig wa wb;
  let bits =
    Array.init (2 * width) (fun i ->
        if i < width then (a lsr i) land 1 = 1 else (b lsr (i - width)) land 1 = 1)
  in
  eval_word aig bits () |> Array.to_list
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let gen_pair =
  QCheck2.Gen.(
    let* w = int_range 2 10 in
    let* a = int_bound ((1 lsl w) - 1) in
    let* b = int_bound ((1 lsl w) - 1) in
    return (w, a, b))

let test_add =
  Helpers.qcheck_case ~count:100 "add" gen_pair (fun (w, a, b) ->
      run_binop (fun aig x y -> Word.outputs aig (Word.add aig x y)) w a b = a + b)

let test_sub =
  Helpers.qcheck_case ~count:100 "sub (mod 2^w)" gen_pair (fun (w, a, b) ->
      let got = run_binop (fun aig x y -> Word.outputs aig (fst (Word.sub aig x y))) w a b in
      got = (a - b) land ((1 lsl w) - 1))

let test_uge =
  Helpers.qcheck_case ~count:100 "unsigned >=" gen_pair (fun (w, a, b) ->
      let got =
        run_binop
          (fun aig x y -> ignore (Aig.add_output aig (Word.uge aig x y)))
          w a b
      in
      (got = 1) = (a >= b))

let test_equal =
  Helpers.qcheck_case ~count:100 "equality" gen_pair (fun (w, a, b) ->
      let got =
        run_binop (fun aig x y -> ignore (Aig.add_output aig (Word.equal aig x y))) w a b
      in
      (got = 1) = (a = b))

let test_mul =
  Helpers.qcheck_case ~count:100 "mul"
    QCheck2.Gen.(
      let* w = int_range 2 7 in
      let* a = int_bound ((1 lsl w) - 1) in
      let* b = int_bound ((1 lsl w) - 1) in
      return (w, a, b))
    (fun (w, a, b) ->
      run_binop (fun aig x y -> Word.outputs aig (Word.mul aig x y)) w a b = a * b)

let test_divmod =
  Helpers.qcheck_case ~count:100 "divmod"
    QCheck2.Gen.(
      let* w = int_range 2 7 in
      let* a = int_bound ((1 lsl w) - 1) in
      let* b = int_range 1 ((1 lsl w) - 1) in
      return (w, a, b))
    (fun (w, a, b) ->
      let got =
        run_binop
          (fun aig x y ->
            let q, r = Word.divmod aig x y in
            Word.outputs aig q;
            Word.outputs aig r)
          w a b
      in
      let q = got land ((1 lsl w) - 1) in
      let r = (got lsr w) land ((1 lsl w) - 1) in
      q = a / b && r = a mod b)

let test_isqrt =
  Helpers.qcheck_case ~count:100 "isqrt"
    QCheck2.Gen.(
      let* k = int_range 1 5 in
      let* x = int_bound ((1 lsl (2 * k)) - 1) in
      return (k, x))
    (fun (k, x) ->
      let aig = Aig.create () in
      let w = Word.inputs aig (2 * k) in
      Word.outputs aig (Word.isqrt aig w);
      let bits = Array.init (2 * k) (fun i -> (x lsr i) land 1 = 1) in
      let out = Sbm_aig.Sim.eval aig bits in
      let got = ref 0 in
      Array.iteri (fun i b -> if b then got := !got lor (1 lsl i)) out;
      let e = ref 0 in
      while (!e + 1) * (!e + 1) <= x do incr e done;
      !got = !e)

let test_shifts =
  Helpers.qcheck_case ~count:100 "barrel shifts"
    QCheck2.Gen.(
      let* w = int_range 2 10 in
      let* x = int_bound ((1 lsl w) - 1) in
      let* s = int_bound (w - 1) in
      return (w, x, s))
    (fun (w, x, s) ->
      let log =
        let rec go l = if 1 lsl l >= w then l else go (l + 1) in
        go 1
      in
      let aig = Aig.create () in
      let data = Word.inputs aig w in
      let amount = Word.inputs aig log in
      Word.outputs aig (Word.shift_left aig data amount);
      Word.outputs aig (Word.shift_right aig data amount);
      let bits =
        Array.init (w + log) (fun i ->
            if i < w then (x lsr i) land 1 = 1 else (s lsr (i - w)) land 1 = 1)
      in
      let out = Sbm_aig.Sim.eval aig bits in
      let left = ref 0 and right = ref 0 in
      for i = 0 to w - 1 do
        if out.(i) then left := !left lor (1 lsl i);
        if out.(w + i) then right := !right lor (1 lsl i)
      done;
      !left = (x lsl s) land ((1 lsl w) - 1) && !right = x lsr s)

let test_priority_encode =
  Helpers.qcheck_case ~count:100 "priority encoder"
    QCheck2.Gen.(
      let* n = int_range 2 16 in
      let* x = int_bound ((1 lsl n) - 1) in
      return (n, x))
    (fun (n, x) ->
      let aig = Aig.create () in
      let bits = Array.init n (fun _ -> Aig.add_input aig) in
      let index, valid = Word.priority_encode aig bits in
      Word.outputs aig index;
      ignore (Aig.add_output aig valid);
      let in_bits = Array.init n (fun i -> (x lsr i) land 1 = 1) in
      let out = Sbm_aig.Sim.eval aig in_bits in
      let idx = ref 0 in
      Array.iteri (fun i b -> if i < Array.length index && b then idx := !idx lor (1 lsl i)) out;
      let valid_bit = out.(Array.length index) in
      if x = 0 then not valid_bit
      else begin
        let rec low i = if (x lsr i) land 1 = 1 then i else low (i + 1) in
        valid_bit && !idx = low 0
      end)

let suite =
  [
    test_add; test_sub; test_uge; test_equal; test_mul; test_divmod; test_isqrt;
    test_shifts; test_priority_encode;
  ]
