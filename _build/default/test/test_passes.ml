(* The four classic AIG passes, each gated by exhaustive equivalence
   on random networks and by the no-size-increase guarantee. *)

module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng

let gate ~name ~pass ?(rounds = 12) ?(gen = `Mixed) () =
  let rng = Rng.create (Hashtbl.hash name) in
  for round = 1 to rounds do
    let aig =
      match gen with
      | `Plain -> Helpers.random_aig ~inputs:7 ~ands:60 ~outputs:4 rng
      | `Mixed -> Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng
    in
    let original = Aig.copy aig in
    let size_before = Aig.size aig in
    let optimized = pass aig in
    Aig.check optimized;
    let size_after = Aig.size optimized in
    if size_after > size_before then
      Alcotest.failf "%s grew the network on round %d (%d -> %d)" name round
        size_before size_after;
    Helpers.assert_equiv_exhaustive
      ~msg:(Printf.sprintf "%s equivalence, round %d" name round)
      original optimized
  done

let in_place pass aig =
  ignore (pass aig);
  aig

let test_rewrite () = gate ~name:"rewrite" ~pass:(in_place Sbm_aig.Rewrite.run) ()

let test_rewrite_zero () =
  gate ~name:"rewrite -z"
    ~pass:(in_place (Sbm_aig.Rewrite.run ~zero_gain:true))
    ()

let test_refactor () =
  gate ~name:"refactor" ~pass:(in_place (Sbm_aig.Refactor.run ~max_leaves:8)) ()

let test_refactor_wide () =
  gate ~name:"refactor wide" ~rounds:6
    ~pass:(in_place (Sbm_aig.Refactor.run ~max_leaves:12))
    ()

let test_resub () =
  gate ~name:"resub"
    ~pass:(in_place (Sbm_aig.Resub.run ~max_leaves:8 ~max_divisors:30))
    ()

let test_balance () =
  let rng = Rng.create 1234 in
  for _ = 1 to 12 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
    let balanced = Sbm_aig.Balance.run aig in
    Aig.check balanced;
    Helpers.assert_equiv_exhaustive ~msg:"balance equivalence" aig balanced;
    Alcotest.(check bool)
      "depth not larger than 2x original (sanity)" true
      (Aig.depth balanced <= (2 * Aig.depth aig) + 1)
  done

let test_balance_reduces_chain_depth () =
  (* A left-leaning AND chain of 8 inputs balances to depth 3. *)
  let aig = Aig.create () in
  let inputs = List.init 8 (fun _ -> Aig.add_input aig) in
  let chain = Aig.band_list aig inputs in
  ignore (Aig.add_output aig chain);
  Alcotest.(check int) "chain depth" 7 (Aig.depth aig);
  let balanced = Sbm_aig.Balance.run aig in
  Helpers.assert_equiv_exhaustive aig balanced;
  Alcotest.(check int) "balanced depth" 3 (Aig.depth balanced)

let test_rewrite_reduces_redundancy () =
  (* (a & b) | (a & ~b) = a: rewriting should find this. *)
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let t1 = Aig.band aig a b in
  let t2 = Aig.band aig a (Aig.lnot b) in
  ignore (Aig.add_output aig (Aig.bor aig t1 t2));
  let before = Aig.size aig in
  let gain = Sbm_aig.Rewrite.run aig in
  Alcotest.(check bool) "found gain" true (gain > 0);
  Alcotest.(check int) "absorbed to a" 0 (Aig.size aig);
  Alcotest.(check bool) "smaller" true (Aig.size aig < before)

let test_resub_finds_divisor () =
  (* f = (a&b)&c, g = a&b exists: resub of deeper duplicated logic. *)
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  let g = Aig.band aig a b in
  ignore (Aig.add_output aig g);
  (* Duplicate structure with different association: (a&c)&b. *)
  let t = Aig.band aig a c in
  let f = Aig.band aig t b in
  ignore (Aig.add_output aig f);
  let original = Aig.copy aig in
  ignore (Sbm_aig.Resub.run aig);
  Aig.check aig;
  Helpers.assert_equiv_exhaustive original aig

let test_pipeline () =
  (* Chain all passes repeatedly; invariants and equivalence hold. *)
  let rng = Rng.create 777 in
  for _ = 1 to 4 do
    let aig = ref (Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:5 rng) in
    let original = Aig.copy !aig in
    ignore (Sbm_aig.Rewrite.run !aig);
    ignore (Sbm_aig.Refactor.run ~max_leaves:10 !aig);
    aig := Sbm_aig.Balance.run !aig;
    ignore (Sbm_aig.Resub.run !aig);
    ignore (Sbm_aig.Rewrite.run ~zero_gain:true !aig);
    let compacted, _ = Aig.compact !aig in
    Aig.check compacted;
    Helpers.assert_equiv_exhaustive ~msg:"pipeline equivalence" original compacted
  done

let suite =
  [
    Alcotest.test_case "rewrite equivalence gate" `Quick test_rewrite;
    Alcotest.test_case "zero-gain rewrite gate" `Quick test_rewrite_zero;
    Alcotest.test_case "refactor equivalence gate" `Quick test_refactor;
    Alcotest.test_case "wide refactor gate" `Quick test_refactor_wide;
    Alcotest.test_case "resub equivalence gate" `Quick test_resub;
    Alcotest.test_case "balance equivalence gate" `Quick test_balance;
    Alcotest.test_case "balance chain depth" `Quick test_balance_reduces_chain_depth;
    Alcotest.test_case "rewrite absorbs redundancy" `Quick test_rewrite_reduces_redundancy;
    Alcotest.test_case "resub finds divisors" `Quick test_resub_finds_divisor;
    Alcotest.test_case "full pass pipeline" `Quick test_pipeline;
  ]

let test_resub_no_cycle_via_strash_regression () =
  (* Regression: on dividers, resub's XOR candidate strash-rebuilds the
     root (root = a & ~b is one term of a xor b); committing it used to
     close a combinational self-loop. The scaled divider reproduces the
     shape deterministically. *)
  let aig = Sbm_epfl.Epfl.generate ~scale:0.125 Sbm_epfl.Epfl.Div in
  let base = Sbm_core.Flow.baseline aig in
  let target = Aig.copy base in
  ignore (Sbm_aig.Resub.run ~max_leaves:10 ~max_divisors:40 target);
  Aig.check target;
  let rng = Rng.create 0xd1e in
  for _ = 1 to 32 do
    let words = Sbm_aig.Sim.random_inputs base rng in
    let vb = Sbm_aig.Sim.output_values base (Sbm_aig.Sim.simulate base words) in
    let vt = Sbm_aig.Sim.output_values target (Sbm_aig.Sim.simulate target words) in
    if vb <> vt then Alcotest.fail "resub broke the divider (cycle regression)"
  done

let test_replace_rejects_cycle () =
  (* Direct contract test: replacing a node by a literal whose cone
     contains it must be refused. *)
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let x = Aig.band aig a b in
  let y = Aig.band aig x (Aig.lnot a) in
  ignore (Aig.add_output aig y);
  match Aig.replace aig (Aig.node_of x) y with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "cycle-creating replace must be rejected"

let suite =
  suite
  @ [
      Alcotest.test_case "resub divider cycle regression" `Slow
        test_resub_no_cycle_via_strash_regression;
      Alcotest.test_case "replace rejects cycles" `Quick test_replace_rejects_cycle;
    ]
