(* SOP algebra: division identities, kernels, complementation —
   checked against semantic evaluation. *)

module Sop = Sbm_sop.Sop
module Rng = Sbm_util.Rng

(* Random cover over [nvars] variables. *)
let random_cover rng nvars ncubes max_lits =
  List.init ncubes (fun _ ->
      let nlits = 1 + Rng.int rng max_lits in
      let lits = ref [] in
      for _ = 1 to nlits do
        let v = Rng.int rng nvars in
        let l = Sop.lit_of v (Rng.bool rng) in
        (* keep cubes consistent: skip the literal if the variable
           already appears *)
        if not (List.exists (fun x -> Sop.var_of x = v) !lits) then lits := l :: !lits
      done;
      Sop.cube_of_list !lits)

let gen_cover =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* nvars = int_range 2 6 in
    let* ncubes = int_range 1 6 in
    let rng = Rng.create seed in
    return (random_cover rng nvars ncubes 4, nvars))

let eval_cover cover m = Sop.eval cover (fun v -> (m lsr v) land 1 = 1)

let semantically_equal nvars a b =
  let ok = ref true in
  for m = 0 to (1 lsl nvars) - 1 do
    if eval_cover a m <> eval_cover b m then ok := false
  done;
  !ok

let test_normalize_preserves =
  Helpers.qcheck_case "normalize preserves semantics" gen_cover (fun (c, n) ->
      semantically_equal n c (Sop.normalize c))

let test_division_identity =
  Helpers.qcheck_case "f = q*d + r (algebraic division)"
    QCheck2.Gen.(pair gen_cover gen_cover)
    (fun ((f, nf), (d, nd)) ->
      let n = max nf nd in
      QCheck2.assume (not (Sop.is_const0 d));
      let q, r = Sop.divide f d in
      let rebuilt = Sop.mul q d @ r in
      semantically_equal n f rebuilt)

let test_divide_by_cube =
  Helpers.qcheck_case "cube division is exact" gen_cover (fun (f, n) ->
      match f with
      | [] -> true
      | first :: _ when Array.length first > 0 ->
        let l = first.(0) in
        let q = Sop.divide_by_cube f [| l |] in
        let r = List.filter (fun c -> not (Array.exists (fun x -> x = l) c)) f in
        let rebuilt = List.filter_map (fun qc -> Sop.cube_mul qc [| l |]) q @ r in
        semantically_equal n f rebuilt
      | _ -> true)

let test_kernels_are_cube_free =
  Helpers.qcheck_case "kernels are cube-free quotients" gen_cover (fun (f, _) ->
      List.for_all
        (fun (k, _) -> Sop.is_cube_free k || List.length k <= 1)
        (Sop.kernels_bounded ~limit:50 f))

let test_kernel_division =
  Helpers.qcheck_case "dividing by a kernel leaves no empty quotient" gen_cover
    (fun (f, n) ->
      List.for_all
        (fun (k, _) ->
          if List.length k < 2 then true
          else begin
            let q, r = Sop.divide f k in
            q = [] || semantically_equal n f (Sop.mul q k @ r)
          end)
        (Sop.kernels_bounded ~limit:20 f))

let test_complement =
  Helpers.qcheck_case "complement is exact" gen_cover (fun (f, n) ->
      match Sop.complement ~max_cubes:2000 f with
      | None -> true
      | Some g ->
        let ok = ref true in
        for m = 0 to (1 lsl n) - 1 do
          if eval_cover f m = eval_cover g m then ok := false
        done;
        !ok)

let test_cofactor =
  Helpers.qcheck_case "cofactor semantics" gen_cover (fun (f, n) ->
      QCheck2.assume (n > 0);
      let l = Sop.lit_of 0 false in
      let c = Sop.cofactor f l in
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let m1 = m lor 1 in
        if eval_cover f m1 <> eval_cover c m1 then ok := false
      done;
      !ok)

let test_common_cube () =
  let c1 = Sop.cube_of_list [ Sop.lit_of 0 false; Sop.lit_of 1 false ] in
  let c2 = Sop.cube_of_list [ Sop.lit_of 0 false; Sop.lit_of 2 true ] in
  Alcotest.(check (list int))
    "common cube ab, ac' = a"
    [ Sop.lit_of 0 false ]
    (Array.to_list (Sop.common_cube [ c1; c2 ]))

let test_absorption () =
  (* a + ab = a *)
  let a = Sop.cube_of_list [ Sop.lit_of 0 false ] in
  let ab = Sop.cube_of_list [ Sop.lit_of 0 false; Sop.lit_of 1 false ] in
  Alcotest.(check int) "absorbed" 1 (List.length (Sop.normalize [ a; ab ]))

let test_textbook_kernels () =
  (* F = adf + aef + bdf + bef + cdf + cef + g (textbook example):
     kernels include (a+b+c) and (d+e). *)
  let lit v = Sop.lit_of v false in
  let a, b, c, d, e, f, g = (lit 0, lit 1, lit 2, lit 3, lit 4, lit 5, lit 6) in
  let cover =
    [
      Sop.cube_of_list [ a; d; f ];
      Sop.cube_of_list [ a; e; f ];
      Sop.cube_of_list [ b; d; f ];
      Sop.cube_of_list [ b; e; f ];
      Sop.cube_of_list [ c; d; f ];
      Sop.cube_of_list [ c; e; f ];
      Sop.cube_of_list [ g ];
    ]
  in
  let kernels = Sop.kernels cover |> List.map fst in
  let has k = List.exists (fun k' -> Sop.canonical k' = Sop.canonical k) kernels in
  let de = [ Sop.cube_of_list [ d ]; Sop.cube_of_list [ e ] ] in
  let abc = [ Sop.cube_of_list [ a ]; Sop.cube_of_list [ b ]; Sop.cube_of_list [ c ] ] in
  Alcotest.(check bool) "kernel d+e" true (has de);
  Alcotest.(check bool) "kernel a+b+c" true (has abc)

let suite =
  [
    test_normalize_preserves;
    test_division_identity;
    test_divide_by_cube;
    test_kernels_are_cube_free;
    test_kernel_division;
    test_complement;
    test_cofactor;
    Alcotest.test_case "common cube" `Quick test_common_cube;
    Alcotest.test_case "absorption" `Quick test_absorption;
    Alcotest.test_case "textbook kernels" `Quick test_textbook_kernels;
  ]
