(* LUT mapping, ASIC mapping, STA, power, CEC, AIGER. *)

module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng
module Lut_map = Sbm_lutmap.Lut_map

(* Evaluate a LUT mapping functionally: each LUT's function is the
   cone function of its root over its leaves. *)
let lut_mapping_eval aig (mapping : Lut_map.mapping) bits =
  let values = Hashtbl.create 256 in
  for i = 0 to Aig.num_inputs aig - 1 do
    Hashtbl.replace values (Aig.node_of (Aig.input_lit aig i)) bits.(i)
  done;
  Hashtbl.replace values 0 false;
  let lut_of = Hashtbl.create 256 in
  List.iter (fun (l : Lut_map.lut) -> Hashtbl.replace lut_of l.Lut_map.root l) mapping.Lut_map.luts;
  let rec value v =
    match Hashtbl.find_opt values v with
    | Some b -> b
    | None ->
      let lut = Hashtbl.find lut_of v in
      let leaf_bits = Array.map value lut.Lut_map.leaves in
      (* Evaluate the cone of v over the leaves via recursive AIG
         evaluation bounded by the leaf set. *)
      let memo = Hashtbl.create 16 in
      Array.iteri (fun i leaf -> Hashtbl.replace memo leaf leaf_bits.(i)) lut.Lut_map.leaves;
      Hashtbl.replace memo 0 false;
      let rec eval_node w =
        match Hashtbl.find_opt memo w with
        | Some b -> b
        | None ->
          let f0 = Aig.fanin0 aig w and f1 = Aig.fanin1 aig w in
          let v0 = eval_node (Aig.node_of f0) in
          let v0 = if Aig.is_compl f0 then not v0 else v0 in
          let v1 = eval_node (Aig.node_of f1) in
          let v1 = if Aig.is_compl f1 then not v1 else v1 in
          let b = v0 && v1 in
          Hashtbl.replace memo w b;
          b
      in
      let b = eval_node v in
      Hashtbl.replace values v b;
      b
  in
  Array.map
    (fun l ->
      let b = value (Aig.node_of l) in
      if Aig.is_compl l then not b else b)
    (Aig.outputs aig)

let test_lutmap_cover () =
  let rng = Rng.create 301 in
  for _ = 1 to 8 do
    let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
    let mapping = Lut_map.map aig in
    Lut_map.check aig mapping;
    Alcotest.(check bool) "lut count positive" true
      (mapping.Lut_map.lut_count > 0 || Aig.size aig = 0);
    Alcotest.(check bool) "fewer LUTs than ANDs" true
      (mapping.Lut_map.lut_count <= Aig.size aig)
  done

let test_lutmap_function () =
  let rng = Rng.create 302 in
  for _ = 1 to 6 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
    let mapping = Lut_map.map aig in
    for m = 0 to 127 do
      let bits = Array.init 7 (fun i -> (m lsr i) land 1 = 1) in
      let expected = Sbm_aig.Sim.eval aig bits in
      let got = lut_mapping_eval aig mapping bits in
      if expected <> got then Alcotest.failf "LUT mapping differs on minterm %d" m
    done
  done

let test_lutmap_k_respected () =
  let rng = Rng.create 303 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:80 ~outputs:4 rng in
  List.iter
    (fun k ->
      let mapping = Lut_map.map ~k aig in
      List.iter
        (fun (l : Lut_map.lut) ->
          Alcotest.(check bool) "cut width" true (Array.length l.Lut_map.leaves <= k))
        mapping.Lut_map.luts)
    [ 2; 4; 6 ]

let test_asic_mapping_function () =
  let rng = Rng.create 304 in
  for _ = 1 to 6 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
    let netlist = Sbm_asic.Mapper.map aig in
    Sbm_asic.Netlist.check netlist;
    for m = 0 to 127 do
      let bits = Array.init 7 (fun i -> (m lsr i) land 1 = 1) in
      let expected = Sbm_aig.Sim.eval aig bits in
      let got = Sbm_asic.Netlist.eval netlist bits in
      if expected <> got then Alcotest.failf "netlist differs on minterm %d" m
    done
  done

let test_asic_constant_outputs () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  ignore (Aig.add_output aig Aig.const0);
  ignore (Aig.add_output aig Aig.const1);
  ignore (Aig.add_output aig a);
  let netlist = Sbm_asic.Mapper.map aig in
  Sbm_asic.Netlist.check netlist;
  List.iter
    (fun bits ->
      let out = Sbm_asic.Netlist.eval netlist [| bits |] in
      Alcotest.(check bool) "const0" false out.(0);
      Alcotest.(check bool) "const1" true out.(1);
      Alcotest.(check bool) "wire" bits out.(2))
    [ true; false ]

let test_sta_monotone () =
  let rng = Rng.create 305 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
  let netlist = Sbm_asic.Mapper.map aig in
  let report = Sbm_asic.Sta.analyze netlist in
  Alcotest.(check bool) "critical path positive" true (report.Sbm_asic.Sta.arrival_max > 0.0);
  Alcotest.(check (float 1e-9)) "no negative slack at own clock" 0.0 report.Sbm_asic.Sta.wns;
  (* A tighter clock creates negative slack. *)
  let tight = Sbm_asic.Sta.analyze ~clock:(report.Sbm_asic.Sta.arrival_max /. 2.0) netlist in
  Alcotest.(check bool) "wns negative" true (tight.Sbm_asic.Sta.wns < 0.0);
  Alcotest.(check bool) "tns <= wns" true (tight.Sbm_asic.Sta.tns <= tight.Sbm_asic.Sta.wns)

let test_power_positive_and_deterministic () =
  let rng = Rng.create 306 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
  let netlist = Sbm_asic.Mapper.map aig in
  let p1 = Sbm_asic.Power.dynamic netlist in
  let p2 = Sbm_asic.Power.dynamic netlist in
  Alcotest.(check bool) "power positive" true (p1 > 0.0);
  Alcotest.(check (float 1e-9)) "deterministic" p1 p2

let test_smaller_area_after_optimization () =
  let rng = Rng.create 307 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:80 ~outputs:5 rng in
  let optimized = Sbm_core.Flow.baseline aig in
  let area_before = Sbm_asic.Netlist.area (Sbm_asic.Mapper.map aig) in
  let area_after = Sbm_asic.Netlist.area (Sbm_asic.Mapper.map optimized) in
  Alcotest.(check bool)
    (Printf.sprintf "area does not grow (%.1f -> %.1f)" area_before area_after)
    true
    (area_after <= area_before *. 1.05)

(* --- CEC --- *)

let test_cec_equivalent () =
  let rng = Rng.create 308 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
  let copy = Aig.copy aig in
  Alcotest.(check bool) "self equivalence" true (Sbm_cec.Cec.equiv aig copy)

let test_cec_detects_difference () =
  let rng = Rng.create 309 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
  let broken = Aig.copy aig in
  (* Flip one output. *)
  Aig.set_output broken 0 (Aig.lnot (Aig.output_lit broken 0));
  match Sbm_cec.Cec.check aig broken with
  | Sbm_cec.Cec.Counterexample cex ->
    let oa = Sbm_aig.Sim.eval aig cex in
    let ob = Sbm_aig.Sim.eval broken cex in
    Alcotest.(check bool) "cex is real" true (oa <> ob)
  | Sbm_cec.Cec.Equivalent -> Alcotest.fail "must detect the inversion"
  | Sbm_cec.Cec.Unknown -> Alcotest.fail "unexpected unknown"

let test_cec_subtle_difference () =
  (* Differ in exactly one minterm: simulation will likely miss it,
     SAT must catch it. *)
  let build extra =
    let aig = Aig.create () in
    let x = Array.init 10 (fun _ -> Aig.add_input aig) in
    let conj = Aig.band_list aig (Array.to_list x) in
    let out = if extra then conj else Aig.const0 in
    ignore (Aig.add_output aig out);
    aig
  in
  let a = build true and b = build false in
  (match Sbm_cec.Cec.check a b with
  | Sbm_cec.Cec.Counterexample cex ->
    Alcotest.(check bool) "cex hits the single minterm" true (Array.for_all Fun.id cex)
  | Sbm_cec.Cec.Equivalent -> Alcotest.fail "single-minterm difference missed"
  | Sbm_cec.Cec.Unknown -> Alcotest.fail "unexpected unknown")

(* --- AIGER --- *)

let test_aiger_roundtrip () =
  let rng = Rng.create 310 in
  for _ = 1 to 8 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
    let text = Sbm_aig.Aiger.write aig in
    let back = Sbm_aig.Aiger.read text in
    Aig.check back;
    Alcotest.(check int) "inputs" (Aig.num_inputs aig) (Aig.num_inputs back);
    Alcotest.(check int) "outputs" (Aig.num_outputs aig) (Aig.num_outputs back);
    Helpers.assert_equiv_exhaustive ~msg:"aiger roundtrip" aig back
  done

let test_aiger_rejects_latches () =
  match Sbm_aig.Aiger.read "aag 1 0 1 0 0\n2 3\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "latches must be rejected"

let suite =
  [
    Alcotest.test_case "lut mapping covers" `Quick test_lutmap_cover;
    Alcotest.test_case "lut mapping function" `Quick test_lutmap_function;
    Alcotest.test_case "lut k respected" `Quick test_lutmap_k_respected;
    Alcotest.test_case "asic mapping function" `Quick test_asic_mapping_function;
    Alcotest.test_case "asic constant outputs" `Quick test_asic_constant_outputs;
    Alcotest.test_case "sta monotonicity" `Quick test_sta_monotone;
    Alcotest.test_case "power estimation" `Quick test_power_positive_and_deterministic;
    Alcotest.test_case "optimization shrinks area" `Quick test_smaller_area_after_optimization;
    Alcotest.test_case "cec equivalent" `Quick test_cec_equivalent;
    Alcotest.test_case "cec detects inversion" `Quick test_cec_detects_difference;
    Alcotest.test_case "cec subtle difference" `Quick test_cec_subtle_difference;
    Alcotest.test_case "aiger roundtrip" `Quick test_aiger_roundtrip;
    Alcotest.test_case "aiger rejects latches" `Quick test_aiger_rejects_latches;
  ]
