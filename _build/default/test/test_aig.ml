(* Structural tests of the AIG core: strashing, folding, reference
   counting, MFFC, replacement with cascading merges, compaction. *)

module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng

let test_constant_folding () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  Alcotest.(check int) "a & a = a" a (Aig.band aig a a);
  Alcotest.(check int) "a & ~a = 0" Aig.const0 (Aig.band aig a (Aig.lnot a));
  Alcotest.(check int) "a & 0 = 0" Aig.const0 (Aig.band aig a Aig.const0);
  Alcotest.(check int) "a & 1 = a" a (Aig.band aig a Aig.const1);
  Alcotest.(check int) "1 & b = b" b (Aig.band aig Aig.const1 b);
  Alcotest.(check int) "size is 0 without outputs" 0 (Aig.size aig)

let test_strash () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let x = Aig.band aig a b in
  let y = Aig.band aig b a in
  Alcotest.(check int) "commutative strash hit" x y;
  let z = Aig.band aig (Aig.lnot a) b in
  Alcotest.(check bool) "different phase, different node" false (x = z)

let test_derived_gates () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let xor_ab = Aig.bxor aig a b in
  ignore (Aig.add_output aig xor_ab);
  let truth (va, vb) =
    let bits = [| va; vb |] in
    (Sbm_aig.Sim.eval aig bits).(0)
  in
  Alcotest.(check bool) "0^0" false (truth (false, false));
  Alcotest.(check bool) "0^1" true (truth (false, true));
  Alcotest.(check bool) "1^0" true (truth (true, false));
  Alcotest.(check bool) "1^1" false (truth (true, true))

let test_refcounts_and_check () =
  let rng = Rng.create 42 in
  for seed = 0 to 9 do
    ignore seed;
    let aig = Helpers.random_aig ~inputs:6 ~ands:50 ~outputs:3 rng in
    Aig.check aig
  done

let test_mffc () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  (* A chain: n1 = a&b, n2 = n1&c. n2's MFFC is {n2, n1}. *)
  let n1 = Aig.band aig a b in
  let n2 = Aig.band aig n1 c in
  ignore (Aig.add_output aig n2);
  Alcotest.(check int) "chain MFFC" 2 (Aig.mffc_size aig (Aig.node_of n2));
  (* Share n1 with an output: now n2's MFFC is just {n2}. *)
  ignore (Aig.add_output aig n1);
  Alcotest.(check int) "shared fanin excluded" 1 (Aig.mffc_size aig (Aig.node_of n2))

let test_replace_simple () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let x = Aig.band aig a b in
  ignore (Aig.add_output aig x);
  (* Replace x by constant 0: output must follow; x dies. *)
  Aig.replace aig (Aig.node_of x) Aig.const0;
  Aig.check aig;
  Alcotest.(check int) "output rewired" Aig.const0 (Aig.output_lit aig 0);
  Alcotest.(check int) "empty network" 0 (Aig.size aig)

let test_replace_cascade () =
  (* Diamond where replacing one node makes its fanout structurally
     equal to an existing node: the cascade must merge them. *)
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  let x = Aig.band aig a b in
  let y = Aig.band aig a (Aig.lnot b) in
  let fx = Aig.band aig x c in
  let fy = Aig.band aig y c in
  ignore (Aig.add_output aig fx);
  ignore (Aig.add_output aig fy);
  let size_before = Aig.size aig in
  Alcotest.(check int) "four nodes" 4 size_before;
  (* Make y equal to x: fy collapses onto fx. *)
  Aig.replace aig (Aig.node_of y) x;
  Aig.check aig;
  Alcotest.(check int) "cascade merged" 2 (Aig.size aig);
  Alcotest.(check int) "outputs merged" (Aig.output_lit aig 0) (Aig.output_lit aig 1)

let test_replace_complemented_cascade () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let x = Aig.band aig a b in
  let y = Aig.band aig (Aig.lnot a) (Aig.lnot b) in
  let z = Aig.band aig y a in
  ignore (Aig.add_output aig x);
  ignore (Aig.add_output aig z);
  (* Replace y by ~x (a different function — structural surgery only):
     z becomes AND(~x, a). *)
  Aig.replace aig (Aig.node_of y) (Aig.lnot x);
  Aig.check aig;
  let z' = Aig.output_lit aig 1 in
  let zv = Aig.node_of z' in
  let f0 = Aig.fanin0 aig zv and f1 = Aig.fanin1 aig zv in
  let expected = List.sort compare [ Aig.lnot x; a ] in
  Alcotest.(check (list int)) "fanins rewired" expected (List.sort compare [ f0; f1 ])

let test_gain_of_replacement () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  let n1 = Aig.band aig a b in
  let n2 = Aig.band aig n1 c in
  ignore (Aig.add_output aig n2);
  (* Candidate: replace n2 by a fresh single AND over inputs. *)
  let candidate = Aig.band aig a c in
  let gain = Aig.gain_of_replacement aig ~root:(Aig.node_of n2) ~candidate in
  (* Old cone (n1, n2) dies = 2; candidate adds 1 fresh node. *)
  Alcotest.(check int) "gain 2 - 1" 1 gain;
  (* Gain must not mutate the network. *)
  Aig.check aig;
  Alcotest.(check int) "unchanged size (candidate dangling)" 2 (Aig.size aig);
  Aig.delete_dangling aig (Aig.node_of candidate);
  Aig.check aig

let test_gain_with_sharing () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  let n1 = Aig.band aig a b in
  let n2 = Aig.band aig n1 c in
  ignore (Aig.add_output aig n2);
  (* Candidate reuses n1: only n2 dies (n1 survives in candidate). *)
  let candidate = Aig.band aig n1 (Aig.lnot c) in
  let gain = Aig.gain_of_replacement aig ~root:(Aig.node_of n2) ~candidate in
  Alcotest.(check int) "sharing accounted" 0 gain;
  Aig.delete_dangling aig (Aig.node_of candidate);
  Aig.check aig

let test_compact () =
  let rng = Rng.create 7 in
  let aig = Helpers.random_aig ~inputs:6 ~ands:80 ~outputs:4 rng in
  let fresh, _map = Aig.compact aig in
  Aig.check fresh;
  Helpers.assert_equiv_exhaustive ~msg:"compact preserves function" aig fresh;
  Alcotest.(check int) "same size" (Aig.size aig) (Aig.size fresh)

let test_random_replace_stress () =
  (* Replace random nodes with random existing literals from their
     strict fanin cone (always acyclic), checking invariants. *)
  let rng = Rng.create 99 in
  for _ = 1 to 20 do
    let aig = Helpers.random_aig ~inputs:5 ~ands:40 ~outputs:3 rng in
    let order = Aig.topo aig in
    let ands = Array.to_list order |> List.filter (fun v -> Aig.is_and aig v) in
    (match ands with
    | [] -> ()
    | _ ->
      let v = List.nth ands (Rng.int rng (List.length ands)) in
      if Aig.is_and aig v then begin
        let target = Aig.fanin0 aig v in
        if Aig.node_of target <> v then begin
          Aig.replace aig v target;
          Aig.check aig
        end
      end);
    ()
  done

let test_topo_and_levels () =
  let rng = Rng.create 5 in
  let aig = Helpers.random_aig ~inputs:6 ~ands:60 ~outputs:4 rng in
  let order = Aig.topo aig in
  let pos = Hashtbl.create 64 in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) order;
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        let check_fanin f =
          let w = Aig.node_of f in
          if w <> 0 then
            Alcotest.(check bool)
              "fanin before node" true
              (Hashtbl.find pos w < Hashtbl.find pos v)
        in
        check_fanin (Aig.fanin0 aig v);
        check_fanin (Aig.fanin1 aig v)
      end)
    order;
  let lv = Aig.levels aig in
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        let l0 = lv.(Aig.node_of (Aig.fanin0 aig v)) in
        let l1 = lv.(Aig.node_of (Aig.fanin1 aig v)) in
        Alcotest.(check int) "level rule" (1 + max l0 l1) lv.(v)
      end)
    order

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "structural hashing" `Quick test_strash;
    Alcotest.test_case "derived gates" `Quick test_derived_gates;
    Alcotest.test_case "refcounts on random graphs" `Quick test_refcounts_and_check;
    Alcotest.test_case "mffc" `Quick test_mffc;
    Alcotest.test_case "replace by constant" `Quick test_replace_simple;
    Alcotest.test_case "replace with cascade merge" `Quick test_replace_cascade;
    Alcotest.test_case "replace with complement" `Quick test_replace_complemented_cascade;
    Alcotest.test_case "gain accounting" `Quick test_gain_of_replacement;
    Alcotest.test_case "gain with sharing" `Quick test_gain_with_sharing;
    Alcotest.test_case "compact" `Quick test_compact;
    Alcotest.test_case "random replace stress" `Quick test_random_replace_stress;
    Alcotest.test_case "topological order and levels" `Quick test_topo_and_levels;
  ]
