test/test_backend.ml: Alcotest Array Fun Hashtbl Helpers List Printf Sbm_aig Sbm_asic Sbm_cec Sbm_core Sbm_lutmap Sbm_util
