test/test_bdd.ml: Alcotest Helpers List QCheck2 Sbm_bdd Sbm_truthtable Sbm_util
