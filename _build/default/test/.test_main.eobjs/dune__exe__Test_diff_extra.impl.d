test/test_diff_extra.ml: Alcotest Helpers List Printf Sbm_aig Sbm_cec Sbm_core Sbm_epfl Sbm_partition Sbm_util
