test/test_minimize.ml: Alcotest Helpers List QCheck2 Sbm_sop Sbm_util
