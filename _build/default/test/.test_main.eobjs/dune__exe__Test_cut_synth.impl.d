test/test_cut_synth.ml: Alcotest Array Hashtbl Helpers Int64 List QCheck2 Sbm_aig Sbm_truthtable Sbm_util
