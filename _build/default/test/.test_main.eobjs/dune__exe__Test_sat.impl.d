test/test_sat.ml: Alcotest Array Helpers List QCheck2 Sbm_aig Sbm_sat Sbm_util
