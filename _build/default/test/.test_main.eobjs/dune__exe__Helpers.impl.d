test/helpers.ml: Alcotest Array List QCheck2 QCheck_alcotest Sbm_aig Sbm_cec Sbm_util String
