test/test_flow_extra.ml: Alcotest Array Helpers List Printf Sbm_aig Sbm_asic Sbm_cec Sbm_core Sbm_epfl Sbm_lutmap Sbm_partition Sbm_sat Sbm_util
