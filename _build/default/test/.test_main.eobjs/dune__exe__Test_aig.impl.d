test/test_aig.ml: Alcotest Array Hashtbl Helpers List Sbm_aig Sbm_util
