test/test_network.ml: Alcotest Array Helpers List Printf Sbm_aig Sbm_sop Sbm_util
