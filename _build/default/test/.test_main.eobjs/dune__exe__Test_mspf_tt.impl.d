test/test_mspf_tt.ml: Alcotest Helpers Sbm_aig Sbm_core Sbm_partition Sbm_util
