test/test_core_engines.ml: Alcotest Array Hashtbl Helpers List Sbm_aig Sbm_core Sbm_partition Sbm_util
