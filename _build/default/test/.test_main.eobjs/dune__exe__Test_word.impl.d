test/test_word.ml: Array Helpers List QCheck2 Sbm_aig Sbm_epfl Sbm_util
