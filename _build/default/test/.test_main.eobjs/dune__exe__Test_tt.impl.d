test/test_tt.ml: Alcotest Array Helpers List Printf QCheck2 Sbm_truthtable Sbm_util
