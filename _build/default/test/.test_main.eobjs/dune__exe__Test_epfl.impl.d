test/test_epfl.ml: Alcotest Array List Printf Sbm_aig Sbm_epfl Sbm_util
