test/test_npn_aiger.ml: Alcotest Array Filename Hashtbl Helpers QCheck2 Sbm_aig Sbm_lutmap Sbm_truthtable Sbm_util Sys
