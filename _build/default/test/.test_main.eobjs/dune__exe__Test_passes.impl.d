test/test_passes.ml: Alcotest Hashtbl Helpers List Printf Sbm_aig Sbm_core Sbm_epfl Sbm_util
