test/test_sop.ml: Alcotest Array Helpers List QCheck2 Sbm_sop Sbm_util
