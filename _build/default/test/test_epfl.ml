(* Benchmark generators: signatures, determinism, and functional
   correctness of the arithmetic circuits (checked against OCaml
   integer arithmetic on scaled-down instances). *)

module Aig = Sbm_aig.Aig
module Epfl = Sbm_epfl.Epfl
module Word = Sbm_epfl.Word
module Rng = Sbm_util.Rng

let test_signatures () =
  List.iter
    (fun b ->
      let aig = Epfl.generate b in
      let i, o = Epfl.io_signature b in
      Alcotest.(check int) (Epfl.name b ^ " inputs") i (Aig.num_inputs aig);
      Alcotest.(check int) (Epfl.name b ^ " outputs") o (Aig.num_outputs aig);
      Aig.check aig;
      Alcotest.(check bool) (Epfl.name b ^ " nonempty") true (Aig.size aig > 0))
    (List.filter (fun b -> b <> Epfl.Hypotenuse) Epfl.all)

let test_determinism () =
  List.iter
    (fun b ->
      let a1 = Epfl.generate ~scale:0.1 b in
      let a2 = Epfl.generate ~scale:0.1 b in
      Alcotest.(check int) (Epfl.name b ^ " deterministic") (Aig.size a1) (Aig.size a2))
    [ Epfl.Div; Epfl.Cavlc; Epfl.I2c; Epfl.Sin ]

(* Drive a word-level circuit with integer stimuli. *)
let eval_ints aig values widths =
  let bits = Array.concat
    (List.map2
       (fun v w -> Array.init w (fun i -> (v lsr i) land 1 = 1))
       values widths)
  in
  Sbm_aig.Sim.eval aig bits

let int_of_bits bits lo len =
  let v = ref 0 in
  for i = 0 to len - 1 do
    if bits.(lo + i) then v := !v lor (1 lsl i)
  done;
  !v

let test_adder_correct () =
  let aig = Epfl.generate ~scale:0.0625 Epfl.Adder in
  (* width 8 after scaling *)
  let w = Aig.num_inputs aig / 2 in
  let rng = Rng.create 42 in
  for _ = 1 to 50 do
    let a = Rng.int rng (1 lsl w) and b = Rng.int rng (1 lsl w) in
    let out = eval_ints aig [ a; b ] [ w; w ] in
    Alcotest.(check int) "sum" (a + b) (int_of_bits out 0 (w + 1))
  done

let test_mult_correct () =
  let aig = Epfl.generate ~scale:0.125 Epfl.Mult in
  let w = Aig.num_inputs aig / 2 in
  let rng = Rng.create 43 in
  for _ = 1 to 50 do
    let a = Rng.int rng (1 lsl w) and b = Rng.int rng (1 lsl w) in
    let out = eval_ints aig [ a; b ] [ w; w ] in
    Alcotest.(check int) "product" (a * b) (int_of_bits out 0 (2 * w))
  done

let test_square_correct () =
  let aig = Epfl.generate ~scale:0.125 Epfl.Square in
  let w = Aig.num_inputs aig in
  let rng = Rng.create 44 in
  for _ = 1 to 50 do
    let a = Rng.int rng (1 lsl w) in
    let out = eval_ints aig [ a ] [ w ] in
    Alcotest.(check int) "square" (a * a) (int_of_bits out 0 (2 * w))
  done

let test_div_correct () =
  let aig = Epfl.generate ~scale:0.125 Epfl.Div in
  let w = Aig.num_inputs aig / 2 in
  let rng = Rng.create 45 in
  for _ = 1 to 50 do
    let a = Rng.int rng (1 lsl w) in
    let b = 1 + Rng.int rng ((1 lsl w) - 1) in
    let out = eval_ints aig [ a; b ] [ w; w ] in
    Alcotest.(check int) "quotient" (a / b) (int_of_bits out 0 w);
    Alcotest.(check int) "remainder" (a mod b) (int_of_bits out w w)
  done

let test_sqrt_correct () =
  let aig = Epfl.generate ~scale:0.125 Epfl.Sqrt in
  let w = Aig.num_inputs aig in
  let rng = Rng.create 46 in
  for _ = 1 to 50 do
    let x = Rng.int rng (1 lsl w) in
    let out = eval_ints aig [ x ] [ w ] in
    let expected = int_of_float (sqrt (float_of_int x)) in
    (* Floating sqrt can be off by one at boundaries; recompute
       exactly. *)
    let expected =
      let e = ref expected in
      while (!e + 1) * (!e + 1) <= x do incr e done;
      while !e * !e > x do decr e done;
      !e
    in
    Alcotest.(check int) "isqrt" expected (int_of_bits out 0 (w / 2))
  done

let test_hypotenuse_correct () =
  let aig = Epfl.generate ~scale:0.0625 Epfl.Hypotenuse in
  let w = Aig.num_inputs aig / 2 in
  let rng = Rng.create 47 in
  for _ = 1 to 20 do
    let a = Rng.int rng (1 lsl w) and b = Rng.int rng (1 lsl w) in
    let out = eval_ints aig [ a; b ] [ w; w ] in
    let s = (a * a) + (b * b) in
    let expected =
      let e = ref (int_of_float (sqrt (float_of_int s))) in
      while (!e + 1) * (!e + 1) <= s do incr e done;
      while !e * !e > s do decr e done;
      (* The circuit saturates to w bits. *)
      min !e ((1 lsl w) - 1)
    in
    Alcotest.(check int) "hypotenuse" expected (int_of_bits out 0 w)
  done

let test_max_correct () =
  let aig = Epfl.generate ~scale:0.0625 Epfl.Max in
  let w = Aig.num_inputs aig / 4 in
  let rng = Rng.create 48 in
  for _ = 1 to 50 do
    let vals = List.init 4 (fun _ -> Rng.int rng (1 lsl w)) in
    let out = eval_ints aig vals [ w; w; w; w ] in
    let expected = List.fold_left max 0 vals in
    Alcotest.(check int) "max value" expected (int_of_bits out 0 w);
    let idx = int_of_bits out w 2 in
    Alcotest.(check int) "index points at a maximum" expected (List.nth vals idx)
  done

let test_priority_correct () =
  let aig = Epfl.generate ~scale:0.125 Epfl.Priority in
  let n = Aig.num_inputs aig in
  let rng = Rng.create 49 in
  for _ = 1 to 50 do
    let v = Rng.int rng (1 lsl n) in
    let bits = Array.init n (fun i -> (v lsr i) land 1 = 1) in
    let out = Sbm_aig.Sim.eval aig bits in
    let idx_width = Aig.num_outputs aig - 1 in
    let idx = int_of_bits out 0 idx_width in
    let valid = out.(idx_width) in
    if v = 0 then Alcotest.(check bool) "invalid when zero" false valid
    else begin
      Alcotest.(check bool) "valid" true valid;
      (* lowest set bit *)
      let rec low i = if (v lsr i) land 1 = 1 then i else low (i + 1) in
      Alcotest.(check int) "lowest set" (low 0) idx
    end
  done

let test_voter_correct () =
  let aig = Epfl.generate ~scale:0.01 Epfl.Voter in
  let n = Aig.num_inputs aig in
  let rng = Rng.create 50 in
  for _ = 1 to 50 do
    let bits = Array.init n (fun _ -> Rng.bool rng) in
    let out = Sbm_aig.Sim.eval aig bits in
    let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
    Alcotest.(check bool) "majority" (ones > n / 2) out.(0)
  done

let test_dec_correct () =
  let aig = Epfl.generate Epfl.Dec in
  let rng = Rng.create 51 in
  for _ = 1 to 20 do
    let v = Rng.int rng 256 in
    let bits = Array.init 8 (fun i -> (v lsr i) land 1 = 1) in
    let out = Sbm_aig.Sim.eval aig bits in
    Array.iteri
      (fun i b -> Alcotest.(check bool) (Printf.sprintf "line %d" i) (i = v) b)
      out
  done

let test_bar_correct () =
  let aig = Epfl.generate ~scale:0.125 Epfl.Bar in
  let w = Aig.num_outputs aig in
  let log = Aig.num_inputs aig - w in
  let rng = Rng.create 52 in
  for _ = 1 to 50 do
    let data = Rng.int rng (1 lsl w) in
    let amount = Rng.int rng (1 lsl log) in
    let out = eval_ints aig [ data; amount ] [ w; log ] in
    let expected = if amount >= w then 0 else (data lsl amount) land ((1 lsl w) - 1) in
    Alcotest.(check int) "barrel shift" expected (int_of_bits out 0 w)
  done

let test_word_popcount () =
  let rng = Rng.create 53 in
  for _ = 1 to 20 do
    let aig = Aig.create () in
    let n = 1 + Rng.int rng 20 in
    let bits = Array.init n (fun _ -> Aig.add_input aig) in
    let count = Word.popcount aig bits in
    Word.outputs aig count;
    let v = Rng.int rng (1 lsl n) in
    let input_bits = Array.init n (fun i -> (v lsr i) land 1 = 1) in
    let out = Sbm_aig.Sim.eval aig input_bits in
    let expected =
      let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
      go v 0
    in
    Alcotest.(check int) "popcount" expected (int_of_bits out 0 (Array.length count))
  done

let suite =
  [
    Alcotest.test_case "I/O signatures" `Slow test_signatures;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "adder" `Quick test_adder_correct;
    Alcotest.test_case "mult" `Quick test_mult_correct;
    Alcotest.test_case "square" `Quick test_square_correct;
    Alcotest.test_case "div" `Quick test_div_correct;
    Alcotest.test_case "sqrt" `Quick test_sqrt_correct;
    Alcotest.test_case "hypotenuse" `Quick test_hypotenuse_correct;
    Alcotest.test_case "max" `Quick test_max_correct;
    Alcotest.test_case "priority" `Quick test_priority_correct;
    Alcotest.test_case "voter" `Quick test_voter_correct;
    Alcotest.test_case "dec" `Quick test_dec_correct;
    Alcotest.test_case "bar" `Quick test_bar_correct;
    Alcotest.test_case "word popcount" `Quick test_word_popcount;
  ]
