(* SOP network view: AIG round-trips, elimination and extraction
   preserve function. *)

module Aig = Sbm_aig.Aig
module Network = Sbm_sop.Network
module Rng = Sbm_util.Rng

let assert_network_matches_aig aig net =
  let n = Aig.num_inputs aig in
  assert (n <= 10);
  for m = 0 to min ((1 lsl n) - 1) 4095 do
    let bits = Array.init n (fun i -> (m lsr i) land 1 = 1) in
    let oa = Sbm_aig.Sim.eval aig bits in
    let on = Network.eval net bits in
    if oa <> on then Alcotest.failf "network differs from AIG on minterm %d" m
  done

let test_roundtrip () =
  let rng = Rng.create 31 in
  for _ = 1 to 10 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
    let net = Network.of_aig aig in
    Network.check net;
    assert_network_matches_aig aig net;
    let back = Network.to_aig net in
    Aig.check back;
    Helpers.assert_equiv_exhaustive ~msg:"aig -> network -> aig" aig back
  done

let test_eliminate_preserves () =
  let rng = Rng.create 32 in
  for _ = 1 to 8 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:35 ~outputs:4 rng in
    let net = Network.of_aig aig in
    List.iter
      (fun threshold ->
        ignore (Network.eliminate net ~threshold ~max_cubes:64 ()))
      [ -1; 5; 50 ];
    Network.check net;
    assert_network_matches_aig aig net
  done

let test_extract_preserves () =
  let rng = Rng.create 33 in
  for _ = 1 to 8 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:35 ~outputs:4 rng in
    let net = Network.of_aig aig in
    ignore (Network.eliminate net ~threshold:20 ~max_cubes:64 ());
    ignore (Network.extract_kernels net ~max_passes:10 ());
    ignore (Network.extract_cubes net ~max_passes:10 ());
    Network.check net;
    assert_network_matches_aig aig net
  done

let test_eliminate_reduces_nodes () =
  (* A chain of single-fanout nodes should collapse entirely. *)
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  let d = Aig.add_input aig in
  let x = Aig.band aig a b in
  let y = Aig.band aig x c in
  let z = Aig.band aig y d in
  ignore (Aig.add_output aig z);
  let net = Network.of_aig aig in
  let before = Network.num_internal net in
  ignore (Network.eliminate net ~threshold:10 ~max_cubes:64 ());
  Network.check net;
  Alcotest.(check bool)
    (Printf.sprintf "fewer nodes (%d before)" before)
    true
    (Network.num_internal net < before);
  assert_network_matches_aig aig net

let test_kernel_extraction_shares () =
  (* f1 = (a+b)c, f2 = (a+b)d: extraction should share (a+b). *)
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  let d = Aig.add_input aig in
  let ab1 = Aig.bor aig a b in
  ignore
    (Aig.add_output aig (Aig.band aig ab1 c));
  ignore (Aig.add_output aig (Aig.band aig ab1 d));
  let net = Network.of_aig aig in
  (* Collapse everything into two big SOPs first. *)
  ignore (Network.eliminate net ~threshold:100 ~max_cubes:64 ());
  let lits_flat = Network.num_lits net in
  ignore (Network.extract_kernels net ~max_passes:5 ());
  Network.check net;
  assert_network_matches_aig aig net;
  Alcotest.(check bool)
    (Printf.sprintf "literals reduced from %d" lits_flat)
    true
    (Network.num_lits net <= lits_flat)

let test_snapshot_rollback () =
  let rng = Rng.create 34 in
  let aig = Helpers.random_xor_aig ~inputs:6 ~gates:25 ~outputs:3 rng in
  let net = Network.of_aig aig in
  let mark = Network.mark net in
  let saved =
    List.map (fun n -> (n, Network.cover net n)) (Network.internal_nodes net)
  in
  ignore (Network.eliminate net ~threshold:100 ~max_cubes:64 ());
  ignore (Network.extract_kernels net ~max_passes:5 ());
  (* Roll back. *)
  Network.truncate net mark;
  List.iter
    (fun (n, cv) ->
      Network.revive net n;
      Network.set_cover net n cv)
    saved;
  Network.check net;
  assert_network_matches_aig aig net

let suite =
  [
    Alcotest.test_case "aig round-trip" `Quick test_roundtrip;
    Alcotest.test_case "eliminate preserves function" `Quick test_eliminate_preserves;
    Alcotest.test_case "extraction preserves function" `Quick test_extract_preserves;
    Alcotest.test_case "eliminate collapses chains" `Quick test_eliminate_reduces_nodes;
    Alcotest.test_case "kernel extraction shares logic" `Quick test_kernel_extraction_shares;
    Alcotest.test_case "snapshot rollback" `Quick test_snapshot_rollback;
  ]
