(* BDD package: agreement with truth tables on random functions,
   canonicity, quantification, budget bail-out. *)

module Bdd = Sbm_bdd.Bdd
module Tt = Sbm_truthtable.Tt
module Rng = Sbm_util.Rng

let gen_tt =
  QCheck2.Gen.(
    pair (int_range 0 8) (int_bound 1_000_000)
    |> map (fun (n, seed) -> Tt.random n (Rng.create seed)))

let test_tt_roundtrip =
  Helpers.qcheck_case "tt -> bdd -> tt roundtrip" gen_tt (fun t ->
      let man = Bdd.create () in
      let b = Bdd.of_tt man t in
      Tt.equal t (Bdd.to_tt man b ~nvars:(Tt.num_vars t)))

let test_ops_agree =
  Helpers.qcheck_case "connectives agree with truth tables"
    QCheck2.Gen.(
      triple (int_range 1 7) (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (n, s1, s2) ->
      let t1 = Tt.random n (Rng.create s1) in
      let t2 = Tt.random n (Rng.create s2) in
      let man = Bdd.create () in
      let b1 = Bdd.of_tt man t1 and b2 = Bdd.of_tt man t2 in
      let same op bop =
        Tt.equal (op t1 t2) (Bdd.to_tt man (bop man b1 b2) ~nvars:n)
      in
      same Tt.band Bdd.mand && same Tt.bor Bdd.mor && same Tt.bxor Bdd.mxor
      && same Tt.bxnor Bdd.mxnor
      && Tt.equal (Tt.bnot t1) (Bdd.to_tt man (Bdd.mnot man b1) ~nvars:n))

let test_canonicity =
  Helpers.qcheck_case "strong canonicity: equal functions share a node"
    QCheck2.Gen.(
      triple (int_range 1 6) (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (n, s1, s2) ->
      let t1 = Tt.random n (Rng.create s1) in
      let t2 = Tt.random n (Rng.create s2) in
      let man = Bdd.create () in
      let b1 = Bdd.of_tt man t1 and b2 = Bdd.of_tt man t2 in
      (* Build the same function two different ways. *)
      let x = Bdd.mand man b1 b2 in
      let y = Bdd.mnot man (Bdd.mor man (Bdd.mnot man b1) (Bdd.mnot man b2)) in
      x = y)

let test_restrict =
  Helpers.qcheck_case "restrict = cofactor"
    QCheck2.Gen.(pair gen_tt (int_bound 100))
    (fun (t, iv) ->
      let n = Tt.num_vars t in
      QCheck2.assume (n > 0);
      let i = iv mod n in
      let man = Bdd.create () in
      let b = Bdd.of_tt man t in
      Tt.equal (Tt.cofactor1 t i) (Bdd.to_tt man (Bdd.restrict man b i true) ~nvars:n)
      && Tt.equal (Tt.cofactor0 t i)
           (Bdd.to_tt man (Bdd.restrict man b i false) ~nvars:n))

let test_exists =
  Helpers.qcheck_case "existential quantification"
    QCheck2.Gen.(pair gen_tt (int_bound 100))
    (fun (t, iv) ->
      let n = Tt.num_vars t in
      QCheck2.assume (n > 0);
      let i = iv mod n in
      let man = Bdd.create () in
      let b = Bdd.of_tt man t in
      let expected = Tt.bor (Tt.cofactor0 t i) (Tt.cofactor1 t i) in
      Tt.equal expected (Bdd.to_tt man (Bdd.exists man b [ i ]) ~nvars:n))

let test_support =
  Helpers.qcheck_case "support agrees with truth table" gen_tt (fun t ->
      let man = Bdd.create () in
      let b = Bdd.of_tt man t in
      Bdd.support man b = Tt.support t)

let test_count_sat =
  Helpers.qcheck_case "count_sat equals count_ones" gen_tt (fun t ->
      let n = Tt.num_vars t in
      let man = Bdd.create () in
      let b = Bdd.of_tt man t in
      int_of_float (Bdd.count_sat man b ~nvars:n) = Tt.count_ones t)

let test_any_sat =
  Helpers.qcheck_case "any_sat returns a satisfying assignment" gen_tt (fun t ->
      let man = Bdd.create () in
      let b = Bdd.of_tt man t in
      match Bdd.any_sat man b with
      | None -> Tt.is_const0 t
      | Some assignment ->
        let m =
          List.fold_left
            (fun acc (v, value) -> if value then acc lor (1 lsl v) else acc)
            0 assignment
        in
        Tt.eval t m)

let test_node_budget () =
  (* A tiny budget must raise Limit on a function needing many
     nodes — and the manager stays usable afterwards. *)
  let man = Bdd.create ~node_limit:8 () in
  let build () =
    (* XOR chain over 10 variables: needs ~20 nodes. *)
    let acc = ref (Bdd.ithvar man 0) in
    for i = 1 to 9 do
      acc := Bdd.mxor man !acc (Bdd.ithvar man i)
    done;
    !acc
  in
  (match build () with
  | exception Bdd.Limit -> ()
  | _ -> Alcotest.fail "expected Bdd.Limit");
  (* Computations on already-hashed nodes still work: the budget only
     blocks fresh allocation. *)
  let a = Bdd.ithvar man 0 in
  Alcotest.(check bool) "idempotent and" true (Bdd.mand man a a = a);
  Alcotest.(check bool) "terminal ops" true
    (Bdd.is_zero man (Bdd.mand man a (Bdd.zero man)))

let test_size_monotone () =
  let man = Bdd.create () in
  (* size of a conjunction of k variables is k. *)
  let acc = ref (Bdd.one man) in
  for i = 0 to 5 do
    acc := Bdd.mand man !acc (Bdd.ithvar man i)
  done;
  Alcotest.(check int) "AND chain size" 6 (Bdd.size man !acc)

let test_compose =
  Helpers.qcheck_case "compose agrees with tt compose"
    QCheck2.Gen.(
      triple
        (pair (int_range 1 6) (int_bound 1_000_000))
        (int_bound 1_000_000) (int_bound 100))
    (fun ((n, s1), s2, iv) ->
      let t = Tt.random n (Rng.create s1) in
      let g = Tt.random n (Rng.create s2) in
      let i = iv mod n in
      let man = Bdd.create () in
      let bt = Bdd.of_tt man t and bg = Bdd.of_tt man g in
      let expected = Tt.compose t i g in
      Tt.equal expected (Bdd.to_tt man (Bdd.compose man bt i bg) ~nvars:n))

let suite =
  [
    test_tt_roundtrip;
    test_ops_agree;
    test_canonicity;
    test_restrict;
    test_exists;
    test_support;
    test_count_sat;
    test_any_sat;
    Alcotest.test_case "node budget bail-out" `Quick test_node_budget;
    Alcotest.test_case "size of AND chain" `Quick test_size_monotone;
    test_compose;
  ]
