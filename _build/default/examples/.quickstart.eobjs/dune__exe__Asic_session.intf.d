examples/asic_session.mli:
