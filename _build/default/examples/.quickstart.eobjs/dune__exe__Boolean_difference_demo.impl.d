examples/boolean_difference_demo.ml: Fmt Sbm_aig Sbm_cec Sbm_core Sbm_partition
