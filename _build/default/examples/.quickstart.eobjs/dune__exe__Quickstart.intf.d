examples/quickstart.mli:
