examples/asic_session.ml: Float Fmt Sbm_aig Sbm_asic Sbm_cec Sbm_core Sbm_epfl
