examples/boolean_difference_demo.mli:
