examples/quickstart.ml: Fmt List Sbm_aig Sbm_cec Sbm_core Sbm_lutmap
