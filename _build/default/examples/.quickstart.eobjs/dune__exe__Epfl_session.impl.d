examples/epfl_session.ml: Fmt List Sbm_aig Sbm_cec Sbm_core Sbm_epfl Sbm_lutmap
