examples/epfl_session.mli:
