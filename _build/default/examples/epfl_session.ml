(* An EPFL-competition session: generate benchmarks, run the SBM flow,
   map to LUT-6 and compare against the baseline flow — the workflow
   behind Table I of the paper, on runtime-friendly widths.

   Run with:  dune exec examples/epfl_session.exe *)

module Aig = Sbm_aig.Aig
module Epfl = Sbm_epfl.Epfl

let () =
  let benchmarks =
    [ (Epfl.Priority, 0.5); (Epfl.Cavlc, 1.0); (Epfl.Router, 1.0); (Epfl.Int2float, 1.0) ]
  in
  Fmt.pr "%-10s %9s %9s | %11s %11s@." "bench" "AIG" "opt AIG" "LUT6 base"
    "LUT6 sbm";
  List.iter
    (fun (b, scale) ->
      let aig = Epfl.generate ~scale b in
      let baseline = Sbm_core.Flow.baseline aig in
      let optimized = Sbm_core.Flow.sbm ~effort:Sbm_core.Flow.Low aig in
      assert (Sbm_cec.Cec.equiv aig optimized);
      let m_base = Sbm_lutmap.Lut_map.map baseline in
      let m_sbm = Sbm_lutmap.Lut_map.map optimized in
      Fmt.pr "%-10s %9d %9d | %6d / %2d %6d / %2d@." (Epfl.name b) (Aig.size aig)
        (Aig.size optimized) m_base.Sbm_lutmap.Lut_map.lut_count
        m_base.Sbm_lutmap.Lut_map.depth m_sbm.Sbm_lutmap.Lut_map.lut_count
        m_sbm.Sbm_lutmap.Lut_map.depth)
    benchmarks
