(* The ASIC evaluation proxy behind Table III: map a design with the
   baseline flow and with the SBM-enhanced flow through the same
   backend (cells -> wire-load -> STA -> power) and report the
   deltas.

   Run with:  dune exec examples/asic_session.exe *)

module Aig = Sbm_aig.Aig

let evaluate name aig =
  let netlist = Sbm_asic.Mapper.map aig in
  let area = Sbm_asic.Netlist.area netlist in
  let sta = Sbm_asic.Sta.analyze netlist in
  let power = Sbm_asic.Power.dynamic netlist in
  Fmt.pr "  %-9s area %8.1f  crit %6.2f  power %8.2f@." name area
    sta.Sbm_asic.Sta.arrival_max power;
  (area, sta.Sbm_asic.Sta.arrival_max, power)

let () =
  let aig = Sbm_epfl.Epfl.generate ~scale:0.5 Sbm_epfl.Epfl.Priority in
  Fmt.pr "design: priority (scaled), %a@." Aig.pp_stats aig;
  let baseline = Sbm_core.Flow.baseline aig in
  let sbm = Sbm_core.Flow.sbm ~effort:Sbm_core.Flow.Low aig in
  assert (Sbm_cec.Cec.equiv aig sbm);
  let a0, c0, p0 = evaluate "baseline" baseline in
  let a1, c1, p1 = evaluate "sbm" sbm in
  let delta x y = 100.0 *. (y -. x) /. x in
  Fmt.pr "deltas (sbm vs baseline): area %+.2f%%  crit %+.2f%%  power %+.2f%%@."
    (delta a0 a1) (delta c0 c1) (delta p0 p1);
  (* Timing under a tight clock: the Table III slack view. *)
  let clock = c0 *. 0.9 in
  let tns flow aig =
    let netlist = Sbm_asic.Mapper.map aig in
    let sta = Sbm_asic.Sta.analyze ~clock netlist in
    Fmt.pr "  %-9s wns %7.3f  tns %8.3f  (clock %.2f)@." flow
      sta.Sbm_asic.Sta.wns sta.Sbm_asic.Sta.tns clock;
    sta.Sbm_asic.Sta.tns
  in
  let t0 = tns "baseline" baseline in
  let t1 = tns "sbm" sbm in
  if t0 < 0.0 then
    Fmt.pr "TNS reduction: %+.2f%%@." (100.0 *. (t1 -. t0) /. Float.abs t0)
