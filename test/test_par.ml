(* The domain-parallel partition scheduler: pool semantics (ordering,
   degenerate sizes, exception protocol), flight-recorder worker
   buffering, and the headline determinism contract — running the
   quick benches at jobs=4 must produce byte-identical QoR, counter
   totals and attribution shares to jobs=1. Also pins the BDD
   manager's allocation behaviour on a dec-sized run so the computed
   cache can never silently go unbounded again. *)

module Aig = Sbm_aig.Aig
module Epfl = Sbm_epfl.Epfl
module FR = Sbm_obs.Flight_recorder
module Jobs = Sbm_par.Jobs
module Obs = Sbm_obs
module Pool = Sbm_par.Pool

let with_jobs n f =
  Jobs.set n;
  Fun.protect ~finally:(fun () -> Jobs.set 1) f

(* --- pool --- *)

let test_pool_empty () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check int) "no jobs, no results" 0
        (Array.length (Pool.run pool 0 (fun _ -> Alcotest.fail "ran"))))

let test_pool_ordering () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* More workers than jobs... *)
      let r = Pool.run pool 2 (fun i -> 10 * i) in
      Alcotest.(check (array int)) "jobs > partitions" [| 0; 10 |] r;
      (* ...and more jobs than workers: results stay in index order
         regardless of which domain ran what. *)
      let r = Pool.run pool 100 (fun i -> i * i) in
      Alcotest.(check int) "batch size" 100 (Array.length r);
      Array.iteri
        (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v)
        r)

let test_pool_sequential_degenerate () =
  (* jobs = 1 spawns no domains and must run inline, in order. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let order = ref [] in
      let r =
        Pool.run pool 5 (fun i ->
            order := i :: !order;
            i)
      in
      Alcotest.(check (array int)) "results" [| 0; 1; 2; 3; 4 |] r;
      Alcotest.(check (list int)) "strictly sequential" [ 4; 3; 2; 1; 0 ] !order)

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let executed = Atomic.make 0 in
      (* Indices are claimed in ascending order, so of two failing jobs
         the lower index always starts first and wins the re-raise. *)
      (match
         Pool.run pool 1000 (fun i ->
             Atomic.incr executed;
             if i = 5 then failwith "err5";
             if i = 7 then failwith "err7";
             i)
       with
      | _ -> Alcotest.fail "expected the worker exception to propagate"
      | exception Failure msg ->
        Alcotest.(check string) "lowest failing index wins" "err5" msg);
      Alcotest.(check bool) "cancellation skipped pending jobs" true
        (Atomic.get executed < 1000);
      (* The pool survives a failed batch. *)
      let r = Pool.run pool 8 (fun i -> i + 1) in
      Alcotest.(check int) "usable after failure" 8 (Array.length r))

let test_jobs_setting () =
  with_jobs 1 (fun () ->
      Jobs.set 3;
      Alcotest.(check int) "set wins" 3 (Jobs.get ());
      Alcotest.check_raises "rejects zero"
        (Invalid_argument "Sbm_par.Jobs.set: jobs must be >= 1") (fun () ->
          Jobs.set 0))

(* --- flight recorder worker buffering --- *)

let test_fr_capture_replay () =
  Fun.protect ~finally:FR.disable (fun () ->
      FR.enable ();
      FR.record ~engine:"main" "before";
      let r, events =
        FR.capture (fun () ->
            FR.record ~engine:"worker" ~metrics:[ ("k", 1) ] "buffered-1";
            FR.record ~engine:"worker" "buffered-2";
            42)
      in
      Alcotest.(check int) "capture returns the result" 42 r;
      Alcotest.(check int) "ring untouched while buffering" 1 (FR.recorded ());
      Alcotest.(check int) "events captured in order" 2 (List.length events);
      Alcotest.(check string) "captured engine" "worker"
        (List.hd events).FR.engine;
      FR.replay events;
      Alcotest.(check int) "replay appends to the ring" 3 (FR.recorded ());
      let seqs = List.map (fun e -> e.FR.seq) (FR.events ()) in
      Alcotest.(check (list int)) "fresh sequence numbers" [ 0; 1; 2 ] seqs;
      let engines = List.map (fun e -> e.FR.engine) (FR.events ()) in
      Alcotest.(check (list string)) "merge order is caller-chosen"
        [ "main"; "worker"; "worker" ] engines)

(* --- determinism: jobs=4 == jobs=1, bit for bit --- *)

(* The fingerprint of a run is the library's determinism audit trail
   (Sbm_obs.Fingerprint): one composite record per pass and merge
   boundary, so a mismatch names the exact first boundary where the
   two schedules disagreed instead of just "counters differ". QoR and
   attribution ride along as a belt-and-braces check. *)
type run_fingerprint = {
  size : int;
  depth : int;
  luts : int;
  levels : int;
  counters : (string * int) list;
  attribution : string;
  trail : Obs.Fingerprint.record list;
}

let fingerprint jobs b =
  with_jobs jobs (fun () ->
      Obs.Fingerprint.enable ();
      Fun.protect ~finally:Obs.Fingerprint.disable (fun () ->
          let aig = Epfl.generate b in
          let trace = Obs.create () in
          let root =
            Obs.root ~size:(Aig.size aig) ~depth:(Aig.depth aig) trace
              (Epfl.name b)
          in
          let optimized =
            Sbm_core.Flow.run ~obs:root (Sbm_core.Flow.Sbm Sbm_core.Flow.Low)
              aig
          in
          Obs.close ~size:(Aig.size optimized) ~depth:(Aig.depth optimized)
            root;
          let mapping = Sbm_lutmap.Lut_map.map ~k:6 optimized in
          {
            size = Aig.size optimized;
            depth = Aig.depth optimized;
            luts = mapping.Sbm_lutmap.Lut_map.lut_count;
            levels = mapping.Sbm_lutmap.Lut_map.depth;
            counters = Obs.totals trace;
            attribution =
              Sbm_report.Attribution.to_json
                (Sbm_report.Attribution.compute optimized mapping);
            trail = Obs.Fingerprint.records ();
          }))

let check_deterministic b =
  let name = Epfl.name b in
  let seq = fingerprint 1 b in
  let par = fingerprint 4 b in
  (* Trail comparison first: on failure the auditor names the first
     diverging pass/partition boundary rather than a bare mismatch. *)
  (match Sbm_report.Audit.compare_trails seq.trail par.trail with
  | Sbm_report.Audit.Identical n ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: trail non-empty (%d records)" name n)
      true (n > 0)
  | Sbm_report.Audit.Diverged d ->
    Alcotest.failf "%s: jobs=1 vs jobs=4, %s" name
      (Sbm_report.Audit.describe d));
  Alcotest.(check int) (name ^ ": size") seq.size par.size;
  Alcotest.(check int) (name ^ ": depth") seq.depth par.depth;
  Alcotest.(check int) (name ^ ": luts") seq.luts par.luts;
  Alcotest.(check int) (name ^ ": levels") seq.levels par.levels;
  Alcotest.(check (list (pair string int)))
    (name ^ ": counter totals")
    seq.counters par.counters;
  (* The flow defaults the prefilter on, so its counters must appear
     in the totals — and, being part of the compared lists above, be
     bit-identical across jobs. *)
  Alcotest.(check bool)
    (name ^ ": prefilter counters present")
    true
    (List.mem_assoc "prefilter.survivors" seq.counters);
  Alcotest.(check string)
    (name ^ ": attribution shares")
    seq.attribution par.attribution

let test_determinism_quick_set () =
  List.iter check_deterministic Epfl.quick_set

(* --- BDD manager allocation stays bounded --- *)

(* The computed cache and unique table are flat preallocated arrays
   (direct-mapped / open-addressing); a dec-sized sbm-low run must not
   allocate unboundedly on the major heap. The bound is ~2x the
   measured value at the time this test was written — an unbounded
   cache regression blows well past it. *)
let test_bdd_allocation_bounded () =
  let aig = Epfl.generate Epfl.Dec in
  let trace = Obs.create () in
  let root = Obs.root ~size:(Aig.size aig) ~depth:(Aig.depth aig) trace "dec" in
  let optimized =
    Sbm_core.Flow.run ~obs:root (Sbm_core.Flow.Sbm Sbm_core.Flow.Low) aig
  in
  Obs.close ~size:(Aig.size optimized) ~depth:(Aig.depth optimized) root;
  match Obs.spans trace with
  | [ span ] ->
    let mwords = span.Obs.gc.Obs.major_words in
    Alcotest.(check bool)
      (Printf.sprintf "major allocation bounded (%.0f words)" mwords)
      true
      (mwords < 64e6)
  | _ -> Alcotest.fail "expected a single root span"

let suite =
  [
    Alcotest.test_case "pool: empty batch." `Quick test_pool_empty;
    Alcotest.test_case "pool: ordering and sizes." `Quick test_pool_ordering;
    Alcotest.test_case "pool: jobs=1 is inline." `Quick
      test_pool_sequential_degenerate;
    Alcotest.test_case "pool: exception cancels and re-raises." `Quick
      test_pool_exception;
    Alcotest.test_case "jobs: setting and validation." `Quick test_jobs_setting;
    Alcotest.test_case "flight recorder: capture and replay." `Quick
      test_fr_capture_replay;
    Alcotest.test_case "determinism: jobs=4 equals jobs=1 on the quick set."
      `Slow test_determinism_quick_set;
    Alcotest.test_case "bdd: dec-sized allocation bounded." `Slow
      test_bdd_allocation_bounded;
  ]
