(* Cross-cutting flow robustness: degenerate networks, edge shapes,
   and end-to-end LUT/ASIC pipelines on structured circuits. *)

module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng

let all_engines =
  [
    ("rewrite", fun aig -> ignore (Sbm_aig.Rewrite.run aig); aig);
    ("refactor", fun aig -> ignore (Sbm_aig.Refactor.run aig); aig);
    ("resub", fun aig -> ignore (Sbm_aig.Resub.run aig); aig);
    ("balance", fun aig -> Sbm_aig.Balance.run aig);
    ("diff", fun aig -> ignore (Sbm_core.Diff_resub.optimize aig); aig);
    ("mspf", fun aig -> ignore (Sbm_core.Mspf.optimize aig); aig);
    ("hetero", fun aig -> fst (Sbm_core.Hetero_kernel.run aig));
    ("sweep", fun aig -> fst (Sbm_sat.Sweep.run aig));
    ("redundancy", fun aig -> ignore (Sbm_sat.Redundancy.run aig); aig);
    ("baseline", fun aig -> Sbm_core.Flow.baseline aig);
  ]

let degenerate_networks () =
  (* A zoo of edge-case shapes every engine must survive. *)
  let empty () =
    let aig = Aig.create () in
    ignore (Aig.add_input aig);
    aig
  in
  let const_outputs () =
    let aig = Aig.create () in
    ignore (Aig.add_input aig);
    ignore (Aig.add_output aig Aig.const0);
    ignore (Aig.add_output aig Aig.const1);
    aig
  in
  let wire () =
    let aig = Aig.create () in
    let a = Aig.add_input aig in
    ignore (Aig.add_output aig a);
    ignore (Aig.add_output aig (Aig.lnot a));
    aig
  in
  let single_and () =
    let aig = Aig.create () in
    let a = Aig.add_input aig in
    let b = Aig.add_input aig in
    ignore (Aig.add_output aig (Aig.band aig a b));
    aig
  in
  let duplicate_outputs () =
    let aig = Aig.create () in
    let a = Aig.add_input aig in
    let b = Aig.add_input aig in
    let x = Aig.band aig a b in
    ignore (Aig.add_output aig x);
    ignore (Aig.add_output aig x);
    ignore (Aig.add_output aig (Aig.lnot x));
    aig
  in
  let deep_chain () =
    let aig = Aig.create () in
    let a = Aig.add_input aig in
    let b = Aig.add_input aig in
    let acc = ref a in
    for _ = 1 to 40 do
      acc := Aig.bxor aig !acc b
    done;
    ignore (Aig.add_output aig !acc);
    aig
  in
  [
    ("empty", empty ()); ("const outputs", const_outputs ()); ("wire", wire ());
    ("single and", single_and ()); ("duplicate outputs", duplicate_outputs ());
    ("deep chain", deep_chain ());
  ]

let test_engines_on_degenerate () =
  List.iter
    (fun (shape, aig) ->
      List.iter
        (fun (engine, run) ->
          let original = Aig.copy aig in
          let result = run (Aig.copy aig) in
          Aig.check result;
          Helpers.assert_equiv_exhaustive
            ~msg:(Printf.sprintf "%s on %s" engine shape)
            original result)
        all_engines)
    (degenerate_networks ())

let test_full_flow_on_structured () =
  (* End-to-end: generator -> flow -> LUT map -> ASIC map, all checked. *)
  List.iter
    (fun (b, scale) ->
      let aig = Sbm_epfl.Epfl.generate ~scale b in
      let optimized = Sbm_core.Flow.sbm_once ~effort:Sbm_core.Flow.Low aig in
      (match Sbm_cec.Cec.check aig optimized with
      | Sbm_cec.Cec.Equivalent -> ()
      | _ -> Alcotest.failf "flow broke %s" (Sbm_epfl.Epfl.name b));
      let mapping = Sbm_lutmap.Lut_map.map optimized in
      Sbm_lutmap.Lut_map.check optimized mapping;
      let netlist = Sbm_asic.Mapper.map optimized in
      Sbm_asic.Netlist.check netlist;
      (* Functional spot-check of the mapped netlist. *)
      let rng = Rng.create 77 in
      for _ = 1 to 16 do
        let bits =
          Array.init (Aig.num_inputs optimized) (fun _ -> Rng.bool rng)
        in
        if Sbm_aig.Sim.eval optimized bits <> Sbm_asic.Netlist.eval netlist bits
        then Alcotest.failf "mapped netlist differs for %s" (Sbm_epfl.Epfl.name b)
      done)
    [ (Sbm_epfl.Epfl.Int2float, 1.0); (Sbm_epfl.Epfl.Ctrl, 1.0); (Sbm_epfl.Epfl.Sin, 0.25) ]

let test_partition_limit_extremes () =
  let rng = Rng.create 405 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
  (* Tiny limits: many partitions, engines still sound. *)
  let limits =
    { Sbm_partition.Partition.max_levels = 1; max_nodes = 2; max_leaves = 4 }
  in
  let parts = Sbm_partition.Partition.compute aig limits in
  Alcotest.(check bool) "many partitions" true (List.length parts > 5);
  let original = Aig.copy aig in
  let config = { Sbm_core.Diff_resub.default_config with limits } in
  ignore (Sbm_core.Diff_resub.optimize ~config aig);
  Aig.check aig;
  Helpers.assert_equiv_exhaustive ~msg:"tiny partitions" original aig

let test_flow_idempotent_safety () =
  (* Applying the flow twice keeps equivalence and never grows. *)
  let rng = Rng.create 406 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
  let once = Sbm_core.Flow.sbm_once ~effort:Sbm_core.Flow.Low aig in
  let twice = Sbm_core.Flow.sbm_once ~effort:Sbm_core.Flow.Low once in
  Helpers.assert_equiv_exhaustive ~msg:"idempotent safety" aig twice;
  Alcotest.(check bool) "no growth" true (Aig.size twice <= Aig.size once)

let test_gradient_move_log () =
  let rng = Rng.create 407 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:45 ~outputs:4 rng in
  let _, stats =
    Sbm_core.Gradient.run
      ~config:{ Sbm_core.Gradient.default_config with budget = 20 }
      aig
  in
  (* The move log is chronological and every recorded gain is >= 0
     (moves revert losing changes). *)
  List.iter
    (fun (name, gain) ->
      Alcotest.(check bool) (name ^ " gain >= 0") true (gain >= 0))
    stats.Sbm_core.Gradient.move_log;
  Alcotest.(check bool) "log nonempty" true (stats.Sbm_core.Gradient.move_log <> [])

let suite =
  [
    Alcotest.test_case "all engines on degenerate shapes" `Quick test_engines_on_degenerate;
    Alcotest.test_case "generator -> flow -> mappers" `Slow test_full_flow_on_structured;
    Alcotest.test_case "extreme partition limits" `Quick test_partition_limit_extremes;
    Alcotest.test_case "flow applied twice" `Slow test_flow_idempotent_safety;
    Alcotest.test_case "gradient move log" `Quick test_gradient_move_log;
  ]
