(* Truth-table MSPF baseline: soundness gates mirroring the BDD
   engine's, plus agreement on the simple absorb case. *)

module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng

let test_absorbs_unobservable () =
  let aig = Aig.create () in
  let x = Aig.add_input aig in
  let w = Aig.add_input aig in
  let inner = Aig.band aig x w in
  let z = Aig.bor aig x inner in
  ignore (Aig.add_output aig z);
  let original = Aig.copy aig in
  ignore (Sbm_core.Mspf_tt.run aig);
  Aig.check aig;
  Helpers.assert_equiv_exhaustive ~msg:"tt-mspf absorb" original aig;
  Alcotest.(check int) "z collapses to x" 0 (Aig.size aig)

let test_random_gate () =
  let rng = Rng.create 601 in
  for _ = 1 to 8 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:35 ~outputs:4 rng in
    let original = Aig.copy aig in
    let size_before = Aig.size aig in
    let gain = Sbm_core.Mspf_tt.run aig in
    Aig.check aig;
    Alcotest.(check bool) "gain >= 0" true (gain >= 0);
    Alcotest.(check bool) "not larger" true (Aig.size aig <= size_before);
    Helpers.assert_equiv_exhaustive ~msg:"tt-mspf gate" original aig
  done

let test_leaf_cap_respected () =
  (* Requesting more leaves than truth tables support must clamp, not
     crash. *)
  let rng = Rng.create 602 in
  let aig = Helpers.random_xor_aig ~inputs:10 ~gates:80 ~outputs:5 rng in
  let original = Aig.copy aig in
  let config =
    {
      Sbm_core.Mspf_tt.default_config with
      limits =
        { Sbm_partition.Partition.default_limits with max_leaves = 64; max_nodes = 200 };
    }
  in
  ignore (Sbm_core.Mspf_tt.run ~config aig);
  Aig.check aig;
  Helpers.assert_equiv_exhaustive ~msg:"leaf cap" original aig

let test_bdd_reaches_further () =
  (* The paper's claim: BDD-based MSPF works on larger sub-circuits
     than the TT flavor. Structural proxy: the BDD engine accepts
     partitions with wide leaf sets that the TT engine must clamp.
     Both must remain sound on the same input. *)
  let rng = Rng.create 603 in
  let aig = Helpers.random_xor_aig ~inputs:10 ~gates:120 ~outputs:6 rng in
  let tt_copy = Aig.copy aig in
  let bdd_copy = Aig.copy aig in
  ignore (Sbm_core.Mspf_tt.run tt_copy);
  ignore (Sbm_core.Mspf.optimize bdd_copy);
  Helpers.assert_equiv_exhaustive ~msg:"tt flavor" aig tt_copy;
  Helpers.assert_equiv_exhaustive ~msg:"bdd flavor" aig bdd_copy

let suite =
  [
    Alcotest.test_case "absorbs unobservable" `Quick test_absorbs_unobservable;
    Alcotest.test_case "random gate" `Quick test_random_gate;
    Alcotest.test_case "leaf cap respected" `Quick test_leaf_cap_respected;
    Alcotest.test_case "both flavors sound" `Quick test_bdd_reaches_further;
  ]
