(* The telemetry layer: span nesting, counter aggregation, reporter
   output, and the contract the flow scripts rely on (one span per
   scripted pass, size deltas chaining between passes). *)

module Aig = Sbm_aig.Aig
module Obs = Sbm_obs
module Rng = Sbm_util.Rng

(* --- a tiny JSON parser, enough to round-trip the reporter --- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> raise (Bad "unterminated string")
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
            (* \uXXXX: decode the code point as a raw byte when < 256
               (the reporter only escapes control characters). *)
            let hex = String.sub s (!pos + 1) 4 in
            pos := !pos + 4;
            Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
          | Some c -> Buffer.add_char buf c
          | None -> raise (Bad "bad escape"));
          advance ();
          go ()
        | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      Num (float_of_string (String.sub s start (!pos - start)))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((key, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((key, v) :: acc))
            | _ -> raise (Bad "expected , or } in object")
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List (List.rev (v :: acc))
            | _ -> raise (Bad "expected , or ] in array")
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> raise (Bad "empty input")
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_int = function Some (Num f) -> Some (int_of_float f) | _ -> None
  let to_str = function Some (Str s) -> Some s | _ -> None
  let to_list = function Some (List l) -> l | _ -> []
end

(* --- span mechanics --- *)

let test_null_sink () =
  Alcotest.(check bool) "null disabled" false (Obs.enabled Obs.null);
  let child = Obs.span Obs.null "child" in
  Alcotest.(check bool) "children of null disabled" false (Obs.enabled child);
  (* All operations on the sink are no-ops and must not raise. *)
  Obs.add child "x" 5;
  Obs.incr child "x";
  Obs.close child

let test_span_nesting () =
  let trace = Obs.create () in
  let root = Obs.root ~size:100 trace "flow" in
  Alcotest.(check bool) "root enabled" true (Obs.enabled root);
  let a = Obs.span ~size:100 root "pass-a" in
  Obs.close ~size:90 a;
  let b = Obs.span ~size:90 root "pass-b" in
  let b1 = Obs.span b "inner" in
  Obs.close b1;
  Obs.close ~size:80 b;
  Obs.close ~size:80 root;
  match Obs.spans trace with
  | [ r ] ->
    Alcotest.(check string) "root name" "flow" r.Obs.name;
    Alcotest.(check int) "two children" 2 (List.length r.Obs.children);
    let names = List.map (fun n -> n.Obs.name) r.Obs.children in
    Alcotest.(check (list string)) "child order" [ "pass-a"; "pass-b" ] names;
    let b = List.nth r.Obs.children 1 in
    Alcotest.(check int) "grandchild" 1 (List.length b.Obs.children);
    Alcotest.(check (option int)) "size before" (Some 90) b.Obs.size_before;
    Alcotest.(check (option int)) "size after" (Some 80) b.Obs.size_after;
    Alcotest.(check bool) "wall time measured" true (r.Obs.wall_ns >= 0L)
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

let test_counter_totals () =
  let trace = Obs.create () in
  let root = Obs.root trace "r" in
  Obs.add root "sat.conflicts" 3;
  let child = Obs.span root "c" in
  Obs.add child "sat.conflicts" 4;
  Obs.incr child "sat.decisions";
  Obs.add child "sat.decisions" 9;
  Obs.close child;
  Obs.close root;
  Alcotest.(check int) "summed over tree" 7 (Obs.total trace "sat.conflicts");
  Alcotest.(check int) "incr + add" 10 (Obs.total trace "sat.decisions");
  Alcotest.(check int) "untouched counter" 0 (Obs.total trace "nope");
  let totals = Obs.totals trace in
  Alcotest.(check (list string))
    "totals sorted" [ "sat.conflicts"; "sat.decisions" ] (List.map fst totals)

let test_monotonic_clock () =
  let t0 = Obs.monotonic_ns () in
  let t1 = Obs.monotonic_ns () in
  Alcotest.(check bool) "clock does not go backwards" true (t1 >= t0)

(* --- reporters --- *)

let sample_trace () =
  let trace = Obs.create () in
  let root = Obs.root ~size:50 ~depth:7 trace "sbm" in
  let a = Obs.span ~size:50 root "pa\"ss" in
  Obs.add a "bdd.nodes" 12;
  Obs.add a "sat.conflicts" 2;
  Obs.close ~size:44 a;
  Obs.close ~size:44 ~depth:6 root;
  trace

let test_json_round_trip () =
  let trace = sample_trace () in
  let json = Json.parse (Obs.to_json trace) in
  Alcotest.(check (option int)) "version" (Some 1) Json.(to_int (member "version" json));
  let totals = Json.member "totals" json in
  Alcotest.(check (option int))
    "total bdd.nodes" (Some 12)
    Json.(to_int (Option.bind totals (member "bdd.nodes")));
  (match Json.to_list (Json.member "spans" json) with
  | [ root ] ->
    Alcotest.(check (option string)) "root name" (Some "sbm")
      Json.(to_str (member "name" root));
    Alcotest.(check (option int)) "size_before" (Some 50)
      Json.(to_int (member "size_before" root));
    Alcotest.(check (option int)) "depth_after" (Some 6)
      Json.(to_int (member "depth_after" root));
    (match Json.to_list (Json.member "children" root) with
    | [ child ] ->
      (* The escaped quote in the span name must survive. *)
      Alcotest.(check (option string)) "escaped name" (Some "pa\"ss")
        Json.(to_str (member "name" child));
      Alcotest.(check (option int)) "counter" (Some 2)
        Json.(to_int (Option.bind (Json.member "counters" child) (Json.member "sat.conflicts")))
    | l -> Alcotest.failf "expected 1 child, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

let test_jsonl_and_csv () =
  let trace = sample_trace () in
  let jsonl = Obs.to_jsonl trace in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per span" 2 (List.length lines);
  (* Every line parses as standalone JSON and carries a path. *)
  let paths =
    List.map (fun l -> Json.(to_str (member "path" (Json.parse l)))) lines
  in
  Alcotest.(check (list (option string)))
    "flattened paths"
    [ Some "sbm"; Some "sbm/pa\"ss" ]
    paths;
  let csv = Obs.to_csv trace in
  (match String.split_on_char '\n' csv with
  | header :: _ ->
    Alcotest.(check string) "csv header"
      "path,wall_ms,size_before,size_after,depth_before,depth_after,counters"
      header
  | [] -> Alcotest.fail "empty csv");
  Alcotest.(check int) "csv rows" 3
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)))

let test_write_by_extension () =
  let trace = sample_trace () in
  let tmp suffix = Filename.temp_file "sbm_obs_test" suffix in
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let j = tmp ".json" and l = tmp ".jsonl" and c = tmp ".csv" in
  Obs.write trace j;
  Obs.write trace l;
  Obs.write trace c;
  Alcotest.(check string) "json file" (Obs.to_json trace) (read j);
  Alcotest.(check string) "jsonl file" (Obs.to_jsonl trace) (read l);
  Alcotest.(check string) "csv file" (Obs.to_csv trace) (read c);
  List.iter Sys.remove [ j; l; c ]

(* --- the flow contract --- *)

let flow_pass_names =
  [
    "baseline"; "gradient"; "hetero-kernel"; "mspf"; "collapse-decompose";
    "boolean-difference"; "sat-sweep";
  ]

let test_flow_records_pass_spans () =
  let rng = Rng.create 606 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:45 ~outputs:4 rng in
  let trace = Obs.create () in
  let root = Obs.root ~size:(Aig.size aig) trace "sbm-low" in
  let optimized = Sbm_core.Flow.sbm_once ~obs:root ~effort:Sbm_core.Flow.Low aig in
  Obs.close ~size:(Aig.size optimized) root;
  match Obs.spans trace with
  | [ r ] -> (
    match r.Obs.children with
    | [ iter ] ->
      Alcotest.(check string) "iteration span" "iteration-1" iter.Obs.name;
      (* One child span per scripted pass, in script order. *)
      Alcotest.(check (list string))
        "one span per pass" flow_pass_names
        (List.map (fun n -> n.Obs.name) iter.Obs.children);
      (* Deltas chain: size_after of pass i = size_before of pass
         i+1, and every pass records both endpoints. *)
      let rec chain = function
        | a :: (b : Obs.node) :: rest ->
          Alcotest.(check (option int))
            (Printf.sprintf "%s -> %s size chain" a.Obs.name b.Obs.name)
            a.Obs.size_after b.Obs.size_before;
          chain (b :: rest)
        | [ last ] ->
          Alcotest.(check (option int))
            "last pass exits at the iteration's exit size" last.Obs.size_after
            iter.Obs.size_after
        | [] -> ()
      in
      List.iter
        (fun (n : Obs.node) ->
          Alcotest.(check bool)
            (n.Obs.name ^ " measured") true
            (n.Obs.size_before <> None && n.Obs.size_after <> None
           && n.Obs.depth_before <> None && n.Obs.depth_after <> None))
        iter.Obs.children;
      chain iter.Obs.children;
      (* The engines actually reported work. *)
      Alcotest.(check bool)
        "gradient counters present" true
        (Obs.total trace "gradient.moves_tried" > 0);
      Alcotest.(check bool)
        "kernel counters present" true (Obs.total trace "kernel.trials" > 0)
    | l -> Alcotest.failf "expected 1 iteration span, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

let test_flow_disabled_obs_is_null () =
  (* The default path records nothing and still optimizes. *)
  let rng = Rng.create 607 in
  let aig = Helpers.random_xor_aig ~inputs:6 ~gates:25 ~outputs:3 rng in
  let optimized = Sbm_core.Flow.run (Sbm_core.Flow.Sbm Sbm_core.Flow.Low) aig in
  Helpers.assert_equiv_exhaustive ~msg:"typed flow run" aig optimized

let test_script_string_round_trip () =
  List.iter
    (fun script ->
      let s = Sbm_core.Flow.to_string script in
      match Sbm_core.Flow.of_string s with
      | Some script' ->
        Alcotest.(check string)
          (s ^ " round-trips") s
          (Sbm_core.Flow.to_string script')
      | None -> Alcotest.failf "of_string failed on %s" s)
    Sbm_core.Flow.all;
  Alcotest.(check bool) "unknown flow rejected" true
    (Sbm_core.Flow.of_string "resyn2" = None)

let suite =
  [
    Alcotest.test_case "null sink" `Quick test_null_sink;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "counter totals" `Quick test_counter_totals;
    Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
    Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "jsonl and csv" `Quick test_jsonl_and_csv;
    Alcotest.test_case "write by extension" `Quick test_write_by_extension;
    Alcotest.test_case "flow records pass spans" `Quick test_flow_records_pass_spans;
    Alcotest.test_case "flow with obs off" `Quick test_flow_disabled_obs_is_null;
    Alcotest.test_case "script strings" `Quick test_script_string_round_trip;
  ]
