(* The telemetry layer: span nesting, counter aggregation, value
   distributions, GC deltas, reporter output, and the contract the
   flow scripts rely on (one span per scripted pass, size deltas
   chaining between passes). The JSON parser used to round-trip the
   reporters lives in the report library. *)

module Aig = Sbm_aig.Aig
module Obs = Sbm_obs
module Rng = Sbm_util.Rng
module Json = Sbm_report.Json

(* --- span mechanics --- *)

let test_null_sink () =
  Alcotest.(check bool) "null disabled" false (Obs.enabled Obs.null);
  let child = Obs.span Obs.null "child" in
  Alcotest.(check bool) "children of null disabled" false (Obs.enabled child);
  (* All operations on the sink are no-ops and must not raise. *)
  Obs.add child "x" 5;
  Obs.incr child "x";
  Obs.close child

let test_span_nesting () =
  let trace = Obs.create () in
  let root = Obs.root ~size:100 trace "flow" in
  Alcotest.(check bool) "root enabled" true (Obs.enabled root);
  let a = Obs.span ~size:100 root "pass-a" in
  Obs.close ~size:90 a;
  let b = Obs.span ~size:90 root "pass-b" in
  let b1 = Obs.span b "inner" in
  Obs.close b1;
  Obs.close ~size:80 b;
  Obs.close ~size:80 root;
  match Obs.spans trace with
  | [ r ] ->
    Alcotest.(check string) "root name" "flow" r.Obs.name;
    Alcotest.(check int) "two children" 2 (List.length r.Obs.children);
    let names = List.map (fun n -> n.Obs.name) r.Obs.children in
    Alcotest.(check (list string)) "child order" [ "pass-a"; "pass-b" ] names;
    let b = List.nth r.Obs.children 1 in
    Alcotest.(check int) "grandchild" 1 (List.length b.Obs.children);
    Alcotest.(check (option int)) "size before" (Some 90) b.Obs.size_before;
    Alcotest.(check (option int)) "size after" (Some 80) b.Obs.size_after;
    Alcotest.(check bool) "wall time measured" true (r.Obs.wall_ns >= 0L)
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

let test_counter_totals () =
  let trace = Obs.create () in
  let root = Obs.root trace "r" in
  Obs.add root "sat.conflicts" 3;
  let child = Obs.span root "c" in
  Obs.add child "sat.conflicts" 4;
  Obs.incr child "sat.decisions";
  Obs.add child "sat.decisions" 9;
  Obs.close child;
  Obs.close root;
  Alcotest.(check int) "summed over tree" 7 (Obs.total trace "sat.conflicts");
  Alcotest.(check int) "incr + add" 10 (Obs.total trace "sat.decisions");
  Alcotest.(check int) "untouched counter" 0 (Obs.total trace "nope");
  let totals = Obs.totals trace in
  Alcotest.(check (list string))
    "totals sorted" [ "sat.conflicts"; "sat.decisions" ] (List.map fst totals)

let test_monotonic_clock () =
  let t0 = Obs.monotonic_ns () in
  let t1 = Obs.monotonic_ns () in
  Alcotest.(check bool) "clock does not go backwards" true (t1 >= t0)

(* --- reporters --- *)

let sample_trace () =
  let trace = Obs.create () in
  let root = Obs.root ~size:50 ~depth:7 trace "sbm" in
  let a = Obs.span ~size:50 root "pa\"ss" in
  Obs.add a "bdd.nodes" 12;
  Obs.add a "sat.conflicts" 2;
  Obs.close ~size:44 a;
  Obs.close ~size:44 ~depth:6 root;
  trace

let test_json_round_trip () =
  let trace = sample_trace () in
  let json = Json.parse (Obs.to_json trace) in
  Alcotest.(check (option int)) "version" (Some 2) Json.(to_int (member "version" json));
  let totals = Json.member "totals" json in
  Alcotest.(check (option int))
    "total bdd.nodes" (Some 12)
    Json.(to_int (Option.bind totals (member "bdd.nodes")));
  (match Json.to_list (Json.member "spans" json) with
  | [ root ] ->
    Alcotest.(check (option string)) "root name" (Some "sbm")
      Json.(to_str (member "name" root));
    Alcotest.(check (option int)) "size_before" (Some 50)
      Json.(to_int (member "size_before" root));
    Alcotest.(check (option int)) "depth_after" (Some 6)
      Json.(to_int (member "depth_after" root));
    (match Json.to_list (Json.member "children" root) with
    | [ child ] ->
      (* The escaped quote in the span name must survive. *)
      Alcotest.(check (option string)) "escaped name" (Some "pa\"ss")
        Json.(to_str (member "name" child));
      Alcotest.(check (option int)) "counter" (Some 2)
        Json.(to_int (Option.bind (Json.member "counters" child) (Json.member "sat.conflicts")))
    | l -> Alcotest.failf "expected 1 child, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

let test_jsonl_and_csv () =
  let trace = sample_trace () in
  let jsonl = Obs.to_jsonl trace in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per span" 2 (List.length lines);
  (* Every line parses as standalone JSON and carries a path. *)
  let paths =
    List.map (fun l -> Json.(to_str (member "path" (Json.parse l)))) lines
  in
  Alcotest.(check (list (option string)))
    "flattened paths"
    [ Some "sbm"; Some "sbm/pa\"ss" ]
    paths;
  let csv = Obs.to_csv trace in
  (match String.split_on_char '\n' csv with
  | header :: _ ->
    Alcotest.(check string) "csv header"
      "path,wall_ms,size_before,size_after,depth_before,depth_after,counters"
      header
  | [] -> Alcotest.fail "empty csv");
  Alcotest.(check int) "csv rows" 3
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)))

let test_write_by_extension () =
  let trace = sample_trace () in
  let tmp suffix = Filename.temp_file "sbm_obs_test" suffix in
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let j = tmp ".json" and l = tmp ".jsonl" and c = tmp ".csv" in
  Obs.write trace j;
  Obs.write trace l;
  Obs.write trace c;
  Alcotest.(check string) "json file" (Obs.to_json trace) (read j);
  Alcotest.(check string) "jsonl file" (Obs.to_jsonl trace) (read l);
  Alcotest.(check string) "csv file" (Obs.to_csv trace) (read c);
  List.iter Sys.remove [ j; l; c ]

let test_json_gc_and_histograms () =
  let trace = sample_trace () in
  let json = Json.parse (Obs.to_json trace) in
  (match Json.to_list (Json.member "spans" json) with
  | [ root ] ->
    let gc = Json.member "gc" root in
    Alcotest.(check bool) "gc present" true (gc <> None);
    Alcotest.(check bool)
      "gc minor_words is a number" true
      (Json.to_float (Option.bind gc (Json.member "minor_words")) <> None)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  let hist = Json.member "histograms" json in
  Alcotest.(check bool)
    "histogram entry per span name" true
    (List.map fst (Json.to_obj hist) = [ "pa\"ss"; "sbm" ]);
  Alcotest.(check (option int))
    "count" (Some 1)
    Json.(to_int (Option.bind (Option.bind hist (member "sbm")) (member "count")))

(* --- value distributions --- *)

let test_percentile_known_inputs () =
  let check msg expected values p =
    Alcotest.(check (float 1e-9)) msg expected (Obs.percentile values p)
  in
  check "median of 1..4 (nearest rank)" 2.0 [| 1.0; 2.0; 3.0; 4.0 |] 0.5;
  check "median of 1..5" 3.0 [| 5.0; 1.0; 4.0; 2.0; 3.0 |] 0.5;
  check "p90 of 1..10" 9.0 (Array.init 10 (fun i -> float_of_int (i + 1))) 0.9;
  check "p0 is the minimum" 1.0 [| 3.0; 1.0; 2.0 |] 0.0;
  check "p100 is the maximum" 3.0 [| 3.0; 1.0; 2.0 |] 1.0;
  check "singleton" 7.5 [| 7.5 |] 0.9;
  Alcotest.check_raises "empty sample rejected"
    (Invalid_argument "Sbm_obs.percentile: empty sample") (fun () ->
      ignore (Obs.percentile [||] 0.5));
  Alcotest.check_raises "p out of range rejected"
    (Invalid_argument "Sbm_obs.percentile: p outside [0,1]") (fun () ->
      ignore (Obs.percentile [| 1.0 |] 1.5))

let test_histograms_group_by_name () =
  let trace = Obs.create () in
  let root = Obs.root trace "flow" in
  for _ = 1 to 3 do
    Obs.close (Obs.span root "move")
  done;
  Obs.close (Obs.span root "other");
  Obs.close root;
  match Obs.histograms trace with
  | [ ("flow", f); ("move", m); ("other", o) ] ->
    Alcotest.(check int) "3 samples of move" 3 m.Obs.count;
    Alcotest.(check int) "1 sample of flow" 1 f.Obs.count;
    Alcotest.(check int) "1 sample of other" 1 o.Obs.count;
    Alcotest.(check bool) "ordered percentiles" true
      (0.0 <= m.Obs.p50_ms && m.Obs.p50_ms <= m.Obs.p90_ms
      && m.Obs.p90_ms <= m.Obs.max_ms
      && m.Obs.max_ms <= m.Obs.total_ms +. 1e-9)
  | l ->
    Alcotest.failf "expected histograms for flow/move/other, got %d entries"
      (List.length l)

let test_gc_delta_captured () =
  let trace = Obs.create () in
  let root = Obs.root trace "alloc" in
  (* Allocate enough to move the minor-words counter for sure. *)
  let junk = Sys.opaque_identity (List.init 50_000 (fun i -> (i, i))) in
  ignore (Sys.opaque_identity (List.length junk));
  Obs.close root;
  match Obs.spans trace with
  | [ n ] ->
    Alcotest.(check bool) "minor words counted" true (n.Obs.gc.Obs.minor_words > 0.0);
    Alcotest.(check bool) "collections non-negative" true
      (n.Obs.gc.Obs.minor_collections >= 0 && n.Obs.gc.Obs.major_collections >= 0)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* --- CSV escaping --- *)

(* A strict RFC 4180 row parser: unquoted cells up to the next comma,
   quoted cells with doubled inner quotes. *)
let parse_csv_row line =
  let n = String.length line in
  let cells = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    cells := Buffer.contents buf :: !cells;
    Buffer.clear buf
  in
  let i = ref 0 in
  while !i < n do
    if Buffer.length buf = 0 && line.[!i] = '"' then begin
      (* quoted cell *)
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then Alcotest.fail "unterminated quoted cell"
        else if line.[!i] = '"' then
          if !i + 1 < n && line.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf line.[!i];
          incr i
        end
      done
    end
    else if line.[!i] = ',' then begin
      flush ();
      incr i
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  flush ();
  List.rev !cells

(* Invert the [k=v;k=v] packing, honouring backslash escapes. *)
let parse_counters_cell cell =
  let n = String.length cell in
  let out = ref [] in
  let key = Buffer.create 16 in
  let value = Buffer.create 8 in
  let in_value = ref false in
  let flush () =
    if Buffer.length key > 0 || Buffer.length value > 0 then
      out := (Buffer.contents key, int_of_string (Buffer.contents value)) :: !out;
    Buffer.clear key;
    Buffer.clear value;
    in_value := false
  in
  let i = ref 0 in
  while !i < n do
    (match cell.[!i] with
    | '\\' when !i + 1 < n ->
      incr i;
      Buffer.add_char (if !in_value then value else key) cell.[!i]
    | ';' -> flush ()
    | '=' when not !in_value -> in_value := true
    | c -> Buffer.add_char (if !in_value then value else key) c);
    incr i
  done;
  flush ();
  List.rev !out

let test_csv_escaping_round_trip () =
  let trace = Obs.create () in
  let root = Obs.root ~size:10 trace "pass,one" in
  Obs.add root "weird;name=x" 7;
  Obs.add root "plain" 3;
  Obs.add root "back\\slash" 1;
  Obs.close ~size:8 root;
  let csv = Obs.to_csv trace in
  match List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) with
  | [ header; row ] ->
    Alcotest.(check int)
      "header and row have the same arity"
      (List.length (parse_csv_row header))
      (List.length (parse_csv_row row));
    (match parse_csv_row row with
    | [ path; _wall; size_before; size_after; _d0; _d1; counters ] ->
      Alcotest.(check string) "comma in span name survives" "pass,one" path;
      Alcotest.(check string) "size before" "10" size_before;
      Alcotest.(check string) "size after" "8" size_after;
      Alcotest.(check (list (pair string int)))
        "counters unpack exactly"
        [ ("back\\slash", 1); ("plain", 3); ("weird;name=x", 7) ]
        (parse_counters_cell counters)
    | cells -> Alcotest.failf "expected 7 cells, got %d" (List.length cells))
  | lines -> Alcotest.failf "expected 2 csv lines, got %d" (List.length lines)

(* --- the flow contract --- *)

let flow_pass_names =
  [
    "baseline"; "gradient"; "hetero-kernel"; "mspf"; "collapse-decompose";
    "boolean-difference"; "sat-sweep";
  ]

let test_flow_records_pass_spans () =
  let rng = Rng.create 606 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:45 ~outputs:4 rng in
  let trace = Obs.create () in
  let root = Obs.root ~size:(Aig.size aig) trace "sbm-low" in
  let optimized = Sbm_core.Flow.sbm_once ~obs:root ~effort:Sbm_core.Flow.Low aig in
  Obs.close ~size:(Aig.size optimized) root;
  match Obs.spans trace with
  | [ r ] -> (
    match r.Obs.children with
    | [ iter ] ->
      Alcotest.(check string) "iteration span" "iteration-1" iter.Obs.name;
      (* One child span per scripted pass, in script order. *)
      Alcotest.(check (list string))
        "one span per pass" flow_pass_names
        (List.map (fun n -> n.Obs.name) iter.Obs.children);
      (* Deltas chain: size_after of pass i = size_before of pass
         i+1, and every pass records both endpoints. *)
      let rec chain = function
        | a :: (b : Obs.node) :: rest ->
          Alcotest.(check (option int))
            (Printf.sprintf "%s -> %s size chain" a.Obs.name b.Obs.name)
            a.Obs.size_after b.Obs.size_before;
          chain (b :: rest)
        | [ last ] ->
          Alcotest.(check (option int))
            "last pass exits at the iteration's exit size" last.Obs.size_after
            iter.Obs.size_after
        | [] -> ()
      in
      List.iter
        (fun (n : Obs.node) ->
          Alcotest.(check bool)
            (n.Obs.name ^ " measured") true
            (n.Obs.size_before <> None && n.Obs.size_after <> None
           && n.Obs.depth_before <> None && n.Obs.depth_after <> None))
        iter.Obs.children;
      chain iter.Obs.children;
      (* The engines actually reported work. *)
      Alcotest.(check bool)
        "gradient counters present" true
        (Obs.total trace "gradient.moves_tried" > 0);
      Alcotest.(check bool)
        "kernel counters present" true (Obs.total trace "kernel.trials" > 0)
    | l -> Alcotest.failf "expected 1 iteration span, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

let test_flow_disabled_obs_is_null () =
  (* The default path records nothing and still optimizes. *)
  let rng = Rng.create 607 in
  let aig = Helpers.random_xor_aig ~inputs:6 ~gates:25 ~outputs:3 rng in
  let optimized = Sbm_core.Flow.run (Sbm_core.Flow.Sbm Sbm_core.Flow.Low) aig in
  Helpers.assert_equiv_exhaustive ~msg:"typed flow run" aig optimized

let test_script_string_round_trip () =
  List.iter
    (fun script ->
      let s = Sbm_core.Flow.to_string script in
      match Sbm_core.Flow.of_string s with
      | Some script' ->
        Alcotest.(check string)
          (s ^ " round-trips") s
          (Sbm_core.Flow.to_string script')
      | None -> Alcotest.failf "of_string failed on %s" s)
    Sbm_core.Flow.all;
  Alcotest.(check bool) "unknown flow rejected" true
    (Sbm_core.Flow.of_string "resyn2" = None)

let suite =
  [
    Alcotest.test_case "null sink" `Quick test_null_sink;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "counter totals" `Quick test_counter_totals;
    Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
    Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "json gc and histograms" `Quick test_json_gc_and_histograms;
    Alcotest.test_case "percentile math" `Quick test_percentile_known_inputs;
    Alcotest.test_case "histograms group by name" `Quick test_histograms_group_by_name;
    Alcotest.test_case "gc deltas" `Quick test_gc_delta_captured;
    Alcotest.test_case "csv escaping round-trip" `Quick test_csv_escaping_round_trip;
    Alcotest.test_case "jsonl and csv" `Quick test_jsonl_and_csv;
    Alcotest.test_case "write by extension" `Quick test_write_by_extension;
    Alcotest.test_case "flow records pass spans" `Quick test_flow_records_pass_spans;
    Alcotest.test_case "flow with obs off" `Quick test_flow_disabled_obs_is_null;
    Alcotest.test_case "script strings" `Quick test_script_string_round_trip;
  ]
