(* Extensions of the Boolean-difference engine: overlapping
   partitions and functional filtering, plus stress over the
   structured benchmark generators. *)

module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng

let test_overlapping_partitions_sound () =
  let rng = Rng.create 501 in
  for _ = 1 to 5 do
    let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
    let original = Aig.copy aig in
    let config = { Sbm_core.Diff_resub.default_config with overlap = 0.4 } in
    let gain = Sbm_core.Diff_resub.optimize ~config aig in
    Aig.check aig;
    Alcotest.(check bool) "gain >= 0" true (gain >= 0);
    Helpers.assert_equiv_exhaustive ~msg:"overlapping diff" original aig
  done

let test_overlap_finds_at_least_as_much () =
  (* Overlap may only widen the candidate space; on a fixed seed, its
     gain is at least the distinct-partition gain most of the time.
     Run several seeds and require no catastrophic regression. *)
  let rng = Rng.create 502 in
  let wins = ref 0 in
  let total = 5 in
  for _ = 1 to total do
    let aig = Helpers.random_xor_aig ~inputs:8 ~gates:80 ~outputs:5 rng in
    let limits =
      { Sbm_partition.Partition.max_levels = 3; max_nodes = 20; max_leaves = 12 }
    in
    let g_plain =
      let copy = Aig.copy aig in
      Sbm_core.Diff_resub.optimize
        ~config:{ Sbm_core.Diff_resub.default_config with limits }
        copy
    in
    let g_overlap =
      let copy = Aig.copy aig in
      Sbm_core.Diff_resub.optimize
        ~config:{ Sbm_core.Diff_resub.default_config with limits; overlap = 0.5 }
        copy
    in
    if g_overlap >= g_plain then incr wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "overlap >= plain on most seeds (%d/%d)" !wins total)
    true
    (!wins >= total - 1)

let test_signature_filter_sound () =
  let rng = Rng.create 503 in
  for _ = 1 to 5 do
    let aig = Helpers.random_xor_aig ~inputs:8 ~gates:50 ~outputs:4 rng in
    let original = Aig.copy aig in
    let config =
      { Sbm_core.Diff_resub.default_config with
        prefilter = Some (Sbm_core.Prefilter.create_bank ()) }
    in
    ignore (Sbm_core.Diff_resub.optimize ~config aig);
    Helpers.assert_equiv_exhaustive ~msg:"filtered diff" original aig
  done

let test_filter_only_skips () =
  (* The filter must never enable a rewrite the unfiltered engine
     would reject — it can only skip pairs. Equivalence plus gain <=
     unfiltered gain would be flaky; instead check both runs are
     equivalent to the source. *)
  let rng = Rng.create 504 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:45 ~outputs:4 rng in
  List.iter
    (fun prefilter ->
      let copy = Aig.copy aig in
      let config = { Sbm_core.Diff_resub.default_config with prefilter } in
      ignore (Sbm_core.Diff_resub.optimize ~config copy);
      Helpers.assert_equiv_exhaustive ~msg:"filter soundness" aig copy)
    [ Some (Sbm_core.Prefilter.create_bank ()); None ]

let test_diff_on_structured () =
  (* The engine's target shape: arithmetic reconvergence. *)
  List.iter
    (fun (b, scale) ->
      let aig = Sbm_epfl.Epfl.generate ~scale b in
      let original = Aig.copy aig in
      ignore (Sbm_core.Diff_resub.optimize aig);
      Aig.check aig;
      match Sbm_cec.Cec.check original aig with
      | Sbm_cec.Cec.Equivalent -> ()
      | Sbm_cec.Cec.Counterexample _ ->
        Alcotest.failf "diff broke %s" (Sbm_epfl.Epfl.name b)
      | Sbm_cec.Cec.Unknown -> ())
    [ (Sbm_epfl.Epfl.Sin, 0.25); (Sbm_epfl.Epfl.Max, 0.125); (Sbm_epfl.Epfl.Square, 0.125) ]

let suite =
  [
    Alcotest.test_case "overlapping partitions sound" `Quick test_overlapping_partitions_sound;
    Alcotest.test_case "overlap widens search" `Quick test_overlap_finds_at_least_as_much;
    Alcotest.test_case "signature filter sound" `Quick test_signature_filter_sound;
    Alcotest.test_case "filter only skips" `Quick test_filter_only_skips;
    Alcotest.test_case "diff on structured circuits" `Slow test_diff_on_structured;
  ]

let test_depth_objective () =
  let rng = Rng.create 505 in
  for _ = 1 to 4 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:45 ~outputs:4 rng in
    let original = Aig.copy aig in
    let depth_before = Aig.depth aig in
    let config = { Sbm_core.Diff_resub.default_config with objective = `Depth } in
    ignore (Sbm_core.Diff_resub.optimize ~config aig);
    Aig.check aig;
    Helpers.assert_equiv_exhaustive ~msg:"depth objective" original aig;
    Alcotest.(check bool)
      (Printf.sprintf "depth does not grow (%d -> %d)" depth_before (Aig.depth aig))
      true
      (Aig.depth aig <= depth_before)
  done

let suite = suite @ [ Alcotest.test_case "depth objective" `Quick test_depth_objective ]
