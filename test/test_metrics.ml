(* Metrics registry, live telemetry and exporters: registration
   semantics (duplicates are hard errors, kinds are enforced), worker
   capture/replay, Obs.bump feeding both span totals and the registry,
   catalog coverage of a real flow run, the status-file atomic-rename
   protocol under a concurrent reader, the Chrome trace exporter's
   structural invariants, the DESIGN.md drift gate, inspect's
   delta/--abs timestamp modes, and the non-TTY heartbeat throttle. *)

module Aig = Sbm_aig.Aig
module Obs = Sbm_obs
module M = Sbm_obs.Metrics
module Status = Sbm_obs.Status
module FR = Sbm_obs.Flight_recorder
module Wd = Sbm_obs.Watchdog
module Json = Sbm_report.Json
module Chrome = Sbm_report.Chrome
module Catalog = Sbm_report.Catalog
module Live = Sbm_report.Live
module Inspect = Sbm_report.Inspect
module Rng = Sbm_util.Rng

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let replace_first hay needle by =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then hay
    else if String.sub hay i nn = needle then
      String.sub hay 0 i ^ by ^ String.sub hay (i + nn) (nh - i - nn)
    else scan (i + 1)
  in
  scan 0

(* Registration is process-global and once-only, so test handles live
   at module initialization like real call sites. *)
let c_basic = M.counter ~engine:"test" ~unit_:"widgets" "test.basic" "basic counter"
let g_basic = M.gauge ~engine:"test" "test.gauge" "basic gauge"
let h_basic = M.histogram ~engine:"test" ~unit_:"ms" "test.hist" "basic histogram"
let c_capture = M.counter ~engine:"test" "test.capture" "capture/replay counter"
let c_bump = M.counter ~engine:"test" "test.bump" "bump counter"
let c_status = M.counter ~engine:"test" "test.status" "status hammer counter"

(* --- registry semantics --- *)

let test_registration () =
  Alcotest.check_raises "duplicate name is a hard error"
    (Invalid_argument "Sbm_obs.Metrics: duplicate registration of \"test.basic\"")
    (fun () -> ignore (M.counter "test.basic" "again"));
  Alcotest.(check string) "name" "test.basic" (M.name c_basic);
  Alcotest.(check string) "unit" "widgets" (M.unit_ c_basic);
  Alcotest.(check string) "engine" "test" (M.engine c_basic);
  Alcotest.(check string) "kind string" "counter"
    (M.kind_to_string (M.kind c_basic));
  Alcotest.(check bool) "kind round-trip" true
    (M.kind_of_string "histogram" = Some M.Histogram);
  Alcotest.(check bool) "find hit" true (M.find "test.gauge" = Some g_basic);
  Alcotest.(check bool) "find miss" true (M.find "test.absent" = None);
  let names = List.map M.name (M.all ()) in
  Alcotest.(check bool) "all is sorted" true
    (names = List.sort compare names);
  Alcotest.(check bool) "all contains handles" true
    (List.mem "test.basic" names && List.mem "test.hist" names)

let test_kinds_enforced () =
  let raises f =
    match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "add on gauge raises" true
    (raises (fun () -> M.add g_basic 1));
  Alcotest.(check bool) "set on counter raises" true
    (raises (fun () -> M.set c_basic 1));
  Alcotest.(check bool) "observe on counter raises" true
    (raises (fun () -> M.observe c_basic 1))

let test_values () =
  let v0 = M.value c_basic in
  M.add c_basic 5;
  M.incr c_basic;
  Alcotest.(check int) "counter accumulates" (v0 + 6) (M.value c_basic);
  M.set g_basic 42;
  Alcotest.(check int) "gauge holds last set" 42 (M.value g_basic);
  M.set g_basic 7;
  Alcotest.(check int) "gauge overwrites" 7 (M.value g_basic);
  let h0 = (M.hist h_basic).M.h_count in
  M.observe h_basic 10;
  M.observe h_basic 3;
  M.observe h_basic 20;
  let h = M.hist h_basic in
  Alcotest.(check int) "hist count" (h0 + 3) h.M.h_count;
  Alcotest.(check bool) "hist sum/min/max" true
    (h.M.h_sum >= 33 && h.M.h_min <= 3 && h.M.h_max >= 20);
  (* The process gauges sample on read and never go negative. *)
  (match M.find "process.heap_words" with
  | None -> Alcotest.fail "process.heap_words not registered"
  | Some g -> Alcotest.(check bool) "heap gauge samples" true (M.value g > 0))

let test_capture_replay () =
  let v0 = M.value c_capture in
  let (), deltas =
    M.capture (fun () ->
        M.add c_capture 5;
        M.add c_capture 2)
  in
  Alcotest.(check int) "global cell untouched during capture" v0
    (M.value c_capture);
  Alcotest.(check (list (pair string int)))
    "deltas collect the shard" [ ("test.capture", 7) ] deltas;
  M.replay deltas;
  Alcotest.(check int) "replay lands on the global cell" (v0 + 7)
    (M.value c_capture);
  (* Unknown names are ignored, not errors. *)
  M.replay [ ("test.never-registered", 3) ]

(* --- Obs.bump: one call, two sinks --- *)

let test_bump_dual_sink () =
  let v0 = M.value c_bump in
  let trace = Obs.create () in
  let root = Obs.root trace "bump-test" in
  Obs.bump root c_bump 3;
  Obs.close root;
  Alcotest.(check int) "registry side" (v0 + 3) (M.value c_bump);
  Alcotest.(check (option int)) "span-totals side" (Some 3)
    (List.assoc_opt "test.bump" (Obs.totals trace));
  (* On the Noop span only the registry half fires — untraced runs
     still feed the dashboard. *)
  Obs.bump Obs.null c_bump 2;
  Alcotest.(check int) "noop span still bumps registry" (v0 + 5)
    (M.value c_bump)

(* --- catalog coverage: a real flow's counters are all registered --- *)

let test_flow_counters_registered () =
  let rng = Rng.create 7 in
  let aig = Helpers.random_xor_aig ~inputs:6 ~gates:40 ~outputs:3 rng in
  let trace = Obs.create () in
  let root = Obs.root ~size:(Aig.size aig) trace "cover" in
  let optimized =
    Sbm_core.Flow.run ~obs:root (Sbm_core.Flow.Sbm Sbm_core.Flow.Low) aig
  in
  Obs.close ~size:(Aig.size optimized) root;
  List.iter
    (fun (name, _) ->
      match M.find name with
      | None -> Alcotest.failf "counter %s not in the metrics registry" name
      | Some m ->
        Alcotest.(check string)
          (name ^ " is a counter") "counter"
          (M.kind_to_string (M.kind m)))
    (Obs.totals trace)

(* --- status file: atomic rename means no torn reads --- *)

let test_status_atomicity () =
  let path = Filename.temp_file "sbm_status" ".jsonl" in
  Status.start ~interval_ms:20. path;
  Alcotest.(check bool) "sampler active" true (Status.active ());
  Alcotest.check_raises "second start refused"
    (Invalid_argument "Sbm_obs.Status.start: sampler already running")
    (fun () -> Status.start path);
  let parse_all src =
    String.split_on_char '\n' src
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map Json.parse
  in
  Fun.protect ~finally:Status.stop (fun () ->
      (* Hammer the file from this domain while the sampler rewrites
         it: every observed state must parse line-by-line. *)
      for i = 1 to 100 do
        M.add c_status i;
        (match In_channel.with_open_bin path In_channel.input_all with
        | src -> ignore (parse_all src)
        | exception Sys_error _ -> Alcotest.fail "status file vanished");
        Unix.sleepf 0.001
      done);
  (* stop() wrote the final sample. *)
  let views =
    match Live.load path with
    | Ok v -> v
    | Error msg -> Alcotest.fail ("load after stop: " ^ msg)
  in
  let last = List.nth views (List.length views - 1) in
  Alcotest.(check bool) "final sample is marked finished" true last.Live.finished;
  let seqs = List.map (fun v -> v.Live.seq) views in
  Alcotest.(check bool) "seq strictly increasing" true
    (List.sort_uniq compare seqs = seqs);
  Alcotest.(check bool) "hammered counter visible in final sample" true
    (match List.assoc_opt "test.status" last.Live.counters with
    | Some v -> v >= 5050.0 (* sum 1..100; earlier suites may add more *)
    | None -> false);
  Alcotest.(check bool) "sampler stopped" false (Status.active ());
  Sys.remove path

(* --- Chrome exporter --- *)

let chrome_fixture =
  {|{"version":2,"label":"t","spans":[
      {"name":"root","wall_ms":10.0,"size_before":100,
       "counters":{"gain":3},
       "children":[{"name":"a","wall_ms":4.0,"children":[]},
                   {"name":"b","wall_ms":5.0,"children":[]}]}],
     "samples":[
      {"seq":0,"t_ms":1.0,"pass":"root","counters":{"sat.conflicts":1},
       "gauges":{"process.heap_words":100},"verdicts":0,"abort":false,"finished":false},
      {"seq":1,"t_ms":2.0,"pass":"root>a","counters":{"sat.conflicts":5},
       "gauges":{"process.heap_words":90},"verdicts":0,"abort":false,"finished":true}],
     "events":[
      {"seq":0,"t_ms":1.5,"severity":"info","engine":"sat","id":"restart",
       "message":"storm","metrics":{"k":2}}],
     "verdicts":[
      {"rule":"pass-deadline","detail":"slow","action":"note","t_ms":3.0}]}|}

let test_chrome_export () =
  let doc =
    match Chrome.convert chrome_fixture with
    | Ok doc -> doc
    | Error msg -> Alcotest.fail msg
  in
  let j = Json.parse doc in
  let events = Json.to_list (Json.member "traceEvents" j) in
  let ph e = Option.value ~default:"" (Json.to_str (Json.member "ph" e)) in
  let name e = Option.value ~default:"" (Json.to_str (Json.member "name" e)) in
  let ts e = Option.value ~default:nan (Json.to_float (Json.member "ts" e)) in
  let count p = List.length (List.filter (fun e -> ph e = p) events) in
  Alcotest.(check int) "one B per span" 3 (count "B");
  Alcotest.(check int) "B/E balanced" (count "B") (count "E");
  (* Durations nest: depth never goes negative and ends at zero. *)
  let depth =
    List.fold_left
      (fun d e ->
        let d = d + (match ph e with "B" -> 1 | "E" -> -1 | _ -> 0) in
        Alcotest.(check bool) "E never precedes its B" true (d >= 0);
        d)
      0 events
  in
  Alcotest.(check int) "all spans closed" 0 depth;
  (* Children are laid out sequentially from the parent start. *)
  let b_of n =
    List.find (fun e -> ph e = "B" && name e = n) events
  in
  Alcotest.(check (float 0.001)) "root starts at 0" 0.0 (ts (b_of "root"));
  Alcotest.(check (float 0.001)) "first child at parent start" 0.0 (ts (b_of "a"));
  Alcotest.(check (float 0.001)) "second child after first" 4000.0 (ts (b_of "b"));
  (* Counter series: one C event per sample, non-decreasing values in
     timestamp order for a monotonic counter. *)
  let series =
    List.filter (fun e -> ph e = "C" && name e = "sat.conflicts") events
  in
  Alcotest.(check int) "one C per sample" 2 (List.length series);
  let values =
    List.map
      (fun e ->
        match Json.member "args" e with
        | Some a -> Option.value ~default:nan (Json.to_float (Json.member "value" a))
        | None -> nan)
      (List.sort (fun a b -> Float.compare (ts a) (ts b)) series)
  in
  Alcotest.(check bool) "counter series non-decreasing" true
    (values = List.sort Float.compare values);
  (* Instants from the flight recorder and the watchdog. *)
  Alcotest.(check bool) "recorder instant present" true
    (List.exists (fun e -> ph e = "i" && name e = "sat:restart") events);
  Alcotest.(check bool) "watchdog instant present" true
    (List.exists (fun e -> ph e = "i" && name e = "watchdog:pass-deadline") events)

let test_chrome_rejects () =
  (match Chrome.convert "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Chrome.convert "{\"version\":2}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "span-less document accepted"

(* --- catalog drift gate --- *)

let doc_of_registry () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "| metric | kind | unit | engine | description |\n";
  Buffer.add_string b "| --- | --- | --- | --- | --- |\n";
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "| `%s` | %s | %s | %s | %s |\n" (M.name m)
           (M.kind_to_string (M.kind m))
           (M.unit_ m) (M.engine m) (M.description m)))
    (M.all ());
  Buffer.contents b

let test_catalog_check () =
  let doc = doc_of_registry () in
  (match Catalog.check doc with
  | Ok n -> Alcotest.(check int) "all metrics match" (List.length (M.all ())) n
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  (* A missing row is drift. *)
  let without =
    String.split_on_char '\n' doc
    |> List.filter (fun l ->
           not (has_substring l "`test.basic`"))
    |> String.concat "\n"
  in
  (match Catalog.check without with
  | Error msgs ->
    Alcotest.(check bool) "missing row reported" true
      (List.exists (fun m -> has_substring m "test.basic") msgs)
  | Ok _ -> Alcotest.fail "missing row not detected");
  (* A documented-but-unregistered metric is drift in the other
     direction; so is a kind mismatch. *)
  (match Catalog.check (doc ^ "| `test.phantom` | counter | count | test | x |\n") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "phantom row not detected");
  (match
     Catalog.check
       (replace_first doc "| `test.basic` | counter |"
          "| `test.basic` | gauge |")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kind mismatch not detected");
  match Catalog.check "no table here" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty document accepted"

(* --- inspect: delta timestamps by default, --abs opts into ns --- *)

let inspect_fixture =
  {|{"version":1,"reason":"test","pid":1,"elapsed_ms":1500.0,"t0_ns":5000000000,
     "span_stack":[{"name":"pass","opened_ms":100.0}],
     "watchdog":[{"rule":"r","detail":"d","action":"note","t_ms":200.0}],
     "counters":{"x":1},"recorded":1,"dropped":0,
     "events":[{"seq":0,"t_ms":123.456,"t_ns":5123456000,"severity":"info",
                "engine":"sat","id":"e","message":"m","metrics":{}}]}|}

let render ?abs dump = Fmt.str "%a" (Inspect.pp ?abs ~last:5) dump

let test_inspect_timestamps () =
  let dump =
    match Inspect.of_json inspect_fixture with
    | Ok d -> d
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "t0_ns parsed" true (dump.Inspect.t0_ns = Some 5e9);
  (match dump.Inspect.events with
  | [ e ] -> Alcotest.(check bool) "event t_ns parsed" true (e.Inspect.t_ns = Some 5.123456e9)
  | _ -> Alcotest.fail "expected one event");
  let plain = render dump in
  Alcotest.(check bool) "default prints deltas" true
    (has_substring plain "+123.5 ms");
  Alcotest.(check bool) "default has no ns column" false
    (has_substring plain "ns]");
  let abs = render ~abs:true dump in
  Alcotest.(check bool) "--abs prints the event's own clock" true
    (has_substring abs "5123456000 ns]");
  Alcotest.(check bool) "--abs reconstructs t0+delta for verdicts" true
    (has_substring abs "5200000000 ns]");
  (* Round trip via the canonical emitter preserves the clock. *)
  match Inspect.of_json (Inspect.to_json dump) with
  | Error msg -> Alcotest.fail ("round trip: " ^ msg)
  | Ok d2 ->
    Alcotest.(check bool) "t0_ns round-trips" true (d2.Inspect.t0_ns = dump.Inspect.t0_ns);
    Alcotest.(check bool) "t_ns round-trips" true
      ((List.hd d2.Inspect.events).Inspect.t_ns
      = (List.hd dump.Inspect.events).Inspect.t_ns)

(* Dumps that predate t0_ns render deltas even under --abs. *)
let test_inspect_abs_fallback () =
  let legacy =
    {|{"version":1,"reason":"r","pid":1,"elapsed_ms":10.0,"span_stack":[],
       "watchdog":[],"counters":{},"recorded":1,"dropped":0,
       "events":[{"seq":0,"t_ms":7.0,"severity":"info","engine":"e","id":"",
                  "message":"m","metrics":{}}]}|}
  in
  match Inspect.of_json legacy with
  | Error msg -> Alcotest.fail msg
  | Ok dump ->
    Alcotest.(check bool) "no t0_ns" true (dump.Inspect.t0_ns = None);
    let abs = render ~abs:true dump in
    Alcotest.(check bool) "falls back to deltas" true
      (has_substring abs "+7.0 ms")

(* --- heartbeat throttle: piped stderr beats once per pass path --- *)

let test_heartbeat_throttle () =
  let finally () =
    Wd.force_tty := None;
    Wd.disarm ();
    FR.disable ()
  in
  Fun.protect ~finally (fun () ->
      FR.enable ();
      (* interval 0: always due, so the pass-path condition is the only
         throttle under test. *)
      let config =
        { Wd.default_config with Wd.heartbeat_ms = Some 0.0 }
      in
      Wd.force_tty := Some false;
      Wd.arm config;
      Alcotest.(check int) "armed fresh" 0 (Wd.beats ());
      Wd.pass_started "alpha";
      Wd.poll ();
      Wd.poll ();
      Wd.poll ();
      Alcotest.(check int) "piped: one beat per pass path" 1 (Wd.beats ());
      Wd.pass_started "beta";
      Wd.poll ();
      Wd.poll ();
      Alcotest.(check int) "piped: new pass, one more beat" 2 (Wd.beats ());
      Wd.pass_ended "beta";
      Wd.poll ();
      Alcotest.(check int) "piped: popping back counts as a change" 3 (Wd.beats ());
      (* A TTY pulses on every due interval regardless of the pass. *)
      Wd.force_tty := Some true;
      Wd.poll ();
      Wd.poll ();
      Alcotest.(check int) "tty: every due poll beats" 5 (Wd.beats ());
      Wd.pass_ended "alpha")

(* --- live dashboard parsing/rendering --- *)

let test_live_render () =
  let path = Filename.temp_file "sbm_live" ".jsonl" in
  Out_channel.with_open_bin path (fun oc ->
      output_string oc
        ({|{"seq":0,"t_ms":1000.0,"pass":"flow>mspf","counters":{"mspf.computed":100},"gauges":{"process.heap_words":5},"verdicts":0,"abort":false,"finished":false}|}
        ^ "\n"
        ^ {|{"seq":1,"t_ms":2000.0,"pass":"flow>mspf","counters":{"mspf.computed":300},"gauges":{"process.heap_words":6},"verdicts":1,"abort":false,"finished":true}|}
        ^ "\n"));
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      match Live.load path with
      | Error msg -> Alcotest.fail msg
      | Ok views ->
        Alcotest.(check int) "two samples" 2 (List.length views);
        let prev = List.nth views 0 and last = List.nth views 1 in
        let screen = Live.render ~prev last in
        Alcotest.(check bool) "shows the pass path" true
          (has_substring screen "flow>mspf");
        Alcotest.(check bool) "shows the finished state" true
          (has_substring screen "finished");
        (* 200 counts over 1s. *)
        Alcotest.(check bool) "rate from the sample delta" true
          (has_substring screen "200.0/s");
        Alcotest.(check bool) "gauges listed" true
          (has_substring screen "process.heap_words"))

let suite =
  [
    Alcotest.test_case "registration + metadata" `Quick test_registration;
    Alcotest.test_case "kind enforcement" `Quick test_kinds_enforced;
    Alcotest.test_case "counter/gauge/histogram values" `Quick test_values;
    Alcotest.test_case "capture/replay shards" `Quick test_capture_replay;
    Alcotest.test_case "Obs.bump feeds span and registry" `Quick test_bump_dual_sink;
    Alcotest.test_case "flow counters all registered" `Slow test_flow_counters_registered;
    Alcotest.test_case "status file atomicity" `Quick test_status_atomicity;
    Alcotest.test_case "chrome exporter invariants" `Quick test_chrome_export;
    Alcotest.test_case "chrome exporter rejects junk" `Quick test_chrome_rejects;
    Alcotest.test_case "catalog drift gate" `Quick test_catalog_check;
    Alcotest.test_case "inspect delta/abs timestamps" `Quick test_inspect_timestamps;
    Alcotest.test_case "inspect --abs legacy fallback" `Quick test_inspect_abs_fallback;
    Alcotest.test_case "heartbeat throttle off-TTY" `Quick test_heartbeat_throttle;
    Alcotest.test_case "live dashboard render" `Quick test_live_render;
  ]
