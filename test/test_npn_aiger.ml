(* NPN canonization and binary AIGER. *)

module Tt = Sbm_truthtable.Tt
module Npn = Sbm_truthtable.Npn
module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng

let gen_tt =
  QCheck2.Gen.(
    pair (int_range 1 4) (int_bound 1_000_000)
    |> map (fun (n, seed) -> Tt.random n (Rng.create seed)))

let test_canon_is_invariant =
  Helpers.qcheck_case "transforms keep the class"
    QCheck2.Gen.(triple gen_tt (int_bound 1_000_000) (int_bound 100))
    (fun (tt, seed, neg) ->
      let n = Tt.num_vars tt in
      let rng = Rng.create seed in
      let keyed = Array.init n (fun i -> (Rng.bits rng, i)) in
      Array.sort compare keyed;
      let t =
        {
          Npn.perm = Array.map snd keyed;
          input_neg = neg land ((1 lsl n) - 1);
          output_neg = neg land 64 <> 0;
        }
      in
      let transformed = Npn.apply tt t in
      Tt.equal (fst (Npn.canonize tt)) (fst (Npn.canonize transformed)))

let test_canon_transform_consistent =
  Helpers.qcheck_case "returned transform produces the canon" gen_tt (fun tt ->
      let canon, t = Npn.canonize tt in
      Tt.equal canon (Npn.apply tt t))

let test_transform_inverse =
  Helpers.qcheck_case "inverse undoes apply"
    QCheck2.Gen.(pair gen_tt (int_bound 1_000_000))
    (fun (tt, seed) ->
      let n = Tt.num_vars tt in
      let rng = Rng.create seed in
      let keyed = Array.init n (fun i -> (Rng.bits rng, i)) in
      Array.sort compare keyed;
      let t =
        {
          Npn.perm = Array.map snd keyed;
          input_neg = Rng.int rng (1 lsl n);
          output_neg = Rng.bool rng;
        }
      in
      Tt.equal tt (Npn.apply (Npn.apply tt t) (Npn.inverse t)))

let test_npn_class_count () =
  (* The 2-input functions form 4 NPN classes: const, projection,
     AND-like, XOR-like. *)
  let classes = Hashtbl.create 16 in
  for f = 0 to 15 do
    let tt = Tt.of_bits 2 (fun m -> (f lsr m) land 1 = 1) in
    Hashtbl.replace classes (fst (Npn.canonize tt)) ()
  done;
  Alcotest.(check int) "4 classes of 2-input functions" 4 (Hashtbl.length classes)

let test_equivalent () =
  let and2 = Tt.band (Tt.var 2 0) (Tt.var 2 1) in
  let nor2 = Tt.bnor (Tt.var 2 0) (Tt.var 2 1) in
  let xor2 = Tt.bxor (Tt.var 2 0) (Tt.var 2 1) in
  Alcotest.(check bool) "and ~ nor" true (Npn.equivalent and2 nor2);
  Alcotest.(check bool) "and !~ xor" false (Npn.equivalent and2 xor2)

(* --- binary AIGER --- *)

let test_binary_roundtrip () =
  let rng = Rng.create 411 in
  for _ = 1 to 8 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
    let data = Sbm_aig.Aiger.write_binary aig in
    let back = Sbm_aig.Aiger.read_binary data in
    Aig.check back;
    Helpers.assert_equiv_exhaustive ~msg:"binary aiger roundtrip" aig back
  done

let test_binary_vs_ascii () =
  let rng = Rng.create 412 in
  let aig = Helpers.random_xor_aig ~inputs:6 ~gates:30 ~outputs:3 rng in
  let from_ascii = Sbm_aig.Aiger.read (Sbm_aig.Aiger.write aig) in
  let from_binary = Sbm_aig.Aiger.read_binary (Sbm_aig.Aiger.write_binary aig) in
  Helpers.assert_equiv_exhaustive ~msg:"formats agree" from_ascii from_binary

let test_file_format_dispatch () =
  let rng = Rng.create 413 in
  let aig = Helpers.random_xor_aig ~inputs:5 ~gates:20 ~outputs:2 rng in
  let ascii_path = Filename.temp_file "sbm" ".aag" in
  let binary_path = Filename.temp_file "sbm" ".aig" in
  Sbm_aig.Aiger.write_file aig ascii_path;
  let oc = open_out_bin binary_path in
  output_string oc (Sbm_aig.Aiger.write_binary aig);
  close_out oc;
  let a = Sbm_aig.Aiger.read_file ascii_path in
  let b = Sbm_aig.Aiger.read_file binary_path in
  Sys.remove ascii_path;
  Sys.remove binary_path;
  Helpers.assert_equiv_exhaustive ~msg:"dispatch" a b

(* The readers stream files through a 64 KiB chunk buffer; a network
   whose serialization spans several chunks exercises refills landing
   mid-line (ASCII) and mid-varint (binary). Structural digests, not
   exhaustive simulation: the network is too wide for truth tables. *)
let test_streaming_multichunk () =
  (* A 40k-AND chain: every node feeds the single output, so the whole
     network serializes (a random AIG's reachable cone is tiny). *)
  let aig = Aig.create () in
  let ins = Array.init 16 (fun _ -> Aig.add_input aig) in
  let acc = ref (Aig.band aig ins.(0) ins.(1)) in
  for i = 0 to 39_999 do
    acc := Aig.band aig (Aig.lnot !acc) ins.(i mod 16)
  done;
  ignore (Aig.add_output aig !acc);
  let check_format write suffix reader_name =
    let path = Filename.temp_file "sbm_stream" suffix in
    let data = write aig in
    let oc = open_out_bin path in
    output_string oc data;
    close_out oc;
    Alcotest.(check bool)
      (Printf.sprintf "%s: file spans chunks (%d bytes)" reader_name
         (String.length data))
      true
      (String.length data > 2 * 65536);
    let back = Sbm_aig.Aiger.read_file path in
    Sys.remove path;
    Aig.check back;
    (* The reader renumbers, so compare canonical digests. *)
    Alcotest.(check int64)
      (reader_name ^ ": digest survives the round trip")
      (Aig.fold_hash aig) (Aig.fold_hash back)
  in
  check_format Sbm_aig.Aiger.write ".aag" "ascii";
  check_format Sbm_aig.Aiger.write_binary ".aig" "binary"

(* --- LUT mapping modes --- *)

let test_delay_mode_not_deeper () =
  let rng = Rng.create 414 in
  for _ = 1 to 5 do
    let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
    let area = Sbm_lutmap.Lut_map.map ~mode:`Area aig in
    let delay = Sbm_lutmap.Lut_map.map ~mode:`Delay aig in
    Sbm_lutmap.Lut_map.check aig delay;
    Alcotest.(check bool) "delay mode at most area-mode depth" true
      (delay.Sbm_lutmap.Lut_map.depth <= area.Sbm_lutmap.Lut_map.depth)
  done

let suite =
  [
    test_canon_is_invariant;
    test_canon_transform_consistent;
    test_transform_inverse;
    Alcotest.test_case "npn class count" `Quick test_npn_class_count;
    Alcotest.test_case "npn equivalent" `Quick test_equivalent;
    Alcotest.test_case "binary aiger roundtrip" `Quick test_binary_roundtrip;
    Alcotest.test_case "binary vs ascii" `Quick test_binary_vs_ascii;
    Alcotest.test_case "file format dispatch" `Quick test_file_format_dispatch;
    Alcotest.test_case "streaming reader spans chunks" `Quick
      test_streaming_multichunk;
    Alcotest.test_case "delay mapping mode" `Quick test_delay_mode_not_deeper;
  ]
