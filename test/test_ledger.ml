(* The per-pass resource ledger: frame bookkeeping and nested-path
   construction, the stable JSON projection, the JSONL history
   round-trip (including torn-final-line tolerance, which also covers
   the `sbm top` reader), per-pass diff verdict classification with
   its strict alignment contract, and the headline determinism
   guarantee — the stable projection of every per-pass row must be
   byte-identical between jobs=1 and jobs=4. *)

module Aig = Sbm_aig.Aig
module Epfl = Sbm_epfl.Epfl
module Jobs = Sbm_par.Jobs
module Obs = Sbm_obs
module Ledger = Sbm_obs.Ledger
module Snapshot = Sbm_obs.Snapshot
module Report = Sbm_report.Report
module History = Sbm_report.History
module Live = Sbm_report.Live
module Json = Sbm_report.Json

let with_ledger f =
  Ledger.enable ();
  Fun.protect ~finally:Ledger.disable f

let with_jobs n f =
  Jobs.set n;
  Fun.protect ~finally:(fun () -> Jobs.set 1) f

let entry ?(counters = []) ?(wall_ms = 100.0) ?(passes = []) bench size depth
    luts levels =
  {
    Snapshot.bench;
    size_before = -1;
    qor = { Snapshot.size; depth; luts; levels };
    wall_ms;
    counters;
    passes;
  }

let row ?(counters = []) ?(size = 100) ?(luts = -1) ?(levels = -1)
    ?(wall_ns = 1_000_000L) ?(fingerprint = 0L) path index =
  {
    Ledger.path;
    index;
    size_before = size + 10;
    size_after = size;
    depth_before = 10;
    depth_after = 9;
    luts;
    levels;
    fingerprint;
    wall_ns;
    counters;
    minor_words = 1234.0;
    major_words = 56.0;
    heap_words = 100_000;
    unique_load_pct = 40;
    cache_load_pct = 25;
    dead_node_pct = 3;
  }

(* --- frame bookkeeping --- *)

let test_ledger_paths () =
  with_ledger (fun () ->
      let close () =
        Ledger.pass_ended ~size_before:10 ~size_after:9 ~depth_before:4
          ~depth_after:4 ~luts:(-1) ~levels:(-1) ~dead_node_pct:0 ()
      in
      Ledger.pass_started "iteration-1";
      Ledger.pass_started "mspf";
      close ();
      Ledger.pass_started "rewrite";
      close ();
      close ();
      let rows = Ledger.rows () in
      Alcotest.(check (list string))
        "nested slash-joined paths, completion order"
        [ "iteration-1/mspf"; "iteration-1/rewrite"; "iteration-1" ]
        (List.map (fun (r : Ledger.row) -> r.Ledger.path) rows);
      Alcotest.(check (list int))
        "indices follow completion order" [ 0; 1; 2 ]
        (List.map (fun (r : Ledger.row) -> r.Ledger.index) rows);
      (* enable resets. *)
      Ledger.enable ();
      Alcotest.(check int) "enable clears" 0 (List.length (Ledger.rows ())));
  (* While disabled the ledger records nothing. *)
  Ledger.pass_started "stray";
  Ledger.pass_ended ~size_before:1 ~size_after:1 ~depth_before:1 ~depth_after:1
    ~luts:(-1) ~levels:(-1) ~dead_node_pct:0 ();
  Alcotest.(check bool) "disabled is inert" true (Ledger.rows () = [])

let test_stable_projection () =
  let r = row ~counters:[ ("bdd.cache_hits", 7) ] "mspf" 0 in
  let full = Json.parse (Ledger.row_to_json r) in
  let stable = Json.parse (Ledger.row_to_json ~stable:true r) in
  let has j key = Json.member key j <> None in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in full row") true (has full key);
      Alcotest.(check bool)
        (key ^ " omitted from stable projection")
        false (has stable key))
    [ "wall_ns"; "minor_words"; "major_words"; "heap_words" ];
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " survives projection") true (has stable key))
    [
      "path"; "index"; "size_before"; "size_after"; "counters";
      "unique_load_pct"; "cache_load_pct"; "dead_node_pct";
    ]

(* --- history JSONL round-trip --- *)

let test_history_round_trip () =
  let passes =
    [ row ~counters:[ ("gain", 30) ] "baseline" 0; row "iteration-1" 1 ]
  in
  let snapshot =
    Snapshot.make ~label:"flow=sbm-low" ~seed:7
      [ entry ~counters:[ ("gain", 30) ] ~passes "ctrl" 52 10 20 3 ]
  in
  let r1 =
    { History.t = 1754000000.0; commit = "abc123def"; flow = "sbm-low";
      jobs = 1; snapshot }
  in
  let r2 = { r1 with History.t = 1754100000.0; commit = "fedcba987"; jobs = 4 } in
  let path = Filename.temp_file "sbm_ledger" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match History.append_run ~path r1 with
      | Error msg -> Alcotest.failf "append failed: %s" msg
      | Ok () -> ());
      (match History.append_run ~path r2 with
      | Error msg -> Alcotest.failf "append failed: %s" msg
      | Ok () -> ());
      (* A run killed mid-append leaves a torn final line; readers must
         keep the complete records. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"schema\":1,\"t\":175420";
      close_out oc;
      match History.load path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok runs ->
        Alcotest.(check int) "torn line skipped, two records" 2
          (List.length runs);
        (match runs with
        | [ a; b ] ->
          Alcotest.(check string) "commit" "abc123def" a.History.commit;
          Alcotest.(check int) "jobs" 4 b.History.jobs;
          Alcotest.(check bool) "snapshot round-trips with passes" true
            (a.History.snapshot = snapshot)
        | _ -> Alcotest.fail "unreachable");
        (* The trend table renders and flags nothing on identical runs. *)
        let t = History.table ~metric:"size" runs in
        Alcotest.(check bool) "table mentions the bench" true
          (String.length t > 0)
        ;
        ignore (History.table ~bench:"ctrl" ~metric:"wall_ms" runs))

(* --- sbm top reader: torn final line --- *)

let test_live_torn_line () =
  let path = Filename.temp_file "sbm_status" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "{\"seq\":0,\"t_ms\":10.0,\"pass\":\"mspf\",\"counters\":{\"a\":1}}\n";
      output_string oc
        "{\"seq\":1,\"t_ms\":20.0,\"pass\":\"mspf\",\"finished\":true}\n";
      (* A truncated final line, as left by a killed writer. *)
      output_string oc "{\"seq\":2,\"t_ms\":30.0,\"pa";
      close_out oc;
      match Live.load path with
      | Error msg -> Alcotest.failf "torn line crashed the reader: %s" msg
      | Ok views ->
        Alcotest.(check int) "complete samples kept" 2 (List.length views);
        let last = List.nth views 1 in
        Alcotest.(check int) "last complete sample" 1 last.Live.seq;
        Alcotest.(check bool) "finished flag read" true last.Live.finished)

(* --- per-pass diff classification --- *)

let snap_with benches = Snapshot.make benches

let test_per_pass_verdicts () =
  let old_passes =
    [ row ~size:100 "baseline" 0;
      row ~size:90 ~counters:[ ("bdd.cache_hits", 100) ] "iteration-1/mspf" 1 ]
  in
  let new_ok = [ row ~size:100 "baseline" 0; row ~size:90 "iteration-1/mspf" 1 ] in
  let new_bad =
    [ row ~size:100 "baseline" 0;
      row ~size:99 ~counters:[ ("bdd.cache_hits", 160) ] "iteration-1/mspf" 1 ]
  in
  let old_snap = snap_with [ entry ~passes:old_passes "ctrl" 90 9 20 3 ] in
  (* Aligned and identical: Unchanged. *)
  let d =
    Report.diff_passes old_snap
      (snap_with [ entry ~passes:new_ok "ctrl" 90 9 20 3 ])
  in
  Alcotest.(check bool) "identical passes unchanged" true
    (d.Report.verdict = Report.Unchanged);
  Alcotest.(check int) "clean exit" 0 (Report.passes_exit_code d);
  (* A size regression inside one pass is localized to that pass and
     carries its counter deltas. *)
  let d =
    Report.diff_passes old_snap
      (snap_with [ entry ~passes:new_bad "ctrl" 99 9 20 3 ])
  in
  Alcotest.(check bool) "overall regressed" true
    (d.Report.verdict = Report.Regressed);
  (match d.Report.benches with
  | [ b ] ->
    let bad =
      List.find (fun (p : Report.pass_row) -> p.Report.verdict = Report.Regressed)
        b.Report.rows
    in
    Alcotest.(check string) "regressing pass named" "iteration-1/mspf"
      bad.Report.path;
    Alcotest.(check (list (pair string (pair int int))))
      "per-pass counter delta surfaces"
      [ ("bdd.cache_hits", (100, 160)) ]
      (List.map
         (fun (c : Report.counter_delta) ->
           (c.Report.counter, (c.Report.old_count, c.Report.new_count)))
         bad.Report.counter_deltas);
    let baseline =
      List.find (fun (p : Report.pass_row) -> p.Report.path = "baseline")
        b.Report.rows
    in
    Alcotest.(check bool) "untouched pass unchanged" true
      (baseline.Report.verdict = Report.Unchanged)
  | l -> Alcotest.failf "expected 1 bench, got %d" (List.length l));
  Alcotest.(check int) "regression gates" 1 (Report.passes_exit_code d);
  ignore (Fmt.str "%a" Report.pp_passes d);
  ignore (Json.parse (Report.passes_to_json d))

let test_per_pass_alignment () =
  let old_passes = [ row "baseline" 0; row "mspf" 1 ] in
  let old_snap = snap_with [ entry ~passes:old_passes "ctrl" 90 9 20 3 ] in
  let verdict_of new_passes =
    let d =
      Report.diff_passes old_snap
        (snap_with [ entry ~passes:new_passes "ctrl" 90 9 20 3 ])
    in
    match d.Report.benches with
    | [ b ] -> (b.Report.verdict, b.Report.note)
    | _ -> Alcotest.fail "expected 1 bench"
  in
  (* Renamed pass: Regressed, never silently realigned. *)
  let v, note = verdict_of [ row "baseline" 0; row "cspf" 1 ] in
  Alcotest.(check bool) "renamed pass regresses" true (v = Report.Regressed);
  Alcotest.(check bool) "mismatch note present" true (note <> None);
  (* Different lengths: Regressed. *)
  let v, _ = verdict_of [ row "baseline" 0 ] in
  Alcotest.(check bool) "shorter sequence regresses" true (v = Report.Regressed);
  (* Rows missing from the new snapshot entirely: Regressed. *)
  let v, _ = verdict_of [] in
  Alcotest.(check bool) "missing ledger regresses" true (v = Report.Regressed);
  (* Old snapshot predating the ledger: tolerated as Unchanged. *)
  let d =
    Report.diff_passes
      (snap_with [ entry "ctrl" 90 9 20 3 ])
      (snap_with [ entry ~passes:old_passes "ctrl" 90 9 20 3 ])
  in
  (match d.Report.benches with
  | [ b ] ->
    Alcotest.(check bool) "pre-ledger old snapshot unchanged" true
      (b.Report.verdict = Report.Unchanged);
    Alcotest.(check bool) "predates note" true (b.Report.note <> None)
  | _ -> Alcotest.fail "expected 1 bench");
  Alcotest.(check int) "pre-ledger passes the gate" 0 (Report.passes_exit_code d)

let test_per_pass_ignore_time () =
  let mk wall_ns = [ row ~wall_ns "baseline" 0 ] in
  let old_snap = snap_with [ entry ~passes:(mk 1_000_000L) "ctrl" 90 9 20 3 ] in
  let new_snap =
    snap_with [ entry ~passes:(mk 900_000_000L) "ctrl" 90 9 20 3 ]
  in
  let gated = Report.diff_passes old_snap new_snap in
  Alcotest.(check bool) "pass wall-time blowup gates" true
    (gated.Report.verdict = Report.Regressed);
  let ungated = Report.diff_passes ~ignore_time:true old_snap new_snap in
  Alcotest.(check bool) "ignore-time drops wall verdicts" true
    (ungated.Report.verdict = Report.Unchanged);
  (match ungated.Report.benches with
  | [ b ] ->
    List.iter
      (fun (p : Report.pass_row) ->
        List.iter
          (fun (dl : Report.delta) ->
            Alcotest.(check bool) "no wall_ms delta rows" true
              (dl.Report.metric <> "wall_ms"))
          p.Report.deltas)
      b.Report.rows
  | _ -> Alcotest.fail "expected 1 bench")

(* --- determinism: per-pass rows at jobs=4 equal jobs=1 --- *)

let stable_rows jobs b =
  with_jobs jobs (fun () ->
      with_ledger (fun () ->
          let aig = Epfl.generate b in
          let trace = Obs.create () in
          let root =
            Obs.root ~size:(Aig.size aig) ~depth:(Aig.depth aig) trace
              (Epfl.name b)
          in
          let optimized =
            Sbm_core.Flow.run ~obs:root (Sbm_core.Flow.Sbm Sbm_core.Flow.Low) aig
          in
          Obs.close ~size:(Aig.size optimized) ~depth:(Aig.depth optimized) root;
          List.map (Ledger.row_to_json ~stable:true) (Ledger.rows ())))

let test_per_pass_jobs_identity () =
  let probe aig =
    let m = Sbm_lutmap.Lut_map.map ~k:6 aig in
    (m.Sbm_lutmap.Lut_map.lut_count, m.Sbm_lutmap.Lut_map.depth)
  in
  Sbm_core.Flow.ledger_qor_probe := Some probe;
  Fun.protect ~finally:(fun () -> Sbm_core.Flow.ledger_qor_probe := None)
    (fun () ->
      let b = Epfl.Ctrl in
      let seq = stable_rows 1 b in
      let par = stable_rows 4 b in
      Alcotest.(check int) "same pass count" (List.length seq) (List.length par);
      Alcotest.(check bool) "the flow produced per-pass rows" true
        (List.length seq > 0);
      List.iter2
        (fun s p -> Alcotest.(check string) "stable row byte-identical" s p)
        seq par)

let suite =
  [
    Alcotest.test_case "ledger: nested paths and lifecycle." `Quick
      test_ledger_paths;
    Alcotest.test_case "ledger: stable JSON projection." `Quick
      test_stable_projection;
    Alcotest.test_case "history: JSONL round-trip, torn line skipped." `Quick
      test_history_round_trip;
    Alcotest.test_case "top: torn final status line skipped." `Quick
      test_live_torn_line;
    Alcotest.test_case "per-pass diff: verdicts and localization." `Quick
      test_per_pass_verdicts;
    Alcotest.test_case "per-pass diff: alignment contract." `Quick
      test_per_pass_alignment;
    Alcotest.test_case "per-pass diff: ignore-time." `Quick
      test_per_pass_ignore_time;
    Alcotest.test_case "determinism: per-pass rows jobs=4 equal jobs=1." `Slow
      test_per_pass_jobs_identity;
  ]
