(* The four SBM engines, each gated by equivalence and
   no-size-increase. MSPF substitutions are permissible (not locally
   equivalent), so the gate is primary-output equivalence. *)

module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng
module Partition = Sbm_partition.Partition

(* --- Boolean difference (Fig. 1 / Alg. 1 semantics) --- *)

let test_fig1_rewrite () =
  (* Build a network where f = (x1&x2) | (x3&~x4&x5), g = x1&x2; the
     difference f^g is small so the engine should consider the pair
     without crashing and keep equivalence. *)
  let aig = Aig.create () in
  let x = Array.init 5 (fun _ -> Aig.add_input aig) in
  let g = Aig.band aig x.(0) x.(1) in
  let t = Aig.band aig (Aig.band aig x.(2) (Aig.lnot x.(3))) x.(4) in
  let f = Aig.bor aig g t in
  ignore (Aig.add_output aig f);
  ignore (Aig.add_output aig g);
  let original = Aig.copy aig in
  ignore (Sbm_core.Diff_resub.optimize aig);
  Aig.check aig;
  Helpers.assert_equiv_exhaustive ~msg:"fig1 equivalence" original aig

let test_diff_identity () =
  (* f = d ^ g with d, g in the network: Boolean difference must find
     the rewrite when f is structured wastefully. *)
  let aig = Aig.create () in
  let x = Array.init 4 (fun _ -> Aig.add_input aig) in
  let g = Aig.band aig x.(0) x.(1) in
  let d = Aig.band aig x.(2) x.(3) in
  ignore (Aig.add_output aig g);
  ignore (Aig.add_output aig d);
  (* f equivalent to d^g but built as a large mux structure. *)
  let f =
    Aig.bor aig
      (Aig.band aig g (Aig.lnot d))
      (Aig.band aig (Aig.lnot g) d)
  in
  ignore (Aig.add_output aig f);
  let original = Aig.copy aig in
  ignore (Sbm_core.Diff_resub.optimize aig);
  Aig.check aig;
  Helpers.assert_equiv_exhaustive ~msg:"diff identity" original aig

let test_diff_random_gate () =
  let rng = Rng.create 201 in
  for _ = 1 to 8 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:35 ~outputs:4 rng in
    let original = Aig.copy aig in
    let size_before = Aig.size aig in
    let gain = Sbm_core.Diff_resub.optimize aig in
    Aig.check aig;
    Alcotest.(check bool) "gain >= 0" true (gain >= 0);
    Alcotest.(check bool) "not larger" true (Aig.size aig <= size_before);
    Helpers.assert_equiv_exhaustive ~msg:"diff resub gate" original aig
  done

let test_diff_monolithic () =
  let rng = Rng.create 202 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
  let original = Aig.copy aig in
  let config = { Sbm_core.Diff_resub.default_config with monolithic = true } in
  ignore (Sbm_core.Diff_resub.optimize ~config aig);
  Aig.check aig;
  Helpers.assert_equiv_exhaustive ~msg:"monolithic diff" original aig

let test_diff_zero_gain_reshape () =
  let rng = Rng.create 203 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:30 ~outputs:3 rng in
  let original = Aig.copy aig in
  let config = { Sbm_core.Diff_resub.default_config with accept_zero = true } in
  ignore (Sbm_core.Diff_resub.optimize ~config aig);
  Aig.check aig;
  Alcotest.(check bool) "reshape never grows" true (Aig.size aig <= Aig.size original);
  Helpers.assert_equiv_exhaustive ~msg:"zero-gain diff" original aig

(* --- MSPF --- *)

let test_mspf_removes_unobservable () =
  (* y = (a & b) | (a & ~b & c); node (a&~b&c) is partially redundant:
     y == a & (b | c). More directly: z = x | (x & w) has w
     unobservable. *)
  let aig = Aig.create () in
  let x = Aig.add_input aig in
  let w = Aig.add_input aig in
  let inner = Aig.band aig x w in
  let z = Aig.bor aig x inner in
  ignore (Aig.add_output aig z);
  let original = Aig.copy aig in
  ignore (Sbm_core.Mspf.optimize aig);
  Aig.check aig;
  Helpers.assert_equiv_exhaustive ~msg:"mspf absorb" original aig;
  Alcotest.(check int) "z collapses to x" 0 (Aig.size aig)

let test_mspf_random_gate () =
  let rng = Rng.create 204 in
  for _ = 1 to 8 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:35 ~outputs:4 rng in
    let original = Aig.copy aig in
    let size_before = Aig.size aig in
    let gain = Sbm_core.Mspf.optimize aig in
    Aig.check aig;
    Alcotest.(check bool) "gain >= 0" true (gain >= 0);
    Alcotest.(check bool) "not larger" true (Aig.size aig <= size_before);
    Helpers.assert_equiv_exhaustive ~msg:"mspf gate" original aig
  done

let test_mspf_budget_bailout () =
  (* A tiny BDD budget: the engine must skip everything gracefully. *)
  let rng = Rng.create 205 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:50 ~outputs:4 rng in
  let original = Aig.copy aig in
  let config = { Sbm_core.Mspf.default_config with bdd_node_limit = 4 } in
  let gain = Sbm_core.Mspf.optimize ~config aig in
  Alcotest.(check int) "nothing happens under a starved budget" 0 gain;
  Helpers.assert_equiv_exhaustive ~msg:"budget bailout" original aig

(* --- Heterogeneous elimination + kerneling --- *)

let test_hetero_gate () =
  let rng = Rng.create 206 in
  for _ = 1 to 6 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
    let result = fst (Sbm_core.Hetero_kernel.run aig) in
    Aig.check result;
    Helpers.assert_equiv_exhaustive ~msg:"hetero kernel gate" aig result
  done

let test_hetero_vs_homogeneous () =
  (* Both modes must preserve function; heterogeneous never loses to
     the move wrapper (callers keep the better). *)
  let rng = Rng.create 207 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:5 rng in
  let het = fst (Sbm_core.Hetero_kernel.run aig) in
  Helpers.assert_equiv_exhaustive ~msg:"hetero" aig het;
  let hom = Sbm_core.Hetero_kernel.run_homogeneous ~threshold:50 aig in
  Helpers.assert_equiv_exhaustive ~msg:"homogeneous" aig hom

(* --- Gradient engine --- *)

let test_gradient_gate () =
  let rng = Rng.create 208 in
  for _ = 1 to 4 do
    let aig = Helpers.random_xor_aig ~inputs:7 ~gates:45 ~outputs:4 rng in
    let original = Aig.copy aig in
    let size_before = Aig.size aig in
    let optimized, stats =
      Sbm_core.Gradient.run
        ~config:{ Sbm_core.Gradient.default_config with budget = 30 }
        aig
    in
    Aig.check optimized;
    Alcotest.(check bool) "never grows" true (Aig.size optimized <= size_before);
    Alcotest.(check bool) "tried some moves" true (stats.Sbm_core.Gradient.moves_tried > 0);
    Helpers.assert_equiv_exhaustive ~msg:"gradient gate" original optimized
  done

let test_gradient_parallel_selection () =
  let rng = Rng.create 209 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
  let original = Aig.copy aig in
  let optimized, _ =
    Sbm_core.Gradient.run
      ~config:
        {
          Sbm_core.Gradient.default_config with
          budget = 25;
          selection = Sbm_core.Gradient.Parallel;
        }
      aig
  in
  Aig.check optimized;
  Helpers.assert_equiv_exhaustive ~msg:"parallel gradient" original optimized

let test_gradient_respects_budget () =
  let rng = Rng.create 210 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:40 ~outputs:4 rng in
  let _, stats =
    Sbm_core.Gradient.run
      ~config:
        { Sbm_core.Gradient.default_config with budget = 5; min_gradient = 2.0 }
      aig
  in
  (* min_gradient = 200% is unreachable, so no extension happens. *)
  Alcotest.(check int) "no extensions" 0 stats.Sbm_core.Gradient.budget_extensions;
  Alcotest.(check bool) "few moves" true (stats.Sbm_core.Gradient.moves_tried <= 10)

(* --- Full flow --- *)

let test_flow_baseline () =
  let rng = Rng.create 211 in
  for _ = 1 to 3 do
    let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
    let optimized = Sbm_core.Flow.baseline aig in
    Aig.check optimized;
    Alcotest.(check bool) "baseline never grows" true (Aig.size optimized <= Aig.size aig);
    Helpers.assert_equiv_exhaustive ~msg:"baseline flow" aig optimized
  done

let test_flow_sbm () =
  let rng = Rng.create 212 in
  for _ = 1 to 2 do
    let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
    let optimized = Sbm_core.Flow.sbm_once ~effort:Sbm_core.Flow.Low aig in
    Aig.check optimized;
    Helpers.assert_equiv_exhaustive ~msg:"sbm flow" aig optimized
  done

let test_flow_sbm_beats_or_ties_baseline () =
  let rng = Rng.create 213 in
  let mutable_wins = ref 0 in
  for _ = 1 to 3 do
    let aig = Helpers.random_xor_aig ~inputs:8 ~gates:70 ~outputs:5 rng in
    let base = Sbm_core.Flow.baseline aig in
    let sbm = Sbm_core.Flow.sbm ~effort:Sbm_core.Flow.Low aig in
    Helpers.assert_equiv_exhaustive ~msg:"sbm full" aig sbm;
    if Aig.size sbm <= Aig.size base then incr mutable_wins
  done;
  Alcotest.(check bool)
    "SBM at least ties the baseline on most runs" true (!mutable_wins >= 2)

(* --- Partitioning --- *)

let test_partition_covers_all () =
  let rng = Rng.create 214 in
  let aig = Helpers.random_xor_aig ~inputs:10 ~gates:200 ~outputs:6 rng in
  let limits = { Partition.max_levels = 6; max_nodes = 40; max_leaves = 16 } in
  let parts = Partition.compute aig limits in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (p : Partition.t) ->
      Array.iter
        (fun v ->
          if Hashtbl.mem seen v then Alcotest.failf "node %d in two partitions" v;
          Hashtbl.add seen v ())
        p.Partition.nodes)
    parts;
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_and aig v && not (Hashtbl.mem seen v) then
        Alcotest.failf "node %d missing from partitions" v)
    order;
  (* Limits respected. *)
  List.iter
    (fun (p : Partition.t) ->
      Alcotest.(check bool) "size cap" true (Array.length p.Partition.nodes <= 40))
    parts

let test_partition_leaves_feed_members () =
  let rng = Rng.create 215 in
  let aig = Helpers.random_xor_aig ~inputs:8 ~gates:80 ~outputs:4 rng in
  let parts = Partition.compute aig Partition.default_limits in
  List.iter
    (fun (p : Partition.t) ->
      let members = Hashtbl.create 64 in
      Array.iter (fun v -> Hashtbl.add members v ()) p.Partition.nodes;
      Array.iter
        (fun v ->
          List.iter
            (fun f ->
              let w = Aig.node_of f in
              if w <> 0 && not (Hashtbl.mem members w) then
                if not (Array.exists (fun l -> l = w) p.Partition.leaves) then
                  Alcotest.failf "fanin %d neither member nor leaf" w)
            [ Aig.fanin0 aig v; Aig.fanin1 aig v ])
        p.Partition.nodes)
    parts

let test_whole_partition () =
  let rng = Rng.create 216 in
  let aig = Helpers.random_xor_aig ~inputs:6 ~gates:30 ~outputs:3 rng in
  let p = Partition.whole aig in
  Alcotest.(check int) "all nodes" (Aig.size aig) (Array.length p.Partition.nodes)

let suite =
  [
    Alcotest.test_case "fig1 scenario" `Quick test_fig1_rewrite;
    Alcotest.test_case "difference identity" `Quick test_diff_identity;
    Alcotest.test_case "diff resub random gate" `Quick test_diff_random_gate;
    Alcotest.test_case "diff resub monolithic" `Quick test_diff_monolithic;
    Alcotest.test_case "diff zero-gain reshape" `Quick test_diff_zero_gain_reshape;
    Alcotest.test_case "mspf absorbs unobservable" `Quick test_mspf_removes_unobservable;
    Alcotest.test_case "mspf random gate" `Quick test_mspf_random_gate;
    Alcotest.test_case "mspf budget bailout" `Quick test_mspf_budget_bailout;
    Alcotest.test_case "hetero kernel gate" `Quick test_hetero_gate;
    Alcotest.test_case "hetero vs homogeneous" `Quick test_hetero_vs_homogeneous;
    Alcotest.test_case "gradient gate" `Quick test_gradient_gate;
    Alcotest.test_case "gradient parallel" `Quick test_gradient_parallel_selection;
    Alcotest.test_case "gradient budget" `Quick test_gradient_respects_budget;
    Alcotest.test_case "baseline flow" `Quick test_flow_baseline;
    Alcotest.test_case "sbm flow" `Quick test_flow_sbm;
    Alcotest.test_case "sbm vs baseline" `Slow test_flow_sbm_beats_or_ties_baseline;
    Alcotest.test_case "partition covers all nodes" `Quick test_partition_covers_all;
    Alcotest.test_case "partition leaves" `Quick test_partition_leaves_feed_members;
    Alcotest.test_case "whole partition" `Quick test_whole_partition;
  ]
