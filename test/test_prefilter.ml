(* The simulation-guided candidate prefilter: verdict soundness
   against exhaustive truth tables, counterexample-guided refinement,
   incremental re-simulation after edits, and the headline contract —
   every engine behind [Engines.all] produces bit-identical QoR with
   the prefilter off or on, sequentially and in parallel. *)

module Aig = Sbm_aig.Aig
module Sim = Sbm_aig.Sim
module Rng = Sbm_util.Rng
module Epfl = Sbm_epfl.Epfl
module Prefilter = Sbm_core.Prefilter
module Engine_intf = Sbm_core.Engine_intf

(* Exhaustive per-node truth tables for an AIG with <= 6 inputs: one
   64-bit word per node, bit m = node value under minterm m. *)
let truth_tables aig =
  let n = Aig.num_inputs aig in
  assert (n <= 6);
  let inputs =
    Array.init n (fun i ->
        let w = ref 0L in
        for m = 0 to 63 do
          if (m lsr i) land 1 = 1 then w := Int64.logor !w (Int64.shift_left 1L m)
        done;
        !w)
  in
  let mask =
    if n = 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L
  in
  (Array.map (fun w -> Int64.logand w mask) (Sim.simulate aig inputs), mask)

(* --- soundness: Reject implies real inequivalence --- *)

(* A [Reject_*] verdict must certify that the pair differs on a
   concrete input pattern, hence on some minterm: cross-check every
   node pair (both phases) against exhaustive truth tables. *)
let test_soundness_exhaustive () =
  let rng = Rng.create 0xf117e5 in
  for _ = 1 to 10 do
    let aig = Helpers.random_xor_aig ~inputs:6 ~gates:40 ~outputs:4 rng in
    let bank = Prefilter.create_bank () in
    let st = Prefilter.attach bank aig in
    let tts, mask = truth_tables aig in
    let nodes = ref [] in
    for v = 0 to Aig.num_nodes aig - 1 do
      if (Aig.is_input aig v || Aig.is_and aig v) && not (Aig.is_dead aig v)
      then nodes := v :: !nodes
    done;
    let nodes = Array.of_list !nodes in
    Array.iter
      (fun f ->
        Array.iter
          (fun g ->
            List.iter
              (fun phase ->
                let verdict =
                  Prefilter.compatible st (Aig.lit_of f false)
                    (Aig.lit_of g phase)
                in
                let tg =
                  if phase then Int64.logand (Int64.lognot tts.(g)) mask
                  else tts.(g)
                in
                if verdict <> Prefilter.Maybe && tts.(f) = tg then
                  Alcotest.failf
                    "rejected an equivalent pair (%d, %d phase %b)" f g phase)
              [ false; true ])
          nodes)
      nodes
  done

(* [compatible_masked] against a straight-line reference over
   [Prefilter.value]: Maybe iff some phase of [b] agrees with [a] on
   every care bit; Reject_const iff rejected and [b] is constant on
   the care set. *)
let test_masked_reference () =
  let rng = Rng.create 0xca4e in
  for _ = 1 to 10 do
    let aig = Helpers.random_aig ~inputs:8 ~ands:50 ~outputs:4 rng in
    let bank = Prefilter.create_bank () in
    let st = Prefilter.attach bank aig in
    let w = Prefilter.words st in
    let care = Array.init w (fun _ -> Rng.next64 rng) in
    let live = ref [] in
    for v = 0 to Aig.num_nodes aig - 1 do
      if (Aig.is_input aig v || Aig.is_and aig v) && not (Aig.is_dead aig v)
      then live := v :: !live
    done;
    let live = Array.of_list !live in
    let pick () = live.(Rng.int rng (Array.length live)) in
    for _ = 1 to 200 do
      let a = Aig.lit_of (pick ()) (Rng.bool rng) in
      let b = Aig.lit_of (pick ()) (Rng.bool rng) in
      let agrees compl =
        Array.for_all Fun.id
          (Array.init w (fun i ->
               let bv = Prefilter.lit_value st b i in
               let bv = if compl then Int64.lognot bv else bv in
               Int64.logand care.(i)
                 (Int64.logxor (Prefilter.lit_value st a i) bv)
               = 0L))
      in
      let expected_maybe = agrees false || agrees true in
      let verdict = Prefilter.compatible_masked st ~care a b in
      Alcotest.(check bool)
        "masked verdict matches reference" expected_maybe
        (verdict = Prefilter.Maybe)
    done
  done

(* --- counterexample-guided refinement --- *)

(* 12 inputs keeps the bank in the random+cex regime (the exhaustive
   cutover is at {!Prefilter.exhaustive_max_inputs}). *)
let test_refine_patterns () =
  let bank = Prefilter.create_bank ~sim_words:1 () in
  Alcotest.(check int) "no refinements yet" 0 (Prefilter.refinements bank);
  Prefilter.refine bank [| true; false; true |];
  Prefilter.refine bank [| false; true |];
  Alcotest.(check int) "two refinements" 2 (Prefilter.refinements bank);
  let words = Prefilter.input_words bank 12 in
  Alcotest.(check int) "base word + one cex word" 2 (Array.length words);
  (* Cex word: bit k of input i = assignment k's value for input i,
     oldest first; missing bits read as 0. *)
  let cex = words.(1) in
  Alcotest.(check int64) "input 0 bits" 1L cex.(0);
  Alcotest.(check int64) "input 1 bits" 2L cex.(1);
  Alcotest.(check int64) "input 2 bits (padded)" 1L cex.(2);
  Alcotest.(check int64) "input 11 bits (absent)" 0L cex.(11)

(* Small-input networks are simulated exhaustively: the signature is
   the truth table, so even the needle-in-a-haystack pair — the AND of
   all 11 inputs vs. constant false, differing on one minterm out of
   2048 — is rejected without any refinement. *)
let test_exhaustive_small_inputs () =
  let aig = Aig.create () in
  let ins = Array.init 11 (fun _ -> Aig.add_input aig) in
  let conj = Array.fold_left (fun acc l -> Aig.band aig acc l) Aig.const1 ins in
  ignore (Aig.add_output aig conj);
  let bank = Prefilter.create_bank () in
  let st = Prefilter.attach bank aig in
  Alcotest.(check int) "full truth table width" 32 (Prefilter.words st);
  Alcotest.(check bool) "exhaustive store catches the lone minterm" true
    (Prefilter.compatible st conj Aig.const0 <> Prefilter.Maybe);
  (* And the only disagreeing assignment is accepted as compatible in
     the complemented phase nowhere — sanity that Maybe still happens
     where it must: a node vs. itself. *)
  Alcotest.(check bool) "reflexive Maybe" true
    (Prefilter.compatible st conj conj = Prefilter.Maybe)

(* A pair the seeded patterns cannot distinguish — the AND of 16
   inputs vs. constant false differs only on the all-ones assignment —
   must flip from Maybe to Reject once the disproving assignment is
   folded back. *)
let test_refine_kills_false_positive () =
  let aig = Aig.create () in
  let ins = Array.init 16 (fun _ -> Aig.add_input aig) in
  let conj = Array.fold_left (fun acc l -> Aig.band aig acc l) Aig.const1 ins in
  ignore (Aig.add_output aig conj);
  let bank = Prefilter.create_bank () in
  let st = Prefilter.attach bank aig in
  let f = conj and g = Aig.const0 in
  Alcotest.(check bool) "seeded patterns miss the all-ones minterm" true
    (Prefilter.compatible st f g = Prefilter.Maybe);
  Prefilter.refine bank (Array.make 16 true);
  let st = Prefilter.attach bank aig in
  Alcotest.(check bool) "refined store distinguishes the pair" true
    (Prefilter.compatible st f g <> Prefilter.Maybe)

(* --- incremental re-simulation --- *)

(* After a function-changing edit ([note_edit] before [Aig.replace]),
   every lazily recomputed value must equal a from-scratch attach.
   Compare output-reachable nodes only: [Sim.simulate] evaluates in
   topological order from the outputs, so a live node orphaned from
   every output reads 0 in a fresh attach while the lazy recompute
   derives its true function — both sound, engines never query
   orphans. *)
let output_reachable aig =
  let reach = Hashtbl.create 256 in
  let rec go v =
    if not (Hashtbl.mem reach v) then begin
      Hashtbl.add reach v ();
      if Aig.is_and aig v then begin
        go (Aig.node_of (Aig.fanin0 aig v));
        go (Aig.node_of (Aig.fanin1 aig v))
      end
    end
  in
  Array.iter (fun l -> go (Aig.node_of l)) (Aig.outputs aig);
  reach

let test_incremental_resim () =
  let rng = Rng.create 0x1ec5 in
  for _ = 1 to 20 do
    let aig = Helpers.random_aig ~inputs:8 ~ands:60 ~outputs:4 rng in
    let bank = Prefilter.create_bank () in
    let st = Prefilter.attach bank aig in
    (* Pick a live AND node and bypass it with one of its fanins — a
       function-changing edit wherever the node was observable. *)
    let victim = ref None in
    for v = Aig.num_nodes aig - 1 downto 1 do
      if !victim = None && Aig.is_and aig v && not (Aig.is_dead aig v) then
        victim := Some v
    done;
    match !victim with
    | None -> ()
    | Some v ->
      Prefilter.note_edit st v;
      Aig.replace aig v (Aig.fanin0 aig v);
      let fresh = Prefilter.attach bank aig in
      let reach = output_reachable aig in
      for n = 0 to Aig.num_nodes aig - 1 do
        if (not (Aig.is_dead aig n)) && Hashtbl.mem reach n then
          for w = 0 to Prefilter.words st - 1 do
            if Prefilter.value st n w <> Prefilter.value fresh n w then
              Alcotest.failf "stale value at node %d word %d after edit" n w
          done
      done
  done

(* --- fork isolation --- *)

let test_fork_private () =
  let rng = Rng.create 0xf04c in
  let aig = Helpers.random_aig ~inputs:8 ~ands:40 ~outputs:4 rng in
  let bank = Prefilter.create_bank () in
  let st = Prefilter.attach bank aig in
  let snap = Aig.copy aig in
  let forked = Prefilter.fork st snap in
  (* Edit the snapshot through the forked store; the main store's
     values over the untouched AIG must be unaffected. *)
  let v = ref None in
  for n = Aig.num_nodes snap - 1 downto 1 do
    if !v = None && Aig.is_and snap n && not (Aig.is_dead snap n) then
      v := Some n
  done;
  (match !v with
  | None -> ()
  | Some n ->
    Prefilter.note_edit forked n;
    Aig.replace snap n (Aig.fanin0 snap n));
  let fresh = Prefilter.attach bank aig in
  for n = 0 to Aig.num_nodes aig - 1 do
    if not (Aig.is_dead aig n) then
      for w = 0 to Prefilter.words st - 1 do
        Alcotest.(check int64)
          (Printf.sprintf "main store untouched (node %d word %d)" n w)
          (Prefilter.value fresh n w) (Prefilter.value st n w)
      done
  done

(* --- off vs. on: bit-identical QoR for every engine --- *)

(* The filter is accept-preserving, so each engine must produce the
   same network and gain with filtering off or on — sequentially and
   with 4 worker domains. This is the per-engine identity property the
   API contract promises. *)
let engine_identity bench =
  let input = Epfl.generate bench in
  List.iter
    (fun (name, (module E : Engine_intf.S)) ->
      let run ~prefilter ~jobs =
        let config =
          {
            Engine_intf.default with
            Engine_intf.prefilter =
              (if prefilter then Some (Prefilter.create_bank ()) else None);
            jobs = Some jobs;
          }
        in
        let result, stats = E.run config input in
        (Sbm_aig.Aiger.write result, stats.Engine_intf.gain)
      in
      let reference = run ~prefilter:false ~jobs:1 in
      List.iter
        (fun (prefilter, jobs) ->
          let text, gain = run ~prefilter ~jobs in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: network (prefilter=%b jobs=%d)"
               (Epfl.name bench) name prefilter jobs)
            (fst reference) text;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: gain (prefilter=%b jobs=%d)"
               (Epfl.name bench) name prefilter jobs)
            (snd reference) gain)
        [ (true, 1); (false, 4); (true, 4) ])
    Sbm_core.Engines.all

let test_engine_identity_ctrl () = engine_identity Epfl.Ctrl
let test_engine_identity_cavlc () = engine_identity Epfl.Cavlc

(* The full flow: sbm-low with and without the prefilter must agree
   bit for bit (the SAT counterexample feedback only changes what is
   filtered, never what is accepted). *)
let test_flow_identity () =
  let input = Epfl.generate Epfl.Ctrl in
  let out prefilter =
    Sbm_aig.Aiger.write
      (Sbm_core.Flow.run ~prefilter (Sbm_core.Flow.Sbm Sbm_core.Flow.Low) input)
  in
  Alcotest.(check string) "ctrl: sbm-low off == on" (out false) (out true)

(* --- registry --- *)

let test_registry () =
  Alcotest.(check (list string))
    "registry names"
    [ "diff"; "mspf"; "kernel"; "gradient" ]
    (List.map fst Sbm_core.Engines.all);
  List.iter
    (fun (name, m) ->
      let (module E : Engine_intf.S) = m in
      Alcotest.(check string) "name matches key" name E.name;
      match Sbm_core.Engines.find name with
      | Some m' -> Alcotest.(check bool) (name ^ ": lookup") true (m' == m)
      | None -> Alcotest.fail (name ^ ": lookup failed"))
    Sbm_core.Engines.all;
  Alcotest.(check bool) "unknown engine" true (Sbm_core.Engines.find "x" = None)

let suite =
  [
    Alcotest.test_case "verdicts: sound vs exhaustive truth tables." `Quick
      test_soundness_exhaustive;
    Alcotest.test_case "verdicts: masked matches reference." `Quick
      test_masked_reference;
    Alcotest.test_case "bank: cex refinement packs patterns." `Quick
      test_refine_patterns;
    Alcotest.test_case "store: small inputs simulate exhaustively." `Quick
      test_exhaustive_small_inputs;
    Alcotest.test_case "bank: refinement kills a false positive." `Quick
      test_refine_kills_false_positive;
    Alcotest.test_case "store: incremental resim equals fresh attach." `Quick
      test_incremental_resim;
    Alcotest.test_case "store: forked edits stay private." `Quick
      test_fork_private;
    Alcotest.test_case "engines: registry is consistent." `Quick test_registry;
    Alcotest.test_case "engines: off==on, jobs 1 and 4 (ctrl)." `Quick
      test_engine_identity_ctrl;
    Alcotest.test_case "engines: off==on, jobs 1 and 4 (cavlc)." `Slow
      test_engine_identity_cavlc;
    Alcotest.test_case "flow: sbm-low off==on (ctrl)." `Slow test_flow_identity;
  ]
