(* The packed CSR adjacency arena and the O(live) snapshot path.

   The arena replaced a Vec.t-per-node layout whose exact order
   semantics (append on push, first-occurrence shift on remove,
   ascending fold) are observable through [Aig.replace] and
   [Aig.fanout_nodes] — engine iteration order, and therefore QoR,
   depends on them. The properties here pin that contract:

   - Csr mirrors a Vec.t array reference implementation under random
     operation sequences, with compactions interleaved;
   - [Aig.copy] and [Aig.compact] preserve the canonical structural
     digest, and the same edit script applied to an AIG and its
     snapshot converges to identical structure even when only one
     side compacts its arenas mid-script;
   - fanout lists always equal a reference recomputation from the
     fanin arrays;
   - the copy-on-write origin tables stay independent across copies;
   - a snapshot of a table1-sized benchmark stays inside a fixed
     allocation budget (the O(live) guarantee, as a regression cap
     in the spirit of the dec-sized BDD budget test). *)

module Aig = Sbm_aig.Aig
module Csr = Sbm_util.Csr
module Rng = Sbm_util.Rng
module Vec = Sbm_util.Vec

(* --- Csr vs Vec reference --- *)

(* Op stream per (seed, nodes): weighted push-heavy mix, with clears,
   first-occurrence removes, and full-arena compactions interleaved.
   After every script the arena must agree with the boxed reference
   list for list, element for element, in order. *)
let test_csr_mirrors_vec =
  Helpers.qcheck_case "csr mirrors Vec.t array semantics" ~count:100
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 40))
    (fun (seed, nodes) ->
      let rng = Rng.create seed in
      let csr = Csr.create ~nodes:4 ~slot:2 () in
      Csr.ensure_nodes csr nodes;
      let ref_ = Array.init nodes (fun _ -> Vec.create ~capacity:1 ()) in
      for _ = 1 to 400 do
        let v = Rng.int rng nodes in
        match Rng.int rng 10 with
        | 0 ->
          Csr.clear csr v;
          Vec.clear ref_.(v)
        | 1 | 2 ->
          let x = Rng.int rng 16 in
          Csr.remove csr v x;
          Vec.remove ref_.(v) x
        | 3 -> Csr.compact csr
        | _ ->
          let x = Rng.int rng 16 in
          Csr.push csr v x;
          Vec.push ref_.(v) x
      done;
      let live = ref 0 in
      let same = ref true in
      for v = 0 to nodes - 1 do
        live := !live + Vec.size ref_.(v);
        if Csr.to_array csr v <> Vec.to_array ref_.(v) then same := false;
        if Csr.length csr v <> Vec.size ref_.(v) then same := false;
        if
          Csr.fold (fun acc x -> x :: acc) [] csr v
          <> Vec.fold (fun acc x -> x :: acc) [] ref_.(v)
        then same := false
      done;
      !same && Csr.live_words csr = !live)

let test_csr_copy_independent =
  Helpers.qcheck_case "csr copy is compacted and independent"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nodes = 16 in
      let csr = Csr.create ~nodes ~slot:1 () in
      for _ = 1 to 200 do
        Csr.push csr (Rng.int rng nodes) (Rng.int rng 100)
      done;
      let before = Array.init nodes (Csr.to_array csr) in
      let snap = Csr.copy csr ~nodes ~node_cap:(nodes * 2) in
      (* The copy never reproduces leaked or slack words. *)
      let tight = Csr.live_words snap = Csr.live_words csr in
      (* Divergent edits stay private to each side. *)
      Csr.push snap 0 999;
      Csr.clear csr 1;
      let snap_ok =
        Array.for_all2 ( = ) (Csr.to_array snap 1) before.(1)
        && Csr.to_array snap 0 = Array.append before.(0) [| 999 |]
      in
      let orig_ok =
        Csr.length csr 1 = 0 && Csr.to_array csr 0 = before.(0)
      in
      tight && snap_ok && orig_ok)

(* --- AIG-level equivalence under random edit scripts --- *)

(* Reference fanout recomputation straight from the fanin arrays: the
   deduplicated live fanouts of every live node. *)
let reference_fanouts aig =
  let n = Aig.num_nodes aig in
  let sets = Array.make n [] in
  for v = 0 to n - 1 do
    if Aig.is_and aig v then begin
      let add w = if not (List.mem v sets.(w)) then sets.(w) <- v :: sets.(w) in
      add (Aig.node_of (Aig.fanin0 aig v));
      let w1 = Aig.node_of (Aig.fanin1 aig v) in
      if w1 <> Aig.node_of (Aig.fanin0 aig v) then add w1
    end
  done;
  sets

let check_fanouts_match aig =
  let sets = reference_fanouts aig in
  let ok = ref true in
  for v = 0 to Aig.num_nodes aig - 1 do
    if not (Aig.is_dead aig v) then begin
      let got = List.sort compare (Aig.fanout_nodes aig v) in
      let want = List.sort compare sets.(v) in
      if got <> want then ok := false
    end
  done;
  !ok

(* A deterministic random edit script: replacement attempts (the
   heaviest user of fanout-list order), speculative cones that are
   built and discarded, and fresh outputs. Scripts are a function of
   the seed only, so the same script can be replayed against an AIG
   and its snapshot. *)
let apply_edits seed aig =
  let rng = Rng.create seed in
  let pick_live () =
    let n = Aig.num_nodes aig in
    let rec go tries =
      if tries = 0 then None
      else
        let v = 1 + Rng.int rng (max 1 (n - 1)) in
        if Aig.is_and aig v then Some v else go (tries - 1)
    in
    go 20
  in
  let pick_lit () =
    let n = Aig.num_nodes aig in
    let rec go tries =
      if tries = 0 then Aig.const0
      else
        let v = Rng.int rng n in
        if not (Aig.is_dead aig v) then Aig.lit_of v (Rng.bool rng)
        else go (tries - 1)
    in
    go 20
  in
  for _ = 1 to 30 do
    match Rng.int rng 4 with
    | 0 -> (
      (* Replacement with cascading rehash; invalid candidates
         (cycles, self) are skipped, like the engines do. *)
      match pick_live () with
      | Some root -> (
        let cand = pick_lit () in
        match Aig.replace aig root cand with
        | () -> ()
        | exception Invalid_argument _ -> ())
      | None -> ())
    | 1 ->
      (* Speculative cone, then discard: exercises kill_cone's clear
         and remove paths. *)
      let l = Aig.band aig (pick_lit ()) (pick_lit ()) in
      Aig.delete_dangling aig (Aig.node_of l)
    | 2 ->
      let l = Aig.band aig (pick_lit ()) (pick_lit ()) in
      if not (Aig.is_dead aig (Aig.node_of l)) then
        ignore (Aig.add_output aig l)
    | _ ->
      let a = Aig.band aig (pick_lit ()) (pick_lit ()) in
      let b = Aig.band aig a (pick_lit ()) in
      Aig.delete_dangling aig (Aig.node_of b);
      Aig.delete_dangling aig (Aig.node_of a)
  done

let test_copy_edit_equivalence =
  Helpers.qcheck_case "same edit script on aig and snapshot converges"
    ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let aig = Helpers.random_aig ~inputs:6 ~ands:40 ~outputs:3 rng in
      let snap = Aig.copy aig in
      Aig.check aig;
      Aig.check snap;
      if Aig.fold_hash aig <> Aig.fold_hash snap then false
      else begin
        (* Only one side compacts its arenas mid-script: compaction
           must be unobservable, so both sides still converge. *)
        apply_edits (seed + 1) aig;
        Aig.compact_arenas aig;
        apply_edits (seed + 2) aig;
        apply_edits (seed + 1) snap;
        apply_edits (seed + 2) snap;
        Aig.check aig;
        Aig.check snap;
        Aig.fold_hash aig = Aig.fold_hash snap
        && check_fanouts_match aig && check_fanouts_match snap
      end)

let test_compact_rebuild_equivalence =
  Helpers.qcheck_case "compact preserves the structural digest" ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let aig = Helpers.random_aig ~inputs:6 ~ands:50 ~outputs:4 rng in
      apply_edits (seed + 1) aig;
      let h = Aig.fold_hash aig in
      let fresh, _remap = Aig.compact aig in
      Aig.check fresh;
      h = Aig.fold_hash fresh
      && h = Aig.fold_hash aig (* compact must not disturb the source *)
      && check_fanouts_match fresh)

let test_copy_origin_independence () =
  let rng = Rng.create 42 in
  let aig = Helpers.random_aig ~inputs:5 ~ands:30 ~outputs:2 rng in
  let snap = Aig.copy aig in
  (* Interning new origins on both sides after the copy-on-write share
     must keep the tables independent. *)
  let o_snap = Aig.Origin.make ~pass:"snap-only" Aig.Origin.Resub in
  let o_orig = Aig.Origin.make ~pass:"orig-only" Aig.Origin.Mspf in
  Aig.set_origin snap o_snap;
  Aig.set_origin aig o_orig;
  let l1 = Aig.band snap (Aig.input_lit snap 0) (Aig.input_lit snap 3) in
  let l2 = Aig.band aig (Aig.input_lit aig 1) (Aig.input_lit aig 4) in
  Alcotest.(check string)
    "snapshot node carries its own tag" "snap-only"
    (Aig.node_origin snap (Aig.node_of l1)).Aig.Origin.pass;
  Alcotest.(check string)
    "original node carries its own tag" "orig-only"
    (Aig.node_origin aig (Aig.node_of l2)).Aig.Origin.pass;
  Aig.check aig;
  Aig.check snap;
  (* Neither table leaked the other's origin. *)
  let has aig pass =
    List.exists
      (fun (o, _, _) -> o.Aig.Origin.pass = pass)
      (Aig.origin_stats aig)
  in
  Alcotest.(check bool) "orig-only absent from snapshot" false
    (has snap "orig-only");
  Alcotest.(check bool) "snap-only absent from original" false
    (has aig "snap-only")

(* --- allocation budget: O(live) snapshots --- *)

(* Snapshot cost on a table1-sized network (a 30k-AND chain — large
   enough that fixed costs like the strash-table copy amortize below
   a word per node; EPFL generators at quick scales are too small
   for a stable per-node figure). The bound is ~2x the measured
   allocation at the time this test was written; the pre-arena copy
   (two boxed vectors per node slot plus full intern-table
   duplication) sits far above it. *)
let test_snapshot_allocation_budget () =
  let aig = Aig.create () in
  let ins = Array.init 16 (fun _ -> Aig.add_input aig) in
  let acc = ref (Aig.band aig ins.(0) ins.(1)) in
  for i = 0 to 29_999 do
    acc := Aig.band aig (Aig.lnot !acc) ins.(i mod 16)
  done;
  ignore (Aig.add_output aig !acc);
  let copies = 5 in
  let allocated () =
    let s = Gc.quick_stat () in
    s.Gc.minor_words +. s.Gc.major_words
  in
  let before = allocated () in
  let keep = ref [] in
  for _ = 1 to copies do
    keep := Aig.copy aig :: !keep
  done;
  let words = (allocated () -. before) /. float_of_int copies in
  ignore (Sys.opaque_identity !keep);
  let nodes = Aig.num_nodes aig in
  (* Generous per-copy cap: ~45 words per allocated node slot, about
     2x the ~23 measured — covers the seven per-node arrays, both CSR
     arenas and the strash table with margin to spare. *)
  let budget = 45.0 *. float_of_int nodes in
  Alcotest.(check bool)
    (Printf.sprintf "copy of %d-node AIG allocates %.0f words (cap %.0f)"
       nodes words budget)
    true (words < budget)

let suite =
  [
    test_csr_mirrors_vec;
    test_csr_copy_independent;
    test_copy_edit_equivalence;
    test_compact_rebuild_equivalence;
    Alcotest.test_case "copy: origin tables are copy-on-write independent."
      `Quick test_copy_origin_independence;
    Alcotest.test_case "copy: table1-sized snapshot allocation budget." `Slow
      test_snapshot_allocation_budget;
  ]
