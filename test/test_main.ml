let () =
  Alcotest.run "sbm"
    [
      ("util", Test_util.suite);
      ("truthtable", Test_tt.suite);
      ("cut-synth", Test_cut_synth.suite);
      ("bdd", Test_bdd.suite);
      ("aig", Test_aig.suite);
      ("arena", Test_arena.suite);
      ("passes", Test_passes.suite);
      ("sop", Test_sop.suite);
      ("network", Test_network.suite);
      ("sat", Test_sat.suite);
      ("core-engines", Test_core_engines.suite);
      ("backend", Test_backend.suite);
      ("epfl", Test_epfl.suite);
      ("flow-extra", Test_flow_extra.suite);
      ("minimize", Test_minimize.suite);
      ("npn-aiger", Test_npn_aiger.suite);
      ("diff-extra", Test_diff_extra.suite);
      ("mspf-tt", Test_mspf_tt.suite);
      ("word", Test_word.suite);
      ("obs", Test_obs.suite);
      ("flight", Test_flight.suite);
      ("provenance", Test_provenance.suite);
      ("report", Test_report.suite);
      ("ledger", Test_ledger.suite);
      ("par", Test_par.suite);
      ("prefilter", Test_prefilter.suite);
      ("metrics", Test_metrics.suite);
      ("fingerprint", Test_fingerprint.suite);
    ]
