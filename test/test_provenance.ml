(* Provenance invariants: every live node carries an origin tag, tags
   survive copy/compact/balance and a full flow run, and attribution
   shares sum to 100 %. *)

module Aig = Sbm_aig.Aig
module Origin = Sbm_aig.Aig.Origin
module Rng = Sbm_util.Rng
module Attribution = Sbm_report.Attribution

(* Live-node tags grouped as (pass, kind-string, live), sorted — the
   comparable fingerprint of a network's provenance. *)
let live_tags aig =
  Aig.origin_stats aig
  |> List.filter_map (fun ((o : Origin.t), _created, live) ->
         if live > 0 then Some (o.pass, Origin.kind_to_string o.kind, live)
         else None)
  |> List.sort compare

let sum_live aig =
  List.fold_left (fun acc (_, _, live) -> acc + live) 0 (Aig.origin_stats aig)

let test_default_is_seed () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let x = Aig.band aig a b in
  ignore (Aig.add_output aig x);
  Alcotest.(check string) "ambient origin" "seed" (Aig.current_origin aig).pass;
  let o = Aig.node_origin aig (Aig.node_of x) in
  Alcotest.(check string) "node tagged seed" "seed" o.Origin.pass;
  Alcotest.(check bool) "kind seed" true (o.Origin.kind = Origin.Seed);
  Alcotest.(check int) "live sums to size" (Aig.size aig) (sum_live aig)

let test_set_origin_stamps_and_counts () =
  let aig = Aig.create () in
  let a = Aig.add_input aig in
  let b = Aig.add_input aig in
  let c = Aig.add_input aig in
  let seeded = Aig.band aig a b in
  let rw = Origin.make ~pass:"rewrite" Origin.Rewrite in
  Aig.set_origin aig rw;
  let fresh = Aig.band aig seeded c in
  ignore (Aig.add_output aig fresh);
  Alcotest.(check string) "new node tagged" "rewrite"
    (Aig.node_origin aig (Aig.node_of fresh)).Origin.pass;
  Alcotest.(check string) "old node keeps seed" "seed"
    (Aig.node_origin aig (Aig.node_of seeded)).Origin.pass;
  (* A strash hit must not re-stamp or re-count. *)
  let hit = Aig.band aig a b in
  Alcotest.(check int) "strash hit" seeded hit;
  Alcotest.(check string) "hit keeps first stamp" "seed"
    (Aig.node_origin aig (Aig.node_of hit)).Origin.pass;
  let created_of pass =
    List.fold_left
      (fun acc ((o : Origin.t), created, _) ->
        if o.pass = pass then acc + created else acc)
      0 (Aig.origin_stats aig)
  in
  Alcotest.(check int) "rewrite created 1" 1 (created_of "rewrite");
  Alcotest.(check int) "seed created 1" 1 (created_of "seed");
  Aig.check aig

let stamped_random_aig rng =
  (* A random network built under several distinct tags. *)
  let aig = Helpers.random_aig ~inputs:6 ~ands:60 ~outputs:4 rng in
  let n = Aig.num_nodes aig in
  let tags =
    [|
      Origin.seed;
      Origin.make ~pass:"rewrite" Origin.Rewrite;
      Origin.make ~pass:"gradient/resub" Origin.Resub;
      Origin.make ~pass:"mspf" Origin.Mspf;
    |]
  in
  for v = 1 to n - 1 do
    if Aig.is_and aig v then
      Aig.set_node_origin aig v tags.(Rng.int rng (Array.length tags))
  done;
  aig

let test_copy_preserves_origins () =
  let rng = Rng.create 7 in
  for _ = 0 to 4 do
    let aig = stamped_random_aig rng in
    let cp = Aig.copy aig in
    Alcotest.(check (list (triple string string int)))
      "copy keeps live tags" (live_tags aig) (live_tags cp);
    Aig.check cp
  done

let test_compact_preserves_origins () =
  let rng = Rng.create 11 in
  for _ = 0 to 4 do
    let aig = stamped_random_aig rng in
    let before = live_tags aig in
    let compacted, _map = Aig.compact aig in
    Alcotest.(check (list (triple string string int)))
      "compact keeps live tags" before (live_tags compacted);
    Alcotest.(check int) "live sums to size" (Aig.size compacted)
      (sum_live compacted);
    Alcotest.(check string) "ambient origin survives"
      (Aig.current_origin aig).Origin.pass
      (Aig.current_origin compacted).Origin.pass;
    Aig.check compacted
  done

let test_balance_adopts_origins () =
  let rng = Rng.create 23 in
  for _ = 0 to 4 do
    let aig = stamped_random_aig rng in
    let balanced = Sbm_aig.Balance.run aig in
    (* Balance rebuilds trees, so per-tag live counts can shift, but
       every tag set present before must still be the only tags after
       (no balance-invented tag), and every live node must be tagged. *)
    let tag_names net =
      live_tags net |> List.map (fun (p, _, _) -> p) |> List.sort_uniq compare
    in
    List.iter
      (fun p ->
        Alcotest.(check bool)
          ("tag " ^ p ^ " known before balance")
          true
          (List.mem p (tag_names aig @ [ "seed" ])))
      (tag_names balanced);
    Alcotest.(check int) "live sums to size" (Aig.size balanced)
      (sum_live balanced);
    Aig.check balanced
  done

let test_flow_attribution_sums () =
  (* End-to-end: run the full SBM flow on an EPFL benchmark, map it,
     and check the attribution shares close. *)
  let bench =
    match Sbm_epfl.Epfl.of_name "ctrl" with
    | Some b -> b
    | None -> Alcotest.fail "ctrl benchmark missing"
  in
  let aig = Sbm_epfl.Epfl.generate bench in
  let optimized = Sbm_core.Flow.run (Sbm_core.Flow.Sbm Sbm_core.Flow.Low) aig in
  Aig.check optimized;
  let mapping = Sbm_lutmap.Lut_map.map ~k:6 optimized in
  let att = Attribution.compute optimized mapping in
  Alcotest.(check int) "total_live = size" (Aig.size optimized) att.total_live;
  Alcotest.(check int) "rows sum to total_live" att.total_live
    (List.fold_left (fun acc (r : Attribution.row) -> acc + r.live) 0 att.rows);
  Alcotest.(check int) "total_luts = lut_count" mapping.lut_count att.total_luts;
  Alcotest.(check int) "rows sum to total_luts" att.total_luts
    (List.fold_left (fun acc (r : Attribution.row) -> acc + r.luts) 0 att.rows);
  let pct_sum rows =
    List.fold_left (fun acc (r : Attribution.row) -> acc +. r.live_pct) 0.0 rows
  in
  Alcotest.(check bool) "pass shares sum to 100%" true
    (Float.abs (pct_sum att.rows -. 100.0) < 0.01);
  Alcotest.(check bool) "engine shares sum to 100%" true
    (Float.abs (pct_sum att.engines -. 100.0) < 0.01);
  (* A real flow must not leave everything attributed to the seed. *)
  let non_seed =
    List.exists
      (fun (r : Attribution.row) -> r.kind <> Origin.Seed && r.live > 0)
      att.rows
  in
  Alcotest.(check bool) "some optimized nodes attributed" true non_seed;
  (* JSON round-trip through the report parser. *)
  let json = Attribution.to_json att in
  match Sbm_report.Json.parse json with
  | exception Sbm_report.Json.Bad msg -> Alcotest.fail ("bad JSON: " ^ msg)
  | j ->
    Alcotest.(check (option int))
      "total_live in JSON" (Some att.total_live)
      Sbm_report.Json.(to_int (member "total_live" j));
    Alcotest.(check int) "passes array length" (List.length att.rows)
      (List.length Sbm_report.Json.(to_list (member "passes" j)))

let suite =
  [
    Alcotest.test_case "default origin is seed" `Quick test_default_is_seed;
    Alcotest.test_case "set_origin stamps and counts" `Quick
      test_set_origin_stamps_and_counts;
    Alcotest.test_case "copy preserves origins" `Quick
      test_copy_preserves_origins;
    Alcotest.test_case "compact preserves origins" `Quick
      test_compact_preserves_origins;
    Alcotest.test_case "balance adopts origins" `Quick
      test_balance_adopts_origins;
    Alcotest.test_case "flow attribution sums to 100%" `Slow
      test_flow_attribution_sums;
  ]
