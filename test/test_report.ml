(* The regression observatory: snapshot round-trips (including
   reading documents older than the current schema version), diff
   classification against tolerance thresholds, the exit-code gate,
   and the gradient engine's explain stream. *)

module Aig = Sbm_aig.Aig
module Obs = Sbm_obs
module Snapshot = Sbm_obs.Snapshot
module Report = Sbm_report.Report
module Json = Sbm_report.Json
module Gradient = Sbm_core.Gradient
module Rng = Sbm_util.Rng

let entry ?(counters = []) ?(wall_ms = 100.0) ?(passes = []) ?(size_before = -1)
    bench size depth luts levels =
  {
    Snapshot.bench;
    size_before;
    qor = { Snapshot.size; depth; luts; levels };
    wall_ms;
    counters;
    passes;
  }

(* --- snapshot round-trip --- *)

let test_snapshot_round_trip () =
  let snapshot =
    Snapshot.make ~label:"flow=sbm-low \"quoted\"" ~seed:42
      [
        entry ~counters:[ ("gradient.moves_tried", 12); ("sat.conflicts", 3) ]
          ~wall_ms:12.5 ~size_before:106 "ctrl" 52 10 20 3;
        (* No size_before: the key is omitted and must parse back as
           the -1 "unrecorded" sentinel. *)
        entry ~wall_ms:640.125 "router" 105 10 30 3;
      ]
  in
  match Report.snapshot_of_json (Snapshot.to_json snapshot) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok parsed ->
    Alcotest.(check int) "version" Snapshot.current_version parsed.Snapshot.version;
    Alcotest.(check string) "label with quotes" "flow=sbm-low \"quoted\""
      parsed.Snapshot.label;
    Alcotest.(check int) "seed" 42 parsed.Snapshot.seed;
    Alcotest.(check bool) "entries identical" true
      (parsed.Snapshot.entries = snapshot.Snapshot.entries)

let test_snapshot_file_round_trip () =
  let snapshot = Snapshot.make ~label:"t" [ entry "dec" 503 6 280 2 ] in
  let path = Filename.temp_file "sbm_snapshot" ".json" in
  Snapshot.write snapshot path;
  let loaded = Report.load_snapshot path in
  Sys.remove path;
  match loaded with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok parsed ->
    Alcotest.(check bool) "file round trip" true (parsed = snapshot)

let test_snapshot_version_tolerance () =
  (* A version-0 document from a hypothetical older writer: no label,
     no seed, no counters. Readers must accept it with defaults. *)
  let v0 =
    "{\"version\":0,\"entries\":[{\"bench\":\"ctrl\",\"size\":52,\"depth\":10,\"luts\":20,\"levels\":3}]}"
  in
  (match Report.snapshot_of_json v0 with
  | Error msg -> Alcotest.failf "old version rejected: %s" msg
  | Ok s ->
    Alcotest.(check int) "old version kept" 0 s.Snapshot.version;
    Alcotest.(check string) "label defaults" "" s.Snapshot.label;
    Alcotest.(check int) "seed defaults" 0 s.Snapshot.seed;
    (match s.Snapshot.entries with
    | [ e ] ->
      Alcotest.(check (list (pair string int))) "counters default" []
        e.Snapshot.counters;
      Alcotest.(check (float 1e-9)) "wall_ms defaults" 0.0 e.Snapshot.wall_ms
    | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)));
  (* Documents from the future are rejected, not misread. *)
  (match Report.snapshot_of_json "{\"version\":99,\"entries\":[]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version accepted");
  (* Garbage is an error, not an exception. *)
  match Report.snapshot_of_json "{\"version\":" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON accepted"

(* --- diff classification --- *)

let test_diff_classification () =
  let old_snap =
    Snapshot.make
      [
        entry ~wall_ms:100.0 "improves" 100 10 40 5;
        entry ~wall_ms:100.0 "tolerated" 100 10 40 5;
        entry ~wall_ms:100.0 "regresses" 100 10 40 5;
      ]
  in
  let new_snap =
    Snapshot.make
      [
        entry ~wall_ms:100.0 "improves" 90 10 40 5;
        entry ~wall_ms:100.0 "tolerated" 101 10 40 5;
        entry ~wall_ms:100.0 "regresses" 110 10 40 5;
      ]
  in
  let d =
    Report.diff
      ~tolerance:{ Report.qor_pct = 2.0; time_pct = 25.0 }
      old_snap new_snap
  in
  let row bench =
    List.find (fun (r : Report.row) -> r.Report.bench = bench) d.Report.rows
  in
  let size_delta bench =
    List.find (fun (dl : Report.delta) -> dl.Report.metric = "size")
      (row bench).Report.deltas
  in
  (* The row verdict is the worst delta, so an isolated improvement
     leaves the row Unchanged; the size delta itself is Improved. *)
  Alcotest.(check bool) "improvement" true
    ((size_delta "improves").Report.verdict = Report.Improved);
  Alcotest.(check bool) "improved row does not gate" true
    ((row "improves").Report.verdict = Report.Unchanged);
  Alcotest.(check bool) "within tolerance" true
    ((row "tolerated").Report.verdict = Report.Tolerated);
  Alcotest.(check bool) "regression" true
    ((row "regresses").Report.verdict = Report.Regressed);
  Alcotest.(check bool) "overall regressed" true
    (d.Report.verdict = Report.Regressed);
  Alcotest.(check int) "exit code on regression" 1 (Report.exit_code d);
  (* Without the regressing benchmark the diff passes. *)
  let ok =
    Report.diff
      (Snapshot.make [ entry "a" 100 10 40 5 ])
      (Snapshot.make [ entry "a" 100 10 40 5 ])
  in
  Alcotest.(check int) "exit code when clean" 0 (Report.exit_code ok);
  let improved =
    Report.diff
      (Snapshot.make [ entry "a" 100 10 40 5 ])
      (Snapshot.make [ entry "a" 90 9 38 5 ])
  in
  Alcotest.(check int) "exit code on improvement" 0 (Report.exit_code improved)

let test_diff_time_and_membership () =
  (* Wall time regressions respect their own threshold, and
     [time_pct = infinity] disables time gating entirely. *)
  let old_snap = Snapshot.make [ entry ~wall_ms:100.0 "a" 100 10 40 5 ] in
  let slow = Snapshot.make [ entry ~wall_ms:200.0 "a" 100 10 40 5 ] in
  let gated =
    Report.diff ~tolerance:{ Report.qor_pct = 2.0; time_pct = 25.0 } old_snap slow
  in
  Alcotest.(check int) "time regression gates" 1 (Report.exit_code gated);
  let ungated =
    Report.diff
      ~tolerance:{ Report.qor_pct = 2.0; time_pct = infinity }
      old_snap slow
  in
  Alcotest.(check int) "ignore-time passes" 0 (Report.exit_code ungated);
  (* A benchmark missing from the new snapshot is a regression (the
     gate must not pass because coverage silently shrank). *)
  let dropped = Report.diff old_snap (Snapshot.make []) in
  Alcotest.(check (list string)) "dropped listed" [ "a" ] dropped.Report.only_old;
  Alcotest.(check int) "dropped bench fails the gate" 1 (Report.exit_code dropped);
  (* A new benchmark is informational only. *)
  let added = Report.diff (Snapshot.make []) old_snap in
  Alcotest.(check (list string)) "added listed" [ "a" ] added.Report.only_new;
  Alcotest.(check int) "added bench passes" 0 (Report.exit_code added)

let test_diff_ignore_time () =
  (* --ignore-time drops wall time from the comparison entirely: no
     wall_ms delta row, no time verdict, and pp prints no speedup
     column — QoR-only gating output is stable across machines. *)
  let old_snap = Snapshot.make [ entry ~wall_ms:100.0 "a" 100 10 40 5 ] in
  let slow = Snapshot.make [ entry ~wall_ms:900.0 "a" 100 10 40 5 ] in
  let d = Report.diff ~ignore_time:true old_snap slow in
  Alcotest.(check int) "time ignored, clean exit" 0 (Report.exit_code d);
  (match d.Report.rows with
  | [ r ] ->
    Alcotest.(check (list string))
      "wall_ms delta dropped"
      [ "size"; "depth"; "luts"; "levels" ]
      (List.map (fun (dl : Report.delta) -> dl.Report.metric) r.Report.deltas)
  | l -> Alcotest.failf "expected 1 row, got %d" (List.length l));
  let screen = Fmt.str "%a" Report.pp d in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no speedup column" false (contains "speedup" screen);
  Alcotest.(check bool) "no wall_ms row" false (contains "wall_ms" screen);
  (* With time kept, both appear. *)
  let screen = Fmt.str "%a" Report.pp (Report.diff old_snap slow) in
  Alcotest.(check bool) "speedup column present by default" true
    (contains "speedup" screen)

let test_diff_counter_deltas () =
  let old_snap =
    Snapshot.make
      [ entry ~counters:[ ("sat.conflicts", 10); ("stable", 5) ] "a" 100 10 40 5 ]
  in
  let new_snap =
    Snapshot.make
      [ entry ~counters:[ ("sat.conflicts", 14); ("fresh", 2); ("stable", 5) ]
          "a" 100 10 40 5 ]
  in
  match (Report.diff old_snap new_snap).Report.rows with
  | [ r ] ->
    Alcotest.(check (list (pair string (pair int int))))
      "changed counters only, sorted"
      [ ("fresh", (0, 2)); ("sat.conflicts", (10, 14)) ]
      (List.map
         (fun (c : Report.counter_delta) ->
           (c.Report.counter, (c.Report.old_count, c.Report.new_count)))
         r.Report.counter_deltas)
  | l -> Alcotest.failf "expected 1 row, got %d" (List.length l)

(* --- machine-readable diff (sbm diff --json) --- *)

let test_diff_to_json () =
  let d =
    Report.diff
      (Snapshot.make
         [
           entry ~counters:[ ("sat.conflicts", 10) ] ~wall_ms:100.0 "a" 100 10
             40 5;
           entry "gone" 50 5 20 2;
         ])
      (Snapshot.make
         [
           entry ~counters:[ ("sat.conflicts", 14) ] ~wall_ms:100.0 "a" 110 10
             40 5;
           entry "new" 60 6 22 2;
         ])
  in
  let json = Json.parse (Report.to_json d) in
  Alcotest.(check (option string))
    "overall verdict" (Some "regressed")
    (Json.to_str (Json.member "verdict" json));
  (match Json.to_list (Json.member "rows" json) with
  | [ row ] ->
    Alcotest.(check (option string))
      "bench" (Some "a")
      (Json.to_str (Json.member "bench" row));
    Alcotest.(check (option string))
      "row verdict" (Some "regressed")
      (Json.to_str (Json.member "verdict" row));
    let deltas = Json.to_list (Json.member "deltas" row) in
    Alcotest.(check int) "five metric deltas" 5 (List.length deltas);
    let size_delta =
      List.find
        (fun dl -> Json.to_str (Json.member "metric" dl) = Some "size")
        deltas
    in
    Alcotest.(check (option (float 1e-9)))
      "old size" (Some 100.0)
      (Json.to_float (Json.member "old" size_delta));
    Alcotest.(check (option string))
      "size verdict" (Some "regressed")
      (Json.to_str (Json.member "verdict" size_delta));
    (match Json.to_list (Json.member "counters" row) with
    | [ c ] ->
      Alcotest.(check (option string))
        "counter name" (Some "sat.conflicts")
        (Json.to_str (Json.member "counter" c));
      Alcotest.(check (option int))
        "counter new" (Some 14)
        (Json.to_int (Json.member "new" c))
    | l -> Alcotest.failf "expected 1 counter delta, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 row, got %d" (List.length l));
  let strs field =
    Json.to_list (Json.member field json)
    |> List.filter_map (fun j -> Json.to_str (Some j))
  in
  Alcotest.(check (list string)) "only_old" [ "gone" ] (strs "only_old");
  Alcotest.(check (list string)) "only_new" [ "new" ] (strs "only_new")

(* --- time-attribution profile --- *)

module Profile = Sbm_report.Profile

let test_profile_of_json () =
  (* A hand-written v2 trace: flow (10 ms) with children a (6 ms) and
     b (3 ms) — self times 1 / 6 / 3. *)
  let trace =
    "{\"version\":2,\"totals\":{},\"spans\":[{\"name\":\"flow\",\"wall_ms\":10.0,\
     \"children\":[{\"name\":\"a\",\"wall_ms\":6.0,\"children\":[]},{\"name\":\
     \"b\",\"wall_ms\":3.0,\"children\":[]}]}]}"
  in
  match Profile.of_json trace with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok spans ->
    (match spans with
    | [ flow ] ->
      Alcotest.(check string) "root name" "flow" flow.Profile.name;
      Alcotest.(check (float 1e-9)) "root self" 1.0 (Profile.self_ms flow);
      Alcotest.(check int) "two children" 2 (List.length flow.Profile.children)
    | l -> Alcotest.failf "expected 1 root span, got %d" (List.length l));
    let aggs = Profile.aggregate spans in
    Alcotest.(check (list (pair string (pair (float 1e-9) (float 1e-9)))))
      "aggregation sorted by self time"
      [ ("a", (6.0, 6.0)); ("b", (3.0, 3.0)); ("flow", (10.0, 1.0)) ]
      (List.map
         (fun (a : Profile.agg) ->
           (a.Profile.agg_name, (a.Profile.total_ms, a.Profile.self_ms)))
         aggs);
    (* Self times sum to the run's wall time. *)
    Alcotest.(check (float 1e-9)) "self sums to wall" 10.0
      (List.fold_left (fun acc (a : Profile.agg) -> acc +. a.Profile.self_ms)
         0.0 aggs);
    (* Collapsed stacks: weights in integer self-microseconds. *)
    Alcotest.(check (list string))
      "collapsed stacks"
      [ "flow 1000"; "flow;a 6000"; "flow;b 3000" ]
      (Profile.to_collapsed spans)

let test_profile_real_trace () =
  (* Round-trip a real telemetry trace through the profiler. *)
  let rng = Rng.create 303 in
  let aig = Helpers.random_xor_aig ~inputs:6 ~gates:50 ~outputs:3 rng in
  let trace = Obs.create () in
  let root = Obs.root ~size:(Aig.size aig) trace "flow" in
  let rw = Obs.span root "rewrite" in
  ignore (Sbm_aig.Rewrite.run aig);
  Obs.close ~size:(Aig.size aig) rw;
  Obs.close ~size:(Aig.size aig) root;
  let path = Filename.temp_file "sbm_trace" ".json" in
  Obs.write trace path;
  let loaded = Profile.load path in
  Sys.remove path;
  match loaded with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok spans ->
    let aggs = Profile.aggregate spans in
    Alcotest.(check bool) "flow span present" true
      (List.exists (fun (a : Profile.agg) -> a.Profile.agg_name = "flow") aggs);
    Alcotest.(check bool) "rewrite span present" true
      (List.exists (fun (a : Profile.agg) -> a.Profile.agg_name = "rewrite") aggs);
    List.iter
      (fun (a : Profile.agg) ->
        Alcotest.(check bool)
          (a.Profile.agg_name ^ " self <= total")
          true
          (a.Profile.self_ms <= a.Profile.total_ms +. 1e-9))
      aggs;
    (* The hotspot table renders without raising. *)
    ignore (Fmt.str "%a" (Profile.pp_hotspots ~top:5) spans)

(* --- gradient explain stream --- *)

let test_gradient_explain_stream () =
  let rng = Rng.create 909 in
  let aig = Helpers.random_xor_aig ~inputs:7 ~gates:60 ~outputs:4 rng in
  let events = ref [] in
  let _optimized, stats =
    Gradient.run
      ~explain:(fun e -> events := e :: !events)
      ~config:{ Gradient.default_config with budget = 20 }
      aig
  in
  let events = List.rev !events in
  Alcotest.(check bool) "the engine did work" true (stats.Gradient.moves_tried > 0);
  (* Exactly one event per attempted move, in order. *)
  Alcotest.(check int) "one event per attempt" stats.Gradient.moves_tried
    (List.length events);
  List.iteri
    (fun i (e : Gradient.event) ->
      Alcotest.(check int) "iterations are sequential" (i + 1) e.Gradient.iteration)
    events;
  (* The waterfall verdict stream matches the run statistics. *)
  Alcotest.(check int) "accepted events = gaining moves"
    stats.Gradient.moves_gained
    (List.length (List.filter (fun (e : Gradient.event) -> e.Gradient.accepted) events));
  Alcotest.(check int) "charged costs sum to budget spent"
    stats.Gradient.budget_spent
    (List.fold_left (fun acc (e : Gradient.event) -> acc + e.Gradient.cost) 0 events);
  (* Waterfall: an accepted move gained, a rejected one did not. *)
  List.iter
    (fun (e : Gradient.event) ->
      Alcotest.(check bool)
        (Printf.sprintf "verdict consistent at iteration %d" e.Gradient.iteration)
        true
        (e.Gradient.accepted = (e.Gradient.gain > 0)))
    events;
  (* The event log agrees with the chronological move log. *)
  Alcotest.(check (list (pair string int)))
    "move log reproduced" stats.Gradient.move_log
    (List.map (fun (e : Gradient.event) -> (e.Gradient.move, e.Gradient.gain)) events);
  (* Every record serializes to standalone JSON carrying the verdict. *)
  List.iter
    (fun (e : Gradient.event) ->
      let json = Json.parse (Gradient.event_to_json e) in
      Alcotest.(check (option bool))
        "accepted field" (Some e.Gradient.accepted)
        (Json.to_bool (Json.member "accepted" json));
      Alcotest.(check (option string))
        "move field" (Some e.Gradient.move)
        (Json.to_str (Json.member "move" json));
      Alcotest.(check bool) "gradient field" true
        (Json.to_float (Json.member "gradient" json) <> None))
    events

let test_gradient_explain_parallel () =
  (* Parallel selection: at most one accepted event per round, and
     only a gaining move can be accepted. *)
  let rng = Rng.create 910 in
  let aig = Helpers.random_xor_aig ~inputs:6 ~gates:40 ~outputs:3 rng in
  let events = ref [] in
  let _optimized, stats =
    Gradient.run
      ~explain:(fun e -> events := e :: !events)
      ~config:
        { Gradient.default_config with budget = 12; selection = Gradient.Parallel }
      aig
  in
  let events = List.rev !events in
  Alcotest.(check int) "one event per attempt" stats.Gradient.moves_tried
    (List.length events);
  let by_round = Hashtbl.create 8 in
  List.iter
    (fun (e : Gradient.event) ->
      if e.Gradient.accepted then begin
        Alcotest.(check bool) "accepted implies gain" true (e.Gradient.gain > 0);
        Alcotest.(check bool)
          (Printf.sprintf "single accept in round %d" e.Gradient.round)
          false
          (Hashtbl.mem by_round e.Gradient.round);
        Hashtbl.add by_round e.Gradient.round ()
      end)
    events;
  Alcotest.(check int) "accepted rounds = gaining moves"
    stats.Gradient.moves_gained (Hashtbl.length by_round)

let suite =
  [
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_round_trip;
    Alcotest.test_case "snapshot file round-trip" `Quick test_snapshot_file_round_trip;
    Alcotest.test_case "snapshot version tolerance" `Quick test_snapshot_version_tolerance;
    Alcotest.test_case "diff classification" `Quick test_diff_classification;
    Alcotest.test_case "diff time and membership" `Quick test_diff_time_and_membership;
    Alcotest.test_case "diff ignore-time" `Quick test_diff_ignore_time;
    Alcotest.test_case "diff counter deltas" `Quick test_diff_counter_deltas;
    Alcotest.test_case "diff json output" `Quick test_diff_to_json;
    Alcotest.test_case "profile of hand-written trace" `Quick test_profile_of_json;
    Alcotest.test_case "profile of real trace" `Quick test_profile_real_trace;
    Alcotest.test_case "gradient explain stream" `Quick test_gradient_explain_stream;
    Alcotest.test_case "gradient explain parallel" `Quick test_gradient_explain_parallel;
  ]
