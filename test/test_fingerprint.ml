(* The determinism audit trail: Aig.fold_hash canonicality (the
   structural component), trail chaining and labels, the
   SBM_NONDET_INJECT perturbation hook, the divergence auditor's
   alignment/exit-code contract, and the JSONL stream round-trip. *)

module Aig = Sbm_aig.Aig
module Audit = Sbm_report.Audit
module FP = Sbm_obs.Fingerprint
module Obs = Sbm_obs
module Rng = Sbm_util.Rng

(* --- fold_hash: canonical under representation changes --- *)

(* The hash must depend only on the live cone plus the input/output
   counts: copy, compact (which renumbers and reorders fanins) and
   dead-node garbage leave it fixed; any functional edit moves it. *)
let test_fold_hash_canonical =
  Helpers.qcheck_case ~count:40 "fold_hash: representation-independent"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let aig = Helpers.random_xor_aig ~inputs:6 ~gates:30 ~outputs:3 rng in
      let h = Aig.fold_hash aig in
      if Aig.fold_hash (Aig.copy aig) <> h then
        QCheck2.Test.fail_report "copy changed the hash";
      let compacted, _ = Aig.compact aig in
      if Aig.fold_hash compacted <> h then
        QCheck2.Test.fail_report "compact changed the hash";
      (* Garbage: a chain of AND nodes never registered as outputs.
         Strashing may resolve some steps to existing (live) nodes —
         either way the live cone is untouched. *)
      let g = Aig.copy aig in
      let i0 = Aig.input_lit g 0
      and i1 = Aig.input_lit g 1
      and i2 = Aig.input_lit g 2 in
      let d0 = Aig.band g (Aig.lnot i0) (Aig.lnot i1) in
      let d1 = Aig.band g d0 (Aig.lnot i2) in
      ignore (Aig.band g d1 (Aig.lnot d0));
      if Aig.fold_hash g <> h then
        QCheck2.Test.fail_report "dead nodes changed the hash";
      (* One-gate functional edit: complementing an output changes the
         function, so it must change the hash. *)
      let e = Aig.copy aig in
      Aig.set_output e 0 (Aig.lnot (Aig.output_lit e 0));
      if Aig.fold_hash e = h then
        QCheck2.Test.fail_report "output complement left the hash fixed";
      true)

let test_fold_hash_distinguishes () =
  let build f =
    let aig = Aig.create () in
    let a = Aig.add_input aig in
    let b = Aig.add_input aig in
    ignore (Aig.add_output aig (f aig a b));
    aig
  in
  let h_and = Aig.fold_hash (build Aig.band) in
  let h_or = Aig.fold_hash (build Aig.bor) in
  let h_xor = Aig.fold_hash (build Aig.bxor) in
  Alcotest.(check bool) "and <> or" true (h_and <> h_or);
  Alcotest.(check bool) "and <> xor" true (h_and <> h_xor);
  Alcotest.(check bool) "or <> xor" true (h_or <> h_xor);
  (* Operand order is canonicalized away. *)
  let h_and_rev =
    Aig.fold_hash
      (build (fun aig a b -> Aig.band aig b a))
  in
  Alcotest.(check bool) "band a b = band b a" true (h_and = h_and_rev)

(* --- trail mechanics --- *)

let with_trail f =
  FP.enable ();
  Fun.protect ~finally:FP.disable f

let test_trail_labels () =
  with_trail (fun () ->
      FP.pass_started "iteration-1";
      FP.pass_started "mspf";
      FP.record_merge ~engine:"mspf" ~partition:0 ~structure:3L;
      FP.record_merge ~engine:"mspf" ~partition:1 ~structure:4L;
      ignore (FP.pass_ended ~structure:5L);
      ignore (FP.pass_ended ~structure:6L);
      let rs = FP.records () in
      Alcotest.(check int) "record count" 4 (List.length rs);
      Alcotest.(check (list int)) "seq in trail order" [ 0; 1; 2; 3 ]
        (List.map (fun r -> r.FP.seq) rs);
      Alcotest.(check (list string)) "labels"
        [
          "iteration-1/mspf/mspf-partition-0";
          "iteration-1/mspf/mspf-partition-1";
          "iteration-1/mspf";
          "iteration-1";
        ]
        (List.map (fun r -> r.FP.label) rs);
      Alcotest.(check (list string)) "kinds"
        [ "merge"; "merge"; "pass"; "pass" ]
        (List.map (fun r -> FP.kind_to_string r.FP.kind) rs))

(* Two trails that agree on a prefix agree on its chain values; a
   difference in record 0 flips every later chain even when the later
   records' own components are identical. *)
let test_chain_commits_to_prefix () =
  let trail s0 =
    with_trail (fun () ->
        FP.pass_started "a";
        ignore (FP.pass_ended ~structure:s0);
        FP.pass_started "b";
        ignore (FP.pass_ended ~structure:2L);
        FP.records ())
  in
  let t1 = trail 1L and t1' = trail 1L and t9 = trail 9L in
  let chains t = List.map (fun r -> r.FP.chain) t in
  Alcotest.(check bool) "same inputs, same chains" true
    (chains t1 = chains t1');
  let r1 = List.nth t1 1 and r9 = List.nth t9 1 in
  Alcotest.(check bool) "record 1 components identical" true
    (r1.FP.structure = r9.FP.structure
    && r1.FP.counters_digest = r9.FP.counters_digest
    && r1.FP.label = r9.FP.label);
  Alcotest.(check bool) "record 1 chains diverge" true
    (r1.FP.chain <> r9.FP.chain)

let test_disabled_is_noop () =
  FP.disable ();
  FP.pass_started "ghost";
  Alcotest.(check int64) "pass_ended returns 0 while disabled" 0L
    (FP.pass_ended ~structure:1L);
  FP.record_merge ~engine:"ghost" ~partition:0 ~structure:1L;
  Alcotest.(check int) "no records while disabled" 0
    (List.length (FP.records ()))

(* --- the injection hook plants a localizable divergence --- *)

let test_injection_localized () =
  let run () =
    with_trail (fun () ->
        FP.pass_started "mspf";
        FP.record_merge ~engine:"mspf" ~partition:0 ~structure:10L;
        FP.record_merge ~engine:"mspf" ~partition:1 ~structure:11L;
        FP.record_merge ~engine:"mspf" ~partition:2 ~structure:12L;
        ignore (FP.pass_ended ~structure:13L);
        FP.records ())
  in
  let clean = run () in
  FP.inject := Some ("mspf", 1);
  let dirty =
    Fun.protect ~finally:(fun () -> FP.inject := None) run
  in
  match Audit.compare_trails clean dirty with
  | Audit.Identical _ -> Alcotest.fail "injected divergence went unnoticed"
  | Audit.Diverged d ->
    Alcotest.(check int) "diverges at the injected partition" 1 d.Audit.index;
    Alcotest.(check bool) "structure component named" true
      (List.mem Audit.Structure d.Audit.components);
    let desc = Audit.describe d in
    Alcotest.(check bool)
      (Printf.sprintf "describe names the boundary (%s)" desc)
      true
      (let sub = "mspf-partition-1" in
       let n = String.length sub in
       let rec has i =
         i + n <= String.length desc && (String.sub desc i n = sub || has (i + 1))
       in
       has 0)

(* --- auditor alignment and exit codes --- *)

let test_audit_identical_and_truncated () =
  let trail () =
    with_trail (fun () ->
        FP.pass_started "a";
        ignore (FP.pass_ended ~structure:1L);
        FP.pass_started "b";
        ignore (FP.pass_ended ~structure:2L);
        FP.records ())
  in
  let t = trail () and t' = trail () in
  (match Audit.compare_trails t t' with
  | Audit.Identical n -> Alcotest.(check int) "identical length" 2 n
  | Audit.Diverged _ -> Alcotest.fail "equal trails reported diverged");
  Alcotest.(check int) "exit 0 when identical" 0
    (Audit.exit_code (Audit.compare_trails t t'));
  (* A truncated trail diverges at the end of the shorter one. *)
  let short = [ List.hd t ] in
  (match Audit.compare_trails t short with
  | Audit.Identical _ -> Alcotest.fail "truncation went unnoticed"
  | Audit.Diverged d ->
    Alcotest.(check int) "diverges where B ends" 1 d.Audit.index;
    Alcotest.(check bool) "A side present" true (d.Audit.a <> None);
    Alcotest.(check bool) "B side absent" true (d.Audit.b = None));
  Alcotest.(check int) "exit 1 when diverged" 1
    (Audit.exit_code (Audit.compare_trails t short));
  match Audit.compare_trails [] [] with
  | Audit.Identical n -> Alcotest.(check int) "empty trails identical" 0 n
  | Audit.Diverged _ -> Alcotest.fail "empty trails reported diverged"

(* --- JSONL stream round-trip --- *)

let test_jsonl_roundtrip () =
  let rs =
    with_trail (fun () ->
        FP.pass_started "iteration-1";
        FP.pass_started "diff";
        FP.record_merge ~engine:"diff" ~partition:0 ~structure:7L;
        ignore (FP.pass_ended ~structure:8L);
        ignore (FP.pass_ended ~structure:9L);
        FP.records ())
  in
  List.iter
    (fun r ->
      match Audit.record_of_json (FP.record_to_json r) with
      | None -> Alcotest.failf "unparsable: %s" (FP.record_to_json r)
      | Some p ->
        Alcotest.(check int) "seq" r.FP.seq p.FP.seq;
        Alcotest.(check string) "label" r.FP.label p.FP.label;
        Alcotest.(check string) "kind" (FP.kind_to_string r.FP.kind)
          (FP.kind_to_string p.FP.kind);
        Alcotest.(check int64) "structure" r.FP.structure p.FP.structure;
        Alcotest.(check int64) "counters digest" r.FP.counters_digest
          p.FP.counters_digest;
        Alcotest.(check int64) "chain" r.FP.chain p.FP.chain;
        Alcotest.(check (list (pair string int))) "counter vector"
          r.FP.counters p.FP.counters)
    rs;
  (* A torn final line (killed run) is skipped, not fatal. *)
  let path = Filename.temp_file "sbm_fp" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iteri
        (fun i r ->
          if i < 2 then begin
            output_string oc (FP.record_to_json r);
            output_char oc '\n'
          end)
        rs;
      output_string oc "{\"seq\":2,\"kind\":\"pa";
      close_out oc;
      match Audit.load path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok loaded ->
        Alcotest.(check int) "torn line skipped" 2 (List.length loaded));
  match Audit.load "/nonexistent/sbm_fp.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreadable file must be an Error"

(* --- end to end: a flow run streams a trail and the auditor pins an
   injected divergence to the exact merge boundary --- *)

let run_flow_trail () =
  with_trail (fun () ->
      let rng = Rng.create 42 in
      let aig = Helpers.random_xor_aig ~inputs:8 ~gates:60 ~outputs:4 rng in
      let trace = Obs.create () in
      let root =
        Obs.root ~size:(Aig.size aig) ~depth:(Aig.depth aig) trace "t"
      in
      let optimized =
        Sbm_core.Flow.run ~obs:root (Sbm_core.Flow.Sbm Sbm_core.Flow.Low) aig
      in
      Obs.close ~size:(Aig.size optimized) ~depth:(Aig.depth optimized) root;
      FP.records ())

(* "engine-partition-N" from the last label segment. *)
let parse_merge_label label =
  let seg =
    match String.rindex_opt label '/' with
    | None -> label
    | Some i -> String.sub label (i + 1) (String.length label - i - 1)
  in
  let marker = "-partition-" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length seg then None
    else if String.sub seg i mlen = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let engine = String.sub seg 0 i in
    let n = String.sub seg (i + mlen) (String.length seg - i - mlen) in
    Option.map (fun n -> (engine, n)) (int_of_string_opt n)

let test_flow_injection_end_to_end () =
  let clean = run_flow_trail () in
  Alcotest.(check bool) "flow produced a trail" true (clean <> []);
  let merge =
    match List.find_opt (fun r -> r.FP.kind = FP.Merge) clean with
    | Some r -> r
    | None -> Alcotest.fail "flow produced no merge boundary"
  in
  let engine, partition =
    match parse_merge_label merge.FP.label with
    | Some p -> p
    | None -> Alcotest.failf "unparsable merge label %s" merge.FP.label
  in
  FP.inject := Some (engine, partition);
  let dirty =
    Fun.protect ~finally:(fun () -> FP.inject := None) run_flow_trail
  in
  match Audit.compare_trails clean dirty with
  | Audit.Identical _ -> Alcotest.fail "injected flow divergence unnoticed"
  | Audit.Diverged d ->
    Alcotest.(check int)
      (Printf.sprintf "localized to the first %s partition %d boundary" engine
         partition)
      merge.FP.seq d.Audit.index;
    Alcotest.(check bool) "structure component named" true
      (List.mem Audit.Structure d.Audit.components)

let suite =
  [
    test_fold_hash_canonical;
    Alcotest.test_case "fold_hash: distinguishes functions." `Quick
      test_fold_hash_distinguishes;
    Alcotest.test_case "trail: boundary labels and order." `Quick
      test_trail_labels;
    Alcotest.test_case "trail: chain commits to the prefix." `Quick
      test_chain_commits_to_prefix;
    Alcotest.test_case "trail: disabled is a no-op." `Quick
      test_disabled_is_noop;
    Alcotest.test_case "inject: divergence localized to the partition." `Quick
      test_injection_localized;
    Alcotest.test_case "audit: alignment and exit codes." `Quick
      test_audit_identical_and_truncated;
    Alcotest.test_case "jsonl: round-trip and torn-line tolerance." `Quick
      test_jsonl_roundtrip;
    Alcotest.test_case "flow: audit pins an injected merge divergence." `Slow
      test_flow_injection_end_to_end;
  ]
