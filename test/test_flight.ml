(* The in-flight observability layer: flight-recorder ring semantics,
   watchdog threshold rules and abort lifecycle, post-mortem dump
   round-trips through the inspect reader, and the flow's failure
   injection producing a parseable dump with the failing pass on the
   open span stack. The recorder and watchdog are process-global, so
   every test tears them down. *)

module Aig = Sbm_aig.Aig
module Obs = Sbm_obs
module FR = Sbm_obs.Flight_recorder
module Wd = Sbm_obs.Watchdog
module Inspect = Sbm_report.Inspect

let teardown () =
  Wd.disarm ();
  FR.disable ();
  Sbm_core.Flow.inject_failure_after := None

let protecting f () = Fun.protect ~finally:teardown f

(* --- ring buffer --- *)

let test_ring_wraparound () =
  FR.enable ~capacity:16 ();
  Alcotest.(check int) "capacity clamped to minimum" 16 (FR.capacity ());
  for i = 0 to 19 do
    FR.record ~engine:"test" ~metrics:[ ("i", i) ] "tick"
  done;
  let events = FR.events () in
  Alcotest.(check int) "ring holds capacity" 16 (List.length events);
  Alcotest.(check int) "recorded counts everything" 20 (FR.recorded ());
  Alcotest.(check int) "dropped = overwritten" 4 (FR.dropped ());
  (* Oldest first: the surviving window is seqs 4..19. *)
  Alcotest.(check int) "oldest surviving seq" 4 (List.hd events).FR.seq;
  Alcotest.(check int) "newest seq" 19
    (List.nth events 15).FR.seq;
  Alcotest.(check (list (pair string int)))
    "metrics ride along" [ ("i", 19) ]
    (List.nth events 15).FR.metrics

let test_disabled_is_noop () =
  FR.disable ();
  Alcotest.(check bool) "off by default" false (FR.enabled ());
  FR.record ~engine:"test" "ignored";
  FR.span_opened "ghost";
  Alcotest.(check int) "nothing recorded" 0 (FR.recorded ());
  Alcotest.(check (list (pair string int64))) "no stack" [] (FR.span_stack ());
  Alcotest.(check int) "no capacity" 0 (FR.capacity ())

let test_event_fields () =
  FR.enable ();
  FR.record ~severity:FR.Warn ~id:"partition-3"
    ~metrics:[ ("bails", 2); ("members", 41) ]
    ~engine:"mspf" "node-budget bail-out";
  (match FR.events () with
  | [ e ] ->
    Alcotest.(check string) "severity" "warn" (FR.severity_to_string e.FR.severity);
    Alcotest.(check string) "engine" "mspf" e.FR.engine;
    Alcotest.(check string) "id" "partition-3" e.FR.id;
    Alcotest.(check string) "message" "node-budget bail-out" e.FR.message;
    Alcotest.(check (list (pair string int)))
      "metrics in emission order"
      [ ("bails", 2); ("members", 41) ]
      e.FR.metrics;
    Alcotest.(check bool) "timestamped" true (e.FR.t_ns >= 0L)
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
  (* Re-enabling restarts from empty. *)
  FR.enable ();
  Alcotest.(check int) "re-enable resets" 0 (FR.recorded ())

let test_span_stack_follows_obs () =
  FR.enable ();
  let trace = Obs.create () in
  let root = Obs.root trace "flow" in
  let child = Obs.span root "mspf" in
  Alcotest.(check (list string))
    "innermost first" [ "mspf"; "flow" ]
    (List.map fst (FR.span_stack ()));
  Obs.close child;
  Alcotest.(check (list string))
    "pop on close" [ "flow" ]
    (List.map fst (FR.span_stack ()));
  Obs.close root;
  Alcotest.(check (list (pair string int64))) "empty at end" [] (FR.span_stack ())

(* --- watchdog rules --- *)

let arm_with f = Wd.arm (f Wd.default_config)

let rules () = List.map (fun v -> v.Wd.rule) (Wd.verdicts ())

let test_deadline_fires_once_per_pass () =
  arm_with (fun c -> { c with Wd.pass_deadline_ms = Some 0.0 });
  Wd.pass_started "mspf";
  Wd.poll ();
  Wd.poll ();
  Alcotest.(check (list string)) "one verdict per frame" [ "pass-deadline" ] (rules ());
  Wd.pass_ended "mspf";
  Wd.pass_started "mspf";
  Wd.poll ();
  Alcotest.(check int) "re-fires for a new activation" 2 (List.length (rules ()));
  (* The verdict also landed in the recorder (arm enables it). *)
  Alcotest.(check bool) "verdict recorded as event" true
    (List.exists (fun e -> e.FR.engine = "watchdog") (FR.events ()))

let test_bail_streak () =
  arm_with (fun c -> { c with Wd.max_bail_streak = Some 3 });
  Wd.note_partition ~engine:"mspf" ~bails:1;
  Wd.note_partition ~engine:"mspf" ~bails:2;
  Alcotest.(check (list string)) "below threshold" [] (rules ());
  Wd.note_partition ~engine:"mspf" ~bails:0 (* resets *);
  Wd.note_partition ~engine:"mspf" ~bails:1;
  Wd.note_partition ~engine:"mspf" ~bails:1;
  Wd.note_partition ~engine:"mspf" ~bails:1;
  Alcotest.(check (list string)) "streak of 3 fires" [ "bail-streak" ] (rules ())

let test_gradient_stall () =
  arm_with (fun c -> { c with Wd.stall_rounds = Some 2 });
  Wd.note_round ~gain:5;
  Wd.note_round ~gain:0;
  Alcotest.(check (list string)) "one dry round is fine" [] (rules ());
  Wd.note_round ~gain:0;
  Alcotest.(check (list string)) "two dry rounds stall" [ "gradient-stall" ] (rules ())

let test_abort_lifecycle () =
  arm_with (fun c ->
      { c with Wd.max_bail_streak = Some 1; action = Wd.Abort });
  Wd.pass_started "mspf";
  Alcotest.(check bool) "no abort yet" false (Wd.abort_requested ());
  Wd.note_partition ~engine:"mspf" ~bails:1;
  Alcotest.(check bool) "abort requested" true (Wd.abort_requested ());
  Wd.pass_ended "mspf";
  Alcotest.(check bool) "pass end clears abort" false (Wd.abort_requested ());
  Wd.disarm ();
  (* Disarmed hooks are no-ops. *)
  Wd.note_partition ~engine:"mspf" ~bails:9;
  Wd.poll ();
  Alcotest.(check bool) "disarmed" false (Wd.abort_requested ())

(* --- post-mortem dumps --- *)

let test_dump_round_trip () =
  FR.enable ();
  arm_with (fun c -> { c with Wd.stall_rounds = Some 1 });
  let trace = Obs.create () in
  Obs.Postmortem.configure ~trace ();
  let root = Obs.root trace "sbm" in
  let sp = Obs.span root "gradient" in
  Obs.add sp "gradient.rounds" 3;
  FR.record ~severity:FR.Debug ~id:"round-1" ~engine:"gradient"
    ~metrics:[ ("gain", 7) ]
    "round done";
  Wd.note_round ~gain:0 (* fires gradient-stall *);
  let json = Obs.Postmortem.to_json ~reason:"unit \"test\"" () in
  match Inspect.of_json json with
  | Error msg -> Alcotest.failf "dump does not parse: %s" msg
  | Ok d ->
    Alcotest.(check int) "version" 1 d.Inspect.version;
    Alcotest.(check string) "escaped reason survives" "unit \"test\"" d.Inspect.reason;
    Alcotest.(check (list string))
      "open spans outermost first" [ "sbm"; "gradient" ]
      (List.map (fun f -> f.Inspect.frame_name) d.Inspect.span_stack);
    (match d.Inspect.verdicts with
    | [ v ] ->
      Alcotest.(check string) "verdict rule" "gradient-stall" v.Inspect.rule;
      Alcotest.(check string) "verdict action" "note" v.Inspect.action
    | l -> Alcotest.failf "expected 1 verdict, got %d" (List.length l));
    Alcotest.(check int) "counters from the trace" 3
      (List.assoc "gradient.rounds" d.Inspect.counters);
    Alcotest.(check bool) "events survive" true
      (List.exists
         (fun e -> e.Inspect.id = "round-1" && e.Inspect.metrics = [ ("gain", 7) ])
         d.Inspect.events);
    (* Canonical re-emission parses back to the same dump. *)
    (match Inspect.of_json (Inspect.to_json d) with
    | Ok d2 -> Alcotest.(check bool) "to_json round-trips" true (d = d2)
    | Error msg -> Alcotest.failf "re-emission does not parse: %s" msg);
    Obs.close sp;
    Obs.close root

let test_inspect_rejects_bad_input () =
  let err s =
    match Inspect.of_json s with Ok _ -> "(ok)" | Error msg -> msg
  in
  Alcotest.(check string) "empty" "empty input" (err "");
  Alcotest.(check string) "whitespace only" "empty input" (err "  \n ");
  Alcotest.(check bool) "truncated JSON" true
    (String.length (err "{\"version\":1") > 0
    && err "{\"version\":1" <> "(ok)");
  Alcotest.(check string) "missing version"
    "not a post-mortem dump: missing \"version\"" (err "{\"events\":[]}");
  Alcotest.(check string) "future version"
    "unsupported dump version 99 (this sbm reads <= 1)"
    (err "{\"version\":99,\"events\":[]}")

let test_injected_failure_dumps () =
  FR.enable ();
  let trace = Obs.create () in
  Obs.Postmortem.configure ~trace ();
  let aig = Aig.create () in
  let x = Array.init 4 (fun _ -> Aig.add_input aig) in
  let f = Aig.band aig (Aig.band aig x.(0) x.(1)) (Aig.bor aig x.(2) x.(3)) in
  ignore (Aig.add_output aig f);
  Sbm_core.Flow.inject_failure_after := Some 1;
  let root = Obs.root trace "run" in
  (match Sbm_core.Flow.run ~obs:root Sbm_core.Flow.Gradient aig with
  | (_ : Aig.t) -> Alcotest.fail "injected failure did not fire"
  | exception Failure msg ->
    Alcotest.(check bool) "failure names the pass" true
      (String.length msg > 0
      && String.sub msg 0 (min 26 (String.length msg))
         = "injected failure in pass '"));
  Alcotest.(check (option int))
    "hook is one-shot" None !Sbm_core.Flow.inject_failure_after;
  (* The dump taken at this instant must parse and show the failing
     pass still open — the crash handler's view. *)
  match Inspect.of_json (Obs.Postmortem.to_json ~reason:"injected" ()) with
  | Error msg -> Alcotest.failf "crash dump does not parse: %s" msg
  | Ok d ->
    Alcotest.(check (list string))
      "failing pass on the open stack" [ "run"; "gradient" ]
      (List.map (fun f -> f.Inspect.frame_name) d.Inspect.span_stack);
    Alcotest.(check bool) "its start event is buffered" true
      (List.exists
         (fun e ->
           e.Inspect.engine = "flow" && e.Inspect.id = "gradient"
           && e.Inspect.message = "pass start")
         d.Inspect.events)

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick (protecting test_ring_wraparound);
    Alcotest.test_case "disabled is a no-op" `Quick (protecting test_disabled_is_noop);
    Alcotest.test_case "event fields" `Quick (protecting test_event_fields);
    Alcotest.test_case "span stack follows obs" `Quick
      (protecting test_span_stack_follows_obs);
    Alcotest.test_case "deadline fires once per pass" `Quick
      (protecting test_deadline_fires_once_per_pass);
    Alcotest.test_case "bail streak" `Quick (protecting test_bail_streak);
    Alcotest.test_case "gradient stall" `Quick (protecting test_gradient_stall);
    Alcotest.test_case "abort lifecycle" `Quick (protecting test_abort_lifecycle);
    Alcotest.test_case "dump round-trip" `Quick (protecting test_dump_round_trip);
    Alcotest.test_case "inspect rejects bad input" `Quick
      (protecting test_inspect_rejects_bad_input);
    Alcotest.test_case "injected failure dumps" `Quick
      (protecting test_injected_failure_dumps);
  ]
