(** Synthesis flows (paper Section V-A).

    [baseline] is the conventional algebraic/AIG script standing in
    for "state-of-the-art methods [1]" (a resyn2rs-style sequence of
    balancing, rewriting, refactoring and resubstitution).

    [sbm] is the paper's Boolean resynthesis script: AIG optimization
    (baseline + the gradient engine), heterogeneous elimination for
    kernel extraction on partitioned networks, enhanced MSPF with
    BDDs, collapse & Boolean decomposition on reconvergent MFFCs
    (refactoring with wide cuts), Boolean-difference optimization to
    escape local minima, and SAT sweeping + redundancy removal — the
    whole sequence iterated twice with different efforts, every step
    returning to the AIG representation.

    Every entry point takes an optional telemetry span ([?obs],
    default {!Sbm_obs.null}); with an enabled span each scripted pass
    is recorded as a child span carrying wall time, the size/depth
    delta, and the engine's counters. *)

type effort = Low | High

(** A flow script, the typed form of the CLI's [--flow] argument. *)
type script =
  | Baseline  (** algebraic/AIG baseline script *)
  | Sbm of effort  (** full SBM flow, two iterations *)
  | Gradient  (** gradient engine alone *)
  | Diff  (** Boolean-difference resubstitution alone *)
  | Mspf  (** BDD-based MSPF alone *)

(** All scripts, in the order offered by the CLI. *)
val all : script list

val to_string : script -> string

(** [of_string s] inverts {!to_string} ("baseline", "sbm", "sbm-low",
    "gradient", "diff", "mspf"). *)
val of_string : string -> script option

(** Failure injection for crash-dump testing: [Some n] makes the [n]th
    scripted pass from now raise [Failure], after its telemetry span
    has opened — so a post-mortem dump shows the pass on the open span
    stack. One-shot (reset to [None] when it fires). The
    [SBM_FAIL_AFTER=N] environment variable is the process-wide
    equivalent for driving a real [sbm] run to a crash. *)
val inject_failure_after : int option ref

(** LUT-6 probe for the per-pass ledger ({!Sbm_obs.Ledger}): maps the
    network and returns [(luts, levels)]. Installed by the CLI — the
    mapper library sits above this one in the dependency order. While
    unset, ledger rows record [-1] for both. *)
val ledger_qor_probe : (Sbm_aig.Aig.t -> int * int) option ref

(** [run ?obs ?explain ?prefilter ?sim_words script aig] dispatches on
    [script]. The input is not modified. [explain], when given,
    receives one {!Gradient.event} per move the gradient engine
    attempts (scripts that never reach the gradient engine emit
    nothing).

    [prefilter] (default [true]) arms the simulation-guided candidate
    prefilter: one {!Prefilter.bank} of [sim_words] 64-pattern words
    per input (default {!Prefilter.default_words}) is shared by every
    Boolean engine the script runs, and the SAT passes fold disproving
    counterexamples back into it. The filter is accept-preserving, so
    the optimized network is bit-identical with the prefilter on or
    off — only the [prefilter.*] counters and the engines' candidate
    workloads change. *)
val run :
  ?obs:Sbm_obs.span ->
  ?explain:(Gradient.event -> unit) ->
  ?prefilter:bool ->
  ?sim_words:int ->
  script ->
  Sbm_aig.Aig.t ->
  Sbm_aig.Aig.t

(** [baseline ?obs aig] is the optimized network under the baseline
    script. The input is not modified. *)
val baseline : ?obs:Sbm_obs.span -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t

(** [sbm ?obs ?explain ?effort ?prefilter ?sim_words aig] runs the
    full SBM script (default [High]). The input is not modified. A
    single pattern bank serves both iterations, so counterexamples
    found by iteration-1's SAT passes sharpen iteration-2's
    filtering. *)
val sbm :
  ?obs:Sbm_obs.span ->
  ?explain:(Gradient.event -> unit) ->
  ?effort:effort ->
  ?prefilter:bool ->
  ?sim_words:int ->
  Sbm_aig.Aig.t ->
  Sbm_aig.Aig.t

(** [sbm_once ?obs ?explain ?effort ?prefilter ?sim_words aig] is a
    single iteration of the script (the Low-effort half), for
    runtime-sensitive callers. *)
val sbm_once :
  ?obs:Sbm_obs.span ->
  ?explain:(Gradient.event -> unit) ->
  ?effort:effort ->
  ?prefilter:bool ->
  ?sim_words:int ->
  Sbm_aig.Aig.t ->
  Sbm_aig.Aig.t
