module Aig = Sbm_aig.Aig
module Obs = Sbm_obs
module M = Sbm_obs.Metrics

let m_move_cost =
  M.counter ~engine:"gradient" ~unit_:"cost" "move.cost"
    "summed cost of attempted gradient moves"

let m_move_gain =
  M.counter ~engine:"gradient" ~unit_:"nodes" "move.gain"
    "summed size gain of attempted gradient moves"

let m_gradient_aborts =
  M.counter ~engine:"watchdog" ~unit_:"aborts" "watchdog.gradient_aborts"
    "gradient runs cut short by a watchdog abort"

let m_budget_forfeited =
  M.counter ~engine:"gradient" ~unit_:"moves" "gradient.budget_forfeited"
    "move budget remaining when a watchdog abort ended the run"

let m_moves_tried =
  M.counter ~engine:"gradient" ~unit_:"moves" "gradient.moves_tried"
    "gradient moves attempted"

let m_moves_gained =
  M.counter ~engine:"gradient" ~unit_:"moves" "gradient.moves_gained"
    "gradient moves accepted with positive gain"

let m_gain =
  M.counter ~engine:"gradient" ~unit_:"nodes" "gradient.gain"
    "AIG nodes saved by accepted gradient moves"

let m_budget_spent =
  M.counter ~engine:"gradient" ~unit_:"moves" "gradient.budget_spent"
    "move budget consumed"

let m_budget_extensions =
  M.counter ~engine:"gradient" ~unit_:"extensions"
    "gradient.budget_extensions"
    "budget extensions granted while the gradient stayed promising"

let m_rounds =
  M.counter ~engine:"gradient" ~unit_:"rounds" "gradient.rounds"
    "gradient rounds executed"

type selection = Waterfall | Parallel

type config = {
  budget : int;
  k : int;
  min_gradient : float;
  selection : selection;
  zero_gain_moves : bool;
  engine : Engine_intf.config;
}

let default_config =
  {
    budget = 100;
    k = 20;
    min_gradient = 0.03;
    selection = Waterfall;
    zero_gain_moves = true;
    engine = Engine_intf.default;
  }

type stats = {
  moves_tried : int;
  moves_gained : int;
  total_gain : int;
  budget_spent : int;
  budget_extensions : int;
  move_log : (string * int) list;
}

type event = {
  iteration : int;
  round : int;
  tier : int;
  move : string;
  cost : int;
  gain : int;
  accepted : bool;
  budget_left : int;
  budget_spent : int;
  gradient : float;
  size : int;
}

let event_to_json e =
  Printf.sprintf
    "{\"iteration\":%d,\"round\":%d,\"tier\":%d,\"move\":%S,\"cost\":%d,\"gain\":%d,\"accepted\":%b,\"budget_left\":%d,\"budget_spent\":%d,\"gradient\":%.6f,\"size\":%d}"
    e.iteration e.round e.tier e.move e.cost e.gain e.accepted e.budget_left
    e.budget_spent e.gradient e.size

(* A move transforms the AIG (possibly returning a rebuilt one) and
   reports its exact size gain. All moves guarantee gain >= 0: pure
   in-place passes only commit improving changes, and rebuilding moves
   fall back to the input when they lose. Moves receive the span of
   their own attempt, so engine-level counters (BDD traffic, SAT
   effort) nest under the move that caused them. *)
type move = {
  name : string;
  kind : Aig.Origin.kind; (* provenance tag for nodes the move builds *)
  cost : int;
  apply : Obs.span -> Aig.t -> Aig.t * int;
}

let in_place name kind cost pass =
  { name; kind; cost; apply = (fun obs aig -> (aig, pass obs aig)) }

let rebuilding name kind cost build =
  {
    name;
    kind;
    cost;
    apply =
      (fun obs aig ->
        let before = Aig.size aig in
        let candidate = build obs aig in
        let after = Aig.size candidate in
        if after <= before then (candidate, before - after) else (aig, 0));
  }

(* The Boolean-engine moves dispatch through the unified
   {!Engine_intf.S} interface: the gradient config carries one engine
   config ([prefilter] bank, jobs override, watchdog discipline) that
   every engine move inherits, with only the move-specific partition
   size overridden per call site. *)
let moves ~zero_gain ~engine =
  let ecfg obs partition_nodes =
    { engine with Engine_intf.obs; partition_nodes }
  in
  [
    in_place "rewrite" Aig.Origin.Rewrite 1 (fun _ aig -> Sbm_aig.Rewrite.run aig);
    rebuilding "balance" Aig.Origin.Balance 1 (fun _ aig -> Sbm_aig.Balance.run aig);
    in_place "refactor" Aig.Origin.Refactor 2 (fun _ aig -> Sbm_aig.Refactor.run ~max_leaves:8 ~min_mffc:2 aig);
    in_place "resub" Aig.Origin.Resub 2 (fun _ aig -> Sbm_aig.Resub.run ~max_leaves:6 ~max_divisors:20 aig);
    in_place "rewrite -z" Aig.Origin.Rewrite 2 (fun _ aig ->
        if zero_gain then Sbm_aig.Rewrite.run ~zero_gain:true aig
        else Sbm_aig.Rewrite.run aig);
    rebuilding "eliminate & kernel" Aig.Origin.Kernel 3 (fun obs aig ->
        fst (Hetero_kernel.Engine.run (ecfg obs (Some 60)) aig));
    in_place "refactor -h" Aig.Origin.Refactor 4 (fun _ aig -> Sbm_aig.Refactor.run ~max_leaves:12 ~min_mffc:2 aig);
    in_place "resub -h" Aig.Origin.Resub 5 (fun _ aig ->
        Sbm_aig.Resub.run ~max_leaves:9 ~max_divisors:60 aig);
    in_place "mspf resub" Aig.Origin.Mspf 6 (fun obs aig ->
        (snd (Mspf.Engine.optimize (ecfg obs (Some 150)) aig)).Engine_intf.gain);
    rebuilding "eliminate & kernel -h" Aig.Origin.Kernel 6 (fun obs aig ->
        fst (Hetero_kernel.Engine.run (ecfg obs None) aig));
  ]

let optimize ?(obs = Obs.null) ?(explain = fun (_ : event) -> ())
    ?(config = default_config) aig0 =
  let aig = ref aig0 in
  let all_moves = moves ~zero_gain:config.zero_gain_moves ~engine:config.engine in
  let max_cost = List.fold_left (fun acc m -> max acc m.cost) 1 all_moves in
  let success : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let stat name gained =
    let s, t = Option.value ~default:(0, 0) (Hashtbl.find_opt success name) in
    Hashtbl.replace success name ((s + if gained then 1 else 0), t + 1)
  in
  let priority m =
    let s, t = Option.value ~default:(0, 0) (Hashtbl.find_opt success m.name) in
    if t = 0 then 0.5 else float_of_int s /. float_of_int t
  in
  let budget = ref config.budget in
  let tier = ref 1 in
  let tried = ref 0 in
  let gained = ref 0 in
  let total_gain = ref 0 in
  let spent = ref 0 in
  let extensions = ref 0 in
  let log = ref [] in
  let recent = Queue.create () in
  let initial_size = max 1 (Aig.size aig0) in
  let push_gain g =
    Queue.add g recent;
    if Queue.length recent > config.k then ignore (Queue.take recent)
  in
  let gradient () =
    if Queue.length recent < config.k then 1.0
    else
      let s = Queue.fold (fun acc g -> acc + g) 0 recent in
      float_of_int s /. float_of_int initial_size
  in
  (* A child span per attempted move: the trajectory artifact the
     bench emits is exactly this sequence. *)
  let timed_apply m target =
    (* Per-move provenance: nodes built by this attempt are the
       gradient engine's, attributed to the specific move. *)
    Aig.set_origin target
      (Aig.Origin.make ~pass:("gradient/" ^ m.name) m.kind);
    if not (Obs.enabled obs) then m.apply Obs.null target
    else begin
      let sp = Obs.span ~size:(Aig.size target) obs m.name in
      let next, gain = m.apply sp target in
      Obs.bump sp m_move_cost m.cost;
      Obs.bump sp m_move_gain gain;
      Obs.close ~size:(Aig.size next) sp;
      (next, gain)
    end
  in
  let continue_ = ref true in
  let round = ref 0 in
  while !continue_ && !budget > 0 do
    incr round;
    (* The early-termination gradient as of the start of this round:
       what the explain stream reports for every attempt in it. *)
    let round_gradient = gradient () in
    let emit m ~gain ~accepted ~size =
      explain
        {
          iteration = !tried;
          round = !round;
          tier = !tier;
          move = m.name;
          cost = m.cost;
          gain;
          accepted;
          budget_left = !budget;
          budget_spent = !spent;
          gradient = round_gradient;
          size;
        }
    in
    (* Candidate moves at the current tier, most promising first
       (recorded success, then cheapness). *)
    let tier_moves =
      List.filter (fun m -> m.cost <= !tier) all_moves
      |> List.sort (fun a b ->
             let c = compare (priority b) (priority a) in
             if c <> 0 then c else compare a.cost b.cost)
    in
    let apply_one m =
      budget := !budget - m.cost;
      spent := !spent + m.cost;
      incr tried;
      let next, gain = timed_apply m !aig in
      aig := next;
      stat m.name (gain > 0);
      if gain > 0 then begin
        incr gained;
        total_gain := !total_gain + gain
      end;
      log := (m.name, gain) :: !log;
      emit m ~gain ~accepted:(gain > 0) ~size:(Aig.size !aig);
      gain
    in
    let round_gain =
      match config.selection with
      | Waterfall ->
        (* First successful move wins; the rest are not tried. *)
        let rec go = function
          | [] -> 0
          | m :: rest ->
            let g = apply_one m in
            if g > 0 || !budget <= 0 then g else go rest
        in
        go tier_moves
      | Parallel ->
        (* Evaluate all moves on copies; commit the best. The explain
           events are emitted once the round's winner is known, in
           attempt order. *)
        let best = ref None in
        let attempts = ref [] in
        List.iter
          (fun m ->
            if !budget > 0 then begin
              budget := !budget - m.cost;
              spent := !spent + m.cost;
              incr tried;
              let copy = Aig.copy !aig in
              let next, gain = timed_apply m copy in
              stat m.name (gain > 0);
              log := (m.name, gain) :: !log;
              attempts := (!tried, m, gain, Aig.size next) :: !attempts;
              match !best with
              | Some (bg, _, _) when bg >= gain -> ()
              | Some _ | None -> best := Some (gain, m, next)
            end)
          tier_moves;
        let committed =
          match !best with
          | Some (gain, m, next) when gain > 0 ->
            aig := next;
            incr gained;
            total_gain := !total_gain + gain;
            Some m
          | Some _ | None -> None
        in
        List.iter
          (fun (iteration, m, gain, size) ->
            explain
              {
                iteration;
                round = !round;
                tier = !tier;
                move = m.name;
                cost = m.cost;
                gain;
                accepted = (match committed with Some c -> c == m | None -> false);
                budget_left = !budget;
                budget_spent = !spent;
                gradient = round_gradient;
                size;
              })
          (List.rev !attempts);
        (match !best with Some (gain, _, _) when gain > 0 -> gain | _ -> 0)
    in
    push_gain round_gain;
    let module FR = Obs.Flight_recorder in
    if FR.enabled () then
      FR.record ~severity:FR.Debug ~engine:"gradient"
        ~id:(Printf.sprintf "round-%d" !round)
        ~metrics:
          [ ("gain", round_gain); ("tier", !tier); ("budget_left", !budget);
            ("size", Aig.size !aig) ]
        "round done";
    Obs.Watchdog.note_round ~gain:round_gain;
    Obs.Watchdog.poll ();
    if Obs.Watchdog.abort_requested () then begin
      (* Graceful wind-down: the remaining budget is marked exhausted,
         so the run's accounting shows where the watchdog cut it. *)
      if FR.enabled () then
        FR.record ~severity:FR.Warn ~engine:"gradient"
          ~metrics:[ ("budget_forfeited", !budget) ]
          "aborted by watchdog; budget marked exhausted";
      Obs.bump obs m_gradient_aborts 1;
      Obs.bump obs m_budget_forfeited !budget;
      budget := 0;
      continue_ := false
    end;
    if round_gain = 0 then begin
      if !tier >= max_cost then continue_ := false else incr tier
    end
    else begin
      (* Gains at a cheap tier: stay greedy. Extend the budget while
         the optimization trend is good enough. *)
      if gradient () >= config.min_gradient && !budget < config.budget then begin
        budget := !budget + (config.budget / 2);
        incr extensions
      end
    end;
    if Queue.length recent >= config.k && gradient () <= 0.0 then continue_ := false
  done;
  Obs.bump obs m_moves_tried !tried;
  Obs.bump obs m_moves_gained !gained;
  Obs.bump obs m_gain !total_gain;
  Obs.bump obs m_budget_spent !spent;
  Obs.bump obs m_budget_extensions !extensions;
  Obs.bump obs m_rounds !round;
  ( !aig,
    {
      moves_tried = !tried;
      moves_gained = !gained;
      total_gain = !total_gain;
      budget_spent = !spent;
      budget_extensions = !extensions;
      move_log = List.rev !log;
    } )

let run ?obs ?explain ?config aig =
  let optimized, stats = optimize ?obs ?explain ?config (Aig.copy aig) in
  (fst (Aig.compact optimized), stats)

module Engine = struct
  let name = "gradient"
  let default_origin = Aig.Origin.make ~pass:"gradient" Aig.Origin.Other

  (* The engine config rides inside the gradient config; [effort]
     maps onto the budget the flow scripts historically used (12 for
     the low-effort iteration, 30 for the high-effort one). *)
  let config_of (c : Engine_intf.config) =
    {
      default_config with
      budget = (match c.Engine_intf.effort with Engine_intf.Low -> 12 | Engine_intf.High -> 30);
      engine = c;
    }

  let stats_of (s : stats) =
    {
      Engine_intf.gain = s.total_gain;
      details =
        [ ("moves_tried", s.moves_tried); ("moves_gained", s.moves_gained);
          ("budget_spent", s.budget_spent);
          ("budget_extensions", s.budget_extensions) ];
    }

  let run (c : Engine_intf.config) aig =
    let aig', s = run ~obs:c.Engine_intf.obs ~config:(config_of c) aig in
    (aig', stats_of s)

  let optimize (c : Engine_intf.config) aig =
    let aig', s = optimize ~obs:c.Engine_intf.obs ~config:(config_of c) aig in
    (aig', stats_of s)
end
