module Aig = Sbm_aig.Aig
module Bdd = Sbm_bdd.Bdd
module Partition = Sbm_partition.Partition
module Obs = Sbm_obs
module FR = Sbm_obs.Flight_recorder
module M = Sbm_obs.Metrics

let m_nodes =
  M.counter ~engine:"bdd" ~unit_:"nodes" "bdd.nodes"
    "BDD nodes allocated, summed over per-partition managers"

let m_unique_hits =
  M.counter ~engine:"bdd" "bdd.unique_hits" "unique-table lookup hits"

let m_unique_misses =
  M.counter ~engine:"bdd" "bdd.unique_misses"
    "unique-table lookup misses (fresh node allocations)"

let m_cache_hits =
  M.counter ~engine:"bdd" "bdd.cache_hits" "computed-cache hits"

let m_cache_misses =
  M.counter ~engine:"bdd" "bdd.cache_misses" "computed-cache misses"

let m_unique_hit_pct =
  M.counter ~engine:"bdd" ~unit_:"pct-points" "bdd.unique_hit_pct"
    "per-partition unique-table hit percentage, summed over flushes \
     (divide by bdd-engine partitions for the average)"

let m_cache_hit_pct =
  M.counter ~engine:"bdd" ~unit_:"pct-points" "bdd.cache_hit_pct"
    "per-partition computed-cache hit percentage, summed over flushes"

let m_limit_bails =
  M.counter ~engine:"bdd" ~unit_:"bails" "bdd.limit_bails"
    "BDD node-budget bail-outs (partition keeps a partial table)"

(* Occupancy gauges, raised via [set_max] so concurrent flushes and
   the per-pass ledger (which drains them at pass boundaries) never
   depend on write order. *)
let m_unique_load_pct =
  M.gauge ~engine:"bdd" ~unit_:"pct" "bdd.unique_load_pct"
    "max open-addressing unique-table load factor since the last pass \
     boundary (doubles at 75)"

let m_cache_load_pct =
  M.gauge ~engine:"bdd" ~unit_:"pct" "bdd.cache_load_pct"
    "max computed-cache slot occupancy since the last pass boundary"

type t = {
  aig : Aig.t;
  man : Bdd.man;
  member_set : (int, unit) Hashtbl.t;
  mutable order : int array; (* live members, current topological order *)
  mutable roots : int array;
  leaves : int array;
  node_bdd : (int, Bdd.t) Hashtbl.t;
  by_bdd : (Bdd.t, int) Hashtbl.t;
  leaf_lits : Aig.lit array;
  mutable bails : int; (* Bdd.Limit bail-outs observed through this ctx *)
}

let man t = t.man
let limit_bails t = t.bails

let bump_limit_bail t =
  t.bails <- t.bails + 1;
  if FR.enabled () then
    FR.record ~severity:FR.Warn ~engine:"bdd"
      ~metrics:
        [ ("bails", t.bails); ("bdd_nodes", Bdd.num_nodes t.man);
          ("members", Array.length t.order) ]
      "node-budget bail-out"

(* Integer percentage, 100 when there was no traffic at all. *)
let hit_pct hits misses =
  let total = hits + misses in
  if total = 0 then 100 else 100 * hits / total

(* Per-partition counter flush: raw unique/cache traffic, the derived
   hit ratios, and the bail-out count. The ratio counters are
   per-flush values; their trace totals are sums over partitions
   (divide by the partition count for an average). A cache hit-rate
   collapse under real traffic — the canonical sign of a partition
   whose BDDs blew past locality — also lands in the flight
   recorder. *)
let flush_stats ?(engine = "bdd") t obs =
  let bs = Bdd.stats t.man in
  let upct = hit_pct bs.Bdd.unique_hits bs.Bdd.unique_misses in
  let cpct = hit_pct bs.Bdd.cache_hits bs.Bdd.cache_misses in
  (* Load gauges update even without a span sink: the ledger consumes
     them through the registry alone. flush_stats runs on the main
     domain in ascending partition order in every execution path, so
     the maxima are job-count independent. *)
  M.set_max m_unique_load_pct
    (100 * (bs.Bdd.nodes - 2) / bs.Bdd.unique_capacity);
  M.set_max m_cache_load_pct (100 * bs.Bdd.cache_occupied / bs.Bdd.cache_slots);
  if Obs.enabled obs then begin
    Obs.bump obs m_nodes bs.Bdd.nodes;
    Obs.bump obs m_unique_hits bs.Bdd.unique_hits;
    Obs.bump obs m_unique_misses bs.Bdd.unique_misses;
    Obs.bump obs m_cache_hits bs.Bdd.cache_hits;
    Obs.bump obs m_cache_misses bs.Bdd.cache_misses;
    Obs.bump obs m_unique_hit_pct upct;
    Obs.bump obs m_cache_hit_pct cpct;
    Obs.bump obs m_limit_bails t.bails
  end;
  if
    FR.enabled ()
    && bs.Bdd.cache_hits + bs.Bdd.cache_misses >= 10_000
    && cpct < 20
  then
    FR.record ~severity:FR.Warn ~engine
      ~metrics:
        [ ("cache_hit_pct", cpct); ("unique_hit_pct", upct);
          ("bdd_nodes", bs.Bdd.nodes) ]
      "computed-cache hit-rate collapse"
let aig t = t.aig
let members t = t.order
let leaves t = t.leaves
let roots t = t.roots

(* Current topological order of the live members, against the live
   graph (partition orders go stale after in-place surgery). *)
let live_order t =
  let order = Aig.topo t.aig in
  Array.of_seq
    (Seq.filter
       (fun v -> Hashtbl.mem t.member_set v && Aig.is_and t.aig v)
       (Array.to_seq order))

(* Members with references from outside the member set (outputs or
   external fanouts): the observability boundary. *)
let live_roots t =
  let aig = t.aig in
  Array.of_seq
    (Seq.filter
       (fun v ->
         let member_refs =
           List.fold_left
             (fun acc fo ->
               if Hashtbl.mem t.member_set fo then
                 acc
                 + (if Aig.node_of (Aig.fanin0 aig fo) = v then 1 else 0)
                 + (if Aig.node_of (Aig.fanin1 aig fo) = v then 1 else 0)
               else acc)
             0 (Aig.fanout_nodes aig v)
         in
         Aig.nref aig v > member_refs)
       (Array.to_seq t.order))

let compute_bdds t =
  Hashtbl.reset t.node_bdd;
  Hashtbl.reset t.by_bdd;
  t.order <- live_order t;
  t.roots <- live_roots t;
  let aig = t.aig in
  try
    Array.iteri
      (fun i v ->
        let b = Bdd.ithvar t.man i in
        Hashtbl.replace t.node_bdd v b;
        if not (Hashtbl.mem t.by_bdd b) then Hashtbl.replace t.by_bdd b v)
      t.leaves;
    Array.iter
      (fun v ->
        let fanin_bdd f =
          let w = Aig.node_of f in
          let base = if w = 0 then Some (Bdd.zero t.man) else Hashtbl.find_opt t.node_bdd w in
          Option.map
            (fun b -> if Aig.is_compl f then Bdd.mnot t.man b else b)
            base
        in
        match (fanin_bdd (Aig.fanin0 aig v), fanin_bdd (Aig.fanin1 aig v)) with
        | Some b0, Some b1 -> (
          (* Budget overrun: the node keeps "a BDD of size 0" — i.e.
             stays absent — and the flow continues (paper III-C). *)
          match Bdd.mand t.man b0 b1 with
          | b ->
            Hashtbl.replace t.node_bdd v b;
            if not (Hashtbl.mem t.by_bdd b) then Hashtbl.replace t.by_bdd b v
          | exception Bdd.Limit -> bump_limit_bail t)
        | _ -> ())
      t.order
  with Bdd.Limit ->
    (* Even variable allocation overran: leave the table partial. *)
    bump_limit_bail t

let build ?(node_limit = 1_000_000) aig part =
  let member_set = Hashtbl.create 256 in
  Array.iter (fun v -> Hashtbl.replace member_set v ()) part.Partition.nodes;
  let t =
    {
      aig;
      man = Bdd.create ~node_limit ();
      member_set;
      order = part.Partition.nodes;
      roots = part.Partition.roots;
      leaves = part.Partition.leaves;
      node_bdd = Hashtbl.create 256;
      by_bdd = Hashtbl.create 256;
      leaf_lits = Array.map (fun v -> Aig.lit_of v false) part.Partition.leaves;
      bails = 0;
    }
  in
  compute_bdds t;
  t

let refresh t = compute_bdds t

let bdd_of_node t v = Hashtbl.find_opt t.node_bdd v

let node_of_bdd t b =
  match Hashtbl.find_opt t.by_bdd b with
  | Some v when not (Aig.is_dead t.aig v) -> Some (v, false)
  | _ -> (
    match Bdd.mnot t.man b with
    | nb -> (
      match Hashtbl.find_opt t.by_bdd nb with
      | Some v when not (Aig.is_dead t.aig v) -> Some (v, true)
      | _ -> None)
    | exception Bdd.Limit ->
      bump_limit_bail t;
      None)

let to_aig_lit t b =
  let memo = Hashtbl.create 64 in
  let rec conv b =
    if Bdd.is_zero t.man b then Aig.const0
    else if Bdd.is_one t.man b then Aig.const1
    else
      match Hashtbl.find_opt memo b with
      | Some l -> l
      | None ->
        let v = Bdd.var t.man b in
        let hi = conv (Bdd.high t.man b) in
        let lo = conv (Bdd.low t.man b) in
        let l = Aig.bmux t.aig t.leaf_lits.(v) hi lo in
        Hashtbl.replace memo b l;
        l
  in
  conv b
