(** Resubstitution flow based on Boolean difference (paper Alg. 2).

    Partitions the network (Section III-B), precomputes per-partition
    BDDs, scans candidate node pairs under structural and functional
    filters, and commits a Boolean-difference rewrite whenever it
    shrinks the network — or keeps it equal-size when [accept_zero]
    is set, "reshaping the network ... and helping escape local
    minima" (Section III-D). *)

type config = {
  diff : Boolean_difference.config;
  limits : Sbm_partition.Partition.limits;
  bdd_node_limit : int; (** manager budget — the paper's memory cap *)
  max_pairs : int; (** max pairs tried per node [f] (Section III-B) *)
  accept_zero : bool;
  monolithic : bool; (** single whole-network partition *)
  overlap : float;
      (** 0 = distinct partitions; > 0 extends each partition into its
          neighbor ("distinct or overlapping", Section III-D) *)
  prefilter : Prefilter.bank option;
      (** functional filtering "similar to [1]" (Section III-B), made
          sound: with a pattern bank, every candidate pair is vetted
          against simulation signatures before any BDD work, and a
          pair is only skipped when the difference computation
          provably returns nothing for it — QoR is bit-identical with
          the filter on or off (see {!Prefilter}) *)
  jobs : int option;  (** worker domains; [None] = global [Jobs.get ()] *)
  watchdog_poll : bool;  (** poll the watchdog at partition boundaries *)
  objective : [ `Size | `Depth ];
      (** [`Size] is the paper's focus; [`Depth] implements the
          sketched extension ("depth reducing techniques could be
          developed in a similar manner", Section III-A): a rewrite is
          also required not to increase the node's level. *)
}

val default_config : config

(** Statistics of one run. *)
type stats = {
  gain : int;
  partitions : int;
  pairs_tried : int; (** pairs that reached the difference computation *)
  differences_built : int; (** differences whose BDD stayed in budget *)
  rewrites : int; (** accepted rewrites (including zero-gain ones) *)
}

(** [run ?obs ?config aig] optimizes a copy of [aig] and returns the
    compacted result with statistics; the input is not modified.
    [obs] receives the [diff.*] counters plus per-partition [bdd.*]
    manager telemetry. *)
val run :
  ?obs:Sbm_obs.span -> ?config:config -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t * stats

(** [optimize ?obs ?config aig] applies the flow in place and returns
    the total size gain (the engine behind {!run}; flow scripts use
    it between passes). *)
val optimize : ?obs:Sbm_obs.span -> ?config:config -> Sbm_aig.Aig.t -> int

(** The engine behind the unified {!Engine_intf.S} interface; flows
    and the gradient optimizer dispatch through it. *)
module Engine : Engine_intf.S
