(** MSPF computation with BDDs (paper Section IV-C).

    For each node of a partition, the Maximum Set of Permissible
    Functions is derived from the partition roots' sensitivity:
    [mspf(n) = ∧_i ((¬f0(po_i) xor f1(po_i)) ∨ dc(po_i))], where
    [f0]/[f1] are the roots' cofactors with respect to [n], computed
    by rebuilding the root BDDs with a free variable in place of [n].
    Optimization uses the permissible set two ways:

    - a node with [mspf = 1] is unobservable and collapses to a
      constant;
    - "connectable" substitutes — nodes [m] with
      [bdd(m) ∧ ¬mspf(n) = bdd(n) ∧ ¬mspf(n)] — replace [n] outright.
      Strong canonicity makes the query a hash-consed comparison, and
      {e many} candidates are examined, keeping the best (the paper's
      enhancement over single-candidate truth-table MSPF).

    Partition roots are treated as fully observable ([dc = 0]),
    which is conservative and keeps the method sound without global
    BDDs. *)

type config = {
  limits : Sbm_partition.Partition.limits;
  bdd_node_limit : int;
  max_candidates : int; (** substitute candidates examined per node *)
  prefilter : Prefilter.bank option;
      (** with a pattern bank, the connectability test's simulation
          shadow (signature equality under the care mask) vets every
          candidate before its BDD conjunctions are built; rejection
          is provably sound, so QoR is bit-identical with the filter
          on or off *)
  jobs : int option;  (** worker domains; [None] = global [Jobs.get ()] *)
  watchdog_poll : bool;  (** poll the watchdog at partition boundaries *)
}

val default_config : config

(** Statistics of one run. *)
type stats = {
  gain : int;
  partitions : int;
  mspf_computed : int; (** nodes whose MSPF stayed within budget *)
  candidates_examined : int; (** connectable-substitute BDD queries *)
  substitutions : int; (** accepted replacements (gain > 0) *)
  constant_collapses : int; (** substitutions by a constant *)
}

(** [run ?obs ?config aig] optimizes a copy of [aig] and returns the
    compacted result with statistics; the input is not modified.
    [obs] receives the [mspf.*] counters plus per-partition [bdd.*]
    manager telemetry. *)
val run :
  ?obs:Sbm_obs.span -> ?config:config -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t * stats

(** [optimize ?obs ?config aig] applies MSPF-based optimization in
    place and returns the total size gain (the engine behind {!run};
    flow scripts use it between passes). *)
val optimize : ?obs:Sbm_obs.span -> ?config:config -> Sbm_aig.Aig.t -> int

(** The engine behind the unified {!Engine_intf.S} interface. *)
module Engine : Engine_intf.S
