module Aig = Sbm_aig.Aig
module Sim = Sbm_aig.Sim
module Rng = Sbm_util.Rng

type verdict = Reject_const | Reject_signature | Maybe

(* --- pattern bank --- *)

type bank = {
  sim_words : int;
  seed : int;
  max_cex : int;
  mutable cex : bool array list; (* newest first; rendered oldest first *)
  mutable cex_count : int;
  mutable refinement_count : int;
}

let default_words = 4

let create_bank ?(sim_words = default_words) ?(max_cex = 256) ?(seed = 0xd1ff) () =
  if sim_words < 1 then invalid_arg "Prefilter.create_bank: sim_words must be >= 1";
  { sim_words; seed; max_cex; cex = []; cex_count = 0; refinement_count = 0 }

let refine bank bits =
  bank.refinement_count <- bank.refinement_count + 1;
  if bank.cex_count < bank.max_cex then begin
    bank.cex <- Array.copy bits :: bank.cex;
    bank.cex_count <- bank.cex_count + 1
  end

let refinements bank = bank.refinement_count

(* --- audit-trail components (DESIGN.md §15) ---

   [bank_digest] folds the full refinement state — shape parameters
   plus every stored counterexample in arrival order — so the
   fingerprint trail sees each CEGAR refinement as a digest change at
   the next boundary. [bank_seeds] is the RNG-seed component: it pins
   the random-pattern stream identity, which together with the digest
   determines every signature the filter computes. *)

let fh_finalize z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let fh_mix2 a b = fh_finalize (Int64.add (Int64.mul a 0x9E3779B97F4A7C15L) b)

let bank_digest bank =
  let acc = fh_mix2 (Int64.of_int bank.sim_words) (Int64.of_int bank.max_cex) in
  let acc = fh_mix2 acc (Int64.of_int bank.refinement_count) in
  let acc = fh_mix2 acc (Int64.of_int bank.cex_count) in
  List.fold_left
    (fun acc bits ->
      Array.fold_left
        (fun acc b -> fh_mix2 acc (if b then 1L else 0L))
        (fh_mix2 acc (Int64.of_int (Array.length bits)))
        bits)
    acc
    (List.rev bank.cex)

let bank_seeds bank =
  fh_mix2 (Int64.of_int bank.seed) (Int64.of_int bank.sim_words)

(* Base pattern word for (round, input): an independent SplitMix64
   draw per cell, so the bank renders identically for any input count
   (a flow pass that compacts the AIG re-attaches without changing
   the patterns of surviving inputs). *)
let base_word bank ~word ~input =
  let r = Rng.create (bank.seed lxor (word * 0x1000003) lxor (input * 0x10331)) in
  ignore (Rng.next64 r);
  Rng.next64 r

(* Networks with at most this many inputs are simulated on {e every}
   input assignment instead of random patterns: the signature is then
   the node's full truth table, so verdicts — and the canonical
   signature indexes the difference engine builds on top — are exact
   rather than sampled. 11 inputs = 2048 patterns = 32 words, a
   negligible store for small-input networks and a large win on
   decoder-like structures where most nodes alias to constant under
   random sampling. Counterexample patterns are skipped in this mode
   (every assignment is already present). *)
let exhaustive_max_inputs = 11

let exhaustive num_inputs = num_inputs <= exhaustive_max_inputs

(* Bit [b] of word [w] for input [i] is bit [i] of the minterm index
   [64*w + b]. For [i < 6] that is a fixed within-word stripe; above,
   it is constant per word. Inputs below 6 repeat the minterm space
   across the word — harmless duplicates that keep the store at least
   one word wide. *)
let stripe =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let exhaustive_input_words num_inputs =
  let nwords = max 1 ((1 lsl num_inputs) / 64) in
  Array.init nwords (fun w ->
      Array.init num_inputs (fun i ->
          if i < 6 then stripe.(i)
          else if (w lsr (i - 6)) land 1 = 1 then -1L
          else 0L))

let input_words bank num_inputs =
  if exhaustive num_inputs then exhaustive_input_words num_inputs
  else begin
    let cex = Array.of_list (List.rev bank.cex) in
    let cex_words = (Array.length cex + 63) / 64 in
    Array.init (bank.sim_words + cex_words) (fun w ->
        if w < bank.sim_words then
          Array.init num_inputs (fun i -> base_word bank ~word:w ~input:i)
        else
          Array.init num_inputs (fun i ->
              let base = (w - bank.sim_words) * 64 in
              let word = ref 0L in
              for j = 0 to 63 do
                let k = base + j in
                if
                  k < Array.length cex
                  && i < Array.length cex.(k)
                  && cex.(k).(i)
                then word := Int64.logor !word (Int64.shift_left 1L j)
              done;
              !word))
  end

(* --- signature store --- *)

type t = {
  bank : bank;
  aig : Aig.t;
  patterns : int64 array array; (* [word].[input], immutable *)
  mutable values : int64 array array; (* [word].[node] *)
  mutable valid : Bytes.t;
  nwords : int;
}

let attach bank aig =
  let patterns = input_words bank (Aig.num_inputs aig) in
  let values = Array.map (fun words -> Sim.simulate aig words) patterns in
  {
    bank;
    aig;
    patterns;
    values;
    valid = Bytes.make (Aig.num_nodes aig) '\001';
    nwords = Array.length patterns;
  }

let fork t snapshot =
  {
    t with
    aig = snapshot;
    values = Array.map Array.copy t.values;
    valid = Bytes.copy t.valid;
  }

let words t = t.nwords

let grow t v =
  let n = Bytes.length t.valid in
  if v >= n then begin
    let n' = max (v + 1) (2 * n) in
    let valid' = Bytes.make n' '\000' in
    Bytes.blit t.valid 0 valid' 0 n;
    t.valid <- valid';
    t.values <-
      Array.map
        (fun arr ->
          let arr' = Array.make n' 0L in
          Array.blit arr 0 arr' 0 n;
          arr')
        t.values
  end

(* Recompute the invalid cone under [v] iteratively (explicit stack:
   partition cones are shallow but rebuilt cones after a long run of
   edits need not be). Nodes that are neither const, input nor live
   AND read as 0, matching [Sim.simulate] on dead nodes. *)
let ensure t v =
  grow t v;
  if Bytes.get t.valid v = '\000' then begin
    let stack = ref [ v ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | x :: rest ->
        if Bytes.get t.valid x = '\001' then stack := rest
        else if Aig.is_and t.aig x then begin
          let f0 = Aig.fanin0 t.aig x and f1 = Aig.fanin1 t.aig x in
          let n0 = Aig.node_of f0 and n1 = Aig.node_of f1 in
          grow t (max n0 n1);
          let need0 = Bytes.get t.valid n0 = '\000' in
          let need1 = Bytes.get t.valid n1 = '\000' in
          if need0 || need1 then begin
            let pending = if need1 then [ n1 ] else [] in
            let pending = if need0 then n0 :: pending else pending in
            stack := pending @ !stack
          end
          else begin
            for w = 0 to t.nwords - 1 do
              let v0 =
                let x0 = t.values.(w).(n0) in
                if Aig.is_compl f0 then Int64.lognot x0 else x0
              in
              let v1 =
                let x1 = t.values.(w).(n1) in
                if Aig.is_compl f1 then Int64.lognot x1 else x1
              in
              t.values.(w).(x) <- Int64.logand v0 v1
            done;
            Bytes.set t.valid x '\001';
            stack := rest
          end
        end
        else begin
          for w = 0 to t.nwords - 1 do
            t.values.(w).(x) <-
              (if Aig.is_input t.aig x then
                 t.patterns.(w).(Aig.input_index t.aig x)
               else 0L)
          done;
          Bytes.set t.valid x '\001';
          stack := rest
        end
    done
  end

let value t v w =
  ensure t v;
  t.values.(w).(v)

let lit_value t l w =
  let x = value t (Aig.node_of l) w in
  if Aig.is_compl l then Int64.lognot x else x

let note_edit t n =
  grow t n;
  let seen = Hashtbl.create 64 in
  let stack = ref [ n ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | x :: rest ->
      stack := rest;
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        grow t x;
        Bytes.set t.valid x '\000';
        List.iter (fun y -> stack := y :: !stack) (Aig.fanout_nodes t.aig x)
      end
  done

(* --- signatures and verdicts --- *)

let canonical_of_words ws =
  if Int64.logand ws.(0) 1L = 1L then Array.map Int64.lognot ws else ws

let signature t l =
  ensure t (Aig.node_of l);
  canonical_of_words (Array.init t.nwords (fun w -> lit_value t l w))

let is_const_words ws =
  Array.for_all (fun w -> w = 0L) ws || Array.for_all (fun w -> w = -1L) ws

let compatible t a b =
  ensure t (Aig.node_of a);
  ensure t (Aig.node_of b);
  let wa = Array.init t.nwords (fun w -> lit_value t a w) in
  let wb = Array.init t.nwords (fun w -> lit_value t b w) in
  if wa = wb then Maybe
  else if is_const_words wb || is_const_words wa then Reject_const
  else Reject_signature

let compatible_masked t ~care a b =
  if Array.length care <> t.nwords then
    invalid_arg "Prefilter.compatible_masked: care width mismatch";
  ensure t (Aig.node_of a);
  ensure t (Aig.node_of b);
  let pos = ref true and neg = ref true in
  for w = 0 to t.nwords - 1 do
    let d = Int64.logand (Int64.logxor (lit_value t a w) (lit_value t b w)) care.(w) in
    if d <> 0L then pos := false;
    if d <> care.(w) then neg := false
  done;
  if !pos || !neg then Maybe
  else begin
    (* Constant on the care set, in either phase? *)
    let const0 = ref true and const1 = ref true in
    for w = 0 to t.nwords - 1 do
      let vb = Int64.logand (lit_value t b w) care.(w) in
      if vb <> 0L then const0 := false;
      if vb <> care.(w) then const1 := false
    done;
    if !const0 || !const1 then Reject_const else Reject_signature
  end

(* --- counters --- *)

type counts = {
  mutable rejected_sig : int;
  mutable rejected_const : int;
  mutable survivors : int;
}

let zero_counts () = { rejected_sig = 0; rejected_const = 0; survivors = 0 }

let note c = function
  | Maybe -> c.survivors <- c.survivors + 1
  | Reject_const -> c.rejected_const <- c.rejected_const + 1
  | Reject_signature -> c.rejected_sig <- c.rejected_sig + 1

let rejected c = c.rejected_sig + c.rejected_const

module M = Sbm_obs.Metrics

let m_rejected_signature =
  M.counter ~engine:"prefilter" ~unit_:"candidates"
    "prefilter.rejected_signature"
    "candidates rejected by signature mismatch before any BDD work"

let m_rejected_const =
  M.counter ~engine:"prefilter" ~unit_:"candidates" "prefilter.rejected_const"
    "candidates rejected as provably constant under the care set"

let m_survivors =
  M.counter ~engine:"prefilter" ~unit_:"candidates" "prefilter.survivors"
    "candidates the prefilter passed through to the BDD layer"

let m_cex_refinements =
  M.counter ~engine:"prefilter" ~unit_:"patterns" "prefilter.cex_refinements"
    "SAT counterexample patterns folded back into the signature bank"

let flush obs c =
  Sbm_obs.bump obs m_rejected_signature c.rejected_sig;
  Sbm_obs.bump obs m_rejected_const c.rejected_const;
  Sbm_obs.bump obs m_survivors c.survivors
