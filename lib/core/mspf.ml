module Aig = Sbm_aig.Aig
module Bdd = Sbm_bdd.Bdd
module Obs = Sbm_obs
module Partition = Sbm_partition.Partition
module M = Sbm_obs.Metrics

let m_partitions =
  M.counter ~engine:"mspf" ~unit_:"partitions" "mspf.partitions"
    "partitions the MSPF engine analyzed"

let m_computed =
  M.counter ~engine:"mspf" ~unit_:"functions" "mspf.computed"
    "maximum sets of permissible functions computed"

let m_candidates_examined =
  M.counter ~engine:"mspf" ~unit_:"candidates" "mspf.candidates_examined"
    "substitution candidates that reached the BDD compatibility check \
     (prefilter survivors)"

let m_substitutions =
  M.counter ~engine:"mspf" ~unit_:"substitutions" "mspf.substitutions"
    "accepted permissible-function substitutions"

let m_constant_collapses =
  M.counter ~engine:"mspf" ~unit_:"nodes" "mspf.constant_collapses"
    "nodes collapsed to constants by a permissible function"

let m_gain =
  M.counter ~engine:"mspf" ~unit_:"nodes" "mspf.gain"
    "AIG nodes saved by MSPF substitutions"

type config = {
  limits : Partition.limits;
  bdd_node_limit : int;
  max_candidates : int;
  prefilter : Prefilter.bank option;
  jobs : int option;
  watchdog_poll : bool;
}

let default_config =
  {
    limits = Partition.default_limits;
    bdd_node_limit = 200_000;
    max_candidates = 64;
    prefilter = None;
    jobs = None;
    watchdog_poll = true;
  }

type stats = {
  gain : int;
  partitions : int;
  mspf_computed : int;
  candidates_examined : int;
  substitutions : int;
  constant_collapses : int;
}

(* Mutable accumulator threaded through the partitions. *)
type counters = {
  mutable c_mspf : int;
  mutable c_cands : int;
  mutable c_subst : int;
  mutable c_const : int;
  pf : Prefilter.counts;
}

let zero_counters () =
  { c_mspf = 0; c_cands = 0; c_subst = 0; c_const = 0; pf = Prefilter.zero_counts () }

(* Rebuild the BDDs of the partition cone above [n], reading [n] as
   the free variable [vn]. Returns a lookup giving, for each root, its
   function over leaves + vn, or None if anything overran the budget. *)
let cofactor_functions ctx n vn =
  let aig = Bdd_bridge.aig ctx in
  let man = Bdd_bridge.man ctx in
  let above : (int, Bdd.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace above n vn;
  let lookup v =
    match Hashtbl.find_opt above v with
    | Some b -> Some b
    | None -> Bdd_bridge.bdd_of_node ctx v
  in
  try
    Array.iter
      (fun v ->
        if v <> n && Aig.is_and aig v && not (Aig.is_dead aig v) then begin
          let w0 = Aig.node_of (Aig.fanin0 aig v) in
          let w1 = Aig.node_of (Aig.fanin1 aig v) in
          if Hashtbl.mem above w0 || Hashtbl.mem above w1 then begin
            let fanin_bdd f =
              let w = Aig.node_of f in
              let base = if w = 0 then Some (Bdd.zero man) else lookup w in
              Option.map (fun b -> if Aig.is_compl f then Bdd.mnot man b else b) base
            in
            match (fanin_bdd (Aig.fanin0 aig v), fanin_bdd (Aig.fanin1 aig v)) with
            | Some b0, Some b1 -> Hashtbl.replace above v (Bdd.mand man b0 b1)
            | _ -> raise Bdd.Limit
          end
        end)
      (Bdd_bridge.members ctx);
    Some lookup
  with Bdd.Limit ->
    Bdd_bridge.bump_limit_bail ctx;
    None

(* mspf(n) = conjunction over roots of xnor(f0, f1); bdd(0) means no
   freedom, bdd(1) means the node is unobservable. *)
let compute_mspf ctx n =
  let man = Bdd_bridge.man ctx in
  let nvars = Array.length (Bdd_bridge.leaves ctx) in
  match Bdd.ithvar man nvars with
  | exception Bdd.Limit ->
    Bdd_bridge.bump_limit_bail ctx;
    None
  | vn -> (
  match cofactor_functions ctx n vn with
  | None -> None
  | Some lookup -> (
    try
      let mspf = ref (Bdd.one man) in
      let roots = Bdd_bridge.roots ctx in
      let aig = Bdd_bridge.aig ctx in
      Array.iter
        (fun r ->
          if (not (Bdd.is_zero man !mspf)) && not (Aig.is_dead aig r) then begin
            match lookup r with
            | None -> raise Bdd.Limit
            | Some fr ->
              let f0 = Bdd.restrict man fr nvars false in
              let f1 = Bdd.restrict man fr nvars true in
              (* dc(po) is zero: roots are externally observable. *)
              let insensitive = Bdd.mxnor man f0 f1 in
              mspf := Bdd.mand man !mspf insensitive
          end)
        roots;
      Some !mspf
    with Bdd.Limit ->
      Bdd_bridge.bump_limit_bail ctx;
      None))

(* Search for connectable substitutes: candidates agreeing with [n]
   on the care set.

   With a prefilter store, the acceptance test's simulation shadow
   runs first: connectability is [bv ∧ care = bn ∧ care] (either
   phase), an exact equality over the leaf cut, so any concrete leaf
   assignment where [(v ⊕ n) ∧ care] is 1 in both phases disproves
   it. The care set is rendered to pattern words once per node by
   walking its BDD bit-parallel ({!Bdd.eval_word} at the leaves'
   signatures), and {!Prefilter.compatible_masked} rejects provably
   unconnectable candidates before their two BDD conjunctions are
   built. The candidate budget still counts every examined candidate,
   filtered or not, so the enumeration — and therefore the accepted
   substitutions — is bit-identical with the filter on or off. *)
let connectable ctx config counters store n mspf =
  let man = Bdd_bridge.man ctx in
  let aig = Bdd_bridge.aig ctx in
  match Bdd_bridge.bdd_of_node ctx n with
  | None -> []
  | Some bn -> (
    try
      let care = Bdd.mnot man mspf in
      let n_care = Bdd.mand man bn care in
      let leaves = Bdd_bridge.leaves ctx in
      let filt =
        match store with
        | None -> None
        | Some st ->
          let care_words =
            Array.init (Prefilter.words st) (fun w ->
                Bdd.eval_word man care ~leaf:(fun i ->
                    Prefilter.value st leaves.(i) w))
          in
          Some (st, care_words)
      in
      let candidates = ref [] in
      let examined = ref 0 in
      let consider v =
        if
          !examined < config.max_candidates
          && v <> n
          && (not (Aig.is_dead aig v))
          && not (Aig.in_tfi aig ~node:n ~root:v)
        then begin
          match Bdd_bridge.bdd_of_node ctx v with
          | None -> ()
          | Some bv ->
            incr examined;
            let verdict =
              match filt with
              | None -> Prefilter.Maybe
              | Some (st, care_words) ->
                let verdict =
                  Prefilter.compatible_masked st ~care:care_words
                    (Aig.lit_of n false) (Aig.lit_of v false)
                in
                Prefilter.note counters.pf verdict;
                verdict
            in
            match verdict with
            | Prefilter.Reject_const | Prefilter.Reject_signature -> ()
            | Prefilter.Maybe ->
              counters.c_cands <- counters.c_cands + 1;
              if Bdd.mand man bv care = n_care then
                candidates := Aig.lit_of v false :: !candidates
              else if Bdd.mand man (Bdd.mnot man bv) care = n_care then
                candidates := Aig.lit_of v true :: !candidates
        end
      in
      Array.iter consider leaves;
      Array.iter consider (Bdd_bridge.members ctx);
      (* Constants are permissible substitutes too. *)
      if Bdd.is_zero man n_care then candidates := Aig.const0 :: !candidates
      else if n_care = care then candidates := Aig.const1 :: !candidates;
      !candidates
    with Bdd.Limit ->
      Bdd_bridge.bump_limit_bail ctx;
      [])

(* Members lying in the transitive fanin of a partition leaf: the
   partition is not convex around them, so the leaf-as-free-variable
   model would under-approximate their observability. MSPF skips
   them. *)
let members_in_leaf_cones ctx =
  let aig = Bdd_bridge.aig ctx in
  let tainted = Hashtbl.create 64 in
  let visited = Hashtbl.create 256 in
  let stack = ref [] in
  Array.iter
    (fun leaf -> if Aig.is_and aig leaf then stack := leaf :: !stack)
    (Bdd_bridge.leaves ctx);
  let member_set = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace member_set v ()) (Bdd_bridge.members ctx);
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.add visited v ();
        if Hashtbl.mem member_set v then Hashtbl.replace tainted v ();
        if Aig.is_and aig v then begin
          stack := Aig.node_of (Aig.fanin0 aig v) :: Aig.node_of (Aig.fanin1 aig v) :: !stack
        end
      end
  done;
  tainted

(* Analysis/substitution loop of one partition. Mutates [aig]:
   parallel workers call this on a private snapshot, the sequential
   path on the live AIG. Returns the partition's BDD context. *)
let run_partition_analysis aig config counters store part total =
  let ctx = Bdd_bridge.build ~node_limit:config.bdd_node_limit aig part in
  let tainted = ref (members_in_leaf_cones ctx) in
  let members = Bdd_bridge.members ctx in
  (* Sort by estimated saving: larger MFFCs first (Section IV-C). *)
  let by_saving =
    Array.to_list members
    |> List.filter (fun v -> Aig.is_and aig v)
    |> List.map (fun v -> (Aig.mffc_size aig v, v))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  List.iter
    (fun n ->
      if Aig.is_and aig n && (not (Aig.is_dead aig n)) && not (Hashtbl.mem !tainted n)
      then begin
        match compute_mspf ctx n with
        | None -> ()
        | Some mspf ->
          counters.c_mspf <- counters.c_mspf + 1;
          let man = Bdd_bridge.man ctx in
          if not (Bdd.is_zero man mspf) then begin
            let candidates = connectable ctx config counters store n mspf in
            (* Among all connectable fanins, try an irredundant
               subset: the best-gain candidate. *)
            let best =
              List.fold_left
                (fun acc candidate ->
                  if Aig.node_of candidate = n then acc
                  else begin
                    let gain = Aig.gain_of_replacement aig ~root:n ~candidate in
                    match acc with
                    | Some (bg, _) when bg >= gain -> acc
                    | Some _ | None -> Some (gain, candidate)
                  end)
                None candidates
            in
            match best with
            | Some (gain, candidate) when gain > 0 ->
              (* A permissible (not necessarily equivalent)
                 substitution changes the functions of [n]'s fanout
                 cone: invalidate their signatures while the old
                 fanout lists are still in place. *)
              Option.iter (fun st -> Prefilter.note_edit st n) store;
              Aig.replace aig n candidate;
              total := !total + gain;
              counters.c_subst <- counters.c_subst + 1;
              if Aig.node_of candidate = Aig.node_of Aig.const0 then
                counters.c_const <- counters.c_const + 1;
              (* The substitution is permissible but not necessarily
                 equivalence-preserving inside the partition: refresh
                 the cached functions, the member order, the root set
                 and the convexity taint against the new structure. *)
              Bdd_bridge.refresh ctx;
              tainted := members_in_leaf_cones ctx
            | Some _ | None -> ()
          end
      end)
    by_saving;
  ctx

(* Main-domain bookkeeping for a finished partition (shared by the
   sequential path and the parallel merge path), including the
   audit-trail merge-boundary fingerprint — recorded here because
   this function runs on the main domain in ascending partition
   index in both paths. *)
let finish_partition aig ctx obs ~index ~subst_delta ~pf_rejected =
  Bdd_bridge.flush_stats ~engine:"mspf" ctx obs;
  let bails = Bdd_bridge.limit_bails ctx in
  Obs.Watchdog.note_partition ~engine:"mspf" ~bails;
  let module FR = Obs.Flight_recorder in
  if FR.enabled () then
    FR.record
      ~severity:(if bails > 0 then FR.Warn else FR.Debug)
      ~engine:"mspf"
      ~id:(Printf.sprintf "partition-%d" index)
      ~metrics:
        [ ("members", Array.length (Bdd_bridge.members ctx)); ("bails", bails);
          ("substitutions", subst_delta); ("pf_rejected", pf_rejected) ]
      "partition done";
  if Obs.Fingerprint.enabled () then
    Obs.Fingerprint.record_merge ~engine:"mspf" ~partition:index
      ~structure:(Aig.fold_hash aig)

let run_partition aig config counters obs store part index total =
  let subst0 = counters.c_subst in
  let rejected0 = Prefilter.rejected counters.pf in
  let ctx = run_partition_analysis aig config counters store part total in
  finish_partition aig ctx obs ~index
    ~subst_delta:(counters.c_subst - subst0)
    ~pf_rejected:(Prefilter.rejected counters.pf - rejected0)

let optimize_stats ?(obs = Obs.null) ?(config = default_config) aig =
  (* MSPF only substitutes existing literals, but candidate probing
     can still build nodes; tag them unless a flow script already
     set a finer-grained origin. *)
  if (Aig.current_origin aig).Aig.Origin.kind = Aig.Origin.Seed then
    Aig.set_origin aig (Aig.Origin.make ~pass:"mspf" Aig.Origin.Mspf);
  let total = ref 0 in
  let counters = zero_counters () in
  let parts = Partition.compute aig config.limits in
  let store = Option.map (fun bank -> Prefilter.attach bank aig) config.prefilter in
  let skipped = ref 0 in
  let poll () = if config.watchdog_poll then Obs.Watchdog.poll () in
  let jobs =
    match config.jobs with Some j -> max 1 j | None -> Sbm_par.Jobs.get ()
  in
  if jobs <= 1 || List.length parts <= 1 then
    (* Sequential path: byte-for-byte the historical behaviour. *)
    List.iteri
      (fun i part ->
        poll ();
        if Obs.Watchdog.abort_requested () then incr skipped
        else run_partition aig config counters obs store part i total)
      parts
  else begin
    (* Parallel path: see Diff_resub — clean (zero-substitution,
       not-stale) worker analyses are merged verbatim, the rest redone
       sequentially in partition order. *)
    let module FR = Obs.Flight_recorder in
    let analyze _i part =
      if Obs.Watchdog.abort_requested () then None
      else begin
        let snap = Aig.copy aig in
        let wstore = Option.map (fun st -> Prefilter.fork st snap) store in
        let wc = zero_counters () in
        let wtotal = ref 0 in
        let before = Aig.origin_stats snap in
        let (ctx, events), mdeltas =
          M.capture (fun () ->
              FR.capture (fun () ->
                  run_partition_analysis snap config wc wstore part wtotal))
        in
        Some
          ( wc, ctx, events, mdeltas,
            Par_merge.created_delta ~before ~after:(Aig.origin_stats snap) )
      end
    in
    let apply index part result ~dirty =
      poll ();
      if Obs.Watchdog.abort_requested () then begin
        incr skipped;
        false
      end
      else
        match result with
        | Some (wc, ctx, events, mdeltas, created)
          when (not dirty) && wc.c_subst = 0 ->
          counters.c_mspf <- counters.c_mspf + wc.c_mspf;
          counters.c_cands <- counters.c_cands + wc.c_cands;
          Par_merge.merge_prefilter counters.pf wc.pf;
          Par_merge.merge_created aig created;
          Par_merge.merge_metrics mdeltas;
          FR.replay events;
          finish_partition aig ctx obs ~index ~subst_delta:0
            ~pf_rejected:(Prefilter.rejected wc.pf);
          false
        | Some _ | None ->
          let s0 = counters.c_subst in
          run_partition aig config counters obs store part index total;
          counters.c_subst > s0
    in
    let go pool =
      Sbm_par.Sched.run_ordered pool (Array.of_list parts) ~analyze ~apply
    in
    if jobs = Sbm_par.Jobs.get () then go (Sbm_par.Pool.global ())
    else Sbm_par.Pool.with_pool ~jobs go
  end;
  if !skipped > 0 then Obs.bump obs Engine_intf.m_partitions_skipped !skipped;
  Obs.bump obs m_partitions (List.length parts);
  Obs.bump obs m_computed counters.c_mspf;
  Obs.bump obs m_candidates_examined counters.c_cands;
  Obs.bump obs m_substitutions counters.c_subst;
  Obs.bump obs m_constant_collapses counters.c_const;
  Obs.bump obs m_gain !total;
  if store <> None then Prefilter.flush obs counters.pf;
  {
    gain = !total;
    partitions = List.length parts;
    mspf_computed = counters.c_mspf;
    candidates_examined = counters.c_cands;
    substitutions = counters.c_subst;
    constant_collapses = counters.c_const;
  }

let optimize ?obs ?config aig = (optimize_stats ?obs ?config aig).gain

let run ?obs ?config aig =
  let copy = Aig.copy aig in
  let stats = optimize_stats ?obs ?config copy in
  (fst (Aig.compact copy), stats)

module Engine = struct
  let name = "mspf"
  let default_origin = Aig.Origin.make ~pass:"mspf" Aig.Origin.Mspf

  let config_of (c : Engine_intf.config) =
    {
      default_config with
      limits =
        (match c.Engine_intf.partition_nodes with
        | None -> default_config.limits
        | Some n -> { default_config.limits with Partition.max_nodes = n });
      bdd_node_limit =
        Option.value c.Engine_intf.bdd_node_limit
          ~default:default_config.bdd_node_limit;
      prefilter = c.Engine_intf.prefilter;
      jobs = c.Engine_intf.jobs;
      watchdog_poll = c.Engine_intf.watchdog_poll;
    }

  let stats_of (s : stats) =
    {
      Engine_intf.gain = s.gain;
      details =
        [ ("partitions", s.partitions); ("computed", s.mspf_computed);
          ("candidates_examined", s.candidates_examined);
          ("substitutions", s.substitutions);
          ("constant_collapses", s.constant_collapses) ];
    }

  let run (c : Engine_intf.config) aig =
    let aig', s = run ~obs:c.Engine_intf.obs ~config:(config_of c) aig in
    (aig', stats_of s)

  let optimize (c : Engine_intf.config) aig =
    let s = optimize_stats ~obs:c.Engine_intf.obs ~config:(config_of c) aig in
    (aig, stats_of s)
end
