(** Registry of the engines behind the unified {!Engine_intf.S}
    interface, keyed by the engine's counter prefix. Generic call
    sites (identity test suites, listings) iterate {!all} instead of
    naming each engine module. *)

val all : (string * (module Engine_intf.S)) list

val find : string -> (module Engine_intf.S) option
