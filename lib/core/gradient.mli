(** Gradient-based AIG minimization (paper Section IV-A).

    Instead of a fixed script, the engine learns online which local
    moves pay off. Moves are primitive transformations with an
    associated cost (their runtime complexity class); most exist in
    low- and high-effort variants. Selection is waterfall: cheap moves
    are iterated while they gain; at a local minimum (gain 0) more
    expensive moves enter. Per-move success statistics reorder future
    attempts; a cost budget bounds the run and is automatically
    extended while the gain gradient over the last [k] iterations
    exceeds [min_gradient] (paper defaults: budget 100, k = 20,
    gradient 3%). *)

type selection = Waterfall | Parallel

type config = {
  budget : int;
  k : int;
  min_gradient : float;
  selection : selection;
      (** [Waterfall] applies the first gaining move (the paper's
          recommended tradeoff); [Parallel] evaluates all moves at the
          current tier and applies the best. *)
  zero_gain_moves : bool; (** allow network-reshaping zero-gain moves *)
  engine : Engine_intf.config;
      (** shared engine config (prefilter bank, jobs override,
          watchdog discipline) inherited by every Boolean-engine move;
          the per-move partition sizes stay with the move table *)
}

val default_config : config

(** Statistics of one run (exposed for the ablation bench). *)
type stats = {
  moves_tried : int;
  moves_gained : int;
  total_gain : int;
  budget_spent : int; (** total cost charged for attempted moves *)
  budget_extensions : int;
  move_log : (string * int) list; (** move name, gain — chronological *)
}

(** One attempted move, as seen by the selection rule — the unit of
    the [--explain] telemetry stream. Every move the engine charges
    budget for produces exactly one event, in chronological order. *)
type event = {
  iteration : int;  (** 1-based attempt index (= [moves_tried] so far) *)
  round : int;  (** 1-based waterfall/parallel round *)
  tier : int;  (** cost tier the round ran at *)
  move : string;
  cost : int;  (** budget charged for the attempt *)
  gain : int;  (** nodes saved by the attempt *)
  accepted : bool;
      (** whether the selection rule committed this move's result:
          waterfall accepts any gaining move, parallel only the
          round's best gaining move *)
  budget_left : int;  (** budget remaining after charging [cost] *)
  budget_spent : int;  (** cumulative cost so far *)
  gradient : float;
      (** the early-termination gradient over the last [k] rounds, as
          of the start of this round (1.0 while the window is not yet
          full) *)
  size : int;  (** network size after the attempt was resolved *)
}

(** [event_to_json e] is a single-line JSON object with the fields of
    [e] (the record format of [sbm opt --explain FILE]). *)
val event_to_json : event -> string

(** [run ?obs ?explain ?config aig] optimizes a copy of [aig] and
    returns the compacted result with run statistics; the input is not
    modified. The result never has more nodes than the input. When
    [obs] is an enabled span, every attempted move becomes a child
    span (with [move.cost]/[move.gain] counters) and the run totals
    land on [obs] as [gradient.*] counters. When [explain] is given it
    receives one {!event} per attempted move, in order. *)
val run :
  ?obs:Sbm_obs.span ->
  ?explain:(event -> unit) ->
  ?config:config ->
  Sbm_aig.Aig.t ->
  Sbm_aig.Aig.t * stats

(** [optimize ?obs ?explain ?config aig] is the in-place engine behind
    {!run}: it mutates (and possibly rebuilds) [aig] and returns the
    network to use plus statistics. Flow scripts use it to avoid
    copying between passes. *)
val optimize :
  ?obs:Sbm_obs.span ->
  ?explain:(event -> unit) ->
  ?config:config ->
  Sbm_aig.Aig.t ->
  Sbm_aig.Aig.t * stats

(** The engine behind the unified {!Engine_intf.S} interface.
    [effort] selects the historical flow budgets (Low = 12,
    High = 30); the engine config itself is threaded through to every
    Boolean-engine move. *)
module Engine : Engine_intf.S
