(* Registry of every engine exposed through the unified interface.
   Generic call sites — the identity test suites, the CLI's engine
   listing — iterate this instead of naming each engine. *)

let all : (string * (module Engine_intf.S)) list =
  [
    ("diff", (module Diff_resub.Engine));
    ("mspf", (module Mspf.Engine));
    ("kernel", (module Hetero_kernel.Engine));
    ("gradient", (module Gradient.Engine));
  ]

let find name = List.assoc_opt name all
