module Aig = Sbm_aig.Aig

(* Provenance bookkeeping for the parallel merge path.

   A worker analyzing a partition on a private AIG snapshot still
   builds (and discards) speculative candidate cones, and the origin
   ledger counts those constructions. When the analysis is merged
   without a sequential redo, the live AIG never saw the speculation,
   so the worker's created-count deltas must be folded in explicitly —
   otherwise attribution shares would differ between job counts. *)

let created_delta ~before ~after =
  List.filter_map
    (fun (o, created, _live) ->
      let prev =
        match List.find_opt (fun (o', _, _) -> o' = o) before with
        | Some (_, c, _) -> c
        | None -> 0
      in
      if created > prev then Some (o, created - prev) else None)
    after

let merge_created aig deltas =
  List.iter (fun (o, n) -> Aig.note_created aig o n) deltas

(* Prefilter verdict tallies ride the same per-partition flush path
   as the BDD manager stats: a clean worker analysis contributes its
   counts verbatim, a redone partition contributes the sequential
   recount — either way the totals match the jobs=1 run bit for
   bit. *)
let merge_prefilter (dst : Prefilter.counts) (src : Prefilter.counts) =
  dst.Prefilter.rejected_sig <- dst.Prefilter.rejected_sig + src.Prefilter.rejected_sig;
  dst.Prefilter.rejected_const <-
    dst.Prefilter.rejected_const + src.Prefilter.rejected_const;
  dst.Prefilter.survivors <- dst.Prefilter.survivors + src.Prefilter.survivors

(* Registry counter deltas captured on a worker domain
   ([Metrics.capture] around the analysis) are applied here, on the
   main domain, in ascending partition order — the same merge-or-redo
   contract as flight-recorder events, so registry totals stay
   bit-identical at any job count. A redone partition re-bumps on the
   main domain and its captured deltas are dropped by the caller. *)
let merge_metrics (deltas : Sbm_obs.Metrics.delta) =
  Sbm_obs.Metrics.replay deltas
