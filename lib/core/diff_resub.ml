module Aig = Sbm_aig.Aig
module Bdd = Sbm_bdd.Bdd
module Partition = Sbm_partition.Partition
module FR = Sbm_obs.Flight_recorder

type config = {
  diff : Boolean_difference.config;
  limits : Partition.limits;
  bdd_node_limit : int;
  max_pairs : int;
  accept_zero : bool;
  monolithic : bool;
  overlap : float;
  signature_filter : bool;
  objective : [ `Size | `Depth ];
}

let default_config =
  {
    diff = Boolean_difference.default_config;
    limits = Partition.default_limits;
    bdd_node_limit = 200_000;
    max_pairs = 64;
    accept_zero = false;
    monolithic = false;
    overlap = 0.0;
    signature_filter = true;
    objective = `Size;
  }

type stats = {
  gain : int;
  partitions : int;
  pairs_tried : int; (** pairs that reached the difference computation *)
  differences_built : int; (** differences whose BDD stayed in budget *)
  rewrites : int; (** accepted rewrites (including zero-gain ones) *)
}

type counters = {
  mutable c_pairs : int;
  mutable c_diffs : int;
  mutable c_rewrites : int;
}

let popcount64 w =
  let rec go w acc = if w = 0L then acc else go (Int64.logand w (Int64.sub w 1L)) (acc + 1) in
  go w 0

(* Structural filters of Section III-B: the pair must share support,
   and [f] must not lie in the cone of [g] (a difference implementation
   referencing [g] would then feed [f] back into itself). *)
let good_candidates ctx ~f ~g =
  let aig = Bdd_bridge.aig ctx in
  (not (Aig.is_dead aig f))
  && (not (Aig.is_dead aig g))
  && f <> g
  &&
  let man = Bdd_bridge.man ctx in
  match (Bdd_bridge.bdd_of_node ctx f, Bdd_bridge.bdd_of_node ctx g) with
  | Some bf, Some bg -> (
    match (Bdd.support man bf, Bdd.support man bg) with
    | sf, sg ->
      let shared = List.exists (fun v -> List.mem v sg) sf in
      shared && not (Aig.in_tfi aig ~node:f ~root:g)
    | exception Bdd.Limit ->
      Bdd_bridge.bump_limit_bail ctx;
      false)
  | _ -> false

(* Functional filtering (Section III-B): a 64-pattern signature per
   node; pairs whose difference toggles on almost every pattern are
   unlikely to admit a small difference BDD, so they are skipped
   before any BDD work. *)
let signature_threshold = 52

(* Analysis/commit loop of one partition. Mutates [aig] (candidate
   cones, commits, traversal marks): parallel workers call this on a
   private snapshot, the sequential path on the live AIG. Returns the
   partition's BDD context so the caller can flush its stats. *)
let run_partition_analysis aig config counters signatures part total =
  let ctx = Bdd_bridge.build ~node_limit:config.bdd_node_limit aig part in
  let members = Bdd_bridge.members ctx in
  (* Depth objective: levels are refreshed after every accepted
     rewrite (replacement cascades can move many nodes). *)
  let levels = ref (if config.objective = `Depth then Some (Aig.levels aig) else None) in
  let depth_ok f candidate =
    match !levels with
    | None -> true
    | Some lv ->
      (* Fresh candidate nodes have no cached level; compute the
         candidate root's level through its (already-levelled)
         fanins. *)
      let rec level_of v =
        if v < Array.length lv && lv.(v) >= 0 then lv.(v)
        else if not (Aig.is_and aig v) then 0
        else
          1
          + max
              (level_of (Aig.node_of (Aig.fanin0 aig v)))
              (level_of (Aig.node_of (Aig.fanin1 aig v)))
      in
      level_of (Aig.node_of candidate) <= level_of f
  in
  let signature_ok f g =
    match signatures with
    | None -> true
    | Some values ->
      let d = Int64.logxor values.(f) values.(g) in
      let ones = popcount64 d in
      min ones (64 - ones) <= signature_threshold
  in
  Array.iter
    (fun f ->
      if Aig.is_and aig f then begin
        let pairs = ref 0 in
        let replaced = ref false in
        Array.iter
          (fun g ->
            if
              (not !replaced)
              && !pairs < config.max_pairs
              && Aig.is_and aig g
              && signature_ok f g
              && good_candidates ctx ~f ~g
            then begin
              incr pairs;
              counters.c_pairs <- counters.c_pairs + 1;
              match Boolean_difference.compute ctx config.diff ~f ~g with
              | None -> ()
              | Some candidate ->
                counters.c_diffs <- counters.c_diffs + 1;
                if
                  Aig.node_of candidate <> f
                  && (not (Aig.in_tfi aig ~node:f ~root:(Aig.node_of candidate)))
                  && depth_ok f candidate
                then begin
                  let gain = Aig.gain_of_replacement aig ~root:f ~candidate in
                  (* Alg. 2 line 13: accept when not larger. *)
                  if gain > 0 || (config.accept_zero && gain = 0) then begin
                    Aig.replace aig f candidate;
                    total := !total + gain;
                    counters.c_rewrites <- counters.c_rewrites + 1;
                    replaced := true;
                    if config.objective = `Depth then levels := Some (Aig.levels aig)
                  end
                  else Aig.delete_dangling aig (Aig.node_of candidate)
                end
                else Aig.delete_dangling aig (Aig.node_of candidate)
            end)
          members
      end)
    members;
  ctx

(* Main-domain bookkeeping for a finished partition: flush the BDD
   stats into the span, feed the watchdog, record the flight-recorder
   summary. Shared by the sequential path and the parallel merge
   path (which runs it against a worker's context). *)
let finish_partition ctx obs ~index ~rewrites_delta =
  Bdd_bridge.flush_stats ~engine:"diff" ctx obs;
  let bails = Bdd_bridge.limit_bails ctx in
  Sbm_obs.Watchdog.note_partition ~engine:"diff" ~bails;
  if FR.enabled () then
    FR.record
      ~severity:(if bails > 0 then FR.Warn else FR.Debug)
      ~engine:"diff"
      ~id:(Printf.sprintf "partition-%d" index)
      ~metrics:
        [ ("members", Array.length (Bdd_bridge.members ctx)); ("bails", bails);
          ("rewrites", rewrites_delta) ]
      "partition done"

let run_partition aig config counters obs signatures part index total =
  let rewrites0 = counters.c_rewrites in
  let ctx = run_partition_analysis aig config counters signatures part total in
  finish_partition ctx obs ~index
    ~rewrites_delta:(counters.c_rewrites - rewrites0)

let optimize_stats ?(obs = Sbm_obs.null) ?(config = default_config) aig =
  (* Difference implementations built from here on are this engine's
     nodes — unless a flow script already set a finer-grained tag. *)
  if (Aig.current_origin aig).Aig.Origin.kind = Aig.Origin.Seed then
    Aig.set_origin aig (Aig.Origin.make ~pass:"boolean-difference" Aig.Origin.Diff);
  let total = ref 0 in
  let counters = { c_pairs = 0; c_diffs = 0; c_rewrites = 0 } in
  let parts =
    if config.monolithic then [ Partition.whole aig ]
    else if config.overlap > 0.0 then
      Partition.compute_overlapping aig config.limits ~overlap:config.overlap
    else Partition.compute aig config.limits
  in
  let signatures =
    if config.signature_filter then begin
      let rng = Sbm_util.Rng.create 0xd1ff in
      Some (Sbm_aig.Sim.simulate aig (Sbm_aig.Sim.random_inputs aig rng))
    end
    else None
  in
  let skipped = ref 0 in
  let jobs = Sbm_par.Jobs.get () in
  if jobs <= 1 || List.length parts <= 1 then
    (* Sequential path: byte-for-byte the historical behaviour. *)
    List.iteri
      (fun i part ->
        Sbm_obs.Watchdog.poll ();
        if Sbm_obs.Watchdog.abort_requested () then incr skipped
        else run_partition aig config counters obs signatures part i total)
      parts
  else begin
    (* Parallel path: workers analyze partitions on private AIG
       snapshots; results are applied in ascending index. A clean
       (zero-rewrite, not-stale) analysis is merged verbatim —
       counters, BDD stats, flight-recorder events and speculative
       origin-created counts, exactly what the sequential run would
       have produced; anything else is redone sequentially on the
       live AIG. *)
    let pool = Sbm_par.Pool.global () in
    let analyze _i part =
      if Sbm_obs.Watchdog.abort_requested () then None
      else begin
        let snap = Aig.copy aig in
        let wc = { c_pairs = 0; c_diffs = 0; c_rewrites = 0 } in
        let wtotal = ref 0 in
        let before = Aig.origin_stats snap in
        let ctx, events =
          FR.capture (fun () ->
              run_partition_analysis snap config wc signatures part wtotal)
        in
        Some (wc, ctx, events, Par_merge.created_delta ~before ~after:(Aig.origin_stats snap))
      end
    in
    let apply index part result ~dirty =
      Sbm_obs.Watchdog.poll ();
      if Sbm_obs.Watchdog.abort_requested () then begin
        incr skipped;
        false
      end
      else
        match result with
        | Some (wc, ctx, events, created) when (not dirty) && wc.c_rewrites = 0 ->
          counters.c_pairs <- counters.c_pairs + wc.c_pairs;
          counters.c_diffs <- counters.c_diffs + wc.c_diffs;
          Par_merge.merge_created aig created;
          FR.replay events;
          finish_partition ctx obs ~index ~rewrites_delta:0;
          false
        | Some _ | None ->
          let r0 = counters.c_rewrites in
          run_partition aig config counters obs signatures part index total;
          counters.c_rewrites > r0
    in
    Sbm_par.Sched.run_ordered pool (Array.of_list parts) ~analyze ~apply
  end;
  if !skipped > 0 && Sbm_obs.enabled obs then
    Sbm_obs.add obs "watchdog.partitions_skipped" !skipped;
  if Sbm_obs.enabled obs then begin
    Sbm_obs.add obs "diff.partitions" (List.length parts);
    Sbm_obs.add obs "diff.pairs_tried" counters.c_pairs;
    Sbm_obs.add obs "diff.differences_built" counters.c_diffs;
    Sbm_obs.add obs "diff.rewrites" counters.c_rewrites;
    Sbm_obs.add obs "diff.gain" !total
  end;
  {
    gain = !total;
    partitions = List.length parts;
    pairs_tried = counters.c_pairs;
    differences_built = counters.c_diffs;
    rewrites = counters.c_rewrites;
  }

let optimize ?obs ?config aig = (optimize_stats ?obs ?config aig).gain

let run ?obs ?config aig =
  let copy = Aig.copy aig in
  let stats = optimize_stats ?obs ?config copy in
  (fst (Aig.compact copy), stats)
