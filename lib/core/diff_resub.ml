module Aig = Sbm_aig.Aig
module Bdd = Sbm_bdd.Bdd
module Partition = Sbm_partition.Partition
module FR = Sbm_obs.Flight_recorder
module M = Sbm_obs.Metrics

let m_partitions =
  M.counter ~engine:"diff" ~unit_:"partitions" "diff.partitions"
    "partitions the Boolean-difference engine analyzed"

let m_pairs_tried =
  M.counter ~engine:"diff" ~unit_:"pairs" "diff.pairs_tried"
    "node pairs whose Boolean difference reached the BDD layer \
     (prefilter survivors)"

let m_differences_built =
  M.counter ~engine:"diff" ~unit_:"pairs" "diff.differences_built"
    "Boolean differences whose BDD stayed within budget"

let m_rewrites =
  M.counter ~engine:"diff" ~unit_:"rewrites" "diff.rewrites"
    "accepted difference-based rewrites (zero-gain ones included)"

let m_gain =
  M.counter ~engine:"diff" ~unit_:"nodes" "diff.gain"
    "AIG nodes saved by accepted difference rewrites"

type config = {
  diff : Boolean_difference.config;
  limits : Partition.limits;
  bdd_node_limit : int;
  max_pairs : int;
  accept_zero : bool;
  monolithic : bool;
  overlap : float;
  prefilter : Prefilter.bank option;
  jobs : int option;
  watchdog_poll : bool;
  objective : [ `Size | `Depth ];
}

let default_config =
  {
    diff = Boolean_difference.default_config;
    limits = Partition.default_limits;
    bdd_node_limit = 200_000;
    max_pairs = 64;
    accept_zero = false;
    monolithic = false;
    overlap = 0.0;
    prefilter = None;
    jobs = None;
    watchdog_poll = true;
    objective = `Size;
  }

type stats = {
  gain : int;
  partitions : int;
  pairs_tried : int; (** pairs that reached the difference computation *)
  differences_built : int; (** differences whose BDD stayed in budget *)
  rewrites : int; (** accepted rewrites (including zero-gain ones) *)
}

type counters = {
  mutable c_pairs : int;
  mutable c_diffs : int;
  mutable c_rewrites : int;
  pf : Prefilter.counts;
}

let zero_counters () =
  { c_pairs = 0; c_diffs = 0; c_rewrites = 0; pf = Prefilter.zero_counts () }

(* Structural filters of Section III-B: the pair must share support,
   and [f] must not lie in the cone of [g] (a difference implementation
   referencing [g] would then feed [f] back into itself). *)
let good_candidates ctx ~f ~g =
  let aig = Bdd_bridge.aig ctx in
  (not (Aig.is_dead aig f))
  && (not (Aig.is_dead aig g))
  && f <> g
  &&
  let man = Bdd_bridge.man ctx in
  match (Bdd_bridge.bdd_of_node ctx f, Bdd_bridge.bdd_of_node ctx g) with
  | Some bf, Some bg -> (
    match (Bdd.support man bf, Bdd.support man bg) with
    | sf, sg ->
      let shared = List.exists (fun v -> List.mem v sg) sf in
      shared && not (Aig.in_tfi aig ~node:f ~root:g)
    | exception Bdd.Limit ->
      Bdd_bridge.bump_limit_bail ctx;
      false)
  | _ -> false

(* Simulation prefilter state for one partition: the store plus two
   canonical-signature indexes. [index] holds every node with a BDD in
   the partition context (members and leaves) and the constant
   signature; [pairs2] holds every 2-leaf AND/OR function (all
   [±l_i ∧ ±l_j] combinations — canonicalization folds the OR forms
   in). A pair survives iff [Boolean_difference.compute] could still
   return [Some]:

   - case a (lines 5-7) needs the difference to exist as a partition
     node [d] — then the difference's function over the leaves equals
     [d]'s (or its complement), so its canonical signature is in the
     index;
   - case b (lines 8-16) needs [size(diff) + xor_cost <= mffc f] with
     the difference BDD's size lower-bounded two ways, taking the max:
     {ul
     {- the signature ladder: an [index] miss certifies the
        difference is not constant and not a ±leaf — exactly the
        functions with BDD size <= 1 — so [size >= 2]; a further
        [pairs2] miss rules out every function whose BDD has exactly
        2 nodes (a 2-node BDD is [if x then ±y else c] in some phase,
        i.e. a 2-leaf AND/OR), so [size >= 3];}
     {- the support bound: a leaf exactly one of [f], [g] depends on
        is necessarily in the support of [f ⊕ g], and a reduced BDD
        carries at least one node per support variable, so
        [size >= |supp f Δ supp g|] (the [supp] table, precomputed
        from the members' already-built BDDs).}}

   A rejected pair therefore provably makes [compute] return [None]:
   skipping it drops only the wasted BDD work, never a rewrite, which
   is what makes the off-vs-on QoR identity a testable property rather
   than a tuning accident. *)
type pair_filter = {
  store : Prefilter.t;
  index : (int64 array, unit) Hashtbl.t;
  pairs2 : (int64 array, unit) Hashtbl.t;
  supp : (int, int list) Hashtbl.t; (* member node -> ascending BDD support *)
}

(* |a Δ b| for ascending lists. *)
let rec delta_size a b =
  match (a, b) with
  | [], rest | rest, [] -> List.length rest
  | x :: a', y :: b' ->
    if x = y then delta_size a' b'
    else if x < y then 1 + delta_size a' b
    else 1 + delta_size a b'

(* Building [pairs2] is O(leaves^2) signatures; beyond this leaf count
   the set is skipped and the ladder stops at [size >= 2] (still
   sound, just a weaker bound). *)
let max_pairs2_leaves = 128

let partition_filter store ctx =
  match store with
  | None -> None
  | Some st ->
    let members = Bdd_bridge.members ctx in
    let leaves = Bdd_bridge.leaves ctx in
    let n = Prefilter.words st in
    let index = Hashtbl.create (4 * (Array.length members + 1)) in
    let add v = Hashtbl.replace index (Prefilter.signature st (Aig.lit_of v false)) () in
    Array.iter add members;
    Array.iter add leaves;
    Hashtbl.replace index (Array.make n 0L) ();
    let k = Array.length leaves in
    let pairs2 = Hashtbl.create (if k <= max_pairs2_leaves then 2 * k * k else 16) in
    if k <= max_pairs2_leaves then begin
      let value = Array.map (fun v -> Array.init n (Prefilter.value st v)) leaves in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          List.iter
            (fun (ci, cj) ->
              let sig_ =
                Array.init n (fun w ->
                    let a = if ci then Int64.lognot value.(i).(w) else value.(i).(w) in
                    let b = if cj then Int64.lognot value.(j).(w) else value.(j).(w) in
                    Int64.logand a b)
              in
              Hashtbl.replace pairs2 (Prefilter.canonical_of_words sig_) ())
            [ (false, false); (false, true); (true, false); (true, true) ]
        done
      done
    end;
    let supp = Hashtbl.create (Array.length members) in
    let man = Bdd_bridge.man ctx in
    Array.iter
      (fun v ->
        match Bdd_bridge.bdd_of_node ctx v with
        | None -> ()
        | Some b -> (
          match Bdd.support man b with
          | s -> Hashtbl.replace supp v s
          | exception Bdd.Limit -> ()))
      members;
    Some { store = st; index; pairs2; supp }

let pair_verdict pf ~saving ~xor_cost f g =
  let st = pf.store in
  let n = Prefilter.words st in
  let d =
    Array.init n (fun w ->
        Int64.logxor (Prefilter.value st f w) (Prefilter.value st g w))
  in
  let dc = Prefilter.canonical_of_words d in
  if Hashtbl.mem pf.index dc then Prefilter.Maybe
  else begin
    (* Case a is impossible; case b survives only when [f]'s MFFC can
       pay for the certified lower bound on the difference BDD. *)
    let lb = if Hashtbl.mem pf.pairs2 dc then 2 else 3 in
    let lb =
      match (Hashtbl.find_opt pf.supp f, Hashtbl.find_opt pf.supp g) with
      | Some sf, Some sg -> max lb (delta_size sf sg)
      | _ -> lb
    in
    if lb + xor_cost <= saving then Prefilter.Maybe
    else begin
      let const v =
        let all0 = ref true and all1 = ref true in
        for w = 0 to n - 1 do
          let x = Prefilter.value st v w in
          if x <> 0L then all0 := false;
          if x <> -1L then all1 := false
        done;
        !all0 || !all1
      in
      if const g || const f then Prefilter.Reject_const
      else Prefilter.Reject_signature
    end
  end

(* Analysis/commit loop of one partition. Mutates [aig] (candidate
   cones, commits, traversal marks): parallel workers call this on a
   private snapshot, the sequential path on the live AIG. Returns the
   partition's BDD context so the caller can flush its stats. *)
let run_partition_analysis aig config counters store part total =
  let ctx = Bdd_bridge.build ~node_limit:config.bdd_node_limit aig part in
  let members = Bdd_bridge.members ctx in
  let filter = partition_filter store ctx in
  (* Depth objective: levels are refreshed after every accepted
     rewrite (replacement cascades can move many nodes). *)
  let levels = ref (if config.objective = `Depth then Some (Aig.levels aig) else None) in
  let depth_ok f candidate =
    match !levels with
    | None -> true
    | Some lv ->
      (* Fresh candidate nodes have no cached level; compute the
         candidate root's level through its (already-levelled)
         fanins. *)
      let rec level_of v =
        if v < Array.length lv && lv.(v) >= 0 then lv.(v)
        else if not (Aig.is_and aig v) then 0
        else
          1
          + max
              (level_of (Aig.node_of (Aig.fanin0 aig v)))
              (level_of (Aig.node_of (Aig.fanin1 aig v)))
      in
      level_of (Aig.node_of candidate) <= level_of f
  in
  Array.iter
    (fun f ->
      if Aig.is_and aig f then begin
        let pairs = ref 0 in
        let replaced = ref false in
        (* Case b of the difference computation is only reachable when
           the MFFC of [f] can pay for the certified lower bound on
           the difference implementation plus the XOR; the bound per
           pair comes from the signature ladder in [pair_verdict].
           Exact per [f]: a committed rewrite (the only thing that
           moves MFFCs mid-loop) also ends [f]'s candidate scan. *)
        let saving =
          match filter with None -> max_int | Some _ -> Aig.mffc_size aig f
        in
        let xor_cost = config.diff.Boolean_difference.xor_cost in
        Array.iter
          (fun g ->
            if
              (not !replaced)
              && !pairs < config.max_pairs
              && Aig.is_and aig g
              && good_candidates ctx ~f ~g
            then begin
              (* The pair budget counts every enumerated candidate,
                 filtered or not, so the enumeration (and therefore the
                 committed rewrites) is identical with the prefilter on
                 or off. Only survivors reach [c_pairs] — the public
                 [diff.pairs_tried] measures work sent to the BDD
                 layer. *)
              incr pairs;
              let v =
                match filter with
                | None -> Prefilter.Maybe
                | Some pf ->
                  let v = pair_verdict pf ~saving ~xor_cost f g in
                  Prefilter.note counters.pf v;
                  v
              in
              match v with
              | Prefilter.Reject_const | Prefilter.Reject_signature -> ()
              | Prefilter.Maybe -> (
                counters.c_pairs <- counters.c_pairs + 1;
                match Boolean_difference.compute ctx config.diff ~f ~g with
                | None -> ()
                | Some candidate ->
                  counters.c_diffs <- counters.c_diffs + 1;
                  if
                    Aig.node_of candidate <> f
                    && (not (Aig.in_tfi aig ~node:f ~root:(Aig.node_of candidate)))
                    && depth_ok f candidate
                  then begin
                    let gain = Aig.gain_of_replacement aig ~root:f ~candidate in
                    (* Alg. 2 line 13: accept when not larger. *)
                    if gain > 0 || (config.accept_zero && gain = 0) then begin
                      Aig.replace aig f candidate;
                      total := !total + gain;
                      counters.c_rewrites <- counters.c_rewrites + 1;
                      replaced := true;
                      if config.objective = `Depth then levels := Some (Aig.levels aig)
                    end
                    else Aig.delete_dangling aig (Aig.node_of candidate)
                  end
                  else Aig.delete_dangling aig (Aig.node_of candidate))
            end)
          members
      end)
    members;
  ctx

(* Main-domain bookkeeping for a finished partition: flush the BDD
   stats into the span, feed the watchdog, record the flight-recorder
   summary, and append the merge-boundary fingerprint (the audit
   trail's merge records must come from the main domain in ascending
   partition index — exactly this function's contract). Shared by the
   sequential path and the parallel merge path (which runs it against
   a worker's context but the live [aig]). *)
let finish_partition aig ctx obs ~index ~rewrites_delta ~pf_rejected =
  Bdd_bridge.flush_stats ~engine:"diff" ctx obs;
  let bails = Bdd_bridge.limit_bails ctx in
  Sbm_obs.Watchdog.note_partition ~engine:"diff" ~bails;
  if FR.enabled () then
    FR.record
      ~severity:(if bails > 0 then FR.Warn else FR.Debug)
      ~engine:"diff"
      ~id:(Printf.sprintf "partition-%d" index)
      ~metrics:
        [ ("members", Array.length (Bdd_bridge.members ctx)); ("bails", bails);
          ("rewrites", rewrites_delta); ("pf_rejected", pf_rejected) ]
      "partition done";
  if Sbm_obs.Fingerprint.enabled () then
    Sbm_obs.Fingerprint.record_merge ~engine:"diff" ~partition:index
      ~structure:(Aig.fold_hash aig)

let run_partition aig config counters obs store part index total =
  let rewrites0 = counters.c_rewrites in
  let rejected0 = Prefilter.rejected counters.pf in
  let ctx = run_partition_analysis aig config counters store part total in
  finish_partition aig ctx obs ~index
    ~rewrites_delta:(counters.c_rewrites - rewrites0)
    ~pf_rejected:(Prefilter.rejected counters.pf - rejected0)

let optimize_stats ?(obs = Sbm_obs.null) ?(config = default_config) aig =
  (* Difference implementations built from here on are this engine's
     nodes — unless a flow script already set a finer-grained tag. *)
  if (Aig.current_origin aig).Aig.Origin.kind = Aig.Origin.Seed then
    Aig.set_origin aig (Aig.Origin.make ~pass:"boolean-difference" Aig.Origin.Diff);
  let total = ref 0 in
  let counters = zero_counters () in
  let parts =
    if config.monolithic then [ Partition.whole aig ]
    else if config.overlap > 0.0 then
      Partition.compute_overlapping aig config.limits ~overlap:config.overlap
    else Partition.compute aig config.limits
  in
  let store = Option.map (fun bank -> Prefilter.attach bank aig) config.prefilter in
  let skipped = ref 0 in
  let poll () = if config.watchdog_poll then Sbm_obs.Watchdog.poll () in
  let jobs =
    match config.jobs with Some j -> max 1 j | None -> Sbm_par.Jobs.get ()
  in
  if jobs <= 1 || List.length parts <= 1 then
    (* Sequential path: byte-for-byte the historical behaviour. *)
    List.iteri
      (fun i part ->
        poll ();
        if Sbm_obs.Watchdog.abort_requested () then incr skipped
        else run_partition aig config counters obs store part i total)
      parts
  else begin
    (* Parallel path: workers analyze partitions on private AIG
       snapshots; results are applied in ascending index. A clean
       (zero-rewrite, not-stale) analysis is merged verbatim —
       counters, prefilter tallies, BDD stats, flight-recorder events
       and speculative origin-created counts, exactly what the
       sequential run would have produced; anything else is redone
       sequentially on the live AIG. *)
    let analyze _i part =
      if Sbm_obs.Watchdog.abort_requested () then None
      else begin
        let snap = Aig.copy aig in
        let wstore = Option.map (fun st -> Prefilter.fork st snap) store in
        let wc = zero_counters () in
        let wtotal = ref 0 in
        let before = Aig.origin_stats snap in
        (* Metrics.capture mirrors FR.capture: any registry bump a
           worker makes lands in a domain-local shard, replayed on the
           main domain only when this analysis merges cleanly. *)
        let (ctx, events), mdeltas =
          M.capture (fun () ->
              FR.capture (fun () ->
                  run_partition_analysis snap config wc wstore part wtotal))
        in
        Some
          ( wc, ctx, events, mdeltas,
            Par_merge.created_delta ~before ~after:(Aig.origin_stats snap) )
      end
    in
    let apply index part result ~dirty =
      poll ();
      if Sbm_obs.Watchdog.abort_requested () then begin
        incr skipped;
        false
      end
      else
        match result with
        | Some (wc, ctx, events, mdeltas, created)
          when (not dirty) && wc.c_rewrites = 0 ->
          counters.c_pairs <- counters.c_pairs + wc.c_pairs;
          counters.c_diffs <- counters.c_diffs + wc.c_diffs;
          Par_merge.merge_prefilter counters.pf wc.pf;
          Par_merge.merge_created aig created;
          Par_merge.merge_metrics mdeltas;
          FR.replay events;
          finish_partition aig ctx obs ~index ~rewrites_delta:0
            ~pf_rejected:(Prefilter.rejected wc.pf);
          false
        | Some _ | None ->
          let r0 = counters.c_rewrites in
          run_partition aig config counters obs store part index total;
          counters.c_rewrites > r0
    in
    let go pool =
      Sbm_par.Sched.run_ordered pool (Array.of_list parts) ~analyze ~apply
    in
    if jobs = Sbm_par.Jobs.get () then go (Sbm_par.Pool.global ())
    else Sbm_par.Pool.with_pool ~jobs go
  end;
  if !skipped > 0 then
    Sbm_obs.bump obs Engine_intf.m_partitions_skipped !skipped;
  Sbm_obs.bump obs m_partitions (List.length parts);
  Sbm_obs.bump obs m_pairs_tried counters.c_pairs;
  Sbm_obs.bump obs m_differences_built counters.c_diffs;
  Sbm_obs.bump obs m_rewrites counters.c_rewrites;
  Sbm_obs.bump obs m_gain !total;
  if store <> None then Prefilter.flush obs counters.pf;
  {
    gain = !total;
    partitions = List.length parts;
    pairs_tried = counters.c_pairs;
    differences_built = counters.c_diffs;
    rewrites = counters.c_rewrites;
  }

let optimize ?obs ?config aig = (optimize_stats ?obs ?config aig).gain

let run ?obs ?config aig =
  let copy = Aig.copy aig in
  let stats = optimize_stats ?obs ?config copy in
  (fst (Aig.compact copy), stats)

module Engine = struct
  let name = "diff"
  let default_origin = Aig.Origin.make ~pass:"boolean-difference" Aig.Origin.Diff

  let config_of (c : Engine_intf.config) =
    {
      default_config with
      limits =
        (match c.Engine_intf.partition_nodes with
        | None -> default_config.limits
        | Some n -> { default_config.limits with Partition.max_nodes = n });
      bdd_node_limit =
        Option.value c.Engine_intf.bdd_node_limit
          ~default:default_config.bdd_node_limit;
      accept_zero = c.Engine_intf.effort = Engine_intf.High;
      prefilter = c.Engine_intf.prefilter;
      jobs = c.Engine_intf.jobs;
      watchdog_poll = c.Engine_intf.watchdog_poll;
    }

  let stats_of (s : stats) =
    {
      Engine_intf.gain = s.gain;
      details =
        [ ("partitions", s.partitions); ("pairs_tried", s.pairs_tried);
          ("differences_built", s.differences_built); ("rewrites", s.rewrites) ];
    }

  let run (c : Engine_intf.config) aig =
    let aig', s = run ~obs:c.Engine_intf.obs ~config:(config_of c) aig in
    (aig', stats_of s)

  let optimize (c : Engine_intf.config) aig =
    let s = optimize_stats ~obs:c.Engine_intf.obs ~config:(config_of c) aig in
    (aig, stats_of s)
end
