module Aig = Sbm_aig.Aig
module Bdd = Sbm_bdd.Bdd

type config = { xor_cost : int; size_limit : int }

let default_config = { xor_cost = 3; size_limit = 10 }

(* Alg. 1: Boolean difference computation and implementation using
   BDDs. Comments cite the paper's pseudocode lines. *)
let compute ctx config ~f ~g =
  let man = Bdd_bridge.man ctx in
  let aig = Bdd_bridge.aig ctx in
  match (Bdd_bridge.bdd_of_node ctx f, Bdd_bridge.bdd_of_node ctx g) with
  | None, _ | _, None -> None (* budget-overrun node: skip (III-C) *)
  | Some bddf, Some bddg -> (
    match Bdd.mxor man bddf bddg (* line 4 *) with
    | exception Bdd.Limit ->
      Bdd_bridge.bump_limit_bail ctx;
      None
    | bdd_diff -> (
      let g_lit = Aig.lit_of g false in
      match Bdd_bridge.node_of_bdd ctx bdd_diff with
      | Some (d, compl) when d <> f && d <> g ->
        (* Lines 5-7: the difference already exists as node [d]; the
           candidate costs one XOR. *)
        Some (Aig.bxor aig (Aig.lit_of d compl) g_lit)
      | _ ->
        (* Lines 8-10: size filter on the difference BDD, bounding the
           size of the difference network merged into the AIG. *)
        if Bdd.size man bdd_diff > config.size_limit then None
        else begin
          (* Lines 11-14: saving filter. The MFFC of [f] bounds the
             nodes released; the BDD size lower-bounds the AIG nodes
             needed to implement the difference. Sharing with the
             existing network is captured later by the exact gain
             check at commit time. *)
          let saving = Aig.mffc_size aig f in
          if Bdd.size man bdd_diff + config.xor_cost > saving then None
          else begin
            (* Lines 15-16: implement the difference as an AIG via
               structural hashing on the BDD. *)
            let bdiff_node = Bdd_bridge.to_aig_lit ctx bdd_diff in
            Some (Aig.bxor aig bdiff_node g_lit)
          end
        end))
