(** Heterogeneous elimination for kernel extraction (paper
    Section IV-B).

    The network is partitioned; each partition tries node elimination
    with every threshold from the paper's empirical list
    [(-1, 2, 5, 20, 50, 100, 200, 300)] followed by kernel and cube
    extraction, and only the best trial (largest literal reduction) is
    kept. Elimination is restricted to nodes whose fanouts stay inside
    the partition, so trials roll back cleanly. *)

type config = {
  thresholds : int list;
  partition_size : int; (** internal nodes per partition *)
  max_cubes : int; (** SOP explosion guard during collapsing *)
  extract_passes : int;
}

val default_config : config

(** Statistics of one run. *)
type stats = {
  partitions : int;
  trials : int; (** thresholds tried across all partitions *)
  improved_partitions : int; (** partitions that kept a better trial *)
  lits_before : int;
  lits_after : int;
}

(** [run ?obs ?config aig] round-trips through the SOP network view
    and returns a fresh optimized AIG with statistics (callers keep
    the smaller of input/output, making the enclosing move gain
    >= 0). The input is not modified. [obs] receives the [kernel.*]
    counters. *)
val run :
  ?obs:Sbm_obs.span -> ?config:config -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t * stats

(** [run_homogeneous ~threshold ?config aig] is the ablation baseline:
    one global threshold for the whole network. *)
val run_homogeneous : threshold:int -> ?config:config -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t
