(** Heterogeneous elimination for kernel extraction (paper
    Section IV-B).

    The network is partitioned; each partition tries node elimination
    with every threshold from the paper's empirical list
    [(-1, 2, 5, 20, 50, 100, 200, 300)] followed by kernel and cube
    extraction, and only the best trial (largest literal reduction) is
    kept. Elimination is restricted to nodes whose fanouts stay inside
    the partition, so trials roll back cleanly. *)

type config = {
  thresholds : int list;
  partition_size : int; (** internal nodes per partition *)
  max_cubes : int; (** SOP explosion guard during collapsing *)
  extract_passes : int;
  prefilter : Prefilter.bank option;
      (** kernel trials accept on literal counts, so there is no
          per-candidate test to shadow; with a bank the engine instead
          reports a QoR-neutral signature census (potential functional
          duplicates as survivors) under the [prefilter.*] counters *)
  jobs : int option;  (** worker domains; [None] = global [Jobs.get ()] *)
  watchdog_poll : bool;  (** poll the watchdog at partition boundaries *)
}

val default_config : config

(** Statistics of one run. *)
type stats = {
  partitions : int;
  trials : int; (** thresholds tried across all partitions *)
  improved_partitions : int; (** partitions that kept a better trial *)
  lits_before : int;
  lits_after : int;
}

(** [run ?obs ?config aig] round-trips through the SOP network view
    and returns a fresh optimized AIG with statistics (callers keep
    the smaller of input/output, making the enclosing move gain
    >= 0). The input is not modified. [obs] receives the [kernel.*]
    counters. *)
val run :
  ?obs:Sbm_obs.span -> ?config:config -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t * stats

(** The engine behind the unified {!Engine_intf.S} interface.
    [optimize] keeps the smaller of input and round-trip result. *)
module Engine : Engine_intf.S

(** [run_homogeneous ~threshold ?config aig] is the ablation baseline:
    one global threshold for the whole network. *)
val run_homogeneous : threshold:int -> ?config:config -> Sbm_aig.Aig.t -> Sbm_aig.Aig.t
