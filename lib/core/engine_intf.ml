(* The unified engine interface: one typed [config] record shared by
   every Boolean engine, replacing the per-engine ad-hoc optional
   arguments that used to leak into [Flow], [Gradient] and the CLI.

   The overridable knobs are [option]s with [None] meaning "the
   engine's own default" — the defaults differ per engine (e.g. the
   heterogeneous-kernel SOP chunk size vs. the BDD engines' partition
   node limit), and a shared concrete default would silently change
   behaviour. [effort] maps onto each engine's effort-dependent knobs
   (today: Boolean-difference zero-gain acceptance). *)

module Aig = Sbm_aig.Aig

(* Shared by every partitioned engine (diff/mspf/kernel): partitions
   skipped because a watchdog abort was pending at their boundary. *)
let m_partitions_skipped =
  Sbm_obs.Metrics.counter ~engine:"watchdog" ~unit_:"partitions"
    "watchdog.partitions_skipped"
    "partitions skipped at their boundary under a pending watchdog abort"

type effort = Low | High

type config = {
  obs : Sbm_obs.span;  (* telemetry span the run reports into *)
  effort : effort;
  partition_nodes : int option;
      (* partition size: max member nodes (BDD engines) or SOP chunk
         size (kernel engine); None = engine default *)
  bdd_node_limit : int option;  (* BDD manager budget; None = default *)
  jobs : int option;  (* worker domains; None = the global Jobs.get () *)
  prefilter : Prefilter.bank option;
      (* simulation prefilter pattern bank; None = filtering off *)
  watchdog_poll : bool;  (* poll the watchdog at partition boundaries *)
}

let default =
  {
    obs = Sbm_obs.null;
    effort = Low;
    partition_nodes = None;
    bdd_node_limit = None;
    jobs = None;
    prefilter = None;
    watchdog_poll = true;
  }

(* Uniform run statistics: the size gain plus the engine's own
   counters as labelled values (the same names the telemetry span
   receives, minus the engine prefix). *)
type stats = { gain : int; details : (string * int) list }

module type S = sig
  val name : string

  (* Provenance tag stamped on nodes the engine builds when no flow
     script set a finer-grained one. *)
  val default_origin : Aig.Origin.t

  (* [run config aig] optimizes a copy and returns the compacted
     result; the input is not modified. *)
  val run : config -> Aig.t -> Aig.t * stats

  (* [optimize config aig] is the in-place variant: it mutates (and
     possibly rebuilds) [aig] and returns the network to use. *)
  val optimize : config -> Aig.t -> Aig.t * stats
end
