module Aig = Sbm_aig.Aig
module Network = Sbm_sop.Network
module Sop = Sbm_sop.Sop
module FR = Sbm_obs.Flight_recorder

type config = {
  thresholds : int list;
  partition_size : int;
  max_cubes : int;
  extract_passes : int;
}

let default_config =
  {
    thresholds = [ -1; 2; 5; 20; 50; 100; 200; 300 ];
    partition_size = 100;
    max_cubes = 64;
    extract_passes = 20;
  }

type stats = {
  partitions : int;
  trials : int; (** thresholds tried across all partitions *)
  improved_partitions : int; (** partitions that kept a better trial *)
  lits_before : int;
  lits_after : int;
}

(* Literal count restricted to a node set plus nodes created after a
   mark. *)
let partition_lits net ~member ~mark =
  List.fold_left
    (fun acc n ->
      if member n || n >= mark then acc + Sop.num_lits (Network.cover net n) else acc)
    0
    (Network.internal_nodes net)

(* Fanout map over live internal nodes. *)
let fanout_map net =
  let map : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun n ->
      List.iter
        (fun c ->
          Array.iter
            (fun l ->
              let v = Sop.var_of l in
              let prev = Option.value ~default:[] (Hashtbl.find_opt map v) in
              if not (List.mem n prev) then Hashtbl.replace map v (n :: prev))
            c)
        (Network.cover net n))
    (Network.internal_nodes net);
  map

let optimize_partition net config part_nodes =
  let member_set = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace member_set n ()) part_nodes;
  let member n = Hashtbl.mem member_set n in
  let fanouts = fanout_map net in
  (* A node may be eliminated only when its fanouts stay inside the
     partition (so rollbacks touch member covers only). *)
  let mark = Network.mark net in
  let eliminable n =
    (member n || n >= mark)
    && List.for_all
         (fun m -> member m || m >= mark)
         (Option.value ~default:[] (Hashtbl.find_opt fanouts n))
  in
  let snapshot () =
    List.filter_map
      (fun n -> if member n then Some (n, Network.cover net n) else None)
      (Network.internal_nodes net)
  in
  let saved = snapshot () in
  let rollback () =
    Network.truncate net mark;
    List.iter
      (fun (n, cv) ->
        Network.revive net n;
        Network.set_cover net n cv)
      saved
  in
  let trial threshold =
    ignore
      (Network.eliminate net ~threshold ~max_cubes:config.max_cubes ~only:eliminable ());
    ignore
      (Network.extract_kernels net
         ~only:(fun n -> member n || n >= mark)
         ~max_passes:config.extract_passes ());
    ignore
      (Network.extract_cubes net
         ~only:(fun n -> member n || n >= mark)
         ~max_passes:config.extract_passes ());
    partition_lits net ~member ~mark
  in
  let before = partition_lits net ~member ~mark in
  (* Try each threshold, recording the literal count; keep the best. *)
  let best = ref None in
  List.iter
    (fun threshold ->
      let lits = trial threshold in
      (match !best with
      | Some (bl, _) when bl <= lits -> ()
      | Some _ | None -> best := Some (lits, threshold));
      rollback ())
    config.thresholds;
  let improved =
    match !best with
    | Some (lits, threshold) when lits < before ->
      ignore (trial threshold);
      true
    | Some _ | None -> false
  in
  (List.length config.thresholds, improved)

(* Chunk the internal nodes into partitions of bounded size. *)
let partitions_of net size =
  let nodes = Network.internal_nodes net in
  let rec chunk acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n >= size then chunk (List.rev cur :: acc) [ x ] 1 rest
      else chunk acc (x :: cur) (n + 1) rest
  in
  chunk [] [] 0 nodes

(* Origin for logic created inside the SOP domain: the ambient tag if
   a flow/gradient script already set one, the engine's own otherwise
   (standalone use). *)
let fallback_origin aig =
  let ambient = Aig.current_origin aig in
  if ambient.Aig.Origin.kind = Aig.Origin.Seed then
    Aig.Origin.make ~pass:"hetero-kernel" Aig.Origin.Kernel
  else ambient

let run ?(obs = Sbm_obs.null) ?(config = default_config) aig =
  let fallback = fallback_origin aig in
  let net = Network.of_aig aig in
  let lits_before = Network.num_lits net in
  let parts = partitions_of net config.partition_size in
  let trials = ref 0 in
  let improved = ref 0 in
  let skipped = ref 0 in
  let note idx part t i =
    trials := !trials + t;
    if i then incr improved;
    if FR.enabled () then
      FR.record ~severity:FR.Debug ~engine:"kernel"
        ~id:(Printf.sprintf "partition-%d" idx)
        ~metrics:
          [ ("members", List.length part); ("trials", t);
            ("improved", if i then 1 else 0) ]
        "partition done"
  in
  let jobs = Sbm_par.Jobs.get () in
  if jobs <= 1 || List.length parts <= 1 then
    (* Sequential path: byte-for-byte the historical behaviour. *)
    List.iteri
      (fun idx part ->
        Sbm_obs.Watchdog.poll ();
        if Sbm_obs.Watchdog.abort_requested () then incr skipped
        else begin
          let t, i = optimize_partition net config part in
          note idx part t i
        end)
      parts
  else begin
    (* Parallel path: workers run the threshold trials on a private
       network copy. A partition whose best trial did not improve
       leaves the live network's covers untouched, so when no earlier
       partition of the chunk committed either, the worker's verdict
       transfers verbatim; improved or stale partitions are redone on
       the live network in index order. *)
    let pool = Sbm_par.Pool.global () in
    let analyze _i part =
      if Sbm_obs.Watchdog.abort_requested () then None
      else Some (optimize_partition (Network.copy net) config part)
    in
    let apply idx part result ~dirty =
      Sbm_obs.Watchdog.poll ();
      if Sbm_obs.Watchdog.abort_requested () then begin
        incr skipped;
        false
      end
      else
        match result with
        | Some (t, false) when not dirty ->
          note idx part t false;
          false
        | Some _ | None ->
          let t, i = optimize_partition net config part in
          note idx part t i;
          i
    in
    Sbm_par.Sched.run_ordered pool (Array.of_list parts) ~analyze ~apply
  end;
  let lits_after = Network.num_lits net in
  if Sbm_obs.enabled obs then begin
    Sbm_obs.add obs "kernel.partitions" (List.length parts);
    Sbm_obs.add obs "kernel.trials" !trials;
    Sbm_obs.add obs "kernel.improved_partitions" !improved;
    Sbm_obs.add obs "kernel.lits_saved" (lits_before - lits_after);
    if !skipped > 0 then Sbm_obs.add obs "watchdog.partitions_skipped" !skipped
  end;
  ( Network.to_aig ~provenance:(aig, fallback) net,
    {
      partitions = List.length parts;
      trials = !trials;
      improved_partitions = !improved;
      lits_before;
      lits_after;
    } )

let run_homogeneous ~threshold ?(config = default_config) aig =
  let fallback = fallback_origin aig in
  let net = Network.of_aig aig in
  ignore (Network.eliminate net ~threshold ~max_cubes:config.max_cubes ());
  ignore (Network.extract_kernels net ~max_passes:config.extract_passes ());
  ignore (Network.extract_cubes net ~max_passes:config.extract_passes ());
  Network.to_aig ~provenance:(aig, fallback) net
