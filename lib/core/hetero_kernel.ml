module Aig = Sbm_aig.Aig
module Network = Sbm_sop.Network
module Sop = Sbm_sop.Sop
module FR = Sbm_obs.Flight_recorder
module M = Sbm_obs.Metrics

let m_partitions =
  M.counter ~engine:"kernel" ~unit_:"partitions" "kernel.partitions"
    "SOP partitions the heterogeneous-kernel engine processed"

let m_trials =
  M.counter ~engine:"kernel" ~unit_:"trials" "kernel.trials"
    "kernel-extraction threshold trials run"

let m_improved_partitions =
  M.counter ~engine:"kernel" ~unit_:"partitions" "kernel.improved_partitions"
    "partitions whose best trial reduced literal count"

let m_lits_saved =
  M.counter ~engine:"kernel" ~unit_:"literals" "kernel.lits_saved"
    "SOP literals saved by committed kernel extractions"

type config = {
  thresholds : int list;
  partition_size : int;
  max_cubes : int;
  extract_passes : int;
  prefilter : Prefilter.bank option;
  jobs : int option;
  watchdog_poll : bool;
}

let default_config =
  {
    thresholds = [ -1; 2; 5; 20; 50; 100; 200; 300 ];
    partition_size = 100;
    max_cubes = 64;
    extract_passes = 20;
    prefilter = None;
    jobs = None;
    watchdog_poll = true;
  }

type stats = {
  partitions : int;
  trials : int; (** thresholds tried across all partitions *)
  improved_partitions : int; (** partitions that kept a better trial *)
  lits_before : int;
  lits_after : int;
}

(* Literal count restricted to a node set plus nodes created after a
   mark. *)
let partition_lits net ~member ~mark =
  List.fold_left
    (fun acc n ->
      if member n || n >= mark then acc + Sop.num_lits (Network.cover net n) else acc)
    0
    (Network.internal_nodes net)

(* Fanout map over live internal nodes. *)
let fanout_map net =
  let map : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun n ->
      List.iter
        (fun c ->
          Array.iter
            (fun l ->
              let v = Sop.var_of l in
              let prev = Option.value ~default:[] (Hashtbl.find_opt map v) in
              if not (List.mem n prev) then Hashtbl.replace map v (n :: prev))
            c)
        (Network.cover net n))
    (Network.internal_nodes net);
  map

let optimize_partition net config part_nodes =
  let member_set = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace member_set n ()) part_nodes;
  let member n = Hashtbl.mem member_set n in
  let fanouts = fanout_map net in
  (* A node may be eliminated only when its fanouts stay inside the
     partition (so rollbacks touch member covers only). *)
  let mark = Network.mark net in
  let eliminable n =
    (member n || n >= mark)
    && List.for_all
         (fun m -> member m || m >= mark)
         (Option.value ~default:[] (Hashtbl.find_opt fanouts n))
  in
  let snapshot () =
    List.filter_map
      (fun n -> if member n then Some (n, Network.cover net n) else None)
      (Network.internal_nodes net)
  in
  let saved = snapshot () in
  let rollback () =
    Network.truncate net mark;
    List.iter
      (fun (n, cv) ->
        Network.revive net n;
        Network.set_cover net n cv)
      saved
  in
  let trial threshold =
    ignore
      (Network.eliminate net ~threshold ~max_cubes:config.max_cubes ~only:eliminable ());
    ignore
      (Network.extract_kernels net
         ~only:(fun n -> member n || n >= mark)
         ~max_passes:config.extract_passes ());
    ignore
      (Network.extract_cubes net
         ~only:(fun n -> member n || n >= mark)
         ~max_passes:config.extract_passes ());
    partition_lits net ~member ~mark
  in
  let before = partition_lits net ~member ~mark in
  (* Try each threshold, recording the literal count; keep the best. *)
  let best = ref None in
  List.iter
    (fun threshold ->
      let lits = trial threshold in
      (match !best with
      | Some (bl, _) when bl <= lits -> ()
      | Some _ | None -> best := Some (lits, threshold));
      rollback ())
    config.thresholds;
  let improved =
    match !best with
    | Some (lits, threshold) when lits < before ->
      ignore (trial threshold);
      true
    | Some _ | None -> false
  in
  (List.length config.thresholds, improved)

(* Chunk the internal nodes into partitions of bounded size. *)
let partitions_of net size =
  let nodes = Network.internal_nodes net in
  let rec chunk acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n >= size then chunk (List.rev cur :: acc) [ x ] 1 rest
      else chunk acc (x :: cur) (n + 1) rest
  in
  chunk [] [] 0 nodes

(* Origin for logic created inside the SOP domain: the ambient tag if
   a flow/gradient script already set one, the engine's own otherwise
   (standalone use). *)
let fallback_origin aig =
  let ambient = Aig.current_origin aig in
  if ambient.Aig.Origin.kind = Aig.Origin.Seed then
    Aig.Origin.make ~pass:"hetero-kernel" Aig.Origin.Kernel
  else ambient

(* Observational signature census. Kernel trials accept on literal
   counts, not on a per-pair functional test, so there is no
   acceptance check for the prefilter to shadow soundly; instead the
   engine reports what the signatures see before the SOP round-trip —
   constant-signature nodes ([Reject_const]), nodes certified
   functionally distinct from everything scanned before them
   ([Reject_signature]) and potential functional duplicates
   ([Maybe], the survivors kernel extraction could share). Strictly
   QoR-neutral: nothing downstream consults the verdicts. *)
let signature_census store aig counters =
  let seen = Hashtbl.create 256 in
  for v = 1 to Aig.num_nodes aig - 1 do
    if Aig.is_and aig v && not (Aig.is_dead aig v) then begin
      let raw =
        Array.init (Prefilter.words store) (fun w -> Prefilter.value store v w)
      in
      let const =
        Array.for_all (fun w -> w = 0L) raw
        || Array.for_all (fun w -> w = -1L) raw
      in
      let key = Prefilter.canonical_of_words raw in
      let verdict =
        if const then Prefilter.Reject_const
        else if Hashtbl.mem seen key then Prefilter.Maybe
        else begin
          Hashtbl.replace seen key ();
          Prefilter.Reject_signature
        end
      in
      Prefilter.note counters verdict
    end
  done;
  if FR.enabled () then
    FR.record ~severity:FR.Debug ~engine:"kernel" ~id:"signature-census"
      ~metrics:
        [ ("duplicates", counters.Prefilter.survivors);
          ("distinct", counters.Prefilter.rejected_sig);
          ("constant", counters.Prefilter.rejected_const) ]
      "signature census"

let run ?(obs = Sbm_obs.null) ?(config = default_config) aig =
  let fallback = fallback_origin aig in
  let pf_counts = Prefilter.zero_counts () in
  (match config.prefilter with
  | None -> ()
  | Some bank ->
    let store = Prefilter.attach bank aig in
    signature_census store aig pf_counts);
  let net = Network.of_aig aig in
  let lits_before = Network.num_lits net in
  let parts = partitions_of net config.partition_size in
  let trials = ref 0 in
  let improved = ref 0 in
  let skipped = ref 0 in
  let note idx part t i =
    trials := !trials + t;
    if i then incr improved;
    if FR.enabled () then
      FR.record ~severity:FR.Debug ~engine:"kernel"
        ~id:(Printf.sprintf "partition-%d" idx)
        ~metrics:
          [ ("members", List.length part); ("trials", t);
            ("improved", if i then 1 else 0) ]
        "partition done";
    (* Merge-boundary fingerprint: [note] runs on the main domain in
       ascending partition index in both paths. This engine operates
       on the SOP network, so the structure component is the
       network-side digest. *)
    if Sbm_obs.Fingerprint.enabled () then
      Sbm_obs.Fingerprint.record_merge ~engine:"kernel" ~partition:idx
        ~structure:(Network.fold_hash net)
  in
  let poll () = if config.watchdog_poll then Sbm_obs.Watchdog.poll () in
  let jobs =
    match config.jobs with Some j -> max 1 j | None -> Sbm_par.Jobs.get ()
  in
  if jobs <= 1 || List.length parts <= 1 then
    (* Sequential path: byte-for-byte the historical behaviour. *)
    List.iteri
      (fun idx part ->
        poll ();
        if Sbm_obs.Watchdog.abort_requested () then incr skipped
        else begin
          let t, i = optimize_partition net config part in
          note idx part t i
        end)
      parts
  else begin
    (* Parallel path: workers run the threshold trials on a private
       network copy. A partition whose best trial did not improve
       leaves the live network's covers untouched, so when no earlier
       partition of the chunk committed either, the worker's verdict
       transfers verbatim; improved or stale partitions are redone on
       the live network in index order. *)
    let analyze _i part =
      if Sbm_obs.Watchdog.abort_requested () then None
      else Some (optimize_partition (Network.copy net) config part)
    in
    let apply idx part result ~dirty =
      poll ();
      if Sbm_obs.Watchdog.abort_requested () then begin
        incr skipped;
        false
      end
      else
        match result with
        | Some (t, false) when not dirty ->
          note idx part t false;
          false
        | Some _ | None ->
          let t, i = optimize_partition net config part in
          note idx part t i;
          i
    in
    let go pool =
      Sbm_par.Sched.run_ordered pool (Array.of_list parts) ~analyze ~apply
    in
    if jobs = Sbm_par.Jobs.get () then go (Sbm_par.Pool.global ())
    else Sbm_par.Pool.with_pool ~jobs go
  end;
  let lits_after = Network.num_lits net in
  Sbm_obs.bump obs m_partitions (List.length parts);
  Sbm_obs.bump obs m_trials !trials;
  Sbm_obs.bump obs m_improved_partitions !improved;
  Sbm_obs.bump obs m_lits_saved (lits_before - lits_after);
  if !skipped > 0 then
    Sbm_obs.bump obs Engine_intf.m_partitions_skipped !skipped;
  if config.prefilter <> None then Prefilter.flush obs pf_counts;
  ( Network.to_aig ~provenance:(aig, fallback) net,
    {
      partitions = List.length parts;
      trials = !trials;
      improved_partitions = !improved;
      lits_before;
      lits_after;
    } )

module Engine = struct
  let name = "kernel"
  let default_origin = Aig.Origin.make ~pass:"hetero-kernel" Aig.Origin.Kernel

  let config_of (c : Engine_intf.config) =
    {
      default_config with
      partition_size =
        Option.value c.Engine_intf.partition_nodes
          ~default:default_config.partition_size;
      prefilter = c.Engine_intf.prefilter;
      jobs = c.Engine_intf.jobs;
      watchdog_poll = c.Engine_intf.watchdog_poll;
    }

  let stats_of ~gain (s : stats) =
    {
      Engine_intf.gain;
      details =
        [ ("partitions", s.partitions); ("trials", s.trials);
          ("improved_partitions", s.improved_partitions);
          ("lits_saved", s.lits_before - s.lits_after) ];
    }

  let run (c : Engine_intf.config) aig =
    let aig', s = run ~obs:c.Engine_intf.obs ~config:(config_of c) aig in
    (aig', stats_of ~gain:(Aig.size aig - Aig.size aig') s)

  (* The SOP round-trip always rebuilds; "optimize" keeps the smaller
     of input and result, matching how flow scripts use the engine. *)
  let optimize (c : Engine_intf.config) aig =
    let aig', s = run c aig in
    if Aig.size aig' <= Aig.size aig then (aig', s)
    else (aig, { s with Engine_intf.gain = 0 })
end

let run_homogeneous ~threshold ?(config = default_config) aig =
  let fallback = fallback_origin aig in
  let net = Network.of_aig aig in
  ignore (Network.eliminate net ~threshold ~max_cubes:config.max_cubes ());
  ignore (Network.extract_kernels net ~max_passes:config.extract_passes ());
  ignore (Network.extract_cubes net ~max_passes:config.extract_passes ());
  Network.to_aig ~provenance:(aig, fallback) net
