module Aig = Sbm_aig.Aig
module Obs = Sbm_obs
module M = Sbm_obs.Metrics

(* "gain" is the bare counter the in-place baseline steps and the
   collapse-decompose pass have always reported (no engine prefix —
   historical name, kept for snapshot compatibility). *)
let m_gain =
  M.counter ~engine:"flow" ~unit_:"nodes" "gain"
    "AIG nodes saved by in-place algebraic steps (rewrite/refactor/\
     resub/collapse-decompose)"

let m_pass_ms =
  M.histogram ~engine:"flow" ~unit_:"ms" "flow.pass_ms"
    "wall time of scripted flow passes"

let m_dead_node_pct =
  M.gauge ~engine:"aig" ~unit_:"pct" "aig.dead_node_pct"
    "dead (unreferenced) AIG node slots at the last pass boundary"

let m_arena_capacity =
  M.gauge ~engine:"aig" ~unit_:"words" "aig.arena_capacity"
    "allocated words in the packed adjacency arenas (fanout + output-use \
     lists) at the last pass boundary, before compaction"

let m_arena_live_pct =
  M.gauge ~engine:"aig" ~unit_:"pct" "aig.arena_live_pct"
    "share of adjacency-arena words holding live list entries at the last \
     pass boundary, before compaction (the rest is growth slack and \
     relocation leaks)"

(* Percentage of allocated node slots that are dead. [num_nodes] is
   all allocated slots, [topo] the live inputs + ANDs; both are
   deterministic at any --jobs, so ledger rows built from this are
   too. *)
let dead_node_pct aig =
  let total = Aig.num_nodes aig in
  if total = 0 then 0
  else
    let live = Array.length (Aig.topo aig) in
    max 0 (100 * (total - live) / total)

(* LUT-6 probe for the per-pass ledger, installed by the CLI (the
   mapper lives above this library in the dependency order). When
   unset, ledger rows carry -1 for luts/levels. *)
let ledger_qor_probe : (Aig.t -> int * int) option ref = ref None

type effort = Low | High

type script = Baseline | Sbm of effort | Gradient | Diff | Mspf

let all = [ Baseline; Sbm High; Sbm Low; Gradient; Diff; Mspf ]

let to_string = function
  | Baseline -> "baseline"
  | Sbm High -> "sbm"
  | Sbm Low -> "sbm-low"
  | Gradient -> "gradient"
  | Diff -> "diff"
  | Mspf -> "mspf"

let of_string = function
  | "baseline" -> Some Baseline
  | "sbm" -> Some (Sbm High)
  | "sbm-low" -> Some (Sbm Low)
  | "gradient" -> Some Gradient
  | "diff" -> Some Diff
  | "mspf" -> Some Mspf
  | _ -> None

let keep_better aig candidate =
  if Aig.size candidate <= Aig.size aig then candidate else aig

(* Provenance tag of a scripted pass, by name. Container passes
   (baseline, iteration-N) map to Other: the fine-grained steps inside
   them re-stamp with their own tag. *)
let origin_of_pass name =
  let module O = Aig.Origin in
  let prefix p = String.length name >= String.length p
                 && String.sub name 0 (String.length p) = p
  in
  let kind =
    if prefix "rewrite" then O.Rewrite
    else if prefix "refactor" || name = "collapse-decompose" then O.Refactor
    else if prefix "resub" then O.Resub
    else if name = "balance" then O.Balance
    else if name = "hetero-kernel" || prefix "eliminate" then O.Kernel
    else if prefix "mspf" then O.Mspf
    else if name = "boolean-difference" then O.Diff
    else if name = "sat-sweep" then O.Sweep
    else O.Other
  in
  O.make ~pass:name kind

(* Failure injection for crash-dump testing: die inside the Nth
   scripted pass, after its span has opened, so the post-mortem shows
   the pass on the open span stack. [inject_failure_after] is the test
   hook (counts down, one-shot); [SBM_FAIL_AFTER=N] is the env knob
   for driving a real process to a crash (counts process-wide). *)
let inject_failure_after : int option ref = ref None

let env_fail_after =
  lazy (Option.bind (Sys.getenv_opt "SBM_FAIL_AFTER") int_of_string_opt)

let env_passes = ref 0

let check_injected_failure name =
  (match !inject_failure_after with
  | Some n when n <= 1 ->
    inject_failure_after := None;
    failwith (Printf.sprintf "injected failure in pass '%s' (test hook)" name)
  | Some n -> inject_failure_after := Some (n - 1)
  | None -> ());
  match Lazy.force env_fail_after with
  | Some n ->
    incr env_passes;
    if !env_passes = n then
      failwith
        (Printf.sprintf "injected failure in pass '%s' (SBM_FAIL_AFTER=%d)"
           name n)
  | None -> ()

module FR = Obs.Flight_recorder

(* Wrap one scripted pass in a span recording wall time and the
   size/depth delta. Measurement (Aig.depth is O(n)) only happens when
   the span is live; with observability off this is a direct call.
   Every node the pass builds is stamped with the pass's origin. The
   watchdog tracks the pass for its deadline rule, and the flight
   recorder gets a boundary event on each side. A pass that raises
   stays on the watchdog/recorder stacks — exactly what the
   post-mortem dump should show. *)
let pass obs name f aig =
  Aig.set_origin aig (origin_of_pass name);
  Obs.Watchdog.pass_started name;
  let ledger = Obs.Ledger.enabled () in
  let fp = Obs.Fingerprint.enabled () in
  Obs.Fingerprint.pass_started name;
  if (not (Obs.enabled obs)) && not ledger && not fp then begin
    check_injected_failure name;
    let aig = f Obs.null aig in
    Aig.compact_arenas aig;
    Obs.Watchdog.pass_ended name;
    aig
  end
  else begin
    let size0 = Aig.size aig in
    let depth0 = Aig.depth aig in
    (* Live node-count gauge: only set where size is already computed
       (Aig.size is an O(live-nodes) traversal, not a field read). *)
    M.set M.live_aig_nodes size0;
    let t0 = Obs.monotonic_ns () in
    let sp = Obs.span ~size:size0 ~depth:depth0 obs name in
    if FR.enabled () then
      FR.record ~severity:FR.Info ~engine:"flow" ~id:name
        ~metrics:[ ("size", size0) ]
        "pass start";
    Obs.Ledger.pass_started name;
    check_injected_failure name;
    let aig = f sp aig in
    let size1 = Aig.size aig in
    let depth1 = Aig.depth aig in
    Obs.close ~size:size1 ~depth:depth1 sp;
    M.set M.live_aig_nodes size1;
    M.observe m_pass_ms
      (Int64.to_int (Int64.div (Int64.sub (Obs.monotonic_ns ()) t0) 1_000_000L));
    let dead = dead_node_pct aig in
    M.set m_dead_node_pct dead;
    (* Arena occupancy is sampled before the boundary compaction, so
       the gauge shows how much slack the pass itself produced. *)
    let acap = Aig.arena_capacity_words aig in
    M.set m_arena_capacity acap;
    M.set m_arena_live_pct
      (if acap = 0 then 100 else 100 * Aig.arena_live_words aig / acap);
    Aig.compact_arenas aig;
    M.set_max M.peak_heap_words (Gc.quick_stat ()).Gc.heap_words;
    (* Trail record first, so the chain value can ride on the ledger
       row; the ledger's own counter delta then includes the trail's
       record counter — consistently at any --jobs, hence still
       deterministic. *)
    let fingerprint =
      if fp then Obs.Fingerprint.pass_ended ~structure:(Aig.fold_hash aig)
      else 0L
    in
    if ledger then begin
      let luts, levels =
        match !ledger_qor_probe with
        | Some probe -> probe aig
        | None -> (-1, -1)
      in
      Obs.Ledger.pass_ended ~fingerprint ~size_before:size0 ~size_after:size1
        ~depth_before:depth0 ~depth_after:depth1 ~luts ~levels
        ~dead_node_pct:dead ()
    end;
    if FR.enabled () then
      FR.record ~severity:FR.Info ~engine:"flow" ~id:name
        ~metrics:[ ("size", size1); ("gain", size0 - size1) ]
        "pass end";
    Obs.Watchdog.pass_ended name;
    aig
  end

(* Like [pass], but skips the O(n) depth measurement — used for the
   fine-grained steps inside [baseline]. *)
let step obs name f aig =
  Aig.set_origin aig (origin_of_pass name);
  if not (Obs.enabled obs) then f Obs.null aig
  else begin
    let sp = Obs.span ~size:(Aig.size aig) obs name in
    let aig = f sp aig in
    Obs.close ~size:(Aig.size aig) sp;
    aig
  end

(* resyn2rs-like algebraic/AIG script. *)
let baseline ?(obs = Obs.null) aig0 =
  let aig = ref (fst (Aig.compact aig0)) in
  let keep name f = aig := step obs name (fun _ a -> keep_better a (f a)) !aig in
  let in_place name f =
    aig :=
      step obs name
        (fun sp a ->
          let gain = f a in
          Obs.bump sp m_gain gain;
          a)
        !aig
  in
  keep "balance" Sbm_aig.Balance.run;
  in_place "rewrite" (fun a -> Sbm_aig.Rewrite.run a);
  in_place "refactor" (fun a -> Sbm_aig.Refactor.run ~max_leaves:8 ~min_mffc:2 a);
  keep "balance" Sbm_aig.Balance.run;
  in_place "resub" (fun a -> Sbm_aig.Resub.run ~max_leaves:8 ~max_divisors:30 a);
  in_place "rewrite" (fun a -> Sbm_aig.Rewrite.run a);
  in_place "rewrite -z" (fun a -> Sbm_aig.Rewrite.run ~zero_gain:true a);
  keep "balance" Sbm_aig.Balance.run;
  in_place "resub -h" (fun a -> Sbm_aig.Resub.run ~max_leaves:10 ~max_divisors:40 a);
  in_place "refactor -z" (fun a ->
      Sbm_aig.Refactor.run ~zero_gain:true ~max_leaves:10 ~min_mffc:2 a);
  in_place "rewrite -z" (fun a -> Sbm_aig.Rewrite.run ~zero_gain:true a);
  keep "balance" Sbm_aig.Balance.run;
  fst (Aig.compact !aig)

(* The engine configuration of one flow run: a single pattern bank
   shared by every Boolean-engine pass (and both SBM iterations), so
   counterexamples folded back by the SAT passes refine every later
   pass's filtering. *)
let engine_config ~prefilter ~sim_words =
  if prefilter then begin
    let bank = Prefilter.create_bank ~sim_words () in
    (* The audit trail's bank/seeds components read the live bank, so
       counterexamples folded back mid-run show up at the next
       boundary. Harmless while the trail is disabled (the closure is
       stored, never invoked). *)
    Obs.Fingerprint.set_bank_source
      (Some
         (fun () -> (Prefilter.bank_digest bank, Prefilter.bank_seeds bank)));
    {
      Engine_intf.default with
      Engine_intf.prefilter = Some bank;
    }
  end
  else begin
    Obs.Fingerprint.set_bank_source None;
    Engine_intf.default
  end

let engine_effort = function Low -> Engine_intf.Low | High -> Engine_intf.High

let sbm_iteration ~obs ~explain ~effort ~ecfg aig0 =
  let aig = ref aig0 in
  let checkpoint name =
    Logs.debug (fun m -> m "flow: %s -> size %d" name (Aig.size !aig))
  in
  let run_pass name f =
    aig := pass obs name f !aig;
    checkpoint name
  in
  (* 1. AIG optimization: state-of-the-art script + gradient engine. *)
  run_pass "baseline" (fun sp a -> baseline ~obs:sp a);
  (* The paper's cost budget (100) counts partition-local moves; our
     moves sweep the whole network, so the flow uses a smaller global
     budget with the same semantics. *)
  let budget = match effort with Low -> 12 | High -> 30 in
  run_pass "gradient" (fun sp a ->
      let optimized, _stats =
        Gradient.optimize ~obs:sp ?explain
          ~config:{ Gradient.default_config with budget; engine = ecfg }
          a
      in
      keep_better a optimized);
  (* 2. Heterogeneous elimination for kernel extraction on
     medium-large partitions. *)
  run_pass "hetero-kernel" (fun sp a ->
      keep_better a
        (fst (Hetero_kernel.Engine.run { ecfg with Engine_intf.obs = sp } a)));
  (* 3. Enhanced MSPF computation on medium partitions with BDDs. *)
  run_pass "mspf" (fun sp a ->
      ignore (Mspf.Engine.optimize { ecfg with Engine_intf.obs = sp } a);
      fst (Aig.compact a));
  (* 4. Collapse and Boolean decomposition on reconvergent MFFCs. *)
  run_pass "collapse-decompose" (fun sp a ->
      let gain =
        Sbm_aig.Refactor.run
          ~max_leaves:(match effort with Low -> 10 | High -> 12)
          ~min_mffc:2 a
      in
      Obs.bump sp m_gain gain;
      a);
  (* 5. Boolean-difference-based optimization, to unveil hard-to-find
     rewrites and escape local minima. *)
  run_pass "boolean-difference" (fun sp a ->
      ignore
        (Diff_resub.Engine.optimize
           { ecfg with Engine_intf.obs = sp; effort = engine_effort effort }
           a);
      fst (Aig.compact a));
  (* 6. SAT sweeping and redundancy removal. Disproved candidate
     equivalences flow back into the pattern bank so the engines of
     the next iteration never chase the same false positive. *)
  run_pass "sat-sweep" (fun sp a ->
      let bank = ecfg.Engine_intf.prefilter in
      let refinements0 =
        match bank with Some b -> Prefilter.refinements b | None -> 0
      in
      let on_cex = Option.map (fun b bits -> Prefilter.refine b bits) bank in
      let swept, _ = Sbm_sat.Sweep.run ~obs:sp ?on_cex a in
      let a = keep_better a swept in
      ignore
        (Sbm_sat.Redundancy.run ~obs:sp
           ~max_candidates:(match effort with Low -> 50 | High -> 200)
           ?on_cex a);
      (match bank with
      | Some b when Obs.enabled sp ->
        Obs.bump sp Prefilter.m_cex_refinements
          (Prefilter.refinements b - refinements0)
      | _ -> ());
      fst (Aig.compact a));
  !aig

let iteration_pass obs explain name effort ecfg aig =
  pass obs name (fun sp a -> sbm_iteration ~obs:sp ~explain ~effort ~ecfg a) aig

let sbm_once ?(obs = Obs.null) ?explain ?(effort = High) ?(prefilter = true)
    ?(sim_words = Prefilter.default_words) aig0 =
  let aig, _ = Aig.compact aig0 in
  let ecfg = engine_config ~prefilter ~sim_words in
  iteration_pass obs explain "iteration-1" effort ecfg aig

let sbm ?(obs = Obs.null) ?explain ?(effort = High) ?(prefilter = true)
    ?(sim_words = Prefilter.default_words) aig0 =
  (* The optimization flow is iterated twice, with different
     efforts (Section V-A). One bank serves both iterations:
     counterexamples found by iteration-1's SAT passes sharpen
     iteration-2's filtering. *)
  let aig, _ = Aig.compact aig0 in
  let ecfg = engine_config ~prefilter ~sim_words in
  let aig = iteration_pass obs explain "iteration-1" Low ecfg aig in
  iteration_pass obs explain "iteration-2" effort ecfg aig

let run ?(obs = Obs.null) ?explain ?(prefilter = true)
    ?(sim_words = Prefilter.default_words) script aig =
  let ecfg () = engine_config ~prefilter ~sim_words in
  match script with
  | Baseline ->
    (* No engine config, hence no bank: make sure a source installed
       by a previous run in this process doesn't leak into the trail. *)
    Obs.Fingerprint.set_bank_source None;
    pass obs "baseline" (fun sp a -> baseline ~obs:sp a) aig
  | Sbm effort -> sbm ~obs ?explain ~effort ~prefilter ~sim_words aig
  | Gradient ->
    let ecfg = ecfg () in
    pass obs "gradient"
      (fun sp a ->
        fst
          (Gradient.run ~obs:sp ?explain
             ~config:{ Gradient.default_config with engine = ecfg }
             a))
      aig
  | Diff ->
    let ecfg = ecfg () in
    pass obs "boolean-difference"
      (fun sp a -> fst (Diff_resub.Engine.run { ecfg with Engine_intf.obs = sp } a))
      aig
  | Mspf ->
    let ecfg = ecfg () in
    pass obs "mspf"
      (fun sp a -> fst (Mspf.Engine.run { ecfg with Engine_intf.obs = sp } a))
      aig
