module Aig = Sbm_aig.Aig
module Obs = Sbm_obs

type effort = Low | High

type script = Baseline | Sbm of effort | Gradient | Diff | Mspf

let all = [ Baseline; Sbm High; Sbm Low; Gradient; Diff; Mspf ]

let to_string = function
  | Baseline -> "baseline"
  | Sbm High -> "sbm"
  | Sbm Low -> "sbm-low"
  | Gradient -> "gradient"
  | Diff -> "diff"
  | Mspf -> "mspf"

let of_string = function
  | "baseline" -> Some Baseline
  | "sbm" -> Some (Sbm High)
  | "sbm-low" -> Some (Sbm Low)
  | "gradient" -> Some Gradient
  | "diff" -> Some Diff
  | "mspf" -> Some Mspf
  | _ -> None

let keep_better aig candidate =
  if Aig.size candidate <= Aig.size aig then candidate else aig

(* Provenance tag of a scripted pass, by name. Container passes
   (baseline, iteration-N) map to Other: the fine-grained steps inside
   them re-stamp with their own tag. *)
let origin_of_pass name =
  let module O = Aig.Origin in
  let prefix p = String.length name >= String.length p
                 && String.sub name 0 (String.length p) = p
  in
  let kind =
    if prefix "rewrite" then O.Rewrite
    else if prefix "refactor" || name = "collapse-decompose" then O.Refactor
    else if prefix "resub" then O.Resub
    else if name = "balance" then O.Balance
    else if name = "hetero-kernel" || prefix "eliminate" then O.Kernel
    else if prefix "mspf" then O.Mspf
    else if name = "boolean-difference" then O.Diff
    else if name = "sat-sweep" then O.Sweep
    else O.Other
  in
  O.make ~pass:name kind

(* Failure injection for crash-dump testing: die inside the Nth
   scripted pass, after its span has opened, so the post-mortem shows
   the pass on the open span stack. [inject_failure_after] is the test
   hook (counts down, one-shot); [SBM_FAIL_AFTER=N] is the env knob
   for driving a real process to a crash (counts process-wide). *)
let inject_failure_after : int option ref = ref None

let env_fail_after =
  lazy (Option.bind (Sys.getenv_opt "SBM_FAIL_AFTER") int_of_string_opt)

let env_passes = ref 0

let check_injected_failure name =
  (match !inject_failure_after with
  | Some n when n <= 1 ->
    inject_failure_after := None;
    failwith (Printf.sprintf "injected failure in pass '%s' (test hook)" name)
  | Some n -> inject_failure_after := Some (n - 1)
  | None -> ());
  match Lazy.force env_fail_after with
  | Some n ->
    incr env_passes;
    if !env_passes = n then
      failwith
        (Printf.sprintf "injected failure in pass '%s' (SBM_FAIL_AFTER=%d)"
           name n)
  | None -> ()

module FR = Obs.Flight_recorder

(* Wrap one scripted pass in a span recording wall time and the
   size/depth delta. Measurement (Aig.depth is O(n)) only happens when
   the span is live; with observability off this is a direct call.
   Every node the pass builds is stamped with the pass's origin. The
   watchdog tracks the pass for its deadline rule, and the flight
   recorder gets a boundary event on each side. A pass that raises
   stays on the watchdog/recorder stacks — exactly what the
   post-mortem dump should show. *)
let pass obs name f aig =
  Aig.set_origin aig (origin_of_pass name);
  Obs.Watchdog.pass_started name;
  if not (Obs.enabled obs) then begin
    check_injected_failure name;
    let aig = f Obs.null aig in
    Obs.Watchdog.pass_ended name;
    aig
  end
  else begin
    let size0 = Aig.size aig in
    let sp = Obs.span ~size:size0 ~depth:(Aig.depth aig) obs name in
    if FR.enabled () then
      FR.record ~severity:FR.Info ~engine:"flow" ~id:name
        ~metrics:[ ("size", size0) ]
        "pass start";
    check_injected_failure name;
    let aig = f sp aig in
    let size1 = Aig.size aig in
    Obs.close ~size:size1 ~depth:(Aig.depth aig) sp;
    if FR.enabled () then
      FR.record ~severity:FR.Info ~engine:"flow" ~id:name
        ~metrics:[ ("size", size1); ("gain", size0 - size1) ]
        "pass end";
    Obs.Watchdog.pass_ended name;
    aig
  end

(* Like [pass], but skips the O(n) depth measurement — used for the
   fine-grained steps inside [baseline]. *)
let step obs name f aig =
  Aig.set_origin aig (origin_of_pass name);
  if not (Obs.enabled obs) then f Obs.null aig
  else begin
    let sp = Obs.span ~size:(Aig.size aig) obs name in
    let aig = f sp aig in
    Obs.close ~size:(Aig.size aig) sp;
    aig
  end

(* resyn2rs-like algebraic/AIG script. *)
let baseline ?(obs = Obs.null) aig0 =
  let aig = ref (fst (Aig.compact aig0)) in
  let keep name f = aig := step obs name (fun _ a -> keep_better a (f a)) !aig in
  let in_place name f =
    aig :=
      step obs name
        (fun sp a ->
          let gain = f a in
          Obs.add sp "gain" gain;
          a)
        !aig
  in
  keep "balance" Sbm_aig.Balance.run;
  in_place "rewrite" (fun a -> Sbm_aig.Rewrite.run a);
  in_place "refactor" (fun a -> Sbm_aig.Refactor.run ~max_leaves:8 ~min_mffc:2 a);
  keep "balance" Sbm_aig.Balance.run;
  in_place "resub" (fun a -> Sbm_aig.Resub.run ~max_leaves:8 ~max_divisors:30 a);
  in_place "rewrite" (fun a -> Sbm_aig.Rewrite.run a);
  in_place "rewrite -z" (fun a -> Sbm_aig.Rewrite.run ~zero_gain:true a);
  keep "balance" Sbm_aig.Balance.run;
  in_place "resub -h" (fun a -> Sbm_aig.Resub.run ~max_leaves:10 ~max_divisors:40 a);
  in_place "refactor -z" (fun a ->
      Sbm_aig.Refactor.run ~zero_gain:true ~max_leaves:10 ~min_mffc:2 a);
  in_place "rewrite -z" (fun a -> Sbm_aig.Rewrite.run ~zero_gain:true a);
  keep "balance" Sbm_aig.Balance.run;
  fst (Aig.compact !aig)

let sbm_iteration ~obs ~explain ~effort aig0 =
  let aig = ref aig0 in
  let checkpoint name =
    Logs.debug (fun m -> m "flow: %s -> size %d" name (Aig.size !aig))
  in
  let run_pass name f =
    aig := pass obs name f !aig;
    checkpoint name
  in
  (* 1. AIG optimization: state-of-the-art script + gradient engine. *)
  run_pass "baseline" (fun sp a -> baseline ~obs:sp a);
  (* The paper's cost budget (100) counts partition-local moves; our
     moves sweep the whole network, so the flow uses a smaller global
     budget with the same semantics. *)
  let budget = match effort with Low -> 12 | High -> 30 in
  run_pass "gradient" (fun sp a ->
      let optimized, _stats =
        Gradient.optimize ~obs:sp ?explain
          ~config:{ Gradient.default_config with budget }
          a
      in
      keep_better a optimized);
  (* 2. Heterogeneous elimination for kernel extraction on
     medium-large partitions. *)
  run_pass "hetero-kernel" (fun sp a -> keep_better a (fst (Hetero_kernel.run ~obs:sp a)));
  (* 3. Enhanced MSPF computation on medium partitions with BDDs. *)
  run_pass "mspf" (fun sp a ->
      ignore (Mspf.optimize ~obs:sp a);
      fst (Aig.compact a));
  (* 4. Collapse and Boolean decomposition on reconvergent MFFCs. *)
  run_pass "collapse-decompose" (fun sp a ->
      let gain =
        Sbm_aig.Refactor.run
          ~max_leaves:(match effort with Low -> 10 | High -> 12)
          ~min_mffc:2 a
      in
      Obs.add sp "gain" gain;
      a);
  (* 5. Boolean-difference-based optimization, to unveil hard-to-find
     rewrites and escape local minima. *)
  run_pass "boolean-difference" (fun sp a ->
      let dconfig =
        { Diff_resub.default_config with accept_zero = (effort = High) }
      in
      ignore (Diff_resub.optimize ~obs:sp ~config:dconfig a);
      fst (Aig.compact a));
  (* 6. SAT sweeping and redundancy removal. *)
  run_pass "sat-sweep" (fun sp a ->
      let swept, _ = Sbm_sat.Sweep.run ~obs:sp a in
      let a = keep_better a swept in
      ignore
        (Sbm_sat.Redundancy.run ~obs:sp
           ~max_candidates:(match effort with Low -> 50 | High -> 200)
           a);
      fst (Aig.compact a));
  !aig

let iteration_pass obs explain name effort aig =
  pass obs name (fun sp a -> sbm_iteration ~obs:sp ~explain ~effort a) aig

let sbm_once ?(obs = Obs.null) ?explain ?(effort = High) aig0 =
  let aig, _ = Aig.compact aig0 in
  iteration_pass obs explain "iteration-1" effort aig

let sbm ?(obs = Obs.null) ?explain ?(effort = High) aig0 =
  (* The optimization flow is iterated twice, with different
     efforts (Section V-A). *)
  let aig, _ = Aig.compact aig0 in
  let aig = iteration_pass obs explain "iteration-1" Low aig in
  iteration_pass obs explain "iteration-2" effort aig

let run ?(obs = Obs.null) ?explain script aig =
  match script with
  | Baseline -> pass obs "baseline" (fun sp a -> baseline ~obs:sp a) aig
  | Sbm effort -> sbm ~obs ?explain ~effort aig
  | Gradient ->
    pass obs "gradient" (fun sp a -> fst (Gradient.run ~obs:sp ?explain a)) aig
  | Diff -> pass obs "boolean-difference" (fun sp a -> fst (Diff_resub.run ~obs:sp a)) aig
  | Mspf -> pass obs "mspf" (fun sp a -> fst (Mspf.run ~obs:sp a)) aig
