(** Per-partition BDD context.

    Builds and caches the BDDs of all nodes of a partition over its
    leaf variables — the [all_bdds] hashtable of the paper's Alg. 1 —
    and converts result BDDs back into AIG structure through
    structural hashing. The BDD package's node budget reproduces the
    paper's memory-limit bail-out: nodes whose BDD computation
    overruns are simply absent from the table ("BDD of size 0"),
    and later steps skip them. *)

type t

(** [build ?node_limit aig part] computes BDDs for every partition
    member in topological order. Leaf [i] of the partition maps to BDD
    variable [i]. *)
val build : ?node_limit:int -> Sbm_aig.Aig.t -> Sbm_partition.Partition.t -> t

(** [man t] is the underlying manager (for difference computation). *)
val man : t -> Sbm_bdd.Bdd.man

(** [aig t] is the host AIG. *)
val aig : t -> Sbm_aig.Aig.t

(** [bdd_of_node t v] is the cached BDD of member or leaf node [v], if
    its computation stayed within budget. *)
val bdd_of_node : t -> int -> Sbm_bdd.Bdd.t option

(** [node_of_bdd t b] finds a partition node whose function is exactly
    [b] (strong canonicity makes this a hash lookup — the global query
    the paper credits BDDs for, Section IV-C). Returns the node and
    a complementation flag. *)
val node_of_bdd : t -> Sbm_bdd.Bdd.t -> (int * bool) option

(** [to_aig_lit t b] implements BDD [b] as AIG logic over the
    partition leaves (multiplexer per BDD node, strashed). *)
val to_aig_lit : t -> Sbm_bdd.Bdd.t -> Sbm_aig.Aig.lit

(** [members t] are the partition's AND nodes (telescoped from the
    partition, in topological order). *)
val members : t -> int array

(** [leaves t] are the partition's boundary nodes. *)
val leaves : t -> int array

(** [roots t] are the members with external references. *)
val roots : t -> int array

(** [refresh t] recomputes all member BDDs against the current AIG
    structure (used after a non-equivalence-preserving rewrite, e.g.
    an MSPF-based substitution). *)
val refresh : t -> unit

(** {1 Bail-out accounting}

    Every [Bdd.Limit] bail-out — the paper's Section III-C/IV-C
    budget discipline — is counted instead of silently swallowed;
    engines flush the total into their span as [bdd.limit_bails]. *)

(** [limit_bails t] is the number of bail-outs observed so far through
    this context (its own catch sites plus callers'). *)
val limit_bails : t -> int

(** [bump_limit_bail t] records a bail-out caught by a caller (e.g.
    the difference computation or an MSPF cofactor walk). When the
    flight recorder is on, each bail-out also lands there as a [Warn]
    event. *)
val bump_limit_bail : t -> unit

(** [flush_stats ?engine t obs] flushes the manager's unique-table and
    computed-cache traffic into [obs] — raw hit/miss counts, the
    derived integer hit ratios ([bdd.unique_hit_pct],
    [bdd.cache_hit_pct]; 100 under zero traffic) and
    [bdd.limit_bails] — and reports a cache hit-rate collapse
    (< 20 % over ≥ 10k lookups) to the flight recorder. Engines call
    it once per partition; the ratio counters therefore total to a sum
    over partitions in the trace. [engine] labels the recorder event
    (default ["bdd"]). *)
val flush_stats : ?engine:string -> t -> Sbm_obs.span -> unit
