(** Simulation-guided candidate prefilter (paper Section III-B's
    "functional filtering", generalized after "Simulation-Guided
    Boolean Resubstitution").

    The Boolean engines brute-force large candidate spaces and reject
    almost everything only {e after} an expensive BDD build. This
    module prunes those spaces first with cheap bit-parallel
    simulation signatures: a {!bank} holds the input pattern set
    (seeded random words plus counterexamples folded back from the
    SAT layer), a store {!t} lazily maintains per-node value words
    over one AIG, and {!compatible} renders a typed verdict for a
    candidate pair before any BDD work.

    Soundness contract: a [Reject_*] verdict certifies that the two
    literals {e differ on at least one concrete input pattern} (under
    the care mask, for {!compatible_masked}), hence any exact
    equivalence-style check the engine would have run must also
    reject. [Maybe] promises nothing — survivors still go through the
    full BDD/SAT validation. Filtering is therefore a pure pruning of
    the candidate order: QoR is unchanged wherever the engine's
    acceptance test is an equivalence check, and the jobs=N
    determinism contract is preserved because verdicts depend only on
    node {e functions}, never on evaluation order. *)

(** Verdict of a candidate query, coarsest reason first:
    [Reject_const] — the signatures differ and one side is constant
    across the (care-masked) pattern set; [Reject_signature] — the
    signatures differ; [Maybe] — indistinguishable on every pattern,
    worth the expensive check. *)
type verdict = Reject_const | Reject_signature | Maybe

(** {1 Pattern bank}

    The pattern set shared by a whole flow run: it survives AIG
    rebuilds/compactions (it is keyed by primary-input index, not
    node id) and accumulates counterexamples. *)

type bank

(** Default number of seeded 64-pattern simulation words per input. *)
val default_words : int

(** [create_bank ()] seeds a bank of [sim_words] 64-pattern words per
    input (default 4, i.e. 256 patterns — the CLI's [--sim-words]).
    [max_cex] bounds retained counterexamples (default 256; further
    refinements still count but are dropped). Deterministic in
    [seed]. *)
val create_bank : ?sim_words:int -> ?max_cex:int -> ?seed:int -> unit -> bank

(** [refine bank bits] folds a disproving input assignment (indexed
    by primary-input position) into the pattern set, so the false
    positive it witnessed never survives simulation again. *)
val refine : bank -> bool array -> unit

(** [refinements bank] is the number of {!refine} calls so far (the
    [prefilter.cex_refinements] counter). *)
val refinements : bank -> int

(** [bank_digest bank] is a 64-bit digest of the bank's refinement
    state — shape parameters plus every retained counterexample in
    arrival order. The bank component of audit-trail fingerprints
    (DESIGN.md §15): each CEGAR refinement changes the digest at the
    next recorded boundary. *)
val bank_digest : bank -> int64

(** [bank_seeds bank] is the RNG-seed component of audit-trail
    fingerprints: a digest of [seed] and [sim_words], pinning the
    random-pattern stream identity. *)
val bank_seeds : bank -> int64

(** Networks with at most this many primary inputs are simulated on
    {e every} input assignment instead of the bank's random patterns:
    the signature becomes the node's full truth table and every
    verdict (and every signature-index existence check built on top)
    is exact. 11 inputs = 2048 patterns = 32 words per node.
    Counterexample refinement is a no-op for such networks — every
    assignment is already present. *)
val exhaustive_max_inputs : int

(** [input_words bank num_inputs] renders the pattern set as packed
    simulation input words — one [int64 array] of per-input words per
    64-pattern round: the seeded base words first, then the
    counterexample words (missing bits and inputs beyond a
    counterexample's width read as 0 — a real all-zero assignment, so
    no masking is ever needed). Networks at or below
    {!exhaustive_max_inputs} inputs get the exhaustive pattern set
    instead. Used to hand the same patterns to the SAT sweeper. *)
val input_words : bank -> int -> int64 array array

(** {1 Signature store} *)

(** A signature store over one AIG: per-node value words under the
    bank's patterns, computed eagerly at attach and lazily after
    edits. Node ids are never reused by the AIG, so the store grows
    monotonically with fresh nodes. *)
type t

(** [attach bank aig] simulates [aig] under the bank's current
    patterns and returns a store. *)
val attach : bank -> Sbm_aig.Aig.t -> t

(** [fork t snapshot] is a private store over [snapshot] (an
    [Aig.copy] of [t]'s AIG, which preserves node ids), sharing the
    immutable patterns but copying the mutable value state — worker
    domains fork one store per partition snapshot, keeping the main
    store untouched. *)
val fork : t -> Sbm_aig.Aig.t -> t

(** [words t] is the number of 64-pattern value words per node. *)
val words : t -> int

(** [value t v w] is node [v]'s value word [w], recomputing invalid
    or fresh cones on demand. *)
val value : t -> int -> int -> int64

(** [lit_value t l w] is {!value} of [l]'s node, complemented as [l]
    demands. *)
val lit_value : t -> Sbm_aig.Aig.lit -> int -> int64

(** [note_edit t n] invalidates [n] and its transitive fanout cone.
    Must be called {e before} a function-changing edit at [n] (e.g.
    an MSPF don't-care substitution), while the old fanout lists are
    still in place. Equivalence-preserving rewrites never need it. *)
val note_edit : t -> int -> unit

(** [signature t l] is [l]'s full signature, canonicalized so a
    literal and its complement share a key (first pattern bit clear);
    the returned array is fresh. With {!canonical_of_words} (same
    canonicalization applied to raw words) it builds the
    divisor-signature indexes the engines use for existence checks. *)
val signature : t -> Sbm_aig.Aig.lit -> int64 array

val canonical_of_words : int64 array -> int64 array

(** {1 Verdicts} *)

(** [compatible t a b] compares two literals over the full pattern
    set. *)
val compatible : t -> Sbm_aig.Aig.lit -> Sbm_aig.Aig.lit -> verdict

(** [compatible_masked t ~care a b] compares only where the care
    words have bits set, and accepts either phase of [b]: [Maybe] iff
    [b] or [¬b] agrees with [a] on every care pattern (the
    simulation necessary-condition of MSPF's connectable check).
    [care] must have {!words}[ t] elements. *)
val compatible_masked :
  t -> care:int64 array -> Sbm_aig.Aig.lit -> Sbm_aig.Aig.lit -> verdict

(** {1 Counters}

    One mutable triple per engine run, merged across parallel workers
    by {!Par_merge.merge_prefilter} and flushed as the
    [prefilter.rejected_signature] / [prefilter.rejected_const] /
    [prefilter.survivors] counters. *)

type counts = {
  mutable rejected_sig : int;
  mutable rejected_const : int;
  mutable survivors : int;
}

val zero_counts : unit -> counts

(** [note counts verdict] tallies a verdict. *)
val note : counts -> verdict -> unit

(** [rejected counts] is the total of both rejection kinds. *)
val rejected : counts -> int

(** [flush obs counts] bumps the three registered counters — span tree
    and metrics registry both (call only on prefilter-enabled runs, so
    disabled runs carry no [prefilter.*] keys at all). *)
val flush : Sbm_obs.span -> counts -> unit

(** Registered handle for [prefilter.cex_refinements], bumped by the
    flow's sat-sweep pass as counterexamples refine the bank. *)
val m_cex_refinements : Sbm_obs.Metrics.t
