(** Packed CSR-style adjacency arena: many small int lists (one per
    node) stored in a single shared int buffer, replacing a boxed
    [Vec.t array].

    Each node owns a [(offset, length, capacity)] triple into the
    shared buffer. Lists are append-ordered and all mutators preserve
    exactly the order semantics of {!Sbm_util.Vec}: [push] appends,
    [remove] deletes the first occurrence and shifts the tail left,
    [fold]/[iter] walk indexes [0 .. length-1] ascending. A list that
    outgrows its capacity relocates to the append region at the buffer
    tail (doubling its capacity) and abandons its old slots; [compact]
    squeezes those leaks out at pass boundaries. Physical layout
    (offsets, capacities, leaked words) is never observable through
    the reading API. *)

type t

val create : ?nodes:int -> ?slot:int -> unit -> t
(** [create ~nodes ~slot ()] readies [nodes] empty lists. [slot] is
    the capacity a list first receives when its first element arrives
    (storage is allocated lazily: an empty list costs no buffer
    words). *)

val ensure_nodes : t -> int -> unit
(** Grow the per-node tables so node ids below the given bound are
    valid. Existing lists are untouched. *)

val length : t -> int -> int
val push : t -> int -> int -> unit
val remove : t -> int -> int -> unit
(** First occurrence, left shift — same as {!Sbm_util.Vec.remove}. *)

val clear : t -> int -> unit
(** Empty one list. Its capacity stays with the node for reuse. *)

val get : t -> int -> int -> int
(** [get t v i] is element [i] of node [v]'s list. *)

val iter : (int -> unit) -> t -> int -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> int -> 'a
val to_array : t -> int -> int array

val copy : t -> nodes:int -> node_cap:int -> t
(** [copy t ~nodes ~node_cap] is an independent arena holding the
    lists of nodes [0 .. nodes-1], compacted contiguously (leaked and
    surplus capacity are not reproduced), with per-node tables sized
    for [node_cap] ids. O(live words + nodes), no boxed allocation. *)

val compact : t -> unit
(** Repack every list contiguously, reclaiming leaked append-region
    slots. List contents and order are unchanged. *)

val capacity_words : t -> int
(** Words in the shared buffer (allocated footprint). *)

val live_words : t -> int
(** Words currently holding list elements (sum of lengths). *)
