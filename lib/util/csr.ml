(* One shared int buffer; per-node (offset, length, capacity) words.
   A list's slots are contiguous at [off.(v) .. off.(v)+cap.(v)-1];
   the first [len.(v)] of them are live. Overflow relocates the list
   to the buffer tail with doubled capacity and leaks the old slots
   until the next [compact]. *)

type t = {
  mutable buf : int array;
  mutable off : int array;
  mutable len : int array;
  mutable cap : int array;
  mutable tail : int; (* first free word in [buf] *)
  mutable live : int; (* sum of [len] *)
  slot : int; (* capacity granted on a list's first push *)
}

let create ?(nodes = 64) ?(slot = 2) () =
  let nodes = max nodes 1 in
  {
    buf = Array.make (max (nodes * slot) 64) 0;
    off = Array.make nodes 0;
    len = Array.make nodes 0;
    cap = Array.make nodes 0;
    tail = 0;
    live = 0;
    slot = max slot 1;
  }

let ensure_nodes t n =
  let old = Array.length t.off in
  if n > old then begin
    let ncap = max n (2 * old) in
    let ext a =
      let a' = Array.make ncap 0 in
      Array.blit a 0 a' 0 old;
      a'
    in
    t.off <- ext t.off;
    t.len <- ext t.len;
    t.cap <- ext t.cap
  end

let length t v = t.len.(v)
let get t v i = t.buf.(t.off.(v) + i)

(* Repack every list contiguously into a buffer of [size] words.
   Offsets move; contents and order do not. Capacities shrink to the
   live length, so the next push to a squeezed list relocates it —
   correct, and amortized by the doubling growth. *)
let repack t size =
  let nbuf = Array.make (max size 64) 0 in
  let w = ref 0 in
  for v = 0 to Array.length t.off - 1 do
    let l = t.len.(v) in
    if l > 0 then begin
      Array.blit t.buf t.off.(v) nbuf !w l;
      t.off.(v) <- !w;
      w := !w + l
    end
    else t.off.(v) <- 0;
    t.cap.(v) <- l
  done;
  t.buf <- nbuf;
  t.tail <- !w

let compact t = repack t (t.live + (t.live lsr 2) + 64)

(* Make room for [need] words at the tail: compact first when leaked
   slots alone would satisfy the request, otherwise grow. *)
let reserve t need =
  if t.tail + need > Array.length t.buf then begin
    if t.live + need <= Array.length t.buf lsr 1 then compact t
    else
      repack t
        (let target = ref (2 * Array.length t.buf) in
         while t.live + need > !target do
           target := 2 * !target
         done;
         !target)
  end

let push t v x =
  let l = t.len.(v) in
  if l = t.cap.(v) then begin
    (* Relocate to the append region with doubled capacity; the old
       slots leak until [compact]. *)
    let ncap = if l = 0 then t.slot else 2 * l in
    reserve t ncap;
    Array.blit t.buf t.off.(v) t.buf t.tail l;
    t.off.(v) <- t.tail;
    t.cap.(v) <- ncap;
    t.tail <- t.tail + ncap
  end;
  t.buf.(t.off.(v) + l) <- x;
  t.len.(v) <- l + 1;
  t.live <- t.live + 1

let remove t v x =
  let base = t.off.(v) and l = t.len.(v) in
  let rec find i = if i >= l then -1 else if t.buf.(base + i) = x then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    Array.blit t.buf (base + i + 1) t.buf (base + i) (l - i - 1);
    t.len.(v) <- l - 1;
    t.live <- t.live - 1
  end

let clear t v =
  t.live <- t.live - t.len.(v);
  t.len.(v) <- 0

let iter f t v =
  let base = t.off.(v) in
  for i = 0 to t.len.(v) - 1 do
    f t.buf.(base + i)
  done

let fold f acc t v =
  let base = t.off.(v) in
  let r = ref acc in
  for i = 0 to t.len.(v) - 1 do
    r := f !r t.buf.(base + i)
  done;
  !r

let to_array t v = Array.sub t.buf t.off.(v) t.len.(v)

let copy t ~nodes ~node_cap =
  let node_cap = max node_cap nodes in
  let off = Array.make node_cap 0 in
  let len = Array.make node_cap 0 in
  let cap = Array.make node_cap 0 in
  (* Live prefix only, compacted as it is written: flat blits, no
     boxed allocation, and the leaked words of the source are left
     behind. *)
  let buf = Array.make (max (t.live + (t.live lsr 2) + 64) 64) 0 in
  let w = ref 0 in
  for v = 0 to nodes - 1 do
    let l = t.len.(v) in
    if l > 0 then begin
      Array.blit t.buf t.off.(v) buf !w l;
      off.(v) <- !w;
      len.(v) <- l;
      cap.(v) <- l;
      w := !w + l
    end
  done;
  { buf; off; len; cap; tail = !w; live = !w; slot = t.slot }

let capacity_words t = Array.length t.buf
let live_words t = t.live
