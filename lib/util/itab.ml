(* Open-addressing int-keyed hash table with linear probing and
   tombstone deletion. Flat int arrays: a probe allocates nothing and
   never touches the polymorphic hashing/comparison runtime — this
   backs the AIG structural-hash table, whose probe sits inside every
   [band] call.

   Keys must be non-negative; values are arbitrary ints. *)

type t = {
  mutable keys : int array; (* empty_key = empty, tomb_key = deleted *)
  mutable vals : int array;
  mutable mask : int;
  mutable live : int; (* bindings present *)
  mutable used : int; (* live + tombstones *)
}

let empty_key = -1
let tomb_key = -2

let ceil_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let create ?(capacity = 16) () =
  let cap = ceil_pow2 (max 16 (capacity * 2)) in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap 0;
    mask = cap - 1;
    live = 0;
    used = 0;
  }

let length t = t.live

let hash key =
  let h = key * 0x9e3779b9 in
  h lxor (h lsr 16)

(* Slot of [key], or of the first empty slot if absent (never a
   tombstone: lookups must skip them). *)
let rec find_slot keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key || k = empty_key then i
  else find_slot keys mask key ((i + 1) land mask)

let find t key ~default =
  let i = find_slot t.keys t.mask key (hash key land t.mask) in
  if Array.unsafe_get t.keys i = key then Array.unsafe_get t.vals i else default

let mem t key =
  let i = find_slot t.keys t.mask key (hash key land t.mask) in
  Array.unsafe_get t.keys i = key

let rec insert_fresh keys vals mask key v i =
  let k = Array.unsafe_get keys i in
  if k = empty_key then begin
    Array.unsafe_set keys i key;
    Array.unsafe_set vals i v
  end
  else insert_fresh keys vals mask key v ((i + 1) land mask)

let resize t cap =
  let keys = Array.make cap empty_key in
  let vals = Array.make cap 0 in
  let mask = cap - 1 in
  Array.iteri
    (fun i k ->
      if k >= 0 then insert_fresh keys vals mask k t.vals.(i) (hash k land mask))
    t.keys;
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.used <- t.live

(* Insert or overwrite. *)
let replace t key v =
  if key < 0 then invalid_arg "Itab.replace: negative key";
  (* Reuse the key's slot when present; otherwise claim the first
     tombstone or empty slot on the probe path. *)
  let keys = t.keys and mask = t.mask in
  let rec go i tomb =
    let k = Array.unsafe_get keys i in
    if k = key then Array.unsafe_set t.vals i v
    else if k = empty_key then begin
      let slot = if tomb >= 0 then tomb else i in
      if Array.unsafe_get keys slot = empty_key then t.used <- t.used + 1;
      Array.unsafe_set keys slot key;
      Array.unsafe_set t.vals slot v;
      t.live <- t.live + 1
    end
    else if k = tomb_key && tomb < 0 then go ((i + 1) land mask) i
    else go ((i + 1) land mask) tomb
  in
  go (hash key land mask) (-1);
  if t.used * 4 > (t.mask + 1) * 3 then
    resize t (if t.live * 8 > (t.mask + 1) * 3 then (t.mask + 1) * 2 else t.mask + 1)

let remove t key =
  let i = find_slot t.keys t.mask key (hash key land t.mask) in
  if Array.unsafe_get t.keys i = key then begin
    Array.unsafe_set t.keys i tomb_key;
    t.live <- t.live - 1
  end

let iter f t =
  Array.iteri (fun i k -> if k >= 0 then f k t.vals.(i)) t.keys

let copy t =
  {
    keys = Array.copy t.keys;
    vals = Array.copy t.vals;
    mask = t.mask;
    live = t.live;
    used = t.used;
  }
