(** Open-addressing hash table from non-negative [int] keys to [int]
    values: flat arrays, linear probing, tombstone deletion,
    load-factor doubling. Probes allocate nothing and bypass the
    polymorphic hashing/equality runtime — built for structural-hash
    hot paths (the AIG strash table packs its fanin literal pair into
    one key). *)

type t

(** [create ?capacity ()] sizes the table for about [capacity]
    bindings before the first resize. *)
val create : ?capacity:int -> unit -> t

(** Number of live bindings. *)
val length : t -> int

(** [find t key ~default] is the value bound to [key], or [default].
    Callers pick a [default] outside the value range (values are node
    ids, so [-1] is customary). *)
val find : t -> int -> default:int -> int

val mem : t -> int -> bool

(** [replace t key v] binds [key] to [v], overwriting any previous
    binding. Raises [Invalid_argument] on a negative key. *)
val replace : t -> int -> int -> unit

(** [remove t key] drops the binding if present. *)
val remove : t -> int -> unit

(** [iter f t] applies [f key value] to every binding (unspecified
    order). *)
val iter : (int -> int -> unit) -> t -> unit

val copy : t -> t
