type cube = int array
type cover = cube list

let lit_of v compl = (v lsl 1) lor (if compl then 1 else 0)
let var_of l = l lsr 1
let lit_compl l = l lxor 1
let lit_is_compl l = l land 1 = 1

let cube_of_list lits =
  let c = Array.of_list (List.sort_uniq Int.compare lits) in
  Array.iteri
    (fun i l ->
      if i > 0 && var_of c.(i - 1) = var_of l then
        invalid_arg "Sop.cube_of_list: opposing or duplicate literals")
    c;
  c

(* Merge two sorted literal arrays; None on opposing literals. *)
let cube_mul a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let rec go i j n =
    if i = la && j = lb then Some (Array.sub out 0 n)
    else if i = la then (out.(n) <- b.(j); go i (j + 1) (n + 1))
    else if j = lb then (out.(n) <- a.(i); go (i + 1) j (n + 1))
    else if a.(i) = b.(j) then (out.(n) <- a.(i); go (i + 1) (j + 1) (n + 1))
    else if a.(i) = lit_compl b.(j) then None
    else if a.(i) < b.(j) then (out.(n) <- a.(i); go (i + 1) j (n + 1))
    else (out.(n) <- b.(j); go i (j + 1) (n + 1))
  in
  go 0 0 0

let cube_contains a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if j = lb then true
    else if i = la then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) < b.(j) then go (i + 1) j
    else false
  in
  go 0 0

(* Literal arrays are sorted, so division and intersection are linear
   merges (the quadratic membership filters dominated kernel
   extraction). *)
let cube_div a b =
  if not (cube_contains a b) then None
  else begin
    let la = Array.length a and lb = Array.length b in
    let out = Array.make (la - lb) 0 in
    let rec go i j n =
      if i = la then Some out
      else if j < lb && a.(i) = b.(j) then go (i + 1) (j + 1) n
      else (out.(n) <- a.(i); go (i + 1) j (n + 1))
    in
    go 0 0 0
  end

(* Sorted intersection of two literal arrays. *)
let cube_inter a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (min la lb) 0 in
  let rec go i j n =
    if i = la || j = lb then Array.sub out 0 n
    else if a.(i) = b.(j) then (out.(n) <- a.(i); go (i + 1) (j + 1) (n + 1))
    else if a.(i) < b.(j) then go (i + 1) j n
    else go i (j + 1) n
  in
  go 0 0 0

let common_cube = function
  | [] -> [||]
  | first :: rest -> List.fold_left cube_inter first rest

(* Cube comparison/equality are hand-rolled int-array loops: kernel
   extraction and cover normalization sort and dedupe cube lists
   constantly, and the polymorphic primitives dominated those passes. *)
let cube_equal (a : cube) (b : cube) =
  let n = Array.length a in
  let rec go i =
    i = n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
  in
  Array.length b = n && go 0

let cube_compare (a : cube) (b : cube) =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then Stdlib.compare na nb
  else begin
    let rec go i =
      if i = na then 0
      else
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        if x <> y then Stdlib.compare (x : int) y else go (i + 1)
    in
    go 0
  end

let normalize cover =
  let sorted = List.sort_uniq cube_compare cover in
  (* Absorption: cube [c] is redundant when some other cube's literals
     are a subset of [c]'s. *)
  List.filter
    (fun c -> not (List.exists (fun d -> d != c && cube_contains c d) sorted))
    sorted

let is_const0 cover = cover = []
let is_const1 cover = List.exists (fun c -> Array.length c = 0) cover
let num_lits cover = List.fold_left (fun acc c -> acc + Array.length c) 0 cover

let support cover =
  List.concat_map (fun c -> Array.to_list (Array.map var_of c)) cover
  |> List.sort_uniq Int.compare

let lit_count cover l =
  List.fold_left
    (fun acc c -> if Array.exists (fun x -> x = l) c then acc + 1 else acc)
    0 cover

let divide_by_cube cover c = List.filter_map (fun cb -> cube_div cb c) cover

let divide cover d =
  match d with
  | [] -> ([], cover)
  | first :: rest ->
    let q0 = divide_by_cube cover first in
    let q =
      List.fold_left
        (fun q dc ->
          let qd = divide_by_cube cover dc in
          List.filter (fun c -> List.exists (cube_equal c) qd) q)
        q0 rest
    in
    let q = List.sort_uniq cube_compare q in
    if q = [] then ([], cover)
    else begin
      (* remainder = cover - q*d *)
      let prod =
        List.concat_map
          (fun qc -> List.filter_map (fun dc -> cube_mul qc dc) d)
          q
      in
      let r = List.filter (fun c -> not (List.exists (cube_equal c) prod)) cover in
      (q, r)
    end

let mul a b = List.concat_map (fun ca -> List.filter_map (fun cb -> cube_mul ca cb) b) a |> normalize

let is_cube_free cover = Array.length (common_cube cover) = 0 && cover <> []

let kernels_bounded ~limit cover =
  let results = ref [] in
  let count = ref 0 in
  let add kernel cokernel =
    if !count < limit then begin
      incr count;
      results := (kernel, cokernel) :: !results
    end
  in
  let literals c = support c |> List.concat_map (fun v -> [ lit_of v false; lit_of v true ]) in
  let rec kernel1 cover min_lit cokernel =
    if !count >= limit then ()
    else
      List.iter
        (fun l ->
          if l >= min_lit && lit_count cover l >= 2 then begin
            let d = divide_by_cube cover [| l |] in
            let c = common_cube d in
            (* Skip if the common cube holds a literal below l: that
               kernel is found elsewhere. *)
            if not (Array.exists (fun x -> x < l) c) then begin
              let k = divide_by_cube d c in
              let cok =
                match cube_mul (Array.append [| l |] c |> Array.to_list |> cube_of_list) cokernel with
                | Some x -> x
                | None -> cokernel
              in
              add k cok;
              kernel1 k (l + 1) cok
            end
          end)
        (literals cover)
  in
  kernel1 cover 0 [||];
  if is_cube_free cover then add cover [||];
  !results

let kernels cover = kernels_bounded ~limit:max_int cover

let cofactor cover l =
  let nl = lit_compl l in
  List.filter_map
    (fun c ->
      if Array.exists (fun x -> x = nl) c then None
      else if not (Array.exists (fun x -> x = l) c) then Some c
      else begin
        let n = Array.length c in
        let out = Array.make (n - 1) 0 in
        let j = ref 0 in
        for i = 0 to n - 1 do
          let x = Array.unsafe_get c i in
          if x <> l then begin
            out.(!j) <- x;
            incr j
          end
        done;
        Some out
      end)
    cover

let most_frequent_var cover =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Array.iter
        (fun l ->
          let v = var_of l in
          Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
        c)
    cover;
  Hashtbl.fold
    (fun v n best ->
      match best with Some (_, bn) when bn >= n -> best | Some _ | None -> Some (v, n))
    counts None

let rec complement ~max_cubes cover =
  if is_const0 cover then Some [ [||] ]
  else if is_const1 cover then Some []
  else
    match cover with
    | [ c ] ->
      (* De Morgan on a single cube. *)
      Some (Array.to_list c |> List.map (fun l -> [| lit_compl l |]))
    | _ -> (
      match most_frequent_var cover with
      | None -> Some []
      | Some (v, _) ->
        let lp = lit_of v false and ln = lit_of v true in
        let f1 = cofactor cover lp in
        let f0 = cofactor cover ln in
        (match (complement ~max_cubes f1, complement ~max_cubes f0) with
        | Some n1, Some n0 ->
          let c1 = List.filter_map (fun c -> cube_mul [| lp |] c) n1 in
          let c0 = List.filter_map (fun c -> cube_mul [| ln |] c) n0 in
          let r = normalize (c1 @ c0) in
          if List.length r > max_cubes then None else Some r
        | _ -> None))

let eval cover assignment =
  List.exists
    (fun c ->
      Array.for_all
        (fun l -> if lit_is_compl l then not (assignment (var_of l)) else assignment (var_of l))
        c)
    cover

let canonical cover = List.sort_uniq cube_compare cover

(* Tautology check by Shannon recursion with the classic unate
   shortcuts: a cover with an empty cube is a tautology; a unate cover
   without an empty cube is not; otherwise split on the most frequent
   binate variable. *)
let rec tautology cover =
  if is_const1 cover then true
  else if cover = [] then false
  else begin
    (* Find a binate variable (appears in both phases). *)
    let pos = Hashtbl.create 16 and neg = Hashtbl.create 16 in
    List.iter
      (fun c ->
        Array.iter
          (fun l ->
            if lit_is_compl l then Hashtbl.replace neg (var_of l) ()
            else Hashtbl.replace pos (var_of l) ())
          c)
      cover;
    let binate = ref None in
    Hashtbl.iter
      (fun v () -> if !binate = None && Hashtbl.mem neg v then binate := Some v)
      pos;
    match !binate with
    | None ->
      (* Unate cover without the empty cube: every cube excludes at
         least the opposite phase of its own literals. *)
      false
    | Some v ->
      tautology (cofactor cover (lit_of v false))
      && tautology (cofactor cover (lit_of v true))
  end

let cube_covered cover c =
  (* cover / c == 1 ? Cofactor by every literal of the cube. *)
  let reduced = Array.fold_left (fun acc l -> cofactor acc l) cover c in
  tautology reduced

let expand cover =
  let rec expand_cube rest c =
    (* Try dropping each literal; keep the first enlargement that
       stays inside the full cover, then retry. *)
    let n = Array.length c in
    let rec try_drop i =
      if i >= n then c
      else begin
        let candidate = Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list c)) in
        if cube_covered (c :: rest) candidate then expand_cube rest candidate
        else try_drop (i + 1)
      end
    in
    if n = 0 then c else try_drop 0
  in
  let rec go acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let full_rest = List.rev_append acc rest in
      go (expand_cube full_rest c :: acc) rest
  in
  go [] cover

let irredundant cover =
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
      let others = List.rev_append kept rest in
      if others <> [] && cube_covered others c then go kept rest else go (c :: kept) rest
  in
  go [] cover

let minimize cover = irredundant (normalize (expand cover))
