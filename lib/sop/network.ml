module Aig = Sbm_aig.Aig

type node_id = int

type kind = Pi of int | Internal

type node = {
  kind : kind;
  mutable cover : Sop.cover;
  mutable alive : bool;
  (* Provenance carried from the source AIG ([of_aig]); [None] for
     nodes created inside the SOP domain (kernel/cube extraction). *)
  mutable origin : Aig.Origin.t option;
}

type t = {
  mutable nodes : node array;
  mutable n : int;
  inputs : int array; (* node ids, by PI index *)
  mutable outs : (node_id * bool) array; (* node id, complemented *)
  (* Caches over the reachable-cover structure, rebuilt lazily and
     dropped by [invalidate] on any cover mutation. [topo_cache] is
     the [internal_nodes] DFS order; [occ_cache.(v)] lists the
     internal nodes whose cover references [v], in topological order
     (exactly the fanout scan [eliminate_trial] used to recompute per
     candidate, which made elimination quadratic in network size). *)
  mutable topo_cache : node_id list option;
  mutable occ_cache : int list array option;
}

let invalidate t =
  t.topo_cache <- None;
  t.occ_cache <- None

let num_inputs t = Array.length t.inputs
let num_outputs t = Array.length t.outs

let node t id =
  if id < 0 || id >= t.n then invalid_arg "Network: bad node id";
  t.nodes.(id)

let cover t id = (node t id).cover

let alloc t kind cover =
  if t.n >= Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) { kind = Internal; cover = []; alive = false; origin = None } in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end;
  let id = t.n in
  t.n <- id + 1;
  t.nodes.(id) <- { kind; cover; alive = true; origin = None };
  id

let of_aig aig =
  let cap = Aig.num_nodes aig + 2 in
  let t =
    {
      nodes = Array.make cap { kind = Internal; cover = []; alive = false; origin = None };
      n = 0;
      inputs = Array.make (Aig.num_inputs aig) (-1);
      outs = [||];
      topo_cache = None;
      occ_cache = None;
    }
  in
  let map = Array.make (Aig.num_nodes aig) (-1) in
  (* Constant-zero node. *)
  let const_id = alloc t Internal [] in
  map.(0) <- const_id;
  for i = 0 to Aig.num_inputs aig - 1 do
    let id = alloc t (Pi i) [] in
    t.inputs.(i) <- id;
    map.(Aig.node_of (Aig.input_lit aig i)) <- id
  done;
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        let f0 = Aig.fanin0 aig v and f1 = Aig.fanin1 aig v in
        let lit f = Sop.lit_of map.(Aig.node_of f) (Aig.is_compl f) in
        let c = Sop.cube_of_list [ lit f0; lit f1 ] in
        let id = alloc t Internal [ c ] in
        t.nodes.(id).origin <- Some (Aig.node_origin aig v);
        map.(v) <- id
      end)
    order;
  t.outs <-
    Array.map
      (fun l -> (map.(Aig.node_of l), Aig.is_compl l))
      (Aig.outputs aig);
  t

let internal_nodes t =
  match t.topo_cache with
  | Some order -> order
  | None ->
    (* Topological order by DFS from the outputs. *)
    let visited = Array.make t.n false in
    let order = ref [] in
    let rec visit id =
      if not visited.(id) then begin
        visited.(id) <- true;
        match (node t id).kind with
        | Pi _ -> ()
        | Internal ->
          List.iter
            (fun c -> Array.iter (fun l -> visit (Sop.var_of l)) c)
            (node t id).cover;
          order := id :: !order
      end
    in
    Array.iter (fun (id, _) -> visit id) t.outs;
    let order = List.rev !order in
    t.topo_cache <- Some order;
    order

(* [occurrences t].(v) lists the reachable internal nodes whose cover
   references [v], topologically ordered. *)
let occurrences t =
  match t.occ_cache with
  | Some occ when Array.length occ = t.n -> occ
  | Some _ | None ->
    let occ = Array.make t.n [] in
    List.iter
      (fun m ->
        let seen = Hashtbl.create 8 in
        List.iter
          (fun c ->
            Array.iter
              (fun l ->
                let v = Sop.var_of l in
                if not (Hashtbl.mem seen v) then begin
                  Hashtbl.add seen v ();
                  occ.(v) <- m :: occ.(v)
                end)
              c)
          (cover t m))
      (internal_nodes t);
    Array.iteri (fun v l -> occ.(v) <- List.rev l) occ;
    t.occ_cache <- Some occ;
    occ

let num_internal t = List.length (internal_nodes t)

let num_lits t =
  List.fold_left (fun acc id -> acc + Sop.num_lits (cover t id)) 0 (internal_nodes t)

let fanout_count t id =
  let live = internal_nodes t in
  List.fold_left
    (fun acc m ->
      let refs =
        List.exists (fun c -> Array.exists (fun l -> Sop.var_of l = id) c) (cover t m)
      in
      if refs && m <> id then acc + 1 else acc)
    0 live

let is_output t id = Array.exists (fun (o, _) -> o = id) t.outs

(* Substitute node [n]'s cover into cover [cv]; None on cube-count
   explosion or un-complementable negative occurrences. *)
let substitute ~max_cubes cv n cover_n =
  let pos = Sop.lit_of n false and neg = Sop.lit_of n true in
  let has_pos = List.exists (fun c -> Array.exists (fun l -> l = pos) c) cv in
  let has_neg = List.exists (fun c -> Array.exists (fun l -> l = neg) c) cv in
  if (not has_pos) && not has_neg then Some cv
  else begin
    let q_pos = Sop.divide_by_cube cv [| pos |] in
    let q_neg = Sop.divide_by_cube cv [| neg |] in
    let rest =
      List.filter
        (fun c -> not (Array.exists (fun l -> l = pos || l = neg) c))
        cv
    in
    let neg_part =
      if not has_neg then Some []
      else
        match Sop.complement ~max_cubes cover_n with
        | None -> None
        | Some compl_n -> Some (Sop.mul q_neg compl_n)
    in
    match neg_part with
    | None -> None
    | Some neg_cubes ->
      let pos_cubes = if has_pos then Sop.mul q_pos cover_n else [] in
      let merged = Sop.normalize (rest @ pos_cubes @ neg_cubes) in
      if List.length merged > max_cubes then None else Some merged
  end

let eliminate_trial t n ~max_cubes =
  let nd = node t n in
  match nd.kind with
  | Pi _ -> None
  | Internal ->
    if is_output t n || not nd.alive then None
    else begin
      let fanouts = List.filter (fun m -> m <> n) (occurrences t).(n) in
      if fanouts = [] then Some ([], - (Sop.num_lits nd.cover))
      else begin
        let rec go acc delta = function
          | [] -> Some (acc, delta - Sop.num_lits nd.cover)
          | m :: rest -> (
            match substitute ~max_cubes (cover t m) n nd.cover with
            | None -> None
            | Some cv ->
              go ((m, cv) :: acc) (delta + Sop.num_lits cv - Sop.num_lits (cover t m)) rest)
        in
        go [] 0 fanouts
      end
    end

let eliminate_value t n ~max_cubes =
  Option.map snd (eliminate_trial t n ~max_cubes)

let eliminate_node t n ~max_cubes =
  match eliminate_trial t n ~max_cubes with
  | None -> None
  | Some (updates, delta) ->
    List.iter (fun (m, cv) -> (node t m).cover <- cv) updates;
    (node t n).alive <- false;
    invalidate t;
    Some delta

let eliminate t ~threshold ~max_cubes ?(only = fun _ -> true) () =
  let eliminated = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let candidates = internal_nodes t in
    List.iter
      (fun n ->
        if only n && not (is_output t n) then begin
          match eliminate_value t n ~max_cubes with
          | Some v when v < threshold -> (
            match eliminate_node t n ~max_cubes with
            | Some _ ->
              incr eliminated;
              changed := true
            | None -> ())
          | Some _ | None -> ()
        end)
      candidates
  done;
  !eliminated

(* Value of extracting kernel [k] given its occurrence list
   [(node, cokernel)]. *)
let kernel_value k occs =
  let lits_k = Sop.num_lits k in
  let cubes_k = List.length k in
  let per_occ =
    List.fold_left
      (fun acc (_, cok) ->
        let lits_c = Array.length cok in
        acc + ((cubes_k - 1) * lits_c) + lits_k - 1)
      0 occs
  in
  per_occ - lits_k

let extract_kernels t ?(only = fun _ -> true) ~max_passes () =
  let created = ref 0 in
  let continue_ = ref true in
  let pass = ref 0 in
  while !continue_ && !pass < max_passes do
    incr pass;
    continue_ := false;
    let table : (Sop.cube list, (node_id * Sop.cube) list) Hashtbl.t = Hashtbl.create 64 in
    let nodes = List.filter only (internal_nodes t) in
    List.iter
      (fun n ->
        let cv = cover t n in
        if List.length cv >= 2 then
          List.iter
            (fun (k, cok) ->
              if List.length k >= 2 then begin
                let key = Sop.canonical k in
                let prev = Option.value ~default:[] (Hashtbl.find_opt table key) in
                Hashtbl.replace table key ((n, cok) :: prev)
              end)
            (Sop.kernels_bounded ~limit:30 cv))
      nodes;
    (* Pick the best-value kernel. *)
    let best = ref None in
    Hashtbl.iter
      (fun k occs ->
        let v = kernel_value k occs in
        match !best with
        | Some (bv, _, _) when bv >= v -> ()
        | Some _ | None -> if v > 0 then best := Some (v, k, occs))
      table;
    match !best with
    | None -> ()
    | Some (_, k, occs) ->
      let y = alloc t Internal k in
      let y_lit = Sop.lit_of y false in
      let touched = List.sort_uniq Stdlib.compare (List.map fst occs) in
      let applied = ref false in
      List.iter
        (fun n ->
          let cv = cover t n in
          let q, r = Sop.divide cv k in
          if q <> [] then begin
            let newq = List.filter_map (fun c -> Sop.cube_mul c [| y_lit |]) q in
            let candidate = Sop.normalize (newq @ r) in
            if Sop.num_lits candidate + 1 < Sop.num_lits cv then begin
              (node t n).cover <- candidate;
              invalidate t;
              applied := true
            end
          end)
        touched;
      if !applied then begin
        incr created;
        continue_ := true
      end
      else (node t y).alive <- false
  done;
  !created

let extract_cubes t ?(only = fun _ -> true) ~max_passes () =
  let created = ref 0 in
  let continue_ = ref true in
  let pass = ref 0 in
  while !continue_ && !pass < max_passes do
    incr pass;
    continue_ := false;
    let counts : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
    let nodes = List.filter only (internal_nodes t) in
    List.iter
      (fun n ->
        List.iter
          (fun c ->
            let len = Array.length c in
            for i = 0 to len - 1 do
              for j = i + 1 to len - 1 do
                let key = (c.(i), c.(j)) in
                Hashtbl.replace counts key
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
              done
            done)
          (cover t n))
      nodes;
    let best = ref None in
    Hashtbl.iter
      (fun key cnt ->
        match !best with
        | Some (bc, _) when bc >= cnt -> ()
        | Some _ | None -> if cnt > 2 then best := Some (cnt, key))
      counts;
    match !best with
    | None -> ()
    | Some (_, (l1, l2)) ->
      let y = alloc t Internal [ Sop.cube_of_list [ l1; l2 ] ] in
      let y_lit = Sop.lit_of y false in
      List.iter
        (fun n ->
          let cv = cover t n in
          let replaced =
            List.map
              (fun c ->
                if Array.exists (fun l -> l = l1) c && Array.exists (fun l -> l = l2) c
                then
                  Array.to_list c
                  |> List.filter (fun l -> l <> l1 && l <> l2)
                  |> List.cons y_lit
                  |> Sop.cube_of_list
                else c)
              cv
          in
          (node t n).cover <- Sop.normalize replaced)
        nodes;
      invalidate t;
      incr created;
      continue_ := true
  done;
  !created

(* [provenance = (src, fallback)] carries origin tags through the SOP
   round-trip: the factored logic of each internal node is stamped
   with the node's recorded origin (from [of_aig]); nodes created in
   the SOP domain (extracted kernels/cubes) are stamped — and their
   construction counted — under [fallback]. *)
let to_aig ?provenance t =
  let aig = Aig.create ~expected:(t.n * 4) () in
  (match provenance with
  | None -> ()
  | Some (src, _) -> Aig.begin_rebuild aig ~from:src);
  let map = Array.make t.n Aig.const0 in
  Array.iteri (fun _ id -> map.(id) <- Aig.add_input aig) t.inputs;
  let lit_of_sop_lit l =
    let base = map.(Sop.var_of l) in
    if Sop.lit_is_compl l then Aig.lnot base else base
  in
  (* Quick literal factoring. *)
  let rec factor cv =
    if Sop.is_const0 cv then Aig.const0
    else if Sop.is_const1 cv then Aig.const1
    else
      match cv with
      | [ c ] -> Aig.band_list aig (List.map lit_of_sop_lit (Array.to_list c))
      | _ ->
        (* Find the most shared literal. *)
        let counts = Hashtbl.create 16 in
        List.iter
          (fun c ->
            Array.iter
              (fun l ->
                Hashtbl.replace counts l
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
              c)
          cv;
        let best = ref None in
        Hashtbl.iter
          (fun l cnt ->
            if cnt >= 2 then
              match !best with
              | Some (bc, _) when bc >= cnt -> ()
              | Some _ | None -> best := Some (cnt, l))
          counts;
        (match !best with
        | None ->
          (* No sharing: plain two-level. *)
          Aig.bor_list aig
            (List.map
               (fun c -> Aig.band_list aig (List.map lit_of_sop_lit (Array.to_list c)))
               cv)
        | Some (_, l) ->
          let q = Sop.divide_by_cube cv [| l |] in
          let r = List.filter (fun c -> not (Array.exists (fun x -> x = l) c)) cv in
          let q_lit = factor q in
          let r_lit = factor r in
          Aig.bor aig (Aig.band aig (lit_of_sop_lit l) q_lit) r_lit)
  in
  let prepared id =
    let cv = cover t id in
    (* Exact two-level cleanup before factoring, where affordable. *)
    if List.length cv <= 12 && List.length (Sop.support cv) <= 16 then
      Sop.minimize cv
    else cv
  in
  List.iter
    (fun id ->
      match provenance with
      | None -> map.(id) <- factor (prepared id)
      | Some (_, fallback) -> (
        match (node t id).origin with
        | Some o ->
          Aig.set_origin aig o;
          map.(id) <- factor (prepared id)
        | None ->
          (* Genuinely new logic: count the ANDs it factors into. *)
          Aig.set_origin aig fallback;
          let cp = Aig.mark_created aig in
          map.(id) <- factor (prepared id);
          Aig.note_created aig fallback (Aig.fresh_since aig cp)))
    (internal_nodes t);
  Array.iter
    (fun (id, compl) ->
      let l = map.(id) in
      ignore (Aig.add_output aig (if compl then Aig.lnot l else l)))
    t.outs;
  (match provenance with
  | None -> ()
  | Some (src, _) ->
    Aig.end_rebuild aig;
    Aig.set_origin aig (Aig.current_origin src));
  aig

(* Deep copy for parallel analysis: node records are fresh (covers are
   replaced wholesale, never mutated in place, so sharing the cube
   lists themselves is safe), caches start cold. *)
let copy t =
  {
    nodes =
      Array.init (Array.length t.nodes) (fun i ->
          let nd = t.nodes.(i) in
          { kind = nd.kind; cover = nd.cover; alive = nd.alive; origin = nd.origin });
    n = t.n;
    inputs = Array.copy t.inputs;
    outs = Array.copy t.outs;
    topo_cache = None;
    occ_cache = None;
  }

let mark t = t.n

let set_cover t n cv =
  (node t n).cover <- cv;
  invalidate t

let revive t n = (node t n).alive <- true

let truncate t m =
  invalidate t;
  for id = m to t.n - 1 do
    t.nodes.(id).alive <- false
  done

let check t =
  (* Acyclicity + live references via DFS with an on-stack mark. *)
  let state = Array.make t.n 0 in
  let rec visit id =
    if state.(id) = 1 then failwith "Network.check: cycle detected"
    else if state.(id) = 0 then begin
      state.(id) <- 1;
      (match (node t id).kind with
      | Pi _ -> ()
      | Internal ->
        List.iter
          (fun c ->
            Array.iter
              (fun l ->
                let v = Sop.var_of l in
                if v < 0 || v >= t.n then failwith "Network.check: bad reference";
                if not (node t v).alive then failwith "Network.check: dead reference";
                visit v)
              c)
          (node t id).cover);
      state.(id) <- 2
    end
  in
  Array.iter (fun (id, _) -> visit id) t.outs

let eval t bits =
  if Array.length bits <> num_inputs t then invalid_arg "Network.eval";
  let memo = Array.make t.n None in
  let rec value id =
    match memo.(id) with
    | Some b -> b
    | None ->
      let b =
        match (node t id).kind with
        | Pi i -> bits.(i)
        | Internal -> Sop.eval (node t id).cover (fun v -> value v)
      in
      memo.(id) <- Some b;
      b
  in
  Array.map (fun (id, compl) -> if compl then not (value id) else value id) t.outs

(* --- canonical structural digest ---

   Network-side twin of [Aig.fold_hash]: a bottom-up 64-bit fold over
   the reachable cover structure, used as the structure component of
   the heterogeneous-kernel merge-boundary fingerprints (DESIGN.md
   §15). Node ids never enter the hash — every node hashes from the
   hashes of the nodes its cover references — and literals within a
   cube and cubes within a cover combine commutatively, so the digest
   only depends on the logic function structure, not on allocation
   order or list ordering. *)

let fh_finalize z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let fh_mix2 a b = fh_finalize (Int64.add (Int64.mul a 0x9E3779B97F4A7C15L) b)
let fh_pi_tag = fh_finalize 0x9747b28cL
let fh_node_tag = fh_finalize 0x3c6ef372L
let fh_compl_mask = fh_finalize 0xa54ff53aL

let fold_hash t =
  let h = Array.make t.n 0L in
  Array.iteri (fun i id -> h.(id) <- fh_mix2 fh_pi_tag (Int64.of_int i)) t.inputs;
  let hlit l =
    let base = h.(Sop.var_of l) in
    if Sop.lit_is_compl l then Int64.logxor base fh_compl_mask else base
  in
  let hcube c =
    fh_finalize (Array.fold_left (fun acc l -> Int64.add acc (fh_finalize (hlit l))) 0L c)
  in
  let hcover cov =
    fh_finalize (List.fold_left (fun acc c -> Int64.add acc (hcube c)) 0L cov)
  in
  List.iter
    (fun id -> h.(id) <- fh_mix2 fh_node_tag (hcover (node t id).cover))
    (internal_nodes t);
  let acc =
    fh_mix2 (Int64.of_int (num_inputs t)) (Int64.of_int (num_outputs t))
  in
  Array.fold_left
    (fun acc (id, compl) ->
      let base = h.(id) in
      let v = if compl then Int64.logxor base fh_compl_mask else base in
      fh_mix2 acc v)
    acc t.outs
