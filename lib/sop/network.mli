(** Multi-level SOP logic networks.

    The network view used by the elimination / kernel-extraction
    engine: every internal node carries a sum-of-products cover whose
    literals reference other nodes (by id, with phase). Conversions to
    and from {!Sbm_aig.Aig} bracket each use in the flow — the AIG
    stays "the consistent interface and costing between the various
    steps" (paper, Section V-A). *)

type t

type node_id = int

(** [of_aig aig] builds a network with one two-literal AND cover per
    AIG node. Each internal node records the provenance tag of the AIG
    node it came from. *)
val of_aig : Sbm_aig.Aig.t -> t

(** [to_aig ?provenance t] factors every cover (quick literal
    factoring) and rebuilds an AIG with the same I/O signature.
    [provenance = (src, fallback)] threads origin tags through the
    round-trip: the factored logic of each node carried over from
    [src] keeps its recorded tag, while nodes created inside the SOP
    domain (extracted kernels / cubes) are stamped and counted under
    [fallback]. Without [provenance] every node is tagged
    {!Sbm_aig.Aig.Origin.seed}. *)
val to_aig :
  ?provenance:Sbm_aig.Aig.t * Sbm_aig.Aig.Origin.t -> t -> Sbm_aig.Aig.t

(** [num_lits t] is the total literal count over internal nodes — the
    cost function of elimination and extraction. *)
val num_lits : t -> int

(** [num_internal t] is the number of internal (non-PI) nodes. *)
val num_internal : t -> int

val num_inputs : t -> int
val num_outputs : t -> int

(** [internal_nodes t] lists the live internal node ids in topological
    order. *)
val internal_nodes : t -> node_id list

(** [cover t n] is the cover of internal node [n]. *)
val cover : t -> node_id -> Sop.cover

(** [fanout_count t n] is the number of internal nodes whose cover
    references [n] (output references excluded). *)
val fanout_count : t -> node_id -> int

(** [is_output t n] is true when some primary output refers to [n]. *)
val is_output : t -> node_id -> bool

(** [eliminate_node t n ~max_cubes] collapses node [n] into all its
    fanouts if every substitution stays below [max_cubes] cubes;
    returns [Some delta_literals] (the achieved literal variation,
    negative = improvement) or [None] when the collapse was not
    possible (output node, PI, or explosion). *)
val eliminate_node : t -> node_id -> max_cubes:int -> int option

(** [eliminate_value t n ~max_cubes] computes the literal variation
    that {!eliminate_node} would achieve, without committing. *)
val eliminate_value : t -> node_id -> max_cubes:int -> int option

(** [eliminate t ~threshold ~max_cubes ?only] repeatedly collapses
    nodes whose literal variation is below [threshold] until a fixed
    point (paper, Section IV-B). [only] restricts candidates to a node
    subset (the per-partition heterogeneous mode). Returns the number
    of nodes eliminated. *)
val eliminate : t -> threshold:int -> max_cubes:int -> ?only:(node_id -> bool) -> unit -> int

(** [extract_kernels t ?only ~max_passes ()] greedily extracts the
    best-value kernel as a new node until no kernel saves literals, at
    most [max_passes] times. Returns the number of new nodes. *)
val extract_kernels : t -> ?only:(node_id -> bool) -> max_passes:int -> unit -> int

(** [extract_cubes t ?only ~max_passes ()] greedily extracts the best
    common sub-cube (two literals) shared across cubes. Returns the
    number of new nodes. *)
val extract_cubes : t -> ?only:(node_id -> bool) -> max_passes:int -> unit -> int

(** {1 Snapshot support}

    The heterogeneous-elimination engine tries several thresholds on
    the same partition and keeps the best (paper, Section IV-B); these
    hooks let it roll back a trial. *)

(** [copy t] is a deep, independent copy (shared covers are safe:
    covers are replaced wholesale, never mutated in place). Used by
    the parallel scheduler to analyze partitions on private
    snapshots. *)
val copy : t -> t

(** [mark t] is a checkpoint covering node allocation. *)
val mark : t -> int

(** [set_cover t n cover] overwrites node [n]'s cover. *)
val set_cover : t -> node_id -> Sop.cover -> unit

(** [revive t n] marks an eliminated node alive again (rollback). *)
val revive : t -> node_id -> unit

(** [truncate t mark] kills every node allocated at or after [mark];
    callers must first restore any cover referencing them. *)
val truncate : t -> int -> unit

(** [check t] validates structural invariants (acyclicity, live
    references); raises [Failure] on violation. *)
val check : t -> unit

(** [eval t bits] evaluates all outputs on one input assignment
    (testing hook). *)
val eval : t -> bool array -> bool array

(** [fold_hash t] is a canonical 64-bit structural digest of the
    reachable cover structure — the network-side twin of
    [Aig.fold_hash]. Node ids never enter the hash; literals within a
    cube and cubes within a cover combine commutatively. Used as the
    structure component of heterogeneous-kernel merge-boundary
    fingerprints (DESIGN.md §15). *)
val fold_hash : t -> int64
