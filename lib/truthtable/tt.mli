(** Bit-packed truth tables over up to {!max_vars} variables.

    Truth tables are the cheapest reasoning engine used by the SBM
    framework (paper, Section II-A): inside small windows they provide
    constant-time Boolean operations and equivalence checks, and back
    the refactoring and resubstitution engines.

    A table on [n] variables stores [2^n] function values, bit [i]
    being the value on the input assignment whose binary encoding is
    [i] (variable 0 is the least-significant position). *)

type t

(** Hard limit on the number of variables (word-packing bound). *)
val max_vars : int

(** [num_vars t] is the number of variables of [t]. *)
val num_vars : t -> int

(** [const0 n], [const1 n]: constant functions on [n] variables. *)
val const0 : int -> t
val const1 : int -> t

(** [var n i] is the projection of variable [i] on [n] variables. *)
val var : int -> int -> t

(** Boolean connectives. Both arguments must have equal [num_vars]. *)
val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bxnor : t -> t -> t
val bnand : t -> t -> t
val bnor : t -> t -> t

(** [ite c a b] is if-then-else: [c&a | ~c&b]. *)
val ite : t -> t -> t -> t

(** [mux sel a b] is [a] when [sel] is false, [b] when true. *)
val mux : t -> t -> t -> t

(** Structural predicates and comparisons. All are allocation-free
    word loops (never the polymorphic runtime primitives): the
    refactoring engines probe them inside memoized recursions. *)
val equal : t -> t -> bool
val is_const0 : t -> bool
val is_const1 : t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Imperative hash tables keyed by truth tables, using {!hash} and
    {!equal} (the polymorphic [Hashtbl] machinery walks and hashes the
    underlying boxed words on every probe — measurably hot under the
    synthesis memo tables). *)
module Tbl : Hashtbl.S with type key = t

(** Fused gate probes for resubstitution, allocation-free.
    [and_match ~na a ~nb b c] compares [(±a) & (±b)] (operands
    complemented per [na]/[nb]) against [c]: [0] on equal, [1] on
    equal-to-complement, [-1] otherwise. [xor_equal ~na a ~nb b c] is
    true iff [(±a) xor (±b) = c]. *)
val and_match : na:bool -> t -> nb:bool -> t -> t -> int
val xor_equal : na:bool -> t -> nb:bool -> t -> t -> bool

(** [equal_not a b] is [equal a (bnot b)] without the allocation. *)
val equal_not : t -> t -> bool

(** [agreement a b] is [count_ones (bxnor a b)] without the
    allocations: the number of minterms on which the functions
    agree. *)
val agreement : t -> t -> int

(** [of_word n w] builds a table on [n <= 6] variables directly from
    its 64-bit value (low [2^n] bits; the rest is ignored). *)
val of_word : int -> int64 -> t

(** [cofactor0 t i] / [cofactor1 t i] fix variable [i] to 0 / 1; the
    result still ranges over [n] variables (it no longer depends on
    [i]). *)
val cofactor0 : t -> int -> t
val cofactor1 : t -> int -> t

(** [depends_on t i] is true if the function value changes with
    variable [i]. *)
val depends_on : t -> int -> bool

(** [support t] lists the variables the function depends on,
    ascending. *)
val support : t -> int list

(** [support_size t] is [List.length (support t)]. *)
val support_size : t -> int

(** [count_ones t] is the number of satisfying assignments. *)
val count_ones : t -> int

(** [eval t assignment] evaluates [t]; bit [i] of [assignment] is the
    value of variable [i]. *)
val eval : t -> int -> bool

(** [set_bit t i] / [get_bit t i] access individual minterms; [set_bit]
    is functional (returns a new table). *)
val get_bit : t -> int -> bool
val set_bit : t -> int -> t

(** [of_bits n bits] builds a table on [n] vars from a function giving
    the value of each minterm index. *)
val of_bits : int -> (int -> bool) -> t

(** [random n rng] is a uniformly random table on [n] variables. *)
val random : int -> Sbm_util.Rng.t -> t

(** [expand t n] re-expresses [t] on [n >= num_vars t] variables (the
    new variables are don't-cares). *)
val expand : t -> int -> t

(** [permute t perm] renames variables: new variable [perm.(i)] plays
    the role of old variable [i]. [perm] must be a permutation of
    [0 .. num_vars-1]. *)
val permute : t -> int array -> t

(** [flip t i] negates the polarity of variable [i]. *)
val flip : t -> int -> t

(** [compose t i g] substitutes function [g] (same variable count) for
    variable [i] in [t]. *)
val compose : t -> int -> t -> t

(** Cubes of an SOP cover over truth-table variables: [pos] and [neg]
    are bit masks of positively / negatively appearing variables. *)
type cube = { pos : int; neg : int }

(** [cube_tt n c] is the truth table of cube [c] on [n] variables. *)
val cube_tt : int -> cube -> t

(** [cover_tt n cubes] is the OR of the cubes' tables. *)
val cover_tt : int -> cube list -> t

(** [cube_num_lits c] is the number of literals in [c]. *)
val cube_num_lits : cube -> int

(** [isop on dc] computes an irredundant sum-of-products cover [c]
    with [on <= c <= on | dc] (Minato-Morreale). The don't-care table
    [dc] must be disjoint from [on] or a superset; precisely the
    requirement is [band on dc] arbitrary, the cover satisfies
    [on <= cover <= bor on dc]. Returns the cube list. *)
val isop : t -> t -> cube list

(** [to_string t] is the hexadecimal rendering, most-significant word
    first (e.g. ["8"] for AND2 on 2 vars). *)
val to_string : t -> string
