type t = { nvars : int; words : int64 array }

let max_vars = 16

(* Number of 64-bit words needed for [n] variables. *)
let nwords n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Bits of the last word that are meaningful when n < 6. *)
let word_mask n =
  if n >= 6 then -1L
  else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let num_vars t = t.nvars

let check_vars n =
  if n < 0 || n > max_vars then invalid_arg "Tt: variable count out of range"

let const0 n =
  check_vars n;
  { nvars = n; words = Array.make (nwords n) 0L }

let const1 n =
  check_vars n;
  { nvars = n; words = Array.make (nwords n) (word_mask n) }

(* Repeating patterns for variables living inside one word. *)
let var_pattern = [|
  0xAAAAAAAAAAAAAAAAL;
  0xCCCCCCCCCCCCCCCCL;
  0xF0F0F0F0F0F0F0F0L;
  0xFF00FF00FF00FF00L;
  0xFFFF0000FFFF0000L;
  0xFFFFFFFF00000000L;
|]

let var n i =
  check_vars n;
  if i < 0 || i >= n then invalid_arg "Tt.var";
  let w = nwords n in
  let words =
    if i < 6 then Array.make w (Int64.logand var_pattern.(i) (word_mask n))
    else
      Array.init w (fun j -> if (j lsr (i - 6)) land 1 = 1 then -1L else 0L)
  in
  { nvars = n; words }

let lift1 f a =
  let mask = word_mask a.nvars in
  { a with words = Array.map (fun w -> Int64.logand (f w) mask) a.words }

let lift2 name f a b =
  if a.nvars <> b.nvars then invalid_arg ("Tt." ^ name ^ ": arity mismatch");
  let mask = word_mask a.nvars in
  let words =
    Array.init (Array.length a.words) (fun i ->
        Int64.logand (f a.words.(i) b.words.(i)) mask)
  in
  { a with words }

let bnot a = lift1 Int64.lognot a
let band a b = lift2 "band" Int64.logand a b
let bor a b = lift2 "bor" Int64.logor a b
let bxor a b = lift2 "bxor" Int64.logxor a b
let bxnor a b = bnot (bxor a b)
let bnand a b = bnot (band a b)
let bnor a b = bnot (bor a b)
let ite c a b = bor (band c a) (band (bnot c) b)
let mux sel a b = ite sel b a

(* Equality, constant tests and comparison are on the hot path of the
   refactoring engines (memo probes, degenerate-cofactor checks, ISOP
   recursion); hand-rolled word loops keep them allocation-free and
   off the polymorphic compare_val machinery. *)
let words_equal u v =
  let n = Array.length u in
  let rec go i =
    i = n || (Int64.equal (Array.unsafe_get u i) (Array.unsafe_get v i) && go (i + 1))
  in
  Array.length v = n && go 0

let equal a b = a.nvars = b.nvars && words_equal a.words b.words

(* [equal_not a b]: a = ~b, without materializing the complement (the
   decomposition search probes this per split variable). *)
let equal_not a b =
  a.nvars = b.nvars
  &&
  let mask = word_mask a.nvars in
  let u = a.words and v = b.words in
  let n = Array.length u in
  let rec go i =
    i = n
    || (Int64.equal (Array.unsafe_get u i)
          (Int64.logand (Int64.lognot (Array.unsafe_get v i)) mask)
       && go (i + 1))
  in
  go 0

let is_const0 a =
  let w = a.words in
  let n = Array.length w in
  let rec go i = i = n || (Int64.equal (Array.unsafe_get w i) 0L && go (i + 1)) in
  go 0

let is_const1 a =
  let mask = word_mask a.nvars in
  let w = a.words in
  let n = Array.length w in
  let rec go i = i = n || (Int64.equal (Array.unsafe_get w i) mask && go (i + 1)) in
  go 0

let compare a b =
  let c = Stdlib.compare a.nvars b.nvars in
  if c <> 0 then c
  else begin
    let u = a.words and v = b.words in
    let n = Array.length u in
    let rec go i =
      if i = n then 0
      else
        (* Signed per-word compare: matches the order the previous
           polymorphic Stdlib.compare imposed (NPN canonization
           tie-breaks on it). *)
        let c = Int64.compare (Array.unsafe_get u i) (Array.unsafe_get v i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let hash a =
  Array.fold_left
    (fun acc w ->
      (acc * 1000003) lxor Int64.to_int w lxor Int64.to_int (Int64.shift_right_logical w 32))
    a.nvars a.words
  land max_int

(* Positive cofactor: every minterm reads the value it would have with
   variable [i] forced to 1; likewise for the negative cofactor. *)
let cofactor1 t i =
  if i < 0 || i >= t.nvars then invalid_arg "Tt.cofactor1";
  if i < 6 then begin
    let shift = 1 lsl i in
    let p = var_pattern.(i) in
    let f w =
      let hi = Int64.logand w p in
      Int64.logor hi (Int64.shift_right_logical hi shift)
    in
    lift1 f t
  end
  else begin
    let block = 1 lsl (i - 6) in
    let words =
      Array.init (Array.length t.words) (fun j ->
          if (j lsr (i - 6)) land 1 = 1 then t.words.(j)
          else t.words.(j + block))
    in
    { t with words }
  end

let cofactor0 t i =
  if i < 0 || i >= t.nvars then invalid_arg "Tt.cofactor0";
  if i < 6 then begin
    let shift = 1 lsl i in
    let p = var_pattern.(i) in
    let f w =
      let lo = Int64.logand w (Int64.lognot p) in
      Int64.logor lo (Int64.shift_left lo shift)
    in
    lift1 f t
  end
  else begin
    let block = 1 lsl (i - 6) in
    let words =
      Array.init (Array.length t.words) (fun j ->
          if (j lsr (i - 6)) land 1 = 1 then t.words.(j - block)
          else t.words.(j))
    in
    { t with words }
  end

(* Allocation-free dependence test: compare the two cofactors without
   materializing them (ISOP and [support] probe this per variable). *)
let depends_on t i =
  if i < 0 || i >= t.nvars then invalid_arg "Tt.depends_on";
  if i < 6 then begin
    let shift = 1 lsl i in
    let p = var_pattern.(i) in
    let np = Int64.lognot p in
    let w = t.words in
    let n = Array.length w in
    let rec go j =
      j < n
      && (let x = Array.unsafe_get w j in
          (not
             (Int64.equal
                (Int64.shift_right_logical (Int64.logand x p) shift)
                (Int64.logand x np)))
          || go (j + 1))
    in
    go 0
  end
  else begin
    let block = 1 lsl (i - 6) in
    let w = t.words in
    let n = Array.length w in
    let rec go j =
      j < n
      && ((j lsr (i - 6)) land 1 = 0
          && not (Int64.equal (Array.unsafe_get w j) (Array.unsafe_get w (j + block)))
         || go (j + 1))
    in
    go 0
  end

(* Fused resubstitution probes: compare a 2-input gate of optionally
   complemented divisors against a target without materializing the
   intermediate table. The 1-resub scan evaluates these for every
   divisor pair and phase — allocating [band]/[bxor] results there
   dominated the pass. *)
let and_match ~na a ~nb b c =
  if a.nvars <> b.nvars || a.nvars <> c.nvars then
    invalid_arg "Tt.and_match: arity mismatch";
  let mask = word_mask a.nvars in
  let wa = a.words and wb = b.words and wc = c.words in
  let n = Array.length wa in
  let rec go i eq eqn =
    if i = n then if eq then 0 else if eqn then 1 else -1
    else begin
      let x = Array.unsafe_get wa i in
      let x = if na then Int64.logand (Int64.lognot x) mask else x in
      let y = Array.unsafe_get wb i in
      let y = if nb then Int64.logand (Int64.lognot y) mask else y in
      let r = Int64.logand x y in
      let z = Array.unsafe_get wc i in
      let eq = eq && Int64.equal r z in
      let eqn = eqn && Int64.equal r (Int64.logand (Int64.lognot z) mask) in
      if eq || eqn then go (i + 1) eq eqn else -1
    end
  in
  go 0 true true

let xor_equal ~na a ~nb b c =
  if a.nvars <> b.nvars || a.nvars <> c.nvars then
    invalid_arg "Tt.xor_equal: arity mismatch";
  let mask = word_mask a.nvars in
  let wa = a.words and wb = b.words and wc = c.words in
  let n = Array.length wa in
  let rec go i =
    i = n
    || (let x = Array.unsafe_get wa i in
        let x = if na then Int64.logand (Int64.lognot x) mask else x in
        let y = Array.unsafe_get wb i in
        let y = if nb then Int64.logand (Int64.lognot y) mask else y in
        Int64.equal (Int64.logxor x y) (Array.unsafe_get wc i) && go (i + 1))
  in
  go 0

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let support t =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if depends_on t i then i :: acc else acc)
  in
  go (t.nvars - 1) []

let support_size t = List.length (support t)

let popcount64 w =
  let rec go w acc = if w = 0L then acc else go (Int64.logand w (Int64.sub w 1L)) (acc + 1) in
  go w 0

let count_ones t = Array.fold_left (fun acc w -> acc + popcount64 w) 0 t.words

(* Number of minterms where [a] and [b] agree: popcount of their XNOR,
   fused so the scoring loop of the decomposition search allocates
   nothing. *)
let agreement a b =
  if a.nvars <> b.nvars then invalid_arg "Tt.agreement: arity mismatch";
  let mask = word_mask a.nvars in
  let u = a.words and v = b.words in
  let n = Array.length u in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc :=
      !acc
      + popcount64
          (Int64.logand
             (Int64.lognot (Int64.logxor (Array.unsafe_get u i) (Array.unsafe_get v i)))
             mask)
  done;
  !acc

let get_bit t i =
  if i < 0 || i >= 1 lsl t.nvars then invalid_arg "Tt.get_bit";
  Int64.logand (Int64.shift_right_logical t.words.(i lsr 6) (i land 63)) 1L = 1L

let set_bit t i =
  if i < 0 || i >= 1 lsl t.nvars then invalid_arg "Tt.set_bit";
  let words = Array.copy t.words in
  words.(i lsr 6) <- Int64.logor words.(i lsr 6) (Int64.shift_left 1L (i land 63));
  { t with words }

let eval t assignment = get_bit t (assignment land ((1 lsl t.nvars) - 1))

(* Single-word constructor for cut functions (≤ 6 variables): avoids
   the bit-by-bit [of_bits] loop, which copies the table per set bit. *)
let of_word n w =
  check_vars n;
  if n > 6 then invalid_arg "Tt.of_word: more than 6 variables";
  { nvars = n; words = [| Int64.logand w (word_mask n) |] }

let of_bits n f =
  check_vars n;
  let t = ref (const0 n) in
  for i = 0 to (1 lsl n) - 1 do
    if f i then t := set_bit !t i
  done;
  !t

let random n rng =
  check_vars n;
  let mask = word_mask n in
  let words =
    Array.init (nwords n) (fun _ -> Int64.logand (Sbm_util.Rng.next64 rng) mask)
  in
  { nvars = n; words }

let expand t n =
  check_vars n;
  if n < t.nvars then invalid_arg "Tt.expand: shrinking";
  if n = t.nvars then t
  else begin
    let w = nwords n in
    let src = Array.length t.words in
    let mask = word_mask t.nvars in
    (* Low 2^nvars bits of the source repeat across the larger table. *)
    if t.nvars >= 6 then
      { nvars = n; words = Array.init w (fun j -> t.words.(j mod src)) }
    else begin
      (* Replicate the 2^nvars-bit block to fill a full word. *)
      let block_bits = 1 lsl t.nvars in
      let base = Int64.logand t.words.(0) mask in
      let word = ref 0L in
      let reps = 64 / block_bits in
      for k = 0 to reps - 1 do
        word := Int64.logor !word (Int64.shift_left base (k * block_bits))
      done;
      { nvars = n; words = Array.make w !word }
    end
  end

let permute t perm =
  if Array.length perm <> t.nvars then invalid_arg "Tt.permute";
  of_bits t.nvars (fun m ->
      (* Minterm m of the result assigns new variable j the bit m_j; the
         old variable i reads new variable perm.(i). *)
      let assignment = ref 0 in
      for i = 0 to t.nvars - 1 do
        if (m lsr perm.(i)) land 1 = 1 then assignment := !assignment lor (1 lsl i)
      done;
      get_bit t !assignment)

let flip t i =
  let v = var t.nvars i in
  ite v (cofactor0 t i) (cofactor1 t i)

let compose t i g =
  if g.nvars <> t.nvars then invalid_arg "Tt.compose";
  ite g (cofactor1 t i) (cofactor0 t i)

type cube = { pos : int; neg : int }

let cube_tt n c =
  let acc = ref (const1 n) in
  for i = 0 to n - 1 do
    if (c.pos lsr i) land 1 = 1 then acc := band !acc (var n i)
    else if (c.neg lsr i) land 1 = 1 then acc := band !acc (bnot (var n i))
  done;
  !acc

let cover_tt n cubes =
  List.fold_left (fun acc c -> bor acc (cube_tt n c)) (const0 n) cubes

let popcount_int x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cube_num_lits c = popcount_int c.pos + popcount_int c.neg

(* Minato-Morreale ISOP: returns (cubes, cover-table) with
   lower <= cover <= upper. *)
let isop on dc =
  if on.nvars <> dc.nvars then invalid_arg "Tt.isop";
  let n = on.nvars in
  let rec go lower upper vars =
    if is_const0 lower then ([], const0 n)
    else if is_const1 upper then ([ { pos = 0; neg = 0 } ], const1 n)
    else
      match vars with
      | [] ->
        (* lower is nonzero and upper is not a tautology, yet no
           variable remains: only possible when lower depends on no
           listed variable; cover with the full cube of upper's care. *)
        ([ { pos = 0; neg = 0 } ], const1 n)
      | x :: rest ->
        if not (depends_on lower x) && not (depends_on upper x) then go lower upper rest
        else begin
          let l0 = cofactor0 lower x and l1 = cofactor1 lower x in
          let u0 = cofactor0 upper x and u1 = cofactor1 upper x in
          let cubes0, cov0 = go (band l0 (bnot u1)) u0 rest in
          let cubes1, cov1 = go (band l1 (bnot u0)) u1 rest in
          let lnew = bor (band l0 (bnot cov0)) (band l1 (bnot cov1)) in
          let cubes_rest, cov_rest = go lnew (band u0 u1) rest in
          let xbit = 1 lsl x in
          let cubes =
            List.map (fun c -> { c with neg = c.neg lor xbit }) cubes0
            @ List.map (fun c -> { c with pos = c.pos lor xbit }) cubes1
            @ cubes_rest
          in
          let vtt = var n x in
          let cover =
            bor (bor (band (bnot vtt) cov0) (band vtt cov1)) cov_rest
          in
          (cubes, cover)
        end
  in
  let vars = List.init n (fun i -> i) in
  let cubes, cover = go on (bor on dc) vars in
  assert (is_const0 (band on (bnot cover)));
  assert (is_const0 (band cover (bnot (bor on dc))));
  cubes

let to_string t =
  let buf = Buffer.create (Array.length t.words * 16) in
  let started = ref false in
  for i = Array.length t.words - 1 downto 0 do
    if !started then Buffer.add_string buf (Printf.sprintf "%016Lx" t.words.(i))
    else if t.words.(i) <> 0L || i = 0 then begin
      Buffer.add_string buf (Printf.sprintf "%Lx" t.words.(i));
      started := true
    end
  done;
  Buffer.contents buf
