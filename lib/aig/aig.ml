module Vec = Sbm_util.Vec
module Itab = Sbm_util.Itab
module Csr = Sbm_util.Csr

type lit = int

(* Literals are bounded well below 2^31 in practice; pack a sorted
   fanin pair into one non-negative int key for the strash table. *)
let strash_key a b = (a lsl 31) lor b

let lit_of node compl = (node lsl 1) lor (if compl then 1 else 0)
let node_of l = l lsr 1
let is_compl l = l land 1 = 1
let lnot l = l lxor 1
let lpos l = l land -2
let const0 = 0
let const1 = 1

(* Provenance tag: which scripted pass (and which kind of move inside
   it) created a node. Tags are interned per AIG; the per-node side
   table stores small integer ids, so stamping is one array write. *)
module Origin = struct
  type kind =
    | Seed
    | Rewrite
    | Refactor
    | Resub
    | Balance
    | Diff
    | Mspf
    | Kernel
    | Sweep
    | Other

  type t = { pass : string; kind : kind }

  let seed = { pass = "seed"; kind = Seed }

  let make ~pass kind = { pass; kind }

  let kind_to_string = function
    | Seed -> "seed"
    | Rewrite -> "rewrite"
    | Refactor -> "refactor"
    | Resub -> "resub"
    | Balance -> "balance"
    | Diff -> "diff-resub"
    | Mspf -> "mspf"
    | Kernel -> "kernel"
    | Sweep -> "sweep"
    | Other -> "other"

  let kind_of_string = function
    | "seed" -> Some Seed
    | "rewrite" -> Some Rewrite
    | "refactor" -> Some Refactor
    | "resub" -> Some Resub
    | "balance" -> Some Balance
    | "diff-resub" -> Some Diff
    | "mspf" -> Some Mspf
    | "kernel" -> Some Kernel
    | "sweep" -> Some Sweep
    | "other" -> Some Other
    | _ -> None

  let pp fmt o = Format.fprintf fmt "%s(%s)" o.pass (kind_to_string o.kind)
end

(* fanin0.(n) = -1 marks a PI or the constant node (node 0). *)
type t = {
  mutable fanin0 : int array;
  mutable fanin1 : int array;
  mutable nrefs : int array;
  mutable dead : bool array;
  mutable trav : int array;
  (* Adjacency side tables live in packed CSR arenas (one shared int
     buffer each) instead of a Vec.t per node: snapshots blit flat
     arrays instead of re-boxing 2 vectors per node. *)
  fanouts : Csr.t;
  out_uses : Csr.t;
  mutable n : int;
  mutable trav_id : int;
  mutable num_live_ands : int;
  inputs : Vec.t; (* node ids *)
  outs : Vec.t; (* literals *)
  (* Structural hash: packed fanin pair (a lsl 31) lor b, a < b, to
     node id. Open addressing (Sbm_util.Itab) keeps the [band] probe
     allocation-free. *)
  strash : Sbm_util.Itab.t;
  (* Provenance side tables. [origins.(v)] is the interned id (into
     [origin_defs]) of the origin current when node [v] was allocated;
     id 0 is always [Origin.seed]. [origin_created.(i)] counts the AND
     nodes ever built under origin [i] — including speculative
     candidates later discarded, so live/created is a survival rate.
     [origin_counting = false] during whole-network rebuilds
     (compact/balance/SOP round-trips), which adopt tags instead of
     creating logic. *)
  mutable origins : int array;
  mutable origin_defs : Origin.t array;
  mutable origin_created : int array;
  mutable origin_ids : (Origin.t, int) Hashtbl.t;
  mutable n_origins : int;
  mutable cur_origin : int;
  mutable origin_counting : bool;
  (* Copy-on-write marker for the intern tables ([origin_defs] and
     [origin_ids]): [copy] and [begin_rebuild] share them between both
     networks instead of duplicating, and the first [intern_origin]
     that would mutate a shared table replaces it with a private copy
     first. A table marked shared is frozen — every holder unshares
     before writing — so concurrent readers (per-chunk snapshots in
     the partition scheduler) never observe a mutation. *)
  mutable origins_shared : bool;
}

let create ?(expected = 64) () =
  let cap = max expected 8 in
  let aig =
    {
      fanin0 = Array.make cap (-1);
      fanin1 = Array.make cap (-1);
      nrefs = Array.make cap 0;
      dead = Array.make cap false;
      trav = Array.make cap 0;
      fanouts = Csr.create ~nodes:cap ~slot:2 ();
      out_uses = Csr.create ~nodes:cap ~slot:1 ();
      n = 1;
      trav_id = 0;
      num_live_ands = 0;
      inputs = Vec.create ();
      outs = Vec.create ();
      strash = Itab.create ~capacity:1024 ();
      origins = Array.make cap 0;
      origin_defs = Array.make 8 Origin.seed;
      origin_created = Array.make 8 0;
      origin_ids = Hashtbl.create 16;
      n_origins = 1;
      cur_origin = 0;
      origin_counting = true;
      origins_shared = false;
    }
  in
  Hashtbl.add aig.origin_ids Origin.seed 0;
  aig

let num_inputs aig = Vec.size aig.inputs
let num_outputs aig = Vec.size aig.outs
let num_nodes aig = aig.n
let is_const _ node = node = 0
let is_dead aig node = aig.dead.(node)
let is_input aig node = node > 0 && aig.fanin0.(node) = -1 && not aig.dead.(node)
let is_and aig node = aig.fanin0.(node) >= 0 && not aig.dead.(node)
let fanin0 aig node = aig.fanin0.(node)
let fanin1 aig node = aig.fanin1.(node)
let nref aig node = aig.nrefs.(node)
let input_lit aig i = lit_of (Vec.get aig.inputs i) false
let output_lit aig i = Vec.get aig.outs i
let outputs aig = Vec.to_array aig.outs

let input_index aig node =
  (* PI nodes are allocated in order; binary search the inputs vector. *)
  let rec go lo hi =
    if lo > hi then invalid_arg "Aig.input_index: not an input"
    else begin
      let mid = (lo + hi) / 2 in
      let v = Vec.get aig.inputs mid in
      if v = node then mid else if v < node then go (mid + 1) hi else go lo (mid - 1)
    end
  in
  go 0 (Vec.size aig.inputs - 1)

let grow aig =
  let cap = Array.length aig.fanin0 in
  let ncap = 2 * cap in
  let ext a fill =
    let a' = Array.make ncap fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  aig.fanin0 <- ext aig.fanin0 (-1);
  aig.fanin1 <- ext aig.fanin1 (-1);
  aig.nrefs <- ext aig.nrefs 0;
  aig.trav <- ext aig.trav 0;
  let dead' = Array.make ncap false in
  Array.blit aig.dead 0 dead' 0 cap;
  aig.dead <- dead';
  Csr.ensure_nodes aig.fanouts ncap;
  Csr.ensure_nodes aig.out_uses ncap;
  aig.origins <- ext aig.origins 0

(* --- provenance --- *)

(* Take private ownership of the intern tables before the first write
   after a copy-on-write share. The shared table is left untouched for
   the other holders. *)
let unshare_origins aig =
  if aig.origins_shared then begin
    aig.origin_defs <- Array.copy aig.origin_defs;
    aig.origin_ids <- Hashtbl.copy aig.origin_ids;
    aig.origins_shared <- false
  end

let intern_origin aig (o : Origin.t) =
  match Hashtbl.find_opt aig.origin_ids o with
  | Some i -> i
  | None ->
    unshare_origins aig;
    if aig.n_origins >= Array.length aig.origin_defs then begin
      let ncap = 2 * Array.length aig.origin_defs in
      let defs = Array.make ncap Origin.seed in
      Array.blit aig.origin_defs 0 defs 0 aig.n_origins;
      aig.origin_defs <- defs;
      let created = Array.make ncap 0 in
      Array.blit aig.origin_created 0 created 0 aig.n_origins;
      aig.origin_created <- created
    end;
    let i = aig.n_origins in
    aig.origin_defs.(i) <- o;
    aig.origin_created.(i) <- 0;
    aig.n_origins <- i + 1;
    Hashtbl.add aig.origin_ids o i;
    i

let set_origin aig o = aig.cur_origin <- intern_origin aig o
let current_origin aig = aig.origin_defs.(aig.cur_origin)

let node_origin aig v =
  if v < 0 || v >= aig.n then invalid_arg "Aig.node_origin";
  aig.origin_defs.(aig.origins.(v))

let set_node_origin aig v o =
  if v < 0 || v >= aig.n then invalid_arg "Aig.set_node_origin";
  aig.origins.(v) <- intern_origin aig o

let note_created aig o count =
  let i = intern_origin aig o in
  aig.origin_created.(i) <- aig.origin_created.(i) + count

let begin_rebuild fresh ~from =
  (* Intern tables are append-only: share them copy-on-write instead
     of duplicating. Both holders are marked shared; whichever interns
     a new origin first takes a private copy. [origin_created] is
     mutated on every node construction, so it stays a real copy. *)
  fresh.origin_defs <- from.origin_defs;
  fresh.origin_created <- Array.copy from.origin_created;
  fresh.origin_ids <- from.origin_ids;
  from.origins_shared <- true;
  fresh.origins_shared <- true;
  fresh.n_origins <- from.n_origins;
  fresh.cur_origin <- from.cur_origin;
  fresh.origin_counting <- false

let end_rebuild fresh = fresh.origin_counting <- true

let alloc aig =
  if aig.n >= Array.length aig.fanin0 then grow aig;
  let node = aig.n in
  aig.n <- node + 1;
  aig.origins.(node) <- aig.cur_origin;
  node

let add_input aig =
  let node = alloc aig in
  Vec.push aig.inputs node;
  lit_of node false

let band aig a b =
  let bad l = node_of l >= aig.n || aig.dead.(node_of l) in
  if bad a || bad b then invalid_arg "Aig.band: dead or invalid literal";
  if a = b then a
  else if a = lnot b then const0
  else if a = const0 || b = const0 then const0
  else if a = const1 then b
  else if b = const1 then a
  else begin
    let a, b = if a < b then (a, b) else (b, a) in
    let key = strash_key a b in
    let hit = Itab.find aig.strash key ~default:(-1) in
    if hit >= 0 then lit_of hit false
    else begin
      let node = alloc aig in
      aig.fanin0.(node) <- a;
      aig.fanin1.(node) <- b;
      aig.nrefs.(node_of a) <- aig.nrefs.(node_of a) + 1;
      aig.nrefs.(node_of b) <- aig.nrefs.(node_of b) + 1;
      Csr.push aig.fanouts (node_of a) node;
      Csr.push aig.fanouts (node_of b) node;
      Itab.replace aig.strash key node;
      aig.num_live_ands <- aig.num_live_ands + 1;
      if aig.origin_counting then
        aig.origin_created.(aig.cur_origin) <-
          aig.origin_created.(aig.cur_origin) + 1;
      lit_of node false
    end
  end

let bor aig a b = lnot (band aig (lnot a) (lnot b))

let bxor aig a b =
  (* a^b = (a & ~b) | (~a & b) *)
  let p = band aig a (lnot b) in
  let q = band aig (lnot a) b in
  bor aig p q

let bxnor aig a b = lnot (bxor aig a b)

let bmux aig sel t e = bor aig (band aig sel t) (band aig (lnot sel) e)

let band_list aig = function
  | [] -> const1
  | x :: xs -> List.fold_left (band aig) x xs

let bor_list aig = function
  | [] -> const0
  | x :: xs -> List.fold_left (bor aig) x xs

let add_output aig l =
  if node_of l >= aig.n || aig.dead.(node_of l) then invalid_arg "Aig.add_output";
  let idx = Vec.size aig.outs in
  Vec.push aig.outs l;
  let v = node_of l in
  aig.nrefs.(v) <- aig.nrefs.(v) + 1;
  Csr.push aig.out_uses v idx;
  idx

(* Release one cone rooted at an unreferenced AND node. *)
let kill_cone aig root =
  let stack = Vec.create () in
  Vec.push stack root;
  while not (Vec.is_empty stack) do
    let v = Vec.pop stack in
    if is_and aig v && aig.nrefs.(v) = 0 then begin
      let f0 = aig.fanin0.(v) and f1 = aig.fanin1.(v) in
      let a, b = if f0 < f1 then (f0, f1) else (f1, f0) in
      let key = strash_key a b in
      if Itab.find aig.strash key ~default:(-1) = v then Itab.remove aig.strash key;
      aig.dead.(v) <- true;
      aig.num_live_ands <- aig.num_live_ands - 1;
      Csr.clear aig.fanouts v;
      List.iter
        (fun f ->
          let w = node_of f in
          Csr.remove aig.fanouts w v;
          aig.nrefs.(w) <- aig.nrefs.(w) - 1;
          if aig.nrefs.(w) = 0 then Vec.push stack w)
        [ f0; f1 ]
    end
  done

let delete_dangling aig node =
  if is_and aig node && aig.nrefs.(node) = 0 then kill_cone aig node

let pin aig l =
  let v = node_of l in
  if aig.dead.(v) then invalid_arg "Aig.pin: dead literal";
  aig.nrefs.(v) <- aig.nrefs.(v) + 1

let unpin ?(collect = true) aig l =
  let v = node_of l in
  aig.nrefs.(v) <- aig.nrefs.(v) - 1;
  if collect && aig.nrefs.(v) = 0 then kill_cone aig v

let set_output aig i l =
  if node_of l >= aig.n || aig.dead.(node_of l) then invalid_arg "Aig.set_output";
  let old = Vec.get aig.outs i in
  let ov = node_of old in
  Vec.set aig.outs i l;
  let v = node_of l in
  aig.nrefs.(v) <- aig.nrefs.(v) + 1;
  Csr.push aig.out_uses v i;
  Csr.remove aig.out_uses ov i;
  aig.nrefs.(ov) <- aig.nrefs.(ov) - 1;
  if aig.nrefs.(ov) = 0 then kill_cone aig ov

(* In-place replacement with cascading structural re-hashing.
   Invariants maintained across the loop:
   - every queued pair (o, nl) has nl's node pinned with one extra
     reference, so merge targets cannot be garbage-collected before
     their turn;
   - once a node's references have been moved, it is recorded in the
     forwarding table, and later queue entries resolve through it, so
     references are never moved onto a dismantled node. *)
(* Traversal id helper (shared by the cone walks below). *)
let new_trav aig =
  aig.trav_id <- aig.trav_id + 1;
  aig.trav_id

(* Live fanouts, deduplicated with a traversal stamp (the fanout
   vector may hold duplicates after rewiring); allocation-free probe
   per entry. *)
let fanout_nodes aig node =
  let id = new_trav aig in
  let trav = aig.trav in
  Csr.fold
    (fun acc fo ->
      if aig.dead.(fo) || trav.(fo) = id then acc
      else begin
        trav.(fo) <- id;
        fo :: acc
      end)
    [] aig.fanouts node

let in_tfi aig ~node ~root =
  let id = new_trav aig in
  let stack = Vec.create () in
  let found = ref false in
  Vec.push stack root;
  while (not !found) && not (Vec.is_empty stack) do
    let v = Vec.pop stack in
    if aig.trav.(v) <> id then begin
      aig.trav.(v) <- id;
      if v = node then found := true
      else if is_and aig v then begin
        Vec.push stack (node_of aig.fanin0.(v));
        Vec.push stack (node_of aig.fanin1.(v))
      end
    end
  done;
  !found

let replace aig root lit =
  if not (is_and aig root) then invalid_arg "Aig.replace: root must be a live AND";
  if node_of lit >= aig.n || aig.dead.(node_of lit) then invalid_arg "Aig.replace: dead literal";
  if node_of lit = root then invalid_arg "Aig.replace: self-replacement";
  (* The replacement cone must not contain the root: structural
     hashing can silently rebuild the root inside a speculative
     candidate (e.g. root = a & ~b inside an a-xor-b candidate), and
     rewiring would then close a combinational cycle. *)
  if in_tfi aig ~node:root ~root:(node_of lit) then
    invalid_arg "Aig.replace: candidate cone contains the root (cycle)";
  let queue = Queue.create () in
  let forward : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rec resolve l =
    match Hashtbl.find_opt forward (node_of l) with
    | Some r -> resolve (r lxor (l land 1))
    | None -> l
  in
  (* Every queue-entry target stays pinned until the whole call
     completes, so forwarding-chain ends can never be dismantled while
     references may still be moved onto them. *)
  let pinned = Vec.create () in
  let pin l =
    let v = node_of l in
    aig.nrefs.(v) <- aig.nrefs.(v) + 1;
    Vec.push pinned v
  in
  pin lit;
  Queue.add (root, lit) queue;
  while not (Queue.is_empty queue) do
    let o, nl0 = Queue.take queue in
    let nl = resolve nl0 in
    if aig.dead.(o) || o = node_of nl then ()
    else begin
      Hashtbl.replace forward o nl;
      (* Move primary-output references. *)
      let out_idxs = Csr.to_array aig.out_uses o in
      Array.iter
        (fun idx ->
          let cur = Vec.get aig.outs idx in
          if node_of cur = o then begin
            let nlit = nl lxor (cur land 1) in
            Vec.set aig.outs idx nlit;
            let v = node_of nlit in
            aig.nrefs.(v) <- aig.nrefs.(v) + 1;
            Csr.push aig.out_uses v idx;
            Csr.remove aig.out_uses o idx;
            aig.nrefs.(o) <- aig.nrefs.(o) - 1
          end)
        out_idxs;
      (* Move fanin references, rehashing each fanout. *)
      let fos = Csr.to_array aig.fanouts o in
      Array.iter
        (fun fo ->
          if (not aig.dead.(fo))
             && (node_of aig.fanin0.(fo) = o || node_of aig.fanin1.(fo) = o)
          then begin
            let f0 = aig.fanin0.(fo) and f1 = aig.fanin1.(fo) in
            let a0, b0 = if f0 < f1 then (f0, f1) else (f1, f0) in
            let key0 = strash_key a0 b0 in
            if Itab.find aig.strash key0 ~default:(-1) = fo then
              Itab.remove aig.strash key0;
            let subst f =
              if node_of f = o then begin
                let nf = nl lxor (f land 1) in
                let v = node_of nf in
                aig.nrefs.(v) <- aig.nrefs.(v) + 1;
                Csr.push aig.fanouts v fo;
                Csr.remove aig.fanouts o fo;
                aig.nrefs.(o) <- aig.nrefs.(o) - 1;
                nf
              end
              else f
            in
            let nf0 = subst f0 in
            let nf1 = subst f1 in
            let a, b = if nf0 < nf1 then (nf0, nf1) else (nf1, nf0) in
            aig.fanin0.(fo) <- a;
            aig.fanin1.(fo) <- b;
            let equiv =
              if a = b then Some a
              else if a = lnot b then Some const0
              else if a = const0 then Some const0
              else if a = const1 then Some b
              else begin
                let m = Itab.find aig.strash (strash_key a b) ~default:(-1) in
                if m = -1 then begin
                  Itab.replace aig.strash (strash_key a b) fo;
                  None
                end
                else if m <> fo then Some (lit_of m false)
                else None
              end
            in
            match equiv with
            | Some e ->
              pin e;
              Queue.add (fo, e) queue
            | None -> ()
          end)
        fos;
      if aig.nrefs.(o) = 0 then kill_cone aig o
    end
  done;
  Vec.iter
    (fun v ->
      aig.nrefs.(v) <- aig.nrefs.(v) - 1;
      if aig.nrefs.(v) = 0 then kill_cone aig v)
    pinned

let topo aig =
  let id = new_trav aig in
  let order = Vec.create ~capacity:aig.n () in
  (* Iterative post-order DFS: the stack stores (node, expanded?). *)
  let stack = Vec.create () in
  let push_root v = if aig.trav.(v) <> id then Vec.push stack (v lsl 1) in
  Vec.iter (fun l -> push_root (node_of l)) aig.outs;
  Vec.iter (fun v -> push_root v) aig.inputs;
  let process () =
    while not (Vec.is_empty stack) do
      let e = Vec.pop stack in
      let v = e lsr 1 and expanded = e land 1 = 1 in
      if expanded then Vec.push order v
      else if aig.trav.(v) <> id then begin
        aig.trav.(v) <- id;
        Vec.push stack ((v lsl 1) lor 1);
        if is_and aig v then begin
          Vec.push stack (node_of aig.fanin0.(v) lsl 1);
          Vec.push stack (node_of aig.fanin1.(v) lsl 1)
        end
      end
    done
  in
  process ();
  (* Exclude the constant node from the order. *)
  Array.of_seq (Seq.filter (fun v -> v <> 0) (Array.to_seq (Vec.to_array order)))

let levels aig =
  let lv = Array.make aig.n (-1) in
  lv.(0) <- 0;
  let order = topo aig in
  Array.iter
    (fun v ->
      if is_input aig v then lv.(v) <- 0
      else if is_and aig v then
        lv.(v) <-
          1 + max lv.(node_of aig.fanin0.(v)) lv.(node_of aig.fanin1.(v)))
    order;
  lv

let depth aig =
  let lv = levels aig in
  Vec.fold (fun acc l -> max acc lv.(node_of l)) 0 aig.outs

let size aig =
  let id = new_trav aig in
  let count = ref 0 in
  let stack = Vec.create () in
  let visit v =
    if aig.trav.(v) <> id then begin
      aig.trav.(v) <- id;
      Vec.push stack v
    end
  in
  Vec.iter (fun l -> visit (node_of l)) aig.outs;
  while not (Vec.is_empty stack) do
    let v = Vec.pop stack in
    if is_and aig v then begin
      incr count;
      visit (node_of aig.fanin0.(v));
      visit (node_of aig.fanin1.(v))
    end
  done;
  !count

(* --- canonical structural digest ---

   [fold_hash] folds a 64-bit hash bottom-up over the live cone only:
   dead nodes are never visited (the walk starts from the outputs and
   inputs, exactly like [topo]), node ids never enter the hash (each
   node hashes from its fanins' hashes, not their indices), and the
   two fanin hashes are combined min-first so the digest is invariant
   under the fanin reordering [compact] performs when node ids change.
   The result is therefore stable across [copy] and [compact] and
   independent of dead-node garbage, while any functional edit to a
   live gate (connective, phase, or support) reaches the outputs and
   changes the digest with overwhelming probability. *)

let fh_finalize z =
  (* SplitMix64 finalizer: full-avalanche 64-bit mix. *)
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let fh_mix2 a b =
  fh_finalize (Int64.add (Int64.mul a 0x9E3779B97F4A7C15L) b)

let fh_const_tag = fh_finalize 0x5bd1e995L
let fh_input_tag = fh_finalize 0xc2b2ae35L
let fh_and_tag = fh_finalize 0x85ebca77L
let fh_compl_mask = fh_finalize 0x27d4eb2fL

let fold_hash aig =
  let h = Array.make aig.n 0L in
  h.(0) <- fh_const_tag;
  let hlit l =
    let base = h.(node_of l) in
    if is_compl l then Int64.logxor base fh_compl_mask else base
  in
  Array.iter
    (fun v ->
      if is_input aig v then
        h.(v) <- fh_mix2 fh_input_tag (Int64.of_int (input_index aig v))
      else begin
        let a = hlit aig.fanin0.(v) and b = hlit aig.fanin1.(v) in
        let lo, hi =
          if Int64.unsigned_compare a b <= 0 then (a, b) else (b, a)
        in
        h.(v) <- fh_mix2 (fh_mix2 fh_and_tag lo) hi
      end)
    (topo aig);
  let acc =
    fh_mix2
      (Int64.of_int (num_inputs aig))
      (Int64.of_int (num_outputs aig))
  in
  Vec.fold (fun acc l -> fh_mix2 acc (hlit l)) acc aig.outs

(* Per-origin (created, live) tallies. "Live" uses the same
   reachable-from-outputs walk as [size], so the live column sums to
   exactly [size aig]. *)
let origin_stats aig =
  let live = Array.make aig.n_origins 0 in
  let id = new_trav aig in
  let stack = Vec.create () in
  let visit v =
    if aig.trav.(v) <> id then begin
      aig.trav.(v) <- id;
      Vec.push stack v
    end
  in
  Vec.iter (fun l -> visit (node_of l)) aig.outs;
  while not (Vec.is_empty stack) do
    let v = Vec.pop stack in
    if is_and aig v then begin
      live.(aig.origins.(v)) <- live.(aig.origins.(v)) + 1;
      visit (node_of aig.fanin0.(v));
      visit (node_of aig.fanin1.(v))
    end
  done;
  let rows = ref [] in
  for i = aig.n_origins - 1 downto 0 do
    if live.(i) > 0 || aig.origin_created.(i) > 0 then
      rows := (aig.origin_defs.(i), aig.origin_created.(i), live.(i)) :: !rows
  done;
  !rows

let support aig node =
  let id = new_trav aig in
  let stack = Vec.create () in
  let pis = ref [] in
  Vec.push stack node;
  while not (Vec.is_empty stack) do
    let v = Vec.pop stack in
    if aig.trav.(v) <> id then begin
      aig.trav.(v) <- id;
      if is_input aig v then pis := v :: !pis
      else if is_and aig v then begin
        Vec.push stack (node_of aig.fanin0.(v));
        Vec.push stack (node_of aig.fanin1.(v))
      end
    end
  done;
  List.sort Stdlib.compare !pis

(* Simulated deletion: decrement fanin references of [root]'s cone,
   counting AND nodes whose count reaches zero. *)
let rec deref_mffc aig root count =
  List.iter
    (fun f ->
      let v = node_of f in
      aig.nrefs.(v) <- aig.nrefs.(v) - 1;
      if aig.nrefs.(v) = 0 && is_and aig v then begin
        incr count;
        deref_mffc aig v count
      end)
    [ aig.fanin0.(root); aig.fanin1.(root) ]

let rec reref_mffc aig root =
  List.iter
    (fun f ->
      let v = node_of f in
      if aig.nrefs.(v) = 0 && is_and aig v then reref_mffc aig v;
      aig.nrefs.(v) <- aig.nrefs.(v) + 1)
    [ aig.fanin0.(root); aig.fanin1.(root) ]

let mffc_size aig node =
  if not (is_and aig node) then 0
  else begin
    let count = ref 1 in
    deref_mffc aig node count;
    reref_mffc aig node;
    !count
  end

type checkpoint = int

let mark_created aig = aig.n

let fresh_since aig cp =
  let count = ref 0 in
  for v = cp to aig.n - 1 do
    if is_and aig v then incr count
  done;
  !count

let gain_of_replacement aig ~root ~candidate =
  if not (is_and aig root) then invalid_arg "Aig.gain_of_replacement";
  let cv = node_of candidate in
  (* Count the AND nodes that exist only to support the candidate. *)
  let added = ref 0 in
  let rec virtual_kill v =
    if is_and aig v && aig.nrefs.(v) = 0 then begin
      incr added;
      List.iter
        (fun f ->
          let w = node_of f in
          aig.nrefs.(w) <- aig.nrefs.(w) - 1;
          virtual_kill w)
        [ aig.fanin0.(v); aig.fanin1.(v) ]
    end
  in
  let rec virtual_unkill v =
    if is_and aig v && aig.nrefs.(v) = 0 then
      List.iter
        (fun f ->
          let w = node_of f in
          virtual_unkill w;
          aig.nrefs.(w) <- aig.nrefs.(w) + 1)
        [ aig.fanin0.(v); aig.fanin1.(v) ]
  in
  virtual_kill cv;
  virtual_unkill cv;
  (* Pin the candidate, then measure the MFFC of [root] under
     sharing with the candidate cone. *)
  aig.nrefs.(cv) <- aig.nrefs.(cv) + 1;
  let saved = ref 1 in
  deref_mffc aig root saved;
  reref_mffc aig root;
  aig.nrefs.(cv) <- aig.nrefs.(cv) - 1;
  !saved - !added

(* O(live) snapshot: per-node arrays are blitted only up to the
   allocated prefix [n] (with a little headroom so the copy can grow a
   few times before reallocating), the CSR arenas are copied compacted
   in the same bound, traversal stamps are reset instead of copied
   (they are scratch state: a fresh zero array with [trav_id = 0] is
   indistinguishable from never-traversed), and the append-only
   origin intern tables are shared copy-on-write. No boxed per-node
   structures are allocated. *)
let copy aig =
  let n = aig.n in
  let cap = n + (n lsr 2) + 8 in
  let prefix a fill =
    let a' = Array.make cap fill in
    Array.blit a 0 a' 0 n;
    a'
  in
  aig.origins_shared <- true;
  {
    fanin0 = prefix aig.fanin0 (-1);
    fanin1 = prefix aig.fanin1 (-1);
    nrefs = prefix aig.nrefs 0;
    dead = prefix aig.dead false;
    trav = Array.make cap 0;
    fanouts = Csr.copy aig.fanouts ~nodes:n ~node_cap:cap;
    out_uses = Csr.copy aig.out_uses ~nodes:n ~node_cap:cap;
    n;
    trav_id = 0;
    num_live_ands = aig.num_live_ands;
    inputs = Vec.copy aig.inputs;
    outs = Vec.copy aig.outs;
    strash = Itab.copy aig.strash;
    origins = prefix aig.origins 0;
    origin_defs = aig.origin_defs;
    origin_created = Array.copy aig.origin_created;
    origin_ids = aig.origin_ids;
    n_origins = aig.n_origins;
    cur_origin = aig.cur_origin;
    origin_counting = aig.origin_counting;
    origins_shared = true;
  }

(* Squeeze relocation leaks out of the adjacency arenas. Offsets and
   capacities change; list contents and order do not, so this is
   invisible to every reader. Flow scripts call it at pass
   boundaries. *)
let compact_arenas aig =
  Csr.compact aig.fanouts;
  Csr.compact aig.out_uses

let arena_capacity_words aig =
  Csr.capacity_words aig.fanouts + Csr.capacity_words aig.out_uses

let arena_live_words aig =
  Csr.live_words aig.fanouts + Csr.live_words aig.out_uses

let compact aig =
  let fresh = create ~expected:(aig.n + 1) () in
  begin_rebuild fresh ~from:aig;
  let map = Array.make aig.n (-1) in
  Vec.iter
    (fun v ->
      let l = add_input fresh in
      fresh.origins.(node_of l) <- aig.origins.(v);
      map.(v) <- l)
    aig.inputs;
  map.(0) <- const0;
  let order = topo aig in
  Array.iter
    (fun v ->
      if is_and aig v then begin
        let f0 = aig.fanin0.(v) and f1 = aig.fanin1.(v) in
        let m f = map.(node_of f) lxor (f land 1) in
        (* Adopt the old node's tag when the AND is freshly built;
           strash hits keep their first tag (first-stamp-wins). *)
        let n0 = fresh.n in
        let nl = band fresh (m f0) (m f1) in
        if node_of nl >= n0 then fresh.origins.(node_of nl) <- aig.origins.(v);
        map.(v) <- nl
      end)
    order;
  end_rebuild fresh;
  Vec.iter
    (fun l ->
      let nl = map.(node_of l) in
      if nl < 0 then invalid_arg "Aig.compact: unreachable output node";
      ignore (add_output fresh (nl lxor (l land 1))))
    aig.outs;
  let remap l =
    let v = node_of l in
    if v >= Array.length map || map.(v) < 0 then invalid_arg "Aig.compact: unmapped literal"
    else map.(v) lxor (l land 1)
  in
  (fresh, remap)

let check aig =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Recount references. *)
  let refs = Array.make aig.n 0 in
  for v = 0 to aig.n - 1 do
    if is_and aig v then begin
      let f0 = aig.fanin0.(v) and f1 = aig.fanin1.(v) in
      if f0 > f1 then fail "node %d: fanins not ordered" v;
      List.iter
        (fun f ->
          let w = node_of f in
          if w >= aig.n then fail "node %d: fanin out of range" v;
          if aig.dead.(w) then fail "node %d: dead fanin %d" v w;
          refs.(w) <- refs.(w) + 1)
        [ f0; f1 ]
    end
  done;
  Vec.iter
    (fun l ->
      let w = node_of l in
      if aig.dead.(w) then fail "output references dead node %d" w;
      refs.(w) <- refs.(w) + 1)
    aig.outs;
  for v = 0 to aig.n - 1 do
    if not aig.dead.(v) && refs.(v) <> aig.nrefs.(v) then
      fail "node %d: nref %d but counted %d" v aig.nrefs.(v) refs.(v)
  done;
  (* Provenance: every node's tag must be an interned origin id. *)
  for v = 0 to aig.n - 1 do
    if not aig.dead.(v) then begin
      let o = aig.origins.(v) in
      if o < 0 || o >= aig.n_origins then
        fail "node %d: origin id %d out of range (%d interned)" v o aig.n_origins
    end
  done;
  if aig.cur_origin < 0 || aig.cur_origin >= aig.n_origins then
    fail "current origin id %d out of range" aig.cur_origin;
  (* Strash consistency: every live AND is hashed under its key. *)
  for v = 0 to aig.n - 1 do
    if is_and aig v then begin
      match Itab.find aig.strash (strash_key aig.fanin0.(v) aig.fanin1.(v)) ~default:(-1) with
      | m when m = v -> ()
      | -1 -> fail "node %d: missing from strash" v
      | m -> fail "node %d: strash maps its key to %d" v m
    end
  done;
  Itab.iter
    (fun key v ->
      let a = key lsr 31 and b = key land 0x7FFFFFFF in
      if aig.dead.(v) then fail "strash contains dead node %d" v;
      if aig.fanin0.(v) <> a || aig.fanin1.(v) <> b then
        fail "strash key mismatch for node %d" v)
    aig.strash;
  (* Fanout lists: one entry per fanin reference. *)
  let focount = Array.make aig.n 0 in
  for v = 0 to aig.n - 1 do
    if is_and aig v then begin
      focount.(node_of aig.fanin0.(v)) <- focount.(node_of aig.fanin0.(v)) + 1;
      focount.(node_of aig.fanin1.(v)) <- focount.(node_of aig.fanin1.(v)) + 1
    end
  done;
  for v = 0 to aig.n - 1 do
    if not aig.dead.(v) then begin
      let live_entries =
        Csr.fold (fun acc fo -> if is_and aig fo then acc + 1 else acc) 0 aig.fanouts v
      in
      if live_entries <> focount.(v) then
        fail "node %d: fanout entries %d but fanin references %d" v live_entries focount.(v)
    end
  done;
  (* Acyclicity: a topological order must assign every live AND a
     position after both fanins. *)
  let order = topo aig in
  let pos = Array.make aig.n (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Array.iter
    (fun v ->
      if is_and aig v then begin
        let p0 = pos.(node_of aig.fanin0.(v)) in
        let p1 = pos.(node_of aig.fanin1.(v)) in
        let ok p = node_of aig.fanin0.(v) = 0 || p >= 0 in
        if (not (ok p0)) || p0 >= pos.(v) then fail "node %d: fanin0 not before node" v;
        if (not (ok p1)) || (p1 >= pos.(v) && node_of aig.fanin1.(v) <> 0) then
          fail "node %d: fanin1 not before node" v
      end)
    order

let pp_stats fmt aig =
  Format.fprintf fmt "i/o = %d/%d  and = %d  depth = %d" (num_inputs aig)
    (num_outputs aig) (size aig) (depth aig)
