module Tt = Sbm_truthtable.Tt

(* Decomposition choices recorded by the cost search and replayed by
   the builder. *)
type choice =
  | Const of bool
  | Literal of int * bool (* variable, complemented *)
  | Shannon of int (* mux(x, hi, lo) *)
  | Xor of int (* x xor lo *)
  | And_pos of int (* x and hi *)
  | And_neg of int (* ~x and lo *)
  | Or_pos of int (* x or lo *)
  | Or_neg of int (* ~x or hi *)

let mux_cost = 3
let xor_cost = 3

(* Returns (cost, choice) for [tt], memoized in [memo].

   The search is bounded: variables whose cofactors are degenerate
   (constant or complementary) decompose for free and are always
   explored; otherwise only the two most promising split variables
   (largest cofactor-agreement, a cheap binateness proxy) recurse, so
   a width-n function costs O(2^n) sub-searches instead of O(n!). *)
let rec search memo tt =
  match Tt.Tbl.find_opt memo tt with
  | Some r -> r
  | None ->
    let r =
      if Tt.is_const0 tt then (0, Const false)
      else if Tt.is_const1 tt then (0, Const true)
      else begin
        match Tt.support tt with
        | [ v ] ->
          if Tt.equal tt (Tt.var (Tt.num_vars tt) v) then (0, Literal (v, false))
          else (0, Literal (v, true))
        | vars ->
          let best = ref (max_int, Const false) in
          let consider cost choice = if cost < fst !best then best := (cost, choice) in
          (* Pass 1: degenerate decompositions (cheap checks, single
             recursion each). *)
          let generic = ref [] in
          List.iter
            (fun v ->
              let f0 = Tt.cofactor0 tt v in
              let f1 = Tt.cofactor1 tt v in
              if Tt.equal_not f0 f1 then begin
                let c0, _ = search memo f0 in
                consider (c0 + xor_cost) (Xor v)
              end
              else if Tt.is_const0 f0 then begin
                let c1, _ = search memo f1 in
                consider (c1 + 1) (And_pos v)
              end
              else if Tt.is_const0 f1 then begin
                let c0, _ = search memo f0 in
                consider (c0 + 1) (And_neg v)
              end
              else if Tt.is_const1 f0 then begin
                let c1, _ = search memo f1 in
                consider (c1 + 1) (Or_neg v)
              end
              else if Tt.is_const1 f1 then begin
                let c0, _ = search memo f0 in
                consider (c0 + 1) (Or_pos v)
              end
              else begin
                (* Score: prefer splits whose cofactors agree a lot
                   (they share structure and simplify). *)
                let agreement = Tt.agreement f0 f1 in
                generic := (agreement, v, f0, f1) :: !generic
              end)
            vars;
          if fst !best = max_int || !generic <> [] then begin
            let ranked =
              List.sort (fun (a, _, _, _) (b, _, _, _) -> compare b a) !generic
            in
            let take2 = match ranked with a :: b :: _ -> [ a; b ] | l -> l in
            List.iter
              (fun (_, v, f0, f1) ->
                let c0, _ = search memo f0 in
                let c1, _ = search memo f1 in
                consider (c0 + c1 + mux_cost) (Shannon v))
              take2
          end;
          !best
      end
    in
    Tt.Tbl.add memo tt r;
    r

let rec build memo aig leaves tt =
  let _, choice = search memo tt in
  match choice with
  | Const false -> Aig.const0
  | Const true -> Aig.const1
  | Literal (v, c) -> if c then Aig.lnot leaves.(v) else leaves.(v)
  | Shannon v ->
    let hi = build memo aig leaves (Tt.cofactor1 tt v) in
    let lo = build memo aig leaves (Tt.cofactor0 tt v) in
    Aig.bmux aig leaves.(v) hi lo
  | Xor v ->
    let lo = build memo aig leaves (Tt.cofactor0 tt v) in
    Aig.bxor aig leaves.(v) lo
  | And_pos v ->
    let hi = build memo aig leaves (Tt.cofactor1 tt v) in
    Aig.band aig leaves.(v) hi
  | And_neg v ->
    let lo = build memo aig leaves (Tt.cofactor0 tt v) in
    Aig.band aig (Aig.lnot leaves.(v)) lo
  | Or_pos v ->
    let lo = build memo aig leaves (Tt.cofactor0 tt v) in
    Aig.bor aig leaves.(v) lo
  | Or_neg v ->
    let hi = build memo aig leaves (Tt.cofactor1 tt v) in
    Aig.bor aig (Aig.lnot leaves.(v)) hi

let of_tt aig tt leaves =
  if Array.length leaves < Tt.num_vars tt then invalid_arg "Synth.of_tt: missing leaves";
  let memo = Tt.Tbl.create 64 in
  build memo aig leaves tt

let cost_of_tt tt =
  let memo = Tt.Tbl.create 64 in
  fst (search memo tt)

let of_sop aig cubes ~nvars leaves =
  if Array.length leaves < nvars then invalid_arg "Synth.of_sop";
  let cube_lit (c : Tt.cube) =
    let lits = ref [] in
    for i = 0 to nvars - 1 do
      if (c.Tt.pos lsr i) land 1 = 1 then lits := leaves.(i) :: !lits
      else if (c.Tt.neg lsr i) land 1 = 1 then lits := Aig.lnot leaves.(i) :: !lits
    done;
    Aig.band_list aig !lits
  in
  Aig.bor_list aig (List.map cube_lit cubes)
