let write aig =
  let buf = Buffer.create 4096 in
  let order = Aig.topo aig in
  let ninputs = Aig.num_inputs aig in
  let nands = Aig.size aig in
  (* Renumber: input i gets variable i+1; ANDs follow topologically. *)
  let var_of = Array.make (Aig.num_nodes aig) (-1) in
  for i = 0 to ninputs - 1 do
    var_of.(Aig.node_of (Aig.input_lit aig i)) <- i + 1
  done;
  let next = ref (ninputs + 1) in
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        var_of.(v) <- !next;
        incr next
      end)
    order;
  let maxvar = !next - 1 in
  let lit_out l =
    let v = Aig.node_of l in
    let base = if v = 0 then 0 else 2 * var_of.(v) in
    base lor (l land 1)
  in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" maxvar ninputs (Aig.num_outputs aig) nands);
  for i = 0 to ninputs - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (2 * (i + 1)))
  done;
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit_out l)))
    (Aig.outputs aig);
  Array.iter
    (fun v ->
      if Aig.is_and aig v then
        Buffer.add_string buf
          (Printf.sprintf "%d %d %d\n" (2 * var_of.(v))
             (lit_out (Aig.fanin0 aig v))
             (lit_out (Aig.fanin1 aig v))))
    order;
  Buffer.contents buf

let write_file aig path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write aig))

(* --- streaming byte source ---

   Both readers pull bytes through a fixed-size chunk buffer, so
   parsing a file never materializes its contents as one string: peak
   reader memory is one chunk plus the current line. The same source
   serves in-memory strings (tests, round-trips) and channels. *)

type source = {
  refill : bytes -> int;
  (* Fill the chunk from the underlying producer; 0 means EOF. *)
  chunk : bytes;
  mutable pos : int;
  mutable avail : int; (* -1 once the producer is exhausted *)
}

let chunk_size = 65536

let source_of_channel ic =
  let chunk = Bytes.create chunk_size in
  { refill = (fun b -> input ic b 0 (Bytes.length b)); chunk; pos = 0; avail = 0 }

let source_of_string s =
  (* The string is already resident; serve it as the one chunk. *)
  { refill = (fun _ -> 0); chunk = Bytes.of_string s; pos = 0; avail = String.length s }

let next_byte src =
  if src.pos < src.avail then begin
    let c = Bytes.get_uint8 src.chunk src.pos in
    src.pos <- src.pos + 1;
    c
  end
  else if src.avail < 0 then -1
  else begin
    let n = src.refill src.chunk in
    if n = 0 then begin
      src.avail <- -1;
      -1
    end
    else begin
      src.pos <- 1;
      src.avail <- n;
      Bytes.get_uint8 src.chunk 0
    end
  end

(* One line, newline excluded; [None] at end of input. *)
let next_line src =
  let b = Buffer.create 32 in
  let rec go () =
    match next_byte src with
    | -1 -> if Buffer.length b = 0 then None else Some (Buffer.contents b)
    | 0x0A -> Some (Buffer.contents b)
    | c ->
      Buffer.add_char b (Char.chr c);
      go ()
  in
  go ()

(* Non-blank line, trimmed (tolerates \r\n and stray blank lines). *)
let rec next_token_line src what =
  match next_line src with
  | None -> Printf.ksprintf failwith "%s: truncated file" what
  | Some l ->
    let l = String.trim l in
    if l = "" then next_token_line src what else l

let read_ascii src =
  let header = next_token_line src "Aiger.read" in
  let maxvar, ninputs, nlatches, noutputs, nands =
    match String.split_on_char ' ' header with
    | [ "aag"; m; i; l; o; a ] ->
      (int_of_string m, int_of_string i, int_of_string l, int_of_string o, int_of_string a)
    | _ -> failwith "Aiger.read: bad header"
  in
  if nlatches <> 0 then failwith "Aiger.read: latches unsupported";
  let aig = Aig.create ~expected:(maxvar + 2) () in
  (* map from aiger variable to our literal *)
  let map = Array.make (maxvar + 1) (-1) in
  map.(0) <- Aig.const0;
  let lit_in l =
    let v = l / 2 in
    if v > maxvar || map.(v) < 0 then failwith "Aiger.read: undefined literal";
    map.(v) lxor (l land 1)
  in
  for _ = 1 to ninputs do
    let l = int_of_string (next_token_line src "Aiger.read") in
    if l mod 2 <> 0 then failwith "Aiger.read: complemented input";
    map.(l / 2) <- Aig.add_input aig
  done;
  (* Output literals may reference AND variables defined below them;
     hold the raw literals until the AND section has streamed past. *)
  let out_lits =
    Array.init noutputs (fun _ ->
        int_of_string (next_token_line src "Aiger.read"))
  in
  (* The format requires lhs > rhs, so processing AND definitions in
     file order resolves every fanin. *)
  for _ = 1 to nands do
    let line = next_token_line src "Aiger.read" in
    match String.split_on_char ' ' line with
    | [ lhs; rhs0; rhs1 ] ->
      let lhs = int_of_string lhs in
      if lhs mod 2 <> 0 then failwith "Aiger.read: complemented AND lhs";
      let f0 = lit_in (int_of_string rhs0) in
      let f1 = lit_in (int_of_string rhs1) in
      map.(lhs / 2) <- Aig.band aig f0 f1
    | _ -> failwith "Aiger.read: bad AND line"
  done;
  Array.iter (fun l -> ignore (Aig.add_output aig (lit_in l))) out_lits;
  aig

let read s = read_ascii (source_of_string s)

(* Binary AIGER: the AND section stores, for each AND in variable
   order, the two differences (lhs - rhs0) and (rhs0 - rhs1) as
   LEB128-style 7-bit varints. *)

let write_varint buf x =
  let x = ref x in
  while !x >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!x land 0x7f)));
    x := !x lsr 7
  done;
  Buffer.add_char buf (Char.chr !x)

let write_binary aig =
  let buf = Buffer.create 4096 in
  let order = Aig.topo aig in
  let ninputs = Aig.num_inputs aig in
  let nands = Aig.size aig in
  let var_of = Array.make (Aig.num_nodes aig) (-1) in
  for i = 0 to ninputs - 1 do
    var_of.(Aig.node_of (Aig.input_lit aig i)) <- i + 1
  done;
  let next = ref (ninputs + 1) in
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        var_of.(v) <- !next;
        incr next
      end)
    order;
  let maxvar = !next - 1 in
  let lit_out l =
    let v = Aig.node_of l in
    let base = if v = 0 then 0 else 2 * var_of.(v) in
    base lor (l land 1)
  in
  Buffer.add_string buf
    (Printf.sprintf "aig %d %d 0 %d %d\n" maxvar ninputs (Aig.num_outputs aig) nands);
  (* In binary mode, input literals are implicit. *)
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit_out l)))
    (Aig.outputs aig);
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        let lhs = 2 * var_of.(v) in
        let r0 = lit_out (Aig.fanin0 aig v) in
        let r1 = lit_out (Aig.fanin1 aig v) in
        (* The format requires lhs > rhs0 >= rhs1. *)
        let r0, r1 = if r0 >= r1 then (r0, r1) else (r1, r0) in
        write_varint buf (lhs - r0);
        write_varint buf (r0 - r1)
      end)
    order;
  Buffer.contents buf

let read_binary_source src =
  let line () =
    match next_line src with
    | None -> failwith "Aiger.read_binary: truncated file"
    | Some l -> l
  in
  let header = line () in
  let maxvar, ninputs, nlatches, noutputs, nands =
    match String.split_on_char ' ' (String.trim header) with
    | [ "aig"; m; i; l; o; a ] ->
      (int_of_string m, int_of_string i, int_of_string l, int_of_string o, int_of_string a)
    | _ -> failwith "Aiger.read_binary: bad header"
  in
  if nlatches <> 0 then failwith "Aiger.read_binary: latches unsupported";
  let out_lits = Array.init noutputs (fun _ -> int_of_string (String.trim (line ()))) in
  let read_varint () =
    let x = ref 0 in
    let shift = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let byte = next_byte src in
      if byte < 0 then failwith "Aiger.read_binary: truncated varint";
      x := !x lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte < 0x80 then continue_ := false
    done;
    !x
  in
  let aig = Aig.create ~expected:(maxvar + 2) () in
  let map = Array.make (maxvar + 1) (-1) in
  map.(0) <- Aig.const0;
  for i = 1 to ninputs do
    map.(i) <- Aig.add_input aig
  done;
  let lit_in l =
    let v = l / 2 in
    if v > maxvar || map.(v) < 0 then failwith "Aiger.read_binary: undefined literal";
    map.(v) lxor (l land 1)
  in
  for i = 0 to nands - 1 do
    let lhs = 2 * (ninputs + 1 + i) in
    let d0 = read_varint () in
    let d1 = read_varint () in
    let r0 = lhs - d0 in
    let r1 = r0 - d1 in
    if r0 < 0 || r1 < 0 then failwith "Aiger.read_binary: bad deltas";
    map.(lhs / 2) <- Aig.band aig (lit_in r0) (lit_in r1)
  done;
  Array.iter (fun l -> ignore (Aig.add_output aig (lit_in l))) out_lits;
  aig

let read_binary s = read_binary_source (source_of_string s)

(* Streamed: the file is parsed through a chunked source, never
   slurped into one string — peak reader memory during load is one
   64 KiB chunk regardless of file size. Format detection peeks the
   first bytes of the first chunk. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let src = source_of_channel ic in
      src.avail <- src.refill src.chunk;
      if src.avail = 0 then src.avail <- -1;
      let binary =
        src.avail >= 4 && Bytes.sub_string src.chunk 0 4 = "aig "
      in
      if binary then read_binary_source src else read_ascii src)
