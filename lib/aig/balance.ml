(* Leaves of the maximal AND tree rooted at literal [l] in the old
   AIG: descend through non-complemented, single-fanout AND nodes. *)
let super_leaves aig l =
  let leaves = ref [] in
  let rec go l top =
    let v = Aig.node_of l in
    if (not (Aig.is_compl l)) && Aig.is_and aig v && (top || Aig.nref aig v = 1)
    then begin
      go (Aig.fanin0 aig v) false;
      go (Aig.fanin1 aig v) false
    end
    else leaves := l :: !leaves
  in
  go l true;
  !leaves

let run aig =
  let fresh = Aig.create ~expected:(Aig.num_nodes aig) () in
  (* Balancing reassociates existing logic; each rebuilt tree adopts
     the origin of the root it replaces rather than creating churn. *)
  Aig.begin_rebuild fresh ~from:aig;
  let map = Array.make (Aig.num_nodes aig) Aig.const0 in
  let level = Hashtbl.create 256 in
  let level_of l =
    match Hashtbl.find_opt level (Aig.node_of l) with Some d -> d | None -> 0
  in
  for i = 0 to Aig.num_inputs aig - 1 do
    map.(Aig.node_of (Aig.input_lit aig i)) <- Aig.add_input fresh
  done;
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_and aig v then begin
        Aig.set_origin fresh (Aig.node_origin aig v);
        let leaves = super_leaves aig (Aig.lit_of v false) in
        let mapped =
          List.map (fun l -> map.(Aig.node_of l) lxor (l land 1)) leaves
        in
        (* Combine lowest-level operands first. *)
        let module Pq = struct
          let items = ref (List.sort (fun a b -> compare (level_of a) (level_of b)) mapped)

          let pop () =
            match !items with
            | [] -> invalid_arg "Balance: empty tree"
            | x :: rest ->
              items := rest;
              x

          let insert x =
            let rec ins = function
              | [] -> [ x ]
              | y :: rest ->
                if level_of x <= level_of y then x :: y :: rest else y :: ins rest
            in
            items := ins !items

          let size () = List.length !items
        end in
        let rec combine () =
          if Pq.size () = 1 then Pq.pop ()
          else begin
            let a = Pq.pop () in
            let b = Pq.pop () in
            let r = Aig.band fresh a b in
            if not (Hashtbl.mem level (Aig.node_of r)) then
              Hashtbl.replace level (Aig.node_of r)
                (1 + max (level_of a) (level_of b));
            Pq.insert r;
            combine ()
          end
        in
        map.(v) <- combine ()
      end)
    order;
  Array.iter
    (fun l ->
      let nl = map.(Aig.node_of l) lxor (l land 1) in
      ignore (Aig.add_output fresh nl))
    (Aig.outputs aig);
  Aig.end_rebuild fresh;
  Aig.set_origin fresh (Aig.current_origin aig);
  fresh
