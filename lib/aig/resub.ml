module Tt = Sbm_truthtable.Tt

(* Collect divisor nodes for a window: nodes in the cone below [root]
   (excluding [root] itself) plus fanouts of cone nodes whose support
   stays within the leaf set. All truth tables are over the leaves. *)
let collect_divisors aig root leaves ~max_divisors =
  let n = Array.length leaves in
  let tts : (int, Tt.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri (fun i v -> Hashtbl.replace tts v (Tt.var n i)) leaves;
  Hashtbl.replace tts 0 (Tt.const0 n);
  (* Evaluate a node if its support is within the leaves; memoized.
     Returns None when the node's cone escapes. Bounded by a fuel
     counter to avoid runaway exploration. *)
  let fuel = ref (64 * max_divisors) in
  let rec eval v =
    match Hashtbl.find_opt tts v with
    | Some tt -> Some tt
    | None ->
      if (not (Aig.is_and aig v)) || !fuel <= 0 then None
      else begin
        decr fuel;
        let f0 = Aig.fanin0 aig v and f1 = Aig.fanin1 aig v in
        match eval (Aig.node_of f0) with
        | None -> None
        | Some t0 -> (
          match eval (Aig.node_of f1) with
          | None -> None
          | Some t1 ->
            let t0 = if Aig.is_compl f0 then Tt.bnot t0 else t0 in
            let t1 = if Aig.is_compl f1 then Tt.bnot t1 else t1 in
            let tt = Tt.band t0 t1 in
            Hashtbl.replace tts v tt;
            Some tt)
      end
  in
  (* The cone of root itself: leaves form a cut, so evaluation can
     only fail by running out of fuel on a very large interior; give
     the root cone its own generous budget first. *)
  fuel := max !fuel 100_000;
  let root_tt =
    match eval root with
    | Some tt -> tt
    | None -> invalid_arg "Resub: root cone escapes leaves"
  in
  fuel := 64 * max_divisors;
  (* Gather divisors: cone nodes and side fanouts of evaluated nodes. *)
  let divisors = ref [] in
  let count = ref 0 in
  let consider v =
    if v <> root && !count < max_divisors
       && (not (Hashtbl.mem tts v))
       && Aig.is_and aig v
       && not (Aig.in_tfi aig ~node:root ~root:v)
    then begin
      match eval v with
      | Some _ -> ()
      | None -> ()
    end
  in
  (* Seed: everything already evaluated is in the window; explore the
     fanouts of leaves and cone nodes once. *)
  let seeds = Hashtbl.fold (fun v _ acc -> v :: acc) tts [] in
  List.iter
    (fun v -> List.iter consider (Aig.fanout_nodes aig v))
    seeds;
  Hashtbl.iter
    (fun v tt ->
      if v <> root && v <> 0 && not (Array.exists (fun l -> l = v) leaves) then begin
        if !count < max_divisors && not (Aig.in_tfi aig ~node:root ~root:v) then begin
          incr count;
          divisors := (v, tt) :: !divisors
        end
      end)
    tts;
  (* Leaves are divisors too (0-cost). *)
  Array.iteri (fun i v -> divisors := (v, Tt.var n i) :: !divisors) leaves;
  (root_tt, !divisors)

let resub_node aig ~zero_gain ~max_leaves ~max_divisors root =
  let leaves = Refactor.reconv_cut aig root ~max_leaves in
  if Array.length leaves < 2 || Array.length leaves > Tt.max_vars then 0
  else begin
    let root_tt, divisors = collect_divisors aig root leaves ~max_divisors in
    let commit candidate =
      (* Strashing can rebuild the root inside the candidate cone
         (e.g. root = a & ~b inside an a-xor-b candidate): committing
         would close a cycle, so such candidates are discarded. *)
      if
        Aig.node_of candidate = root
        || Aig.in_tfi aig ~node:root ~root:(Aig.node_of candidate)
      then begin
        Aig.delete_dangling aig (Aig.node_of candidate);
        0
      end
      else begin
        let gain = Aig.gain_of_replacement aig ~root ~candidate in
        if gain > 0 || (zero_gain && gain = 0) then begin
          Aig.replace aig root candidate;
          gain
        end
        else begin
          Aig.delete_dangling aig (Aig.node_of candidate);
          0
        end
      end
    in
    (* 0-resub: an existing node matches directly. *)
    let not_root_tt = Tt.bnot root_tt in
    let zero_match =
      List.find_map
        (fun (v, tt) ->
          if Tt.equal tt root_tt then Some (Aig.lit_of v false)
          else if Tt.equal tt not_root_tt then Some (Aig.lit_of v true)
          else None)
        divisors
    in
    match zero_match with
    | Some candidate -> commit candidate
    | None ->
      (* 1-resub: two divisors through one gate. *)
      let arr = Array.of_list divisors in
      let found = ref None in
      let num = Array.length arr in
      (try
         for i = 0 to num - 1 do
           let vi, ti = arr.(i) in
           for j = i + 1 to num - 1 do
             let vj, tj = arr.(j) in
             let try_phase p1 p2 =
               let li = Aig.lit_of vi p1 and lj = Aig.lit_of vj p2 in
               (match Tt.and_match ~na:p1 ti ~nb:p2 tj root_tt with
               | 0 -> found := Some (`And, li, lj, false)
               | 1 -> found := Some (`And, li, lj, true)
               | _ ->
                 if Tt.xor_equal ~na:p1 ti ~nb:p2 tj root_tt then
                   found := Some (`Xor, li, lj, false));
               if !found <> None then raise Exit
             in
             try_phase false false;
             try_phase false true;
             try_phase true false;
             try_phase true true
           done
         done
       with Exit -> ());
      (match !found with
      | None -> 0
      | Some (gate, li, lj, compl) ->
        if Sys.getenv_opt "SBM_DEBUG_RESUB" <> None then
          Printf.eprintf "resub commit: root=%d gate=%s li=%d lj=%d compl=%b\n%!" root
            (match gate with `And -> "and" | `Xor -> "xor")
            li lj compl;
        let lit =
          match gate with
          | `And -> Aig.band aig li lj
          | `Xor -> Aig.bxor aig li lj
        in
        commit (if compl then Aig.lnot lit else lit))
  end

let run_node ~zero_gain ~max_leaves ~max_divisors aig v =
  if Aig.is_and aig v then resub_node aig ~zero_gain ~max_leaves ~max_divisors v
  else 0

let run ?(zero_gain = false) ?(max_leaves = 8) ?(max_divisors = 40) aig =
  let order = Aig.topo aig in
  let total = ref 0 in
  Array.iter
    (fun v ->
      if Aig.is_and aig v then
        total := !total + resub_node aig ~zero_gain ~max_leaves ~max_divisors v)
    order;
  !total
