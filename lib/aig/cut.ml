type cut = { leaves : int array; tt : int64 }

let tt_mask m = if m >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl m)) 1L

let var_pattern = [|
  0xAAAAAAAAAAAAAAAAL;
  0xCCCCCCCCCCCCCCCCL;
  0xF0F0F0F0F0F0F0F0L;
  0xFF00FF00FF00FF00L;
  0xFFFF0000FFFF0000L;
  0xFFFFFFFF00000000L;
|]

let tt_var m j =
  if j < 0 || j >= m || m > 6 then invalid_arg "Cut.tt_var";
  Int64.logand var_pattern.(j) (tt_mask m)

let stretch tt leaves super =
  let m = Array.length leaves in
  let m' = Array.length super in
  if m = m' then tt
  else begin
    let r = ref 0L in
    for idx = 0 to (1 lsl m') - 1 do
      let a = ref 0 in
      let j = ref 0 in
      for i = 0 to m' - 1 do
        if !j < m && leaves.(!j) = super.(i) then begin
          if (idx lsr i) land 1 = 1 then a := !a lor (1 lsl !j);
          incr j
        end
      done;
      if Int64.logand (Int64.shift_right_logical tt !a) 1L = 1L then
        r := Int64.logor !r (Int64.shift_left 1L idx)
    done;
    !r
  end

(* Sorted-array union; None if the union exceeds k. *)
let merge_leaves k a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make k 0 in
  let rec go i j n =
    if n > k then None
    else if i = la && j = lb then Some (Array.sub out 0 n)
    else if n = k then None
    else if i = la then (out.(n) <- b.(j); go i (j + 1) (n + 1))
    else if j = lb then (out.(n) <- a.(i); go (i + 1) j (n + 1))
    else if a.(i) = b.(j) then (out.(n) <- a.(i); go (i + 1) (j + 1) (n + 1))
    else if a.(i) < b.(j) then (out.(n) <- a.(i); go (i + 1) j (n + 1))
    else (out.(n) <- b.(j); go i (j + 1) (n + 1))
  in
  go 0 0 0

let cut_compare c1 c2 =
  let l1 = c1.leaves and l2 = c2.leaves in
  let n1 = Array.length l1 and n2 = Array.length l2 in
  if n1 <> n2 then Stdlib.compare n1 n2
  else begin
    (* Lexicographic on the sorted leaf ids, hand-rolled: this runs
       under List.sort_uniq for every enumerated cut. *)
    let rec go i =
      if i = n1 then 0
      else
        let a = Array.unsafe_get l1 i and b = Array.unsafe_get l2 i in
        if a <> b then Stdlib.compare (a : int) b else go (i + 1)
    in
    go 0
  end

(* c1 dominates c2 if leaves(c1) is a subset of leaves(c2). *)
let dominates c1 c2 =
  let l1 = c1.leaves and l2 = c2.leaves in
  let n1 = Array.length l1 and n2 = Array.length l2 in
  n1 <= n2
  &&
  let rec go i j =
    if i = n1 then true
    else if j = n2 then false
    else if l1.(i) = l2.(j) then go (i + 1) (j + 1)
    else if l1.(i) > l2.(j) then go i (j + 1)
    else false
  in
  go 0 0

let filter_dominated cuts =
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
      if List.exists (fun k -> dominates k c) kept then go kept rest
      else go (c :: List.filter (fun k -> not (dominates c k)) kept) rest
  in
  go [] cuts

let enumerate aig ~k ~max_cuts =
  if k < 2 || k > 6 then invalid_arg "Cut.enumerate: k must be in [2,6]";
  let sets = Array.make (Aig.num_nodes aig) [] in
  let trivial v = { leaves = [| v |]; tt = tt_var 1 0 } in
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_input aig v then sets.(v) <- [ trivial v ]
      else if Aig.is_and aig v then begin
        let f0 = Aig.fanin0 aig v and f1 = Aig.fanin1 aig v in
        let v0 = Aig.node_of f0 and v1 = Aig.node_of f1 in
        let cuts0 = if v0 = 0 then [ { leaves = [||]; tt = 0L } ] else sets.(v0) in
        let cuts1 = if v1 = 0 then [ { leaves = [||]; tt = 0L } ] else sets.(v1) in
        let results = ref [] in
        List.iter
          (fun c0 ->
            List.iter
              (fun c1 ->
                match merge_leaves k c0.leaves c1.leaves with
                | None -> ()
                | Some leaves ->
                  let m = Array.length leaves in
                  let t0 = stretch c0.tt c0.leaves leaves in
                  let t1 = stretch c1.tt c1.leaves leaves in
                  let t0 = if Aig.is_compl f0 then Int64.lognot t0 else t0 in
                  let t1 = if Aig.is_compl f1 then Int64.lognot t1 else t1 in
                  let tt = Int64.logand (Int64.logand t0 t1) (tt_mask m) in
                  results := { leaves; tt } :: !results)
              cuts1)
          cuts0;
        let cuts = List.sort_uniq cut_compare !results in
        let cuts = filter_dominated cuts in
        let cuts =
          let rec take n = function
            | [] -> []
            | _ when n = 0 -> []
            | c :: rest -> c :: take (n - 1) rest
          in
          take max_cuts cuts
        in
        sets.(v) <- trivial v :: cuts
      end)
    order;
  sets

let local aig root ~k ~max_cuts ~depth =
  if k < 2 || k > 6 then invalid_arg "Cut.local: k must be in [2,6]";
  let memo = Hashtbl.create 64 in
  let trivial v = [ { leaves = [| v |]; tt = tt_var 1 0 } ] in
  let rec cuts_of v d =
    match Hashtbl.find_opt memo v with
    | Some cs -> cs
    | None ->
      let cs =
        if v = 0 then [ { leaves = [||]; tt = 0L } ]
        else if d = 0 || not (Aig.is_and aig v) then trivial v
        else begin
          let f0 = Aig.fanin0 aig v and f1 = Aig.fanin1 aig v in
          let cuts0 = cuts_of (Aig.node_of f0) (d - 1) in
          let cuts1 = cuts_of (Aig.node_of f1) (d - 1) in
          let results = ref [] in
          List.iter
            (fun c0 ->
              List.iter
                (fun c1 ->
                  match merge_leaves k c0.leaves c1.leaves with
                  | None -> ()
                  | Some leaves ->
                    let m = Array.length leaves in
                    let t0 = stretch c0.tt c0.leaves leaves in
                    let t1 = stretch c1.tt c1.leaves leaves in
                    let t0 = if Aig.is_compl f0 then Int64.lognot t0 else t0 in
                    let t1 = if Aig.is_compl f1 then Int64.lognot t1 else t1 in
                    let tt = Int64.logand (Int64.logand t0 t1) (tt_mask m) in
                    results := { leaves; tt } :: !results)
                cuts1)
            cuts0;
          let cs = filter_dominated (List.sort_uniq cut_compare !results) in
          let rec take n = function
            | [] -> []
            | _ when n = 0 -> []
            | c :: rest -> c :: take (n - 1) rest
          in
          let cs = take max_cuts cs in
          if List.exists (fun c -> Array.length c.leaves = 1) cs then cs
          else trivial v @ cs
        end
      in
      Hashtbl.add memo v cs;
      cs
  in
  cuts_of root depth

let cut_tt_full c =
  Sbm_truthtable.Tt.of_word (Array.length c.leaves) c.tt
