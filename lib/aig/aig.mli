(** And-Inverter Graphs with structural hashing.

    The AIG is the common interchange format of the SBM flow (paper,
    Section V-A: "after each transformation, the logic network is
    translated into an AIG in order to have a consistent interface and
    costing"). This implementation keeps the invariants ABC-style:

    - every AND node is structurally hashed (no two live ANDs share the
      same ordered fanin pair);
    - constant and single-level simplifications are applied on
      construction ([a & a = a], [a & ~a = 0], [a & 1 = a], ...);
    - reference counts and fanout lists are maintained incrementally,
      enabling exact Maximum Fan-out Free Cone (MFFC, ref. [12]) sizes
      and exact gain accounting for optimization moves;
    - {!replace} substitutes a node by an arbitrary literal and
      propagates structural re-hashing through the fanout cone,
      merging nodes that become structurally identical.

    Literals encode a node id and a complement attribute as
    [2 * id + c]; node 0 is the constant-false node, so literal 0 is
    constant false and literal 1 constant true. *)

type t

type lit = int
(** [2 * node + complement]. *)

(** {1 Literals} *)

val lit_of : int -> bool -> lit
val node_of : lit -> int
val is_compl : lit -> bool
val lnot : lit -> lit

(** [lpos l] is [l] with the complement attribute cleared. *)
val lpos : lit -> lit

val const0 : lit
val const1 : lit

(** {1 Provenance}

    Every node carries an origin tag: which scripted pass (and which
    kind of move inside it) created it. Tags are interned per AIG —
    stamping a node is one array write — and survive {!copy},
    {!compact} and engine rebuilds (see {!begin_rebuild}). Attribution
    reporters group the final network's live nodes by tag. *)

module Origin : sig
  (** The move kind, following the paper's engine taxonomy. *)
  type kind =
    | Seed  (** present in the input network *)
    | Rewrite
    | Refactor
    | Resub
    | Balance
    | Diff  (** Boolean-difference resubstitution *)
    | Mspf  (** MSPF don't-care substitution *)
    | Kernel  (** heterogeneous eliminate / kernel extraction *)
    | Sweep  (** SAT sweeping / redundancy removal *)
    | Other

  type t = { pass : string; kind : kind }

  (** The default tag: nodes of the seed network. *)
  val seed : t

  val make : pass:string -> kind -> t
  val kind_to_string : kind -> string
  val kind_of_string : string -> kind option
  val pp : Format.formatter -> t -> unit
end

(** [set_origin aig o] makes [o] the ambient origin: every node
    allocated from now on is stamped with it. Flow scripts set this at
    each pass boundary; engines set a default only when the ambient
    origin is still {!Origin.seed} (standalone use). *)
val set_origin : t -> Origin.t -> unit

val current_origin : t -> Origin.t

(** [node_origin aig v] is the tag of node [v]. *)
val node_origin : t -> int -> Origin.t

(** [set_node_origin aig v o] re-stamps node [v] (rebuilds adopting
    per-node tags from a source network). *)
val set_node_origin : t -> int -> Origin.t -> unit

(** [note_created aig o n] adds [n] to origin [o]'s created count.
    Rebuilding engines use it to credit genuinely new logic built
    while creation counting is suspended (see {!begin_rebuild}). *)
val note_created : t -> Origin.t -> int -> unit

(** [begin_rebuild fresh ~from] prepares [fresh] (a newly created AIG)
    to be rebuilt from [from]: the interned origin table and created
    counts are carried over and creation counting is suspended, so the
    reconstruction adopts tags instead of inflating churn statistics.
    [end_rebuild] re-enables counting. {!compact} does this
    internally; {!Balance.run} and SOP round-trips use it directly. *)
val begin_rebuild : t -> from:t -> unit

val end_rebuild : t -> unit

(** [origin_stats aig] lists every origin with activity as
    [(origin, created, live)]: [created] counts AND constructions ever
    performed under the tag (speculative candidates included), [live]
    the reachable live ANDs currently carrying it. The [live] column
    sums to [size aig]. [live] can exceed [created] when a rebuild
    (e.g. SOP elimination) expands a pass's cone in place. *)
val origin_stats : t -> (Origin.t * int * int) list

(** {1 Construction} *)

(** [create ()] is an empty AIG (constant node only). *)
val create : ?expected:int -> unit -> t

(** [copy aig] is a deep, independent copy. O(live): per-node arrays
    are copied only up to the allocated prefix, adjacency arenas are
    copied compacted, and the append-only origin intern tables are
    shared copy-on-write (the first new origin interned on either side
    takes a private copy). *)
val copy : t -> t

(** {1 Arena maintenance}

    The fanout and output-use side tables are packed CSR arenas
    (DESIGN.md §16): many small int lists in one shared buffer. A list
    that outgrows its slot relocates to the buffer tail and leaks its
    old slot until the next compaction. *)

(** [compact_arenas aig] repacks both adjacency arenas, reclaiming
    leaked slots. Contents and order are unchanged — invisible to all
    readers. Flow scripts call it at pass boundaries. *)
val compact_arenas : t -> unit

(** [arena_capacity_words aig] is the allocated footprint (in words)
    of both adjacency arena buffers; [arena_live_words aig] the words
    actually holding list elements. Their ratio feeds the
    [aig.arena_live_pct] gauge. *)
val arena_capacity_words : t -> int

val arena_live_words : t -> int

(** [add_input aig] appends a primary input and returns its literal. *)
val add_input : t -> lit

(** [band aig a b] returns the literal of [a AND b], reusing structure
    through the strash table and applying constant folding. *)
val band : t -> lit -> lit -> lit

(** Derived connectives built from {!band}. [bxor] costs up to 3 AND
    nodes, [bmux] up to 3. *)
val bor : t -> lit -> lit -> lit
val bxor : t -> lit -> lit -> lit
val bxnor : t -> lit -> lit -> lit
val bmux : t -> lit -> lit -> lit -> lit
(** [bmux aig sel t e] is [sel ? t : e]. *)

val band_list : t -> lit list -> lit
val bor_list : t -> lit list -> lit

(** [add_output aig l] registers a primary output; returns its index. *)
val add_output : t -> lit -> int

(** [set_output aig i l] redirects output [i] to literal [l]. *)
val set_output : t -> int -> lit -> unit

(** {1 Inspection} *)

val num_inputs : t -> int
val num_outputs : t -> int

(** [num_nodes aig] counts all allocated node slots (including dead
    ones); an upper bound for per-node arrays. *)
val num_nodes : t -> int

(** [size aig] is the number of live AND nodes reachable from the
    outputs — the paper's "size of the network". *)
val size : t -> int

(** [fold_hash aig] is a canonical 64-bit structural digest of the
    live cone: a bottom-up fold from the outputs in which every node
    hashes from its fanins' hashes (never from node ids), the two
    fanin hashes combine smallest-first, and a complemented edge
    perturbs the fanin hash with a fixed mask. The digest is invariant
    under {!copy}, {!compact}, and dead-node garbage, and changes
    (with overwhelming probability) under any functional edit to a
    live gate. It is the structure component of the determinism audit
    trail (DESIGN.md §15). *)
val fold_hash : t -> int64

val input_lit : t -> int -> lit
val output_lit : t -> int -> lit
val outputs : t -> lit array

val is_const : t -> int -> bool
val is_input : t -> int -> bool
val is_and : t -> int -> bool
val is_dead : t -> int -> bool

(** [input_index aig n] is the position of PI node [n]. *)
val input_index : t -> int -> int

val fanin0 : t -> int -> lit
val fanin1 : t -> int -> lit

(** [nref aig n] is the number of live references to node [n] (fanin
    references from live ANDs plus output references). *)
val nref : t -> int -> int

(** [fanout_nodes aig n] is the list of live AND nodes referencing
    [n] (each listed once even if both fanins point at [n]). *)
val fanout_nodes : t -> int -> int list

(** {1 Orderings and cones} *)

(** [topo aig] is the array of live node ids (inputs and ANDs) in a
    topological order (fanins before fanouts). *)
val topo : t -> int array

(** [levels aig] is a per-node-id level map (inputs at 0); dead nodes
    map to -1. *)
val levels : t -> int array

(** [depth aig] is the maximum output level. *)
val depth : t -> int

(** [in_tfi aig ~node ~root] is true if [node] lies in the transitive
    fanin cone of [root] (inclusive). *)
val in_tfi : t -> node:int -> root:int -> bool

(** [mffc_size aig n] is the size of the maximum fanout-free cone of
    AND node [n]: the count of AND nodes that die if [n] is removed. *)
val mffc_size : t -> int -> int

(** [support aig n] is the list of input node ids in the TFI of [n]. *)
val support : t -> int -> int list

(** {1 Surgery} *)

(** [replace aig n l] redirects every reference to node [n] (fanins
    and outputs) to literal [l], then deletes [n]'s MFFC. Fanout nodes
    whose fanin pair becomes trivial or structurally equal to an
    existing node are merged recursively. The caller must guarantee
    [node_of l] is not in the TFO of [n] (checked with [in_tfi] on
    demand); violating this would create a cycle.
    @raise Invalid_argument if [n] is not a live AND node or if the
    replacement is self-referential. *)
val replace : t -> int -> lit -> unit

(** [delete_dangling aig n] recursively deletes AND node [n] if it has
    no references, releasing its cone. Safe to call on live nodes (a
    no-op). Used to discard speculatively built logic. *)
val delete_dangling : t -> int -> unit

(** [pin aig l] adds an artificial reference to [l]'s node, protecting
    a speculative candidate cone from {!delete_dangling} of a sibling
    candidate that shares structure with it. [unpin] releases the
    reference and collects the cone if it became unreferenced. Pins
    must be balanced before {!check} or {!replace} on the node. *)
val pin : t -> lit -> unit

(** [unpin ?collect aig l] releases a pin. With [collect = false] the
    cone is left dangling even at zero references (the normal state of
    a speculative candidate about to be committed or measured);
    default [true] collects it. *)
val unpin : ?collect:bool -> t -> lit -> unit

(** [compact aig] rebuilds the AIG keeping only live nodes reachable
    from the outputs, in topological order. Returns the new AIG and a
    map from old literals to new literals (query with
    [map old_lit]). *)
val compact : t -> t * (lit -> lit)

(** {1 Gain accounting}

    Exact bookkeeping for "gain >= 0" moves (paper, Section IV-A,
    footnote 1). *)

(** [mark_created aig] returns a checkpoint; [fresh_since aig cp] is
    the number of AND nodes allocated after the checkpoint that are
    currently referenced or dangling-but-allocated. *)
type checkpoint

val mark_created : t -> checkpoint
val fresh_since : t -> checkpoint -> int

(** [gain_of_replacement aig ~root ~candidate] computes the exact size
    change (old size - new size, positive = improvement) that
    {!replace}[ aig root candidate] would produce, without performing
    it. Accounts for sharing between the candidate cone and the MFFC
    of [root]. The candidate must already be built. *)
val gain_of_replacement : t -> root:int -> candidate:lit -> int

(** {1 Integrity} *)

(** [check aig] verifies structural invariants (refcount consistency,
    strash consistency, acyclicity); raises [Failure] with a
    description on violation. Used by the test-suite. *)
val check : t -> unit

(** {1 Pretty-printing} *)

val pp_stats : Format.formatter -> t -> unit
