(** Reduced Ordered Binary Decision Diagrams.

    A from-scratch BDD package in the style of Brace-Rudell-Bryant
    (DAC'90): hash-consed unique table, memoized recursive operations,
    and a configurable node budget. The budget reproduces the paper's
    memory-limit bail-out (Section III-C and IV-C): when an operation
    would allocate past the budget it raises {!Limit}, and callers
    treat the node as having a BDD of size 0 (skip it).

    Managers are cheap; the SBM engines allocate one per partition and
    drop it afterwards, mirroring the paper's per-iteration freeing of
    difference BDDs. Variable order is the identity (the paper performs
    no reordering on partition-sized BDDs). *)

type man
(** A BDD manager: unique table, computed cache, node budget. *)

type t = int
(** A BDD node handle, only meaningful with its manager. *)

exception Limit
(** Raised when the manager's node budget is exhausted. *)

(** [create ?node_limit ()] is a fresh manager. [node_limit] caps the
    total number of allocated nodes (default: unlimited). *)
val create : ?node_limit:int -> unit -> man

(** [num_nodes man] is the number of nodes allocated so far (including
    the two terminals). *)
val num_nodes : man -> int

(** Cumulative manager telemetry, consumed by the [Sbm_obs] spans of
    the Boolean engines. [unique_hits]/[unique_misses] count
    unique-table lookups in [mk] (a miss allocates a node);
    [cache_hits]/[cache_misses] count computed-cache lookups across
    all memoized operations. [unique_capacity] is the current
    open-addressing table size (load factor = (nodes-2) /
    unique_capacity), [cache_slots]/[cache_occupied] the computed
    cache's slot count and the number of slots holding an entry. *)
type stats = {
  nodes : int;
  unique_hits : int;
  unique_misses : int;
  cache_hits : int;
  cache_misses : int;
  unique_capacity : int;
  cache_slots : int;
  cache_occupied : int;
}

(** [stats man] reads the counters (cheap; no reset). *)
val stats : man -> stats

(** Terminals. *)
val zero : man -> t
val one : man -> t

(** [ithvar man i] is the BDD of variable [i] (allocated on demand). *)
val ithvar : man -> int -> t

(** Connectives. All may raise {!Limit}. *)
val mnot : man -> t -> t
val mand : man -> t -> t -> t
val mor : man -> t -> t -> t
val mxor : man -> t -> t -> t
val mxnor : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

(** Predicates. *)
val is_zero : man -> t -> bool
val is_one : man -> t -> bool

(** [var man b] is the top variable of internal node [b]. *)
val var : man -> t -> int

(** [low man b] / [high man b]: cofactor children of an internal
    node. *)
val low : man -> t -> t
val high : man -> t -> t

(** [restrict man b i v] fixes variable [i] to the constant [v]. *)
val restrict : man -> t -> int -> bool -> t

(** [compose man b i g] substitutes [g] for variable [i] in [b]. *)
val compose : man -> t -> int -> t -> t

(** [exists man b vars] existentially quantifies the listed
    variables. *)
val exists : man -> t -> int list -> t

(** [support man b] is the ascending list of variables [b] depends
    on. *)
val support : man -> t -> int list

(** [size man b] is the number of internal nodes reachable from [b]
    (the paper's BDD-size filter operates on this). *)
val size : man -> t -> int

(** [eval_word man b ~leaf] evaluates [b] bit-parallel over 64
    assignments at once: [leaf v] supplies the 64-bit value word of
    variable [v], and bit [i] of the result is [b] evaluated on the
    [i]th bits of the leaf words. Pure graph walk — never allocates
    BDD nodes, so it cannot raise {!Limit}. Drives the simulation
    prefilter's care-set masking. *)
val eval_word : man -> t -> leaf:(int -> int64) -> int64

(** [count_sat man b ~nvars] is the number of satisfying assignments
    over [nvars] variables, as a float (avoids overflow on wide
    supports). *)
val count_sat : man -> t -> nvars:int -> float

(** [eval man b assignment] evaluates [b]; bit [i] of [assignment] is
    variable [i]. *)
val eval : man -> t -> int -> bool

(** [any_sat man b] is one satisfying assignment as an association
    list [(var, value)] over the support, or [None] if [b] is zero. *)
val any_sat : man -> t -> (int * bool) list option

(** [of_tt man tt] converts a truth table into a BDD on the same
    variables; [to_tt man b ~nvars] converts back ([nvars] must be at
    most {!Sbm_truthtable.Tt.max_vars} and cover the support). *)
val of_tt : man -> Sbm_truthtable.Tt.t -> t
val to_tt : man -> t -> nvars:int -> Sbm_truthtable.Tt.t

(** [clear_cache man] drops the computed cache (keeps nodes). *)
val clear_cache : man -> unit
