type t = int

exception Limit

(* Node 0 = terminal false, node 1 = terminal true. Internal nodes
   store (var, low, high) in parallel growable arrays; the unique table
   guarantees strong canonicity (paper Section IV-C relies on it for
   cheap global queries).

   Both hot-path tables are flat int arrays, so a probe allocates
   nothing and touches at most a couple of cache lines:

   - The unique table is open-addressing with linear probing over a
     power-of-two array of node ids (0 = empty; terminals are never
     entered). Every internal node is registered, so the load factor
     is (n-2)/capacity and the table doubles at 3/4 load.

   - The computed cache is direct-mapped: 4 words per slot
     [tag; operand2; operand3; result] with the opcode packed into the
     tag alongside the first operand. A colliding entry is simply
     overwritten, which bounds the cache by construction (the previous
     Hashtbl-based cache grew without limit and even accumulated
     duplicate bindings). Eviction is invisible to callers: a
     recomputation replays [mk] on triples that already exist, hits
     the unique table, and returns the same node ids, so results --
     and the allocation order of genuinely new nodes -- are
     bit-identical to an unbounded cache. *)
type man = {
  mutable var_of : int array;
  mutable low_of : int array;
  mutable high_of : int array;
  mutable n : int;
  mutable unique : int array;
  mutable unique_mask : int;
  mutable cache : int array;
  mutable cache_mask : int;
  node_limit : int;
  (* Telemetry (Sbm_obs): unique-table and computed-cache traffic.
     Plain increments so the hot paths stay hot; engines read them
     once per partition via [stats]. *)
  mutable unique_hits : int;
  mutable unique_misses : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  (* Occupancy of the computed cache: slots with a non-zero tag. A
     valid tag is never 0 (the first operand is an internal node, so
     >= 2), so stores into an empty slot are detectable in O(1). *)
  mutable cache_occupied : int;
}

type stats = {
  nodes : int;
  unique_hits : int;
  unique_misses : int;
  cache_hits : int;
  cache_misses : int;
  unique_capacity : int;
  cache_slots : int;
  cache_occupied : int;
}

let terminal_var = max_int

(* Slots in the computed cache stop doubling here (slots * 4 words);
   past this point collisions recompute, which is still cheap. *)
let max_cache_slots = 1 lsl 19

let create ?(node_limit = max_int) () =
  let cap = 1024 in
  {
    var_of = Array.make cap terminal_var;
    low_of = Array.make cap (-1);
    high_of = Array.make cap (-1);
    n = 2;
    unique = Array.make 1024 0;
    unique_mask = 1023;
    cache = Array.make (1024 * 4) 0;
    cache_mask = 1023;
    node_limit;
    unique_hits = 0;
    unique_misses = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_occupied = 0;
  }

let stats man =
  {
    nodes = man.n;
    unique_hits = man.unique_hits;
    unique_misses = man.unique_misses;
    cache_hits = man.cache_hits;
    cache_misses = man.cache_misses;
    unique_capacity = man.unique_mask + 1;
    cache_slots = man.cache_mask + 1;
    cache_occupied = man.cache_occupied;
  }

let num_nodes man = man.n
let zero _ = 0
let one _ = 1
let is_zero _ b = b = 0
let is_one _ b = b = 1

let var man b =
  if b < 2 then invalid_arg "Bdd.var: terminal";
  man.var_of.(b)

let low man b =
  if b < 2 then invalid_arg "Bdd.low: terminal";
  man.low_of.(b)

let high man b =
  if b < 2 then invalid_arg "Bdd.high: terminal";
  man.high_of.(b)

let grow man =
  let cap = Array.length man.var_of in
  let ncap = 2 * cap in
  let extend a fill =
    let a' = Array.make ncap fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  man.var_of <- extend man.var_of terminal_var;
  man.low_of <- extend man.low_of (-1);
  man.high_of <- extend man.high_of (-1)

let hash3 v lo hi =
  let h = (v * 0x9e3779b9) + (lo * 0x85ebca6b) + (hi * 0xc2b2ae35) in
  h lxor (h lsr 17)

(* Probe the unique table for (v, lo, hi): a node id (>= 2) when
   present, [-slot - 1] of the first empty slot otherwise. *)
let rec unique_probe man v lo hi i =
  let node = man.unique.(i) in
  if node = 0 then -i - 1
  else if
    man.var_of.(node) = v && man.low_of.(node) = lo && man.high_of.(node) = hi
  then node
  else unique_probe man v lo hi ((i + 1) land man.unique_mask)

let unique_insert tbl mask man node =
  let i = ref (hash3 man.var_of.(node) man.low_of.(node) man.high_of.(node)
               land mask)
  in
  while tbl.(!i) <> 0 do
    i := (!i + 1) land mask
  done;
  tbl.(!i) <- node

let unique_grow man =
  let ncap = 2 * Array.length man.unique in
  let tbl = Array.make ncap 0 in
  let mask = ncap - 1 in
  for node = 2 to man.n - 1 do
    unique_insert tbl mask man node
  done;
  man.unique <- tbl;
  man.unique_mask <- mask;
  (* Scale the computed cache with the node population; dropping the
     old entries is safe (see the cache invariant above). *)
  let cache_slots = man.cache_mask + 1 in
  if cache_slots < ncap && cache_slots < max_cache_slots then begin
    man.cache <- Array.make (cache_slots * 2 * 4) 0;
    man.cache_mask <- (cache_slots * 2) - 1;
    man.cache_occupied <- 0
  end

let mk man v lo hi =
  if lo = hi then lo
  else begin
    let r = unique_probe man v lo hi (hash3 v lo hi land man.unique_mask) in
    if r >= 0 then begin
      man.unique_hits <- man.unique_hits + 1;
      r
    end
    else begin
      man.unique_misses <- man.unique_misses + 1;
      if man.n >= man.node_limit then raise Limit;
      if man.n >= Array.length man.var_of then grow man;
      let node = man.n in
      man.n <- node + 1;
      man.var_of.(node) <- v;
      man.low_of.(node) <- lo;
      man.high_of.(node) <- hi;
      man.unique.(-r - 1) <- node;
      if (man.n - 2) * 4 > (man.unique_mask + 1) * 3 then unique_grow man;
      node
    end
  end

let ithvar man i =
  if i < 0 then invalid_arg "Bdd.ithvar";
  mk man i 0 1

let topvar man b = if b < 2 then terminal_var else man.var_of.(b)

(* Opcodes for the computed cache. The tag word packs the opcode with
   the first operand: tag = (a lsl 20) lor op. The first operand is
   always an internal node (>= 2), so a valid tag is non-zero and 0
   marks an empty slot. Opcodes stay well under 2^20
   (op_compose_base + var for the largest), and node ids under 2^42
   keep the shift exact on 63-bit ints. *)
let op_and = 0
let op_xor = 1
let op_ite = 3
let op_exists = 4
let op_restrict0 = 5
let op_restrict1 = 6
let op_compose_base = 16 (* op_compose_base + var *)

let cache_slot man op a b c =
  let h = (a * 0x9e3779b9) lxor (b * 0x85ebca6b) lxor (c * 0xc2b2ae35) lxor op in
  let h = h lxor (h lsr 15) in
  (h land man.cache_mask) lsl 2

(* The cached result (>= 0) or -1 on a miss. *)
let cache_find man op a b c =
  let i = cache_slot man op a b c in
  let cache = man.cache in
  if cache.(i) = (a lsl 20) lor op && cache.(i + 1) = b && cache.(i + 2) = c
  then begin
    man.cache_hits <- man.cache_hits + 1;
    cache.(i + 3)
  end
  else begin
    man.cache_misses <- man.cache_misses + 1;
    -1
  end

let cache_store man op a b c r =
  (* Recompute the slot: recursive calls may have grown the cache. *)
  let i = cache_slot man op a b c in
  let cache = man.cache in
  if cache.(i) = 0 then man.cache_occupied <- man.cache_occupied + 1;
  cache.(i) <- (a lsl 20) lor op;
  cache.(i + 1) <- b;
  cache.(i + 2) <- c;
  cache.(i + 3) <- r

let rec mand man a b =
  if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else if a = b then a
  else begin
    let a, b = if a < b then (a, b) else (b, a) in
    let r = cache_find man op_and a b 0 in
    if r >= 0 then r
    else begin
      let va = topvar man a and vb = topvar man b in
      let v = min va vb in
      let a0, a1 = if va = v then (man.low_of.(a), man.high_of.(a)) else (a, a) in
      let b0, b1 = if vb = v then (man.low_of.(b), man.high_of.(b)) else (b, b) in
      let lo = mand man a0 b0 in
      let hi = mand man a1 b1 in
      let r = mk man v lo hi in
      cache_store man op_and a b 0 r;
      r
    end
  end

let rec mxor man a b =
  if a = b then 0
  else if a = 0 then b
  else if b = 0 then a
  else begin
    let a, b = if a < b then (a, b) else (b, a) in
    let r = cache_find man op_xor a b 0 in
    if r >= 0 then r
    else begin
      let va = topvar man a and vb = topvar man b in
      let v = min va vb in
      let a0, a1 = if va = v then (man.low_of.(a), man.high_of.(a)) else (a, a) in
      let b0, b1 = if vb = v then (man.low_of.(b), man.high_of.(b)) else (b, b) in
      let lo = mxor man a0 b0 in
      let hi = mxor man a1 b1 in
      let r = mk man v lo hi in
      cache_store man op_xor a b 0 r;
      r
    end
  end

let mnot man a = mxor man a 1
let mor man a b = mnot man (mand man (mnot man a) (mnot man b))
let mxnor man a b = mnot man (mxor man a b)

let rec ite man c a b =
  if c = 1 then a
  else if c = 0 then b
  else if a = b then a
  else if a = 1 && b = 0 then c
  else begin
    let r = cache_find man op_ite c a b in
    if r >= 0 then r
    else begin
      let v = min (topvar man c) (min (topvar man a) (topvar man b)) in
      let cof x side =
        if topvar man x = v then (if side then man.high_of.(x) else man.low_of.(x))
        else x
      in
      let lo = ite man (cof c false) (cof a false) (cof b false) in
      let hi = ite man (cof c true) (cof a true) (cof b true) in
      let r = mk man v lo hi in
      cache_store man op_ite c a b r;
      r
    end
  end

let restrict man b i v =
  let op = if v then op_restrict1 else op_restrict0 in
  let rec go b =
    if b < 2 then b
    else begin
      let bv = man.var_of.(b) in
      if bv > i then b
      else if bv = i then (if v then man.high_of.(b) else man.low_of.(b))
      else begin
        let r = cache_find man op b i 0 in
        if r >= 0 then r
        else begin
          let r = mk man bv (go man.low_of.(b)) (go man.high_of.(b)) in
          cache_store man op b i 0 r;
          r
        end
      end
    end
  in
  go b

let compose man b i g =
  let op = op_compose_base + i in
  let rec go b =
    if b < 2 then b
    else begin
      let bv = man.var_of.(b) in
      if bv > i then b
      else begin
        let r = cache_find man op b g 0 in
        if r >= 0 then r
        else begin
          let r =
            if bv = i then ite man g man.high_of.(b) man.low_of.(b)
            else begin
              let lo = go man.low_of.(b) in
              let hi = go man.high_of.(b) in
              (* The substituted children may have top variables above
                 [bv]; rebuild with ite on the variable. *)
              ite man (ithvar man bv) hi lo
            end
          in
          cache_store man op b g 0 r;
          r
        end
      end
    end
  in
  go b

let exists man b vars =
  let sorted = List.sort_uniq Stdlib.compare vars in
  let is_quantified v = List.mem v sorted in
  let vars_hash = Hashtbl.hash sorted in
  let rec go b =
    if b < 2 then b
    else begin
      let r = cache_find man op_exists b vars_hash 0 in
      if r >= 0 then r
      else begin
        let v = man.var_of.(b) in
        let lo = go man.low_of.(b) in
        let hi = go man.high_of.(b) in
        let r =
          if is_quantified v then mor man lo hi else ite man (ithvar man v) hi lo
        in
        cache_store man op_exists b vars_hash 0 r;
        r
      end
    end
  in
  go b

let iter_reachable man b f =
  let seen = Hashtbl.create 64 in
  let rec go b =
    if b >= 2 && not (Hashtbl.mem seen b) then begin
      Hashtbl.add seen b ();
      f b;
      go man.low_of.(b);
      go man.high_of.(b)
    end
  in
  go b

let support man b =
  let vars = Hashtbl.create 16 in
  iter_reachable man b (fun node -> Hashtbl.replace vars man.var_of.(node) ());
  List.sort Stdlib.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let size man b =
  let count = ref 0 in
  iter_reachable man b (fun _ -> incr count);
  !count

let eval_word man b ~leaf =
  let memo = Hashtbl.create 64 in
  let rec go b =
    if b = 0 then 0L
    else if b = 1 then -1L
    else
      match Hashtbl.find_opt memo b with
      | Some w -> w
      | None ->
        let v = leaf man.var_of.(b) in
        let w =
          Int64.logor
            (Int64.logand v (go man.high_of.(b)))
            (Int64.logand (Int64.lognot v) (go man.low_of.(b)))
        in
        Hashtbl.add memo b w;
        w
  in
  go b

let count_sat man b ~nvars =
  let memo = Hashtbl.create 64 in
  (* fraction of assignments under [b] *)
  let rec frac b =
    if b = 0 then 0.0
    else if b = 1 then 1.0
    else
      match Hashtbl.find_opt memo b with
      | Some f -> f
      | None ->
        let f = 0.5 *. (frac man.low_of.(b) +. frac man.high_of.(b)) in
        Hashtbl.add memo b f;
        f
  in
  frac b *. (2.0 ** float_of_int nvars)

let eval man b assignment =
  let rec go b =
    if b = 0 then false
    else if b = 1 then true
    else if (assignment lsr man.var_of.(b)) land 1 = 1 then go man.high_of.(b)
    else go man.low_of.(b)
  in
  go b

let any_sat man b =
  let rec go b acc =
    if b = 0 then None
    else if b = 1 then Some (List.rev acc)
    else begin
      let v = man.var_of.(b) in
      if man.high_of.(b) <> 0 then go man.high_of.(b) ((v, true) :: acc)
      else go man.low_of.(b) ((v, false) :: acc)
    end
  in
  go b []

let of_tt man tt =
  let n = Sbm_truthtable.Tt.num_vars tt in
  let memo = Hashtbl.create 64 in
  let rec build tt i =
    match Hashtbl.find_opt memo (tt, i) with
    | Some b -> b
    | None ->
      let b =
        if Sbm_truthtable.Tt.is_const0 tt then 0
        else if Sbm_truthtable.Tt.is_const1 tt then 1
        else begin
          assert (i < n);
          let lo = build (Sbm_truthtable.Tt.cofactor0 tt i) (i + 1) in
          let hi = build (Sbm_truthtable.Tt.cofactor1 tt i) (i + 1) in
          mk man i lo hi
        end
      in
      Hashtbl.add memo (tt, i) b;
      b
  in
  build tt 0

let to_tt man b ~nvars =
  let module Tt = Sbm_truthtable.Tt in
  let memo = Hashtbl.create 64 in
  let rec go b =
    if b = 0 then Tt.const0 nvars
    else if b = 1 then Tt.const1 nvars
    else
      match Hashtbl.find_opt memo b with
      | Some tt -> tt
      | None ->
        let v = man.var_of.(b) in
        if v >= nvars then invalid_arg "Bdd.to_tt: support exceeds nvars";
        let tt =
          Tt.ite (Tt.var nvars v) (go man.high_of.(b)) (go man.low_of.(b))
        in
        Hashtbl.add memo b tt;
        tt
  in
  go b

let clear_cache man =
  Array.fill man.cache 0 (Array.length man.cache) 0;
  man.cache_occupied <- 0
