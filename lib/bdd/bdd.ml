type t = int

exception Limit

(* Node 0 = terminal false, node 1 = terminal true. Internal nodes
   store (var, low, high) in parallel growable arrays; the unique table
   guarantees strong canonicity (paper Section IV-C relies on it for
   cheap global queries). *)
type man = {
  mutable var_of : int array;
  mutable low_of : int array;
  mutable high_of : int array;
  mutable n : int;
  unique : (int * int * int, int) Hashtbl.t;
  cache : (int * int * int * int, int) Hashtbl.t;
  node_limit : int;
  (* Telemetry (Sbm_obs): unique-table and computed-cache traffic.
     Plain increments so the hot paths stay hot; engines read them
     once per partition via [stats]. *)
  mutable unique_hits : int;
  mutable unique_misses : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

type stats = {
  nodes : int;
  unique_hits : int;
  unique_misses : int;
  cache_hits : int;
  cache_misses : int;
}

let terminal_var = max_int

let create ?(node_limit = max_int) () =
  let cap = 1024 in
  let man =
    {
      var_of = Array.make cap terminal_var;
      low_of = Array.make cap (-1);
      high_of = Array.make cap (-1);
      n = 2;
      unique = Hashtbl.create 4096;
      cache = Hashtbl.create 4096;
      node_limit;
      unique_hits = 0;
      unique_misses = 0;
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  man

let stats man =
  {
    nodes = man.n;
    unique_hits = man.unique_hits;
    unique_misses = man.unique_misses;
    cache_hits = man.cache_hits;
    cache_misses = man.cache_misses;
  }

let num_nodes man = man.n
let zero _ = 0
let one _ = 1
let is_zero _ b = b = 0
let is_one _ b = b = 1

let var man b =
  if b < 2 then invalid_arg "Bdd.var: terminal";
  man.var_of.(b)

let low man b =
  if b < 2 then invalid_arg "Bdd.low: terminal";
  man.low_of.(b)

let high man b =
  if b < 2 then invalid_arg "Bdd.high: terminal";
  man.high_of.(b)

let grow man =
  let cap = Array.length man.var_of in
  let ncap = 2 * cap in
  let extend a fill =
    let a' = Array.make ncap fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  man.var_of <- extend man.var_of terminal_var;
  man.low_of <- extend man.low_of (-1);
  man.high_of <- extend man.high_of (-1)

let mk man v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt man.unique (v, lo, hi) with
    | Some node ->
      man.unique_hits <- man.unique_hits + 1;
      node
    | None ->
      man.unique_misses <- man.unique_misses + 1;
      if man.n >= man.node_limit then raise Limit;
      if man.n >= Array.length man.var_of then grow man;
      let node = man.n in
      man.n <- node + 1;
      man.var_of.(node) <- v;
      man.low_of.(node) <- lo;
      man.high_of.(node) <- hi;
      Hashtbl.add man.unique (v, lo, hi) node;
      node

let ithvar man i =
  if i < 0 then invalid_arg "Bdd.ithvar";
  mk man i 0 1

let topvar man b = if b < 2 then terminal_var else man.var_of.(b)

let cache_find man key =
  match Hashtbl.find_opt man.cache key with
  | Some _ as hit ->
    man.cache_hits <- man.cache_hits + 1;
    hit
  | None ->
    man.cache_misses <- man.cache_misses + 1;
    None

(* Opcodes for the computed cache. *)
let op_and = 0
let op_xor = 1
let op_ite = 3
let op_exists = 4
let op_compose_base = 16 (* op_compose_base + var *)

let rec mand man a b =
  if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else if a = b then a
  else begin
    let a, b = if a < b then (a, b) else (b, a) in
    let key = (op_and, a, b, 0) in
    match cache_find man key with
    | Some r -> r
    | None ->
      let va = topvar man a and vb = topvar man b in
      let v = min va vb in
      let a0, a1 = if va = v then (man.low_of.(a), man.high_of.(a)) else (a, a) in
      let b0, b1 = if vb = v then (man.low_of.(b), man.high_of.(b)) else (b, b) in
      let lo = mand man a0 b0 in
      let hi = mand man a1 b1 in
      let r = mk man v lo hi in
      Hashtbl.add man.cache key r;
      r
  end

let rec mxor man a b =
  if a = b then 0
  else if a = 0 then b
  else if b = 0 then a
  else begin
    let a, b = if a < b then (a, b) else (b, a) in
    let key = (op_xor, a, b, 0) in
    match cache_find man key with
    | Some r -> r
    | None ->
      let va = topvar man a and vb = topvar man b in
      let v = min va vb in
      let a0, a1 = if va = v then (man.low_of.(a), man.high_of.(a)) else (a, a) in
      let b0, b1 = if vb = v then (man.low_of.(b), man.high_of.(b)) else (b, b) in
      let lo = mxor man a0 b0 in
      let hi = mxor man a1 b1 in
      let r = mk man v lo hi in
      Hashtbl.add man.cache key r;
      r
  end

let mnot man a = mxor man a 1
let mor man a b = mnot man (mand man (mnot man a) (mnot man b))
let mxnor man a b = mnot man (mxor man a b)

let rec ite man c a b =
  if c = 1 then a
  else if c = 0 then b
  else if a = b then a
  else if a = 1 && b = 0 then c
  else begin
    let key = (op_ite, c, a, b) in
    match cache_find man key with
    | Some r -> r
    | None ->
      let v = min (topvar man c) (min (topvar man a) (topvar man b)) in
      let cof x side =
        if topvar man x = v then (if side then man.high_of.(x) else man.low_of.(x))
        else x
      in
      let lo = ite man (cof c false) (cof a false) (cof b false) in
      let hi = ite man (cof c true) (cof a true) (cof b true) in
      let r = mk man v lo hi in
      Hashtbl.add man.cache key r;
      r
  end

let restrict man b i v =
  let rec go b =
    if b < 2 then b
    else begin
      let bv = man.var_of.(b) in
      if bv > i then b
      else if bv = i then (if v then man.high_of.(b) else man.low_of.(b))
      else begin
        let key = ((if v then 6 else 5), b, i, 0) in
        match cache_find man key with
        | Some r -> r
        | None ->
          let r = mk man bv (go man.low_of.(b)) (go man.high_of.(b)) in
          Hashtbl.add man.cache key r;
          r
      end
    end
  in
  go b

let compose man b i g =
  let rec go b =
    if b < 2 then b
    else begin
      let bv = man.var_of.(b) in
      if bv > i then b
      else begin
        let key = (op_compose_base + i, b, g, 0) in
        match cache_find man key with
        | Some r -> r
        | None ->
          let r =
            if bv = i then ite man g man.high_of.(b) man.low_of.(b)
            else begin
              let lo = go man.low_of.(b) in
              let hi = go man.high_of.(b) in
              (* The substituted children may have top variables above
                 [bv]; rebuild with ite on the variable. *)
              ite man (ithvar man bv) hi lo
            end
          in
          Hashtbl.add man.cache key r;
          r
      end
    end
  in
  go b

let exists man b vars =
  let sorted = List.sort_uniq Stdlib.compare vars in
  let is_quantified v = List.mem v sorted in
  let rec go b =
    if b < 2 then b
    else begin
      let key = (op_exists, b, Hashtbl.hash sorted, 0) in
      match cache_find man key with
      | Some r -> r
      | None ->
        let v = man.var_of.(b) in
        let lo = go man.low_of.(b) in
        let hi = go man.high_of.(b) in
        let r = if is_quantified v then mor man lo hi else ite man (ithvar man v) hi lo in
        Hashtbl.add man.cache key r;
        r
    end
  in
  go b

let iter_reachable man b f =
  let seen = Hashtbl.create 64 in
  let rec go b =
    if b >= 2 && not (Hashtbl.mem seen b) then begin
      Hashtbl.add seen b ();
      f b;
      go man.low_of.(b);
      go man.high_of.(b)
    end
  in
  go b

let support man b =
  let vars = Hashtbl.create 16 in
  iter_reachable man b (fun node -> Hashtbl.replace vars man.var_of.(node) ());
  List.sort Stdlib.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let size man b =
  let count = ref 0 in
  iter_reachable man b (fun _ -> incr count);
  !count

let count_sat man b ~nvars =
  let memo = Hashtbl.create 64 in
  (* fraction of assignments under [b] *)
  let rec frac b =
    if b = 0 then 0.0
    else if b = 1 then 1.0
    else
      match Hashtbl.find_opt memo b with
      | Some f -> f
      | None ->
        let f = 0.5 *. (frac man.low_of.(b) +. frac man.high_of.(b)) in
        Hashtbl.add memo b f;
        f
  in
  frac b *. (2.0 ** float_of_int nvars)

let eval man b assignment =
  let rec go b =
    if b = 0 then false
    else if b = 1 then true
    else if (assignment lsr man.var_of.(b)) land 1 = 1 then go man.high_of.(b)
    else go man.low_of.(b)
  in
  go b

let any_sat man b =
  let rec go b acc =
    if b = 0 then None
    else if b = 1 then Some (List.rev acc)
    else begin
      let v = man.var_of.(b) in
      if man.high_of.(b) <> 0 then go man.high_of.(b) ((v, true) :: acc)
      else go man.low_of.(b) ((v, false) :: acc)
    end
  in
  go b []

let of_tt man tt =
  let n = Sbm_truthtable.Tt.num_vars tt in
  let memo = Hashtbl.create 64 in
  let rec build tt i =
    match Hashtbl.find_opt memo (tt, i) with
    | Some b -> b
    | None ->
      let b =
        if Sbm_truthtable.Tt.is_const0 tt then 0
        else if Sbm_truthtable.Tt.is_const1 tt then 1
        else begin
          assert (i < n);
          let lo = build (Sbm_truthtable.Tt.cofactor0 tt i) (i + 1) in
          let hi = build (Sbm_truthtable.Tt.cofactor1 tt i) (i + 1) in
          mk man i lo hi
        end
      in
      Hashtbl.add memo (tt, i) b;
      b
  in
  build tt 0

let to_tt man b ~nvars =
  let module Tt = Sbm_truthtable.Tt in
  let memo = Hashtbl.create 64 in
  let rec go b =
    if b = 0 then Tt.const0 nvars
    else if b = 1 then Tt.const1 nvars
    else
      match Hashtbl.find_opt memo b with
      | Some tt -> tt
      | None ->
        let v = man.var_of.(b) in
        if v >= nvars then invalid_arg "Bdd.to_tt: support exceeds nvars";
        let tt =
          Tt.ite (Tt.var nvars v) (go man.high_of.(b)) (go man.low_of.(b))
        in
        Hashtbl.add memo b tt;
        tt
  in
  go b

let clear_cache man = Hashtbl.reset man.cache
