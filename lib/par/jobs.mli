(** Global worker-count setting for partition-parallel passes.

    Resolution order: an explicit {!set} (the [--jobs] CLI flag), then
    the [SBM_JOBS] environment variable, then 1 (sequential). *)

(** [set n] fixes the job count. Raises [Invalid_argument] if [n < 1]. *)
val set : int -> unit

(** [get ()] returns the effective job count (>= 1). *)
val get : unit -> int
