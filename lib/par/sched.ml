(* Deterministic snapshot/analyze/apply driver for partition engines.

   Partitions are processed in chunks. Each chunk is analyzed in
   parallel by [analyze] (workers operate on private snapshots of the
   host structure; the chunk boundary is a barrier, so every snapshot
   in a chunk sees all edits applied by earlier chunks). Results are
   then applied strictly in ascending partition index by [apply],
   which receives the dirty flag: [dirty = false] means no earlier
   partition of the chunk committed an edit, i.e. the worker's
   snapshot still equals the live structure and its conclusion can be
   merged as-is; [dirty = true] means the analysis is stale and the
   engine must redo the partition sequentially. [apply] returns
   whether it committed edits. *)

let run_ordered ?chunk pool parts ~analyze ~apply =
  let n = Array.length parts in
  let chunk =
    match chunk with Some c -> max 1 c | None -> max 1 (2 * Pool.jobs pool)
  in
  let i = ref 0 in
  while !i < n do
    let base = !i in
    let count = min chunk (n - base) in
    let results =
      Pool.run pool count (fun k -> analyze (base + k) parts.(base + k))
    in
    let dirty = ref false in
    Array.iteri
      (fun k r ->
        if apply (base + k) parts.(base + k) r ~dirty:!dirty then dirty := true)
      results;
    i := base + count
  done
