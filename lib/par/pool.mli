(** Fixed-size pool of worker domains for partition-parallel analysis.

    Workers are spawned once ([jobs - 1] domains; the calling domain
    participates in every batch) and reused across batches. With
    [jobs = 1] no domains are spawned and {!run} degenerates to a plain
    sequential [Array.init] — the exact code path of a non-parallel
    build, so sequential runs are bit-identical by construction. *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains.
    Raises [Invalid_argument] if [jobs < 1]. *)
val create : jobs:int -> t

(** The job count the pool was created with. *)
val jobs : t -> int

(** [run t n f] evaluates [f 0 .. f (n-1)] across the pool and returns
    the results in index order. Job indices are claimed dynamically, so
    jobs may execute in any order and on any domain; [f] must only
    touch data private to its index or immutable shared state.

    If any job raises, remaining unstarted jobs are skipped and the
    exception of the lowest failing index is re-raised (with its
    backtrace) on the calling domain after the batch drains. *)
val run : t -> int -> (int -> 'a) -> 'a array

(** Terminate the worker domains. The pool must not be used after. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool, guaranteeing
    shutdown on exit (including exceptional exit). *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [global ()] is the process-wide pool shared by the partition
    engines, created on first use with [Jobs.get ()] workers and
    transparently rebuilt if the job count changes. Shut down
    automatically at process exit. *)
val global : unit -> t
