(* Global job-count setting. 0 means "not set yet": the first [get]
   resolves it from the SBM_JOBS environment variable (default 1) and
   caches the result. [set] (the CLI --jobs flag) wins over the
   environment. *)

let state = Atomic.make 0

let of_env () =
  match Sys.getenv_opt "SBM_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)

let set n =
  if n < 1 then invalid_arg "Sbm_par.Jobs.set: jobs must be >= 1";
  Atomic.set state n

let get () =
  match Atomic.get state with
  | 0 ->
    let n = of_env () in
    (* Another domain may have raced us; either wrote a valid value. *)
    ignore (Atomic.compare_and_set state 0 n);
    Atomic.get state
  | n -> n
