(* Fixed-size pool of worker domains for partition-parallel analysis.

   Workers are spawned once and reused across batches: passes run many
   small partition fan-outs, and Domain.spawn is far too expensive to
   pay per batch. A batch is published under [mutex]/[cond]; workers
   and the calling domain all pull job indices from a shared atomic
   counter, so the caller participates instead of blocking idle.

   Exception protocol: the first failing job (lowest index) wins.
   A failure flips [cancelled], which makes not-yet-started jobs
   no-ops; the caller re-raises the winning exception with its
   original backtrace once the batch has drained. *)

type batch = {
  total : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  cancelled : bool Atomic.t;
  run1 : int -> unit;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  cond : Condition.t; (* new batch published, or shutdown *)
  done_cond : Condition.t; (* last job of a batch completed *)
  mutable current : batch option;
  mutable generation : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.jobs

(* Outstanding jobs of the current batch, for the live dashboard. A
   gauge is observational (never compared across job counts), so
   racing worker updates are fine. *)
let set_queue_depth n = Sbm_obs.Metrics.set Sbm_obs.Metrics.pool_queue_depth n

let exec_batch t b =
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.total then begin
      set_queue_depth (max 0 (b.total - i - 1));
      (* Peak-heap high-water mark (Gc heap stats describe the shared
         major heap). set_max is an atomic max, so racing claims from
         several domains are fine — the ledger samples it per pass. *)
      Sbm_obs.Metrics.set_max Sbm_obs.Metrics.peak_heap_words
        (Gc.quick_stat ()).Gc.heap_words;
      if not (Atomic.get b.cancelled) then b.run1 i;
      let done_now = 1 + Atomic.fetch_and_add b.completed 1 in
      if done_now = b.total then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.done_cond;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker_loop t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stopping) && t.generation = !seen do
      Condition.wait t.cond t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let b = t.current in
      Mutex.unlock t.mutex;
      (match b with Some b -> exec_batch t b | None -> ());
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Sbm_par.Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      cond = Condition.create ();
      done_cond = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let run (type a) t n (f : int -> a) : a array =
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.init n f
  else begin
    let results : a option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let cancelled = Atomic.make false in
    let run1 i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e ->
        errors.(i) <- Some (e, Printexc.get_raw_backtrace ());
        Atomic.set cancelled true
    in
    let b =
      { total = n; next = Atomic.make 0; completed = Atomic.make 0; cancelled; run1 }
    in
    Mutex.lock t.mutex;
    t.current <- Some b;
    t.generation <- t.generation + 1;
    set_queue_depth n;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    exec_batch t b;
    Mutex.lock t.mutex;
    while Atomic.get b.completed < b.total do
      Condition.wait t.done_cond t.mutex
    done;
    t.current <- None;
    set_queue_depth 0;
    Mutex.unlock t.mutex;
    let first_error = Array.find_opt (fun e -> e <> None) errors in
    match first_error with
    | Some (Some (e, bt)) -> Printexc.raise_with_backtrace e bt
    | _ -> Array.map Option.get results
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Process-wide pool shared by the partition engines, sized from
   {!Jobs} and rebuilt if the job count changes. Joined at exit so
   blocked workers don't keep the process alive. *)
let global_pool = ref None

let global () =
  let jobs = Jobs.get () in
  match !global_pool with
  | Some p when p.jobs = jobs -> p
  | prev ->
    (match prev with Some p -> shutdown p | None -> ());
    if prev = None then
      at_exit (fun () ->
          match !global_pool with
          | Some p ->
            global_pool := None;
            shutdown p
          | None -> ());
    let p = create ~jobs in
    global_pool := Some p;
    p
