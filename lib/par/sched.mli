(** Deterministic chunked snapshot/analyze/apply schedule.

    [run_ordered pool parts ~analyze ~apply] analyzes [parts] in
    parallel, a chunk at a time (default chunk: twice the pool's job
    count), then applies results sequentially in ascending partition
    index. [analyze i part] runs on a worker domain and must only read
    shared state (or mutate private snapshots). [apply i part result
    ~dirty] runs on the calling domain in index order; [dirty] is true
    iff an earlier partition of the same chunk committed an edit
    (worker analyses after that point are stale). [apply] returns
    [true] when it committed edits to the live structure.

    With this contract, a run at any job count applies the exact same
    edits in the exact same order as a sequential run: clean analyses
    are merged verbatim, stale ones are redone sequentially. *)
val run_ordered :
  ?chunk:int ->
  Pool.t ->
  'p array ->
  analyze:(int -> 'p -> 'a) ->
  apply:(int -> 'p -> 'a -> dirty:bool -> bool) ->
  unit
