module Snapshot = Sbm_obs.Snapshot

(* --- loading --- *)

(* Ledger rows ride along in the additive per-entry "passes" array
   (absent in pre-ledger snapshots — parsed as []). Missing numeric
   fields default to 0 except luts/levels, whose absent/-1 value means
   "not probed". *)
let ledger_row_of_json j =
  let int ?(default = 0) f =
    Option.value ~default Json.(to_int (member f j))
  in
  let fl f = Option.value ~default:0.0 Json.(to_float (member f j)) in
  {
    Sbm_obs.Ledger.path =
      Option.value ~default:"" Json.(to_str (member "path" j));
    index = int "index";
    size_before = int "size_before";
    size_after = int "size_after";
    depth_before = int "depth_before";
    depth_after = int "depth_after";
    luts = int ~default:(-1) "luts";
    levels = int ~default:(-1) "levels";
    (* Additive field (16-hex-digit string); absent in pre-fingerprint
       snapshots and in rows recorded with the trail disabled. *)
    fingerprint =
      (match Json.(to_str (member "fingerprint" j)) with
      | None -> 0L
      | Some s -> (
        match Int64.of_string_opt ("0x" ^ s) with
        | Some v -> v
        | None -> 0L));
    wall_ns = Int64.of_float (fl "wall_ns");
    counters =
      Json.to_obj (Json.member "counters" j)
      |> List.filter_map (fun (k, v) ->
             match Json.to_int (Some v) with
             | Some n -> Some (k, n)
             | None -> None);
    minor_words = fl "minor_words";
    major_words = fl "major_words";
    heap_words = int "heap_words";
    unique_load_pct = int "unique_load_pct";
    cache_load_pct = int "cache_load_pct";
    dead_node_pct = int "dead_node_pct";
  }

let snapshot_of_json_value json =
  (match Json.(to_int (member "version" json)) with
    | None -> Error "not a snapshot: missing \"version\""
    | Some v when v > Snapshot.current_version ->
      Error
        (Printf.sprintf "snapshot version %d is newer than supported (%d)" v
           Snapshot.current_version)
    | Some version -> (
      let entry_of_json j =
        match Json.(to_str (member "bench" j)) with
        | None -> Error "entry without \"bench\""
        | Some bench -> (
          let int field = Json.(to_int (member field j)) in
          match (int "size", int "depth", int "luts", int "levels") with
          | Some size, Some depth, Some luts, Some levels ->
            let counters =
              Json.to_obj (Json.member "counters" j)
              |> List.filter_map (fun (k, v) ->
                     match Json.to_int (Some v) with
                     | Some n -> Some (k, n)
                     | None -> None)
            in
            Ok
              {
                Snapshot.bench;
                (* Additive key: absent in pre-arena snapshots. *)
                size_before = Option.value ~default:(-1) (int "size_before");
                qor = { Snapshot.size; depth; luts; levels };
                wall_ms =
                  Option.value ~default:0.0
                    Json.(to_float (member "wall_ms" j));
                counters;
                passes =
                  Json.to_list (Json.member "passes" j)
                  |> List.map ledger_row_of_json;
              }
          | _ -> Error (Printf.sprintf "entry %S: missing QoR field" bench))
      in
      let rec entries acc = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
          match entry_of_json j with
          | Ok e -> entries (e :: acc) rest
          | Error _ as e -> e)
      in
      match entries [] (Json.to_list (Json.member "entries" json)) with
      | Error msg -> Error msg
      | Ok entries ->
        Ok
          {
            Snapshot.version;
            label = Option.value ~default:"" Json.(to_str (member "label" json));
            seed = Option.value ~default:0 Json.(to_int (member "seed" json));
            entries =
              List.sort
                (fun a b -> String.compare a.Snapshot.bench b.Snapshot.bench)
                entries;
          }))

let snapshot_of_json s =
  match Json.parse s with
  | exception Json.Bad msg -> Error ("malformed JSON: " ^ msg)
  | json -> snapshot_of_json_value json

let load_snapshot path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match snapshot_of_json (String.trim s) with
    | Ok _ as ok -> ok
    | Error msg -> Error (path ^ ": " ^ msg))

(* --- diffing --- *)

type tolerance = { qor_pct : float; time_pct : float }

let default_tolerance = { qor_pct = 2.0; time_pct = 25.0 }

type verdict = Improved | Unchanged | Tolerated | Regressed

let severity = function
  | Improved -> 0
  | Unchanged -> 1
  | Tolerated -> 2
  | Regressed -> 3

let worst a b = if severity a >= severity b then a else b

type delta = {
  metric : string;
  old_value : float;
  new_value : float;
  pct : float;
  verdict : verdict;
}

type counter_delta = { counter : string; old_count : int; new_count : int }

type row = {
  bench : string;
  size_in : (int * int) option;
      (* input node counts (old, new) when both snapshots recorded
         them — informational, never gated *)
  deltas : delta list;
  counter_deltas : counter_delta list;
  verdict : verdict;
}

type t = {
  rows : row list;
  only_old : string list;
  only_new : string list;
  verdict : verdict;
}

let classify ~tol ~old_value ~new_value metric =
  let denom = if Float.abs old_value < 1e-9 then 1.0 else Float.abs old_value in
  let pct = 100.0 *. (new_value -. old_value) /. denom in
  let verdict =
    if new_value < old_value then Improved
    else if new_value = old_value then Unchanged
    else if pct <= tol then Tolerated
    else Regressed
  in
  { metric; old_value; new_value; pct; verdict }

let counter_deltas (o : Snapshot.entry) (n : Snapshot.entry) =
  let names =
    List.sort_uniq String.compare (List.map fst o.counters @ List.map fst n.counters)
  in
  List.filter_map
    (fun counter ->
      let get e = Option.value ~default:0 (List.assoc_opt counter e.Snapshot.counters) in
      let old_count = get o and new_count = get n in
      if old_count = new_count then None
      else Some { counter; old_count; new_count })
    names

let diff ?(tolerance = default_tolerance) ?(ignore_time = false)
    (o : Snapshot.t) (n : Snapshot.t) =
  let row (oe : Snapshot.entry) (ne : Snapshot.entry) =
    let qor metric old_value new_value =
      classify ~tol:tolerance.qor_pct ~old_value ~new_value metric
    in
    let deltas =
      [
        qor "size" (float_of_int oe.qor.size) (float_of_int ne.qor.size);
        qor "depth" (float_of_int oe.qor.depth) (float_of_int ne.qor.depth);
        qor "luts" (float_of_int oe.qor.luts) (float_of_int ne.qor.luts);
        qor "levels" (float_of_int oe.qor.levels) (float_of_int ne.qor.levels);
      ]
      @
      (* QoR-only gating: [ignore_time] drops the wall row entirely —
         no verdict, no speedup ratio — so the output is stable across
         machines. *)
      if ignore_time then []
      else
        [
          classify ~tol:tolerance.time_pct ~old_value:oe.wall_ms
            ~new_value:ne.wall_ms "wall_ms";
        ]
    in
    {
      bench = oe.bench;
      size_in =
        (if oe.size_before >= 0 && ne.size_before >= 0 then
           Some (oe.size_before, ne.size_before)
         else None);
      deltas;
      counter_deltas = counter_deltas oe ne;
      verdict =
        List.fold_left (fun acc (d : delta) -> worst acc d.verdict) Improved deltas;
    }
  in
  let rows =
    List.filter_map
      (fun oe ->
        Option.map (row oe) (Snapshot.find n oe.Snapshot.bench))
      o.entries
  in
  let missing_from other = fun (e : Snapshot.entry) -> Snapshot.find other e.bench = None in
  let only_old = List.filter (missing_from n) o.entries |> List.map (fun e -> e.Snapshot.bench) in
  let only_new = List.filter (missing_from o) n.entries |> List.map (fun e -> e.Snapshot.bench) in
  let verdict =
    let base = if only_old <> [] then Regressed else Improved in
    List.fold_left (fun acc (r : row) -> worst acc r.verdict) base rows
  in
  { rows; only_old; only_new; verdict }

(* --- rendering --- *)

let verdict_tag = function
  | Improved -> "improved"
  | Unchanged -> "="
  | Tolerated -> "ok"
  | Regressed -> "REGRESSED"

let pp_value ppf (metric, v) =
  if metric = "wall_ms" then Fmt.pf ppf "%10.1f" v
  else Fmt.pf ppf "%10.0f" v

(* Wall-time rows carry an old/new speedup ratio (>1 = the new
   snapshot is faster), printed even when time regressions are
   tolerance-exempt: perf comparisons stay self-documenting under
   [--ignore-time]. *)
let pp_speedup ppf (dl : delta) =
  if dl.metric = "wall_ms" && dl.new_value > 0.0 then
    Fmt.pf ppf "%7.2fx" (dl.old_value /. dl.new_value)
  else Fmt.pf ppf "%8s" ""

let pp ppf d =
  (* No wall rows (diff ~ignore_time) => no speedup column at all. *)
  let has_wall =
    List.exists
      (fun (r : row) ->
        List.exists (fun (dl : delta) -> dl.metric = "wall_ms") r.deltas)
      d.rows
  in
  if has_wall then
    Fmt.pf ppf "%-12s %-8s %10s %10s %8s %8s  %s@." "benchmark" "metric" "old"
      "new" "delta" "speedup" "verdict"
  else
    Fmt.pf ppf "%-12s %-8s %10s %10s %8s  %s@." "benchmark" "metric" "old"
      "new" "delta" "verdict";
  List.iter
    (fun (r : row) ->
      (* Input node counts first, when recorded: the effective bench
         scale the QoR rows below were measured at. Informational —
         no verdict, never gated. *)
      (match r.size_in with
      | Some (o, n) when o = n ->
        Fmt.pf ppf "%-12s %-8s %10d %10s@." r.bench "size_in" o "(input)"
      | Some (o, n) ->
        Fmt.pf ppf "%-12s %-8s %10d %10d  (input; scales differ)@." r.bench
          "size_in" o n
      | None -> ());
      List.iter
        (fun dl ->
          if has_wall then
            Fmt.pf ppf "%-12s %-8s %a %a %+7.1f%% %a  %s@." r.bench dl.metric
              pp_value (dl.metric, dl.old_value) pp_value
              (dl.metric, dl.new_value) dl.pct pp_speedup dl
              (verdict_tag dl.verdict)
          else
            Fmt.pf ppf "%-12s %-8s %a %a %+7.1f%%  %s@." r.bench dl.metric
              pp_value (dl.metric, dl.old_value) pp_value
              (dl.metric, dl.new_value) dl.pct (verdict_tag dl.verdict))
        r.deltas)
    d.rows;
  List.iter (fun b -> Fmt.pf ppf "%-12s dropped from new snapshot: REGRESSED@." b)
    d.only_old;
  List.iter (fun b -> Fmt.pf ppf "%-12s only in new snapshot@." b) d.only_new;
  let count v =
    List.length (List.filter (fun (r : row) -> r.verdict = v) d.rows)
  in
  Fmt.pf ppf "summary: %d benchmarks — %d improved, %d unchanged, %d within tolerance, %d regressed%s@."
    (List.length d.rows) (count Improved) (count Unchanged) (count Tolerated)
    (count Regressed)
    (if d.only_old <> [] then Fmt.str ", %d dropped" (List.length d.only_old)
     else "")

let pp_counters ppf d =
  List.iter
    (fun (r : row) ->
      if r.counter_deltas <> [] then begin
        Fmt.pf ppf "%s:@." r.bench;
        List.iter
          (fun c ->
            Fmt.pf ppf "  %-32s %10d -> %-10d (%+d)@." c.counter c.old_count
              c.new_count (c.new_count - c.old_count))
          r.counter_deltas
      end)
    d.rows

let exit_code d = if d.verdict = Regressed then 1 else 0

(* --- machine-readable output (sbm diff --json) --- *)

let verdict_to_string = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Tolerated -> "tolerated"
  | Regressed -> "regressed"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let delta_json (dl : delta) =
    Printf.sprintf
      "{\"metric\":\"%s\",\"old\":%g,\"new\":%g,\"pct\":%.3f,\"verdict\":\"%s\"}"
      (json_escape dl.metric) dl.old_value dl.new_value dl.pct
      (verdict_to_string dl.verdict)
  in
  let counter_json (c : counter_delta) =
    Printf.sprintf "{\"counter\":\"%s\",\"old\":%d,\"new\":%d}"
      (json_escape c.counter) c.old_count c.new_count
  in
  let row_json (r : row) =
    let size_in =
      match r.size_in with
      | Some (o, n) -> Printf.sprintf "\"size_in\":{\"old\":%d,\"new\":%d}," o n
      | None -> ""
    in
    Printf.sprintf
      "{\"bench\":\"%s\",%s\"verdict\":\"%s\",\"deltas\":[%s],\"counters\":[%s]}"
      (json_escape r.bench) size_in
      (verdict_to_string r.verdict)
      (String.concat "," (List.map delta_json r.deltas))
      (String.concat "," (List.map counter_json r.counter_deltas))
  in
  let strings l =
    String.concat "," (List.map (fun s -> "\"" ^ json_escape s ^ "\"") l)
  in
  Printf.sprintf
    "{\"verdict\":\"%s\",\"rows\":[%s],\"only_old\":[%s],\"only_new\":[%s]}"
    (verdict_to_string d.verdict)
    (String.concat "," (List.map row_json d.rows))
    (strings d.only_old) (strings d.only_new)

(* --- per-pass differential forensics (sbm diff --per-pass) --- *)

module Ledger = Sbm_obs.Ledger

type pass_row = {
  path : string;
  index : int;
  deltas : delta list;
  counter_deltas : counter_delta list;
  verdict : verdict;
}

type bench_passes = {
  bench : string;
  rows : pass_row list;
  note : string option;  (* alignment outcome when rows are absent *)
  verdict : verdict;
}

type passes_diff = { benches : bench_passes list; verdict : verdict }

let pass_counter_deltas (o : Ledger.row) (n : Ledger.row) =
  let names =
    List.sort_uniq String.compare
      (List.map fst o.Ledger.counters @ List.map fst n.Ledger.counters)
  in
  List.filter_map
    (fun counter ->
      let get (r : Ledger.row) =
        Option.value ~default:0 (List.assoc_opt counter r.Ledger.counters)
      in
      let old_count = get o and new_count = get n in
      if old_count = new_count then None
      else Some { counter; old_count; new_count })
    names

(* Alignment contract: pass sequences are compared positionally and
   must agree on (index, path) — a flow whose pass sequence changed is
   not comparable pass-by-pass, so any mismatch is Regressed (the
   conservative verdict: a silent realignment could hide the very
   pass that introduced a delta). An old snapshot without ledger rows
   predates the ledger and is tolerated. *)
let diff_bench_passes ~tolerance ~ignore_time (oe : Snapshot.entry)
    (ne : Snapshot.entry) : bench_passes =
  let bench = oe.Snapshot.bench in
  match (oe.passes, ne.passes) with
  | [], [] ->
    { bench; rows = []; note = Some "no ledger rows"; verdict = Unchanged }
  | [], _ :: _ ->
    {
      bench;
      rows = [];
      note = Some "old snapshot predates the ledger (no passes array)";
      verdict = Unchanged;
    }
  | _ :: _, [] ->
    {
      bench;
      rows = [];
      note = Some "ledger rows missing from new snapshot";
      verdict = Regressed;
    }
  | op, np when List.length op <> List.length np ->
    {
      bench;
      rows = [];
      note =
        Some
          (Printf.sprintf "pass sequence mismatch: %d passes vs %d"
             (List.length op) (List.length np));
      verdict = Regressed;
    }
  | op, np -> (
    match
      List.find_opt
        (fun ((o : Ledger.row), (n : Ledger.row)) ->
          o.Ledger.path <> n.Ledger.path)
        (List.combine op np)
    with
    | Some (o, n) ->
      {
        bench;
        rows = [];
        note =
          Some
            (Printf.sprintf
               "pass sequence mismatch at index %d: %S vs %S" o.Ledger.index
               o.Ledger.path n.Ledger.path);
        verdict = Regressed;
      }
    | None ->
      let row ((o : Ledger.row), (n : Ledger.row)) : pass_row =
        let qor metric old_value new_value =
          classify ~tol:tolerance.qor_pct ~old_value ~new_value metric
        in
        let fi = float_of_int in
        let deltas =
          [
            qor "size" (fi o.Ledger.size_after) (fi n.Ledger.size_after);
            qor "depth" (fi o.Ledger.depth_after) (fi n.Ledger.depth_after);
          ]
          @ (if o.Ledger.luts >= 0 && n.Ledger.luts >= 0 then
               [ qor "luts" (fi o.Ledger.luts) (fi n.Ledger.luts) ]
             else [])
          @ (if o.Ledger.levels >= 0 && n.Ledger.levels >= 0 then
               [ qor "levels" (fi o.Ledger.levels) (fi n.Ledger.levels) ]
             else [])
          @
          if ignore_time then []
          else
            [
              classify ~tol:tolerance.time_pct
                ~old_value:(Int64.to_float o.Ledger.wall_ns /. 1e6)
                ~new_value:(Int64.to_float n.Ledger.wall_ns /. 1e6)
                "wall_ms";
            ]
        in
        {
          path = n.Ledger.path;
          index = n.Ledger.index;
          deltas;
          counter_deltas = pass_counter_deltas o n;
          verdict =
            List.fold_left
              (fun acc (d : delta) -> worst acc d.verdict)
              Improved deltas;
        }
      in
      let rows = List.map row (List.combine op np) in
      {
        bench;
        rows;
        note = None;
        verdict =
          List.fold_left
            (fun acc (r : pass_row) -> worst acc r.verdict)
            Improved rows;
      })

let diff_passes ?(tolerance = default_tolerance) ?(ignore_time = false)
    (o : Snapshot.t) (n : Snapshot.t) =
  let benches =
    List.filter_map
      (fun oe ->
        Option.map
          (diff_bench_passes ~tolerance ~ignore_time oe)
          (Snapshot.find n oe.Snapshot.bench))
      o.entries
  in
  {
    benches;
    verdict =
      List.fold_left
        (fun acc (b : bench_passes) -> worst acc b.verdict)
        Improved benches;
  }

(* The forensic rendering: every aligned pass whose verdict is not
   Unchanged gets its changed metrics printed, Regressed passes also
   get their counter deltas (the "why"), and the summary names each
   regressing pass so CI logs localize a QoR break without opening
   the snapshots. *)
let pp_passes ppf (d : passes_diff) =
  let total = ref 0 and shown = ref 0 in
  List.iter
    (fun (b : bench_passes) ->
      (match b.note with
      | Some note ->
        Fmt.pf ppf "%-12s %s: %s@." b.bench (verdict_tag b.verdict) note
      | None -> ());
      List.iter
        (fun (r : pass_row) ->
          incr total;
          if r.verdict <> Unchanged then begin
            incr shown;
            List.iter
              (fun (dl : delta) ->
                if dl.verdict <> Unchanged then
                  Fmt.pf ppf "%-12s %-32s %-8s %a %a %+7.1f%%  %s@." b.bench
                    r.path dl.metric pp_value (dl.metric, dl.old_value)
                    pp_value (dl.metric, dl.new_value) dl.pct
                    (verdict_tag dl.verdict))
              r.deltas;
            if r.verdict = Regressed then
              List.iter
                (fun (c : counter_delta) ->
                  Fmt.pf ppf "%-12s %-32s   %-32s %10d -> %-10d (%+d)@."
                    b.bench r.path c.counter c.old_count c.new_count
                    (c.new_count - c.old_count))
                r.counter_deltas
          end)
        b.rows)
    d.benches;
  let regressing =
    List.concat_map
      (fun (b : bench_passes) ->
        List.filter_map
          (fun (r : pass_row) ->
            if r.verdict = Regressed then Some (b.bench ^ ":" ^ r.path)
            else None)
          b.rows)
      d.benches
  in
  Fmt.pf ppf
    "per-pass summary: %d aligned passes, %d changed, overall %s@." !total
    !shown
    (verdict_tag d.verdict);
  if regressing <> [] then
    Fmt.pf ppf "regressing passes: %s@." (String.concat ", " regressing);
  List.iter
    (fun (b : bench_passes) ->
      if b.note <> None && b.verdict = Regressed then
        Fmt.pf ppf "regressing bench: %s (%s)@." b.bench
          (Option.value ~default:"" b.note))
    d.benches

let passes_exit_code (d : passes_diff) =
  if d.verdict = Regressed then 1 else 0

let passes_to_json (d : passes_diff) =
  let delta_json (dl : delta) =
    Printf.sprintf
      "{\"metric\":\"%s\",\"old\":%g,\"new\":%g,\"pct\":%.3f,\"verdict\":\"%s\"}"
      (json_escape dl.metric) dl.old_value dl.new_value dl.pct
      (verdict_to_string dl.verdict)
  in
  let counter_json (c : counter_delta) =
    Printf.sprintf "{\"counter\":\"%s\",\"old\":%d,\"new\":%d}"
      (json_escape c.counter) c.old_count c.new_count
  in
  let pass_json (r : pass_row) =
    Printf.sprintf
      "{\"path\":\"%s\",\"index\":%d,\"verdict\":\"%s\",\"deltas\":[%s],\"counters\":[%s]}"
      (json_escape r.path) r.index
      (verdict_to_string r.verdict)
      (String.concat "," (List.map delta_json r.deltas))
      (String.concat "," (List.map counter_json r.counter_deltas))
  in
  let bench_json (b : bench_passes) =
    Printf.sprintf
      "{\"bench\":\"%s\",\"verdict\":\"%s\"%s,\"passes\":[%s]}"
      (json_escape b.bench)
      (verdict_to_string b.verdict)
      (match b.note with
      | Some note -> Printf.sprintf ",\"note\":\"%s\"" (json_escape note)
      | None -> "")
      (String.concat "," (List.map pass_json b.rows))
  in
  Printf.sprintf "{\"verdict\":\"%s\",\"benches\":[%s]}"
    (verdict_to_string d.verdict)
    (String.concat "," (List.map bench_json d.benches))
