type event = {
  seq : int;
  t_ms : float;
  t_ns : float option; (* absolute monotonic ns, dumps that carry it *)
  severity : string;
  engine : string;
  id : string;
  message : string;
  metrics : (string * int) list;
}

type verdict = { rule : string; detail : string; action : string; v_t_ms : float }

type frame = { frame_name : string; opened_ms : float }

type dump = {
  version : int;
  reason : string;
  pid : int;
  elapsed_ms : float;
  t0_ns : float option; (* absolute monotonic ns of recorder start *)
  span_stack : frame list;
  verdicts : verdict list;
  counters : (string * int) list;
  recorded : int;
  dropped : int;
  events : event list;
}

let supported_version = 1

(* --- loading --- *)

let str ?(default = "") key j =
  Option.value ~default (Json.to_str (Json.member key j))

let int_ ?(default = 0) key j =
  Option.value ~default (Json.to_int (Json.member key j))

let float_ ?(default = 0.0) key j =
  Option.value ~default (Json.to_float (Json.member key j))

let counters_of key j =
  List.filter_map
    (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int (Some v)))
    (Json.to_obj (Json.member key j))

let event_of_json j =
  {
    seq = int_ "seq" j;
    t_ms = float_ "t_ms" j;
    t_ns = Json.to_float (Json.member "t_ns" j);
    severity = str ~default:"info" "severity" j;
    engine = str ~default:"?" "engine" j;
    id = str "id" j;
    message = str "message" j;
    metrics = counters_of "metrics" j;
  }

let verdict_of_json j =
  {
    rule = str ~default:"?" "rule" j;
    detail = str "detail" j;
    action = str ~default:"note" "action" j;
    v_t_ms = float_ "t_ms" j;
  }

let frame_of_json j =
  { frame_name = str ~default:"?" "name" j; opened_ms = float_ "opened_ms" j }

let of_json s =
  match String.trim s with
  | "" -> Error "empty input"
  | s -> (
    match Json.parse s with
    | exception Json.Bad msg -> Error ("malformed JSON: " ^ msg)
    | json -> (
      match Json.to_int (Json.member "version" json) with
      | None -> Error "not a post-mortem dump: missing \"version\""
      | Some v when v > supported_version ->
        Error
          (Printf.sprintf "unsupported dump version %d (this sbm reads <= %d)" v
             supported_version)
      | Some version ->
        Ok
          {
            version;
            reason = str ~default:"?" "reason" json;
            pid = int_ "pid" json;
            elapsed_ms = float_ "elapsed_ms" json;
            t0_ns = Json.to_float (Json.member "t0_ns" json);
            span_stack =
              List.map frame_of_json (Json.to_list (Json.member "span_stack" json));
            verdicts =
              List.map verdict_of_json (Json.to_list (Json.member "watchdog" json));
            counters = counters_of "counters" json;
            recorded = int_ "recorded" json;
            dropped = int_ "dropped" json;
            events = List.map event_of_json (Json.to_list (Json.member "events" json));
          }))

let load path =
  match Json.read_source path with
  | Error msg -> Error msg
  | Ok s -> (
    let label = if path = "-" then "stdin" else path in
    match of_json s with
    | Ok _ as ok -> ok
    | Error msg -> Error (label ^ ": " ^ msg))

(* --- rendering --- *)

let pp_metrics ppf = function
  | [] -> ()
  | metrics ->
    Fmt.pf ppf "  {%a}"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v))
      metrics

(* Timestamp column. Default: delta from run start ("+123.4 ms" —
   that is what t_ms already measures). --abs: the absolute monotonic
   clock in ns, taken from the event's own t_ns when the dump carries
   one, reconstructed from t0_ns + t_ms otherwise. Dumps predating
   t0_ns fall back to deltas even under --abs. *)
let pp_stamp ~abs t0_ns ppf (t_ms, t_ns) =
  let absolute =
    if not abs then None
    else
      match (t_ns, t0_ns) with
      | Some ns, _ -> Some ns
      | None, Some t0 -> Some (t0 +. (t_ms *. 1e6))
      | None, None -> None
  in
  match absolute with
  | Some ns -> Fmt.pf ppf "[%18.0f ns]" ns
  | None -> Fmt.pf ppf "[%+10.1f ms]" t_ms

let pp ?(last = 20) ?(abs = false) ppf d =
  let stamp = pp_stamp ~abs d.t0_ns in
  Fmt.pf ppf "post-mortem dump (version %d)@." d.version;
  Fmt.pf ppf "  reason:  %s@." d.reason;
  Fmt.pf ppf "  pid:     %d   elapsed: %.1f s@." d.pid (d.elapsed_ms /. 1000.0);
  Fmt.pf ppf "  events:  %d recorded, %d overwritten@." d.recorded d.dropped;
  Fmt.pf ppf "@.open spans at crash (outermost first):@.";
  if d.span_stack = [] then Fmt.pf ppf "  (none)@."
  else
    List.iter
      (fun f ->
        Fmt.pf ppf "  %-32s opened at %a@." f.frame_name stamp
          (f.opened_ms, None))
      d.span_stack;
  Fmt.pf ppf "@.watchdog verdicts:@.";
  if d.verdicts = [] then Fmt.pf ppf "  (none)@."
  else
    List.iter
      (fun v ->
        Fmt.pf ppf "  %a %s (%s): %s@." stamp (v.v_t_ms, None) v.rule v.action
          v.detail)
      d.verdicts;
  let total = List.length d.events in
  let shown = min last total in
  Fmt.pf ppf "@.timeline (last %d of %d buffered events):@." shown total;
  if total = 0 then Fmt.pf ppf "  (none)@."
  else
    List.iteri
      (fun i e ->
        if i >= total - shown then
          Fmt.pf ppf "  %a %-5s %-10s %-14s %s%a@." stamp (e.t_ms, e.t_ns)
            (String.uppercase_ascii e.severity)
            e.engine e.id e.message pp_metrics e.metrics)
      d.events;
  let live = List.filter (fun (_, v) -> v <> 0) d.counters in
  if live <> [] then begin
    Fmt.pf ppf "@.counters:@.";
    List.iter (fun (k, v) -> Fmt.pf ppf "  %-32s %12d@." k v) live
  end

(* --- canonical re-emission (--json) --- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let buf_counters b counters =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (escape k) v))
    counters;
  Buffer.add_char b '}'

let to_json d =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"version\":%d,\"reason\":\"%s\",\"pid\":%d,\"elapsed_ms\":%.3f"
       d.version (escape d.reason) d.pid d.elapsed_ms);
  (match d.t0_ns with
  | Some t0 -> Buffer.add_string b (Printf.sprintf ",\"t0_ns\":%.0f" t0)
  | None -> ());
  Buffer.add_string b ",\"span_stack\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"opened_ms\":%.3f}"
           (escape f.frame_name) f.opened_ms))
    d.span_stack;
  Buffer.add_string b "],\"watchdog\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"rule\":\"%s\",\"detail\":\"%s\",\"action\":\"%s\",\"t_ms\":%.3f}"
           (escape v.rule) (escape v.detail) (escape v.action) v.v_t_ms))
    d.verdicts;
  Buffer.add_string b "],\"counters\":";
  buf_counters b d.counters;
  Buffer.add_string b
    (Printf.sprintf ",\"recorded\":%d,\"dropped\":%d,\"events\":[" d.recorded
       d.dropped);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"seq\":%d,\"t_ms\":%.3f" e.seq e.t_ms);
      (match e.t_ns with
      | Some ns -> Buffer.add_string b (Printf.sprintf ",\"t_ns\":%.0f" ns)
      | None -> ());
      Buffer.add_string b
        (Printf.sprintf
           ",\"severity\":\"%s\",\"engine\":\"%s\",\"id\":\"%s\",\"message\":\"%s\",\"metrics\":"
           (escape e.severity) (escape e.engine) (escape e.id)
           (escape e.message));
      buf_counters b e.metrics;
      Buffer.add_char b '}')
    d.events;
  Buffer.add_string b "]}";
  Buffer.contents b
