(* Run-over-run ledger history (sbm bench --ledger / sbm history).

   The ledger file is append-only JSONL: one line per bench run,
   wrapping the full QoR snapshot (passes included) with run identity
   — timestamp, commit, flow, job count. Append-only means a torn
   final line is possible if a run dies mid-write; [load] skips
   unparsable lines instead of failing, like the status-file reader. *)

module Snapshot = Sbm_obs.Snapshot

let schema_version = 1

type run = {
  t : float; (* unix seconds *)
  commit : string;
  flow : string;
  jobs : int;
  snapshot : Snapshot.t;
}

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let run_to_json r =
  Printf.sprintf
    "{\"schema\":%d,\"t\":%.0f,\"commit\":\"%s\",\"flow\":\"%s\",\"jobs\":%d,\"snapshot\":%s}"
    schema_version r.t (json_escape r.commit) (json_escape r.flow) r.jobs
    (Snapshot.to_json r.snapshot)

let append_run ~path r =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | exception Sys_error msg -> Error msg
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (run_to_json r);
        output_char oc '\n');
    Ok ()

let run_of_json line =
  match Json.parse line with
  | exception Json.Bad _ -> None
  | j -> (
    match Json.(to_int (member "schema" j)) with
    | Some v when v > schema_version -> None
    | _ -> (
      match Json.member "snapshot" j with
      | None -> None
      | Some sj -> (
        (* Reuse the snapshot parser on the nested document: re-render
           is avoided by parsing the raw substring — Json has no
           printer, so round-trip through the typed form instead. *)
        match Report.snapshot_of_json_value sj with
        | Error _ -> None
        | Ok snapshot ->
          Some
            {
              t = Option.value ~default:0.0 Json.(to_float (member "t" j));
              commit =
                Option.value ~default:"" Json.(to_str (member "commit" j));
              flow = Option.value ~default:"" Json.(to_str (member "flow" j));
              jobs = Option.value ~default:1 Json.(to_int (member "jobs" j));
              snapshot;
            })))

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Ok
      (String.split_on_char '\n' s
      |> List.filter_map (fun line ->
             let line = String.trim line in
             if line = "" then None else run_of_json line))

(* --- trend tables --- *)

let qor_metrics = [ "size"; "depth"; "luts"; "levels"; "wall_ms" ]

(* The metric value of one entry: a QoR column, wall time, or any
   snapshot counter by name. *)
let metric_value metric (e : Snapshot.entry) =
  match metric with
  | "size" -> Some (float_of_int e.qor.Snapshot.size)
  | "depth" -> Some (float_of_int e.qor.Snapshot.depth)
  | "luts" -> Some (float_of_int e.qor.Snapshot.luts)
  | "levels" -> Some (float_of_int e.qor.Snapshot.levels)
  | "wall_ms" -> Some e.wall_ms
  | name ->
    Option.map float_of_int (List.assoc_opt name e.Snapshot.counters)

(* Every metric name [metric_value] can resolve against these runs:
   the QoR columns plus the union of snapshot counter names. Drives
   the unknown-metric error in `sbm history --metric`. *)
let available_metrics runs =
  let counters =
    List.concat_map
      (fun r ->
        List.concat_map
          (fun (e : Snapshot.entry) -> List.map fst e.Snapshot.counters)
          r.snapshot.Snapshot.entries)
      runs
  in
  qor_metrics @ List.sort_uniq String.compare counters

let time_str t =
  if t <= 0.0 then "-"
  else
    let tm = Unix.gmtime t in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min

let short_commit c = if String.length c > 9 then String.sub c 0 9 else c

(* One row per run (append order), one column per bench; a cell whose
   value grew against the previous run carries a '!' regression flag
   (every tracked metric is lower-is-better). *)
let table ?bench ?(metric = "size") runs =
  let runs =
    match bench with
    | None -> runs
    | Some b ->
      List.map
        (fun r ->
          {
            r with
            snapshot =
              {
                r.snapshot with
                Snapshot.entries =
                  List.filter
                    (fun (e : Snapshot.entry) -> e.Snapshot.bench = b)
                    r.snapshot.Snapshot.entries;
              };
          })
        runs
  in
  let benches =
    List.sort_uniq String.compare
      (List.concat_map
         (fun r ->
           List.map
             (fun (e : Snapshot.entry) -> e.Snapshot.bench)
             r.snapshot.Snapshot.entries)
         runs)
  in
  let cell prev r b =
    match Snapshot.find r.snapshot b with
    | None -> ("-", None)
    | Some e -> (
      match metric_value metric e with
      | None -> ("-", None)
      | Some v ->
        let flag =
          match prev with
          | Some pv when v > pv -> "!"
          | _ -> ""
        in
        let s =
          if metric = "wall_ms" then Printf.sprintf "%.1f%s" v flag
          else Printf.sprintf "%.0f%s" v flag
        in
        (s, Some v))
  in
  let b = Buffer.create 4096 in
  let colw = max 8 (List.fold_left (fun a s -> max a (String.length s)) 0 benches + 1) in
  Buffer.add_string b
    (Printf.sprintf "metric: %s (lower is better; '!' = worse than previous run)\n"
       metric);
  Buffer.add_string b
    (Printf.sprintf "%-17s %-9s %-8s %-4s" "run (utc)" "commit" "flow" "jobs");
  List.iter (fun bn -> Buffer.add_string b (Printf.sprintf " %*s" colw bn)) benches;
  Buffer.add_char b '\n';
  let prev : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-17s %-9s %-8s %-4d" (time_str r.t)
           (short_commit r.commit) r.flow r.jobs);
      List.iter
        (fun bn ->
          let s, v = cell (Hashtbl.find_opt prev bn) r bn in
          (match v with
          | Some v -> Hashtbl.replace prev bn v
          | None -> ());
          Buffer.add_string b (Printf.sprintf " %*s" colw s))
        benches;
      Buffer.add_char b '\n')
    runs;
  (* Regression flagging for the gate: last run vs the one before. *)
  let arr = Array.of_list runs in
  let n = Array.length arr in
  if n >= 2 then begin
    let last = arr.(n - 1) and before = arr.(n - 2) in
    let regressed =
      List.filter_map
        (fun bn ->
          match (Snapshot.find before.snapshot bn, Snapshot.find last.snapshot bn) with
          | Some oe, Some ne -> (
            match (metric_value metric oe, metric_value metric ne) with
            | Some ov, Some nv when nv > ov ->
              Some (Printf.sprintf "%s (%g -> %g)" bn ov nv)
            | _ -> None)
          | _ -> None)
        benches
    in
    if regressed <> [] then
      Buffer.add_string b
        (Printf.sprintf "last run regressed on %s: %s\n" metric
           (String.concat ", " regressed))
    else
      Buffer.add_string b
        (Printf.sprintf "last run: no %s regressions vs previous\n" metric)
  end;
  Buffer.contents b
