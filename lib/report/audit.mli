(** Divergence auditor over determinism audit trails ([sbm audit]).

    Aligns two fingerprint trails ({!Sbm_obs.Fingerprint} JSONL
    streams or in-process record lists) positionally and reports the
    {e first} record where any deterministic component differs —
    because each record's chain commits to the whole prefix, that
    record is exactly the first boundary (pass or partition merge)
    where the two runs' states disagreed. The drill-down names the
    diverging components (structure vs counters vs bank vs seeds) and,
    when the counter vectors are present, the individual counters. *)

val record_of_json : string -> Sbm_obs.Fingerprint.record option
(** Parse one JSONL line; [None] on malformed input. *)

val load : string -> (Sbm_obs.Fingerprint.record list, string) result
(** Read a trail file, skipping unparsable (e.g. torn) lines.
    [Error] only for an unreadable file. *)

type component = Label | Structure | Counters | Bank | Seeds

val component_to_string : component -> string

type divergence = {
  index : int;  (** position of the first diverging record *)
  a : Sbm_obs.Fingerprint.record option;
      (** [None] = trail A ended before [index] *)
  b : Sbm_obs.Fingerprint.record option;
  components : component list;
      (** fields that disagree (only when both records are present) *)
  counter_diffs : (string * int option * int option) list;
      (** per-counter drill-down; empty when vectors were not carried *)
}

type outcome = Identical of int | Diverged of divergence

val compare_trails :
  Sbm_obs.Fingerprint.record list ->
  Sbm_obs.Fingerprint.record list ->
  outcome
(** First-divergence scan. Trails of different lengths diverge at the
    end of the shorter one. *)

val exit_code : outcome -> int
(** 0 = identical, 1 = diverged ([sbm diff] convention). *)

val describe : divergence -> string
(** One-line localization, e.g. for test failure messages:
    ["first diverging boundary: iteration-1/mspf/mspf-partition-2
    (merge record 17; structure)"]. *)

val pp : ?name_a:string -> ?name_b:string -> Format.formatter -> outcome -> unit
(** Human-readable audit report. *)
