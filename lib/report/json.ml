type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Bad "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
          (* \uXXXX: decode the code point as a raw byte when < 256
             (our writers only escape control characters). *)
          if !pos + 4 >= n then raise (Bad "truncated \\u escape");
          let hex = String.sub s (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> Buffer.add_char buf (Char.chr (code land 0xff))
          | None -> raise (Bad "bad \\u escape"));
          pos := !pos + 4
        | Some c -> Buffer.add_char buf c
        | None -> raise (Bad "bad escape"));
        advance ();
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> raise (Bad (Printf.sprintf "bad number at %d" start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> raise (Bad "expected , or } in object")
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> raise (Bad "expected , or ] in array")
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> raise (Bad "empty input")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

(* Read a whole channel with a chunked loop rather than
   [in_channel_length]: the length probe fails on pipes, and "-"
   (stdin) is exactly the piped case. *)
let read_all ic =
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let read_source source =
  if source = "-" then Ok (read_all stdin)
  else
    match open_in_bin source with
    | exception Sys_error msg -> Error msg
    | ic -> Ok (Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_all ic))

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Some (Num f) -> Some f | _ -> None
let to_int = function Some (Num f) -> Some (int_of_float f) | _ -> None
let to_str = function Some (Str s) -> Some s | _ -> None
let to_bool = function Some (Bool b) -> Some b | _ -> None
let to_list = function Some (List l) -> l | _ -> []
let to_obj = function Some (Obj l) -> l | _ -> []
