(** Time attribution over telemetry traces.

    Consumes the span tree a trace report ([sbm opt --report FILE.json])
    contains and answers "where did the milliseconds go": per span
    name, how much wall time was spent in total (span inclusive) and
    how much was {e self} time — wall time not attributed to any child
    span. Also renders collapsed stacks consumable by Brendan Gregg's
    [flamegraph.pl]. *)

type span = { name : string; wall_ms : float; children : span list }

(** [of_json s] parses a trace document (the [{"version":..,
    "spans":[...]}] format of {!Sbm_obs.write}) into its span forest. *)
val of_json : string -> (span list, string) result

(** [load path] reads and parses a trace file; [path = "-"] reads
    stdin. Empty or truncated input is an [Error] naming the source. *)
val load : string -> (span list, string) result

(** [self_ms s] is [s]'s wall time minus its children's, clamped at 0. *)
val self_ms : span -> float

type agg = {
  agg_name : string;
  calls : int;  (** spans with this name anywhere in the forest *)
  total_ms : float;
      (** summed inclusive wall time; nested same-name spans are both
          counted, as in any recursive profile *)
  self_ms : float;  (** summed self time — sums to the run's wall time *)
}

(** [aggregate spans] groups the forest by span name, self time
    descending. *)
val aggregate : span list -> agg list

(** [pp_hotspots ?top ppf spans] prints the top-[top] (default 20)
    hotspot table: calls, total ms, self ms, self-time share. *)
val pp_hotspots : ?top:int -> Format.formatter -> span list -> unit

(** [to_collapsed spans] renders one ["stack;frames WEIGHT"] line per
    distinct stack, weight = integer self-time microseconds, identical
    stacks merged, zero-weight stacks dropped — the folded format
    [flamegraph.pl] consumes directly. *)
val to_collapsed : span list -> string list

(** [write_collapsed spans path] writes {!to_collapsed} lines to a
    file. *)
val write_collapsed : span list -> string -> unit
