(** Chrome/Perfetto trace-event exporter.

    Converts a v2 telemetry trace report (the JSON written by
    [--report trace.json]) into the Chrome Trace Event Format accepted
    by ui.perfetto.dev and chrome://tracing: spans become B/E duration
    events, live-telemetry samples become "C" counter series, and
    flight-recorder events / watchdog verdicts become instant
    events. *)

val convert : string -> (string, string) result
(** [convert src] parses [src] as a v2 trace report and returns the
    Chrome trace JSON document, or [Error msg] when [src] is not valid
    JSON or has no spans. *)
