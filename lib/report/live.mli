(** [sbm top] — live dashboard over a [--status] JSONL file.

    The sampler rewrites the status file whole via atomic rename, so
    every poll reads a complete history: one JSON sample per line,
    oldest first. *)

type view = {
  seq : int;
  t_ms : float;
  pass : string;  (** open-span path, [">"]-joined, outermost first *)
  counters : (string * float) list;
  gauges : (string * float) list;
  verdicts : int;
  abort : bool;
  finished : bool;
}

val load : string -> (view list, string) result
(** Parse a status file into views, oldest first. [Error] when the
    file is unreadable or holds no parsable samples. *)

val render : ?prev:view -> view -> string
(** One plain-text screenful for [view]: header, open-span path,
    non-zero counters with per-second rates derived from [prev], then
    gauges. Pure — no ANSI control sequences. *)

val run : ?refresh_ms:float -> ?once:bool -> string -> int
(** Poll [path] every [refresh_ms] (default 500) and redraw, clearing
    the screen between frames when stdout is a TTY. Returns the
    process exit code: 0 once the run's [finished] sample appears (or
    immediately with [once]); 2 when [once] finds no readable
    sample file. While looping, a missing file means the run has not
    started yet — keeps waiting. *)
