(** Run-over-run ledger history.

    [sbm bench --ledger FILE] appends one JSONL record per run — the
    full QoR snapshot (per-pass ledger rows included) keyed by
    timestamp, commit, flow and job count. [sbm history FILE] renders
    run-over-run trend tables from it with regression flagging.

    The file is append-only; {!load} skips unparsable lines (torn
    final line from a killed run, foreign garbage) instead of
    failing. *)

(** Schema version of a ledger line (["schema"] member). Lines with a
    newer schema are skipped by {!load}. *)
val schema_version : int

type run = {
  t : float;  (** unix seconds; 0 when absent *)
  commit : string;
  flow : string;
  jobs : int;
  snapshot : Sbm_obs.Snapshot.t;
}

val run_to_json : run -> string
(** One single-line JSON record:
    [{"schema":1,"t":...,"commit":...,"flow":...,"jobs":...,
    "snapshot":{...}}]. *)

val append_run : path:string -> run -> (unit, string) result
(** Append one record (creates the file if missing). *)

val load : string -> (run list, string) result
(** All parsable records, in file (= append) order. [Error] only on
    open failure. *)

val qor_metrics : string list
(** The non-counter metrics {!table} accepts: size, depth, luts,
    levels, wall_ms. Any snapshot counter name is also accepted. *)

val metric_value : string -> Sbm_obs.Snapshot.entry -> float option

(** [available_metrics runs] is every metric name {!metric_value} can
    resolve against these runs: {!qor_metrics} plus the sorted union
    of snapshot counter names. *)
val available_metrics : run list -> string list
(** The value of a metric for one entry; [None] for an unknown
    counter. *)

val table : ?bench:string -> ?metric:string -> run list -> string
(** Trend table: one row per run, one column per bench (or just
    [?bench]), cells carrying [?metric] (default ["size"]) with a
    ['!'] flag when the value grew against the previous run (every
    tracked metric is lower-is-better). Ends with a last-vs-previous
    regression line for gating eyes. *)
