(** Regression analysis over QoR snapshots.

    This is the consumption side of the telemetry layer: load two
    {!Sbm_obs.Snapshot.t} documents (the committed baseline and a
    fresh [sbm bench] run), compute a structured per-benchmark diff of
    the QoR metrics (AIG size/depth, LUT-6 count/levels), wall time
    and engine counters, classify every delta against configurable
    tolerance thresholds, and render the regression table [sbm diff]
    prints and CI gates on. *)

(** {1 Loading snapshots} *)

(** [snapshot_of_json s] parses a snapshot document. Accepts any
    [version <= Sbm_obs.Snapshot.current_version] (older readers'
    missing optional fields default: [label ""], [seed 0]); rejects
    documents from the future or with malformed entries. *)
val snapshot_of_json : string -> (Sbm_obs.Snapshot.t, string) result

(** [load_snapshot path] reads and parses a snapshot file. *)
val load_snapshot : string -> (Sbm_obs.Snapshot.t, string) result

(** {1 Diffing} *)

(** Classification thresholds, in percent of the baseline value.
    Lower is better for every metric; a delta within [+pct] of the
    baseline is tolerated. Set [time_pct = infinity] to ignore wall
    time entirely (CI machines are not comparable to the baseline
    host). *)
type tolerance = { qor_pct : float; time_pct : float }

(** [{ qor_pct = 2.0; time_pct = 25.0 }] — QoR is deterministic, so
    2 % absorbs only metric coupling (e.g. depth jitter from an equal
    -size result); wall time is noisy, so 25 %. *)
val default_tolerance : tolerance

type verdict =
  | Improved  (** metric decreased *)
  | Unchanged
  | Tolerated  (** increased, within tolerance *)
  | Regressed  (** increased past tolerance *)

(** [worst a b] is the more severe verdict ([Regressed] > [Tolerated]
    > [Unchanged] > [Improved]). *)
val worst : verdict -> verdict -> verdict

type delta = {
  metric : string;  (** "size", "depth", "luts", "levels" or "wall_ms" *)
  old_value : float;
  new_value : float;
  pct : float;  (** 100 * (new - old) / old *)
  verdict : verdict;
}

type counter_delta = { counter : string; old_count : int; new_count : int }

type row = {
  bench : string;
  deltas : delta list;  (** size, depth, luts, levels, wall_ms *)
  counter_deltas : counter_delta list;  (** changed counters only *)
  verdict : verdict;  (** worst of [deltas] *)
}

type t = {
  rows : row list;  (** benchmarks present in both snapshots *)
  only_old : string list;  (** dropped benchmarks — counts as regression *)
  only_new : string list;  (** added benchmarks — informational *)
  verdict : verdict;  (** worst row verdict; [Regressed] if [only_old <> []] *)
}

(** [diff ?tolerance old_snapshot new_snapshot] classifies every
    metric of every benchmark present in both snapshots. *)
val diff : ?tolerance:tolerance -> Sbm_obs.Snapshot.t -> Sbm_obs.Snapshot.t -> t

(** {1 Rendering and gating} *)

(** The per-benchmark regression table: one line per metric with old
    and new values, the percent delta and the verdict, plus dropped /
    added benchmarks and a one-line summary. *)
val pp : Format.formatter -> t -> unit

(** Changed engine counters, per benchmark (the "why" behind a QoR
    shift: SAT conflicts, BDD traffic, moves accepted, ...). *)
val pp_counters : Format.formatter -> t -> unit

(** [exit_code d] is 0 unless [d.verdict = Regressed], then 1 — the
    process exit code contract of [sbm diff]. *)
val exit_code : t -> int

val verdict_to_string : verdict -> string
(** ["improved" | "unchanged" | "tolerated" | "regressed"]. *)

(** [to_json d] is the machine-readable diff ([sbm diff --json]):
    [{"verdict":S,"rows":[{"bench":S,"verdict":S,"deltas":[{"metric":S,
    "old":F,"new":F,"pct":F,"verdict":S}...],"counters":[{"counter":S,
    "old":N,"new":N}...]}...],"only_old":[S...],"only_new":[S...]}]. *)
val to_json : t -> string
