(** Regression analysis over QoR snapshots.

    This is the consumption side of the telemetry layer: load two
    {!Sbm_obs.Snapshot.t} documents (the committed baseline and a
    fresh [sbm bench] run), compute a structured per-benchmark diff of
    the QoR metrics (AIG size/depth, LUT-6 count/levels), wall time
    and engine counters, classify every delta against configurable
    tolerance thresholds, and render the regression table [sbm diff]
    prints and CI gates on. *)

(** {1 Loading snapshots} *)

(** [snapshot_of_json s] parses a snapshot document. Accepts any
    [version <= Sbm_obs.Snapshot.current_version] (older readers'
    missing optional fields default: [label ""], [seed 0]); rejects
    documents from the future or with malformed entries. *)
val snapshot_of_json : string -> (Sbm_obs.Snapshot.t, string) result

(** [snapshot_of_json_value j] parses an already-parsed JSON value —
    used by {!History} for snapshots nested inside ledger records. *)
val snapshot_of_json_value : Json.t -> (Sbm_obs.Snapshot.t, string) result

(** [load_snapshot path] reads and parses a snapshot file. *)
val load_snapshot : string -> (Sbm_obs.Snapshot.t, string) result

(** {1 Diffing} *)

(** Classification thresholds, in percent of the baseline value.
    Lower is better for every metric; a delta within [+pct] of the
    baseline is tolerated. Set [time_pct = infinity] to ignore wall
    time entirely (CI machines are not comparable to the baseline
    host). *)
type tolerance = { qor_pct : float; time_pct : float }

(** [{ qor_pct = 2.0; time_pct = 25.0 }] — QoR is deterministic, so
    2 % absorbs only metric coupling (e.g. depth jitter from an equal
    -size result); wall time is noisy, so 25 %. *)
val default_tolerance : tolerance

type verdict =
  | Improved  (** metric decreased *)
  | Unchanged
  | Tolerated  (** increased, within tolerance *)
  | Regressed  (** increased past tolerance *)

(** [worst a b] is the more severe verdict ([Regressed] > [Tolerated]
    > [Unchanged] > [Improved]). *)
val worst : verdict -> verdict -> verdict

type delta = {
  metric : string;  (** "size", "depth", "luts", "levels" or "wall_ms" *)
  old_value : float;
  new_value : float;
  pct : float;  (** 100 * (new - old) / old *)
  verdict : verdict;
}

type counter_delta = { counter : string; old_count : int; new_count : int }

type row = {
  bench : string;
  size_in : (int * int) option;
      (** input AIG node counts (old, new) when both snapshots carry
          [size_before] — shows the effective benchmark scale;
          informational, never part of the verdict *)
  deltas : delta list;  (** size, depth, luts, levels, wall_ms *)
  counter_deltas : counter_delta list;  (** changed counters only *)
  verdict : verdict;  (** worst of [deltas] *)
}

type t = {
  rows : row list;  (** benchmarks present in both snapshots *)
  only_old : string list;  (** dropped benchmarks — counts as regression *)
  only_new : string list;  (** added benchmarks — informational *)
  verdict : verdict;  (** worst row verdict; [Regressed] if [only_old <> []] *)
}

(** [diff ?tolerance ?ignore_time old_snapshot new_snapshot]
    classifies every metric of every benchmark present in both
    snapshots. [ignore_time] (default [false]) drops the wall-time
    row entirely — no verdict, no speedup column in {!pp} — so
    QoR-only gating output is stable across machines. *)
val diff :
  ?tolerance:tolerance ->
  ?ignore_time:bool ->
  Sbm_obs.Snapshot.t ->
  Sbm_obs.Snapshot.t ->
  t

(** {1 Rendering and gating} *)

(** The per-benchmark regression table: one line per metric with old
    and new values, the percent delta and the verdict, plus dropped /
    added benchmarks and a one-line summary. *)
val pp : Format.formatter -> t -> unit

(** Changed engine counters, per benchmark (the "why" behind a QoR
    shift: SAT conflicts, BDD traffic, moves accepted, ...). *)
val pp_counters : Format.formatter -> t -> unit

(** [exit_code d] is 0 unless [d.verdict = Regressed], then 1 — the
    process exit code contract of [sbm diff]. *)
val exit_code : t -> int

val verdict_to_string : verdict -> string
(** ["improved" | "unchanged" | "tolerated" | "regressed"]. *)

(** [to_json d] is the machine-readable diff ([sbm diff --json]):
    [{"verdict":S,"rows":[{"bench":S,"verdict":S,"deltas":[{"metric":S,
    "old":F,"new":F,"pct":F,"verdict":S}...],"counters":[{"counter":S,
    "old":N,"new":N}...]}...],"only_old":[S...],"only_new":[S...]}]. *)
val to_json : t -> string

(** {1 Per-pass differential forensics}

    [sbm diff --per-pass]: align the ledger pass sequences of two
    snapshots and classify each aligned pass on the same verdict
    lattice, localizing a QoR or wall-time delta to the pass (and
    counter deltas) that introduced it.

    Alignment is positional and requires identical [(index, path)]
    sequences; any mismatch — different lengths, renamed or reordered
    passes, rows missing from the new snapshot — is [Regressed]
    (silent realignment could hide the offending pass). An old
    snapshot with no [passes] array predates the ledger and is
    tolerated as [Unchanged]. *)

type pass_row = {
  path : string;
  index : int;
  deltas : delta list;
      (** size, depth, luts/levels when probed on both sides, wall_ms
          unless [ignore_time]; values are the pass's "after" QoR *)
  counter_deltas : counter_delta list;  (** changed per-pass counters *)
  verdict : verdict;
}

type bench_passes = {
  bench : string;
  rows : pass_row list;  (** empty when [note] is set *)
  note : string option;  (** alignment outcome when rows are absent *)
  verdict : verdict;
}

type passes_diff = { benches : bench_passes list; verdict : verdict }

val diff_passes :
  ?tolerance:tolerance ->
  ?ignore_time:bool ->
  Sbm_obs.Snapshot.t ->
  Sbm_obs.Snapshot.t ->
  passes_diff

(** Changed passes only (unchanged passes are counted, not printed);
    Regressed passes include their counter deltas, and the summary
    names every regressing [bench:pass]. *)
val pp_passes : Format.formatter -> passes_diff -> unit

(** 0 unless the overall verdict is [Regressed], then 1. *)
val passes_exit_code : passes_diff -> int

val passes_to_json : passes_diff -> string
