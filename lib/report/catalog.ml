(* Registered-metric catalog for `sbm metrics`.

   The process-global registry (Sbm_obs.Metrics) is populated by
   module-initialisation side effects, so simply linking the engines
   makes every metric visible here — no run needed. The catalog backs
   two consumers: humans (aligned text table) and the CI drift gate,
   which compares the registry against the metric table documented in
   DESIGN.md so code and docs cannot diverge silently. *)

module M = Sbm_obs.Metrics

let row m =
  (M.name m, M.kind_to_string (M.kind m), M.unit_ m, M.engine m, M.description m)

let to_text () =
  let rows = List.map row (M.all ()) in
  let w4 f = List.fold_left (fun acc r -> max acc (String.length (f r))) 0 rows in
  let nw = max 6 (w4 (fun (n, _, _, _, _) -> n)) in
  let kw = max 4 (w4 (fun (_, k, _, _, _) -> k)) in
  let uw = max 4 (w4 (fun (_, _, u, _, _) -> u)) in
  let ew = max 6 (w4 (fun (_, _, _, e, _) -> e)) in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "%-*s  %-*s  %-*s  %-*s  %s\n" nw "metric" kw "kind" uw
       "unit" ew "engine" "description");
  List.iter
    (fun (n, k, u, e, d) ->
      Buffer.add_string b
        (Printf.sprintf "%-*s  %-*s  %-*s  %-*s  %s\n" nw n kw k uw u ew e d))
    rows;
  Buffer.add_string b (Printf.sprintf "%d metrics registered\n" (List.length rows));
  Buffer.contents b

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"version\":1,\"metrics\":[";
  List.iteri
    (fun i m ->
      let n, k, u, e, d = row m in
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"kind\":\"%s\",\"unit\":\"%s\",\"engine\":\"%s\",\"description\":\"%s\"}"
           (escape n) (escape k) (escape u) (escape e) (escape d)))
    (M.all ());
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* DESIGN.md drift gate. The documented table uses rows of the form

     | `sat.conflicts` | counter | count | sat | ... |

   A markdown table row counts as a metric declaration when its first
   cell is a backticked name AND its second cell is a metric kind —
   the kind requirement keeps other backticked-first-column tables in
   the same document (e.g. the paper-reproduction matrix) out of the
   gate. The comparison covers (name, kind, unit, engine) in both
   directions. *)

let doc_rows src =
  let rows = ref [] in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         let line = String.trim line in
         if String.length line > 1 && line.[0] = '|' then begin
           let cells =
             String.split_on_char '|' line
             |> List.map String.trim
             |> List.filter (fun c -> c <> "")
           in
           match cells with
           | name :: kind :: unit_ :: engine :: _
             when String.length name > 2
                  && name.[0] = '`'
                  && name.[String.length name - 1] = '`'
                  && M.kind_of_string kind <> None ->
             let name = String.sub name 1 (String.length name - 2) in
             rows := (name, (kind, unit_, engine)) :: !rows
           | _ -> ()
         end);
  List.rev !rows

let check doc_src =
  let doc = doc_rows doc_src in
  let reg =
    List.map
      (fun m ->
        (M.name m, (M.kind_to_string (M.kind m), M.unit_ m, M.engine m)))
      (M.all ())
  in
  let drift = ref [] in
  let note fmt = Printf.ksprintf (fun s -> drift := s :: !drift) fmt in
  if doc = [] then note "no metric table rows found in the document";
  List.iter
    (fun (name, (k, u, e)) ->
      match List.assoc_opt name doc with
      | None -> note "`%s` is registered but missing from the document" name
      | Some (dk, du, de) ->
        if dk <> k then
          note "`%s`: documented kind %S, registered %S" name dk k;
        if du <> u then
          note "`%s`: documented unit %S, registered %S" name du u;
        if de <> e then
          note "`%s`: documented engine %S, registered %S" name de e)
    reg;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name reg) then
        note "`%s` is documented but not registered" name)
    doc;
  match List.rev !drift with [] -> Ok (List.length reg) | msgs -> Error msgs
