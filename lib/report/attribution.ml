module Aig = Sbm_aig.Aig
module Lut_map = Sbm_lutmap.Lut_map

type row = {
  pass : string;
  kind : Aig.Origin.kind;
  created : int;
  live : int;
  live_pct : float;
  luts : int;
  lut_pct : float;
}

type t = {
  total_live : int;
  total_luts : int;
  rows : row list; (* one per distinct origin, live share descending *)
  engines : row list; (* aggregated by kind; [pass] holds the kind name *)
}

let pct part total = 100.0 *. float_of_int part /. float_of_int (max 1 total)

let compute aig (mapping : Lut_map.mapping) =
  let stats = Aig.origin_stats aig in
  (* Attribute each mapped LUT to the origin of its root node: the LUT
     exists because that node survived to the mapped netlist. *)
  let lut_counts : (Aig.Origin.t, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (lut : Lut_map.lut) ->
      let o = Aig.node_origin aig lut.Lut_map.root in
      Hashtbl.replace lut_counts o
        (1 + Option.value ~default:0 (Hashtbl.find_opt lut_counts o)))
    mapping.Lut_map.luts;
  let total_live = List.fold_left (fun acc (_, _, live) -> acc + live) 0 stats in
  let total_luts = mapping.Lut_map.lut_count in
  let rows =
    List.map
      (fun ((o : Aig.Origin.t), created, live) ->
        let luts = Option.value ~default:0 (Hashtbl.find_opt lut_counts o) in
        {
          pass = o.Aig.Origin.pass;
          kind = o.Aig.Origin.kind;
          created;
          live;
          live_pct = pct live total_live;
          luts;
          lut_pct = pct luts total_luts;
        })
      stats
    |> List.filter (fun r -> r.live > 0 || r.created > 0 || r.luts > 0)
    |> List.sort (fun a b ->
           let c = compare b.live a.live in
           if c <> 0 then c else String.compare a.pass b.pass)
  in
  (* Engine-level view: collapse passes by move kind. *)
  let by_kind : (Aig.Origin.kind, row) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let acc =
        Option.value
          ~default:
            {
              pass = Aig.Origin.kind_to_string r.kind;
              kind = r.kind;
              created = 0;
              live = 0;
              live_pct = 0.0;
              luts = 0;
              lut_pct = 0.0;
            }
          (Hashtbl.find_opt by_kind r.kind)
      in
      Hashtbl.replace by_kind r.kind
        {
          acc with
          created = acc.created + r.created;
          live = acc.live + r.live;
          luts = acc.luts + r.luts;
        })
    rows;
  let engines =
    Hashtbl.fold (fun _ r acc -> r :: acc) by_kind []
    |> List.map (fun r ->
           { r with live_pct = pct r.live total_live; lut_pct = pct r.luts total_luts })
    |> List.sort (fun a b ->
           let c = compare b.live a.live in
           if c <> 0 then c else String.compare a.pass b.pass)
  in
  { total_live; total_luts; rows; engines }

(* --- rendering --- *)

let survival_cell ppf r =
  (* A rebuild can expand a pass's cone in place, so survival is not
     clamped; "-" marks origins that never created (only adopted). *)
  if r.created = 0 then Fmt.pf ppf "%8s" "-"
  else Fmt.pf ppf "%7.1f%%" (pct r.live r.created)

let pp_rows ~header ppf rows =
  Fmt.pf ppf "%-28s %8s %8s %8s %8s %8s %8s@." header "created" "live"
    "live%" "surv%" "luts" "lut%";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-28s %8d %8d %7.1f%% %a %8d %7.1f%%@." r.pass r.created
        r.live r.live_pct survival_cell r r.luts r.lut_pct)
    rows

let pp ppf t =
  Fmt.pf ppf "final AIG: %d live AND nodes, %d mapped LUT-6s@.@."
    t.total_live t.total_luts;
  pp_rows ~header:"engine (move kind)" ppf t.engines;
  Fmt.pf ppf "@.";
  pp_rows ~header:"pass" ppf t.rows

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let row_to_json r =
  Printf.sprintf
    "{\"pass\":\"%s\",\"kind\":\"%s\",\"created\":%d,\"live\":%d,\"live_pct\":%.3f,\"luts\":%d,\"lut_pct\":%.3f}"
    (json_escape r.pass)
    (Aig.Origin.kind_to_string r.kind)
    r.created r.live r.live_pct r.luts r.lut_pct

let to_json t =
  Printf.sprintf
    "{\"total_live\":%d,\"total_luts\":%d,\"engines\":[%s],\"passes\":[%s]}"
    t.total_live t.total_luts
    (String.concat "," (List.map row_to_json t.engines))
    (String.concat "," (List.map row_to_json t.rows))
