(** Registered-metric catalog for [sbm metrics].

    Renders the process-global metrics registry (populated by linking
    the engines — no run needed) as text or JSON, and checks it
    against the metric table documented in DESIGN.md so code and docs
    cannot drift apart silently. *)

val to_text : unit -> string
(** Aligned text table of every registered metric:
    name, kind, unit, engine, description. *)

val to_json : unit -> string
(** Same catalog as a JSON document:
    [{"version":1,"metrics":[{"name":...,"kind":...,...},...]}]. *)

val check : string -> (int, string list) result
(** [check doc_src] compares the registry against the markdown metric
    table in [doc_src] (rows whose first cell is a backticked metric
    name, then kind / unit / engine cells). [Ok n] when the [n]
    registered metrics all match; [Error msgs] lists each drift —
    missing from the doc, documented but unregistered, or mismatched
    kind/unit/engine. *)
