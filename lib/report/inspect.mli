(** Post-mortem dump reader ([sbm inspect]).

    Parses the versioned crash dump {!Sbm_obs.Postmortem} writes on an
    uncaught exception or fatal signal ([sbm-crash-<pid>.json]) and
    renders it for a human: what the run was doing (open span stack),
    what the watchdog concluded, and the tail of the flight-recorder
    timeline. The loader accepts ["-"] for stdin and reports empty or
    truncated documents as one-line errors, so the CLI can honor its
    exit-2 contract. *)

type event = {
  seq : int;
  t_ms : float;  (** delta from recorder start *)
  t_ns : float option;
      (** absolute monotonic clock, present in dumps that carry it *)
  severity : string;  (** "debug" | "info" | "warn" | "error" *)
  engine : string;
  id : string;
  message : string;
  metrics : (string * int) list;
}

type verdict = {
  rule : string;
  detail : string;
  action : string;  (** "note" | "abort" *)
  v_t_ms : float;
}

(** One open span at crash time. *)
type frame = { frame_name : string; opened_ms : float }

type dump = {
  version : int;
  reason : string;
  pid : int;
  elapsed_ms : float;
  t0_ns : float option;
      (** absolute monotonic clock at recorder start, when present *)
  span_stack : frame list;  (** outermost first *)
  verdicts : verdict list;
  counters : (string * int) list;
  recorded : int;  (** events ever recorded, including overwritten ones *)
  dropped : int;  (** recorded events the ring no longer holds *)
  events : event list;  (** oldest first *)
}

(** Highest dump version this reader understands. *)
val supported_version : int

(** [of_json s] parses a dump document. [Error]s are one-line: empty
    input, malformed/truncated JSON, missing version, or a version
    newer than {!supported_version}. *)
val of_json : string -> (dump, string) result

(** [load path] reads and parses a dump file; [path = "-"] reads
    stdin. *)
val load : string -> (dump, string) result

(** [pp ?last ?abs ppf dump] renders the human report: header, open
    span stack, watchdog verdicts, the last [last] (default 20)
    timeline events, and non-zero counters. Timestamps print as deltas
    from run start ("+123.4 ms"); with [abs] they print the absolute
    monotonic clock in ns instead (falling back to deltas for dumps
    that predate [t0_ns]). *)
val pp : ?last:int -> ?abs:bool -> Format.formatter -> dump -> unit

(** [to_json dump] re-emits the dump in its canonical schema (the
    [--json] output; round-trips through {!of_json}). *)
val to_json : dump -> string
