(** A minimal recursive-descent JSON parser, sufficient for every
    document the telemetry layer emits (trace reports, QoR snapshots,
    gradient explain streams). No dependency beyond the stdlib; the
    test-suite uses it to round-trip the reporters. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string
(** Raised by {!parse} with a position-carrying message. *)

(** [parse s] parses exactly one JSON value spanning all of [s]
    (surrounding whitespace allowed). Raises {!Bad} on malformed
    input or trailing garbage. *)
val parse : string -> t

(** [read_source src] reads the whole of [src] — a file path, or ["-"]
    for stdin. Works on pipes (no length probe). [Error] carries the
    system message on open failure. *)
val read_source : string -> (string, string) result

(** {1 Accessors} — total functions returning options/defaults so
    callers can probe optional fields without matching. *)

(** [member key json] is the field [key] of an object, if present. *)
val member : string -> t -> t option

val to_int : t option -> int option
val to_float : t option -> float option
val to_str : t option -> string option
val to_bool : t option -> bool option

(** [to_list j] is the elements of a [List], or [[]]. *)
val to_list : t option -> t list

(** [to_obj j] is the fields of an [Obj], or [[]]. *)
val to_obj : t option -> (string * t) list
