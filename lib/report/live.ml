(* `sbm top` — live dashboard over a --status JSONL file.

   The status file is rewritten whole via atomic rename by the
   sampler, so each poll here reads a complete, consistent history
   (one JSON sample per line, oldest first). Rendering is pure — the
   interactive loop in [run] adds the ANSI clear/home sequence itself,
   so tests and --once get plain text. *)

type view = {
  seq : int;
  t_ms : float;
  pass : string;
  counters : (string * float) list;
  gauges : (string * float) list;
  verdicts : int;
  abort : bool;
  finished : bool;
}

let view_of_json j =
  let num key = Option.value ~default:0.0 (Json.to_float (Json.member key j)) in
  let flag key = Option.value ~default:false (Json.to_bool (Json.member key j)) in
  let pairs key =
    match Json.member key j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> match v with Json.Num n -> Some (k, n) | _ -> None)
        fields
    | _ -> []
  in
  {
    seq = int_of_float (num "seq");
    t_ms = num "t_ms";
    pass = Option.value ~default:"" (Json.to_str (Json.member "pass" j));
    counters = pairs "counters";
    gauges = pairs "gauges";
    verdicts = int_of_float (num "verdicts");
    abort = flag "abort";
    finished = flag "finished";
  }

(* Parse the status file into views, oldest first. Lines that fail to
   parse are skipped, whatever the failure: the atomic-rename protocol
   makes torn lines impossible from the sampler itself, but a reader
   racing a rewriting/appending writer (NFS, a copied file, a ledger
   tail) can still see a truncated final line, and an unrelated file
   should degrade, not crash. *)
let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | src ->
    let views =
      String.split_on_char '\n' src
      |> List.filter_map (fun line ->
             if String.trim line = "" then None
             else
               match view_of_json (Json.parse line) with
               | v -> Some v
               | exception _ -> None)
    in
    if views = [] then Error (path ^ ": no samples") else Ok views

let fmt_rate r =
  if Float.abs r >= 10_000. then Printf.sprintf "%.0f/s" r
  else if Float.abs r >= 10. then Printf.sprintf "%.1f/s" r
  else Printf.sprintf "%.2f/s" r

(* One screenful: header, open-span path, non-zero counters with a
   per-second rate derived from the previous sample, then gauges. *)
let render ?prev (v : view) =
  let b = Buffer.create 2048 in
  let state =
    if v.abort then "ABORT REQUESTED"
    else if v.finished then "finished"
    else "running"
  in
  Buffer.add_string b
    (Printf.sprintf "sbm top — t=+%.1fs  seq=%d  verdicts=%d  [%s]\n" (v.t_ms /. 1000.)
       v.seq v.verdicts state);
  Buffer.add_string b
    (Printf.sprintf "pass: %s\n\n" (if v.pass = "" then "(idle)" else v.pass));
  let dt_s =
    match prev with
    | Some p when v.t_ms > p.t_ms -> Some ((v.t_ms -. p.t_ms) /. 1000.)
    | _ -> None
  in
  let live = List.filter (fun (_, x) -> x <> 0.0) v.counters in
  if live = [] then Buffer.add_string b "counters: (none yet)\n"
  else begin
    let nw =
      List.fold_left (fun acc (k, _) -> max acc (String.length k)) 8 live
    in
    Buffer.add_string b (Printf.sprintf "%-*s  %12s  %10s\n" nw "counter" "total" "rate");
    List.iter
      (fun (k, x) ->
        let rate =
          match (dt_s, prev) with
          | Some dt, Some p ->
            let px =
              Option.value ~default:0.0 (List.assoc_opt k p.counters)
            in
            fmt_rate ((x -. px) /. dt)
          | _ -> "-"
        in
        Buffer.add_string b (Printf.sprintf "%-*s  %12.0f  %10s\n" nw k x rate))
      live
  end;
  Buffer.add_char b '\n';
  List.iter
    (fun (k, x) -> Buffer.add_string b (Printf.sprintf "%-28s  %12.0f\n" k x))
    v.gauges;
  Buffer.contents b

let last2 views =
  match List.rev views with
  | last :: prev :: _ -> (Some prev, last)
  | [ last ] -> (None, last)
  | [] -> assert false (* load never returns [] *)

(* Interactive loop: poll the file, clear the screen, redraw. Exits 0
   once the run writes its finished sample (or immediately with
   --once), 2 when --once finds no readable file. While looping, a
   missing file just means the run has not started yet — keep
   waiting. *)
let run ?(refresh_ms = 500.) ?(once = false) path =
  let interactive = (not once) && Unix.isatty Unix.stdout in
  let draw () =
    match load path with
    | Error msg ->
      if once then begin
        prerr_endline ("sbm top: " ^ msg);
        Some 2
      end
      else begin
        if interactive then print_string "\x1b[2J\x1b[H";
        Printf.printf "sbm top: waiting for %s ...\n%!" path;
        None
      end
    | Ok views ->
      let prev, last = last2 views in
      if interactive then print_string "\x1b[2J\x1b[H";
      print_string (render ?prev last);
      flush stdout;
      if once || last.finished then Some 0 else None
  in
  let rec loop () =
    match draw () with
    | Some code -> code
    | None ->
      Unix.sleepf (Float.max 0.05 (refresh_ms /. 1000.));
      loop ()
  in
  loop ()
