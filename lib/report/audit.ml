(* Divergence auditor over determinism audit trails (sbm audit).

   Two fingerprint trails (Fingerprint JSONL streams, or in-process
   record lists) are aligned positionally and scanned for the first
   record where any deterministic component differs. Because every
   record's chain commits to the whole prefix, the first difference
   IS the first diverging boundary: everything before it is equal
   component-by-component, so the report localizes a nondeterminism
   bug to the exact pass or partition-merge boundary where state
   first disagreed, and names which component (structure vs counters
   vs bank vs seeds) carried the disagreement. When the counter delta
   vectors are present the drill-down goes one level further and
   names the individual counters. *)

module FP = Sbm_obs.Fingerprint

(* --- loading --- *)

let record_of_json line : FP.record option =
  match Json.parse line with
  | exception Json.Bad _ -> None
  | j -> (
    let hex f =
      match Json.(to_str (member f j)) with
      | None -> Some 0L
      | Some s -> Int64.of_string_opt ("0x" ^ s)
    in
    match
      ( Json.(to_int (member "seq" j)),
        Option.bind Json.(to_str (member "kind" j)) FP.kind_of_string,
        Json.(to_str (member "label" j)),
        hex "structure", hex "counters", hex "bank", hex "seeds", hex "chain" )
    with
    | ( Some seq, Some kind, Some label,
        Some structure, Some counters_digest, Some bank, Some seeds,
        Some chain ) ->
      let counters =
        match Json.member "counter_values" j with
        | None -> []
        | Some v ->
          Json.to_obj (Some v)
          |> List.filter_map (fun (k, v) ->
                 match Json.to_int (Some v) with
                 | Some n -> Some (k, n)
                 | None -> None)
      in
      Some
        { FP.seq; kind; label; structure; counters_digest; bank; seeds;
          chain; counters }
    | _ -> None)

(* Append-only stream: a run that died mid-write leaves a torn final
   line; skip unparsable lines instead of failing, like the status
   and ledger readers. *)
let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Ok
      (String.split_on_char '\n' s
      |> List.filter_map (fun line ->
             let line = String.trim line in
             if line = "" then None else record_of_json line))

(* --- alignment --- *)

type component = Label | Structure | Counters | Bank | Seeds

let component_to_string = function
  | Label -> "label"
  | Structure -> "structure"
  | Counters -> "counters"
  | Bank -> "bank"
  | Seeds -> "seeds"

type divergence = {
  index : int;  (** position of the first diverging record *)
  a : FP.record option;  (** [None] = trail A ended before [index] *)
  b : FP.record option;
  components : component list;  (** which fields disagree (both present) *)
  counter_diffs : (string * int option * int option) list;
      (** per-counter drill-down when the counter vectors are present *)
}

type outcome = Identical of int | Diverged of divergence

let record_components (a : FP.record) (b : FP.record) =
  List.filter_map
    (fun (c, eq) -> if eq then None else Some c)
    [
      (Label, a.FP.label = b.FP.label && a.FP.kind = b.FP.kind);
      (Structure, a.FP.structure = b.FP.structure);
      (Counters, a.FP.counters_digest = b.FP.counters_digest);
      (Bank, a.FP.bank = b.FP.bank);
      (Seeds, a.FP.seeds = b.FP.seeds);
    ]

let counter_diffs (a : FP.record) (b : FP.record) =
  if a.FP.counters = [] && b.FP.counters = [] then []
  else begin
    let keys =
      List.sort_uniq String.compare
        (List.map fst a.FP.counters @ List.map fst b.FP.counters)
    in
    List.filter_map
      (fun k ->
        let va = List.assoc_opt k a.FP.counters in
        let vb = List.assoc_opt k b.FP.counters in
        if va = vb then None else Some (k, va, vb))
      keys
  end

let compare_trails (ta : FP.record list) (tb : FP.record list) =
  let rec go i ta tb =
    match (ta, tb) with
    | [], [] -> Identical i
    | a :: _, [] -> Diverged { index = i; a = Some a; b = None;
                               components = []; counter_diffs = [] }
    | [], b :: _ -> Diverged { index = i; a = None; b = Some b;
                               components = []; counter_diffs = [] }
    | a :: ta', b :: tb' -> (
      match record_components a b with
      | [] -> go (i + 1) ta' tb'
      | components ->
        let counter_diffs =
          if List.mem Counters components then counter_diffs a b else []
        in
        Diverged { index = i; a = Some a; b = Some b; components;
                   counter_diffs })
  in
  go 0 ta tb

let exit_code = function Identical _ -> 0 | Diverged _ -> 1

(* One-line localization for test failure messages. *)
let describe (d : divergence) =
  match (d.a, d.b) with
  | Some a, Some b when a.FP.label = b.FP.label ->
    Printf.sprintf "first diverging boundary: %s (%s record %d; %s)"
      a.FP.label (FP.kind_to_string a.FP.kind) d.index
      (String.concat ", " (List.map component_to_string d.components))
  | Some a, Some b ->
    Printf.sprintf
      "trails disagree on the boundary sequence at record %d: %s vs %s"
      d.index a.FP.label b.FP.label
  | Some a, None ->
    Printf.sprintf "trail B ends at record %d; trail A continues with %s"
      d.index a.FP.label
  | None, Some b ->
    Printf.sprintf "trail A ends at record %d; trail B continues with %s"
      d.index b.FP.label
  | None, None -> "empty divergence (bug)"

(* --- report rendering --- *)

let pp_record_line fmt side (r : FP.record) =
  Format.fprintf fmt "  %s: %-5s %s@,     structure=%016Lx counters=%016Lx bank=%016Lx seeds=%016Lx chain=%016Lx@,"
    side (FP.kind_to_string r.FP.kind) r.FP.label r.FP.structure
    r.FP.counters_digest r.FP.bank r.FP.seeds r.FP.chain

let pp ?(name_a = "A") ?(name_b = "B") fmt outcome =
  Format.pp_open_vbox fmt 0;
  (match outcome with
  | Identical n ->
    Format.fprintf fmt "trails identical: %d records (%s = %s)@," n name_a
      name_b
  | Diverged d ->
    Format.fprintf fmt "trails diverge at record %d@," d.index;
    (match (d.a, d.b) with
    | Some a, Some b when a.FP.label = b.FP.label ->
      Format.fprintf fmt "  boundary: %s (%s)@," a.FP.label
        (FP.kind_to_string a.FP.kind);
      Format.fprintf fmt "  diverged components: %s@,"
        (String.concat ", " (List.map component_to_string d.components))
    | _ ->
      Format.fprintf fmt "  the boundary sequences themselves disagree@,");
    Option.iter (fun r -> pp_record_line fmt name_a r) d.a;
    Option.iter (fun r -> pp_record_line fmt name_b r) d.b;
    (match d.a with
    | Some _ when d.b = None ->
      Format.fprintf fmt "  %s has no record %d: its trail ended early@,"
        name_b d.index
    | _ -> ());
    (match d.b with
    | Some _ when d.a = None ->
      Format.fprintf fmt "  %s has no record %d: its trail ended early@,"
        name_a d.index
    | _ -> ());
    if d.counter_diffs <> [] then begin
      Format.fprintf fmt "  diverging counters:@,";
      List.iter
        (fun (k, va, vb) ->
          let s = function None -> "-" | Some v -> string_of_int v in
          Format.fprintf fmt "    %-40s %s=%s %s=%s@," k name_a (s va)
            name_b (s vb))
        d.counter_diffs
    end;
    (* Everything after the first divergence is noise: the chain has
       already forked, so later records necessarily differ too. *)
    Format.fprintf fmt
      "  (all earlier records agree; later differences are downstream of \
       this one)@,");
  Format.pp_close_box fmt ()
