(** Provenance attribution: which engine's nodes survive.

    Consumes the per-node origin tags maintained by {!Sbm_aig.Aig}
    (see its [Origin] section) and a LUT mapping, and answers the
    paper's Section V contribution question quantitatively: what share
    of the final network — live AND nodes, and mapped LUT-6s — does
    each pass and each engine account for, and what fraction of the
    nodes a pass built actually survived. Shares sum to 100 % by
    construction (every live node carries exactly one tag; the seed
    network's untouched nodes count under [seed]). *)

type row = {
  pass : string;  (** origin pass id, e.g. ["gradient/rewrite"] *)
  kind : Sbm_aig.Aig.Origin.kind;
  created : int;
      (** AND constructions ever performed under this tag, speculative
          candidates included — a churn measure *)
  live : int;  (** reachable live ANDs carrying the tag *)
  live_pct : float;  (** share of the final AIG, percent *)
  luts : int;  (** mapped LUTs whose root carries the tag *)
  lut_pct : float;  (** share of the mapped netlist, percent *)
}

type t = {
  total_live : int;  (** = [Aig.size], the sum of [live] over rows *)
  total_luts : int;  (** = [mapping.lut_count], the sum of [luts] *)
  rows : row list;  (** per distinct origin, live share descending *)
  engines : row list;
      (** aggregated by move kind; [pass] holds the kind name *)
}

(** [compute aig mapping] groups the live nodes of [aig] and the LUTs
    of [mapping] (a LUT mapping of the same [aig]) by origin. *)
val compute : Sbm_aig.Aig.t -> Sbm_lutmap.Lut_map.mapping -> t

(** Human-readable tables: the engine-level summary, then per-pass
    detail. Survival percent is live/created (unclamped — an in-place
    rebuild can expand a pass's cone); ["-"] marks adopt-only tags. *)
val pp : Format.formatter -> t -> unit

(** Machine-readable form:
    [{"total_live":N,"total_luts":N,"engines":[ROW...],"passes":[ROW...]}]
    where ROW =
    [{"pass":S,"kind":S,"created":N,"live":N,"live_pct":F,"luts":N,"lut_pct":F}]. *)
val to_json : t -> string
