(* Chrome/Perfetto trace-event exporter.

   Converts a v2 telemetry trace (the `sbm opt --report trace.json`
   document) into the Trace Event Format that ui.perfetto.dev and
   chrome://tracing load directly:
   - every span becomes a B/E duration-event pair on one thread;
   - every live-telemetry sample ("samples", written when the run had
     `--status`) becomes one "C" counter event per counter and gauge;
   - every flight-recorder event ("events") and watchdog verdict
     ("verdicts") becomes an "i" instant event.

   v2 spans store durations, not start times (the telemetry layer
   records wall_ms per span), so start timestamps are synthesized:
   root spans are laid out sequentially from 0, children sequentially
   from their parent's start. Within a flow trace spans nest without
   gaps, so the reconstruction matches the real timeline up to the
   untraced slack between siblings — which Perfetto shows as idle
   space inside the parent, exactly where it was. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One emitted trace event. [ts] is microseconds, the format's native
   unit. *)
let event b ~first ~ph ~name ~ts ?dur ?(pid = 1) ?(tid = 1) ?scope ?args () =
  if not first then Buffer.add_char b ',';
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f" (escape name)
       ph ts);
  (match dur with
  | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" d)
  | None -> ());
  (match scope with
  | Some s -> Buffer.add_string b (Printf.sprintf ",\"s\":\"%s\"" s)
  | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid tid);
  (match args with
  | Some a ->
    Buffer.add_string b ",\"args\":";
    Buffer.add_string b a
  | None -> ());
  Buffer.add_char b '}'

let span_args j =
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  let first = ref true in
  let add k v =
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v)
  in
  List.iter
    (fun key ->
      match Json.to_int (Json.member key j) with
      | Some v -> add key (string_of_int v)
      | None -> ())
    [ "size_before"; "size_after"; "depth_before"; "depth_after" ];
  (match Json.member "counters" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (k, v) ->
        match v with
        | Json.Num n -> add (escape k) (Printf.sprintf "%g" n)
        | _ -> ())
      fields
  | _ -> ());
  Buffer.add_char b '}';
  if !first then None else Some (Buffer.contents b)

(* Spans: B at the synthesized start, E at start + wall_ms. Children
   are laid out sequentially from the parent's start (v2 stores no
   per-span start time). Returns this span's end, so the caller can
   place the next sibling after it. *)
let rec emit_span b ~first ~t0 j =
  let wall_ms =
    Option.value ~default:0.0 (Json.to_float (Json.member "wall_ms" j))
  in
  let name =
    Option.value ~default:"?" (Json.to_str (Json.member "name" j))
  in
  event b ~first:!first ~ph:"B" ~name ~ts:(t0 *. 1000.)
    ?args:(span_args j) ();
  first := false;
  let child_t = ref t0 in
  List.iter
    (fun c -> child_t := emit_span b ~first ~t0:!child_t c)
    (Json.to_list (Json.member "children" j));
  let t1 = t0 +. wall_ms in
  event b ~first:false ~ph:"E" ~name ~ts:(t1 *. 1000.) ();
  t1

(* Counter series from the status-sampler history: one C event per
   counter/gauge per sample, named by the metric. Perfetto renders
   each name as its own counter track. *)
let emit_samples b ~first samples =
  List.iter
    (fun s ->
      let t_ms =
        Option.value ~default:0.0 (Json.to_float (Json.member "t_ms" s))
      in
      let series key =
        match Json.member key s with
        | Some (Json.Obj fields) ->
          List.iter
            (fun (k, v) ->
              match v with
              | Json.Num n ->
                event b ~first:!first ~ph:"C" ~name:k ~ts:(t_ms *. 1000.)
                  ~args:(Printf.sprintf "{\"value\":%g}" n)
                  ();
                first := false
              | _ -> ())
            fields
        | _ -> ()
      in
      series "counters";
      series "gauges")
    samples

let metric_args ?(extra = []) j =
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  let first = ref true in
  let add k v =
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_string b (Printf.sprintf "\"%s\":%s" (escape k) v)
  in
  List.iter (fun (k, v) -> add k v) extra;
  (match Json.member "metrics" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (k, v) ->
        match v with Json.Num n -> add k (Printf.sprintf "%g" n) | _ -> ())
      fields
  | _ -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let emit_events b ~first events =
  List.iter
    (fun e ->
      let t_ms =
        Option.value ~default:0.0 (Json.to_float (Json.member "t_ms" e))
      in
      let engine =
        Option.value ~default:"?" (Json.to_str (Json.member "engine" e))
      in
      let id = Option.value ~default:"" (Json.to_str (Json.member "id" e)) in
      let name = if id = "" then engine else engine ^ ":" ^ id in
      let extra =
        List.filter_map
          (fun key ->
            Option.map
              (fun v -> (key, Printf.sprintf "\"%s\"" (escape v)))
              (Json.to_str (Json.member key e)))
          [ "message"; "severity" ]
      in
      event b ~first:!first ~ph:"i" ~name ~ts:(t_ms *. 1000.) ~scope:"t"
        ~args:(metric_args ~extra e) ();
      first := false)
    events

let emit_verdicts b ~first verdicts =
  List.iter
    (fun v ->
      let t_ms =
        Option.value ~default:0.0 (Json.to_float (Json.member "t_ms" v))
      in
      let rule =
        Option.value ~default:"?" (Json.to_str (Json.member "rule" v))
      in
      let extra =
        List.filter_map
          (fun key ->
            Option.map
              (fun s -> (key, Printf.sprintf "\"%s\"" (escape s)))
              (Json.to_str (Json.member key v)))
          [ "detail"; "action" ]
      in
      event b ~first:!first ~ph:"i" ~name:("watchdog:" ^ rule)
        ~ts:(t_ms *. 1000.) ~scope:"p"
        ~args:(metric_args ~extra v) ();
      first := false)
    verdicts

let convert src =
  match Json.parse src with
  | exception Json.Bad msg -> Error ("trace: " ^ msg)
  | j ->
    let spans = Json.to_list (Json.member "spans" j) in
    if spans = [] then Error "trace: no spans (is this a v2 trace report?)"
    else begin
      let b = Buffer.create 65536 in
      Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
      (* Metadata first: names the process/thread in the Perfetto UI. *)
      event b ~first:true ~ph:"M" ~name:"process_name" ~ts:0.
        ~args:"{\"name\":\"sbm\"}" ();
      event b ~first:false ~ph:"M" ~name:"thread_name" ~ts:0.
        ~args:"{\"name\":\"flow\"}" ();
      let first = ref false in
      let t = ref 0.0 in
      List.iter (fun s -> t := emit_span b ~first ~t0:!t s) spans;
      emit_samples b ~first (Json.to_list (Json.member "samples" j));
      emit_events b ~first (Json.to_list (Json.member "events" j));
      emit_verdicts b ~first (Json.to_list (Json.member "verdicts" j));
      Buffer.add_string b "]}";
      Ok (Buffer.contents b)
    end
