type span = { name : string; wall_ms : float; children : span list }

(* --- loading --- *)

let rec span_of_json j =
  {
    name = Option.value ~default:"?" (Json.to_str (Json.member "name" j));
    wall_ms = Option.value ~default:0.0 (Json.to_float (Json.member "wall_ms" j));
    children = List.map span_of_json (Json.to_list (Json.member "children" j));
  }

let of_json s =
  match Json.parse s with
  | exception Json.Bad msg -> Error ("malformed JSON: " ^ msg)
  | json -> (
    match Json.member "spans" json with
    | None -> Error "not a trace: missing \"spans\""
    | Some (Json.List l) -> Ok (List.map span_of_json l)
    | Some _ -> Error "not a trace: \"spans\" is not an array")

let load path =
  match Json.read_source path with
  | Error msg -> Error msg
  | Ok s -> (
    let label = if path = "-" then "stdin" else path in
    match String.trim s with
    | "" -> Error (label ^ ": empty input")
    | s -> (
      match of_json s with
      | Ok _ as ok -> ok
      | Error msg -> Error (label ^ ": " ^ msg)))

(* --- aggregation --- *)

let children_ms s = List.fold_left (fun acc c -> acc +. c.wall_ms) 0.0 s.children

(* Self time = wall time minus time attributed to children; clamped at
   0 against clock jitter between a span and its children. *)
let self_ms s = Float.max 0.0 (s.wall_ms -. children_ms s)

type agg = { agg_name : string; calls : int; total_ms : float; self_ms : float }

let aggregate spans =
  let tbl : (string, int * float * float) Hashtbl.t = Hashtbl.create 32 in
  let rec walk s =
    let calls, total, self =
      Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt tbl s.name)
    in
    Hashtbl.replace tbl s.name
      (calls + 1, total +. s.wall_ms, self +. self_ms s);
    List.iter walk s.children
  in
  List.iter walk spans;
  Hashtbl.fold
    (fun agg_name (calls, total_ms, self_ms) acc ->
      { agg_name; calls; total_ms; self_ms } :: acc)
    tbl []
  |> List.sort (fun a b ->
         let c = compare b.self_ms a.self_ms in
         if c <> 0 then c else String.compare a.agg_name b.agg_name)

let pp_hotspots ?(top = 20) ppf spans =
  let aggs = aggregate spans in
  let total_self = List.fold_left (fun acc a -> acc +. a.self_ms) 0.0 aggs in
  let shown = List.filteri (fun i _ -> i < top) aggs in
  Fmt.pf ppf "%-28s %6s %12s %12s %7s@." "span" "calls" "total ms"
    "self ms" "self%";
  List.iter
    (fun a ->
      Fmt.pf ppf "%-28s %6d %12.3f %12.3f %6.1f%%@." a.agg_name a.calls
        a.total_ms a.self_ms
        (100.0 *. a.self_ms /. Float.max 1e-9 total_self))
    shown;
  if List.length aggs > top then
    Fmt.pf ppf "(%d more spans below the top %d)@." (List.length aggs - top) top

(* --- collapsed stacks (flamegraph.pl input) --- *)

(* One line per distinct stack: "root;child;leaf WEIGHT". Weights are
   integer self-time microseconds (flamegraph.pl requires integer
   sample counts); identical stacks are merged. Semicolons inside span
   names would corrupt the stack separator, so they are rewritten. *)
let to_collapsed spans =
  let weights : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let frame name =
    String.map (fun c -> if c = ';' then ':' else c) name
  in
  let rec walk path s =
    let stack = if path = "" then frame s.name else path ^ ";" ^ frame s.name in
    (match Hashtbl.find_opt weights stack with
    | Some w -> Hashtbl.replace weights stack (w +. self_ms s)
    | None ->
      Hashtbl.add weights stack (self_ms s);
      order := stack :: !order);
    List.iter (walk stack) s.children
  in
  List.iter (walk "") spans;
  List.rev !order
  |> List.filter_map (fun stack ->
         let us =
           int_of_float (Float.round (1000.0 *. Hashtbl.find weights stack))
         in
         if us > 0 then Some (Printf.sprintf "%s %d" stack us) else None)

let write_collapsed spans path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_collapsed spans))
