module Aig = Sbm_aig.Aig
module Rng = Sbm_util.Rng

type benchmark =
  | Adder
  | Bar
  | Div
  | Hypotenuse
  | Log2
  | Max
  | Mult
  | Sin
  | Sqrt
  | Square
  | Arbiter
  | Cavlc
  | Ctrl
  | Dec
  | I2c
  | Int2float
  | Mem_ctrl
  | Priority
  | Router
  | Voter

let all =
  [
    Adder; Bar; Div; Hypotenuse; Log2; Max; Mult; Sin; Sqrt; Square;
    Arbiter; Cavlc; Ctrl; Dec; I2c; Int2float; Mem_ctrl; Priority; Router; Voter;
  ]

let table1_set =
  [ Arbiter; Div; I2c; Log2; Max; Mem_ctrl; Mult; Priority; Sin; Hypotenuse; Sqrt; Square ]

let table2_set =
  [
    Arbiter; Cavlc; Div; I2c; Log2; Mem_ctrl; Mult; Router; Sin; Hypotenuse;
    Sqrt; Square; Voter;
  ]

(* Small benchmarks whose full SBM-low flow completes in seconds: the
   CI regression gate's default subset ([sbm bench]). A mix of real
   (dec, int2float) and seeded-random (ctrl, router, cavlc) control
   logic keeps both generator families under watch. *)
let quick_set = [ Cavlc; Ctrl; Dec; Int2float; Router ]

(* Width scale under which a benchmark's full SBM-low flow completes
   in tens of seconds rather than hours: the harness default for
   whole-suite runs ([sbm bench --suite], bench tables). Quick-set
   members are all 1.0, so the CI gate's committed snapshots are
   unaffected by suite defaults. *)
let default_scale = function
  | Max | Log2 | Sin -> 0.25
  | Div | Mult | Square | Sqrt -> 0.125
  | Hypotenuse -> 0.0625
  | Voter -> 0.1
  | Arbiter | I2c | Priority | Cavlc | Router | Mem_ctrl | Adder | Bar | Ctrl
  | Dec | Int2float ->
    1.0

let name = function
  | Adder -> "adder"
  | Bar -> "bar"
  | Div -> "div"
  | Hypotenuse -> "hypotenuse"
  | Log2 -> "log2"
  | Max -> "max"
  | Mult -> "mult"
  | Sin -> "sin"
  | Sqrt -> "sqrt"
  | Square -> "square"
  | Arbiter -> "arbiter"
  | Cavlc -> "cavlc"
  | Ctrl -> "ctrl"
  | Dec -> "dec"
  | I2c -> "i2c"
  | Int2float -> "int2float"
  | Mem_ctrl -> "mem_ctrl"
  | Priority -> "priority"
  | Router -> "router"
  | Voter -> "voter"

let of_name s = List.find_opt (fun b -> name b = s) all

let io_signature = function
  | Adder -> (256, 129)
  | Bar -> (135, 128)
  | Div -> (128, 128)
  | Hypotenuse -> (256, 128)
  | Log2 -> (32, 32)
  | Max -> (512, 130)
  | Mult -> (128, 128)
  | Sin -> (24, 25)
  | Sqrt -> (128, 64)
  | Square -> (64, 128)
  | Arbiter -> (256, 129)
  | Cavlc -> (10, 11)
  | Ctrl -> (7, 26)
  | Dec -> (8, 256)
  | I2c -> (147, 142)
  | Int2float -> (11, 7)
  | Mem_ctrl -> (1204, 1231)
  | Priority -> (128, 8)
  | Router -> (60, 30)
  | Voter -> (1001, 1)

(* ------------------------------------------------------------------ *)
(* Arithmetic benchmarks: real implementations. *)

let scaled scale w =
  let s = max 2 (int_of_float (float_of_int w *. scale)) in
  if s mod 2 = 1 then s + 1 else s

let gen_adder aig w =
  let a = Word.inputs aig w in
  let b = Word.inputs aig w in
  Word.outputs aig (Word.add aig a b)

let gen_bar aig w =
  let data = Word.inputs aig w in
  let log =
    let rec go l = if 1 lsl l >= w then l else go (l + 1) in
    go 1
  in
  let amount = Word.inputs aig log in
  Word.outputs aig (Word.shift_left aig data amount)

let gen_div aig w =
  let a = Word.inputs aig w in
  let b = Word.inputs aig w in
  let q, r = Word.divmod aig a b in
  Word.outputs aig q;
  Word.outputs aig r

let gen_hypotenuse aig w =
  let a = Word.inputs aig w in
  let b = Word.inputs aig w in
  let a2 = Word.square aig a in
  let b2 = Word.square aig b in
  let sum = Word.add aig a2 b2 in
  (* Full precision (2w+2 bits), then saturate the root to w bits:
     sqrt(a^2+b^2) can exceed 2^w - 1 by half a bit. *)
  let sum = Word.zero_extend sum (2 * (w + 1)) in
  let root = Word.isqrt aig sum in
  let overflow = root.(w) in
  let out = Array.init w (fun i -> Sbm_aig.Aig.bor aig root.(i) overflow) in
  Word.outputs aig out

let msb_encode aig bits width =
  (* Index of the highest set bit: scan low to high so the highest
     wins the final mux. *)
  let index = ref (Word.const aig ~width 0) in
  Array.iteri
    (fun i b -> index := Word.mux aig b (Word.const aig ~width i) !index)
    bits;
  !index

let gen_log2 aig w =
  let x = Word.inputs aig w in
  let log =
    let rec go l = if 1 lsl l >= w then l else go (l + 1) in
    go 1
  in
  let e = msb_encode aig x log in
  (* Normalize x to [2^(w-1), 2^w): shift left by (w-1 - e). *)
  let shift_amount, _ = Word.sub aig (Word.const aig ~width:log (w - 1)) e in
  let y = Word.shift_left aig x shift_amount in
  (* Fraction bits by repeated squaring on reduced precision. *)
  let precision = min 16 w in
  let frac_bits = w - log in
  let top = Array.sub y (w - precision) precision in
  let cur = ref top in
  let frac = Array.make frac_bits Aig.const0 in
  for i = 0 to frac_bits - 1 do
    let sq = Word.mul aig !cur !cur in
    (* cur in [1,2) as fixed point with MSB weight 1; sq in [1,4) over
       2*precision bits; bit (2*precision-1) tells if sq >= 2. *)
    let ge2 = sq.(2 * precision - 1) in
    frac.(i) <- ge2;
    let hi = Array.sub sq precision precision in
    let lo = Array.sub sq (precision - 1) precision in
    cur := Word.mux aig ge2 hi lo
  done;
  (* Output: exponent then fraction, MSB-aligned to w bits. *)
  let out = Array.append (Array.of_list (List.rev (Array.to_list frac))) e in
  Word.outputs aig (Array.sub (Word.zero_extend out w) 0 w)

let gen_max aig w =
  let words = Array.init 4 (fun _ -> Word.inputs aig w) in
  let pick a b =
    let ge = Word.uge aig a b in
    (Word.mux aig ge a b, ge)
  in
  let m01, ge01 = pick words.(0) words.(1) in
  let m23, ge23 = pick words.(2) words.(3) in
  let mx, ge_final = pick m01 m23 in
  Word.outputs aig mx;
  (* 2-bit index of the winning word. *)
  let low_bit = Aig.bmux aig ge_final (Aig.lnot ge01) (Aig.lnot ge23) in
  let high_bit = Aig.lnot ge_final in
  Word.outputs aig [| low_bit; high_bit |]

let gen_mult aig w =
  let a = Word.inputs aig w in
  let b = Word.inputs aig w in
  Word.outputs aig (Word.mul aig a b)

(* Conditional add/subtract: d=1 computes a-b, d=0 computes a+b. *)
let addsub aig d a b =
  let w = Array.length a in
  let out = Array.make w Aig.const0 in
  let carry = ref d in
  for i = 0 to w - 1 do
    let bi = Aig.bxor aig b.(i) d in
    let s1 = Aig.bxor aig a.(i) bi in
    out.(i) <- Aig.bxor aig s1 !carry;
    carry := Aig.bor aig (Aig.band aig a.(i) bi) (Aig.band aig s1 !carry)
  done;
  out

let arctan_table w iterations =
  (* atan(2^-i) in turns scaled to w-bit fixed point (2^w = pi/2). *)
  Array.init iterations (fun i ->
      let angle = atan (Float.pow 2.0 (float_of_int (-i))) /. (Float.pi /. 2.0) in
      int_of_float (angle *. Float.pow 2.0 (float_of_int (w - 1))))

let gen_sin aig w =
  let angle = Word.inputs aig w in
  let iw = w + 2 in
  let iterations = w in
  let atans = arctan_table iw iterations in
  (* CORDIC gain compensation: x starts at 1/K. *)
  let gain = ref 1.0 in
  for i = 0 to iterations - 1 do
    gain := !gain *. sqrt (1.0 +. Float.pow 2.0 (float_of_int (-2 * i)))
  done;
  let x0 = int_of_float (Float.pow 2.0 (float_of_int (iw - 2)) /. !gain) in
  let x = ref (Word.const aig ~width:iw x0) in
  let y = ref (Word.const aig ~width:iw 0) in
  let z = ref (Word.zero_extend angle iw) in
  for i = 0 to iterations - 1 do
    let d = !z.(iw - 1) in
    (* d=1: z negative, rotate clockwise. *)
    let xs = Array.init iw (fun j -> if j + i < iw then !x.(j + i) else Aig.const0) in
    let ys = Array.init iw (fun j -> if j + i < iw then !y.(j + i) else Aig.const0) in
    let x' = addsub aig (Aig.lnot d) !x ys in
    let y' = addsub aig d !y xs in
    let z' = addsub aig (Aig.lnot d) !z (Word.const aig ~width:iw atans.(i)) in
    x := x';
    y := y';
    z := z'
  done;
  Word.outputs aig (Array.sub !y 0 (w + 1))

let gen_sqrt aig w =
  let x = Word.inputs aig w in
  Word.outputs aig (Word.isqrt aig x)

let gen_square aig w =
  let a = Word.inputs aig w in
  Word.outputs aig (Word.square aig a)

(* ------------------------------------------------------------------ *)
(* Control benchmarks. *)

let gen_arbiter aig n =
  let req = Array.init n (fun _ -> Aig.add_input aig) in
  let mask = Array.init n (fun _ -> Aig.add_input aig) in
  let chain bits =
    (* One-hot first set bit, by a ripple prefix-OR. *)
    let grants = Array.make n Aig.const0 in
    let seen = ref Aig.const0 in
    for i = 0 to n - 1 do
      grants.(i) <- Aig.band aig bits.(i) (Aig.lnot !seen);
      seen := Aig.bor aig !seen bits.(i)
    done;
    (grants, !seen)
  in
  let masked = Array.init n (fun i -> Aig.band aig req.(i) mask.(i)) in
  let g1, any1 = chain masked in
  let g2, any2 = chain req in
  for i = 0 to n - 1 do
    ignore (Aig.add_output aig (Aig.bmux aig any1 g1.(i) g2.(i)))
  done;
  ignore (Aig.add_output aig (Aig.bor aig any1 any2))

let gen_priority aig n =
  let bits = Array.init n (fun _ -> Aig.add_input aig) in
  let index, valid = Word.priority_encode aig bits in
  Word.outputs aig index;
  ignore (Aig.add_output aig valid)

let gen_voter aig n =
  let bits = Array.init n (fun _ -> Aig.add_input aig) in
  let count = Word.popcount aig bits in
  let width = Array.length count in
  let threshold = Word.const aig ~width ((n / 2) + 1) in
  ignore (Aig.add_output aig (Word.uge aig count threshold))

let gen_dec aig n =
  let bits = Array.init n (fun _ -> Aig.add_input aig) in
  for v = 0 to (1 lsl n) - 1 do
    let lits =
      List.init n (fun i -> if (v lsr i) land 1 = 1 then bits.(i) else Aig.lnot bits.(i))
    in
    ignore (Aig.add_output aig (Aig.band_list aig lits))
  done

let gen_int2float aig =
  (* 11-bit two's-complement integer to a tiny float:
     sign (1) | exponent (4) | mantissa (2). *)
  let x = Word.inputs aig 11 in
  let sign = x.(10) in
  let neg, _ = Word.sub aig (Word.const aig ~width:11 0) x in
  let mag = Word.mux aig sign neg x in
  let e = msb_encode aig mag 4 in
  (* Mantissa: the two bits below the leading one. *)
  let shift, _ = Word.sub aig (Word.const aig ~width:4 10) e in
  let normalized = Word.shift_left aig mag (Word.zero_extend shift 4) in
  let m = [| normalized.(8); normalized.(9) |] in
  ignore (Aig.add_output aig sign);
  Word.outputs aig e;
  Word.outputs aig m

(* Structured random control logic: a deterministic pool of mixed
   gates with reconvergence, standing in for FSM next-state/output
   logic (see DESIGN.md substitutions). *)
let gen_control aig ~seed ~inputs ~outputs ~gates =
  let rng = Rng.create seed in
  let pool = Sbm_util.Vec.create ~capacity:(inputs + gates) () in
  let in_pool = Hashtbl.create (inputs + gates) in
  let push l =
    let v = Aig.node_of l in
    if not (Hashtbl.mem in_pool v) then begin
      Hashtbl.add in_pool v ();
      Sbm_util.Vec.push pool (Aig.lpos l)
    end
  in
  for _ = 1 to inputs do
    push (Aig.add_input aig)
  done;
  let pick () =
    let n = Sbm_util.Vec.size pool in
    (* Mild recency bias gives the netlist depth without starving
       variety (a uniform and a recent window, mixed). *)
    let idx =
      if Rng.bool rng then Rng.int rng n
      else n - 1 - Rng.int rng (max 1 (min n (inputs + (n / 2))))
    in
    let l = Sbm_util.Vec.get pool idx in
    if Rng.bool rng then Aig.lnot l else l
  in
  let created = ref 0 in
  let attempts = ref 0 in
  let size_before = Aig.num_nodes aig in
  while !created < gates && !attempts < gates * 50 do
    incr attempts;
    let l =
      match Rng.int rng 5 with
      | 0 -> Aig.band aig (pick ()) (pick ())
      | 1 -> Aig.bor aig (pick ()) (pick ())
      | 2 -> Aig.bxor aig (pick ()) (pick ())
      | 3 -> Aig.bmux aig (pick ()) (pick ()) (pick ())
      | _ ->
        (* majority of three: common in control logic *)
        let a = pick () and b = pick () and c = pick () in
        Aig.bor aig
          (Aig.band aig a b)
          (Aig.bor aig (Aig.band aig a c) (Aig.band aig b c))
    in
    if Aig.is_and aig (Aig.node_of l) then push l;
    created := Aig.num_nodes aig - size_before
  done;
  let n = Sbm_util.Vec.size pool in
  for _ = 1 to outputs do
    (* Outputs read mostly deep nodes. *)
    let idx = n - 1 - Rng.int rng (max 1 (n / 3)) in
    let l = Sbm_util.Vec.get pool idx in
    ignore (Aig.add_output aig (if Rng.bool rng then Aig.lnot l else l))
  done

let random_control ~seed ~inputs ~outputs ~gates =
  let aig = Aig.create ~expected:(4 * gates) () in
  gen_control aig ~seed ~inputs ~outputs ~gates;
  fst (Aig.compact aig)

let generate ?(scale = 1.0) ?seed b =
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Epfl.generate: scale";
  let aig = Aig.create ~expected:4096 () in
  let s w = scaled scale w in
  (* The control benchmarks are seeded structured-random logic; [seed]
     replaces their built-in seed so regression snapshots can pin (or
     deliberately vary) the generated instance. Arithmetic benchmarks
     are functionally determined and ignore it. *)
  let ctrl_seed default = Option.value ~default seed in
  (match b with
  | Adder -> gen_adder aig (s 128)
  | Bar -> gen_bar aig (s 128)
  | Div -> gen_div aig (s 64)
  | Hypotenuse -> gen_hypotenuse aig (s 128)
  | Log2 -> gen_log2 aig (s 32)
  | Max -> gen_max aig (s 128)
  | Mult -> gen_mult aig (s 64)
  | Sin -> gen_sin aig (s 24)
  | Sqrt -> gen_sqrt aig (s 128)
  | Square -> gen_square aig (s 64)
  | Arbiter -> gen_arbiter aig (s 128)
  | Priority -> gen_priority aig (s 128)
  | Voter -> gen_voter aig (if scale >= 1.0 then 1001 else (2 * s 500) + 1)
  | Dec -> gen_dec aig 8
  | Int2float -> gen_int2float aig
  | Cavlc ->
    gen_control aig ~seed:(ctrl_seed 0xCA71C) ~inputs:10 ~outputs:11 ~gates:350
  | Ctrl ->
    gen_control aig ~seed:(ctrl_seed 0xC781) ~inputs:7 ~outputs:26 ~gates:120
  | Router ->
    gen_control aig ~seed:(ctrl_seed 0x80073) ~inputs:60 ~outputs:30 ~gates:200
  | I2c ->
    gen_control aig ~seed:(ctrl_seed 0x12C) ~inputs:147 ~outputs:142 ~gates:1100
  | Mem_ctrl ->
    gen_control aig ~seed:(ctrl_seed 0x3E3C) ~inputs:1204 ~outputs:1231
      ~gates:8000);
  fst (Aig.compact aig)

let paper_lut6 = function
  | Arbiter -> Some (365, 117)
  | Div -> Some (3267, 1211)
  | I2c -> Some (207, 15)
  | Log2 -> Some (6567, 119)
  | Max -> Some (522, 189)
  | Mem_ctrl -> Some (2086, 23)
  | Mult -> Some (4920, 93)
  | Priority -> Some (103, 26)
  | Sin -> Some (1227, 55)
  | Hypotenuse -> Some (40377, 4530)
  | Sqrt -> Some (3075, 1106)
  | Square -> Some (3242, 76)
  | Adder | Bar | Cavlc | Ctrl | Dec | Int2float | Router | Voter -> None

let paper_aig = function
  | Arbiter -> Some (879, 228)
  | Cavlc -> Some (483, 78)
  | Div -> Some (19250, 6228)
  | I2c -> Some (710, 25)
  | Log2 -> Some (30522, 348)
  | Mem_ctrl -> Some (7644, 40)
  | Mult -> Some (25371, 317)
  | Router -> Some (96, 21)
  | Sin -> Some (4987, 153)
  | Hypotenuse -> Some (209460, 24926)
  | Sqrt -> Some (19706, 5399)
  | Square -> Some (17010, 343)
  | Voter -> Some (9817, 66)
  | Adder | Bar | Ctrl | Dec | Int2float | Max | Priority -> None
