(** EPFL-style benchmark generators.

    The offline container cannot fetch the EPFL suite, so each
    benchmark is regenerated from its functional definition with the
    suite's exact I/O signature (see DESIGN.md, substitution table).
    Arithmetic circuits (adder, bar, div, hypotenuse, log2, max,
    mult, sin, sqrt, square) are real implementations of the intended
    function; control circuits (arbiter, cavlc, ctrl, i2c, int2float,
    mem_ctrl, priority, router, voter, dec) are either real (priority,
    voter, dec, int2float, arbiter) or seeded structured random logic
    with matching signature and size class (cavlc, ctrl, i2c,
    mem_ctrl, router).

    [generate] is deterministic: equal benchmarks produce identical
    networks. [scale] shrinks word widths for runtime-bounded
    experiments (the bench harness reports which scale it ran). *)

type benchmark =
  | Adder
  | Bar
  | Div
  | Hypotenuse
  | Log2
  | Max
  | Mult
  | Sin
  | Sqrt
  | Square
  | Arbiter
  | Cavlc
  | Ctrl
  | Dec
  | I2c
  | Int2float
  | Mem_ctrl
  | Priority
  | Router
  | Voter

(** All benchmarks, arithmetic first. *)
val all : benchmark list

(** The MtM ("more than a million") arithmetic subset used by
    Tables I and II. *)
val table1_set : benchmark list
val table2_set : benchmark list

(** Small, fast benchmarks: the default subset of [sbm bench] and the
    CI regression gate. *)
val quick_set : benchmark list

(** [default_scale b] is the width scale at which the harness runs [b]
    in whole-suite experiments: 1.0 for control logic and the small
    arithmetic cores, reduced for the giant arithmetic benchmarks so a
    full-suite run stays minutes, not hours. Every quick-set member is
    1.0. *)
val default_scale : benchmark -> float

val name : benchmark -> string
val of_name : string -> benchmark option

(** [io_signature b] is the paper's (inputs, outputs) for the
    benchmark at scale 1.0. *)
val io_signature : benchmark -> int * int

(** [generate ?scale ?seed b] constructs the network. [scale] in
    (0, 1] divides word widths (arithmetic benchmarks only; control
    benchmarks ignore it). Default 1.0. [seed] replaces the built-in
    RNG seed of the structured-random control benchmarks (cavlc, ctrl,
    i2c, mem_ctrl, router) so snapshots can pin or vary the generated
    instance; functionally determined benchmarks ignore it. *)
val generate : ?scale:float -> ?seed:int -> benchmark -> Sbm_aig.Aig.t

(** [random_control ~seed ~inputs ~outputs ~gates] is the seeded
    structured-random control-logic generator behind cavlc / i2c /
    mem_ctrl / router, exposed so the ASIC evaluation (Table III) can
    draw a population of distinct control-dominated designs. *)
val random_control :
  seed:int -> inputs:int -> outputs:int -> gates:int -> Sbm_aig.Aig.t

(** Paper reference values for the experiment harness. *)

(** [paper_lut6 b] is (LUT-6 count, levels) from Table I, if the
    benchmark appears there. *)
val paper_lut6 : benchmark -> (int * int) option

(** [paper_aig b] is (AIG size, levels) from Table II, if present. *)
val paper_aig : benchmark -> (int * int) option
