module Aig = Sbm_aig.Aig
module Sim = Sbm_aig.Sim
module Rng = Sbm_util.Rng

(* Signature of a node across simulation rounds, canonicalized so a
   node and its complement land in the same class: if the first bit is
   set, the whole signature is complemented (phase recorded). *)
let signatures aig ~sim_rounds rng =
  let n = Aig.num_nodes aig in
  let sigs = Array.make n [] in
  for _ = 1 to sim_rounds do
    let values = Sim.simulate aig (Sim.random_inputs aig rng) in
    for v = 0 to n - 1 do
      sigs.(v) <- values.(v) :: sigs.(v)
    done
  done;
  Array.map
    (fun words ->
      match words with
      | [] -> ([], false)
      | w :: _ ->
        let phase = Int64.logand w 1L = 1L in
        let canon = if phase then List.map Int64.lognot words else words in
        (canon, phase))
    sigs

(* Read the satisfying assignment back as a primary-input vector
   (indexed by input position). Only called after a [Sat] result;
   purely a model read, so extraction never changes the solver's
   state or the sweep's decisions. *)
let model_inputs solver vars aig =
  let bits = Array.make (Aig.num_inputs aig) false in
  for v = 0 to Aig.num_nodes aig - 1 do
    if Aig.is_input aig v && vars.(v) > 0 then
      bits.(Aig.input_index aig v) <- Solver.model_value solver vars.(v)
  done;
  bits

let run ?(obs = Sbm_obs.null) ?(sim_rounds = 4) ?(conflict_limit = 1000) ?on_cex
    aig =
  let aig, _ = Aig.compact aig in
  let rng = Rng.create 0x5eed in
  let sigs = signatures aig ~sim_rounds rng in
  let solver = Solver.create () in
  let sat_calls = ref 0 in
  let vars = Tseitin.encode solver aig in
  (* A [Sat] answer is a counterexample: the pair looked equivalent to
     the signatures (same class) but a concrete input assignment
     distinguishes it. Feed it to the subscriber (the simulation
     prefilter folds it into its pattern bank so the same false
     positive never survives simulation again). *)
  let cex result =
    match (on_cex, result) with
    | Some f, Solver.Sat -> f (model_inputs solver vars aig)
    | _ -> ()
  in
  (* Group live AND nodes and PIs by canonical signature. *)
  let classes : (int64 list, (int * bool) list) Hashtbl.t = Hashtbl.create 256 in
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if Aig.is_and aig v || Aig.is_input aig v then begin
        let canon, phase = sigs.(v) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt classes canon) in
        Hashtbl.replace classes canon ((v, phase) :: prev)
      end)
    order;
  let merged = ref 0 in
  Hashtbl.iter
    (fun _ members ->
      match List.rev members with
      | [] | [ _ ] -> ()
      | (repr, rphase) :: rest ->
        (* Try to merge every later member into the earliest one. *)
        List.iter
          (fun (v, vphase) ->
            if Aig.is_and aig v && not (Aig.is_dead aig v) && not (Aig.is_dead aig repr)
            then begin
              let compl = rphase <> vphase in
              let a = vars.(repr) and b = vars.(v) in
              if a > 0 && b > 0 then begin
                let b' = if compl then -b else b in
                (* Equivalent iff (a & ~b') and (~a & b') are both
                   unsatisfiable. *)
                incr sat_calls;
                let r1 = Solver.solve ~assumptions:[ a; -b' ] ~conflict_limit solver in
                cex r1;
                let r2 =
                  if r1 = Solver.Unsat then begin
                    incr sat_calls;
                    let r = Solver.solve ~assumptions:[ -a; b' ] ~conflict_limit solver in
                    cex r;
                    r
                  end
                  else Solver.Sat
                in
                if
                  r1 = Solver.Unsat && r2 = Solver.Unsat
                  && not (Aig.in_tfi aig ~node:v ~root:repr)
                then begin
                  Aig.replace aig v (Aig.lit_of repr compl);
                  incr merged
                end
              end
            end)
          rest)
    classes;
  (let module FR = Sbm_obs.Flight_recorder in
   if FR.enabled () then
     FR.record ~severity:FR.Info ~engine:"sat" ~id:"sweep"
       ~metrics:
         [ ("classes", Hashtbl.length classes); ("sat_calls", !sat_calls);
           ("merged", !merged); ("restarts", Solver.num_restarts solver) ]
       "sweep done");
  Sbm_obs.Watchdog.poll ();
  (* Registered-handle bumps feed the span tree (when tracing) and the
     process-global registry (always, for live telemetry). *)
  Sbm_obs.bump obs Sat_metrics.sweep_classes (Hashtbl.length classes);
  Sbm_obs.bump obs Sat_metrics.sweep_sat_calls !sat_calls;
  Sbm_obs.bump obs Sat_metrics.sweep_merged !merged;
  Sbm_obs.bump obs Sat_metrics.conflicts (Solver.num_conflicts solver);
  Sbm_obs.bump obs Sat_metrics.decisions (Solver.num_decisions solver);
  Sbm_obs.bump obs Sat_metrics.propagations (Solver.num_propagations solver);
  Sbm_obs.bump obs Sat_metrics.restarts (Solver.num_restarts solver);
  let swept, _ = Aig.compact aig in
  (swept, !merged)
