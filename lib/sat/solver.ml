module Vec = Sbm_util.Vec

type result = Sat | Unsat | Unknown

(* Internal literal encoding: 2*v for +v, 2*v+1 for -v (v >= 1). *)
let lit_of_dimacs d = if d > 0 then 2 * d else (2 * -d) + 1
let lvar l = l lsr 1
let lneg l = l lxor 1

type t = {
  mutable nvars : int;
  mutable clauses : int array array;
  mutable nclauses : int;
  mutable watches : Vec.t array; (* indexed by literal *)
  mutable assign : int array; (* per var: -1 undef, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : int array; (* clause index or -1 *)
  mutable activity : float array;
  mutable phase : int array; (* saved phase per var *)
  mutable seen : int array;
  trail : Vec.t;
  trail_lim : Vec.t;
  heap : Vec.t; (* lazy max-heap of candidate decision variables *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 64 [||];
    nclauses = 0;
    watches = Array.make 16 (Vec.create ());
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.0;
    phase = Array.make 8 0;
    seen = Array.make 8 0;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    heap = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
  }

let num_vars t = t.nvars
let num_conflicts t = t.conflicts
let num_decisions t = t.decisions
let num_propagations t = t.propagations
let num_restarts t = t.restarts

let ensure_var_capacity t =
  let need = t.nvars + 1 in
  if need >= Array.length t.assign then begin
    let cap = max (2 * Array.length t.assign) (need + 1) in
    let ext a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    t.assign <- ext t.assign (-1);
    t.level <- ext t.level 0;
    t.reason <- ext t.reason (-1);
    t.activity <- ext t.activity 0.0;
    t.phase <- ext t.phase 0;
    t.seen <- ext t.seen 0
  end;
  let lit_need = 2 * need + 2 in
  if lit_need >= Array.length t.watches then begin
    let cap = max (2 * Array.length t.watches) lit_need in
    let w = Array.init cap (fun i -> if i < Array.length t.watches then t.watches.(i) else Vec.create ()) in
    t.watches <- w
  end

(* Lazy binary max-heap on variable activity: duplicates are allowed
   (pushed on every bump/unassign); pops skip assigned variables.
   Staleness after activity rescaling only degrades the heuristic,
   never correctness. *)
let heap_push t v =
  let h = t.heap in
  Vec.push h v;
  let i = ref (Vec.size h - 1) in
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.activity.(Vec.get h parent) < t.activity.(Vec.get h !i) then begin
      let tmp = Vec.get h parent in
      Vec.set h parent (Vec.get h !i);
      Vec.set h !i tmp;
      i := parent
    end
    else continue_ := false
  done

let heap_pop t =
  let h = t.heap in
  if Vec.is_empty h then -1
  else begin
    let top = Vec.get h 0 in
    let last = Vec.pop h in
    if Vec.size h > 0 then begin
      Vec.set h 0 last;
      let n = Vec.size h in
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < n && t.activity.(Vec.get h l) > t.activity.(Vec.get h !largest) then
          largest := l;
        if r < n && t.activity.(Vec.get h r) > t.activity.(Vec.get h !largest) then
          largest := r;
        if !largest <> !i then begin
          let tmp = Vec.get h !largest in
          Vec.set h !largest (Vec.get h !i);
          Vec.set h !i tmp;
          i := !largest
        end
        else continue_ := false
      done
    end;
    top
  end

let new_var t =
  t.nvars <- t.nvars + 1;
  ensure_var_capacity t;
  (* Fresh watch vectors: the Array.make in [create] shares one Vec. *)
  t.watches.(2 * t.nvars) <- Vec.create ();
  t.watches.((2 * t.nvars) + 1) <- Vec.create ();
  heap_push t t.nvars;
  t.nvars

let lit_value t l =
  let a = t.assign.(lvar l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level t = Vec.size t.trail_lim

let enqueue t l reason =
  t.assign.(lvar l) <- 1 lxor (l land 1);
  t.level.(lvar l) <- decision_level t;
  t.reason.(lvar l) <- reason;
  t.phase.(lvar l) <- 1 lxor (l land 1);
  Vec.push t.trail l

let add_clause_internal t lits =
  match lits with
  | [||] ->
    t.ok <- false;
    false
  | [| l |] ->
    (match lit_value t l with
    | 1 -> true
    | 0 ->
      t.ok <- false;
      false
    | _ ->
      enqueue t l (-1);
      true)
  | _ ->
    if t.nclauses >= Array.length t.clauses then begin
      let bigger = Array.make (2 * Array.length t.clauses) [||] in
      Array.blit t.clauses 0 bigger 0 t.nclauses;
      t.clauses <- bigger
    end;
    let ci = t.nclauses in
    t.clauses.(ci) <- lits;
    t.nclauses <- ci + 1;
    (* Watch lists are keyed by the watched literal itself: when a
       literal becomes false, the clauses watching it are visited. *)
    Vec.push t.watches.(lits.(0)) ci;
    Vec.push t.watches.(lits.(1)) ci;
    true

let add_clause t dimacs =
  if not t.ok then false
  else begin
    (* Simplify: drop false lits (at level 0), detect tautology. *)
    let lits = List.map lit_of_dimacs dimacs in
    List.iter
      (fun l -> if lvar l > t.nvars then invalid_arg "Solver.add_clause: unknown variable")
      lits;
    let lits = List.sort_uniq Stdlib.compare lits in
    let taut = List.exists (fun l -> List.mem (lneg l) lits) lits in
    if taut then true
    else begin
      let lits =
        List.filter (fun l -> not (lit_value t l = 0 && t.level.(lvar l) = 0)) lits
      in
      if List.exists (fun l -> lit_value t l = 1 && t.level.(lvar l) = 0) lits then true
      else add_clause_internal t (Array.of_list lits)
    end
  end

(* Propagate all enqueued assignments; returns conflicting clause
   index or -1. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < Vec.size t.trail do
    let l = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    (* [l] became true; scan clauses watching [lneg l]. *)
    let false_lit = lneg l in
    let ws = t.watches.(false_lit) in
    let n = Vec.size ws in
    let keep = Vec.create ~capacity:n () in
    let i = ref 0 in
    while !i < n do
      let ci = Vec.get ws !i in
      incr i;
      let c = t.clauses.(ci) in
      (* Ensure the false literal is at position 1. *)
      if c.(0) = false_lit then begin
        c.(0) <- c.(1);
        c.(1) <- false_lit
      end;
      if lit_value t c.(0) = 1 then Vec.push keep ci
      else begin
        (* Find a new watch. *)
        let len = Array.length c in
        let rec find j = if j >= len then -1 else if lit_value t c.(j) <> 0 then j else find (j + 1) in
        let j = find 2 in
        if j >= 0 then begin
          c.(1) <- c.(j);
          c.(j) <- false_lit;
          Vec.push t.watches.(c.(1)) ci
        end
        else begin
          Vec.push keep ci;
          match lit_value t c.(0) with
          | 0 ->
            (* Conflict: keep the remaining watchers, stop. *)
            while !i < n do
              Vec.push keep (Vec.get ws !i);
              incr i
            done;
            t.qhead <- Vec.size t.trail;
            conflict := ci
          | _ ->
            t.propagations <- t.propagations + 1;
            enqueue t c.(0) ci
        end
      end
    done;
    t.watches.(false_lit) <- keep
  done;
  !conflict

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  heap_push t v;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

(* First-UIP conflict analysis; returns (learned clause, backtrack
   level). learned.(0) is the asserting literal. *)
let analyze t confl =
  let learned = Vec.create () in
  Vec.push learned 0 (* placeholder *);
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let idx = ref (Vec.size t.trail - 1) in
  let continue_ = ref true in
  while !continue_ do
    let c = t.clauses.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = lvar q in
      if t.seen.(v) = 0 && t.level.(v) > 0 then begin
        t.seen.(v) <- 1;
        var_bump t v;
        if t.level.(v) >= decision_level t then incr path
        else Vec.push learned q
      end
    done;
    (* Select next literal to expand from the trail. *)
    let rec back () =
      let l = Vec.get t.trail !idx in
      decr idx;
      if t.seen.(lvar l) = 0 then back () else l
    in
    let l = back () in
    t.seen.(lvar l) <- 0;
    decr path;
    if !path <= 0 then begin
      Vec.set learned 0 (lneg l);
      continue_ := false
    end
    else begin
      p := l;
      confl := t.reason.(lvar l)
    end
  done;
  let lits = Vec.to_array learned in
  (* Clear seen flags. *)
  Array.iter (fun l -> t.seen.(lvar l) <- 0) lits;
  (* Backtrack level: max level among lits.(1..). *)
  let blevel = ref 0 in
  let swap_pos = ref 1 in
  Array.iteri
    (fun i l ->
      if i > 0 && t.level.(lvar l) > !blevel then begin
        blevel := t.level.(lvar l);
        swap_pos := i
      end)
    lits;
  if Array.length lits > 1 then begin
    let tmp = lits.(1) in
    lits.(1) <- lits.(!swap_pos);
    lits.(!swap_pos) <- tmp
  end;
  (lits, !blevel)

let backtrack t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      t.assign.(lvar l) <- -1;
      t.reason.(lvar l) <- -1;
      heap_push t (lvar l)
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- bound
  end

let pick_branch t =
  (* Highest-activity unassigned variable from the lazy heap; fall
     back to a scan when the heap runs dry (duplicates were consumed
     earlier). *)
  let rec pop () =
    let v = heap_pop t in
    if v = -1 then -1 else if t.assign.(v) < 0 then v else pop ()
  in
  let v =
    match pop () with
    | -1 ->
      let best = ref (-1) in
      let best_act = ref neg_infinity in
      for v = 1 to t.nvars do
        if t.assign.(v) < 0 && t.activity.(v) > !best_act then begin
          best := v;
          best_act := t.activity.(v)
        end
      done;
      !best
    | v -> v
  in
  if v = -1 then -1
  else if t.phase.(v) = 1 then 2 * v
  else (2 * v) + 1

let solve ?(assumptions = []) ?(conflict_limit = max_int) t =
  if not t.ok then Unsat
  else begin
    backtrack t 0;
    let assumption_lits = List.map lit_of_dimacs assumptions in
    let budget = t.conflicts + conflict_limit in
    let result = ref None in
    let restart_limit = ref 100 in
    let conflicts_here = ref 0 in
    (match propagate t with
    | -1 -> ()
    | _ ->
      t.ok <- false;
      result := Some Unsat);
    while !result = None do
      let confl = propagate t in
      if confl >= 0 then begin
        t.conflicts <- t.conflicts + 1;
        incr conflicts_here;
        if decision_level t <= List.length assumption_lits then result := Some Unsat
        else if t.conflicts >= budget then result := Some Unknown
        else begin
          let lits, blevel = analyze t confl in
          let blevel = max blevel (List.length assumption_lits) in
          backtrack t blevel;
          t.var_inc <- t.var_inc /. 0.95;
          if Array.length lits = 1 then begin
            backtrack t (min (decision_level t) (List.length assumption_lits));
            if lit_value t lits.(0) = 0 then result := Some Unsat
            else if lit_value t lits.(0) < 0 then enqueue t lits.(0) (-1)
          end
          else begin
            ignore (add_clause_internal t lits);
            enqueue t lits.(0) (t.nclauses - 1)
          end
        end
      end
      else if !conflicts_here >= !restart_limit then begin
        conflicts_here := 0;
        restart_limit := !restart_limit * 3 / 2;
        t.restarts <- t.restarts + 1;
        (* Restart storm: a solver restarting this much on one
           instance is the in-flight signal of a hard miter. Every
           64th restart lands in the flight recorder (cheap: one
           branch per restart, and restarts are rare events). *)
        (let module FR = Sbm_obs.Flight_recorder in
         if FR.enabled () && t.restarts land 63 = 0 then
           FR.record ~severity:FR.Warn ~engine:"sat"
             ~metrics:
               [ ("restarts", t.restarts); ("conflicts", t.conflicts);
                 ("vars", t.nvars); ("clauses", t.nclauses) ]
             "restart storm");
        backtrack t (List.length assumption_lits)
      end
      else begin
        (* Extend assumptions, then decide. *)
        let dl = decision_level t in
        if dl < List.length assumption_lits then begin
          let l = List.nth assumption_lits dl in
          match lit_value t l with
          | 1 ->
            (* Already satisfied: open an empty decision level. *)
            Vec.push t.trail_lim (Vec.size t.trail)
          | 0 -> result := Some Unsat
          | _ ->
            Vec.push t.trail_lim (Vec.size t.trail);
            enqueue t l (-1)
        end
        else begin
          match pick_branch t with
          | -1 -> result := Some Sat
          | l ->
            t.decisions <- t.decisions + 1;
            Vec.push t.trail_lim (Vec.size t.trail);
            enqueue t l (-1)
        end
      end
    done;
    let r = Option.get !result in
    (match r with
    | Sat -> () (* keep the trail: the model is read before next call *)
    | Unsat | Unknown -> backtrack t 0);
    r
  end

let model_value t v =
  if v < 1 || v > t.nvars then invalid_arg "Solver.model_value";
  t.assign.(v) = 1
