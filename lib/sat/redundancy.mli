(** SAT-based redundancy removal (paper reference [9]).

    For selected AND nodes, tests whether replacing the node by one of
    its own fanins preserves all primary outputs (i.e. the other fanin
    is redundant under observability don't-cares). The test is a SAT
    call on a miter between the original network and a copy with the
    node bypassed; proven-redundant nodes are replaced. *)

(** [run ?obs ?conflict_limit ?max_candidates ?on_cex aig] tries
    candidates in topological order and returns the number of nodes
    bypassed. The AIG is modified in place. [obs] receives the
    counters [redundancy.tried], [redundancy.removed],
    [redundancy.sat_calls] and [sat.conflicts]/[sat.decisions]/
    [sat.propagations]. [on_cex] receives the primary-input
    assignment of every [Sat] (bypass-unsafe) answer — a model read
    only, feeding the simulation prefilter's pattern bank. *)
val run :
  ?obs:Sbm_obs.span ->
  ?conflict_limit:int ->
  ?max_candidates:int ->
  ?on_cex:(bool array -> unit) ->
  Sbm_aig.Aig.t ->
  int
