(** A CDCL SAT solver.

    Conflict-driven clause learning with two watched literals, 1-UIP
    conflict analysis, VSIDS-style activities, phase saving and
    geometric restarts — the engine behind SAT sweeping, redundancy
    removal (paper refs [8], [9]) and combinational equivalence
    checking. A conflict budget turns long proofs into {!Unknown},
    mirroring the bail-out discipline of the BDD package. *)

type t

type result = Sat | Unsat | Unknown

(** [create ()] is an empty solver instance. *)
val create : unit -> t

(** [new_var t] allocates a fresh variable (numbered from 1). *)
val new_var : t -> int

(** [num_vars t] is the number of allocated variables. *)
val num_vars : t -> int

(** [add_clause t lits] adds a clause in DIMACS convention: positive
    integer [v] is the positive literal of variable [v], negative is
    the complement. Variables must have been allocated.
    Returns [false] if the clause system is already unsatisfiable. *)
val add_clause : t -> int list -> bool

(** [solve ?assumptions ?conflict_limit t] decides satisfiability
    under the given assumption literals. [conflict_limit] bounds the
    number of conflicts before giving up with {!Unknown}. *)
val solve : ?assumptions:int list -> ?conflict_limit:int -> t -> result

(** [model_value t v] is variable [v]'s value in the last {!Sat}
    model. *)
val model_value : t -> int -> bool

(** [num_conflicts t] is the running conflict count (statistics). *)
val num_conflicts : t -> int

(** [num_decisions t] is the running count of branching decisions
    (excluding assumption levels). *)
val num_decisions : t -> int

(** [num_propagations t] is the running count of implied assignments
    made by unit propagation. *)
val num_propagations : t -> int

(** [num_restarts t] is the running count of geometric restarts
    (search abandoned back to the assumption level). *)
val num_restarts : t -> int
