(* Registered metric handles for the SAT layer. Sweep and redundancy
   both flush the solver's global statistics, so the sat.* handles
   live here rather than in either client. *)

module M = Sbm_obs.Metrics

let conflicts =
  M.counter ~engine:"sat" "sat.conflicts" "CDCL conflicts across all queries"

let decisions =
  M.counter ~engine:"sat" "sat.decisions" "CDCL decisions across all queries"

let propagations =
  M.counter ~engine:"sat" "sat.propagations"
    "unit propagations across all queries"

let restarts =
  M.counter ~engine:"sat" "sat.restarts" "CDCL restarts across all queries"

let sweep_classes =
  M.counter ~engine:"sweep" ~unit_:"classes" "sweep.classes"
    "candidate equivalence classes formed by simulation"

let sweep_sat_calls =
  M.counter ~engine:"sweep" ~unit_:"calls" "sweep.sat_calls"
    "SAT equivalence queries issued by sweeping"

let sweep_merged =
  M.counter ~engine:"sweep" ~unit_:"nodes" "sweep.merged"
    "nodes merged into proven-equivalent representatives"

let redundancy_sat_calls =
  M.counter ~engine:"redundancy" ~unit_:"calls" "redundancy.sat_calls"
    "SAT redundancy queries issued"

let redundancy_tried =
  M.counter ~engine:"redundancy" ~unit_:"edges" "redundancy.tried"
    "fanin edges tested for redundancy"

let redundancy_removed =
  M.counter ~engine:"redundancy" ~unit_:"edges" "redundancy.removed"
    "redundant fanin edges removed"
