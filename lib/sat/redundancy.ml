module Aig = Sbm_aig.Aig

(* Read the satisfying assignment back as a primary-input vector
   (indexed by input position); a model read only, after a [Sat]
   result. *)
let model_inputs solver vars aig =
  let bits = Array.make (Aig.num_inputs aig) false in
  for v = 0 to Aig.num_nodes aig - 1 do
    if Aig.is_input aig v && vars.(v) > 0 then
      bits.(Aig.input_index aig v) <- Solver.model_value solver vars.(v)
  done;
  bits

(* Check whether replacing node [v] by literal [cand] preserves every
   output, with one SAT call on a fresh miter. A [Sat] answer carries
   the input assignment under which the bypass flips an output; it is
   handed to [on_cex] (the simulation prefilter's refinement hook). *)
let bypass_safe obs ?on_cex solver_limit aig v cand =
  let solver = Solver.create () in
  let vars = Tseitin.encode solver aig in
  (* Encode the modified cones: copy variables for the TFO of [v],
     where [v] itself is read as [cand]. *)
  let n = Aig.num_nodes aig in
  let shadow = Array.make n 0 in
  let in_tfo = Array.make n false in
  let order = Aig.topo aig in
  Array.iter
    (fun w ->
      if w = v then in_tfo.(w) <- true
      else if Aig.is_and aig w then begin
        let p f = in_tfo.(Aig.node_of f) in
        if p (Aig.fanin0 aig w) || p (Aig.fanin1 aig w) then in_tfo.(w) <- true
      end)
    order;
  let shadow_lit l =
    let w = Aig.node_of l in
    let base =
      if w = v then Tseitin.lit_dimacs vars cand
      else if in_tfo.(w) && shadow.(w) > 0 then shadow.(w)
      else Tseitin.lit_dimacs vars (Aig.lit_of w false)
    in
    if Aig.is_compl l then -base else base
  in
  Array.iter
    (fun w ->
      if in_tfo.(w) && w <> v && Aig.is_and aig w then begin
        let x = Solver.new_var solver in
        let a = shadow_lit (Aig.fanin0 aig w) in
        let b = shadow_lit (Aig.fanin1 aig w) in
        ignore (Solver.add_clause solver [ -x; a ]);
        ignore (Solver.add_clause solver [ -x; b ]);
        ignore (Solver.add_clause solver [ x; -a; -b ]);
        shadow.(w) <- x
      end)
    order;
  (* Miter: some output differs. *)
  let diffs =
    Array.to_list (Aig.outputs aig)
    |> List.filter_map (fun l ->
           let w = Aig.node_of l in
           if not in_tfo.(w) then None
           else begin
             let orig = Tseitin.lit_dimacs vars l in
             let shad = shadow_lit l in
             let d = Solver.new_var solver in
             (* d -> (orig xor shad) *)
             ignore (Solver.add_clause solver [ -d; orig; shad ]);
             ignore (Solver.add_clause solver [ -d; -orig; -shad ]);
             Some d
           end)
  in
  if diffs = [] then true
  else begin
    ignore (Solver.add_clause solver diffs);
    let result = Solver.solve ~conflict_limit:solver_limit solver in
    Sbm_obs.bump obs Sat_metrics.redundancy_sat_calls 1;
    Sbm_obs.bump obs Sat_metrics.conflicts (Solver.num_conflicts solver);
    Sbm_obs.bump obs Sat_metrics.decisions (Solver.num_decisions solver);
    Sbm_obs.bump obs Sat_metrics.propagations (Solver.num_propagations solver);
    Sbm_obs.bump obs Sat_metrics.restarts (Solver.num_restarts solver);
    match result with
    | Solver.Unsat -> true
    | Solver.Sat ->
      (match on_cex with
      | Some f -> f (model_inputs solver vars aig)
      | None -> ());
      false
    | Solver.Unknown -> false
  end

let run ?(obs = Sbm_obs.null) ?(conflict_limit = 1000) ?(max_candidates = 200)
    ?on_cex aig =
  let removed = ref 0 in
  let tried = ref 0 in
  let order = Aig.topo aig in
  Array.iter
    (fun v ->
      if !tried < max_candidates && Aig.is_and aig v && not (Aig.is_dead aig v) then begin
        (* Candidate bypasses: each fanin in place of the node. *)
        let try_cand cand =
          if
            !tried < max_candidates
            && Aig.node_of cand <> v
            && (not (Aig.is_dead aig (Aig.node_of cand)))
            && not (Aig.in_tfi aig ~node:v ~root:(Aig.node_of cand))
          then begin
            incr tried;
            if bypass_safe obs ?on_cex conflict_limit aig v cand then begin
              Aig.replace aig v cand;
              incr removed;
              true
            end
            else false
          end
          else false
        in
        let f0 = Aig.fanin0 aig v and f1 = Aig.fanin1 aig v in
        if not (try_cand f0) then ignore (try_cand f1)
      end)
    order;
  Sbm_obs.bump obs Sat_metrics.redundancy_tried !tried;
  Sbm_obs.bump obs Sat_metrics.redundancy_removed !removed;
  !removed
