(** SAT sweeping: merge functionally equivalent nodes.

    Random simulation partitions nodes into candidate equivalence
    classes by signature; candidate pairs are then proved or refuted
    with incremental SAT (assumption-based miters on a single CNF of
    the whole network). Proven pairs are merged with {!Sbm_aig.Aig.replace},
    later node into earlier node, which is always acyclic on a
    compacted (topologically numbered) AIG. This is the "SAT-based
    sweeping" step of the paper's resynthesis script (ref. [9]). *)

(** [run ?obs ?sim_rounds ?conflict_limit ?on_cex aig] returns the
    swept AIG (a fresh, compacted network) and the number of merged
    nodes. [obs] receives the counters [sweep.classes],
    [sweep.sat_calls], [sweep.merged] and [sat.conflicts]/
    [sat.decisions]/[sat.propagations].

    [on_cex] receives the primary-input assignment of every [Sat]
    answer — a concrete pattern distinguishing a candidate pair the
    signatures could not. The simulation prefilter subscribes with
    {!Sbm_core.Prefilter.refine} so the same false positive never
    survives simulation again. Extraction is a model read only: it
    never changes the solver's behaviour or the sweep's decisions. *)
val run :
  ?obs:Sbm_obs.span ->
  ?sim_rounds:int ->
  ?conflict_limit:int ->
  ?on_cex:(bool array -> unit) ->
  Sbm_aig.Aig.t ->
  Sbm_aig.Aig.t * int
