(** Process-global typed metrics registry.

    Counters, gauges and histograms are registered once, at module
    initialization, with name/kind/unit/engine/description metadata.
    Registering the same name twice is a hard error ([Invalid_argument]):
    the registry doubles as the authoritative metric catalog behind
    [sbm metrics], so silent shadowing would hide drift.

    Counter bumps normally go straight to a process-global atomic cell
    (all engine flush sites run on the main domain). Code running on a
    worker domain wraps its work in {!capture}, which redirects bumps
    into a domain-local shard; the returned deltas are replayed on the
    main domain through the deterministic [Par_merge] order, keeping
    totals bit-identical at any job count. *)

type kind = Counter | Gauge | Histogram

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** Aggregate view of a histogram's observations. Min/max are 0 while
    the histogram is empty. *)
type hstats = { h_count : int; h_sum : int; h_min : int; h_max : int }

type t
(** A registered metric handle. Obtain one via {!counter} / {!gauge} /
    {!gauge_fn} / {!histogram} at module-initialization time and keep
    it; bumping through the handle is a single atomic op. *)

(** {1 Registration} *)

val counter : ?engine:string -> ?unit_:string -> string -> string -> t
(** [counter ?engine ?unit_ name description] registers a monotonic
    counter. [unit_] defaults to ["count"]. @raise Invalid_argument on
    duplicate [name]. *)

val gauge : ?engine:string -> ?unit_:string -> string -> string -> t
(** A settable point-in-time value. *)

val gauge_fn :
  ?engine:string -> ?unit_:string -> string -> string -> (unit -> int) -> t
(** A callback gauge: the function is invoked at snapshot time (e.g.
    GC statistics). It must be safe to call from the sampler domain. *)

val histogram : ?engine:string -> ?unit_:string -> string -> string -> t
(** Records count/sum/min/max of observed values. *)

(** {1 Metadata} *)

val name : t -> string
val kind : t -> kind
val unit_ : t -> string
val engine : t -> string
val description : t -> string

val find : string -> t option
val all : unit -> t list
(** All registered metrics, sorted by name. *)

(** {1 Updates} *)

val add : t -> int -> unit
(** Counter only ([Invalid_argument] otherwise). Inside {!capture} the
    increment lands in the worker shard, else in the global cell. *)

val incr : t -> unit
val set : t -> int -> unit
(** Gauge only. Always writes the global cell. *)

val set_max : t -> int -> unit
(** Gauge only: raise the cell to [v] if larger (atomic max). Safe
    from any domain; used for high-water marks like peak heap and
    table load factors, which must never depend on write order. *)

val observe : t -> int -> unit
(** Histogram only. *)

(** {1 Reads} *)

val value : t -> int
(** Current counter total or gauge value (callback gauges invoke their
    sampler). Histogram: number of observations is in {!hist}. *)

val hist : t -> hstats

val counters_now : unit -> (string * int) list
val gauges_now : unit -> (string * int) list
val hists_now : unit -> (string * hstats) list
(** Sorted-by-name snapshots of every metric of the given kind. *)

val counters_delta :
  (string * int) list -> (string * int) list -> (string * int) list
(** [counters_delta before now] is the sorted list of nonzero counter
    differences between two {!counters_now} snapshots. Shared by the
    per-pass ledger and the fingerprint trail. *)

(** {1 Worker shards} *)

type delta = (string * int) list
(** Counter deltas accumulated by one {!capture} region, sorted by
    name. *)

val capture : (unit -> 'a) -> 'a * delta
(** [capture f] runs [f] with a fresh domain-local counter shard
    installed: every {!add} inside lands in the shard instead of the
    global cells. Returns [f]'s result and the shard's deltas. Nests
    (the inner capture wins while active). *)

val replay : delta -> unit
(** Apply captured deltas to the global cells (main domain, in
    deterministic merge order). Unknown names are ignored — a delta
    can outlive a registry reset in tests. *)

val reset_values : unit -> unit
(** Zero every value cell (registrations are kept). Test helper —
    metrics are process-global, so tests isolate by resetting. *)

(** {1 Built-in process metrics} *)

val live_aig_nodes : t
(** Gauge, set by [Flow] at pass boundaries where the node count is
    already computed ([Aig.size] is a live-node traversal, not O(1)). *)

val pool_queue_depth : t
(** Gauge, set by the [lib/par] pool as batch items are claimed. *)

val peak_heap_words : t
(** Gauge, raised via {!set_max} by [Flow] at pass boundaries and by
    pool workers as they claim jobs; the per-pass ledger reads it as a
    peak-heap sample. *)

val bench_wall_ms_min : t
(** Gauge mirroring the [bench.wall_ms_min] snapshot counter written
    by [sbm bench --repeat]. *)
