(** Anomaly watchdog for long SBM runs.

    The watchdog evaluates configurable thresholds against signals the
    engines feed it — pass open times, per-partition BDD bail-outs,
    per-round gradient gains, GC heap growth — and reacts to a
    violation by recording a [watchdog] event in the
    {!Flight_recorder}, appending a {!verdict} (surfaced by post-mortem
    dumps and [sbm inspect]), and, when armed with {!Abort}, requesting
    a graceful abort: the engines check {!abort_requested} at their
    loop boundaries and wind down with their budget marked exhausted,
    never mid-surgery.

    Like the recorder, the watchdog is a process-global singleton that
    costs one branch when disarmed. It owns the heartbeat: with
    [heartbeat_ms] set, {!poll} prints a one-line progress pulse to
    stderr at most every interval (the [--progress] flag). All hooks
    are safe to call when disarmed.

    Rule table (rule name → trigger → fires):
    - [pass-deadline]: an open pass exceeds [pass_deadline_ms]
      (checked by {!poll}; once per pass activation).
    - [bail-streak]: [max_bail_streak] consecutive partitions each
      bail on the BDD node budget at least once ({!note_partition}).
    - [gradient-stall]: [stall_rounds] consecutive zero-gain gradient
      rounds ({!note_round}).
    - [heap-growth]: the OCaml major heap exceeds [max_heap_mb]
      (checked by {!poll}; fires once per arming). *)

type action = Note | Abort

type config = {
  pass_deadline_ms : float option;
  max_bail_streak : int option;
  stall_rounds : int option;
  max_heap_mb : float option;
  heartbeat_ms : float option;  (** stderr heartbeat interval *)
  action : action;  (** reaction to a violated threshold *)
}

val default_config : config
(** Every threshold off, no heartbeat, action [Note]. *)

type verdict = {
  rule : string;  (** rule name from the table above *)
  detail : string;  (** human-readable trigger description *)
  action : action;
  t_ns : int64;  (** monotonic, since the recorder's origin *)
}

(** {1 Lifecycle} *)

val enabled : unit -> bool

val arm : config -> unit
(** Arm with fresh state (streaks, verdicts, pass stack cleared). Also
    enables the {!Flight_recorder} if it is not already on, so
    verdicts always land somewhere. *)

val disarm : unit -> unit

val verdicts : unit -> verdict list
(** Fired verdicts, oldest first. *)

val abort_requested : unit -> bool
(** True after an [Abort]-armed violation, until the innermost pass
    ends (or {!clear_abort}). *)

val clear_abort : unit -> unit

(** {1 Signals from the flow and the engines} *)

val pass_started : string -> unit
(** A scripted pass opened (pushes onto the watchdog's pass stack). *)

val pass_ended : string -> unit
(** A scripted pass closed; pops its stack entry and clears a pending
    abort — the abort applied to the pass that just wound down. *)

val note_partition : engine:string -> bails:int -> unit
(** A partition finished with [bails] BDD budget bail-outs; [bails= 0]
    resets the streak. *)

val note_round : gain:int -> unit
(** A gradient round finished with total [gain]; positive gain resets
    the stall streak. *)

val poll : unit -> unit
(** Evaluate time- and memory-based rules and emit a heartbeat if one
    is due. Engines call this at partition/round boundaries; it is a
    single branch when disarmed. When stderr is not a TTY the
    heartbeat is throttled to one line per pass-path change (CI logs
    get a pass trail, not a pulse train). *)

(** {1 Heartbeat test hooks} *)

val force_tty : bool option ref
(** Override the stderr-is-a-TTY decision ([None] = ask [Unix.isatty];
    test hook for exercising both throttle modes without a pty). *)

val beats : unit -> int
(** Heartbeat lines printed since {!arm}. *)
