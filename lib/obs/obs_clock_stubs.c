/* Monotonic clock for Sbm_obs spans.

   CLOCK_MONOTONIC is immune to wall-clock adjustments, so span
   durations stay meaningful on long benchmark runs. The native-code
   variant is unboxed and noalloc: reading the clock costs one vDSO
   call and no OCaml allocation. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim int64_t sbm_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec;
}

CAMLprim value sbm_obs_monotonic_ns_byte(value unit)
{
  return caml_copy_int64(sbm_obs_monotonic_ns(unit));
}
