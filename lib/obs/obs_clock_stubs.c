/* Monotonic clock for Sbm_obs spans and the flight recorder.

   A monotonic source is immune to wall-clock adjustments, so span
   durations and event timestamps stay meaningful on long benchmark
   runs. The native-code variant is unboxed and noalloc: reading the
   clock costs one vDSO call and no OCaml allocation.

   Portability: CLOCK_MONOTONIC is POSIX but not universal, so the
   Linux/BSD path is guarded. macOS gets mach_absolute_time (scaled
   through the timebase so the result is still nanoseconds), and any
   other platform falls back to gettimeofday — microsecond resolution
   and not strictly monotonic, but good enough to keep the build and
   the telemetry working off-Linux. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(__APPLE__)

#include <mach/mach_time.h>

CAMLprim int64_t sbm_obs_monotonic_ns(value unit)
{
  static mach_timebase_info_data_t tb; /* zero-initialized: numer == 0 */
  (void)unit;
  if (tb.numer == 0)
    mach_timebase_info(&tb);
  return (int64_t)(mach_absolute_time() * tb.numer / tb.denom);
}

#else /* !__APPLE__ */

#include <time.h>

#if defined(CLOCK_MONOTONIC)

CAMLprim int64_t sbm_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec;
}

#else /* no CLOCK_MONOTONIC: wall-clock fallback */

#include <sys/time.h>

CAMLprim int64_t sbm_obs_monotonic_ns(value unit)
{
  struct timeval tv;
  (void)unit;
  gettimeofday(&tv, NULL);
  return (int64_t)tv.tv_sec * 1000000000LL + (int64_t)tv.tv_usec * 1000LL;
}

#endif /* CLOCK_MONOTONIC */
#endif /* __APPLE__ */

CAMLprim value sbm_obs_monotonic_ns_byte(value unit)
{
  return caml_copy_int64(sbm_obs_monotonic_ns(unit));
}
