module FR = Flight_recorder

type action = Note | Abort

type config = {
  pass_deadline_ms : float option;
  max_bail_streak : int option;
  stall_rounds : int option;
  max_heap_mb : float option;
  heartbeat_ms : float option;
  action : action;
}

let default_config =
  {
    pass_deadline_ms = None;
    max_bail_streak = None;
    stall_rounds = None;
    max_heap_mb = None;
    heartbeat_ms = None;
    action = Note;
  }

type verdict = { rule : string; detail : string; action : action; t_ns : int64 }

(* One stack entry per open scripted pass. [deadline_fired] keeps the
   deadline rule from refiring on every poll of a stuck pass. *)
type pass_frame = {
  p_name : string;
  p_t0 : int64; (* FR.elapsed_ns at open *)
  mutable deadline_fired : bool;
}

type state = {
  mutable config : config option; (* None = disarmed *)
  mutable passes : pass_frame list; (* innermost first *)
  mutable bail_streak : int;
  mutable stall_streak : int;
  mutable heap_fired : bool;
  mutable last_beat_ns : int64;
  mutable last_beat_pass : string; (* pass path at the last beat *)
  mutable beats : int;
  mutable verdicts : verdict list; (* reversed *)
  (* Atomic so worker domains can read it lock-free; only the main
     domain ever writes (workers honour it at partition boundaries). *)
  abort : bool Atomic.t;
}

let st =
  {
    config = None;
    passes = [];
    bail_streak = 0;
    stall_streak = 0;
    heap_fired = false;
    last_beat_ns = 0L;
    last_beat_pass = "";
    beats = 0;
    verdicts = [];
    abort = Atomic.make false;
  }

(* When stderr is not a TTY (CI logs, redirects) the heartbeat fires
   once per pass-path change instead of once per interval, so a long
   pass leaves one line, not hundreds. [force_tty] lets tests pin the
   decision without a pty. *)
let force_tty : bool option ref = ref None

let stderr_is_tty =
  lazy (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

let tty () =
  match !force_tty with Some b -> b | None -> Lazy.force stderr_is_tty

let beats () = st.beats

let enabled () = st.config <> None

let arm config =
  if not (FR.enabled ()) then FR.enable ();
  st.config <- Some config;
  st.passes <- [];
  st.bail_streak <- 0;
  st.stall_streak <- 0;
  st.heap_fired <- false;
  st.last_beat_ns <- 0L;
  st.last_beat_pass <- "";
  st.beats <- 0;
  st.verdicts <- [];
  Atomic.set st.abort false

let disarm () =
  st.config <- None;
  st.passes <- [];
  Atomic.set st.abort false

let verdicts () = List.rev st.verdicts
let abort_requested () = Atomic.get st.abort
let clear_abort () = Atomic.set st.abort false

let fire (config : config) rule detail =
  let v = { rule; detail; action = config.action; t_ns = FR.elapsed_ns () } in
  st.verdicts <- v :: st.verdicts;
  FR.record ~severity:Warn ~engine:"watchdog" ~id:rule detail;
  if config.action = Abort then Atomic.set st.abort true

let pass_started name =
  match st.config with
  | None -> ()
  | Some _ ->
    st.passes <-
      { p_name = name; p_t0 = FR.elapsed_ns (); deadline_fired = false }
      :: st.passes

let pass_ended name =
  match st.config with
  | None -> ()
  | Some _ ->
    (* Pop the innermost matching frame (frames opened under it are
       discarded — defensive against a pass dying without closing its
       children). A pending abort applied to the pass winding down. *)
    let rec drop = function
      | f :: rest when f.p_name = name -> Some rest
      | _ :: rest -> drop rest
      | [] -> None
    in
    (match drop st.passes with
    | Some rest -> st.passes <- rest
    | None -> ());
    Atomic.set st.abort false

let ms_of_ns ns = Int64.to_float ns /. 1e6

let note_partition ~engine ~bails =
  match st.config with
  | None -> ()
  | Some config ->
    if bails > 0 then begin
      st.bail_streak <- st.bail_streak + 1;
      match config.max_bail_streak with
      | Some limit when st.bail_streak >= limit ->
        fire config "bail-streak"
          (Printf.sprintf
             "%d consecutive partitions bailed on the BDD budget (engine %s)"
             st.bail_streak engine);
        st.bail_streak <- 0
      | _ -> ()
    end
    else st.bail_streak <- 0

let note_round ~gain =
  match st.config with
  | None -> ()
  | Some config ->
    if gain > 0 then st.stall_streak <- 0
    else begin
      st.stall_streak <- st.stall_streak + 1;
      match config.stall_rounds with
      | Some limit when st.stall_streak >= limit ->
        fire config "gradient-stall"
          (Printf.sprintf "%d consecutive zero-gain gradient rounds"
             st.stall_streak);
        st.stall_streak <- 0
      | _ -> ()
    end

let heap_mb () =
  let s = Gc.quick_stat () in
  float_of_int s.Gc.heap_words *. float_of_int (Sys.word_size / 8) /. 1e6

let heartbeat config now =
  match config.heartbeat_ms with
  | None -> ()
  | Some interval ->
    let where =
      match st.passes with
      | [] -> "-"
      | fs -> String.concat ">" (List.rev_map (fun f -> f.p_name) fs)
    in
    let interval_due = ms_of_ns (Int64.sub now st.last_beat_ns) >= interval in
    (* Interactive stderr: pulse every interval. Piped stderr: only
       when the run moved to a different pass path (and the interval
       elapsed, so a fast pass sequence doesn't spam either). *)
    let due =
      if tty () then interval_due
      else interval_due && where <> st.last_beat_pass
    in
    if due then begin
      st.last_beat_ns <- now;
      st.last_beat_pass <- where;
      st.beats <- st.beats + 1;
      Printf.eprintf "[sbm %7.1fs] pass=%s heap=%.0fMB events=%d verdicts=%d\n%!"
        (ms_of_ns now /. 1000.0) where (heap_mb ()) (FR.recorded ())
        (List.length st.verdicts)
    end

let poll () =
  match st.config with
  | None -> ()
  | Some config ->
    let now = FR.elapsed_ns () in
    (match config.pass_deadline_ms with
    | None -> ()
    | Some deadline ->
      (* Any open pass past its deadline fires, deepest first; a pass
         that is slow because a child is slow still gets its own
         verdict once the child's fired. *)
      List.iter
        (fun f ->
          if not f.deadline_fired then begin
            let open_ms = ms_of_ns (Int64.sub now f.p_t0) in
            if open_ms > deadline then begin
              f.deadline_fired <- true;
              fire config "pass-deadline"
                (Printf.sprintf "pass '%s' open for %.0fms (deadline %.0fms)"
                   f.p_name open_ms deadline)
            end
          end)
        st.passes);
    (match config.max_heap_mb with
    | None -> ()
    | Some limit ->
      if not st.heap_fired then begin
        let mb = heap_mb () in
        if mb > limit then begin
          st.heap_fired <- true;
          fire config "heap-growth"
            (Printf.sprintf "major heap %.0fMB exceeds %.0fMB" mb limit)
        end
      end);
    heartbeat config now
