external monotonic_ns : unit -> (int64[@unboxed])
  = "sbm_obs_monotonic_ns_byte" "sbm_obs_monotonic_ns"
[@@noalloc]

type rec_ = {
  r_name : string;
  r_t0 : int64;
  mutable r_t1 : int64; (* 0L while open *)
  mutable r_size0 : int;
  mutable r_size1 : int; (* -1 = unset *)
  mutable r_depth0 : int;
  mutable r_depth1 : int;
  mutable r_counters : (string, int ref) Hashtbl.t option;
  mutable r_children : rec_ list; (* reversed *)
}

type span = Noop | Span of rec_

type trace = { mutable roots : rec_ list (* reversed *) }

let null = Noop
let enabled = function Noop -> false | Span _ -> true

let create () = { roots = [] }

let fresh ?(size = -1) ?(depth = -1) name =
  {
    r_name = name;
    r_t0 = monotonic_ns ();
    r_t1 = 0L;
    r_size0 = size;
    r_size1 = -1;
    r_depth0 = depth;
    r_depth1 = -1;
    r_counters = None;
    r_children = [];
  }

let root ?size ?depth trace name =
  let r = fresh ?size ?depth name in
  trace.roots <- r :: trace.roots;
  Span r

let span ?size ?depth parent name =
  match parent with
  | Noop -> Noop
  | Span p ->
    let r = fresh ?size ?depth name in
    p.r_children <- r :: p.r_children;
    Span r

let close ?size ?depth = function
  | Noop -> ()
  | Span r ->
    if r.r_t1 = 0L then r.r_t1 <- monotonic_ns ();
    (match size with Some s -> r.r_size1 <- s | None -> ());
    (match depth with Some d -> r.r_depth1 <- d | None -> ())

let add span name n =
  match span with
  | Noop -> ()
  | Span r ->
    let tbl =
      match r.r_counters with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        r.r_counters <- Some t;
        t
    in
    (match Hashtbl.find_opt tbl name with
    | Some cell -> cell := !cell + n
    | None -> Hashtbl.add tbl name (ref n))

let incr span name = add span name 1

(* --- freezing --- *)

type node = {
  name : string;
  wall_ns : int64;
  size_before : int option;
  size_after : int option;
  depth_before : int option;
  depth_after : int option;
  counters : (string * int) list;
  children : node list;
}

let opt_of_int i = if i < 0 then None else Some i

let rec freeze now r =
  let stop = if r.r_t1 = 0L then now else r.r_t1 in
  let counters =
    match r.r_counters with
    | None -> []
    | Some tbl ->
      Hashtbl.fold (fun k cell acc -> (k, !cell) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    name = r.r_name;
    wall_ns = Int64.max 0L (Int64.sub stop r.r_t0);
    size_before = opt_of_int r.r_size0;
    size_after = opt_of_int r.r_size1;
    depth_before = opt_of_int r.r_depth0;
    depth_after = opt_of_int r.r_depth1;
    counters;
    (* [r_children] is stored newest-first; [rev_map] restores opening
       order. *)
    children = List.rev_map (freeze now) r.r_children;
  }

let spans trace =
  let now = monotonic_ns () in
  List.rev_map (freeze now) trace.roots

let totals trace =
  let acc : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let rec walk n =
    List.iter
      (fun (k, v) ->
        Hashtbl.replace acc k (v + Option.value ~default:0 (Hashtbl.find_opt acc k)))
      n.counters;
    List.iter walk n.children
  in
  List.iter walk (spans trace);
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total trace name =
  Option.value ~default:0 (List.assoc_opt name (totals trace))

(* --- reporters --- *)

let ms_of_ns ns = Int64.to_float ns /. 1e6

let pp ppf trace =
  let rec go indent n =
    let pad = String.make (2 * indent) ' ' in
    Fmt.pf ppf "%s%-*s %8.2fms" pad (max 1 (32 - (2 * indent))) n.name
      (ms_of_ns n.wall_ns);
    (match (n.size_before, n.size_after) with
    | Some b, Some a -> Fmt.pf ppf "  %d -> %d nodes" b a
    | Some b, None -> Fmt.pf ppf "  %d nodes" b
    | None, Some a -> Fmt.pf ppf "  -> %d nodes" a
    | None, None -> ());
    (match (n.depth_before, n.depth_after) with
    | Some b, Some a -> Fmt.pf ppf "  %d -> %d levels" b a
    | Some b, None -> Fmt.pf ppf "  %d levels" b
    | None, Some a -> Fmt.pf ppf "  -> %d levels" a
    | None, None -> ());
    Fmt.pf ppf "@.";
    if n.counters <> [] then begin
      Fmt.pf ppf "%s  | " pad;
      List.iteri
        (fun i (k, v) -> Fmt.pf ppf "%s%s=%d" (if i > 0 then " " else "") k v)
        n.counters;
      Fmt.pf ppf "@."
    end;
    List.iter (go (indent + 1)) n.children
  in
  List.iter (go 0) (spans trace)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let buf_counters b counters =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    counters;
  Buffer.add_char b '}'

let buf_span_fields b n =
  Buffer.add_string b (Printf.sprintf "\"wall_ms\":%.6f" (ms_of_ns n.wall_ns));
  let field name v =
    match v with
    | Some v -> Buffer.add_string b (Printf.sprintf ",\"%s\":%d" name v)
    | None -> ()
  in
  field "size_before" n.size_before;
  field "size_after" n.size_after;
  field "depth_before" n.depth_before;
  field "depth_after" n.depth_after;
  if n.counters <> [] then begin
    Buffer.add_string b ",\"counters\":";
    buf_counters b n.counters
  end

let to_json trace =
  let b = Buffer.create 4096 in
  let rec go n =
    Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\"," (json_escape n.name));
    buf_span_fields b n;
    Buffer.add_string b ",\"children\":[";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        go c)
      n.children;
    Buffer.add_string b "]}"
  in
  Buffer.add_string b "{\"version\":1,\"totals\":";
  buf_counters b (totals trace);
  Buffer.add_string b ",\"spans\":[";
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      go n)
    (spans trace);
  Buffer.add_string b "]}";
  Buffer.contents b

let to_jsonl trace =
  let b = Buffer.create 4096 in
  let rec go path n =
    let path = if path = "" then n.name else path ^ "/" ^ n.name in
    Buffer.add_string b (Printf.sprintf "{\"path\":\"%s\"," (json_escape path));
    buf_span_fields b n;
    Buffer.add_string b "}\n";
    List.iter (go path) n.children
  in
  List.iter (go "") (spans trace);
  Buffer.contents b

let to_csv trace =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "path,wall_ms,size_before,size_after,depth_before,depth_after,counters\n";
  let cell = function Some v -> string_of_int v | None -> "" in
  let rec go path n =
    let path = if path = "" then n.name else path ^ "/" ^ n.name in
    let counters =
      String.concat ";"
        (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) n.counters)
    in
    Buffer.add_string b
      (Printf.sprintf "%s,%.6f,%s,%s,%s,%s,%s\n" path (ms_of_ns n.wall_ns)
         (cell n.size_before) (cell n.size_after) (cell n.depth_before)
         (cell n.depth_after) counters);
    List.iter (go path) n.children
  in
  List.iter (go "") (spans trace);
  Buffer.contents b

let write trace path =
  let render =
    if Filename.check_suffix path ".jsonl" then to_jsonl
    else if Filename.check_suffix path ".csv" then to_csv
    else to_json
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render trace))
