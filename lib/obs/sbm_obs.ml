module Flight_recorder = Flight_recorder
module Watchdog = Watchdog
module Metrics = Metrics
module Status = Status
module Ledger = Ledger
module Fingerprint = Fingerprint

external monotonic_ns : unit -> (int64[@unboxed])
  = "sbm_obs_monotonic_ns_byte" "sbm_obs_monotonic_ns"
[@@noalloc]

type rec_ = {
  r_name : string;
  r_t0 : int64;
  mutable r_t1 : int64; (* 0L while open *)
  mutable r_size0 : int;
  mutable r_size1 : int; (* -1 = unset *)
  mutable r_depth0 : int;
  mutable r_depth1 : int;
  r_gc0 : Gc.stat; (* quick_stat at open *)
  mutable r_gc1 : Gc.stat option; (* quick_stat at close *)
  mutable r_counters : (string, int ref) Hashtbl.t option;
  mutable r_children : rec_ list; (* reversed *)
}

type span = Noop | Span of rec_

type trace = { mutable roots : rec_ list (* reversed *) }

let null = Noop
let enabled = function Noop -> false | Span _ -> true

let create () = { roots = [] }

let fresh ?(size = -1) ?(depth = -1) name =
  {
    r_name = name;
    r_t0 = monotonic_ns ();
    r_t1 = 0L;
    r_size0 = size;
    r_size1 = -1;
    r_depth0 = depth;
    r_depth1 = -1;
    r_gc0 = Gc.quick_stat ();
    r_gc1 = None;
    r_counters = None;
    r_children = [];
  }

(* Live spans double as the flight recorder's notion of "where the
   run is": open/close notify its span stack (one branch when the
   recorder is off), so a crash dump can report the open spans without
   freezing the trace. *)
let root ?size ?depth trace name =
  let r = fresh ?size ?depth name in
  trace.roots <- r :: trace.roots;
  if Flight_recorder.enabled () then Flight_recorder.span_opened name;
  Span r

let span ?size ?depth parent name =
  match parent with
  | Noop -> Noop
  | Span p ->
    let r = fresh ?size ?depth name in
    p.r_children <- r :: p.r_children;
    if Flight_recorder.enabled () then Flight_recorder.span_opened name;
    Span r

let close ?size ?depth = function
  | Noop -> ()
  | Span r ->
    if r.r_t1 = 0L then begin
      r.r_t1 <- monotonic_ns ();
      r.r_gc1 <- Some (Gc.quick_stat ());
      if Flight_recorder.enabled () then Flight_recorder.span_closed r.r_name
    end;
    (match size with Some s -> r.r_size1 <- s | None -> ());
    (match depth with Some d -> r.r_depth1 <- d | None -> ())

let add span name n =
  match span with
  | Noop -> ()
  | Span r ->
    let tbl =
      match r.r_counters with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        r.r_counters <- Some t;
        t
    in
    (match Hashtbl.find_opt tbl name with
    | Some cell -> cell := !cell + n
    | None -> Hashtbl.add tbl name (ref n))

let incr span name = add span name 1

(* A bump through a registered metric handle feeds both sinks: the
   process-global registry (always — the live-telemetry sampler reads
   it even when span tracing is off) and the span counter tree (when a
   span is open — the BENCH snapshot totals come from there and stay
   byte-identical to the pre-registry flush sites). *)
let bump span m n =
  Metrics.add m n;
  add span (Metrics.name m) n

(* --- freezing --- *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type node = {
  name : string;
  wall_ns : int64;
  size_before : int option;
  size_after : int option;
  depth_before : int option;
  depth_after : int option;
  gc : gc_delta;
  counters : (string * int) list;
  children : node list;
}

let opt_of_int i = if i < 0 then None else Some i

let gc_delta_of (g0 : Gc.stat) (g1 : Gc.stat) =
  {
    minor_words = Float.max 0.0 (g1.Gc.minor_words -. g0.Gc.minor_words);
    major_words = Float.max 0.0 (g1.Gc.major_words -. g0.Gc.major_words);
    minor_collections = max 0 (g1.Gc.minor_collections - g0.Gc.minor_collections);
    major_collections = max 0 (g1.Gc.major_collections - g0.Gc.major_collections);
  }

let rec freeze now gc_now r =
  let stop = if r.r_t1 = 0L then now else r.r_t1 in
  let gc_stop = match r.r_gc1 with Some g -> g | None -> gc_now in
  let counters =
    match r.r_counters with
    | None -> []
    | Some tbl ->
      Hashtbl.fold (fun k cell acc -> (k, !cell) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    name = r.r_name;
    wall_ns = Int64.max 0L (Int64.sub stop r.r_t0);
    size_before = opt_of_int r.r_size0;
    size_after = opt_of_int r.r_size1;
    depth_before = opt_of_int r.r_depth0;
    depth_after = opt_of_int r.r_depth1;
    gc = gc_delta_of r.r_gc0 gc_stop;
    counters;
    (* [r_children] is stored newest-first; [rev_map] restores opening
       order. *)
    children = List.rev_map (freeze now gc_now) r.r_children;
  }

let spans trace =
  let now = monotonic_ns () in
  let gc_now = Gc.quick_stat () in
  List.rev_map (freeze now gc_now) trace.roots

let totals trace =
  let acc : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let rec walk n =
    List.iter
      (fun (k, v) ->
        Hashtbl.replace acc k (v + Option.value ~default:0 (Hashtbl.find_opt acc k)))
      n.counters;
    List.iter walk n.children
  in
  List.iter walk (spans trace);
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total trace name =
  Option.value ~default:0 (List.assoc_opt name (totals trace))

(* --- value distributions --- *)

let ms_of_ns ns = Int64.to_float ns /. 1e6

type dist = {
  count : int;
  total_ms : float;
  p50_ms : float;
  p90_ms : float;
  max_ms : float;
}

(* Nearest-rank percentile: the smallest sample such that at least
   [p * count] samples are <= it. [values] need not be sorted. *)
let percentile values p =
  let n = Array.length values in
  if n = 0 then invalid_arg "Sbm_obs.percentile: empty sample";
  if p < 0.0 || p > 1.0 then invalid_arg "Sbm_obs.percentile: p outside [0,1]";
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let dist_of_samples values =
  let total = Array.fold_left ( +. ) 0.0 values in
  {
    count = Array.length values;
    total_ms = total;
    p50_ms = percentile values 0.5;
    p90_ms = percentile values 0.9;
    max_ms = percentile values 1.0;
  }

let histograms trace =
  let acc : (string, float list ref) Hashtbl.t = Hashtbl.create 32 in
  let rec walk n =
    let ms = ms_of_ns n.wall_ns in
    (match Hashtbl.find_opt acc n.name with
    | Some cell -> cell := ms :: !cell
    | None -> Hashtbl.add acc n.name (ref [ ms ]));
    List.iter walk n.children
  in
  List.iter walk (spans trace);
  Hashtbl.fold
    (fun name cell l -> (name, dist_of_samples (Array.of_list !cell)) :: l)
    acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_histograms ppf trace =
  Fmt.pf ppf "%-32s %6s %10s %10s %10s %10s@." "span" "count" "p50 ms"
    "p90 ms" "max ms" "total ms";
  List.iter
    (fun (name, d) ->
      Fmt.pf ppf "%-32s %6d %10.3f %10.3f %10.3f %10.3f@." name d.count
        d.p50_ms d.p90_ms d.max_ms d.total_ms)
    (histograms trace)

(* --- reporters --- *)

let pp ppf trace =
  let rec go indent n =
    let pad = String.make (2 * indent) ' ' in
    Fmt.pf ppf "%s%-*s %8.2fms" pad (max 1 (32 - (2 * indent))) n.name
      (ms_of_ns n.wall_ns);
    (match (n.size_before, n.size_after) with
    | Some b, Some a -> Fmt.pf ppf "  %d -> %d nodes" b a
    | Some b, None -> Fmt.pf ppf "  %d nodes" b
    | None, Some a -> Fmt.pf ppf "  -> %d nodes" a
    | None, None -> ());
    (match (n.depth_before, n.depth_after) with
    | Some b, Some a -> Fmt.pf ppf "  %d -> %d levels" b a
    | Some b, None -> Fmt.pf ppf "  %d levels" b
    | None, Some a -> Fmt.pf ppf "  -> %d levels" a
    | None, None -> ());
    Fmt.pf ppf "@.";
    if n.counters <> [] then begin
      Fmt.pf ppf "%s  | " pad;
      List.iteri
        (fun i (k, v) -> Fmt.pf ppf "%s%s=%d" (if i > 0 then " " else "") k v)
        n.counters;
      Fmt.pf ppf "@."
    end;
    List.iter (go (indent + 1)) n.children
  in
  List.iter (go 0) (spans trace)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let buf_counters b counters =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    counters;
  Buffer.add_char b '}'

let buf_span_fields b n =
  Buffer.add_string b (Printf.sprintf "\"wall_ms\":%.6f" (ms_of_ns n.wall_ns));
  let field name v =
    match v with
    | Some v -> Buffer.add_string b (Printf.sprintf ",\"%s\":%d" name v)
    | None -> ()
  in
  field "size_before" n.size_before;
  field "size_after" n.size_after;
  field "depth_before" n.depth_before;
  field "depth_after" n.depth_after;
  Buffer.add_string b
    (Printf.sprintf
       ",\"gc\":{\"minor_words\":%.0f,\"major_words\":%.0f,\"minor_collections\":%d,\"major_collections\":%d}"
       n.gc.minor_words n.gc.major_words n.gc.minor_collections
       n.gc.major_collections);
  if n.counters <> [] then begin
    Buffer.add_string b ",\"counters\":";
    buf_counters b n.counters
  end

let to_json trace =
  let b = Buffer.create 4096 in
  let rec go n =
    Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\"," (json_escape n.name));
    buf_span_fields b n;
    Buffer.add_string b ",\"children\":[";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        go c)
      n.children;
    Buffer.add_string b "]}"
  in
  Buffer.add_string b "{\"version\":2,\"totals\":";
  buf_counters b (totals trace);
  Buffer.add_string b ",\"histograms\":{";
  List.iteri
    (fun i (name, d) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"total_ms\":%.6f,\"p50_ms\":%.6f,\"p90_ms\":%.6f,\"max_ms\":%.6f}"
           (json_escape name) d.count d.total_ms d.p50_ms d.p90_ms d.max_ms))
    (histograms trace);
  Buffer.add_string b "},\"spans\":[";
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      go n)
    (spans trace);
  Buffer.add_char b ']';
  (* Additive live-telemetry payloads (trace version stays 2: readers
     that only know "spans" ignore these keys). Emitted only when the
     corresponding subsystem ran, so plain traces are unchanged. *)
  let samples = Status.samples () in
  if samples <> [] then begin
    Buffer.add_string b ",\"samples\":[";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Status.sample_to_json s))
      samples;
    Buffer.add_char b ']'
  end;
  let events = Flight_recorder.events () in
  if events <> [] then begin
    Buffer.add_string b ",\"events\":[";
    List.iteri
      (fun i (e : Flight_recorder.event) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "{\"seq\":%d,\"t_ms\":%.3f,\"severity\":\"%s\",\"engine\":\"%s\",\"id\":\"%s\",\"message\":\"%s\",\"metrics\":"
             e.Flight_recorder.seq
             (Int64.to_float e.Flight_recorder.t_ns /. 1e6)
             (Flight_recorder.severity_to_string e.Flight_recorder.severity)
             (json_escape e.Flight_recorder.engine)
             (json_escape e.Flight_recorder.id)
             (json_escape e.Flight_recorder.message));
        buf_counters b e.Flight_recorder.metrics;
        Buffer.add_char b '}')
      events;
    Buffer.add_char b ']'
  end;
  let verdicts = Watchdog.verdicts () in
  if verdicts <> [] then begin
    Buffer.add_string b ",\"verdicts\":[";
    List.iteri
      (fun i (v : Watchdog.verdict) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "{\"rule\":\"%s\",\"detail\":\"%s\",\"action\":\"%s\",\"t_ms\":%.3f}"
             (json_escape v.Watchdog.rule)
             (json_escape v.Watchdog.detail)
             (match v.Watchdog.action with
             | Watchdog.Note -> "note"
             | Watchdog.Abort -> "abort")
             (Int64.to_float v.Watchdog.t_ns /. 1e6)))
      verdicts;
    Buffer.add_char b ']'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let to_jsonl trace =
  let b = Buffer.create 4096 in
  let rec go path n =
    let path = if path = "" then n.name else path ^ "/" ^ n.name in
    Buffer.add_string b (Printf.sprintf "{\"path\":\"%s\"," (json_escape path));
    buf_span_fields b n;
    Buffer.add_string b "}\n";
    List.iter (go path) n.children
  in
  List.iter (go "") (spans trace);
  Buffer.contents b

(* RFC 4180 quoting: a cell containing a comma, quote or newline is
   wrapped in double quotes with inner quotes doubled. *)
let csv_cell s =
  if String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  then begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

(* Counter names may contain the [k=v;k=v] packing's own separators;
   escape them with a backslash so the cell stays parseable. *)
let counter_key_escape s =
  if String.exists (function ';' | '=' | '\\' -> true | _ -> false) s then begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        (match c with ';' | '=' | '\\' -> Buffer.add_char b '\\' | _ -> ());
        Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let to_csv trace =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "path,wall_ms,size_before,size_after,depth_before,depth_after,counters\n";
  let cell = function Some v -> string_of_int v | None -> "" in
  let rec go path n =
    let path = if path = "" then n.name else path ^ "/" ^ n.name in
    let counters =
      String.concat ";"
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=%d" (counter_key_escape k) v)
           n.counters)
    in
    Buffer.add_string b
      (Printf.sprintf "%s,%.6f,%s,%s,%s,%s,%s\n" (csv_cell path)
         (ms_of_ns n.wall_ns) (cell n.size_before) (cell n.size_after)
         (cell n.depth_before) (cell n.depth_after) (csv_cell counters));
    List.iter (go path) n.children
  in
  List.iter (go "") (spans trace);
  Buffer.contents b

let write trace path =
  let render =
    if Filename.check_suffix path ".jsonl" then to_jsonl
    else if Filename.check_suffix path ".csv" then to_csv
    else to_json
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render trace))

(* --- QoR snapshots --- *)

module Snapshot = struct
  type qor = { size : int; depth : int; luts : int; levels : int }

  type entry = {
    bench : string;
    size_before : int;
    qor : qor;
    wall_ms : float;
    counters : (string * int) list;
    passes : Ledger.row list;
  }

  type t = { version : int; label : string; seed : int; entries : entry list }

  let current_version = 1

  (* Version of the per-entry "passes" array. The snapshot itself
     stays at version 1 — the key is additive and old readers ignore
     unknown members, matching the trace-v2 precedent. *)
  let passes_version = 1

  let make ?(label = "") ?(seed = 0) entries =
    let entries =
      List.sort (fun a b -> String.compare a.bench b.bench) entries
    in
    { version = current_version; label; seed; entries }

  let find t bench = List.find_opt (fun e -> e.bench = bench) t.entries

  let to_json t =
    let b = Buffer.create 4096 in
    let has_passes = List.exists (fun e -> e.passes <> []) t.entries in
    Buffer.add_string b (Printf.sprintf "{\"version\":%d" t.version);
    if has_passes then
      Buffer.add_string b
        (Printf.sprintf ",\"passes_version\":%d" passes_version);
    Buffer.add_string b
      (Printf.sprintf ",\"label\":\"%s\",\"seed\":%d,\"entries\":["
         (json_escape t.label) t.seed);
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"bench\":\"%s\"" (json_escape e.bench));
        (* Additive key (old readers ignore it): the input AIG node
           count, making the suite's effective scale visible in the
           snapshot itself. -1 = unrecorded. *)
        if e.size_before >= 0 then
          Buffer.add_string b
            (Printf.sprintf ",\"size_before\":%d" e.size_before);
        Buffer.add_string b
          (Printf.sprintf
             ",\"size\":%d,\"depth\":%d,\"luts\":%d,\"levels\":%d,\"wall_ms\":%.3f,\"counters\":"
             e.qor.size e.qor.depth e.qor.luts e.qor.levels e.wall_ms);
        buf_counters b e.counters;
        if e.passes <> [] then begin
          Buffer.add_string b ",\"passes\":";
          Buffer.add_string b (Ledger.rows_to_json e.passes)
        end;
        Buffer.add_char b '}')
      t.entries;
    Buffer.add_string b "]}";
    Buffer.contents b

  let write t path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (to_json t);
        output_char oc '\n')
end

(* --- crash-dump post-mortems --- *)

module Postmortem = struct
  let current_version = 1

  type setup = { mutable trace : trace option; mutable dir : string }

  let setup = { trace = None; dir = "." }

  let configure ?dir ?trace () =
    (match dir with Some d -> setup.dir <- d | None -> ());
    match trace with Some t -> setup.trace <- Some t | None -> ()

  let ms ns = Int64.to_float ns /. 1e6

  let to_json ~reason () =
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf "{\"version\":%d,\"reason\":\"%s\",\"pid\":%d"
         current_version (json_escape reason) (Unix.getpid ()));
    Buffer.add_string b
      (Printf.sprintf ",\"elapsed_ms\":%.3f" (ms (Flight_recorder.elapsed_ns ())));
    (* Absolute monotonic origin of the run: event [t_ms] values are
       relative to it; [t_ns = t0_ns + t_ms*1e6] recovers absolute
       clock readings for cross-process correlation ([--abs]). *)
    Buffer.add_string b
      (Printf.sprintf ",\"t0_ns\":%Ld" (Flight_recorder.t0_ns ()));
    (* Open spans, outermost first: the path from the flow root down
       to wherever the run died. *)
    Buffer.add_string b ",\"span_stack\":[";
    List.iteri
      (fun i (name, t0) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"opened_ms\":%.3f}"
             (json_escape name) (ms t0)))
      (List.rev (Flight_recorder.span_stack ()));
    Buffer.add_string b "],\"watchdog\":[";
    List.iteri
      (fun i (v : Watchdog.verdict) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "{\"rule\":\"%s\",\"detail\":\"%s\",\"action\":\"%s\",\"t_ms\":%.3f}"
             (json_escape v.Watchdog.rule)
             (json_escape v.Watchdog.detail)
             (match v.Watchdog.action with
             | Watchdog.Note -> "note"
             | Watchdog.Abort -> "abort")
             (ms v.Watchdog.t_ns)))
      (Watchdog.verdicts ());
    Buffer.add_string b "],\"counters\":";
    buf_counters b (match setup.trace with Some t -> totals t | None -> []);
    Buffer.add_string b
      (Printf.sprintf ",\"recorded\":%d,\"dropped\":%d,\"events\":["
         (Flight_recorder.recorded ()) (Flight_recorder.dropped ()));
    List.iteri
      (fun i (e : Flight_recorder.event) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "{\"seq\":%d,\"t_ms\":%.3f,\"t_ns\":%Ld,\"severity\":\"%s\",\"engine\":\"%s\",\"id\":\"%s\",\"message\":\"%s\",\"metrics\":"
             e.Flight_recorder.seq
             (ms e.Flight_recorder.t_ns)
             (Int64.add (Flight_recorder.t0_ns ()) e.Flight_recorder.t_ns)
             (Flight_recorder.severity_to_string e.Flight_recorder.severity)
             (json_escape e.Flight_recorder.engine)
             (json_escape e.Flight_recorder.id)
             (json_escape e.Flight_recorder.message));
        buf_counters b e.Flight_recorder.metrics;
        Buffer.add_char b '}')
      (Flight_recorder.events ());
    Buffer.add_string b "]}";
    Buffer.contents b

  let path () =
    Filename.concat setup.dir
      (Printf.sprintf "sbm-crash-%d.json" (Unix.getpid ()))

  let dump ~reason () =
    let file = path () in
    match open_out file with
    | exception Sys_error msg -> Error msg
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (to_json ~reason ());
          output_char oc '\n');
      Ok file

  let report_dump ~reason () =
    match dump ~reason () with
    | Ok file -> Printf.eprintf "sbm: post-mortem dump written to %s\n%!" file
    | Error msg -> Printf.eprintf "sbm: post-mortem dump failed: %s\n%!" msg

  (* 128 + signal number, the shell convention. *)
  let install ?dir ?trace () =
    configure ?dir ?trace ();
    let on signal name code =
      try
        Sys.set_signal signal
          (Sys.Signal_handle
             (fun _ ->
               report_dump ~reason:("signal " ^ name) ();
               Stdlib.exit code))
      with Invalid_argument _ | Sys_error _ -> ()
    in
    on Sys.sigint "SIGINT" 130;
    on Sys.sigterm "SIGTERM" 143
end
