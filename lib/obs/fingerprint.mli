(** Determinism audit trail: streaming state fingerprints.

    While enabled, [Flow] and the partitioned engines report every
    pass boundary and every partition merge boundary here; the trail
    accumulates one {!record} per boundary, each a composite 64-bit
    fingerprint of (structure, counter deltas, prefilter bank, seeds)
    plus a running chain value that commits to the whole prefix.
    `sbm audit` aligns two trails and names the first diverging
    boundary (DESIGN.md §15).

    Every component is bit-identical at any [--jobs]: records are
    appended on the main domain only, and merge boundaries run in
    ascending partition index in both the sequential and the parallel
    scheduler path. Counter digests are taken over deltas since
    {!enable}, so trails from two runs in the same process compare
    cleanly.

    The trail is process-global, like the ledger and the metrics
    registry. This library sits below [lib/aig], so structural hashes
    are computed by the caller ([Aig.fold_hash] / [Network.fold_hash])
    and passed in. *)

type kind = Pass | Merge

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type record = {
  seq : int;  (** position in the trail, from 0 *)
  kind : kind;
  label : string;
      (** slash-joined pass path, e.g. ["iteration-1/mspf"]; merge
          records append ["/<engine>-partition-<n>"] *)
  structure : int64;  (** canonical structural hash of the live network *)
  counters_digest : int64;  (** digest of the sorted nonzero counter deltas *)
  bank : int64;  (** prefilter signature-bank digest; [0L] = no bank *)
  seeds : int64;  (** RNG / pattern-bank seeds; [0L] = no bank *)
  chain : int64;  (** commits to every prior record *)
  counters : (string * int) list;
      (** the full delta vector behind [counters_digest], kept for
          counter-level divergence drill-down *)
}

val enable : ?path:string -> unit -> unit
(** Start recording (clears any previous trail). With [path], every
    record is also streamed to that file as one JSON line, flushed per
    record so a crashed run keeps its prefix. *)

val disable : unit -> unit
(** Stop recording, close the stream, clear. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Clear records and open passes; keeps the enabled flag and sink. *)

val set_bank_source : (unit -> int64 * int64) option -> unit
(** Install the provider of the (bank digest, seeds) components —
    [Flow] points this at the live prefilter bank; [None] (the
    default) records [0L] for both. *)

val pass_started : string -> unit
(** Open a pass frame (mirrors [Ledger.pass_started]). No-op while
    disabled. *)

val pass_ended : structure:int64 -> int64
(** Close the innermost frame into a [Pass] record; [structure] is the
    caller-computed structural hash at the boundary. Returns the
    record's chain value (embedded into the matching ledger row), or
    [0L] while disabled. *)

val record_merge : engine:string -> partition:int -> structure:int64 -> unit
(** Append a [Merge] record for one partition boundary. Applies the
    [SBM_NONDET_INJECT] perturbation when the boundary matches. Must
    only be called from the main domain in ascending partition
    index — the engines' [finish_partition] discipline. *)

val inject : (string * int) option ref
(** Test hook mirroring [SBM_NONDET_INJECT=pass:N]: when set to
    [Some (pass, n)], the structure component of merge records for
    partition [n] of passes (or engines) named [pass] is XOR-perturbed
    with a fixed mask, planting a divergence for localization tests.
    The environment variable is read lazily and only when the ref is
    unset. *)

val records : unit -> record list
(** Completed records in trail order. *)

val record_to_json : record -> string
(** One record as a JSON object (one line of the [--fingerprint]
    JSONL stream). 64-bit components are 16-hex-digit strings. *)
