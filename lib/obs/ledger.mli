(** Per-pass resource ledger.

    While enabled, [Flow] reports every pass boundary here and the
    ledger accumulates one {!row} per completed pass: QoR
    before/after, wall time, registry counter deltas, GC allocation, a
    peak-heap sample and the BDD/AIG occupancy gauges. Rows are
    deterministic at any [--jobs] except for the resource samples;
    [row_to_json ~stable:true] projects onto the deterministic subset
    (the jobs-identity test compares that projection byte-for-byte).

    The ledger is process-global, like the metrics registry: flows run
    one at a time on the main domain. *)

type row = {
  path : string;  (** slash-joined pass path, e.g. ["iteration-1/mspf"] *)
  index : int;  (** completion order within the run, from 0 *)
  size_before : int;
  size_after : int;
  depth_before : int;
  depth_after : int;
  luts : int;  (** LUT-6 count after the pass; [-1] = not probed *)
  levels : int;  (** LUT levels after the pass; [-1] = not probed *)
  fingerprint : int64;
      (** audit-trail chain value at the pass boundary ({!Fingerprint});
          [0L] when the trail was disabled. Deterministic, so part of
          the stable projection (emitted as a 16-hex-digit string). *)
  wall_ns : int64;
  counters : (string * int) list;
      (** nonzero registry counter deltas over the pass, sorted by name *)
  minor_words : float;
  major_words : float;
  heap_words : int;  (** major heap size sampled at pass end *)
  unique_load_pct : int;
      (** max BDD unique-table load observed during the pass *)
  cache_load_pct : int;
      (** max BDD computed-cache load observed during the pass *)
  dead_node_pct : int;  (** dead AIG node slots after the pass *)
}

val enable : unit -> unit
(** Start recording (clears any previous rows). *)

val disable : unit -> unit
(** Stop recording and clear. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Clear rows and open passes; keeps the enabled flag. *)

val pass_started : string -> unit
(** [pass_started name] opens a pass frame. Nested passes produce
    slash-joined paths. No-op while disabled. *)

val pass_ended :
  ?fingerprint:int64 ->
  size_before:int ->
  size_after:int ->
  depth_before:int ->
  depth_after:int ->
  luts:int ->
  levels:int ->
  dead_node_pct:int ->
  unit ->
  unit
(** Close the innermost open frame into a {!row}. Pass [-1] for
    [luts]/[levels] when no LUT probe ran; [fingerprint] is the audit
    trail chain value at this boundary (default [0L] = no trail).
    No-op while disabled. *)

val rows : unit -> row list
(** Completed rows in completion order (a nested pass precedes its
    container). *)

val row_to_json : ?stable:bool -> row -> string
(** One row as a JSON object. [~stable:true] omits [wall_ns],
    [minor_words], [major_words] and [heap_words] — the fields exempt
    from the jobs-identity contract. *)

val rows_to_json : ?stable:bool -> row list -> string
(** A JSON array of rows. *)
