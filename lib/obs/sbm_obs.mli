(** Tracing and metrics for the SBM engines.

    A {!trace} collects a forest of hierarchical {!span}s. Each span
    records a name, monotonic-clock wall time, optional network
    size/depth before and after, and a bag of named integer counters
    (BDD unique-table traffic, SAT decisions/conflicts/propagations,
    resubstitution candidates tried vs. accepted, gradient move
    costs, ...). Engines receive a span through their optional [?obs]
    argument; the flow scripts open one child span per scripted pass.

    Observability is disabled by default and designed to cost nothing
    when off: {!null} is a no-op sink, every operation on it returns
    immediately, and callers guard expensive measurements (network
    depth is O(n)) behind {!enabled}.

    Reporters render a finished trace as a human-readable tree
    ({!pp}), a nested JSON document ({!to_json}), JSON-lines with one
    flattened span per line ({!to_jsonl}), or CSV ({!to_csv}).
    {!write} picks the format from the file extension. The JSON schema
    is documented in DESIGN.md (section "Telemetry"). *)

module Flight_recorder = Flight_recorder
(** In-flight bounded ring buffer of structured events; see
    {!Flight_recorder}. Live spans notify its span stack, so the open
    span path is known at any instant. *)

module Watchdog = Watchdog
(** Threshold evaluation, heartbeats and graceful aborts; see
    {!Watchdog}. *)

module Metrics = Metrics
(** Process-global typed metrics registry (counters/gauges/histograms
    with name/kind/unit/engine/description metadata); see {!Metrics}.
    Engines bump registered handles through {!bump} so the same event
    feeds both the span tree and the live registry. *)

module Status = Status
(** Periodic sampler writing an atomic-rename JSONL status file from
    the registry + open-span stack + watchdog state; see {!Status}. *)

module Ledger = Ledger
(** Per-pass resource ledger: one row per completed flow pass with
    QoR deltas, counter deltas, GC/heap samples and occupancy gauges;
    see {!Ledger}. *)

module Fingerprint = Fingerprint
(** Determinism audit trail: chained 64-bit state fingerprints at
    every pass and partition-merge boundary, streamed as JSONL and
    aligned by `sbm audit`; see {!Fingerprint}. *)

type trace
(** A collector of closed spans. *)

type span
(** A handle on an open span, or the no-op sink {!null}. *)

(** [monotonic_ns ()] is the raw monotonic clock, in nanoseconds from
    an arbitrary origin. *)
val monotonic_ns : unit -> int64

(** {1 Collection} *)

(** The no-op sink: spans opened under it are no-ops, counters on it
    are dropped. This is the default [?obs] everywhere. *)
val null : span

(** [enabled s] is [false] exactly on {!null} and spans derived from
    it. Guard measurement work (e.g. [Aig.depth]) with this. *)
val enabled : span -> bool

(** [create ()] is a fresh, empty trace. *)
val create : unit -> trace

(** [root trace name] opens a top-level span. [size]/[depth] record
    the network entering the span. *)
val root : ?size:int -> ?depth:int -> trace -> string -> span

(** [span parent name] opens a child span; on {!null} it returns
    {!null}. [size]/[depth] record the network entering the span. *)
val span : ?size:int -> ?depth:int -> span -> string -> span

(** [close span] stops the span's clock; [size]/[depth] record the
    network leaving the span. Closing {!null} or closing twice is a
    no-op (the first close wins). *)
val close : ?size:int -> ?depth:int -> span -> unit

(** [add span name n] adds [n] to the span's counter [name]
    (created at 0). No-op on {!null}. *)
val add : span -> string -> int -> unit

(** [incr span name] is [add span name 1]. *)
val incr : span -> string -> unit

(** [bump span m n] feeds one event to both sinks: the process-global
    {!Metrics} registry (always, so live telemetry sees untraced runs
    too) and the span counter under the metric's registered name (when
    [span] is live — snapshot totals are unchanged relative to calling
    {!add} directly). Inside {!Metrics.capture} the registry half
    lands in the worker shard for deterministic replay. *)
val bump : span -> Metrics.t -> int -> unit

(** {1 Introspection}

    A frozen, immutable view of the recorded forest — the input to the
    reporters and to tests. *)

(** Allocation/collection activity while a span was open, from
    [Gc.quick_stat] deltas (open vs. close; spans still open at freeze
    time are measured against the current stat). Words are the
    runtime's [float] word counts; negative deltas (impossible under a
    monotonic GC, but defensively) clamp to 0. *)
type gc_delta = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type node = {
  name : string;
  wall_ns : int64;  (** monotonic wall time spent inside the span *)
  size_before : int option;
  size_after : int option;
  depth_before : int option;
  depth_after : int option;
  gc : gc_delta;  (** GC activity inside the span (children included) *)
  counters : (string * int) list;  (** sorted by name *)
  children : node list;  (** in opening order *)
}

(** [spans trace] is the recorded forest, roots in opening order.
    Spans still open are frozen with the current clock. *)
val spans : trace -> node list

(** [totals trace] aggregates every counter over the whole forest,
    sorted by name. *)
val totals : trace -> (string * int) list

(** [total trace name] is the aggregate value of one counter (0 if
    never touched). *)
val total : trace -> string -> int

(** {1 Value distributions}

    Spans sharing a name (e.g. the per-partition or per-move child
    spans an engine opens in a loop) form a sample; the histogram view
    summarizes each sample's wall-time distribution. *)

type dist = {
  count : int;
  total_ms : float;
  p50_ms : float;  (** median (nearest-rank) *)
  p90_ms : float;
  max_ms : float;
}

(** [percentile values p] is the nearest-rank [p]-percentile
    ([p] in [0,1]) of an unsorted, non-empty sample. Raises
    [Invalid_argument] on an empty sample or [p] outside [0,1]. *)
val percentile : float array -> float -> float

(** [histograms trace] groups every span in the forest by name and
    summarizes each group's wall time; sorted by span name. *)
val histograms : trace -> (string * dist) list

(** Render {!histograms} as an aligned table. *)
val pp_histograms : Format.formatter -> trace -> unit

(** {1 Reporters} *)

(** Human-readable tree: one line per span with wall time and deltas,
    counters indented underneath. *)
val pp : Format.formatter -> trace -> unit

(** Nested JSON document:
    [{"version":2,"totals":{...},"histograms":{...},"spans":[...]}].
    Version 2 adds the top-level [histograms] object and a per-span
    [gc] object. When live telemetry ran, additive optional keys
    follow: ["samples"] ({!Status} history), ["events"]
    ({!Flight_recorder} ring) and ["verdicts"] ({!Watchdog}) — the
    Perfetto exporter's counter/instant sources. *)
val to_json : trace -> string

(** One JSON object per line, spans flattened depth-first with a
    [path] field ("root/child/grandchild"). *)
val to_jsonl : trace -> string

(** CSV with header
    [path,wall_ms,size_before,size_after,depth_before,depth_after,counters];
    counters are packed as [k=v;k=v]. Cells containing commas, quotes
    or newlines are RFC 4180-quoted; [;]/[=]/[\ ] inside counter names
    are backslash-escaped so the packed cell stays parseable. *)
val to_csv : trace -> string

(** [write trace path] renders by extension: [.jsonl] -> {!to_jsonl},
    [.csv] -> {!to_csv}, anything else -> {!to_json}. *)
val write : trace -> string -> unit

(** {1 QoR snapshots}

    A snapshot is the durable unit of regression tracking: one record
    per benchmark carrying the quality-of-result metrics the paper's
    tables report (AIG size/depth, LUT-6 count/levels), the flow's
    wall time, and the aggregated engine counters of the run.
    [sbm bench] writes one; [Sbm_report] loads and diffs two. *)

module Snapshot : sig
  (** The four QoR columns of Tables I/II. *)
  type qor = { size : int; depth : int; luts : int; levels : int }

  type entry = {
    bench : string;
    size_before : int;
        (** input AIG node count before the flow ran — records the
            effective benchmark scale in the snapshot; -1 when the
            snapshot predates the key *)
    qor : qor;
    wall_ms : float;  (** flow wall time for this benchmark *)
    counters : (string * int) list;  (** trace totals, sorted by name *)
    passes : Ledger.row list;
        (** per-pass ledger rows in completion order; [[]] when the
            ledger was off (pre-ledger snapshots parse as [[]]) *)
  }

  type t = {
    version : int;
    label : string;  (** free-form provenance (git rev, flow, scale) *)
    seed : int;  (** RNG seed the benchmarks were generated with *)
    entries : entry list;  (** sorted by bench name *)
  }

  (** Schema version written by {!make} (currently 1). Readers accept
      any version [<= current_version]. *)
  val current_version : int

  (** Version of the additive per-entry ["passes"] array (the snapshot
      version itself does not change — old readers ignore the key).
      Emitted as a top-level ["passes_version"] member when any entry
      carries rows. *)
  val passes_version : int

  (** [make ?label ?seed entries] is a current-version snapshot with
      entries sorted by benchmark name. *)
  val make : ?label:string -> ?seed:int -> entry list -> t

  val find : t -> string -> entry option

  (** Single-line JSON document:
      [{"version":1,"label":"...","seed":1,"entries":[{"bench":...,
      "size":...,"depth":...,"luts":...,"levels":...,"wall_ms":...,
      "counters":{...}}]}]. *)
  val to_json : t -> string

  (** [write t path] writes {!to_json} plus a trailing newline. *)
  val write : t -> string -> unit
end

(** {1 Crash-dump post-mortems}

    When a run dies — uncaught exception, SIGINT, SIGTERM — the
    post-mortem module freezes the black box into a versioned JSON
    document: the flight recorder's ring buffer (plus how much of it
    was lost to wraparound), the open span stack at the instant of
    death, every watchdog verdict, and the live counter totals of the
    attached trace. [sbm inspect] renders the dump; the schema is
    documented in DESIGN.md (section "In-flight observability"). *)

module Postmortem : sig
  (** Schema version written by {!to_json} (currently 1). Readers
      accept any version [<= current_version]. *)
  val current_version : int

  (** [configure ?dir ?trace ()] sets the dump directory (default
      ["."]) and attaches the trace whose counter totals the dump
      reports. Unset arguments keep their previous value. *)
  val configure : ?dir:string -> ?trace:trace -> unit -> unit

  (** The single-line JSON post-mortem document:
      [{"version":1,"reason":...,"pid":...,"elapsed_ms":...,"t0_ns":...,
      "span_stack":[{"name":...,"opened_ms":...}],
      "watchdog":[{"rule":...,"detail":...,"action":...,"t_ms":...}],
      "counters":{...},"recorded":N,"dropped":N,"events":[...]}].
      [t0_ns] is the absolute monotonic enable time; each event
      carries both run-relative [t_ms] and absolute [t_ns]. *)
  val to_json : reason:string -> unit -> string

  (** [path ()] is where {!dump} writes:
      [<dir>/sbm-crash-<pid>.json]. *)
  val path : unit -> string

  (** [dump ~reason ()] writes {!to_json} to {!path}. *)
  val dump : reason:string -> unit -> (string, string) result

  (** {!dump} plus a one-line stderr notice (both outcomes). *)
  val report_dump : reason:string -> unit -> unit

  (** [install ?dir ?trace ()] is {!configure} plus SIGINT/SIGTERM
      handlers that dump and exit with the shell convention
      (128 + signal number). *)
  val install : ?dir:string -> ?trace:trace -> unit -> unit
end
