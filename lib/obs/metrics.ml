(* Process-global typed metrics registry.

   Every counter the engines report used to be an ad-hoc
   [(string * int)] pair living only inside a span tree; the registry
   gives each one a single registration point with kind/unit/engine/
   description metadata, a process-global value cell, and a stable
   catalog ([sbm metrics]) that CI can gate against DESIGN.md.

   Value cells are [Atomic.t] so the live-telemetry sampler (a
   separate domain, see {!Status}) can read a coherent snapshot while
   the run bumps them. Determinism contract: all bump sites run on the
   main domain (engines accumulate into partition-local records and
   flush after the deterministic merge), so totals are bit-identical
   at any job count. A worker domain that must bump directly runs
   under {!capture}, which installs a domain-local shard; the shard's
   deltas are merged on the main domain by the Par_merge path in
   ascending partition order, exactly like flight-recorder events. *)

type kind = Counter | Gauge | Histogram

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let kind_of_string = function
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | "histogram" -> Some Histogram
  | _ -> None

type hstats = { h_count : int; h_sum : int; h_min : int; h_max : int }

type t = {
  id : int;
  name : string;
  kind : kind;
  unit_ : string;
  engine : string;
  description : string;
  cell : int Atomic.t; (* counter total / gauge value *)
  hcount : int Atomic.t;
  hsum : int Atomic.t;
  hmin : int Atomic.t; (* max_int while empty *)
  hmax : int Atomic.t; (* min_int while empty *)
  sample : (unit -> int) option; (* callback gauges, read at snapshot *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

(* Registration happens at module-initialization time on the main
   domain (each library registers its metrics as top-level bindings),
   so plain mutation is safe. *)
let register ?(engine = "") ?(unit_ = "count") ?sample kind name description =
  if Hashtbl.mem registry name then
    invalid_arg
      (Printf.sprintf "Sbm_obs.Metrics: duplicate registration of %S" name);
  let m =
    {
      id = !next_id;
      name;
      kind;
      unit_;
      engine;
      description;
      cell = Atomic.make 0;
      hcount = Atomic.make 0;
      hsum = Atomic.make 0;
      hmin = Atomic.make max_int;
      hmax = Atomic.make min_int;
      sample;
    }
  in
  incr next_id;
  Hashtbl.replace registry name m;
  m

let counter ?engine ?unit_ name description =
  register ?engine ?unit_ Counter name description

let gauge ?engine ?unit_ name description =
  register ?engine ?unit_ Gauge name description

let gauge_fn ?engine ?unit_ name description f =
  register ?engine ?unit_ ~sample:f Gauge name description

let histogram ?engine ?unit_ name description =
  register ?engine ?unit_ Histogram name description

let name m = m.name
let kind m = m.kind
let unit_ m = m.unit_
let engine m = m.engine
let description m = m.description

let find n = Hashtbl.find_opt registry n

let all () =
  Hashtbl.fold (fun _ m acc -> m :: acc) registry []
  |> List.sort (fun a b -> String.compare a.name b.name)

(* --- worker shards --- *)

type delta = (string * int) list

let shard_key : (string, int ref) Hashtbl.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let add m n =
  if m.kind <> Counter then
    invalid_arg ("Sbm_obs.Metrics.add on non-counter " ^ m.name);
  match Domain.DLS.get shard_key with
  | Some tbl -> (
    match Hashtbl.find_opt tbl m.name with
    | Some cell -> cell := !cell + n
    | None -> Hashtbl.add tbl m.name (ref n))
  | None -> ignore (Atomic.fetch_and_add m.cell n)

let incr m = add m 1

(* Gauges and histograms are observational (never compared bit-exactly
   across job counts), so they write straight to the shared cells even
   from a worker domain. *)
let set m v =
  if m.kind <> Gauge then
    invalid_arg ("Sbm_obs.Metrics.set on non-gauge " ^ m.name);
  Atomic.set m.cell v

let rec set_max m v =
  if m.kind <> Gauge then
    invalid_arg ("Sbm_obs.Metrics.set_max on non-gauge " ^ m.name);
  let cur = Atomic.get m.cell in
  if v > cur && not (Atomic.compare_and_set m.cell cur v) then set_max m v

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let observe m v =
  if m.kind <> Histogram then
    invalid_arg ("Sbm_obs.Metrics.observe on non-histogram " ^ m.name);
  ignore (Atomic.fetch_and_add m.hcount 1);
  ignore (Atomic.fetch_and_add m.hsum v);
  atomic_min m.hmin v;
  atomic_max m.hmax v

let value m = match m.sample with Some f -> f () | None -> Atomic.get m.cell

let hist m =
  let count = Atomic.get m.hcount in
  {
    h_count = count;
    h_sum = Atomic.get m.hsum;
    h_min = (if count = 0 then 0 else Atomic.get m.hmin);
    h_max = (if count = 0 then 0 else Atomic.get m.hmax);
  }

let capture f =
  let tbl = Hashtbl.create 16 in
  let prev = Domain.DLS.get shard_key in
  Domain.DLS.set shard_key (Some tbl);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set shard_key prev)
    (fun () ->
      let r = f () in
      let deltas =
        Hashtbl.fold (fun k cell acc -> (k, !cell) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      (r, deltas))

let replay deltas =
  List.iter
    (fun (n, v) ->
      match Hashtbl.find_opt registry n with
      | Some m -> ignore (Atomic.fetch_and_add m.cell v)
      | None -> ())
    deltas

(* --- snapshot views --- *)

let by_kind k =
  List.filter_map
    (fun m -> if m.kind = k then Some (m.name, value m) else None)
    (all ())

let counters_now () = by_kind Counter
let gauges_now () = by_kind Gauge

let counters_delta before now =
  (* Both lists are sorted by name (counters_now) and [now] can only
     have grown relative to [before] — registration happens at module
     init, values are monotonic. Shared by the per-pass ledger and the
     fingerprint trail. *)
  let rec go before now acc =
    match (before, now) with
    | _, [] -> List.rev acc
    | [], (k, v) :: now -> go [] now (if v <> 0 then (k, v) :: acc else acc)
    | (kb, vb) :: before', (kn, vn) :: now' ->
      let c = String.compare kb kn in
      if c = 0 then
        go before' now' (if vn <> vb then (kn, vn - vb) :: acc else acc)
      else if c > 0 then go before now' (if vn <> 0 then (kn, vn) :: acc else acc)
      else go before' now acc
  in
  go before now []

let hists_now () =
  List.filter_map
    (fun m -> if m.kind = Histogram then Some (m.name, hist m) else None)
    (all ())

let reset_values () =
  Hashtbl.iter
    (fun _ m ->
      Atomic.set m.cell 0;
      Atomic.set m.hcount 0;
      Atomic.set m.hsum 0;
      Atomic.set m.hmin max_int;
      Atomic.set m.hmax min_int)
    registry

(* --- automatic process gauges --- *)

(* [Gc.quick_stat] heap statistics describe the shared major heap, so
   sampling them from the telemetry domain sees the whole process. *)
let _heap_words =
  gauge_fn ~engine:"process" ~unit_:"words" "process.heap_words"
    "major heap size in words (Gc.quick_stat)" (fun () ->
      (Gc.quick_stat ()).Gc.heap_words)

let _major_collections =
  gauge_fn ~engine:"process" ~unit_:"collections" "process.major_collections"
    "completed major GC cycles" (fun () ->
      (Gc.quick_stat ()).Gc.major_collections)

let _minor_collections =
  gauge_fn ~engine:"process" ~unit_:"collections" "process.minor_collections"
    "completed minor GC cycles" (fun () ->
      (Gc.quick_stat ()).Gc.minor_collections)

let live_aig_nodes =
  gauge ~engine:"process" ~unit_:"nodes" "process.live_aig_nodes"
    "live AND nodes of the network at the last pass boundary"

let pool_queue_depth =
  gauge ~engine:"process" ~unit_:"jobs" "process.pool_queue_depth"
    "partition-analysis jobs outstanding in the current worker-pool batch"

let peak_heap_words =
  gauge ~engine:"process" ~unit_:"words" "process.peak_heap_words"
    "high-water mark of the major heap sampled at pass and job boundaries"

(* Registered here rather than in the CLI because the bench snapshot
   writer appends it to the counter totals; the catalog must list it
   wherever the registry is linked. *)
let bench_wall_ms_min =
  gauge ~engine:"bench" ~unit_:"ms" "bench.wall_ms_min"
    "minimum wall time over repeated bench runs (--repeat > 1)"
