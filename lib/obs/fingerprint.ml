(* Determinism audit trail.

   A streaming sequence of 64-bit state fingerprints, one record per
   Flow pass boundary and one per partition merge boundary inside the
   partitioned engines. Each record is a composite of four components:

     structure        canonical structural hash of the live network
                      (Aig.fold_hash / Network.fold_hash — computed by
                      the caller: this library cannot see lib/aig)
     counters_digest  digest of the sorted nonzero registry counter
                      deltas since [enable]
     bank             prefilter signature-bank digest (0 = no bank)
     seeds            RNG / pattern-bank seeds (0 = no bank)

   plus a running [chain] value folding every component of every
   record so far — so a record's chain commits to the whole prefix,
   and two trails agree on record i's chain iff they agree on
   everything up to and including i.

   Determinism contract: every component is bit-identical at any
   --jobs. Records are only ever appended on the main domain — pass
   boundaries run there by construction, and merge boundaries
   ([finish_partition] in the engines) run there in ascending
   partition index in both the sequential and the parallel path.
   Counter deltas are taken against the [enable]-time snapshot, so
   trails from two runs in the same process compare cleanly.

   The trail is process-global, like the ledger and metrics registry:
   flows run one at a time on the main domain. *)

type kind = Pass | Merge

let kind_to_string = function Pass -> "pass" | Merge -> "merge"
let kind_of_string = function
  | "pass" -> Some Pass
  | "merge" -> Some Merge
  | _ -> None

type record = {
  seq : int; (* position in the trail, from 0 *)
  kind : kind;
  label : string; (* pass path, or path/engine-partition-N for merges *)
  structure : int64;
  counters_digest : int64;
  bank : int64;
  seeds : int64;
  chain : int64; (* commits to every prior record *)
  counters : (string * int) list; (* full delta vector (pass records) *)
}

(* SplitMix64 finalizer / golden-ratio sequence mix — the same
   construction as Aig.fold_hash, duplicated here because lib/obs
   sits below lib/aig in the dependency order. *)
let h64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let mix2 a b = h64 (Int64.add (Int64.mul a 0x9E3779B97F4A7C15L) b)

(* FNV-1a 64-bit over a string. *)
let hash_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let chain_init = h64 0x5bd1e9955bd1e995L

let counters_hash counters =
  List.fold_left
    (fun acc (k, v) -> mix2 (mix2 acc (hash_string k)) (Int64.of_int v))
    (h64 0x9e3779b9L) counters

type state = {
  mutable enabled : bool;
  mutable records : record list; (* newest first *)
  mutable seq : int;
  mutable chain : int64;
  mutable stack : string list; (* open pass names, innermost first *)
  mutable baseline : (string * int) list; (* counters at enable *)
  mutable out : out_channel option; (* streaming sink *)
  mutable bank_source : (unit -> int64 * int64) option;
}

let state =
  {
    enabled = false;
    records = [];
    seq = 0;
    chain = chain_init;
    stack = [];
    baseline = [];
    out = None;
    bank_source = None;
  }

let enabled () = state.enabled

let m_records =
  Metrics.counter ~engine:"fingerprint" ~unit_:"records" "fingerprint.records"
    "determinism audit-trail records emitted (pass and merge boundaries)"

let m_injected =
  Metrics.counter ~engine:"fingerprint" ~unit_:"records" "fingerprint.injected"
    "audit-trail records perturbed by SBM_NONDET_INJECT (test-only)"

(* --- test-only nondeterminism injection ---

   Mirrors SBM_FAIL_AFTER in Flow: SBM_NONDET_INJECT=pass:N XORs a
   fixed mask into the structure component of every merge record for
   partition N of any pass whose innermost name (or engine label)
   matches — a planted divergence that `sbm audit` must localize to
   exactly that boundary. The env var is read lazily so tests can set
   it per-process; the ref is the in-process test hook. *)

let inject : (string * int) option ref = ref None
let inject_env_read = ref false

let parse_inject s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let pass = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt rest with
    | Some n when pass <> "" -> Some (pass, n)
    | _ -> None)

let injection () =
  if not !inject_env_read then begin
    inject_env_read := true;
    match Sys.getenv_opt "SBM_NONDET_INJECT" with
    | Some s when !inject = None -> inject := parse_inject s
    | _ -> ()
  end;
  !inject

let inject_mask = h64 0xbadc0ffee0ddf00dL

(* --- record assembly --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let record_to_json (r : record) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"seq\":%d,\"kind\":\"%s\",\"label\":\"%s\",\"structure\":\"%016Lx\",\"counters\":\"%016Lx\",\"bank\":\"%016Lx\",\"seeds\":\"%016Lx\",\"chain\":\"%016Lx\""
       r.seq (kind_to_string r.kind) (json_escape r.label) r.structure
       r.counters_digest r.bank r.seeds r.chain);
  if r.counters <> [] then begin
    Buffer.add_string b ",\"counter_values\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v))
      r.counters;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let bank_components () =
  match state.bank_source with None -> (0L, 0L) | Some f -> f ()

let emit kind label structure counters =
  let counters_digest = counters_hash counters in
  let bank, seeds = bank_components () in
  let kind_tag = match kind with Pass -> 1L | Merge -> 2L in
  let chain =
    mix2
      (mix2
         (mix2 (mix2 state.chain (hash_string label)) kind_tag)
         (mix2 structure counters_digest))
      (mix2 bank seeds)
  in
  let r =
    { seq = state.seq; kind; label; structure; counters_digest; bank; seeds;
      chain; counters }
  in
  state.seq <- state.seq + 1;
  state.chain <- chain;
  state.records <- r :: state.records;
  (* Bumped after the digest is taken, so the record's own counter is
     not part of its delta — consistently, hence deterministically. *)
  Metrics.incr m_records;
  (match state.out with
  | None -> ()
  | Some oc ->
    output_string oc (record_to_json r);
    output_char oc '\n';
    flush oc);
  r

let counters_since_enable () =
  Metrics.counters_delta state.baseline (Metrics.counters_now ())

(* --- lifecycle --- *)

let reset () =
  state.records <- [];
  state.seq <- 0;
  state.chain <- chain_init;
  state.stack <- [];
  state.baseline <- []

let close_out () =
  match state.out with
  | None -> ()
  | Some oc ->
    close_out_noerr oc;
    state.out <- None

let enable ?path () =
  reset ();
  close_out ();
  (match path with
  | None -> ()
  | Some p -> state.out <- Some (open_out p));
  state.baseline <- Metrics.counters_now ();
  state.enabled <- true

let disable () =
  state.enabled <- false;
  close_out ();
  state.bank_source <- None;
  reset ()

let set_bank_source f = state.bank_source <- f

(* --- boundaries --- *)

let pass_started name =
  if state.enabled then state.stack <- name :: state.stack

let path_of_stack stack =
  match stack with
  | [] -> "?"
  | f :: rest -> List.fold_left (fun acc g -> g ^ "/" ^ acc) f rest

let pass_ended ~structure =
  if not state.enabled then 0L
  else begin
    match state.stack with
    | [] -> 0L (* unbalanced end: drop rather than corrupt the trail *)
    | _ :: rest ->
      let label = path_of_stack state.stack in
      state.stack <- rest;
      let r = emit Pass label structure (counters_since_enable ()) in
      r.chain
  end

let record_merge ~engine ~partition ~structure =
  if state.enabled then begin
    let inner = match state.stack with [] -> engine | n :: _ -> n in
    let structure =
      match injection () with
      | Some (pass, n)
        when n = partition && (pass = inner || pass = engine) ->
        Metrics.incr m_injected;
        Int64.logxor structure inject_mask
      | _ -> structure
    in
    let prefix =
      match state.stack with [] -> "" | s -> path_of_stack s ^ "/"
    in
    let label = Printf.sprintf "%s%s-partition-%d" prefix engine partition in
    ignore (emit Merge label structure (counters_since_enable ()))
  end

let records () = List.rev state.records
