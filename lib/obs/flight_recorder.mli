(** In-flight black-box recorder for SBM runs.

    A process-global, bounded ring buffer of structured events —
    severity, emitting engine, pass/partition id, key metrics and a
    monotonic timestamp — written to by the engines, the BDD manager,
    the SAT solver and the flow's pass boundaries while an optimization
    runs. Unlike the post-hoc telemetry of {!Sbm_obs} (spans, frozen
    after the run), the recorder is readable at any instant: the
    watchdog consults it to evaluate thresholds, the heartbeat prints
    its tail, and the crash handler dumps it when a run dies.

    The recorder is off by default and designed to cost one branch
    when off: every entry point checks {!enabled} first, so the
    disabled path is a load and a conditional jump. When on, recording
    an event is an array store into a preallocated ring — old events
    are overwritten once the buffer is full (the [dropped] count keeps
    the loss visible).

    The ring is owned by the main domain. Worker domains record
    through {!capture}/{!replay}: events are buffered domain-locally
    and merged on the main domain in an order the scheduler cannot
    perturb. *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

type event = {
  seq : int;  (** 0-based sequence number since {!enable} *)
  t_ns : int64;  (** monotonic time since {!enable} *)
  severity : severity;
  engine : string;  (** emitter: ["flow"], ["gradient"], ["bdd"], ... *)
  id : string;  (** pass / partition / round id, [""] when n/a *)
  message : string;
  metrics : (string * int) list;  (** key metrics, in emission order *)
}

(** {1 Lifecycle} *)

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** [enable ()] switches the recorder on with a fresh, empty ring of
    [capacity] slots (default 512, clamped to at least 16) and resets
    the sequence counter and time origin. Calling it while already
    enabled restarts from empty. *)

val disable : unit -> unit
(** Switch off and drop the buffer. *)

val capacity : unit -> int
(** Ring capacity; [0] when disabled. *)

val elapsed_ns : unit -> int64
(** Monotonic time since {!enable} ([0L] when disabled). *)

val t0_ns : unit -> int64
(** Absolute monotonic timestamp of {!enable} ([0L] when disabled).
    Event [t_ns] values are relative to this origin; adding it back
    recovers absolute clock readings for crash-dump correlation. *)

(** {1 Recording} *)

val record :
  ?severity:severity ->
  ?id:string ->
  ?metrics:(string * int) list ->
  engine:string ->
  string ->
  unit
(** [record ~engine msg] appends an event (severity defaults to
    [Info]). No-op when disabled. *)

val capture : (unit -> 'a) -> 'a * event list
(** [capture f] runs [f] with recording redirected to a private
    domain-local buffer and returns [f]'s result together with the
    buffered events (oldest first, [seq = -1]). This is how worker
    domains record: the shared ring is owned by the main domain, so a
    parallel partition analysis runs under [capture] and its events
    are merged back with {!replay} in deterministic partition order. *)

val replay : event list -> unit
(** [replay events] appends captured events to the ring with fresh
    sequence numbers, preserving their original timestamps. Call on
    the main domain only. No-op when disabled. *)

(** {1 Reading} *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val recorded : unit -> int
(** Total events recorded since {!enable}, dropped ones included. *)

val dropped : unit -> int
(** Events overwritten by ring wraparound:
    [recorded () - List.length (events ())]. *)

(** {1 Span stack}

    {!Sbm_obs} notifies the recorder when spans open and close, so at
    any instant — in particular, at crash time — the stack of open
    spans is known without freezing the trace. *)

val span_opened : string -> unit
(** Push a span (records the open time). No-op when disabled. *)

val span_closed : string -> unit
(** Pop the innermost occurrence of the named span (entries opened
    under it are discarded — defensive against out-of-order closes).
    Unknown names are ignored. *)

val span_stack : unit -> (string * int64) list
(** Open spans, innermost first, with their open time (monotonic,
    since {!enable}). *)
