(* Per-pass resource ledger.

   One row per completed flow pass: QoR before/after, wall time, the
   registry counter deltas attributable to the pass, GC allocation,
   a peak-heap sample, and the BDD table / AIG occupancy gauges.

   Determinism contract: every field except the resource samples
   (wall_ns, minor/major words, heap_words) is bit-identical at any
   --jobs. Counter deltas are differences of [Metrics.counters_now]
   taken at pass boundaries on the main domain — worker shards have
   already been replayed through the deterministic Par_merge order by
   then. The BDD load gauges are written by [Bdd_bridge.flush_stats],
   which only runs in [finish_partition] on the main domain in
   ascending partition order, so their per-pass maxima are equally
   job-count independent. [row_to_json ~stable:true] projects a row
   onto the deterministic fields only; the jobs-identity test compares
   that projection byte-for-byte. *)

external monotonic_ns : unit -> (int64[@unboxed])
  = "sbm_obs_monotonic_ns_byte" "sbm_obs_monotonic_ns"
[@@noalloc]

type row = {
  path : string; (* slash-joined pass path, e.g. "iteration-1/mspf" *)
  index : int; (* completion order within the run, from 0 *)
  size_before : int;
  size_after : int;
  depth_before : int;
  depth_after : int;
  luts : int; (* LUT-6 count after the pass; -1 = not probed *)
  levels : int; (* LUT levels after the pass; -1 = not probed *)
  fingerprint : int64; (* audit-trail chain value; 0 = trail disabled *)
  wall_ns : int64;
  counters : (string * int) list; (* nonzero registry deltas, sorted *)
  minor_words : float; (* words allocated during the pass *)
  major_words : float;
  heap_words : int; (* major heap size sampled at pass end *)
  unique_load_pct : int; (* max BDD unique-table load during the pass *)
  cache_load_pct : int; (* max computed-cache load during the pass *)
  dead_node_pct : int; (* dead AIG slots after the pass *)
}

(* An open (started, not yet ended) pass. [u_max]/[c_max] accumulate
   the BDD load gauges: the gauges are drained into every open frame
   and reset whenever a pass starts or ends, so each frame sees the
   maximum over exactly its own extent, nesting included. *)
type frame = {
  name : string;
  t0 : int64;
  counters0 : (string * int) list;
  minor0 : float;
  major0 : float;
  mutable u_max : int;
  mutable c_max : int;
}

type state = {
  mutable enabled : bool;
  mutable stack : frame list; (* innermost first *)
  mutable rows : row list; (* newest first *)
  mutable next_index : int;
}

let state = { enabled = false; stack = []; rows = []; next_index = 0 }

let enabled () = state.enabled

let reset () =
  state.stack <- [];
  state.rows <- [];
  state.next_index <- 0

let enable () =
  reset ();
  state.enabled <- true

let disable () =
  state.enabled <- false;
  reset ()

let find_gauge = Metrics.find

(* Read-and-reset a gauge registered elsewhere (bdd_bridge); absent
   until the BDD layer is linked, hence the option. *)
let drain name =
  match find_gauge name with
  | None -> 0
  | Some m ->
    let v = Metrics.value m in
    Metrics.set m 0;
    v

let drain_gauges () =
  let u = drain "bdd.unique_load_pct" in
  let c = drain "bdd.cache_load_pct" in
  if u > 0 || c > 0 then
    List.iter
      (fun f ->
        if u > f.u_max then f.u_max <- u;
        if c > f.c_max then f.c_max <- c)
      state.stack

let pass_started name =
  if state.enabled then begin
    drain_gauges ();
    let q = Gc.quick_stat () in
    state.stack <-
      {
        name;
        t0 = monotonic_ns ();
        counters0 = Metrics.counters_now ();
        minor0 = q.Gc.minor_words;
        major0 = q.Gc.major_words;
        u_max = 0;
        c_max = 0;
      }
      :: state.stack
  end

let counter_delta = Metrics.counters_delta

let pass_ended ?(fingerprint = 0L) ~size_before ~size_after ~depth_before
    ~depth_after ~luts ~levels ~dead_node_pct () =
  if state.enabled then begin
    match state.stack with
    | [] -> () (* unbalanced end: drop rather than corrupt the ledger *)
    | f :: rest ->
      drain_gauges ();
      state.stack <- rest;
      let q = Gc.quick_stat () in
      let path =
        List.fold_left (fun acc g -> g.name ^ "/" ^ acc) f.name rest
      in
      let row =
        {
          path;
          index = state.next_index;
          size_before;
          size_after;
          depth_before;
          depth_after;
          luts;
          levels;
          fingerprint;
          wall_ns = Int64.sub (monotonic_ns ()) f.t0;
          counters = counter_delta f.counters0 (Metrics.counters_now ());
          minor_words = q.Gc.minor_words -. f.minor0;
          major_words = q.Gc.major_words -. f.major0;
          heap_words = q.Gc.heap_words;
          unique_load_pct = f.u_max;
          cache_load_pct = f.c_max;
          dead_node_pct;
        }
      in
      state.next_index <- state.next_index + 1;
      state.rows <- row :: state.rows
  end

let rows () = List.rev state.rows

(* --- JSON --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* [stable] omits the resource samples that legitimately vary run to
   run (wall, GC words, heap); everything else is covered by the
   jobs-identity contract. *)
let buf_row ?(stable = false) b r =
  Buffer.add_string b
    (Printf.sprintf
       "{\"path\":\"%s\",\"index\":%d,\"size_before\":%d,\"size_after\":%d,\"depth_before\":%d,\"depth_after\":%d,\"luts\":%d,\"levels\":%d"
       (json_escape r.path) r.index r.size_before r.size_after r.depth_before
       r.depth_after r.luts r.levels);
  (* Additive field: emitted only when the audit trail was live, so
     pre-fingerprint readers and snapshots are unaffected. The chain
     value is deterministic, so it belongs to the stable projection. *)
  if r.fingerprint <> 0L then
    Buffer.add_string b
      (Printf.sprintf ",\"fingerprint\":\"%016Lx\"" r.fingerprint);
  if not stable then begin
    Buffer.add_string b (Printf.sprintf ",\"wall_ns\":%Ld" r.wall_ns);
    Buffer.add_string b
      (Printf.sprintf ",\"minor_words\":%.0f,\"major_words\":%.0f,\"heap_words\":%d"
         r.minor_words r.major_words r.heap_words)
  end;
  Buffer.add_string b
    (Printf.sprintf
       ",\"unique_load_pct\":%d,\"cache_load_pct\":%d,\"dead_node_pct\":%d,\"counters\":{"
       r.unique_load_pct r.cache_load_pct r.dead_node_pct);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    r.counters;
  Buffer.add_string b "}}"

let row_to_json ?stable r =
  let b = Buffer.create 256 in
  buf_row ?stable b r;
  Buffer.contents b

let rows_to_json ?stable rows =
  let b = Buffer.create 4096 in
  Buffer.add_char b '[';
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      buf_row ?stable b r)
    rows;
  Buffer.add_char b ']';
  Buffer.contents b
